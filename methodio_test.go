package stsk

import (
	"os"
	"path/filepath"
	"testing"
)

// TestParseMethod pins the shared method-name vocabulary the cmds and
// the serve registry parse with.
func TestParseMethod(t *testing.T) {
	for name, want := range map[string]Method{
		"csr-ls":   CSRLS,
		"csr-col":  CSRCOL,
		"csr-3-ls": CSR3LS,
		"sts3":     STS3,
	} {
		got, err := ParseMethod(name)
		if err != nil {
			t.Fatalf("ParseMethod(%q): %v", name, err)
		}
		if got != want {
			t.Fatalf("ParseMethod(%q) = %v, want %v", name, got, want)
		}
	}
	if _, err := ParseMethod("nope"); err == nil {
		t.Fatal("unknown method accepted")
	}
}

func TestReadMatrixMarketFile(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate real general
3 3 5
1 1 4.0
2 1 -1.0
2 2 4.0
3 2 -1.0
3 3 4.0
`
	path := filepath.Join(t.TempDir(), "m.mtx")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := ReadMatrixMarketFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// The loader symmetrises the pattern: 3 diagonal + 2 lower entries
	// mirrored to the upper triangle.
	if m.N() != 3 || m.NNZ() != 7 {
		t.Fatalf("got n=%d nnz=%d, want 3/7", m.N(), m.NNZ())
	}
	if _, err := ReadMatrixMarketFile(filepath.Join(t.TempDir(), "absent.mtx")); err == nil {
		t.Fatal("missing file accepted")
	}
}
