package stsk

import (
	"errors"
	"testing"

	"stsk/internal/testmat"
)

// perturbValues derives a new deterministic value array from vals: every
// entry is rescaled by a step-dependent factor and a sprinkling of
// off-pattern sign flips, keeping the diagonal safely nonzero. Each step
// yields a different array, so refactor chains visit genuinely distinct
// numeric systems.
func perturbValues(vals []float64, step int) []float64 {
	out := make([]float64, len(vals))
	for k, v := range vals {
		f := 1 + float64((k*31+step*17)%23)/16
		if (k+step)%5 == 0 {
			f = -f
		}
		out[k] = v * f
	}
	return out
}

// assertVecBitwise fails unless got equals want entry for entry.
func assertVecBitwise(t *testing.T, label string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: x[%d] = %v, want bitwise %v", label, i, got[i], want[i])
		}
	}
}

// TestRefactorMatchesRebuildBitwise is the tentpole property: for every
// corpus matrix, method, schedule, and panel width, a chain of three
// Refactor steps must leave the plan bitwise interchangeable with a plan
// freshly built on the same values — across cooperative solves, blocked
// panel solves, and the backward sweep.
func TestRefactorMatchesRebuildBitwise(t *testing.T) {
	schedules := []ScheduleChoice{GuidedSchedule, GraphSchedule}
	widths := []int{1, 4, 8}
	for _, ent := range testmat.Corpus() {
		m := &Matrix{a: ent.A}
		for _, method := range Methods() {
			p, err := Build(m, method)
			if err != nil {
				t.Fatalf("%s/%v: %v", ent.Name, method, err)
			}
			vals := m.Values()
			for step := 1; step <= 3; step++ {
				vals = perturbValues(vals, step)
				if err := p.Refactor(vals); err != nil {
					t.Fatalf("%s/%v/step%d: refactor: %v", ent.Name, method, step, err)
				}
				if got := p.ValuesVersion(); got != uint64(step) {
					t.Fatalf("%s/%v: version %d after %d refactors", ent.Name, method, got, step)
				}
				if err := m.SetValues(vals); err != nil {
					t.Fatal(err)
				}
				fresh, err := Build(m, method)
				if err != nil {
					t.Fatalf("%s/%v/step%d: rebuild: %v", ent.Name, method, step, err)
				}
				xTrue := make([]float64, p.N())
				for i := range xTrue {
					xTrue[i] = 1 + float64((i*7+step)%13)/8
				}
				b := fresh.RHSFor(xTrue)
				assertVecBitwise(t, ent.Name+"/rhs", p.RHSFor(xTrue), b)

				wantSeq, err := fresh.SolveSequential(b)
				if err != nil {
					t.Fatal(err)
				}
				gotSeq, err := p.SolveSequential(b)
				if err != nil {
					t.Fatal(err)
				}
				assertVecBitwise(t, ent.Name+"/seq", gotSeq, wantSeq)

				for _, sched := range schedules {
					for _, kw := range widths {
						label := ent.Name + "/" + method.String()
						sr := p.NewSolver(WithWorkers(3), WithSchedule(sched), WithBlockWidth(kw))
						sf := fresh.NewSolver(WithWorkers(3), WithSchedule(sched), WithBlockWidth(kw))
						B := make([][]float64, kw)
						want := make([][]float64, kw)
						got := make([][]float64, kw)
						for r := range B {
							xr := make([]float64, p.N())
							for i := range xr {
								xr[i] = float64((i+r*3+step)%9) - 4
							}
							B[r] = fresh.RHSFor(xr)
							want[r] = make([]float64, p.N())
							got[r] = make([]float64, p.N())
						}
						if err := sf.SolveBlockInto(t.Context(), want, B); err != nil {
							t.Fatal(err)
						}
						if err := sr.SolveBlockInto(t.Context(), got, B); err != nil {
							t.Fatal(err)
						}
						for r := range got {
							assertVecBitwise(t, label+"/block", got[r], want[r])
						}
						x1, err := sr.Solve(B[0])
						if err != nil {
							t.Fatal(err)
						}
						x2, err := sf.Solve(B[0])
						if err != nil {
							t.Fatal(err)
						}
						assertVecBitwise(t, label+"/coop", x1, x2)
						u1, err := sr.SolveUpper(B[0])
						if err != nil {
							t.Fatal(err)
						}
						u2, err := sf.SolveUpper(B[0])
						if err != nil {
							t.Fatal(err)
						}
						assertVecBitwise(t, label+"/upper", u1, u2)
						sr.Close()
						sf.Close()
					}
				}
			}
		}
	}
}

// TestRefactorDerivedState: everything the plan derives from its values —
// diagonal, symmetric operator, residuals, the IC0 factor, the SGS
// preconditioner — must reflect the new epoch on next use.
func TestRefactorDerivedState(t *testing.T) {
	m := &Matrix{a: testmat.Grid3D(6)}
	p, err := Build(m, STS3)
	if err != nil {
		t.Fatal(err)
	}
	vals := perturbValues(m.Values(), 1)
	if err := p.Refactor(vals); err != nil {
		t.Fatal(err)
	}
	if err := m.SetValues(vals); err != nil {
		t.Fatal(err)
	}
	fresh, err := Build(m, STS3)
	if err != nil {
		t.Fatal(err)
	}
	assertVecBitwise(t, "diag", p.Diagonal(), fresh.Diagonal())

	x := make([]float64, p.N())
	for i := range x {
		x[i] = float64(i%5) - 2
	}
	yp := make([]float64, p.N())
	yf := make([]float64, p.N())
	p.ApplySymmetric(yp, x)
	fresh.ApplySymmetric(yf, x)
	assertVecBitwise(t, "symmetric", yp, yf)

	b := fresh.RHSFor(x)
	if r := p.Residual(x, b); r != 0 {
		t.Fatalf("residual of exact solution %g, want 0", r)
	}

	icp, err := p.IC0()
	if err != nil {
		t.Fatal(err)
	}
	icf, err := fresh.IC0()
	if err != nil {
		t.Fatal(err)
	}
	gp, err := icp.SolveSequential(b)
	if err != nil {
		t.Fatal(err)
	}
	gf, err := icf.SolveSequential(b)
	if err != nil {
		t.Fatal(err)
	}
	assertVecBitwise(t, "ic0", gp, gf)

	sp := p.NewSolver(WithWorkers(2))
	defer sp.Close()
	sf := fresh.NewSolver(WithWorkers(2))
	defer sf.Close()
	zp, err := sp.ApplySGS(b)
	if err != nil {
		t.Fatal(err)
	}
	zf, err := sf.ApplySGS(b)
	if err != nil {
		t.Fatal(err)
	}
	assertVecBitwise(t, "sgs", zp, zf)
}

// TestRefactorSharedSolverSeesNewValues: the plan's own shared solver —
// created before the refactor and never rebuilt — must pick up the new
// epoch on its next dispatch.
func TestRefactorSharedSolverSeesNewValues(t *testing.T) {
	m := &Matrix{a: testmat.TriMesh(10)}
	p, err := Build(m, STS3)
	if err != nil {
		t.Fatal(err)
	}
	b := manufacturedB(p, 3)
	if _, err := p.Solve(b); err != nil { // instantiate the shared pool
		t.Fatal(err)
	}
	vals := perturbValues(m.Values(), 2)
	if err := p.Refactor(vals); err != nil {
		t.Fatal(err)
	}
	want, err := p.SolveSequential(b)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	assertVecBitwise(t, "shared", got, want)
	gotU, err := p.SolveUpper(b)
	if err != nil {
		t.Fatal(err)
	}
	wantU, err := p.SolveUpperWith(b, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	assertVecBitwise(t, "shared-upper", gotU, wantU)
}

func manufacturedB(p *Plan, seed int) []float64 {
	xTrue := make([]float64, p.N())
	for i := range xTrue {
		xTrue[i] = float64((i*5+seed)%11) - 5
	}
	return p.RHSFor(xTrue)
}

// TestRefactorContract pins the error contract at the facade: every
// rejection matches ErrSparsityMismatch (or reports the zero diagonal),
// publishes nothing, and leaves the old values fully solvable.
func TestRefactorContract(t *testing.T) {
	m := &Matrix{a: testmat.Grid3D(4)}
	p, err := Build(m, STS3)
	if err != nil {
		t.Fatal(err)
	}
	derived, err := p.IC0()
	if err != nil {
		t.Fatal(err)
	}
	other := &Matrix{a: testmat.TriMesh(8)}
	zeroDiag := m.Values()
	for k := m.a.RowPtr[2]; k < m.a.RowPtr[3]; k++ {
		if m.a.Col[k] == 2 {
			zeroDiag[k] = 0 // row 2's diagonal entry
			break
		}
	}

	cases := []struct {
		name     string
		do       func() error
		sparsity bool // expect ErrSparsityMismatch
	}{
		{"short values", func() error { return p.Refactor(make([]float64, 3)) }, true},
		{"long values", func() error { return p.Refactor(make([]float64, m.NNZ()+1)) }, true},
		{"nil matrix", func() error { return p.RefactorMatrix(nil) }, true},
		{"foreign pattern", func() error { return p.RefactorMatrix(other) }, true},
		{"derived plan", func() error { return derived.Refactor(make([]float64, m.NNZ())) }, true},
		{"zero diagonal", func() error { return p.Refactor(zeroDiag) }, false},
	}
	b := manufacturedB(p, 9)
	before, err := p.SolveSequential(b)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range cases {
		err := tc.do()
		if err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
		if got := errors.Is(err, ErrSparsityMismatch); got != tc.sparsity {
			t.Fatalf("%s: errors.Is(ErrSparsityMismatch) = %v, want %v (err %v)", tc.name, got, tc.sparsity, err)
		}
		if v := p.ValuesVersion(); v != 0 {
			t.Fatalf("%s: version %d after failed refactor, want 0", tc.name, v)
		}
		after, err := p.SolveSequential(b)
		if err != nil {
			t.Fatalf("%s: solve after failed refactor: %v", tc.name, err)
		}
		assertVecBitwise(t, tc.name+"/unchanged", after, before)
	}

	// RefactorMatrix with the identical pattern succeeds and matches
	// Refactor on the same values.
	vals := perturbValues(m.Values(), 4)
	if err := m.SetValues(vals); err != nil {
		t.Fatal(err)
	}
	if err := p.RefactorMatrix(m); err != nil {
		t.Fatalf("RefactorMatrix on identical pattern: %v", err)
	}
	if v := p.ValuesVersion(); v != 1 {
		t.Fatalf("version %d after RefactorMatrix, want 1", v)
	}
}

// TestMatrixValuesRoundTrip pins the Matrix value accessors: Values copies
// out, SetValues validates length and copies in.
func TestMatrixValuesRoundTrip(t *testing.T) {
	m := &Matrix{a: testmat.Chain(12)}
	v := m.Values()
	v[0] = 12345
	if m.Values()[0] == 12345 {
		t.Fatal("Values exposed internal storage")
	}
	if err := m.SetValues(v[:3]); !errors.Is(err, ErrDimension) {
		t.Fatalf("short SetValues: %v, want ErrDimension", err)
	}
	if err := m.SetValues(v); err != nil {
		t.Fatal(err)
	}
	if m.Values()[0] != 12345 {
		t.Fatal("SetValues did not apply")
	}
	v[1] = -777
	if m.Values()[1] == -777 {
		t.Fatal("SetValues retained the caller's slice")
	}
}
