module stsk

go 1.24
