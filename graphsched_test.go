package stsk

import (
	"context"
	"sync"
	"testing"

	"stsk/internal/gen"
	"stsk/internal/sparse"
	"stsk/internal/testmat"
)

// blockDiagMatrix wraps the shared corpus block-diagonal builder as a
// facade Matrix: `blocks` disjoint copies of a along the diagonal, the
// wide-DAG shape where barrier scheduling synchronises workers that share
// no data at all.
func blockDiagMatrix(blocks int, a *sparse.CSR) *Matrix {
	return &Matrix{a: testmat.BlockDiag(blocks, a)}
}

func manufacturedRHS(p *Plan, nrhs int) ([][]float64, [][]float64) {
	B := make([][]float64, nrhs)
	want := make([][]float64, nrhs)
	xTrue := make([]float64, p.N())
	for r := range B {
		for i := range xTrue {
			xTrue[i] = float64((i+3*r)%11) - 5
		}
		B[r] = p.RHSFor(xTrue)
		x, err := p.SolveSequential(B[r])
		if err != nil {
			panic(err)
		}
		want[r] = x
	}
	return B, want
}

// TestGraphScheduleBitwiseAllMethods is the facade acceptance gate: for
// all four methods on grid3d and trimesh, graph-scheduled solves — single
// and batched — must equal Plan.SolveSequential bit for bit.
func TestGraphScheduleBitwiseAllMethods(t *testing.T) {
	for _, class := range []string{"grid3d", "trimesh"} {
		mat, err := Generate(class, 3000)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range Methods() {
			p, err := Build(mat, m)
			if err != nil {
				t.Fatalf("%s/%v: %v", class, m, err)
			}
			B, want := manufacturedRHS(p, 4)
			s := p.NewSolver(WithWorkers(4), WithSchedule(GraphSchedule))
			for r := range B {
				x, err := s.Solve(B[r])
				if err != nil {
					t.Fatal(err)
				}
				for i := range x {
					if x[i] != want[r][i] {
						t.Fatalf("%s/%v: x[%d] = %v, want bitwise %v", class, m, i, x[i], want[r][i])
					}
				}
			}
			X, err := s.SolveBatch(B)
			if err != nil {
				t.Fatal(err)
			}
			for r := range X {
				for i := range X[r] {
					if X[r][i] != want[r][i] {
						t.Fatalf("%s/%v: batch rhs %d differs at %d", class, m, r, i)
					}
				}
			}
			s.Close()
		}
	}
}

// TestGraphScheduleConcurrentBatches hammers one graph-scheduled Solver
// with concurrent batches from many goroutines — the facade race gate.
func TestGraphScheduleConcurrentBatches(t *testing.T) {
	mat, err := Generate("trimesh", 1500)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Build(mat, STS3)
	if err != nil {
		t.Fatal(err)
	}
	B, want := manufacturedRHS(p, 6)
	s := p.NewSolver(WithWorkers(4), WithSchedule(GraphSchedule))
	defer s.Close()
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < 4; it++ {
				if g%2 == 0 {
					X, err := s.SolveBatchCtx(context.Background(), B)
					if err != nil {
						t.Error(err)
						return
					}
					for r := range X {
						for i := range X[r] {
							if X[r][i] != want[r][i] {
								t.Errorf("batch rhs %d differs at %d", r, i)
								return
							}
						}
					}
				} else {
					x, err := s.Solve(B[it%len(B)])
					if err != nil {
						t.Error(err)
						return
					}
					for i := range x {
						if x[i] != want[it%len(B)][i] {
							t.Errorf("coop solve differs at %d", i)
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestDefaultScheduleResolvesToGraph checks the "default when it wins"
// rule on a matrix whose DAG is unmistakably wide (independent diagonal
// blocks): with several workers the default must pick the graph schedule,
// and with one worker it must not.
func TestDefaultScheduleResolvesToGraph(t *testing.T) {
	mat := blockDiagMatrix(8, gen.Grid2D(30, 30))
	p, err := Build(mat, STS3)
	if err != nil {
		t.Fatal(err)
	}
	if pi := p.taskDAG().Parallelism(); pi < 1.5 {
		t.Fatalf("block-diagonal DAG parallelism %.2f, want >= 1.5", pi)
	}
	if !p.graphWins() {
		t.Fatal("graphWins false on a block-diagonal DAG")
	}
	if opts := p.lowerSolve(applyOptions([]Option{WithWorkers(4)})); opts.Schedule.String() != "graph" {
		t.Fatalf("default schedule %v with 4 workers, want graph", opts.Schedule)
	}
	if opts := p.lowerSolve(applyOptions([]Option{WithWorkers(1)})); opts.Schedule.String() == "graph" {
		t.Fatal("graph schedule chosen for a single worker")
	}
	// Explicit choices always pass through.
	if opts := p.lowerSolve(applyOptions([]Option{WithWorkers(1), WithSchedule(GraphSchedule)})); opts.Schedule.String() != "graph" {
		t.Fatalf("explicit GraphSchedule ignored: %v", opts.Schedule)
	}
	if opts := p.lowerSolve(applyOptions([]Option{WithWorkers(4), WithSchedule(GuidedSchedule)})); opts.Schedule.String() != "guided" {
		t.Fatalf("explicit GuidedSchedule ignored: %v", opts.Schedule)
	}
}

// TestSolverSteadyStateAllocs asserts the facade satellite: warm solvers
// run Into-style solves — cooperative and batched, barrier and graph —
// without allocating.
func TestSolverSteadyStateAllocs(t *testing.T) {
	testmat.SkipIfRace(t)
	mat, err := Generate("grid3d", 2000)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Build(mat, STS3)
	if err != nil {
		t.Fatal(err)
	}
	B, _ := manufacturedRHS(p, 8)
	X := make([][]float64, len(B))
	for i := range X {
		X[i] = make([]float64, p.N())
	}
	x := make([]float64, p.N())
	z := make([]float64, p.N())
	for _, tc := range []struct {
		name string
		s    *Solver
	}{
		{"barrier", p.NewSolver(WithWorkers(4), WithSchedule(GuidedSchedule))},
		{"graph", p.NewSolver(WithWorkers(4), WithSchedule(GraphSchedule))},
	} {
		for i := 0; i < 3; i++ { // warm pools, scratch, lazy transpose
			if err := tc.s.SolveInto(x, B[0]); err != nil {
				t.Fatal(err)
			}
			if err := tc.s.SolveBatchInto(X, B); err != nil {
				t.Fatal(err)
			}
			if err := tc.s.ApplySGSInto(z, B[0]); err != nil {
				t.Fatal(err)
			}
		}
		if n := testing.AllocsPerRun(50, func() {
			if err := tc.s.SolveInto(x, B[0]); err != nil {
				t.Fatal(err)
			}
		}); n != 0 {
			t.Errorf("%s: SolveInto allocates %.1f/op, want 0", tc.name, n)
		}
		if n := testing.AllocsPerRun(50, func() {
			if err := tc.s.SolveBatchInto(X, B); err != nil {
				t.Fatal(err)
			}
		}); n != 0 {
			t.Errorf("%s: SolveBatchInto allocates %.1f/op, want 0", tc.name, n)
		}
		if n := testing.AllocsPerRun(50, func() {
			if err := tc.s.ApplySGSInto(z, B[0]); err != nil {
				t.Fatal(err)
			}
		}); n != 0 {
			t.Errorf("%s: ApplySGSInto allocates %.1f/op, want 0", tc.name, n)
		}
		tc.s.Close()
	}
}
