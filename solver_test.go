package stsk

// Acceptance tests for the batched solve engine: SolveBatch and SolveMany
// must match per-RHS SolveSequential bitwise across all four methods and
// several generator classes, and one Solver must tolerate concurrent
// solves (run these under -race).

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"
)

// manufactured returns nrhs right-hand sides for the plan plus the exact
// per-RHS sequential solutions they must reproduce bitwise.
func manufactured(t *testing.T, plan *Plan, nrhs int, seed int64) (B, want [][]float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for r := 0; r < nrhs; r++ {
		xTrue := make([]float64, plan.N())
		for i := range xTrue {
			xTrue[i] = rng.NormFloat64()
		}
		B = append(B, plan.RHSFor(xTrue))
	}
	for _, b := range B {
		x, err := plan.SolveSequential(b)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, x)
	}
	return B, want
}

func assertExact(t *testing.T, label string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: x[%d] = %v, want bitwise %v", label, i, got[i], want[i])
		}
	}
}

// TestSolverBatchMatchesSequential is the headline acceptance test:
// SolveBatch over 32 right-hand sides is bitwise identical to looped
// sequential solves on every method and several matrix classes.
func TestSolverBatchMatchesSequential(t *testing.T) {
	const nrhs = 32
	for _, class := range []string{"grid2d", "grid3d", "trimesh", "roadnet"} {
		mat, err := Generate(class, 900)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range Methods() {
			plan, err := Build(mat, m, WithRowsPerSuper(8))
			if err != nil {
				t.Fatalf("%s/%v: %v", class, m, err)
			}
			B, want := manufactured(t, plan, nrhs, 17)
			solver := plan.NewSolver(WithWorkers(4))
			X, err := solver.SolveBatch(B)
			if err != nil {
				t.Fatalf("%s/%v: %v", class, m, err)
			}
			for r := range X {
				assertExact(t, class+"/"+m.String(), X[r], want[r])
			}
			solver.Close()
		}
	}
}

func TestSolverSolveManyMatchesSequential(t *testing.T) {
	mat, err := Generate("grid3d", 1200)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range Methods() {
		plan, err := Build(mat, m, WithRowsPerSuper(8))
		if err != nil {
			t.Fatal(err)
		}
		B, want := manufactured(t, plan, 40, 29)
		solver := plan.NewSolver(WithWorkers(3))
		bs := make(chan []float64)
		go func() {
			for _, b := range B {
				bs <- b
			}
			close(bs)
		}()
		r := 0
		for res := range solver.SolveMany(bs) {
			if res.Err != nil {
				t.Fatal(res.Err)
			}
			assertExact(t, m.String(), res.X, want[r])
			r++
		}
		if r != len(B) {
			t.Fatalf("%v: streamed %d results, want %d", m, r, len(B))
		}
		solver.Close()
	}
}

func TestSolverPooledSingleSolvesMatchSequential(t *testing.T) {
	mat, err := Generate("trimesh", 800)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Build(mat, STS3, WithRowsPerSuper(8))
	if err != nil {
		t.Fatal(err)
	}
	B, want := manufactured(t, plan, 5, 3)
	solver := plan.NewSolver(WithWorkers(4))
	defer solver.Close()
	x := make([]float64, plan.N())
	for rep := 0; rep < 3; rep++ { // pool reuse across repeats
		for r := range B {
			if err := solver.SolveInto(x, B[r]); err != nil {
				t.Fatal(err)
			}
			assertExact(t, "pooled", x, want[r])
		}
	}
	// Plan.Solve rides the plan's shared solver and must agree too.
	for r := range B {
		x, err := plan.Solve(B[r])
		if err != nil {
			t.Fatal(err)
		}
		assertExact(t, "plan-shared", x, want[r])
	}
}

func TestSolverApplySGSMatchesManualSweeps(t *testing.T) {
	mat, err := Generate("grid3d", 800)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Build(mat, STS3, WithRowsPerSuper(8))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(41))
	const nrhs = 6
	R := make([][]float64, nrhs)
	want := make([][]float64, nrhs)
	d := plan.Diagonal()
	for r := range R {
		R[r] = make([]float64, plan.N())
		for i := range R[r] {
			R[r][i] = rng.NormFloat64()
		}
		y, err := plan.SolveSequential(R[r])
		if err != nil {
			t.Fatal(err)
		}
		for i := range y {
			y[i] *= d[i]
		}
		if want[r], err = plan.SolveUpperWith(y, WithWorkers(1)); err != nil {
			t.Fatal(err)
		}
	}
	solver := plan.NewSolver(WithWorkers(3))
	defer solver.Close()
	for r := range R {
		z, err := solver.ApplySGS(R[r])
		if err != nil {
			t.Fatal(err)
		}
		assertExact(t, "sgs-coop", z, want[r])
	}
	Z, err := solver.ApplySGSBatch(R)
	if err != nil {
		t.Fatal(err)
	}
	for r := range Z {
		assertExact(t, "sgs-batch", Z[r], want[r])
	}
}

// TestSolverConcurrentUse is the facade-level race test: one Solver,
// many goroutines mixing every solve shape.
func TestSolverConcurrentUse(t *testing.T) {
	mat, err := Generate("grid3d", 700)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Build(mat, STS3, WithRowsPerSuper(8))
	if err != nil {
		t.Fatal(err)
	}
	B, want := manufactured(t, plan, 8, 59)
	solver := plan.NewSolver(WithWorkers(4))
	defer solver.Close()
	var wg sync.WaitGroup
	for g := 0; g < 10; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < 4; it++ {
				switch g % 4 {
				case 0:
					x, err := solver.Solve(B[it%len(B)])
					if err != nil {
						t.Error(err)
						return
					}
					for i := range x {
						if x[i] != want[it%len(B)][i] {
							t.Errorf("solve mismatch at %d", i)
							return
						}
					}
				case 1:
					X, err := solver.SolveBatch(B)
					if err != nil {
						t.Error(err)
						return
					}
					for r := range X {
						for i := range X[r] {
							if X[r][i] != want[r][i] {
								t.Errorf("batch mismatch rhs %d at %d", r, i)
								return
							}
						}
					}
				case 2:
					if _, err := solver.SolveUpper(B[it%len(B)]); err != nil {
						t.Error(err)
						return
					}
				default:
					if _, err := solver.ApplySGS(B[it%len(B)]); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestPlanConcurrentLazyInit races the plan's lazily built caches
// (shared solver, upper solver, symmetric matrix) from many goroutines —
// run under -race.
func TestPlanConcurrentLazyInit(t *testing.T) {
	mat, err := Generate("grid2d", 500)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Build(mat, STS3, WithRowsPerSuper(8))
	if err != nil {
		t.Fatal(err)
	}
	b := plan.RHSFor(make([]float64, plan.N()))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			switch g % 4 {
			case 0:
				if _, err := plan.SolveUpperWith(b, WithWorkers(2)); err != nil {
					t.Error(err)
				}
			case 1:
				s := plan.NewSolver(WithWorkers(2))
				if _, err := s.SolveUpper(b); err != nil {
					t.Error(err)
				}
				s.Close()
			case 2:
				y := make([]float64, plan.N())
				plan.ApplySymmetric(y, b)
			default:
				if _, err := plan.Solve(b); err != nil {
					t.Error(err)
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestSharedSolverReleasedByGC guards the AddCleanup wiring: a Plan whose
// shared Solver was pinned by Plan.Solve must release its parked worker
// pool once the plan is unreachable. If any engine closure reaches back to
// the Solver (through the Plan), the cleanup never fires and this test
// times out its GC budget.
func TestSharedSolverReleasedByGC(t *testing.T) {
	// Earlier tests may have pinned shared pools on plans they dropped;
	// flush those cleanups first so the baseline is a settled count and a
	// mid-test GC cannot deflate it under us.
	for i := 0; i < 3; i++ {
		runtime.GC()
		time.Sleep(10 * time.Millisecond)
	}
	base := runtime.NumGoroutine()
	func() {
		mat, err := Generate("grid2d", 2000)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := Build(mat, STS3)
		if err != nil {
			t.Fatal(err)
		}
		b := make([]float64, plan.N())
		if _, err := plan.Solve(b); err != nil { // pins the shared pool
			t.Fatal(err)
		}
		if g := runtime.NumGoroutine(); g <= base {
			t.Fatalf("expected parked workers, goroutines %d <= base %d", g, base)
		}
	}()
	for i := 0; i < 100; i++ {
		runtime.GC()
		time.Sleep(10 * time.Millisecond)
		if runtime.NumGoroutine() <= base {
			return
		}
	}
	t.Fatalf("shared solver pool never released: %d goroutines vs base %d",
		runtime.NumGoroutine(), base)
}

func TestSolverClose(t *testing.T) {
	mat, err := Generate("grid2d", 400)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Build(mat, STS3, WithRowsPerSuper(8))
	if err != nil {
		t.Fatal(err)
	}
	solver := plan.NewSolver(WithWorkers(2))
	b := make([]float64, plan.N())
	if _, err := solver.Solve(b); err != nil {
		t.Fatal(err)
	}
	solver.Close()
	solver.Close() // idempotent
	if _, err := solver.Solve(b); err == nil {
		t.Fatal("solve after Close succeeded")
	}
}
