package stsk

import (
	"errors"
	"fmt"

	"stsk/internal/panicsafe"
	"stsk/internal/solve"
)

// Sentinel errors of the v2 API. All of them are stable values matched
// with errors.Is; the concrete errors returned by the facade, the solve
// engine, and the krylov package wrap them with call-site detail.
var (
	// ErrClosed reports a solve issued on a Solver after Close. It is the
	// same value the internal engine returns, so errors.Is matches no
	// matter which layer surfaced it.
	ErrClosed = solve.ErrClosed

	// ErrDimension reports a right-hand-side, solution, or batch whose
	// length does not match the plan's system. The facade validates
	// eagerly — a short vector is rejected here instead of faulting deep
	// inside a solve kernel.
	ErrDimension = solve.ErrDimension

	// ErrNotConverged reports an iterative method (krylov.CG) that
	// exhausted its iteration budget before reaching its tolerance.
	ErrNotConverged = errors.New("stsk: iteration did not converge")

	// ErrSparsityMismatch reports a numeric refactorization whose values
	// do not fit the plan's fixed sparsity: a value array of the wrong
	// length, a matrix with a different pattern, or a plan that derives
	// its values (an IC0 factor) rather than carrying the input's.
	// Refactor reuses every piece of symbolic work, so it can only accept
	// new values for exactly the pattern the plan was built from.
	ErrSparsityMismatch = errors.New("stsk: sparsity mismatch")

	// ErrInternal reports a panic contained at an engine job boundary: a
	// kernel (or anything it called) panicked and the recover barrier
	// converted it into an error carrying the captured stack. The solve
	// that hit it failed, its batch-mates are unharmed, and the Solver
	// stays fully usable. The serving layer maps it to HTTP 500 and the
	// stsserve_panics_recovered_total metric.
	ErrInternal = panicsafe.ErrInternal
)

// dimErr details a two-vector length mismatch against the system size.
func dimErr(zlen, rlen, n int) error {
	return fmt.Errorf("%w: vector lengths %d/%d, want %d", ErrDimension, zlen, rlen, n)
}
