#!/usr/bin/env python3
"""Validate a Prometheus text-exposition scrape.

Usage: check_exposition.py FILE [required-series-substring ...]

Fails (exit 1, reason on stderr) on:
  - sample lines that don't parse as `name{labels} value`
  - malformed comment lines (only `# HELP` / `# TYPE` allowed)
  - histogram bucket series whose cumulative counts decrease, that lack
    a `+Inf` bucket, or whose `+Inf` count disagrees with `_count`
  - any required series substring absent from the scrape

The serving smokes run every scrape through this so a formatting
regression (or a dropped stage histogram) fails CI, not a dashboard.
"""
import re
import sys

SAMPLE = re.compile(
    r'^([a-zA-Z_:][a-zA-Z0-9_:]*)'      # metric name
    r'(?:\{([^{}]*)\})?'                 # optional label set
    r' (-?(?:[0-9.]+(?:[eE][+-]?[0-9]+)?|Inf)|NaN|\+Inf)$'
)
LE = re.compile(r'(?:^|,)le="([^"]+)"')


def fail(msg):
    sys.stderr.write("check_exposition: %s\n" % msg)
    sys.exit(1)


def main():
    if len(sys.argv) < 2:
        fail("usage: check_exposition.py FILE [required ...]")
    path, required = sys.argv[1], sys.argv[2:]
    text = open(path).read()
    buckets = {}   # series key (name + labels sans le) -> [(le, count)]
    counts = {}    # _count series key -> value
    nsamples = 0
    for ln in text.splitlines():
        if ln.startswith("# HELP ") or ln.startswith("# TYPE "):
            continue
        if ln.startswith("#"):
            fail("malformed comment line: %r" % ln)
        if not ln.strip():
            fail("blank line inside exposition")
        m = SAMPLE.match(ln)
        if not m:
            fail("malformed sample line: %r" % ln)
        name, labels, val = m.group(1), m.group(2) or "", m.group(3)
        nsamples += 1
        if name.endswith("_bucket"):
            le = LE.search(labels)
            if not le:
                fail("bucket without le label: %r" % ln)
            rest = LE.sub("", labels).strip(",")
            key = (name[: -len("_bucket")], rest)
            buckets.setdefault(key, []).append((le.group(1), float(val)))
        elif name.endswith("_count"):
            counts[(name[: -len("_count")], labels)] = float(val)
    if nsamples == 0:
        fail("no samples in %s" % path)
    for key, series in buckets.items():
        prev = -1.0
        inf = None
        for le, c in series:
            if c < prev:
                fail("bucket counts decrease in %s{%s} at le=%s" % (key[0], key[1], le))
            prev = c
            if le == "+Inf":
                inf = c
        if inf is None:
            fail("histogram %s{%s} lacks a +Inf bucket" % key)
        if key in counts and counts[key] != inf:
            fail("histogram %s{%s}: _count %g != +Inf bucket %g" % (key[0], key[1], counts[key], inf))
    for want in required:
        if want not in text:
            fail("required series %r missing from %s" % (want, path))
    print("exposition ok: %d samples, %d histogram series" % (nsamples, len(buckets)))


if __name__ == "__main__":
    main()
