#!/usr/bin/env bash
# lint.sh — the repo's static-analysis gate: gofmt, go vet, and the
# stslint invariant suite (noalloc, epochpin, ctxflow, errwrap,
# recoverguard; see DESIGN.md §6). CI runs this as a required job; run it
# locally before pushing with:
#
#   bash scripts/lint.sh
set -euo pipefail
cd "$(dirname "$0")/.."

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
  echo "gofmt needed on:" >&2
  echo "$unformatted" >&2
  exit 1
fi

go vet ./...

go run ./cmd/stslint ./...
echo "lint: clean"
