#!/usr/bin/env bash
# chaos_smoke.sh — fault-injection smoke of the solve-as-a-service
# daemon: start stsserve with deterministic chaos armed (kernel panics at
# engine job boundaries, coalescer queue saturation, a registry build
# fault), hammer it with concurrent clients, and assert the fault-
# tolerance contract end to end:
#
#   * the daemon never crashes or deadlocks under injected faults,
#   * every 200 response is bitwise identical to the stssolve oracle,
#   * every failure is a contained refusal (429/500/503/408), never a
#     connection reset or a torn result,
#   * stsserve_panics_recovered_total > 0 — panics were really injected
#     and really contained,
#   * SIGTERM still drains gracefully: /healthz flips to draining and
#     the process exits 0.
#
# Run from anywhere inside the repo: bash scripts/chaos_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

N=3000
ADDR=127.0.0.1:8378
CLIENTS=48
WAVES=4
FAULTS='engine.job:panic:p=0.05;coalescer.enqueue:saturate:p=0.1;registry.build:error:after=1,count=1'
TMP=$(mktemp -d)
SERVER_PID=""
cleanup() {
  [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
  rm -rf "$TMP"
}
trap cleanup EXIT

go build -o "$TMP/stsserve" ./cmd/stsserve
go build -o "$TMP/stssolve" ./cmd/stssolve

# Oracle: the same deterministic system the server will build, solved
# offline at full precision (%.17g round-trips float64 exactly).
"$TMP/stssolve" -class grid3d -n $N -method sts3 -repeats 1 \
  -dump-rhs "$TMP/b.txt" -dump-solution "$TMP/x.txt" >/dev/null

"$TMP/stsserve" -addr "$ADDR" -flush 2ms -drain-grace 2s \
  -faults "$FAULTS" -fault-seed 7 &
SERVER_PID=$!

for _ in $(seq 50); do
  curl -s -o /dev/null "http://$ADDR/healthz" 2>/dev/null && break
  sleep 0.2
done

# Registration must survive: the build fault is armed after=1, so the
# first build is clean and later cold rebuilds would eat the error.
curl -fsS -X POST "http://$ADDR/v1/plans" \
  -d "{\"name\":\"g3\",\"class\":\"grid3d\",\"n\":$N,\"method\":\"sts3\"}" >"$TMP/plan.json"
grep -q '"loaded":true' "$TMP/plan.json" || { echo "plan not loaded: $(cat "$TMP/plan.json")"; exit 1; }

awk 'BEGIN{printf "{\"plan\":\"g3\",\"b\":["} {printf "%s%s",(NR>1?",":""),$1} END{printf "]}"}' \
  "$TMP/b.txt" >"$TMP/req.json"

# Waves of concurrent clients under fire. Individual request failures are
# the point — only the status code discipline and bitwise 200s matter.
for w in $(seq "$WAVES"); do
  seq "$CLIENTS" | xargs -P 32 -I{} sh -c \
    "curl -s -X POST http://$ADDR/v1/solve --data-binary @$TMP/req.json \
       -o $TMP/out.$w.{} -w '%{http_code}' > $TMP/code.$w.{} || echo 000 > $TMP/code.$w.{}"
done

lines=$(wc -l <"$TMP/x.txt")
ok=0; refused=0
for w in $(seq "$WAVES"); do
  for i in $(seq "$CLIENTS"); do
    code=$(cat "$TMP/code.$w.$i")
    case "$code" in
      200)
        ok=$((ok+1))
        sed 's/.*"x":\[//; s/\].*//' "$TMP/out.$w.$i" | tr ',' '\n' >"$TMP/got"
        got=$(wc -l <"$TMP/got")
        [ "$got" = "$lines" ] || { echo "wave $w response $i: $got values, want $lines"; exit 1; }
        paste "$TMP/x.txt" "$TMP/got" | awk '
          { if ($1+0 != $2+0) { bad++; if (bad<4) printf "  mismatch line %d: %s vs %s\n", NR, $1, $2 } }
          END { if (bad>0) { printf "response had %d mismatching values\n", bad; exit 1 } }' \
          || { echo "wave $w response $i: 200 body differs from the oracle under chaos"; exit 1; }
        ;;
      429|500|503|408)
        refused=$((refused+1))
        ;;
      *)
        echo "wave $w response $i: status $code outside the contained-refusal set"
        exit 1
        ;;
    esac
  done
done
[ "$ok" -gt 0 ] || { echo "chaos starved every request — nothing solved"; exit 1; }

curl -s "http://$ADDR/metrics" >"$TMP/metrics.txt"
panics=$(awk '/^stsserve_panics_recovered_total/ {print $2}' "$TMP/metrics.txt")
retries=$(awk '/^stsserve_retries_total/ {print $2}' "$TMP/metrics.txt")
[ -n "$panics" ] && [ "$panics" -gt 0 ] || { echo "stsserve_panics_recovered_total = ${panics:-missing}, want > 0"; exit 1; }
echo "chaos: $ok bitwise-correct responses, $refused contained refusals, $panics panics recovered, $retries retries"

# The daemon survived the storm and still drains gracefully.
kill -TERM "$SERVER_PID"
drained=""
for _ in $(seq 60); do
  code=$(curl -s -o "$TMP/drain.json" -w '%{http_code}' "http://$ADDR/healthz" 2>/dev/null || echo 000)
  if [ "$code" = "503" ] && grep -q '"draining"' "$TMP/drain.json"; then drained=1; break; fi
  sleep 0.05
done
[ -n "$drained" ] || { echo "healthz never reported draining after SIGTERM"; exit 1; }
rc=0; wait "$SERVER_PID" || rc=$?
SERVER_PID=""
[ "$rc" = "0" ] || { echo "stsserve exited $rc after SIGTERM under chaos, want 0"; exit 1; }
echo "chaos smoke OK"
