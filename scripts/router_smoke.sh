#!/usr/bin/env bash
# router_smoke.sh — end-to-end smoke of the 2-replica router mode:
# start two stsserve replicas and one stsserve -route process over
# them, register a plan through the router (broadcast to both), check
# routed solves against the stssolve oracle bitwise, then kill one
# replica mid-run and require every subsequent routed solve to keep
# answering 200 — the router ejects the dead replica and fails over;
# it never turns a dead backend into a 500 of its own.
#
# Run from anywhere inside the repo: bash scripts/router_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

N=4000
TMP=$(mktemp -d)
PIDS=()
cleanup() {
  for p in "${PIDS[@]:-}"; do kill "$p" 2>/dev/null || true; done
  rm -rf "$TMP"
}
trap cleanup EXIT

go build -o "$TMP/stsserve" ./cmd/stsserve
go build -o "$TMP/stssolve" ./cmd/stssolve

# Oracle: the same deterministic system the replicas will build.
"$TMP/stssolve" -class grid3d -n $N -method sts3 -repeats 1 \
  -dump-rhs "$TMP/b.txt" -dump-solution "$TMP/x.txt" >/dev/null
awk 'BEGIN{printf "{\"plan\":\"g3\",\"b\":["} {printf "%s%s",(NR>1?",":""),$1} END{printf "]}"}' \
  "$TMP/b.txt" >"$TMP/req.json"

# Two replicas on ephemeral ports.
"$TMP/stsserve" -addr 127.0.0.1:0 -addr-file "$TMP/rep1.addr" -flush 2ms 2>"$TMP/rep1.log" &
REP1_PID=$!; PIDS+=("$REP1_PID")
"$TMP/stsserve" -addr 127.0.0.1:0 -addr-file "$TMP/rep2.addr" -flush 2ms 2>"$TMP/rep2.log" &
REP2_PID=$!; PIDS+=("$REP2_PID")
for f in rep1.addr rep2.addr; do
  for _ in $(seq 50); do [ -s "$TMP/$f" ] && break; sleep 0.2; done
  [ -s "$TMP/$f" ] || { echo "replica never wrote $f"; exit 1; }
done
REP1=$(cat "$TMP/rep1.addr"); REP2=$(cat "$TMP/rep2.addr")
for a in "$REP1" "$REP2"; do
  for _ in $(seq 50); do curl -fsS "http://$a/healthz" >/dev/null 2>&1 && break; sleep 0.2; done
  curl -fsS "http://$a/healthz" >/dev/null
done

# The router over both, with a fast probe so ejection lands quickly.
"$TMP/stsserve" -route "$REP1,$REP2" -addr 127.0.0.1:0 -addr-file "$TMP/rt.addr" \
  -health-interval 100ms 2>"$TMP/rt.log" &
RT_PID=$!; PIDS+=("$RT_PID")
for _ in $(seq 50); do [ -s "$TMP/rt.addr" ] && break; sleep 0.2; done
RT=$(cat "$TMP/rt.addr")
for _ in $(seq 50); do curl -fsS "http://$RT/healthz" >/dev/null 2>&1 && break; sleep 0.2; done

# Register through the router: the broadcast must land on BOTH replicas.
curl -fsS -X POST "http://$RT/v1/plans" \
  -d "{\"name\":\"g3\",\"class\":\"grid3d\",\"n\":$N,\"method\":\"sts3\"}" >/dev/null
for a in "$REP1" "$REP2"; do
  curl -fsS "http://$a/v1/plans" >"$TMP/rep.json"
  grep -q '"name":"g3"' "$TMP/rep.json" \
    || { echo "replica $a missing the broadcast plan: $(cat "$TMP/rep.json")"; exit 1; }
done
echo "registration broadcast to both replicas"

# Routed solves with both replicas up: all 200, all bitwise-exact.
solve_and_check() { # $1 = output tag
  code=$(curl -s -o "$TMP/out.$1" -w '%{http_code}' -X POST "http://$RT/v1/solve" \
    --data-binary @"$TMP/req.json")
  [ "$code" = "200" ] || { echo "routed solve $1 answered $code: $(head -c 200 "$TMP/out.$1")"; exit 1; }
  sed 's/.*"x":\[//; s/\].*//' "$TMP/out.$1" | tr ',' '\n' >"$TMP/got.$1"
  paste "$TMP/x.txt" "$TMP/got.$1" | awk '
    { if ($1+0 != $2+0) { bad++; if (bad<4) printf "  mismatch line %d: %s vs %s\n", NR, $1, $2 } }
    END { if (bad>0) { printf "response had %d mismatching values\n", bad; exit 1 } }' \
    || { echo "routed solve $1 differs from stssolve output"; exit 1; }
}
for i in $(seq 10); do solve_and_check "pre.$i"; done
echo "10 routed solves OK with both replicas up"

# --- trace-ID propagation through the router -------------------------
# A client-supplied X-STS-Trace-Id must survive the routed hop: the
# backend echoes it, the router relays the echo, and the ID names a
# retained entry in the serving replica's /debug/traces ring.
code=$(curl -s -D "$TMP/thdr.txt" -o /dev/null -w '%{http_code}' -X POST "http://$RT/v1/solve" \
  -H 'X-STS-Trace-Id: tracesmoke42' --data-binary @"$TMP/req.json")
[ "$code" = "200" ] || { echo "traced routed solve answered $code"; exit 1; }
grep -qi '^x-sts-trace-id: tracesmoke42' "$TMP/thdr.txt" \
  || { echo "router did not relay the trace ID echo:"; cat "$TMP/thdr.txt"; exit 1; }
found=""
for a in "$REP1" "$REP2"; do
  if curl -fsS "http://$a/debug/traces?thresholdMs=0" | grep -q '"id":"tracesmoke42"'; then found=1; fi
done
[ -n "$found" ] || { echo "trace tracesmoke42 retained on neither replica"; exit 1; }

# Without a client ID the router mints one (16 hex digits) so the whole
# fan-out is attributable, and the response still carries it.
curl -s -D "$TMP/thdr2.txt" -o /dev/null -X POST "http://$RT/v1/solve" \
  --data-binary @"$TMP/req.json"
grep -qiE '^x-sts-trace-id: [0-9a-f]{16}' "$TMP/thdr2.txt" \
  || { echo "router did not mint a trace ID:"; cat "$TMP/thdr2.txt"; exit 1; }
echo "trace IDs round-trip through the router (client-supplied and minted)"

# Replica and router expositions are well-formed, with the stage
# histograms live on the replicas after the routed load.
curl -fsS "http://$REP2/metrics" >"$TMP/repmet.txt"
python3 scripts/check_exposition.py "$TMP/repmet.txt" \
  'stsserve_stage_latency_seconds_bucket{stage="kernel",outcome="ok"' \
  'stsserve_stage_latency_seconds_bucket{stage="queue_wait",outcome="ok"' \
  'stsserve_go_goroutines'

# Kill one replica abruptly (no drain) and keep firing: the router must
# fail over / eject and keep serving 200s — never a 500 of its own.
kill -KILL "$REP1_PID"
wait "$REP1_PID" 2>/dev/null || true
for i in $(seq 20); do solve_and_check "post.$i"; done
echo "20 routed solves OK with one replica killed mid-run"

# The prober must have ejected the dead replica, and the router's own
# health endpoint keeps answering 200 while one backend is alive.
sleep 0.5
curl -fsS "http://$RT/metrics" >"$TMP/rtmet.txt"
python3 scripts/check_exposition.py "$TMP/rtmet.txt" 'stsrouter_requests_total'
grep -q '^stsrouter_ejections_total [1-9]' "$TMP/rtmet.txt" \
  || { echo "router never ejected the dead replica:"; grep stsrouter "$TMP/rtmet.txt"; exit 1; }
grep -q "stsrouter_backend_healthy{backend=\"http://$REP2\"} 1" "$TMP/rtmet.txt" \
  || { echo "router lost the live replica:"; grep stsrouter_backend_healthy "$TMP/rtmet.txt"; exit 1; }
curl -fsS "http://$RT/healthz" >/dev/null || { echo "router healthz failed with one live backend"; exit 1; }
echo "dead replica ejected, router healthy on the survivor"

# Value update through the router reaches the survivor.
"$TMP/stssolve" -class grid3d -n $N -method sts3 -repeats 1 -scale-values 2 \
  -load-rhs "$TMP/b.txt" -dump-values "$TMP/vals2.txt" -dump-solution "$TMP/x2.txt" >/dev/null
awk 'BEGIN{printf "{\"values\":["} {printf "%s%s",(NR>1?",":""),$1} END{printf "],\"ifVersion\":1}"}' \
  "$TMP/vals2.txt" >"$TMP/upd.json"
curl -fsS -X PUT "http://$RT/v1/plans/g3/values" --data-binary @"$TMP/upd.json" >/dev/null
cp "$TMP/x2.txt" "$TMP/x.txt"
solve_and_check "upd"
echo "post-update routed solve matches the scaled oracle bitwise"

# No 500s anywhere in the run, and a clean router drain.
kill -TERM "$RT_PID"
rc=0; wait "$RT_PID" || rc=$?
[ "$rc" = "0" ] || { echo "router exited $rc after SIGTERM, want 0"; exit 1; }
echo "router smoke OK"
