#!/usr/bin/env bash
# serve_smoke.sh — end-to-end smoke of the solve-as-a-service daemon:
# start stsserve, register a generated grid3d plan over HTTP, fire
# concurrent solve requests, and check every returned solution against
# the solution cmd/stssolve computes for the identical system (bitwise:
# both sides print/parse full-precision float64).
#
# Run from anywhere inside the repo: bash scripts/serve_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

N=4000
ADDR=127.0.0.1:8377
CLIENTS=48
TMP=$(mktemp -d)
SERVER_PID=""
cleanup() {
  [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
  rm -rf "$TMP"
}
trap cleanup EXIT

go build -o "$TMP/stsserve" ./cmd/stsserve
go build -o "$TMP/stssolve" ./cmd/stssolve

# Reference: solve the manufactured grid3d system with stssolve and dump
# the right-hand side and solution at full precision (%.17g round-trips
# float64 exactly).
"$TMP/stssolve" -class grid3d -n $N -method sts3 -repeats 1 \
  -dump-rhs "$TMP/b.txt" -dump-solution "$TMP/x.txt" >/dev/null

"$TMP/stsserve" -addr "$ADDR" -flush 2ms &
SERVER_PID=$!

for _ in $(seq 50); do
  curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1 && break
  sleep 0.2
done
curl -fsS "http://$ADDR/healthz" >/dev/null

# Register the same plan the reference used (same deterministic
# generator, same ordering defaults → the same triangular system).
curl -fsS -X POST "http://$ADDR/v1/plans" \
  -d "{\"name\":\"g3\",\"class\":\"grid3d\",\"n\":$N,\"method\":\"sts3\"}" >"$TMP/plan.json"
grep -q '"loaded":true' "$TMP/plan.json" || { echo "plan not loaded: $(cat "$TMP/plan.json")"; exit 1; }

# One request body, fired by $CLIENTS concurrent clients so the
# coalescer actually gets to pack panels.
awk 'BEGIN{printf "{\"plan\":\"g3\",\"b\":["} {printf "%s%s",(NR>1?",":""),$1} END{printf "]}"}' \
  "$TMP/b.txt" >"$TMP/req.json"
seq "$CLIENTS" | xargs -P 32 -I{} curl -fsS -X POST "http://$ADDR/v1/solve" \
  --data-binary @"$TMP/req.json" -o "$TMP/out.{}"

# Every response must match the stssolve solution exactly.
lines=$(wc -l <"$TMP/x.txt")
for i in $(seq "$CLIENTS"); do
  sed 's/.*"x":\[//; s/\].*//' "$TMP/out.$i" | tr ',' '\n' >"$TMP/got.$i"
  got=$(wc -l <"$TMP/got.$i")
  [ "$got" = "$lines" ] || { echo "response $i: $got values, want $lines"; exit 1; }
  paste "$TMP/x.txt" "$TMP/got.$i" | awk '
    { if ($1+0 != $2+0) { bad++; if (bad<4) printf "  mismatch line %d: %s vs %s\n", NR, $1, $2 } }
    END { if (bad>0) { printf "response had %d mismatching values\n", bad; exit 1 } }' \
    || { echo "response $i differs from stssolve output"; exit 1; }
done
echo "all $CLIENTS responses match the stssolve solution bitwise"

curl -fsS "http://$ADDR/metrics" | grep -E "stsserve_panel_width_mean|stsserve_requests_solved_total|stsserve_solve_batches_total"

kill "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""
echo "serve smoke OK"
