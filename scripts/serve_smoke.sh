#!/usr/bin/env bash
# serve_smoke.sh — end-to-end smoke of the solve-as-a-service daemon:
# start stsserve, register a generated grid3d plan over HTTP, fire
# concurrent solve requests, and check every returned solution against
# the solution cmd/stssolve computes for the identical system (bitwise:
# both sides print/parse full-precision float64). Then update the plan's
# values mid-load (PUT /v1/plans/g3/values, ×2 — binary-exact) and check
# that every in-flight response matches one of the two epochs in full
# and every post-update response matches the scaled stssolve oracle.
# Finally the warm-restart check: a daemon with -snapshot-dir is killed
# and restarted on the same directory — the plan must come back from its
# snapshot (zero cold builds), at least 10x faster than the cold build,
# with bitwise-identical solves.
#
# Run from anywhere inside the repo: bash scripts/serve_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

N=4000
ADDR=127.0.0.1:8377
DADDR=127.0.0.1:8378
CLIENTS=48
TMP=$(mktemp -d)
SERVER_PID=""
cleanup() {
  [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
  rm -rf "$TMP"
}
trap cleanup EXIT

go build -o "$TMP/stsserve" ./cmd/stsserve
go build -o "$TMP/stssolve" ./cmd/stssolve

# Reference: solve the manufactured grid3d system with stssolve and dump
# the right-hand side and solution at full precision (%.17g round-trips
# float64 exactly).
"$TMP/stssolve" -class grid3d -n $N -method sts3 -repeats 1 \
  -dump-rhs "$TMP/b.txt" -dump-solution "$TMP/x.txt" >/dev/null

# Scaled oracle for the mid-load value update: solve the ×2-scaled
# system against the ORIGINAL b (the requests keep sending b.txt). ×2 is
# a power of two, so the scaled values and this run's solution are
# binary-exact — exactly what the server must produce after the PUT.
"$TMP/stssolve" -class grid3d -n $N -method sts3 -repeats 1 -scale-values 2 \
  -load-rhs "$TMP/b.txt" -dump-values "$TMP/vals2.txt" -dump-solution "$TMP/x2.txt" >/dev/null

"$TMP/stsserve" -addr "$ADDR" -debug-addr "$DADDR" -flush 2ms -drain-grace 2s &
SERVER_PID=$!

for _ in $(seq 50); do
  curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1 && break
  sleep 0.2
done
curl -fsS "http://$ADDR/healthz" >/dev/null

# Register the same plan the reference used (same deterministic
# generator, same ordering defaults → the same triangular system).
curl -fsS -X POST "http://$ADDR/v1/plans" \
  -d "{\"name\":\"g3\",\"class\":\"grid3d\",\"n\":$N,\"method\":\"sts3\"}" >"$TMP/plan.json"
grep -q '"loaded":true' "$TMP/plan.json" || { echo "plan not loaded: $(cat "$TMP/plan.json")"; exit 1; }

# One request body, fired by $CLIENTS concurrent clients so the
# coalescer actually gets to pack panels.
awk 'BEGIN{printf "{\"plan\":\"g3\",\"b\":["} {printf "%s%s",(NR>1?",":""),$1} END{printf "]}"}' \
  "$TMP/b.txt" >"$TMP/req.json"
seq "$CLIENTS" | xargs -P 32 -I{} curl -fsS -X POST "http://$ADDR/v1/solve" \
  --data-binary @"$TMP/req.json" -o "$TMP/out.{}"

# Every response must match the stssolve solution exactly.
lines=$(wc -l <"$TMP/x.txt")
for i in $(seq "$CLIENTS"); do
  sed 's/.*"x":\[//; s/\].*//' "$TMP/out.$i" | tr ',' '\n' >"$TMP/got.$i"
  got=$(wc -l <"$TMP/got.$i")
  [ "$got" = "$lines" ] || { echo "response $i: $got values, want $lines"; exit 1; }
  paste "$TMP/x.txt" "$TMP/got.$i" | awk '
    { if ($1+0 != $2+0) { bad++; if (bad<4) printf "  mismatch line %d: %s vs %s\n", NR, $1, $2 } }
    END { if (bad>0) { printf "response had %d mismatching values\n", bad; exit 1 } }' \
    || { echo "response $i differs from stssolve output"; exit 1; }
done
echo "all $CLIENTS responses match the stssolve solution bitwise"

curl -fsS "http://$ADDR/metrics" | grep -E "stsserve_panel_width_mean|stsserve_requests_solved_total|stsserve_solve_batches_total"

# --- observability: exposition, stage attribution, traces, pprof -----
# The scrape must be well-formed Prometheus text (monotone buckets,
# +Inf present, _count consistent) and carry the per-stage lifecycle
# histograms plus the runtime health series.
curl -fsS "http://$ADDR/metrics" >"$TMP/met.txt"
python3 scripts/check_exposition.py "$TMP/met.txt" \
  'stsserve_stage_latency_seconds_bucket{stage="queue_wait",outcome="ok"' \
  'stsserve_stage_latency_seconds_bucket{stage="coalesce_wait",outcome="ok"' \
  'stsserve_stage_latency_seconds_bucket{stage="kernel",outcome="ok"' \
  'stsserve_stage_latency_seconds_bucket{stage="serialize",outcome="ok"' \
  'stsserve_stage_latency_seconds_bucket{stage="admission",outcome="ok"' \
  'stsserve_plan_stage_seconds_sum{plan="g3",stage="kernel"}' \
  'stsserve_go_goroutines' \
  'stsserve_go_gc_pause_seconds_bucket'
# The load wave above actually flowed through the stages: the kernel
# stage must have observed at least $CLIENTS solves.
kc=$(sed -n 's/^stsserve_stage_latency_seconds_count{stage="kernel",outcome="ok"} //p' "$TMP/met.txt")
[ -n "$kc" ] && [ "$kc" -ge "$CLIENTS" ] \
  || { echo "kernel stage histogram saw $kc solves, want >= $CLIENTS"; exit 1; }

# A client-supplied trace ID round-trips to the response header and
# names a retained entry in the slow-trace ring.
curl -fsS -D "$TMP/thdr.txt" -X POST "http://$ADDR/v1/solve" \
  -H 'X-STS-Trace-Id: smoketrace42' --data-binary @"$TMP/req.json" -o /dev/null
grep -qi '^x-sts-trace-id: smoketrace42' "$TMP/thdr.txt" \
  || { echo "X-STS-Trace-Id not echoed:"; cat "$TMP/thdr.txt"; exit 1; }
curl -fsS "http://$ADDR/debug/traces?thresholdMs=0" >"$TMP/traces.json"
grep -q '"id":"smoketrace42"' "$TMP/traces.json" \
  || { echo "trace smoketrace42 not retained in /debug/traces"; exit 1; }
grep -q '"stage":"kernel"' "$TMP/traces.json" \
  || { echo "/debug/traces entries carry no kernel span"; exit 1; }
grep -q '"stage":"queue_wait"' "$TMP/traces.json" \
  || { echo "/debug/traces entries carry no queue_wait span"; exit 1; }
# Read-time threshold filtering: an absurd floor retains nothing.
curl -fsS "http://$ADDR/debug/traces?thresholdMs=1e9" | grep -q '"traces":\[\]' \
  || { echo "thresholdMs=1e9 still returned traces"; exit 1; }
# The /debug/traces and /metrics views are mirrored on the debug
# listener, next to pprof.
curl -fsS "http://$DADDR/debug/traces?thresholdMs=0" | grep -q '"enabled":true' \
  || { echo "debug listener does not serve /debug/traces"; exit 1; }

# Capture a CPU profile from the debug listener while a solve wave is
# in flight; the result must be a non-trivial gzipped pprof protobuf.
seq "$CLIENTS" | xargs -P 32 -I{} curl -fsS -X POST "http://$ADDR/v1/solve" \
  --data-binary @"$TMP/req.json" -o /dev/null &
PROF_WAVE=$!
curl -fsS "http://$DADDR/debug/pprof/profile?seconds=1" -o "$TMP/cpu.pb.gz"
wait "$PROF_WAVE"
[ "$(head -c2 "$TMP/cpu.pb.gz" | od -An -tx1 | tr -d ' \n')" = "1f8b" ] \
  || { echo "pprof profile is not gzipped protobuf"; exit 1; }
[ "$(wc -c <"$TMP/cpu.pb.gz")" -gt 100 ] || { echo "pprof profile implausibly small"; exit 1; }
echo "observability: exposition valid, stage histograms live, trace ID round-trips, pprof captured"

# --- numeric refactorization mid-load -------------------------------
# Fire a wave of solves and land the value update while they are in
# flight: the copy-on-write contract says every response is entirely
# old-epoch or entirely new-epoch, never a mix.
awk 'BEGIN{printf "{\"values\":["} {printf "%s%s",(NR>1?",":""),$1} END{printf "],\"ifVersion\":1}"}' \
  "$TMP/vals2.txt" >"$TMP/upd.json"
seq "$CLIENTS" | xargs -P 32 -I{} curl -fsS -X POST "http://$ADDR/v1/solve" \
  --data-binary @"$TMP/req.json" -o "$TMP/mid.{}" &
SOLVE_WAVE=$!
curl -fsS -X PUT "http://$ADDR/v1/plans/g3/values" \
  --data-binary @"$TMP/upd.json" >"$TMP/upd_resp.json"
grep -q '"version":2' "$TMP/upd_resp.json" || { echo "update response lacks version 2: $(cat "$TMP/upd_resp.json")"; exit 1; }
wait "$SOLVE_WAVE"

for i in $(seq "$CLIENTS"); do
  sed 's/.*"x":\[//; s/\].*//' "$TMP/mid.$i" | tr ',' '\n' >"$TMP/midgot.$i"
  paste "$TMP/x.txt" "$TMP/x2.txt" "$TMP/midgot.$i" | awk '
    { if ($1+0 != $3+0) old++; if ($2+0 != $3+0) new++ }
    END { if (old>0 && new>0) { printf "torn response: %d old-epoch and %d new-epoch mismatches\n", old, new; exit 1 } }' \
    || { echo "mid-update response $i matches neither epoch in full"; exit 1; }
done
echo "all $CLIENTS mid-update responses are epoch-consistent"

# After the update every response must match the scaled oracle exactly.
curl -fsS -X POST "http://$ADDR/v1/solve" --data-binary @"$TMP/req.json" -o "$TMP/post.json"
sed 's/.*"x":\[//; s/\].*//' "$TMP/post.json" | tr ',' '\n' >"$TMP/postgot.txt"
paste "$TMP/x2.txt" "$TMP/postgot.txt" | awk '
  { if ($1+0 != $2+0) { bad++; if (bad<4) printf "  mismatch line %d: %s vs %s\n", NR, $1, $2 } }
  END { if (bad>0) { printf "post-update response had %d mismatching values\n", bad; exit 1 } }' \
  || { echo "post-update response differs from the scaled stssolve solution"; exit 1; }
echo "post-update response matches the scaled stssolve solution bitwise"

curl -fsS "http://$ADDR/v1/plans" | grep -q '"version":2' || { echo "plan listing lacks version 2"; exit 1; }
curl -fsS "http://$ADDR/metrics" | grep -E "stsserve_value_updates_total|stsserve_plan_version"

# --- graceful drain over SIGTERM ------------------------------------
# BeginDrain flips /healthz to 503 "draining" while the listener is
# still open (the -drain-grace window), so load balancers route away
# before connections start failing; the daemon then exits 0.
kill -TERM "$SERVER_PID"
drained=""
for _ in $(seq 60); do
  code=$(curl -s -o "$TMP/drain.json" -w '%{http_code}' "http://$ADDR/healthz" 2>/dev/null || echo 000)
  if [ "$code" = "503" ] && grep -q '"draining"' "$TMP/drain.json"; then drained=1; break; fi
  sleep 0.05
done
[ -n "$drained" ] || { echo "healthz never reported draining after SIGTERM"; exit 1; }
rc=0; wait "$SERVER_PID" || rc=$?
SERVER_PID=""
[ "$rc" = "0" ] || { echo "stsserve exited $rc after SIGTERM, want 0"; exit 1; }
echo "SIGTERM drain: healthz flipped to draining, daemon exited 0"

# --- snapshot persistence: warm restart ------------------------------
# Register a plan big enough that the cold ordering-pipeline build costs
# real time, kill the daemon (drain persists the write-behind snapshot),
# restart on the same -snapshot-dir, and require: the plan is resident
# at boot with zero cold builds, WarmStart beat the cold build by >= 10x,
# and a solve matches the stssolve oracle bitwise.
SNAPN=1000000
SNAPDIR="$TMP/snaps"
"$TMP/stssolve" -class grid3d -n $SNAPN -method sts3 -repeats 1 \
  -dump-rhs "$TMP/sb.txt" -dump-solution "$TMP/sx.txt" >/dev/null
awk 'BEGIN{printf "{\"plan\":\"big\",\"b\":["} {printf "%s%s",(NR>1?",":""),$1} END{printf "]}"}' \
  "$TMP/sb.txt" >"$TMP/sreq.json"

"$TMP/stsserve" -addr "$ADDR" -snapshot-dir "$SNAPDIR" 2>"$TMP/cold.log" &
SERVER_PID=$!
for _ in $(seq 50); do
  curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1 && break
  sleep 0.2
done
cold_start=$(date +%s%N)
curl -fsS -X POST "http://$ADDR/v1/plans" \
  -d "{\"name\":\"big\",\"class\":\"grid3d\",\"n\":$SNAPN,\"method\":\"sts3\"}" >/dev/null
cold_ns=$(( $(date +%s%N) - cold_start ))
kill -TERM "$SERVER_PID"
rc=0; wait "$SERVER_PID" || rc=$?
SERVER_PID=""
[ "$rc" = "0" ] || { echo "stsserve exited $rc after SIGTERM, want 0"; exit 1; }
[ -f "$SNAPDIR/big.snap" ] || { echo "no snapshot persisted at $SNAPDIR/big.snap"; exit 1; }

# Restart twice and keep the faster WarmStart: the ratio compares work
# (snapshot reload vs ordering pipeline), and the minimum is the right
# estimator against one-off scheduler noise on loaded CI machines.
warm_best=""
for attempt in 1 2; do
  "$TMP/stsserve" -addr "$ADDR" -snapshot-dir "$SNAPDIR" 2>"$TMP/warm.log" &
  SERVER_PID=$!
  for _ in $(seq 50); do
    curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1 && break
    sleep 0.2
  done
  w=$(sed -n 's/.*msg="warm-started plans" count=1 .*duration=//p' "$TMP/warm.log" | python3 -c '
import re, sys
s = sys.stdin.read().strip()
m = re.fullmatch(r"(?:(\d+)m)?(?:([\d.]+)s)?(?:([\d.]+)ms)?(?:[\d.]+\xc2?\xb5s)?(?:\d+ns)?", s)
mins, secs, ms = (float(g) if g else 0.0 for g in m.groups())
print(int(mins*60000 + secs*1000 + ms))
')
  if [ -z "$warm_best" ] || [ "$w" -lt "$warm_best" ]; then warm_best=$w; fi
  if [ "$attempt" = "1" ]; then
    kill -TERM "$SERVER_PID"
    rc=0; wait "$SERVER_PID" || rc=$?
    SERVER_PID=""
    [ "$rc" = "0" ] || { echo "stsserve exited $rc after SIGTERM, want 0"; exit 1; }
  fi
done
curl -fsS "http://$ADDR/v1/plans" >"$TMP/warmlist.json"
grep -q '"name":"big"' "$TMP/warmlist.json" || { echo "warm restart lost the plan: $(cat "$TMP/warmlist.json")"; exit 1; }
grep -q '"loaded":true' "$TMP/warmlist.json" || { echo "warm-restarted plan not resident: $(cat "$TMP/warmlist.json")"; exit 1; }

# The restarted daemon must have performed zero cold builds...
curl -fsS "http://$ADDR/metrics" >"$TMP/warmmet.txt"
grep -q '^stsserve_plan_builds_total 0$' "$TMP/warmmet.txt" \
  || { echo "warm restart ran a cold build:"; grep stsserve_plan_builds_total "$TMP/warmmet.txt"; exit 1; }
grep -q '^stsserve_snapshot_loads_total 1$' "$TMP/warmmet.txt" \
  || { echo "warm restart did not load the snapshot:"; grep stsserve_snapshot_loads_total "$TMP/warmmet.txt"; exit 1; }

# ...at least 10x faster than the cold build (WarmStart duration from
# the daemon's own boot log vs the timed cold registration).
warm_ms=$warm_best
cold_ms=$(( cold_ns / 1000000 ))
echo "warm restart: cold build ${cold_ms}ms, warm start ${warm_ms}ms"
[ "$warm_ms" -gt 0 ] || warm_ms=1
[ $(( cold_ms / warm_ms )) -ge 10 ] \
  || { echo "warm restart only $(( cold_ms / warm_ms ))x faster than cold build, want >= 10x"; exit 1; }

# Bitwise solve on the warm-restarted plan, and still zero cold builds.
curl -fsS -X POST "http://$ADDR/v1/solve" --data-binary @"$TMP/sreq.json" -o "$TMP/sout.json"
sed 's/.*"x":\[//; s/\].*//' "$TMP/sout.json" | tr ',' '\n' >"$TMP/sgot.txt"
paste "$TMP/sx.txt" "$TMP/sgot.txt" | awk '
  { if ($1+0 != $2+0) { bad++; if (bad<4) printf "  mismatch line %d: %s vs %s\n", NR, $1, $2 } }
  END { if (bad>0) { printf "warm-restarted response had %d mismatching values\n", bad; exit 1 } }' \
  || { echo "warm-restarted solve differs from the stssolve solution"; exit 1; }
curl -fsS "http://$ADDR/metrics" >"$TMP/postmet.txt"
grep -q '^stsserve_plan_builds_total 0$' "$TMP/postmet.txt" \
  || { echo "solve on the warm-restarted plan triggered a cold build"; exit 1; }
echo "warm restart: snapshot reload $(( cold_ms / warm_ms ))x faster than cold build, solve bitwise identical"

kill -TERM "$SERVER_PID"
rc=0; wait "$SERVER_PID" || rc=$?
SERVER_PID=""
[ "$rc" = "0" ] || { echo "stsserve exited $rc after SIGTERM, want 0"; exit 1; }
echo "serve smoke OK"
