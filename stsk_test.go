package stsk

import (
	"math/rand"
	"strings"
	"testing"
)

func TestGenerateClasses(t *testing.T) {
	for _, class := range []string{"grid2d", "grid3d", "kkt3d", "fem3d", "rgg", "trimesh", "quaddual", "roadnet"} {
		m, err := Generate(class, 1200)
		if err != nil {
			t.Fatalf("%s: %v", class, err)
		}
		if m.N() < 100 {
			t.Fatalf("%s: n=%d too small", class, m.N())
		}
		if m.NNZ() < m.N() || m.RowDensity() < 1 {
			t.Fatalf("%s: implausible nnz", class)
		}
	}
	if _, err := Generate("nope", 100); err == nil {
		t.Fatal("unknown class accepted")
	}
}

func TestGenerateSuiteAndIDs(t *testing.T) {
	ids := SuiteIDs()
	if len(ids) != 12 || ids[0] != "G1" || ids[11] != "D10" {
		t.Fatalf("SuiteIDs = %v", ids)
	}
	m, err := GenerateSuite("D2", 800)
	if err != nil {
		t.Fatal(err)
	}
	if m.N() < 400 {
		t.Fatalf("suite matrix too small: %d", m.N())
	}
	if _, err := GenerateSuite("X9", 100); err == nil {
		t.Fatal("unknown suite id accepted")
	}
}

func TestBuildSolveRoundTripAllMethods(t *testing.T) {
	m, err := Generate("trimesh", 1500)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for _, method := range Methods() {
		p, err := Build(m, method, WithRowsPerSuper(10))
		if err != nil {
			t.Fatalf("%v: %v", method, err)
		}
		if p.Method() != method || p.N() != m.N() {
			t.Fatalf("%v: plan metadata wrong", method)
		}
		xTrue := make([]float64, p.N())
		for i := range xTrue {
			xTrue[i] = rng.NormFloat64()
		}
		b := p.RHSFor(xTrue)
		x, err := p.Solve(b)
		if err != nil {
			t.Fatalf("%v: %v", method, err)
		}
		if r := p.Residual(x, b); r > 1e-9 {
			t.Fatalf("%v: residual %g", method, r)
		}
		seq, err := p.SolveSequential(b)
		if err != nil {
			t.Fatalf("%v: %v", method, err)
		}
		for i := range seq {
			if d := seq[i] - x[i]; d > 1e-9 || d < -1e-9 {
				t.Fatalf("%v: parallel and sequential disagree at %d", method, i)
			}
		}
	}
}

func TestSolveWithSchedules(t *testing.T) {
	m, _ := Generate("grid2d", 800)
	p, err := Build(m, STS3)
	if err != nil {
		t.Fatal(err)
	}
	xTrue := make([]float64, p.N())
	for i := range xTrue {
		xTrue[i] = 1.5
	}
	b := p.RHSFor(xTrue)
	for _, sched := range []ScheduleChoice{DefaultSchedule, StaticSchedule, DynamicSchedule, GuidedSchedule, GraphSchedule} {
		x, err := p.SolveWith(b, WithWorkers(3), WithSchedule(sched), WithChunk(2))
		if err != nil {
			t.Fatalf("schedule %d: %v", sched, err)
		}
		if r := p.Residual(x, b); r > 1e-9 {
			t.Fatalf("schedule %d: residual %g", sched, r)
		}
	}
}

func TestPermutationHelpers(t *testing.T) {
	m, _ := Generate("grid2d", 400)
	p, err := Build(m, CSRCOL)
	if err != nil {
		t.Fatal(err)
	}
	perm := p.Permutation()
	if len(perm) != p.N() {
		t.Fatal("permutation length wrong")
	}
	v := make([]float64, p.N())
	for i := range v {
		v[i] = float64(i)
	}
	round := p.UnpermuteVector(p.PermuteVector(v))
	for i := range v {
		if round[i] != v[i] {
			t.Fatal("permute/unpermute not inverse")
		}
	}
	// Mutating the returned permutation must not corrupt the plan.
	perm[0] = -999
	if p.Permutation()[0] == -999 {
		t.Fatal("Permutation() exposed internal state")
	}
}

func TestStats(t *testing.T) {
	m, _ := Generate("trimesh", 1200)
	col, _ := Build(m, STS3, WithRowsPerSuper(10))
	ls, _ := Build(m, CSRLS)
	sc, sl := col.Stats(), ls.Stats()
	if sc.NumPacks >= sl.NumPacks {
		t.Fatalf("STS-3 packs %d not fewer than CSR-LS %d", sc.NumPacks, sl.NumPacks)
	}
	if sc.WorkShareTop5 <= sl.WorkShareTop5 {
		t.Fatal("STS-3 should concentrate work in fewer packs")
	}
	if sc.Rows != m.N() || sc.NNZ <= 0 || sc.LargestPackRows <= 0 {
		t.Fatalf("stats incomplete: %+v", sc)
	}
}

func TestSimulate(t *testing.T) {
	m, _ := Generate("trimesh", 1000)
	p, err := Build(m, STS3, WithRowsPerSuper(10))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range MachineNames() {
		res, err := p.Simulate(name, 8)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Cycles == 0 || res.HitRate <= 0 {
			t.Fatalf("%s: empty result %+v", name, res)
		}
	}
	if _, err := p.Simulate("cray", 8); err == nil {
		t.Fatal("unknown machine accepted")
	}
}

func TestReadMatrixMarketFacade(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate real general
4 4 7
1 1 4.0
2 2 4.0
3 3 4.0
4 4 4.0
2 1 -1.0
3 2 -1.0
4 3 -1.0
`
	m, err := ReadMatrixMarket(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	// The triangular input must have been symmetrised.
	p, err := Build(m, STS3)
	if err != nil {
		t.Fatal(err)
	}
	xTrue := []float64{1, 2, 3, 4}
	b := p.RHSFor(xTrue)
	x, err := p.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	if r := p.Residual(x, b); r > 1e-12 {
		t.Fatalf("residual %g", r)
	}
	if _, err := ReadMatrixMarket(strings.NewReader("junk")); err == nil {
		t.Fatal("junk accepted")
	}
}
