package stsk

import (
	"errors"
	"fmt"
	"io"
	"io/fs"

	"stsk/internal/csrk"
	"stsk/internal/order"
	"stsk/internal/snapshot"
	"stsk/internal/solve"
	"stsk/internal/sparse"
)

// ErrBadSnapshot reports a plan snapshot that cannot be loaded: a
// corrupted or truncated file, an incompatible format version, or a
// decoded image whose arrays fail the plan invariants (non-triangular
// factor, non-bijective permutation, inconsistent task DAG). Loaders
// match it with errors.Is and fall back to a cold Build — a bad snapshot
// is never worse than having no snapshot.
var ErrBadSnapshot = fmt.Errorf("stsk: bad plan snapshot")

// SnapshotExtra is opaque embedder data carried inside a plan snapshot
// under the same checksum as the plan itself. The serve registry stores
// its plan spec and registry-level value version in Meta and the latest
// input-order value array in AuxVals; the core library never interprets
// either field.
type SnapshotExtra struct {
	Meta    []byte
	AuxVals []float64
}

// WriteSnapshot serializes the plan — permutation, super-row packs, task
// DAG, source pattern, and the current value epoch — to w in the
// versioned, checksummed format of internal/snapshot. A plan reloaded
// from the stream with ReadSnapshot solves bitwise identically to this
// one and accepts Refactor for the same input pattern.
//
// Derived plans (IC0 factors) are refused with ErrSparsityMismatch: they
// carry no source pattern, so a reload could never Refactor them —
// re-derive them from their reloaded base plan instead.
//
// The serialized value epoch and version are taken from one atomic
// epoch load, so a snapshot written concurrently with Refactor calls is
// always internally consistent (some complete epoch, never a mix).
func (p *Plan) WriteSnapshot(w io.Writer, extra SnapshotExtra) error {
	img, err := p.snapshotImage(extra)
	if err != nil {
		return err
	}
	return snapshot.Write(w, img)
}

// WriteSnapshotFile is WriteSnapshot to a file, written atomically
// (temp file + rename in the destination directory) so concurrent
// readers never observe a partial snapshot.
func (p *Plan) WriteSnapshotFile(path string, extra SnapshotExtra) error {
	img, err := p.snapshotImage(extra)
	if err != nil {
		return err
	}
	return snapshot.WriteFile(path, img)
}

// snapshotImage assembles the serialization image of the plan's current
// state. The value epoch and its version come from one atomic epoch
// load, so the image is internally consistent under concurrent Refactor.
func (p *Plan) snapshotImage(extra SnapshotExtra) (*snapshot.Image, error) {
	if p.origCol == nil {
		return nil, fmt.Errorf("%w: plan derives its values (IC0 factor); snapshot the base plan and re-derive after reload", ErrSparsityMismatch)
	}
	dag := p.taskDAG()
	s, seq := p.vals.Snapshot()
	return &snapshot.Image{
		Method:       int32(p.inner.Method),
		NumPacks:     int32(p.inner.NumPacks),
		N:            s.L.N,
		ValueVersion: seq,
		Perm:         p.inner.Perm,
		RowPtr:       s.L.RowPtr,
		Col:          s.L.Col,
		Val:          s.L.Val,
		SuperPtr:     s.SuperPtr,
		PackPtr:      s.PackPtr,
		OrigRowPtr:   p.origRowPtr,
		OrigCol:      p.origCol,
		DAG:          dag,
		Meta:         extra.Meta,
		AuxVals:      extra.AuxVals,
	}, nil
}

// ReadSnapshot reconstructs a Plan from a snapshot stream. The decoded
// image is re-validated end to end — CRC and framing by the codec,
// triangularity, diagonals, pack independence, permutation bijectivity,
// source-pattern shape, and task-DAG consistency here — before any Plan
// is built, so a corrupted, truncated, or version-skewed snapshot
// returns an error matching ErrBadSnapshot and never a panic or a
// silently wrong plan.
//
// The reloaded plan resumes the serialized value-epoch version (its
// ValuesVersion continues where the writer's left off), reuses the
// serialized task DAG without rebuilding it, and solves bitwise
// identically to the plan that wrote the snapshot.
func ReadSnapshot(r io.Reader) (*Plan, SnapshotExtra, error) {
	img, err := snapshot.Read(r)
	if err != nil {
		return nil, SnapshotExtra{}, fmt.Errorf("%w: %w", ErrBadSnapshot, err)
	}
	p, err := planFromImage(img)
	if err != nil {
		return nil, SnapshotExtra{}, err
	}
	return p, SnapshotExtra{Meta: img.Meta, AuxVals: img.AuxVals}, nil
}

// ReadSnapshotFile is ReadSnapshot over a file path, on the codec's
// bulk-read fast path: the whole file is read in one syscall and
// decoded in place, skipping the incremental stream buffering — on
// multi-plan warm starts this roughly halves reload time. File-system
// errors (notably fs.ErrNotExist) pass through unwrapped so callers
// can distinguish "no snapshot" from "bad snapshot".
func ReadSnapshotFile(path string) (*Plan, SnapshotExtra, error) {
	img, err := snapshot.ReadFile(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, SnapshotExtra{}, err
		}
		return nil, SnapshotExtra{}, fmt.Errorf("%s: %w: %w", path, ErrBadSnapshot, err)
	}
	p, err := planFromImage(img)
	if err != nil {
		return nil, SnapshotExtra{}, fmt.Errorf("%s: %w", path, err)
	}
	return p, SnapshotExtra{Meta: img.Meta, AuxVals: img.AuxVals}, nil
}

// newPlanVersion is newPlan resuming a serialized value-epoch sequence
// number — the snapshot-reload constructor.
func newPlanVersion(inner *order.Plan, version uint64) *Plan {
	return &Plan{inner: inner, vals: solve.NewValuesVersion(inner.S, version)}
}

// planFromImage validates a decoded snapshot image semantically and
// assembles the Plan. Every invariant the build pipeline guarantees is
// re-checked here, because the image came from disk, not from order.Build.
func planFromImage(img *snapshot.Image) (*Plan, error) {
	bad := func(format string, a ...any) (*Plan, error) {
		return nil, fmt.Errorf("%w: %s", ErrBadSnapshot, fmt.Sprintf(format, a...))
	}
	method := order.Method(img.Method)
	valid := false
	for _, m := range order.Methods() {
		if m == method {
			valid = true
		}
	}
	if !valid {
		return bad("unknown method %d", img.Method)
	}
	n := img.N
	if n < 1 {
		return bad("dimension %d", n)
	}
	l := &sparse.CSR{N: n, RowPtr: img.RowPtr, Col: img.Col, Val: img.Val}
	s, err := csrk.Build(l, img.SuperPtr, img.PackPtr)
	if err != nil {
		return bad("factor fails validation: %v", err)
	}
	if int(img.NumPacks) != s.NumPacks() {
		return bad("pack count %d disagrees with PackPtr (%d)", img.NumPacks, s.NumPacks())
	}
	if len(img.Perm) != n {
		return bad("permutation length %d for dimension %d", len(img.Perm), n)
	}
	seen := make([]bool, n)
	for i, pi := range img.Perm {
		if pi < 0 || pi >= n || seen[pi] {
			return bad("permutation not a bijection at index %d", i)
		}
		seen[pi] = true
	}
	if err := checkOrigPattern(img.OrigRowPtr, img.OrigCol, n); err != nil {
		return nil, fmt.Errorf("%w: source pattern: %v", ErrBadSnapshot, err)
	}
	if img.DAG == nil {
		return bad("missing task DAG")
	}
	if err := checkDAGBounds(img.DAG, s); err != nil {
		return nil, fmt.Errorf("%w: task dag: %v", ErrBadSnapshot, err)
	}
	if err := img.DAG.Validate(s); err != nil {
		return nil, fmt.Errorf("%w: task dag: %v", ErrBadSnapshot, err)
	}

	inner := &order.Plan{
		Method:   method,
		Perm:     img.Perm,
		S:        s,
		NumPacks: int(img.NumPacks),
	}
	p := newPlanVersion(inner, img.ValueVersion)
	p.origRowPtr, p.origCol = img.OrigRowPtr, img.OrigCol
	// Adopt the serialized DAG so the graph schedule is warm immediately —
	// rebuilding it would forfeit a chunk of the warm-restart win.
	p.dag = img.DAG
	p.dagPar = img.DAG.Parallelism()
	return p, nil
}

// checkOrigPattern validates the serialized source-matrix pattern that
// Refactor maps input-order values through.
func checkOrigPattern(rowPtr, col []int, n int) error {
	if len(rowPtr) != n+1 {
		return fmt.Errorf("RowPtr length %d, want %d", len(rowPtr), n+1)
	}
	if rowPtr[0] != 0 || rowPtr[n] != len(col) {
		return fmt.Errorf("RowPtr spans [%d,%d], want [0,%d]", rowPtr[0], rowPtr[n], len(col))
	}
	for i := 0; i < n; i++ {
		if rowPtr[i] > rowPtr[i+1] {
			return fmt.Errorf("RowPtr decreases at row %d", i)
		}
	}
	for k, j := range col {
		if j < 0 || j >= n {
			return fmt.Errorf("column %d out of range at entry %d", j, k)
		}
	}
	return nil
}

// checkDAGBounds verifies every index stored in a deserialized TaskDAG
// before TaskDAG.Validate walks it — Validate assumes builder-produced
// arrays and would index out of bounds on hostile pointer values.
func checkDAGBounds(d *csrk.TaskDAG, s *csrk.Structure) error {
	nt := len(d.TaskPtr) - 1
	if nt < 1 {
		return fmt.Errorf("no tasks")
	}
	if len(d.RowPtr) != nt+1 || len(d.PredPtr) != nt+1 || len(d.SuccPtr) != nt+1 {
		return fmt.Errorf("pointer arrays disagree on task count")
	}
	if err := checkPtr32(d.TaskPtr, s.NumSuperRows(), "TaskPtr"); err != nil {
		return err
	}
	if err := checkPtr32(d.PredPtr, len(d.Pred), "PredPtr"); err != nil {
		return err
	}
	if err := checkPtr32(d.SuccPtr, len(d.Succ), "SuccPtr"); err != nil {
		return err
	}
	for _, u := range d.Succ {
		if u < 0 || int(u) >= nt {
			return fmt.Errorf("successor %d out of range [0,%d)", u, nt)
		}
	}
	return nil
}

// checkPtr32 verifies an int32 pointer array is monotone nondecreasing
// from 0 to span, so slicing data arrays through it cannot fault.
func checkPtr32(ptr []int32, span int, name string) error {
	if len(ptr) < 2 {
		return fmt.Errorf("%s too short (%d)", name, len(ptr))
	}
	if ptr[0] != 0 || int(ptr[len(ptr)-1]) != span {
		return fmt.Errorf("%s spans [%d,%d], want [0,%d]", name, ptr[0], ptr[len(ptr)-1], span)
	}
	for i := 1; i < len(ptr); i++ {
		if ptr[i] < ptr[i-1] {
			return fmt.Errorf("%s decreases at %d", name, i)
		}
	}
	return nil
}
