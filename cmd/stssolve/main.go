// Command stssolve performs an end-to-end sparse triangular solution:
// it loads or generates a matrix, builds the requested STS-k ordering,
// solves L′x = b for a manufactured right-hand side, and reports the
// residual, wall-clock timing over repeats, and the modeled NUMA cycles.
//
// With -rhs N it instead streams N right-hand sides through the same plan
// and compares the five solve paths: one-shot (fresh goroutines per
// solve), pooled (persistent Solver, pack-parallel per RHS), batched
// (persistent Solver, one worker pipelining each RHS through the packs),
// streamed (the SolveSeq iterator, results in input order), and blocked
// (panel kernels sweeping the matrix once per RHS panel).
//
// -timeout bounds the whole run with a context deadline: an expired
// deadline cancels the in-flight batch or stream, which reports
// context.DeadlineExceeded and exits — the cancellation path a service
// embedding this library would take.
//
// -dump-rhs and -dump-solution write the manufactured b and computed x
// (plan order, %.17g — exact float64 round-trip) for external
// verification; the serve e2e smoke compares stsserve responses against
// them bitwise. -scale-values rescales the matrix's values before the
// build, -dump-values writes the value array itself, and -load-rhs
// replays a previously dumped b instead of manufacturing one; together
// they give refactorization tooling (PUT /v1/plans/{name}/values) an
// independent oracle: a power-of-two scale is binary-exact, so solving
// the scaled system against the original b yields exactly the solution
// a value update must make the server produce.
//
// Usage:
//
//	stssolve -class trimesh -n 100000 -method sts3 -workers 8
//	stssolve -file matrix.mtx -method csr-col -repeats 20
//	stssolve -class grid3d -n 100000 -rhs 256 -timeout 30s
//	stssolve -class grid3d -n 100000 -schedule graph   # force the P2P schedule
//	                                                   # (barrier: -schedule guided)
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"slices"
	"strconv"
	"strings"
	"time"

	"stsk"
)

func main() {
	var (
		class    = flag.String("class", "trimesh", "synthetic matrix class")
		file     = flag.String("file", "", "Matrix Market file (overrides -class)")
		n        = flag.Int("n", 50000, "target rows for generated matrices")
		method   = flag.String("method", "sts3", "csr-ls | csr-3-ls | csr-col | sts3")
		sched    = flag.String("schedule", "default", "default | static | dynamic | guided | graph")
		workers  = flag.Int("workers", 0, "solver goroutines (0 = GOMAXPROCS)")
		repeats  = flag.Int("repeats", 10, "timed solve repetitions (averaged, as in §4.1)")
		rhs      = flag.Int("rhs", 0, "stream this many right-hand sides through the solve engines instead of the single-RHS run")
		timeout  = flag.Duration("timeout", 0, "overall deadline for the solve phase (0 = none)")
		machine  = flag.String("machine", "intel", "topology for modeled cycles (intel, amd, uma)")
		cores    = flag.Int("cores", 16, "modeled cores")
		dumpRHS  = flag.String("dump-rhs", "", "write the manufactured right-hand side b (plan order, %.17g per line) to this file")
		loadRHS  = flag.String("load-rhs", "", "read the right-hand side b from this file (one float per line, plan order) instead of manufacturing one")
		dumpSol  = flag.String("dump-solution", "", "write the computed solution x (plan order, %.17g per line) to this file")
		dumpVal  = flag.String("dump-values", "", "write the matrix's value array (CSR order, %.17g per line) to this file — the array Plan.Refactor and PUT /v1/plans/{name}/values accept")
		scaleVal = flag.Float64("scale-values", 1, "rescale every matrix value by this factor before building (powers of two are binary-exact) — an independent oracle for numeric refactorization")
	)
	flag.Parse()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	m, err := stsk.ParseMethod(*method)
	if err != nil {
		fatal(err)
	}
	schedule, err := parseSchedule(*sched)
	if err != nil {
		fatal(err)
	}
	var mat *stsk.Matrix
	if *file != "" {
		if mat, err = stsk.ReadMatrixMarketFile(*file); err != nil {
			fatal(err)
		}
	} else {
		if mat, err = stsk.Generate(*class, *n); err != nil {
			fatal(err)
		}
	}
	if *scaleVal != 1 {
		vals := mat.Values()
		for i := range vals {
			vals[i] *= *scaleVal
		}
		if err := mat.SetValues(vals); err != nil {
			fatal(err)
		}
	}
	if *dumpVal != "" {
		if err := dumpVector(*dumpVal, mat.Values()); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("matrix: n=%d nnz=%d\n", mat.N(), mat.NNZ())

	buildStart := time.Now()
	plan, err := stsk.Build(mat, m)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("plan: method=%v packs=%d (built in %v; amortised over repeats, §4.1)\n",
		plan.Method(), plan.NumPacks(), time.Since(buildStart).Round(time.Microsecond))

	if *rhs > 0 {
		runMultiRHS(ctx, plan, *rhs, *workers, schedule)
		return
	}

	var b []float64
	if *loadRHS != "" {
		if b, err = loadVector(*loadRHS); err != nil {
			fatal(err)
		}
		if len(b) != plan.N() {
			fatal(fmt.Errorf("-load-rhs %s: %d values, want %d", *loadRHS, len(b), plan.N()))
		}
	} else {
		xTrue := make([]float64, plan.N())
		for i := range xTrue {
			xTrue[i] = 1
		}
		b = plan.RHSFor(xTrue)
	}

	// Warm-up + correctness.
	x, err := plan.SolveWith(b, stsk.WithWorkers(*workers), stsk.WithSchedule(schedule))
	if err != nil {
		fatal(err)
	}
	fmt.Printf("residual: %.3g\n", plan.Residual(x, b))

	solver := plan.NewSolver(stsk.WithWorkers(*workers), stsk.WithSchedule(schedule))
	defer solver.Close()
	start := time.Now()
	for i := 0; i < *repeats; i++ {
		if err = solver.SolveIntoCtx(ctx, x, b); err != nil {
			fatal(err)
		}
	}
	wall := time.Since(start) / time.Duration(*repeats)
	fmt.Printf("wall-clock: %v per solve (mean of %d; unpinned goroutines — noisy)\n", wall, *repeats)

	// Full-precision dumps let external tooling (the serve e2e smoke)
	// replay exactly this system and compare solutions bitwise.
	if *dumpRHS != "" {
		if err := dumpVector(*dumpRHS, b); err != nil {
			fatal(err)
		}
	}
	if *dumpSol != "" {
		if err := dumpVector(*dumpSol, x); err != nil {
			fatal(err)
		}
	}

	sim, err := plan.Simulate(*machine, *cores)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("modeled: %d cycles on %s@%d cores (sync %d, hit rate %.1f%%)\n",
		sim.Cycles, sim.Machine, sim.Cores, sim.SyncCycles, sim.HitRate*100)
}

// runMultiRHS streams n manufactured right-hand sides through the plan
// five ways and reports throughput: the one-shot path (goroutines spawned
// per solve), the pooled path (persistent Solver, whole pool per RHS),
// the batched path (persistent Solver, RHSs pipelined one per worker),
// the streamed path (the SolveSeq iterator, results in input order), and
// the blocked path (panel kernels, one matrix sweep per RHS panel).
// All paths run under ctx, so a -timeout deadline cancels them mid-batch.
func runMultiRHS(ctx context.Context, plan *stsk.Plan, n, workers int, schedule stsk.ScheduleChoice) {
	w := workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	B := make([][]float64, n)
	xTrue := make([]float64, plan.N())
	for r := range B {
		for i := range xTrue {
			xTrue[i] = math.Sin(float64(i + r))
		}
		B[r] = plan.RHSFor(xTrue)
	}
	fmt.Printf("streaming %d right-hand sides, %d workers\n", n, w)

	solver := plan.NewSolver(stsk.WithWorkers(w), stsk.WithSchedule(schedule))
	defer solver.Close()

	// One-shot: the Plan.SolveWith path, fresh goroutines per solve.
	start := time.Now()
	for _, b := range B {
		if _, err := plan.SolveWith(b, stsk.WithWorkers(w), stsk.WithSchedule(schedule)); err != nil {
			fatal(err)
		}
	}
	oneShot := time.Since(start)

	// Pooled: same pack-parallel solve per RHS, parked workers reused and
	// the solution buffer too — no per-solve allocation in the timed loop.
	x := make([]float64, plan.N())
	start = time.Now()
	for _, b := range B {
		if err := solver.SolveIntoCtx(ctx, x, b); err != nil {
			fatal(err)
		}
	}
	pooled := time.Since(start)

	// Batched: each RHS swept by one worker, no barriers, RHSs pipelined.
	start = time.Now()
	X, err := solver.SolveBatchCtx(ctx, B)
	if err != nil {
		fatal(err)
	}
	batched := time.Since(start)

	// Streamed: the SolveSeq iterator — batch semantics, results ranged
	// over in input order with no channel boilerplate.
	start = time.Now()
	for _, res := range solver.SolveSeq(ctx, slices.Values(B)) {
		if res.Err != nil {
			fatal(res.Err)
		}
	}
	streamed := time.Since(start)

	// Blocked: the panel kernels — RHSs grouped into row-major panels and
	// the matrix swept once per panel instead of once per vector. One
	// untimed pass first: the pooled n×8 panel scratch is faulted in on
	// first touch, which would otherwise dominate a single cold pass at
	// large n (the other solver lanes inherit a warm pool the same way).
	if _, err := solver.SolveBlock(ctx, B); err != nil {
		fatal(err)
	}
	start = time.Now()
	P, err := solver.SolveBlock(ctx, B)
	if err != nil {
		fatal(err)
	}
	blocked := time.Since(start)

	worst := 0.0
	for r := range B {
		if rr := plan.Residual(X[r], B[r]); rr > worst {
			worst = rr
		}
		for i := range P[r] {
			if P[r][i] != X[r][i] {
				fatal(fmt.Errorf("blocked solve differs from batched at rhs %d index %d", r, i))
			}
		}
	}
	fmt.Printf("worst batched residual: %.3g (blocked bitwise equal)\n", worst)
	report := func(name string, d time.Duration) {
		fmt.Printf("%-9s %10.1f solves/s  (%v total, %.2fx vs one-shot)\n",
			name, float64(n)/d.Seconds(), d.Round(time.Millisecond), oneShot.Seconds()/d.Seconds())
	}
	report("one-shot", oneShot)
	report("pooled", pooled)
	report("batched", batched)
	report("streamed", streamed)
	report("blocked", blocked)
}

func parseSchedule(s string) (stsk.ScheduleChoice, error) {
	switch strings.ToLower(s) {
	case "default", "":
		return stsk.DefaultSchedule, nil
	case "static":
		return stsk.StaticSchedule, nil
	case "dynamic":
		return stsk.DynamicSchedule, nil
	case "guided":
		return stsk.GuidedSchedule, nil
	case "graph":
		return stsk.GraphSchedule, nil
	}
	return 0, fmt.Errorf("unknown schedule %q", s)
}

// loadVector reads one float per line, the format dumpVector writes.
func loadVector(path string) ([]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var v []float64
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		x, err := strconv.ParseFloat(line, 64)
		if err != nil {
			return nil, fmt.Errorf("%s line %d: %w", path, len(v)+1, err)
		}
		v = append(v, x)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return v, nil
}

// dumpVector writes one float per line with enough digits (%.17g) that
// parsing the text reproduces the exact float64 bits.
func dumpVector(path string, v []float64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	for _, x := range v {
		fmt.Fprintf(w, "%.17g\n", x)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "stssolve:", err)
	os.Exit(1)
}
