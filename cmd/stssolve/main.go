// Command stssolve performs an end-to-end sparse triangular solution:
// it loads or generates a matrix, builds the requested STS-k ordering,
// solves L′x = b for a manufactured right-hand side, and reports the
// residual, wall-clock timing over repeats, and the modeled NUMA cycles.
//
// Usage:
//
//	stssolve -class trimesh -n 100000 -method sts3 -workers 8
//	stssolve -file matrix.mtx -method csr-col -repeats 20
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"stsk"
)

func main() {
	var (
		class   = flag.String("class", "trimesh", "synthetic matrix class")
		file    = flag.String("file", "", "Matrix Market file (overrides -class)")
		n       = flag.Int("n", 50000, "target rows for generated matrices")
		method  = flag.String("method", "sts3", "csr-ls | csr-3-ls | csr-col | sts3")
		workers = flag.Int("workers", 0, "solver goroutines (0 = GOMAXPROCS)")
		repeats = flag.Int("repeats", 10, "timed solve repetitions (averaged, as in §4.1)")
		machine = flag.String("machine", "intel", "topology for modeled cycles (intel, amd, uma)")
		cores   = flag.Int("cores", 16, "modeled cores")
	)
	flag.Parse()

	m, err := parseMethod(*method)
	if err != nil {
		fatal(err)
	}
	var mat *stsk.Matrix
	if *file != "" {
		f, err := os.Open(*file)
		if err != nil {
			fatal(err)
		}
		mat, err = stsk.ReadMatrixMarket(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	} else {
		if mat, err = stsk.Generate(*class, *n); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("matrix: n=%d nnz=%d\n", mat.N(), mat.NNZ())

	buildStart := time.Now()
	plan, err := stsk.Build(mat, m)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("plan: method=%v packs=%d (built in %v; amortised over repeats, §4.1)\n",
		plan.Method(), plan.NumPacks(), time.Since(buildStart).Round(time.Microsecond))

	xTrue := make([]float64, plan.N())
	for i := range xTrue {
		xTrue[i] = 1
	}
	b := plan.RHSFor(xTrue)

	// Warm-up + correctness.
	x, err := plan.SolveWith(b, stsk.SolveOptions{Workers: *workers})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("residual: %.3g\n", plan.Residual(x, b))

	start := time.Now()
	for i := 0; i < *repeats; i++ {
		if x, err = plan.SolveWith(b, stsk.SolveOptions{Workers: *workers}); err != nil {
			fatal(err)
		}
	}
	wall := time.Since(start) / time.Duration(*repeats)
	fmt.Printf("wall-clock: %v per solve (mean of %d; unpinned goroutines — noisy)\n", wall, *repeats)

	sim, err := plan.Simulate(*machine, *cores)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("modeled: %d cycles on %s@%d cores (sync %d, hit rate %.1f%%)\n",
		sim.Cycles, sim.Machine, sim.Cores, sim.SyncCycles, sim.HitRate*100)
}

func parseMethod(s string) (stsk.Method, error) {
	switch strings.ToLower(strings.ReplaceAll(s, "_", "-")) {
	case "csr-ls", "csrls":
		return stsk.CSRLS, nil
	case "csr-3-ls", "csr3ls":
		return stsk.CSR3LS, nil
	case "csr-col", "csrcol":
		return stsk.CSRCOL, nil
	case "sts3", "sts-3", "csr-3-col":
		return stsk.STS3, nil
	}
	return 0, fmt.Errorf("unknown method %q", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "stssolve:", err)
	os.Exit(1)
}
