package main

import (
	"io"
	"testing"
)

// TestTraceBenchCells runs the trace-overhead experiment at a small
// scale and pins the cell contract the CI bench step relies on: exactly
// one cell per mode, labelled with the schedule names the trajectory
// file is keyed by, with positive throughput numbers.
func TestTraceBenchCells(t *testing.T) {
	if testing.Short() {
		t.Skip("serving benchmark; skipped in -short")
	}
	cells, err := traceBench(1500, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("traceBench returned %d cells, want 2", len(cells))
	}
	want := []string{"trace-disarmed", "trace-armed"}
	for i, c := range cells {
		if c.Schedule != want[i] {
			t.Errorf("cell %d schedule = %q, want %q", i, c.Schedule, want[i])
		}
		if c.NsPerOp <= 0 || c.SolvesPerSec <= 0 {
			t.Errorf("cell %q has non-positive rates: ns/op %g, solves/s %g",
				c.Schedule, c.NsPerOp, c.SolvesPerSec)
		}
	}
}
