package main

import (
	"fmt"
	"io"

	"stsk/internal/bench"
)

// traceBench measures the cost of the solve-lifecycle trace recorder on
// the serving hot path: the standard 32-client coalesced serving load,
// once with tracing disarmed (every hook a nil-receiver no-op) and once
// armed (spans recorded, stage histograms fed, ring admission on every
// request). The contract is that arming costs ≤3% in ns/req — the spans
// are pooled, stamps are monotonic clock reads, and publication is a
// handful of atomic stores. Modes alternate for several rounds and each
// keeps its best round, the same minimum-statistic the snapshot smoke
// uses against one-off scheduler noise.
func traceBench(scale int, out io.Writer) ([]bench.SolveBenchResult, error) {
	fmt.Fprintf(out, "Trace overhead benchmark (%d concurrent clients, coalesced, disarmed vs armed)\n", serveBenchClients)
	fmt.Fprintf(out, "%-16s %12s %14s %12s\n", "mode", "ns/req", "solves/s", "mean width")
	modes := []struct {
		name    string
		disarm  bool
		best    bench.SolveBenchResult
		hasBest bool
	}{
		{name: "trace-disarmed", disarm: true},
		{name: "trace-armed", disarm: false},
	}
	const rounds = 3
	for round := 0; round < rounds; round++ {
		for i := range modes {
			res, err := measureServeTracing(scale, 8, modes[i].disarm)
			if err != nil {
				return nil, err
			}
			res.Schedule = modes[i].name
			if !modes[i].hasBest || res.NsPerOp < modes[i].best.NsPerOp {
				modes[i].best, modes[i].hasBest = res, true
			}
		}
	}
	var cells []bench.SolveBenchResult
	for i := range modes {
		res := modes[i].best
		cells = append(cells, res)
		fmt.Fprintf(out, "%-16s %12.0f %14.0f %12.2f\n",
			modes[i].name, res.NsPerOp, res.SolvesPerSec, res.MeanPanelWidth)
	}
	overhead := cells[1].NsPerOp/cells[0].NsPerOp - 1
	fmt.Fprintf(out, "armed overhead: %+.2f%%\n", overhead*100)
	return cells, nil
}
