// Command stsbench regenerates the tables and figures of the STS-k paper's
// evaluation (§4) on the deterministic NUMA cache simulator, and records
// the wall-clock solve performance trajectory.
//
// Usage:
//
//	stsbench -experiment all            # the full evaluation
//	stsbench -experiment fig9 -scale 20000
//	stsbench -experiment solvebench     # wall-clock method × schedule matrix plus
//	                                    # the multi-RHS blocksolve cells (batched
//	                                    # vs panel widths 2/4/8, per-RHS solves/s);
//	                                    # machine-readable copy in BENCH_stsk.json
//	stsbench -list
//
// Experiments: table1, fig6, fig7, fig8, fig9, fig10, fig11, fig12,
// fig13, fig14 (see DESIGN.md for the per-experiment index), plus
// solvebench.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"stsk/internal/bench"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment to run (or 'all')")
		scale      = flag.Int("scale", 20000, "target rows per suite matrix")
		repeats    = flag.Int("repeats", 2, "cache-simulator warm repeats")
		benchout   = flag.String("benchout", "BENCH_stsk.json", "output path for the solvebench JSON report")
		list       = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Println(e)
		}
		fmt.Println("solvebench")
		return
	}
	r := bench.New(*scale, os.Stdout)
	r.Repeats = *repeats
	start := time.Now()
	if *experiment == "solvebench" {
		if err := runSolveBench(r, *benchout); err != nil {
			fmt.Fprintln(os.Stderr, "stsbench:", err)
			os.Exit(1)
		}
	} else if err := r.Run(*experiment); err != nil {
		fmt.Fprintln(os.Stderr, "stsbench:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "stsbench: %s done in %v\n", *experiment, time.Since(start).Round(time.Millisecond))
}

// runSolveBench writes the human-readable table to stdout and the
// machine-readable report to path.
func runSolveBench(r *bench.Runner, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := r.WriteSolveBenchJSON(f); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "stsbench: wrote %s\n", path)
	return f.Close()
}
