// Command stsbench regenerates the tables and figures of the STS-k paper's
// evaluation (§4) on the deterministic NUMA cache simulator, and records
// the wall-clock solve performance trajectory.
//
// Usage:
//
//	stsbench -experiment all            # the full evaluation
//	stsbench -experiment fig9 -scale 20000
//	stsbench -experiment solvebench     # wall-clock method × schedule matrix plus
//	                                    # the multi-RHS blocksolve cells (batched
//	                                    # vs panel widths 2/4/8, per-RHS solves/s);
//	                                    # machine-readable copy in BENCH_stsk.json
//	stsbench -experiment servebench     # serving layer: 32 concurrent clients,
//	                                    # coalesced (panel width 8) vs per-request,
//	                                    # throughput + achieved mean panel width;
//	                                    # cells merged into BENCH_stsk.json
//	stsbench -experiment refactorbench  # numeric refactorization vs full rebuild
//	                                    # (Plan.Refactor value swap on grid3d);
//	                                    # cells merged into BENCH_stsk.json
//	stsbench -experiment snapshotbench  # plan snapshot persistence: cold Build vs
//	                                    # WriteSnapshotFile/ReadSnapshotFile reload;
//	                                    # cells merged into BENCH_stsk.json
//	stsbench -experiment tracebench     # solve-lifecycle tracing overhead on the
//	                                    # serving path: disarmed vs armed recorder;
//	                                    # cells merged into BENCH_stsk.json
//	stsbench -list
//
// Experiments: table1, fig6, fig7, fig8, fig9, fig10, fig11, fig12,
// fig13, fig14 (see DESIGN.md for the per-experiment index), plus
// solvebench.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"stsk/internal/bench"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment to run (or 'all')")
		scale      = flag.Int("scale", 20000, "target rows per suite matrix")
		repeats    = flag.Int("repeats", 2, "cache-simulator warm repeats")
		benchout   = flag.String("benchout", "BENCH_stsk.json", "output path for the solvebench JSON report")
		list       = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Println(e)
		}
		fmt.Println("solvebench")
		fmt.Println("servebench")
		fmt.Println("refactorbench")
		fmt.Println("snapshotbench")
		fmt.Println("tracebench")
		return
	}
	r := bench.New(*scale, os.Stdout)
	r.Repeats = *repeats
	start := time.Now()
	switch *experiment {
	case "solvebench":
		if err := runSolveBench(r, *benchout); err != nil {
			fmt.Fprintln(os.Stderr, "stsbench:", err)
			os.Exit(1)
		}
	case "servebench":
		if err := runServeBench(r, *benchout); err != nil {
			fmt.Fprintln(os.Stderr, "stsbench:", err)
			os.Exit(1)
		}
	case "refactorbench":
		if err := runRefactorBench(r, *benchout); err != nil {
			fmt.Fprintln(os.Stderr, "stsbench:", err)
			os.Exit(1)
		}
	case "snapshotbench":
		if err := runSnapshotBench(r, *benchout); err != nil {
			fmt.Fprintln(os.Stderr, "stsbench:", err)
			os.Exit(1)
		}
	case "tracebench":
		if err := runTraceBench(r, *benchout); err != nil {
			fmt.Fprintln(os.Stderr, "stsbench:", err)
			os.Exit(1)
		}
	default:
		if err := r.Run(*experiment); err != nil {
			fmt.Fprintln(os.Stderr, "stsbench:", err)
			os.Exit(1)
		}
	}
	fmt.Fprintf(os.Stderr, "stsbench: %s done in %v\n", *experiment, time.Since(start).Round(time.Millisecond))
}

// runSolveBench writes the human-readable table to stdout and the
// machine-readable report to path.
func runSolveBench(r *bench.Runner, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := r.WriteSolveBenchJSON(f); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "stsbench: wrote %s\n", path)
	return f.Close()
}

// runServeBench measures the serving layer (coalesced vs per-request)
// and merges its cells into the existing report at path — an earlier
// solvebench run's kernel cells are preserved, stale serve cells are
// replaced.
func runServeBench(r *bench.Runner, path string) error {
	cells, err := serveBench(r.Scale, os.Stdout)
	if err != nil {
		return err
	}
	return mergeCells(r, path, "serve-", cells)
}

// runRefactorBench measures numeric refactorization against a full
// rebuild and merges its cells ("refactor-build", "refactor-swap") into
// the report at path the same way.
func runRefactorBench(r *bench.Runner, path string) error {
	cells, err := refactorBench(r.Scale, os.Stdout)
	if err != nil {
		return err
	}
	return mergeCells(r, path, "refactor-", cells)
}

// runSnapshotBench measures snapshot persistence against a cold build
// and merges its cells ("snapshot-build", "snapshot-write",
// "snapshot-load") into the report at path the same way.
func runSnapshotBench(r *bench.Runner, path string) error {
	cells, err := snapshotBench(r.Scale, os.Stdout)
	if err != nil {
		return err
	}
	return mergeCells(r, path, "snapshot-", cells)
}

// runTraceBench measures the lifecycle-trace recorder's serving overhead
// (disarmed vs armed) and merges its cells ("trace-disarmed",
// "trace-armed") into the report at path the same way.
func runTraceBench(r *bench.Runner, path string) error {
	cells, err := traceBench(r.Scale, os.Stdout)
	if err != nil {
		return err
	}
	return mergeCells(r, path, "trace-", cells)
}

// mergeCells rewrites the report at path with the given cells appended,
// dropping stale cells whose Schedule carries the same prefix and
// preserving everything else.
func mergeCells(r *bench.Runner, path, prefix string, cells []bench.SolveBenchResult) error {
	report := &bench.SolveBenchReport{Scale: r.Scale}
	if raw, err := os.ReadFile(path); err == nil {
		var existing bench.SolveBenchReport
		if err := json.Unmarshal(raw, &existing); err == nil {
			report = &existing
			kept := report.Results[:0]
			for _, res := range report.Results {
				if !strings.HasPrefix(res.Schedule, prefix) {
					kept = append(kept, res)
				}
			}
			report.Results = kept
		}
	}
	report.GOOS, report.GOARCH, report.CPUs = runtime.GOOS, runtime.GOARCH, runtime.NumCPU()
	report.Results = append(report.Results, cells...)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "stsbench: merged %d %q cells into %s\n", len(cells), prefix, path)
	return f.Close()
}
