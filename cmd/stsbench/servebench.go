package main

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"stsk/internal/bench"
	"stsk/serve"
)

// serveBenchClients is the concurrent client count of the serving
// benchmark — the acceptance shape of the serve subsystem (≥32 in-flight
// single-RHS requests on one plan). The driver lives in cmd/stsbench
// rather than internal/bench because the serve package sits above the
// stsk facade, which internal/bench is itself imported by.
const serveBenchClients = 32

// serveBench measures the serving layer end to end: serveBenchClients
// concurrent clients fire single-RHS solve requests at one registry plan,
// once with coalescing disabled (panel width 1 — every request pays its
// own matrix traversal) and once with the adaptive coalescer packing
// requests onto width-8 panels. The cells record per-request throughput
// and the achieved mean panel width, and land in BENCH_stsk.json next to
// the kernel-level solvebench cells.
func serveBench(scale int, out io.Writer) ([]bench.SolveBenchResult, error) {
	fmt.Fprintf(out, "Serve benchmark (%d concurrent clients, one grid3d/sts3 plan)\n", serveBenchClients)
	fmt.Fprintf(out, "%-16s %12s %14s %12s\n", "mode", "ns/req", "solves/s", "mean width")
	var cells []bench.SolveBenchResult
	for _, mode := range []struct {
		name  string
		width int
	}{
		{"serve-perreq", 1},
		{"serve-coalesced", 8},
	} {
		res, err := measureServe(scale, mode.width)
		if err != nil {
			return nil, err
		}
		res.Schedule = mode.name
		cells = append(cells, res)
		fmt.Fprintf(out, "%-16s %12.0f %14.0f %12.2f\n",
			mode.name, res.NsPerOp, res.SolvesPerSec, res.MeanPanelWidth)
	}
	return cells, nil
}

// measureServe drives one registry configuration with the standard
// concurrent-client load for a fixed duration and reads the throughput
// and coalescing width off the registry's own metrics. Lifecycle
// tracing stays at its default (armed) so the cells reflect production
// configuration; tracebench flips it via measureServeTracing.
func measureServe(scale, width int) (bench.SolveBenchResult, error) {
	return measureServeTracing(scale, width, false)
}

// measureServeTracing is measureServe with the trace recorder armed or
// disarmed — the two cells of the tracebench overhead experiment.
func measureServeTracing(scale, width int, disableTracing bool) (bench.SolveBenchResult, error) {
	reg := serve.NewRegistry(serve.Config{
		BlockWidth:     width,
		FlushDelay:     500 * time.Microsecond,
		QueueCap:       4 * serveBenchClients,
		DisableTracing: disableTracing,
	})
	defer reg.Close()
	info, err := reg.Register(serve.PlanSpec{Name: "bench", Class: "grid3d", N: scale, Method: "sts3"})
	if err != nil {
		return bench.SolveBenchResult{}, err
	}
	b := make([]float64, info.N)
	for i := range b {
		b[i] = float64((i%13)-6) / 3
	}
	ctx := context.Background()
	// Warm: pools, panel scratch, lazy caches.
	if _, err := reg.Solve(ctx, "bench", serve.VariantDirect, false, b); err != nil {
		return bench.SolveBenchResult{}, err
	}
	base := reg.Metrics().Snapshot()

	const runFor = 400 * time.Millisecond
	deadline := time.Now().Add(runFor)
	start := time.Now()
	var wg sync.WaitGroup
	errc := make(chan error, serveBenchClients)
	for c := 0; c < serveBenchClients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				if _, err := reg.Solve(ctx, "bench", serve.VariantDirect, false, b); err != nil {
					errc <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errc:
		return bench.SolveBenchResult{}, err
	default:
	}
	snap := reg.Metrics().Snapshot()
	solved := snap.Solved - base.Solved
	if solved == 0 {
		return bench.SolveBenchResult{}, fmt.Errorf("serve run completed no solves")
	}
	perReq := float64(elapsed.Nanoseconds()) / float64(solved)
	batches := snap.Batches - base.Batches
	meanWidth := 0.0
	if batches > 0 {
		meanWidth = float64(snap.WidthSum-base.WidthSum) / float64(batches)
	}
	return bench.SolveBenchResult{
		Matrix:         "grid3d",
		N:              info.N,
		NNZ:            int(info.NNZ),
		Method:         "STS-3",
		Workers:        runtime.GOMAXPROCS(0),
		Width:          width,
		Clients:        serveBenchClients,
		NsPerOp:        perReq,
		SolvesPerSec:   1e9 / perReq,
		MeanPanelWidth: meanWidth,
	}, nil
}
