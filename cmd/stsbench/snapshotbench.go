package main

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"

	"stsk"
	"stsk/internal/bench"
)

// snapshotBench measures plan snapshot persistence against the cold
// build it replaces: on the grid3d matrix at the given scale, a fresh
// stsk.Build versus serializing the plan with WriteSnapshotFile and
// reloading it with ReadSnapshotFile. The load cell carries the
// measured speedup — the restart-time headroom a warm-started replica
// gains per resident plan (the ISSUE acceptance floor is 10x).
//
// Cells use the "snapshot-" schedule prefix ("snapshot-build",
// "snapshot-write", "snapshot-load") so mergeCells folds them into
// BENCH_stsk.json without disturbing the kernel and serve cells.
func snapshotBench(scale int, out io.Writer) ([]bench.SolveBenchResult, error) {
	mat, err := stsk.Generate("grid3d", scale)
	if err != nil {
		return nil, err
	}
	plan, err := stsk.Build(mat, stsk.STS3)
	if err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp("", "snapshotbench")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "bench.snap")

	buildNs, err := measureLoop(func(int) error {
		_, err := stsk.Build(mat, stsk.STS3)
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("snapshotbench build: %w", err)
	}
	writeNs, err := measureLoop(func(int) error {
		return plan.WriteSnapshotFile(path, stsk.SnapshotExtra{})
	})
	if err != nil {
		return nil, fmt.Errorf("snapshotbench write: %w", err)
	}
	loadNs, err := measureLoop(func(int) error {
		_, _, err := stsk.ReadSnapshotFile(path)
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("snapshotbench load: %w", err)
	}

	speedup := buildNs / loadNs
	fi, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(out, "Snapshot benchmark (grid3d, n=%d, nnz=%d, file %d KiB)\n",
		mat.N(), mat.NNZ(), fi.Size()>>10)
	fmt.Fprintf(out, "%-16s %14.0f ns/op\n", "cold build", buildNs)
	fmt.Fprintf(out, "%-16s %14.0f ns/op\n", "snapshot write", writeNs)
	fmt.Fprintf(out, "%-16s %14.0f ns/op  (%.1fx faster than build)\n", "snapshot load", loadNs, speedup)

	common := bench.SolveBenchResult{
		Matrix:  "grid3d",
		N:       mat.N(),
		NNZ:     mat.NNZ(),
		Method:  stsk.STS3.String(),
		Workers: runtime.GOMAXPROCS(0),
	}
	build := common
	build.Schedule = "snapshot-build"
	build.NsPerOp = buildNs
	build.SolvesPerSec = 1e9 / buildNs
	write := common
	write.Schedule = "snapshot-write"
	write.NsPerOp = writeNs
	write.SolvesPerSec = 1e9 / writeNs
	load := common
	load.Schedule = "snapshot-load"
	load.NsPerOp = loadNs
	load.SolvesPerSec = 1e9 / loadNs
	load.Speedup = speedup
	return []bench.SolveBenchResult{build, write, load}, nil
}
