package main

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"stsk"
	"stsk/internal/bench"
)

// refactorBench measures numeric refactorization against the full
// rebuild it replaces: on the grid3d matrix at the given scale, the cost
// of a fresh stsk.Build on new values versus Plan.Refactor swapping the
// same values into the existing plan's symbolic structure. The refactor
// cell carries the measured speedup — the amortisation headroom an
// evolving system (time-stepping, quasi-Newton) gains per step.
//
// The driver lives in cmd/stsbench rather than internal/bench because it
// exercises the stsk facade, which internal/bench is itself imported by.
// Cells use the "refactor-" schedule prefix ("refactor-build",
// "refactor-swap") so mergeCells can fold them into BENCH_stsk.json
// without disturbing the kernel and serve cells.
func refactorBench(scale int, out io.Writer) ([]bench.SolveBenchResult, error) {
	mat, err := stsk.Generate("grid3d", scale)
	if err != nil {
		return nil, err
	}
	plan, err := stsk.Build(mat, stsk.STS3)
	if err != nil {
		return nil, err
	}
	base := mat.Values()
	// Two alternating value sets: every iteration swaps a genuinely
	// different numeric system, like a time-stepper would.
	alt := make([][]float64, 2)
	for v := range alt {
		alt[v] = make([]float64, len(base))
		for k, x := range base {
			alt[v][k] = x * (1 + float64(v+1)/8)
		}
	}

	buildNs, err := measureLoop(func(i int) error {
		if err := mat.SetValues(alt[i%2]); err != nil {
			return err
		}
		_, err := stsk.Build(mat, stsk.STS3)
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("refactorbench build: %w", err)
	}
	swapNs, err := measureLoop(func(i int) error {
		return plan.Refactor(alt[i%2])
	})
	if err != nil {
		return nil, fmt.Errorf("refactorbench swap: %w", err)
	}

	speedup := buildNs / swapNs
	fmt.Fprintf(out, "Refactor benchmark (grid3d, n=%d, nnz=%d)\n", mat.N(), mat.NNZ())
	fmt.Fprintf(out, "%-16s %14.0f ns/op\n", "fresh build", buildNs)
	fmt.Fprintf(out, "%-16s %14.0f ns/op  (%.1fx faster)\n", "refactor swap", swapNs, speedup)

	common := bench.SolveBenchResult{
		Matrix:  "grid3d",
		N:       mat.N(),
		NNZ:     mat.NNZ(),
		Method:  stsk.STS3.String(),
		Workers: runtime.GOMAXPROCS(0),
	}
	build := common
	build.Schedule = "refactor-build"
	build.NsPerOp = buildNs
	build.SolvesPerSec = 1e9 / buildNs
	swap := common
	swap.Schedule = "refactor-swap"
	swap.NsPerOp = swapNs
	swap.SolvesPerSec = 1e9 / swapNs
	swap.Speedup = speedup
	return []bench.SolveBenchResult{build, swap}, nil
}

// measureLoop times repeated calls of fn (passing the iteration index)
// until enough samples accumulate, returning mean ns per call. One
// untimed warm-up call first.
func measureLoop(fn func(i int) error) (float64, error) {
	if err := fn(0); err != nil {
		return 0, err
	}
	const minDuration = 300 * time.Millisecond
	const maxOps = 10000
	start := time.Now()
	ops := 0
	for time.Since(start) < minDuration && ops < maxOps {
		if err := fn(ops); err != nil {
			return 0, err
		}
		ops++
	}
	return float64(time.Since(start).Nanoseconds()) / float64(ops), nil
}
