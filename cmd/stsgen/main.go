// Command stsgen writes synthetic suite matrices as Matrix Market files,
// so the reproduction's workloads can be inspected, exchanged with other
// tools, or replaced by real UF matrices behind the same file interface.
//
// Usage:
//
//	stsgen -suite D5 -n 100000 -o d5.mtx
//	stsgen -class roadnet -n 50000 -o road.mtx
//	stsgen -all -n 20000 -dir ./matrices
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"stsk/internal/gen"
	"stsk/internal/sparse"
)

func main() {
	var (
		suite = flag.String("suite", "", "paper suite id (G1, D1, S1, D2..D10)")
		class = flag.String("class", "", "generator class")
		all   = flag.Bool("all", false, "write the whole 12-matrix suite")
		n     = flag.Int("n", 20000, "target rows")
		out   = flag.String("o", "", "output file (default stdout)")
		dir   = flag.String("dir", ".", "output directory for -all")
	)
	flag.Parse()

	if *all {
		for _, spec := range gen.PaperSuite(*n) {
			m := spec.Build(*n)
			path := filepath.Join(*dir, fmt.Sprintf("%s_%s.mtx", spec.ID, spec.Name))
			if err := writeTo(path, m); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "stsgen: %s (n=%d nnz=%d) -> %s\n", spec.ID, m.N, m.NNZ(), path)
		}
		return
	}

	var m *sparse.CSR
	switch {
	case *suite != "":
		spec := gen.BySuiteID(gen.PaperSuite(*n), *suite)
		if spec == nil {
			fatal(fmt.Errorf("unknown suite id %q", *suite))
		}
		m = spec.Build(*n)
	case *class != "":
		m = buildClass(*class, *n)
		if m == nil {
			fatal(fmt.Errorf("unknown class %q", *class))
		}
	default:
		fatal(fmt.Errorf("one of -suite, -class, or -all is required"))
	}
	if *out == "" {
		if err := sparse.WriteMatrixMarket(os.Stdout, m); err != nil {
			fatal(err)
		}
		return
	}
	if err := writeTo(*out, m); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "stsgen: n=%d nnz=%d -> %s\n", m.N, m.NNZ(), *out)
}

func buildClass(class string, n int) *sparse.CSR {
	side2 := isqrt(n)
	side3 := icbrt(n)
	switch class {
	case "grid2d":
		return gen.Grid2D(side2, side2)
	case "grid3d":
		return gen.Grid3D(side3, side3, side3)
	case "kkt3d":
		return gen.KKT3D(side3, side3, side3)
	case "fem3d":
		s := icbrt(n / 2)
		return gen.FEM3D(s, s, s, 2)
	case "rgg":
		return gen.RGG(n, gen.RGGDegree(n, 14), 21)
	case "trimesh":
		return gen.TriMesh(side2, side2, 7)
	case "quaddual":
		return gen.QuadDual(isqrt(n/2), isqrt(n/2), 4)
	case "roadnet":
		return gen.RoadNet(isqrt(n/7), isqrt(n/7), 3, 5, 3)
	}
	return nil
}

func writeTo(path string, m *sparse.CSR) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return sparse.WriteMatrixMarket(f, m)
}

func isqrt(n int) int {
	s := 1
	for (s+1)*(s+1) <= n {
		s++
	}
	if s < 2 {
		s = 2
	}
	return s
}

func icbrt(n int) int {
	s := 1
	for (s+1)*(s+1)*(s+1) <= n {
		s++
	}
	if s < 2 {
		s = 2
	}
	return s
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "stsgen:", err)
	os.Exit(1)
}
