// Command stslint runs the repo's invariant suite — noalloc, epochpin,
// ctxflow, errwrap, recoverguard — over package patterns and exits
// non-zero on any finding. It is the CI lint gate:
//
//	go run ./cmd/stslint ./...
//
// The analyzers and their annotation syntax (//stsk:noalloc,
// //stsk:allow-background, //stsk:allow-ctx-field,
// //stsk:allow-epoch-repin, //stsk:allow-bare-go) are documented in
// DESIGN.md §static-analysis.
package main

import (
	"flag"
	"fmt"
	"os"

	"stsk/internal/analysis/driver"
)

func main() {
	tests := flag.Bool("tests", true, "also lint _test.go files (errwrap findings live mostly in tests)")
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: stslint [-tests=false] [-list] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Runs the STS-k invariant suite. Patterns default to ./...\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range driver.Analyzers {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "stslint:", err)
		os.Exit(2)
	}
	findings, err := driver.Run(driver.Options{
		Dir:          wd,
		Patterns:     flag.Args(),
		IncludeTests: *tests,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "stslint:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "stslint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
