// Command stsinfo prints the Table-1-style statistics and per-method pack
// analysis (the Figures 7-8 measures) for one matrix — either a synthetic
// class, a Table 1 suite stand-in, or a Matrix Market file. With -json it
// emits the same metrics as a single JSON document, so tooling can
// consume the pack-structure measures directly.
//
// Usage:
//
//	stsinfo -class trimesh -n 50000
//	stsinfo -suite D5 -n 100000
//	stsinfo -file matrix.mtx
//	stsinfo -class grid3d -n 50000 -json | jq '.methods[].numPacks'
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"stsk"
)

// matrixJSON and methodJSON shape the -json document; field names are
// part of the tool's output contract.
type matrixJSON struct {
	N          int     `json:"n"`
	NNZ        int     `json:"nnz"`
	RowDensity float64 `json:"rowDensity"`
}

type methodJSON struct {
	Method          string  `json:"method"`
	NumPacks        int     `json:"numPacks"`
	Rows            int     `json:"rows"`
	NNZ             int64   `json:"nnz"`
	MeanRowsPerPack float64 `json:"meanRowsPerPack"`
	LargestPackRows int     `json:"largestPackRows"`
	WorkShareTop5   float64 `json:"workShareTop5"`
}

type infoJSON struct {
	Matrix  matrixJSON   `json:"matrix"`
	Methods []methodJSON `json:"methods"`
}

func main() {
	var (
		class  = flag.String("class", "", "synthetic matrix class (grid2d, grid3d, kkt3d, fem3d, rgg, trimesh, quaddual, roadnet)")
		suite  = flag.String("suite", "", "paper suite id (G1, D1, S1, D2..D10)")
		file   = flag.String("file", "", "Matrix Market file")
		n      = flag.Int("n", 20000, "target rows for generated matrices")
		rps    = flag.Int("rows-per-super", 0, "super-row size for k-level methods (0 = default 80)")
		asJSON = flag.Bool("json", false, "emit the matrix and per-method Plan.Stats as JSON")
	)
	flag.Parse()

	mat, err := loadMatrix(*class, *suite, *file, *n)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stsinfo:", err)
		os.Exit(1)
	}
	info := infoJSON{Matrix: matrixJSON{N: mat.N(), NNZ: mat.NNZ(), RowDensity: mat.RowDensity()}}
	for _, m := range stsk.Methods() {
		p, err := stsk.Build(mat, m, stsk.WithRowsPerSuper(*rps))
		if err != nil {
			fmt.Fprintf(os.Stderr, "stsinfo: %v: %v\n", m, err)
			os.Exit(1)
		}
		st := p.Stats()
		info.Methods = append(info.Methods, methodJSON{
			Method:          m.String(),
			NumPacks:        st.NumPacks,
			Rows:            st.Rows,
			NNZ:             st.NNZ,
			MeanRowsPerPack: st.MeanRowsPerPack,
			LargestPackRows: st.LargestPackRows,
			WorkShareTop5:   st.WorkShareTop5,
		})
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(info); err != nil {
			fmt.Fprintln(os.Stderr, "stsinfo:", err)
			os.Exit(1)
		}
		return
	}
	fmt.Printf("matrix: n=%d nnz=%d nnz/n=%.2f\n\n", info.Matrix.N, info.Matrix.NNZ, info.Matrix.RowDensity)
	fmt.Printf("%-9s %10s %16s %14s %14s\n", "method", "packs", "rows/pack", "largest pack", "top-5 share")
	for _, st := range info.Methods {
		fmt.Printf("%-9v %10d %16.1f %14d %13.1f%%\n",
			st.Method, st.NumPacks, st.MeanRowsPerPack, st.LargestPackRows, st.WorkShareTop5*100)
	}
}

func loadMatrix(class, suite, file string, n int) (*stsk.Matrix, error) {
	switch {
	case file != "":
		return stsk.ReadMatrixMarketFile(file)
	case suite != "":
		return stsk.GenerateSuite(suite, n)
	case class != "":
		return stsk.Generate(class, n)
	}
	return nil, fmt.Errorf("one of -class, -suite, or -file is required")
}
