// Command stsinfo prints the Table-1-style statistics and per-method pack
// analysis (the Figures 7-8 measures) for one matrix — either a synthetic
// class, a Table 1 suite stand-in, or a Matrix Market file.
//
// Usage:
//
//	stsinfo -class trimesh -n 50000
//	stsinfo -suite D5 -n 100000
//	stsinfo -file matrix.mtx
package main

import (
	"flag"
	"fmt"
	"os"

	"stsk"
)

func main() {
	var (
		class = flag.String("class", "", "synthetic matrix class (grid2d, grid3d, kkt3d, fem3d, rgg, trimesh, quaddual, roadnet)")
		suite = flag.String("suite", "", "paper suite id (G1, D1, S1, D2..D10)")
		file  = flag.String("file", "", "Matrix Market file")
		n     = flag.Int("n", 20000, "target rows for generated matrices")
		rps   = flag.Int("rows-per-super", 0, "super-row size for k-level methods (0 = default 80)")
	)
	flag.Parse()

	mat, err := loadMatrix(*class, *suite, *file, *n)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stsinfo:", err)
		os.Exit(1)
	}
	fmt.Printf("matrix: n=%d nnz=%d nnz/n=%.2f\n\n", mat.N(), mat.NNZ(), mat.RowDensity())
	fmt.Printf("%-9s %10s %16s %14s %14s\n", "method", "packs", "rows/pack", "largest pack", "top-5 share")
	for _, m := range stsk.Methods() {
		p, err := stsk.Build(mat, m, stsk.BuildOptions{RowsPerSuper: *rps})
		if err != nil {
			fmt.Fprintf(os.Stderr, "stsinfo: %v: %v\n", m, err)
			os.Exit(1)
		}
		st := p.Stats()
		fmt.Printf("%-9v %10d %16.1f %14d %13.1f%%\n",
			m, st.NumPacks, st.MeanRowsPerPack, st.LargestPackRows, st.WorkShareTop5*100)
	}
}

func loadMatrix(class, suite, file string, n int) (*stsk.Matrix, error) {
	switch {
	case file != "":
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return stsk.ReadMatrixMarket(f)
	case suite != "":
		return stsk.GenerateSuite(suite, n)
	case class != "":
		return stsk.Generate(class, n)
	}
	return nil, fmt.Errorf("one of -class, -suite, or -file is required")
}
