package main

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"stsk"
	"stsk/serve"
)

// TestRunSIGTERMDrain drives the daemon's full lifecycle in-process:
// boot with a preloaded plan, park one solve in the coalescer's flush
// window, deliver SIGTERM mid-flight, and assert the drain contract —
// /healthz flips to 503 "draining", late arrivals bounce with 503 while
// the listener is still open (the grace window), the in-flight solve
// completes 200 and bitwise identical to Plan.Solve, and run exits 0.
func TestRunSIGTERMDrain(t *testing.T) {
	addrFile := filepath.Join(t.TempDir(), "addr")
	sig := make(chan os.Signal, 1)
	done := make(chan int, 1)
	go func() {
		done <- run([]string{
			"-addr", "127.0.0.1:0",
			"-addr-file", addrFile,
			"-flush", "150ms", // park singleton solves long enough to SIGTERM past them
			"-drain-grace", "150ms",
			"-preload", `{"name":"g3","class":"grid3d","n":1200}`,
		}, sig)
	}()

	var base string
	for deadline := time.Now().Add(15 * time.Second); time.Now().Before(deadline); {
		if raw, err := os.ReadFile(addrFile); err == nil && len(raw) > 0 {
			base = "http://" + string(raw)
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if base == "" {
		t.Fatal("daemon never wrote its bound address")
	}

	// The reference solution the parked request must match bitwise.
	mat, err := stsk.Generate("grid3d", 1200)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := stsk.Build(mat, stsk.STS3)
	if err != nil {
		t.Fatal(err)
	}
	xTrue := make([]float64, plan.N())
	for i := range xTrue {
		xTrue[i] = math.Sin(float64(i))
	}
	b := plan.RHSFor(xTrue)
	want, err := plan.Solve(b)
	if err != nil {
		t.Fatal(err)
	}

	// In-flight solve: a singleton panel parks ~150ms on the flush timer,
	// so SIGTERM lands while it is queued.
	type result struct {
		code int
		x    []float64
		err  error
	}
	resc := make(chan result, 1)
	go func() {
		raw, _ := json.Marshal(serve.SolveRequest{Plan: "g3", B: b})
		resp, err := http.Post(base+"/v1/solve", "application/json", bytes.NewReader(raw))
		if err != nil {
			resc <- result{err: err}
			return
		}
		defer resp.Body.Close()
		r := result{code: resp.StatusCode}
		if resp.StatusCode == http.StatusOK {
			var sr serve.SolveResponse
			r.err = json.NewDecoder(resp.Body).Decode(&sr)
			r.x = sr.X
		} else {
			io.Copy(io.Discard, resp.Body)
		}
		resc <- r
	}()

	time.Sleep(40 * time.Millisecond) // let the solve reach the queue
	sig <- syscall.SIGTERM
	time.Sleep(30 * time.Millisecond) // let run observe it and BeginDrain

	// Grace window: the listener is still open, /healthz reports draining
	// so balancers route away, and a late arrival bounces with 503.
	hresp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz during grace: %v", err)
	}
	hbody, _ := io.ReadAll(hresp.Body)
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(hbody), `"draining"`) {
		t.Errorf("healthz during grace: %d %s, want 503 draining", hresp.StatusCode, hbody)
	}
	raw, _ := json.Marshal(serve.SolveRequest{Plan: "g3", B: b})
	lresp, err := http.Post(base+"/v1/solve", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("late solve during grace: %v", err)
	}
	lbody, _ := io.ReadAll(lresp.Body)
	lresp.Body.Close()
	if lresp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("late solve during grace: %d %s, want 503", lresp.StatusCode, lbody)
	}
	if lresp.Header.Get("Retry-After") == "" {
		t.Error("late solve during grace lost its Retry-After hint")
	}

	// The parked solve completes, and bitwise.
	r := <-resc
	if r.err != nil {
		t.Fatalf("in-flight solve: %v", r.err)
	}
	if r.code != http.StatusOK {
		t.Fatalf("in-flight solve: status %d, want 200 (drain must complete queued work)", r.code)
	}
	if len(r.x) != len(want) {
		t.Fatalf("in-flight solve: %d values, want %d", len(r.x), len(want))
	}
	for i := range r.x {
		if r.x[i] != want[i] {
			t.Fatalf("in-flight solve: bit difference at %d", i)
		}
	}

	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("run exited %d, want 0", code)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("run never exited after SIGTERM — drain deadlock")
	}
}

// TestRunBadFaultSpec: a malformed -faults spec refuses to boot with
// exit code 2 instead of serving with undefined chaos.
func TestRunBadFaultSpec(t *testing.T) {
	sig := make(chan os.Signal)
	if code := run([]string{"-faults", "nonsense-spec"}, sig); code != 2 {
		t.Fatalf("run with bad -faults exited %d, want 2", code)
	}
}

// TestNewLoggerFormats pins the -log-format/-log-level flag surface:
// both handlers build, levels parse case-insensitively, and unknown
// values refuse with an error instead of silently defaulting.
func TestNewLoggerFormats(t *testing.T) {
	for _, ok := range []struct{ format, level string }{
		{"text", "debug"}, {"json", "info"}, {"TEXT", "Warn"}, {"", ""}, {"json", "error"},
	} {
		if _, err := newLogger(ok.format, ok.level); err != nil {
			t.Errorf("newLogger(%q, %q): %v", ok.format, ok.level, err)
		}
	}
	if _, err := newLogger("xml", "info"); err == nil {
		t.Error("newLogger accepted -log-format xml")
	}
	if _, err := newLogger("text", "loud"); err == nil {
		t.Error("newLogger accepted -log-level loud")
	}
}

// TestLogRequestsMiddleware pins the Debug request log: one line per
// request carrying method, path, status, and the handler's trace ID —
// and nothing at all when the level floor is Info.
func TestLogRequestsMiddleware(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-STS-Trace-Id", "logtest1")
		w.WriteHeader(http.StatusTeapot)
		w.Write([]byte("short and stout"))
	})
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	ts := httptest.NewServer(logRequests(logger, inner))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/teapot")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTeapot {
		t.Fatalf("status %d through middleware, want 418", resp.StatusCode)
	}
	line := buf.String()
	for _, want := range []string{"msg=request", "status=418", "path=/v1/teapot", "traceId=logtest1"} {
		if !strings.Contains(line, want) {
			t.Errorf("request log %q missing %q", line, want)
		}
	}

	// Info floor: the middleware must not even wrap the writer.
	buf.Reset()
	quiet := slog.New(slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelInfo}))
	qs := httptest.NewServer(logRequests(quiet, inner))
	defer qs.Close()
	if resp, err := http.Get(qs.URL + "/"); err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	if buf.Len() != 0 {
		t.Errorf("request logged at Info floor: %q", buf.String())
	}
}

// TestRunDebugListener boots the daemon with the diagnostics listener
// and JSON logs: pprof and the mirrored /metrics + /debug/traces views
// answer on -debug-addr, a traced solve lands in the ring, and SIGTERM
// still exits 0.
func TestRunDebugListener(t *testing.T) {
	dir := t.TempDir()
	addrFile := filepath.Join(dir, "addr")
	dbgFile := filepath.Join(dir, "dbg")
	sig := make(chan os.Signal, 1)
	done := make(chan int, 1)
	go func() {
		done <- run([]string{
			"-addr", "127.0.0.1:0",
			"-addr-file", addrFile,
			"-debug-addr", "127.0.0.1:0",
			"-debug-addr-file", dbgFile,
			"-log-format", "json",
			"-log-level", "debug",
			"-trace-ring", "16",
			"-preload", `{"name":"g3","class":"grid3d","n":800}`,
		}, sig)
	}()
	var base, dbg string
	for deadline := time.Now().Add(15 * time.Second); time.Now().Before(deadline); {
		a, _ := os.ReadFile(addrFile)
		d, _ := os.ReadFile(dbgFile)
		if len(a) > 0 && len(d) > 0 {
			base, dbg = "http://"+string(a), "http://"+string(d)
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if base == "" || dbg == "" {
		t.Fatal("daemon never wrote its bound addresses")
	}

	mat, err := stsk.Generate("grid3d", 800)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := stsk.Build(mat, stsk.STS3)
	if err != nil {
		t.Fatal(err)
	}
	b := plan.RHSFor(make([]float64, plan.N()))
	for i := range b {
		b[i] = float64(i%7) - 3
	}
	raw, _ := json.Marshal(serve.SolveRequest{Plan: "g3", B: b})
	req, _ := http.NewRequest(http.MethodPost, base+"/v1/solve", bytes.NewReader(raw))
	req.Header.Set("X-STS-Trace-Id", "dbgtest7")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve: status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-STS-Trace-Id"); got != "dbgtest7" {
		t.Errorf("trace ID echo = %q, want dbgtest7", got)
	}

	for path, want := range map[string]string{
		"/debug/traces":        `"id":"dbgtest7"`,
		"/metrics":             "stsserve_stage_latency_seconds_bucket",
		"/debug/pprof/cmdline": "stsserve",
	} {
		dresp, err := http.Get(dbg + path)
		if err != nil {
			t.Fatalf("debug %s: %v", path, err)
		}
		body, _ := io.ReadAll(dresp.Body)
		dresp.Body.Close()
		if dresp.StatusCode != http.StatusOK {
			t.Errorf("debug %s: status %d", path, dresp.StatusCode)
		} else if !strings.Contains(string(body), want) {
			t.Errorf("debug %s: body missing %q", path, want)
		}
	}

	sig <- syscall.SIGTERM
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("run exited %d, want 0", code)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("run never exited after SIGTERM")
	}
}
