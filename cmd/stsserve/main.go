// Command stsserve runs the solve-as-a-service daemon: an HTTP JSON API
// over a concurrent plan registry whose coalescer packs concurrent
// single-RHS solve requests onto the blocked panel kernels — the
// long-running, many-solves-per-ordering traffic shape the STS-k paper's
// amortisation argument targets.
//
// Usage:
//
//	stsserve -addr :8080
//	stsserve -preload '{"name":"g3","class":"grid3d","n":50000,"method":"sts3"}'
//	stsserve -budget-mb 512 -flush 1ms -queue 512
//	stsserve -faults 'engine.job:panic:p=0.01' -fault-seed 7   # chaos drills
//	stsserve -debug-addr :6060 -log-format json                # diagnostics
//
// Then:
//
//	curl -X POST localhost:8080/v1/plans -d '{"name":"g3","class":"grid3d","n":50000}'
//	curl -X POST localhost:8080/v1/solve -d '{"plan":"g3","b":[...]}'
//	curl -X PUT localhost:8080/v1/plans/g3/values -d '{"values":[...],"ifVersion":1}'
//	curl localhost:8080/metrics
//	curl localhost:8080/debug/traces?thresholdMs=5
//	curl localhost:6060/debug/pprof/profile?seconds=5 -o cpu.pb.gz
//
// The PUT swaps new matrix values into the plan's fixed sparsity
// (numeric refactorization): symbolic work is reused, in-flight solves
// finish on the old values, and the plan's value version — reported in
// GET /v1/plans and the stsserve_plan_version gauge — is bumped.
//
// Every solve carries a lifecycle trace (admission → queue wait →
// coalesce → dispatch → kernel sweep → serialize): per-stage latency
// lands in the stsserve_stage_latency_seconds histograms at /metrics,
// slow requests are retained in a ring served at /debug/traces, and the
// effective trace ID is echoed in the X-STS-Trace-Id response header.
// -trace-slow sets the retention floor, -trace-ring the ring size, and
// -no-trace disarms the recorder entirely (hooks become nil no-ops).
// -debug-addr opens a second listener with net/http/pprof plus the
// /metrics and /debug/traces views, so profiling traffic never competes
// with solve traffic on the serving listener.
//
// Logs are structured (log/slog): -log-format picks text or json,
// -log-level the floor (debug enables per-request logs stamped with the
// trace ID).
//
// SIGINT/SIGTERM trigger a graceful drain in load-balancer-friendly
// order: /healthz flips to 503 "draining" and new requests start
// bouncing immediately (BeginDrain), the -drain-grace window lets
// balancers observe the flip and stop routing here, then the listener
// shuts down, in-flight and queued solves complete, solver pools close,
// and the process exits 0.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"stsk/internal/faultinject"
	"stsk/serve"
)

func main() {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	os.Exit(run(os.Args[1:], sig))
}

// newLogger builds the process logger from the -log-format/-log-level
// flags. Output goes to stderr, matching the old log.Printf behaviour so
// smoke harnesses keep capturing the same stream.
func newLogger(format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lvl = slog.LevelDebug
	case "info", "":
		lvl = slog.LevelInfo
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("-log-level %q: want debug, info, warn, or error", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch strings.ToLower(format) {
	case "text", "":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("-log-format %q: want text or json", format)
	}
}

// statusWriter captures the response status for the request log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// logRequests is the Debug-level request log middleware: one line per
// request with method, path, status, duration, and the lifecycle trace
// ID the handler stamped on the response — the handle that joins a log
// line to its /debug/traces breakdown. Free when debug logging is off.
func logRequests(logger *slog.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !logger.Enabled(r.Context(), slog.LevelDebug) {
			next.ServeHTTP(w, r)
			return
		}
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, r)
		logger.Debug("request",
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.status,
			"durationMs", float64(time.Since(start).Microseconds())/1000,
			"traceId", sw.Header().Get("X-STS-Trace-Id"),
			"remote", r.RemoteAddr)
	})
}

// startDebug opens the -debug-addr diagnostics listener: net/http/pprof
// under /debug/pprof/, plus the delegate's /metrics and /debug/traces so
// a profiling session has the latency surfaces next to the profiles.
func startDebug(logger *slog.Logger, addr, addrFile string, delegate http.Handler) (*http.Server, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/traces", delegate)
	mux.Handle("/metrics", delegate)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("debug listen: %w", err)
	}
	if addrFile != "" {
		if err := os.WriteFile(addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			ln.Close()
			return nil, fmt.Errorf("-debug-addr-file: %w", err)
		}
	}
	hs := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() {
		if err := hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Error("debug server", "err", err)
		}
	}()
	logger.Info("debug listening", "addr", ln.Addr().String())
	return hs, nil
}

// run is the daemon body, factored off main so tests can drive the full
// boot → serve → SIGTERM → drain lifecycle in-process and assert on the
// exit code.
func run(args []string, sig <-chan os.Signal) int {
	fs := flag.NewFlagSet("stsserve", flag.ExitOnError)
	var (
		addr       = fs.String("addr", ":8080", "listen address")
		addrFile   = fs.String("addr-file", "", "write the bound listen address to this file (tests and :0 ports)")
		budgetMB   = fs.Int64("budget-mb", 1024, "LRU byte budget for resident plans (MiB)")
		flush      = fs.Duration("flush", 500*time.Microsecond, "coalescer flush deadline (partial panels ship after this)")
		queue      = fs.Int("queue", 256, "per-coalescer request queue bound (admission control)")
		workers    = fs.Int("workers", 0, "default solver goroutines per plan (0 = GOMAXPROCS)")
		width      = fs.Int("width", 8, "maximum coalesced panel width")
		drainFor   = fs.Duration("drain-timeout", 15*time.Second, "graceful shutdown bound")
		drainGrace = fs.Duration("drain-grace", 0, "pause between flipping /healthz to draining and closing the listener")
		faults     = fs.String("faults", "", "deterministic fault-injection spec for chaos drills (point:mode[:key=val,...];...)")
		faultSeed  = fs.Uint64("fault-seed", 1, "fault-injection decision seed")
		snapDir    = fs.String("snapshot-dir", "", "persist built plans here and warm-start from it at boot (empty = no persistence)")
		route      = fs.String("route", "", "run as a router over these comma-separated replica URLs instead of serving plans")
		hedgeAfter = fs.Duration("hedge-after", 25*time.Millisecond, "router: hedge a solve to the next replica after this latency (negative disables)")
		healthIvl  = fs.Duration("health-interval", 500*time.Millisecond, "router: replica /healthz probe period")
		logFormat  = fs.String("log-format", "text", "log output format: text or json")
		logLevel   = fs.String("log-level", "info", "log level floor: debug, info, warn, or error (debug adds per-request logs)")
		debugAddr  = fs.String("debug-addr", "", "open a diagnostics listener here (net/http/pprof, /metrics, /debug/traces); empty = off")
		debugFile  = fs.String("debug-addr-file", "", "write the bound debug listen address to this file")
		traceRing  = fs.Int("trace-ring", 256, "slow-trace ring capacity served at /debug/traces")
		traceSlow  = fs.Duration("trace-slow", 0, "retain only traces at least this long end to end (0 = retain all)")
		noTrace    = fs.Bool("no-trace", false, "disarm solve-lifecycle tracing (stage histograms and /debug/traces go dark)")
	)
	var preloads []serve.PlanSpec
	fs.Func("preload", "plan spec JSON to register at boot (repeatable)", func(v string) error {
		var spec serve.PlanSpec
		if err := json.Unmarshal([]byte(v), &spec); err != nil {
			return err
		}
		preloads = append(preloads, spec)
		return nil
	})
	if err := fs.Parse(args); err != nil {
		return 2
	}
	logger, err := newLogger(*logFormat, *logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stsserve:", err)
		return 2
	}

	if *route != "" {
		return runRouter(logger, *route, *addr, *addrFile, *hedgeAfter, *healthIvl, *drainFor, sig)
	}

	if *faults != "" {
		if err := faultinject.Enable(*faults, *faultSeed); err != nil {
			logger.Error("-faults flag invalid", "err", err)
			return 2
		}
		defer faultinject.Disable()
		logger.Warn("CHAOS: fault injection armed", "spec", *faults, "seed", *faultSeed)
	}

	if *snapDir != "" {
		if err := os.MkdirAll(*snapDir, 0o755); err != nil {
			logger.Error("-snapshot-dir unusable", "err", err)
			return 1
		}
	}
	reg := serve.NewRegistry(serve.Config{
		BudgetBytes:    *budgetMB << 20,
		FlushDelay:     *flush,
		QueueCap:       *queue,
		Workers:        *workers,
		BlockWidth:     *width,
		SnapshotDir:    *snapDir,
		DisableTracing: *noTrace,
		TraceRing:      *traceRing,
		TraceSlow:      *traceSlow,
	})
	if *snapDir != "" {
		start := time.Now()
		loaded, err := reg.WarmStart()
		if err != nil {
			logger.Error("warm start failed", "err", err)
			reg.Close()
			return 1
		}
		if loaded > 0 {
			logger.Info("warm-started plans", "count", loaded, "dir", *snapDir,
				"duration", time.Since(start).Round(time.Millisecond).String())
		}
	}
	for _, spec := range preloads {
		start := time.Now()
		info, err := reg.Register(spec)
		if err != nil {
			logger.Error("preload failed", "plan", spec.Name, "err", err)
			reg.Close()
			return 1
		}
		logger.Info("preloaded plan", "plan", spec.Name, "n", info.N, "nnz", info.NNZ,
			"packs", info.Packs, "duration", time.Since(start).Round(time.Millisecond).String())
	}
	srv := serve.NewServer(reg)
	defer srv.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Error("listen failed", "addr", *addr, "err", err)
		return 1
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			logger.Error("-addr-file write failed", "err", err)
			ln.Close()
			return 1
		}
	}
	var dbg *http.Server
	if *debugAddr != "" {
		dbg, err = startDebug(logger, *debugAddr, *debugFile, srv)
		if err != nil {
			logger.Error("debug listener failed", "err", err)
			ln.Close()
			return 1
		}
	}

	// Header/idle timeouts shed slow-loris connections; the generous
	// read/write bounds still accommodate multi-megabyte solve bodies.
	hs := &http.Server{
		Handler:           logRequests(logger, srv),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       2 * time.Minute,
		WriteTimeout:      2 * time.Minute,
		IdleTimeout:       time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	logger.Info("listening", "addr", ln.Addr().String(), "flush", flush.String(),
		"queue", *queue, "width", *width, "budgetMiB", *budgetMB, "tracing", !*noTrace)

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Error("serve failed", "err", err)
			return 1
		}
		return 0
	case s := <-sig:
		logger.Info("draining on signal", "signal", s.String(), "grace", drainGrace.String(), "bound", drainFor.String())
		// Flip first, close later: /healthz answers 503 "draining" and new
		// work bounces with Retry-After while the listener is still open,
		// so balancers drain us instead of seeing connection resets.
		srv.BeginDrain()
		if *drainGrace > 0 {
			time.Sleep(*drainGrace)
		}
		ctx, cancel := context.WithTimeout(context.Background(), *drainFor)
		err := hs.Shutdown(ctx) // stop accepting; wait out in-flight handlers
		cancel()
		if err != nil {
			logger.Error("shutdown incomplete", "err", err)
		}
		if dbg != nil {
			dbg.Close()
		}
		srv.Close() // drain coalescers, close solver pools
		logger.Info("drained, exiting")
		return 0
	}
}

// runRouter is the -route mode body: no registry, no plans — one
// consistent-hash router process over a fleet of stsserve replicas.
func runRouter(logger *slog.Logger, route, addr, addrFile string, hedgeAfter, healthIvl, drainFor time.Duration, sig <-chan os.Signal) int {
	var backends []string
	for _, b := range strings.Split(route, ",") {
		if b = strings.TrimSpace(b); b != "" {
			backends = append(backends, b)
		}
	}
	rt, err := serve.NewRouter(serve.RouterConfig{
		Backends:       backends,
		HedgeAfter:     hedgeAfter,
		HealthInterval: healthIvl,
	})
	if err != nil {
		logger.Error("-route flag invalid", "err", err)
		return 2
	}
	defer rt.Close()

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		logger.Error("listen failed", "addr", addr, "err", err)
		return 1
	}
	if addrFile != "" {
		if err := os.WriteFile(addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			logger.Error("-addr-file write failed", "err", err)
			ln.Close()
			return 1
		}
	}
	hs := &http.Server{
		Handler:           logRequests(logger, rt),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       2 * time.Minute,
		WriteTimeout:      2 * time.Minute,
		IdleTimeout:       time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	logger.Info("routing", "addr", ln.Addr().String(), "replicas", len(backends),
		"hedge", hedgeAfter.String(), "probe", healthIvl.String())

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Error("serve failed", "err", err)
			return 1
		}
		return 0
	case s := <-sig:
		logger.Info("draining router on signal", "signal", s.String(), "bound", drainFor.String())
		ctx, cancel := context.WithTimeout(context.Background(), drainFor)
		err := hs.Shutdown(ctx)
		cancel()
		if err != nil {
			logger.Error("shutdown incomplete", "err", err)
		}
		logger.Info("drained, exiting")
		return 0
	}
}
