// Command stsserve runs the solve-as-a-service daemon: an HTTP JSON API
// over a concurrent plan registry whose coalescer packs concurrent
// single-RHS solve requests onto the blocked panel kernels — the
// long-running, many-solves-per-ordering traffic shape the STS-k paper's
// amortisation argument targets.
//
// Usage:
//
//	stsserve -addr :8080
//	stsserve -preload '{"name":"g3","class":"grid3d","n":50000,"method":"sts3"}'
//	stsserve -budget-mb 512 -flush 1ms -queue 512
//	stsserve -faults 'engine.job:panic:p=0.01' -fault-seed 7   # chaos drills
//
// Then:
//
//	curl -X POST localhost:8080/v1/plans -d '{"name":"g3","class":"grid3d","n":50000}'
//	curl -X POST localhost:8080/v1/solve -d '{"plan":"g3","b":[...]}'
//	curl -X PUT localhost:8080/v1/plans/g3/values -d '{"values":[...],"ifVersion":1}'
//	curl localhost:8080/metrics
//
// The PUT swaps new matrix values into the plan's fixed sparsity
// (numeric refactorization): symbolic work is reused, in-flight solves
// finish on the old values, and the plan's value version — reported in
// GET /v1/plans and the stsserve_plan_version gauge — is bumped.
//
// SIGINT/SIGTERM trigger a graceful drain in load-balancer-friendly
// order: /healthz flips to 503 "draining" and new requests start
// bouncing immediately (BeginDrain), the -drain-grace window lets
// balancers observe the flip and stop routing here, then the listener
// shuts down, in-flight and queued solves complete, solver pools close,
// and the process exits 0.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"stsk/internal/faultinject"
	"stsk/serve"
)

func main() {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	os.Exit(run(os.Args[1:], sig))
}

// run is the daemon body, factored off main so tests can drive the full
// boot → serve → SIGTERM → drain lifecycle in-process and assert on the
// exit code.
func run(args []string, sig <-chan os.Signal) int {
	fs := flag.NewFlagSet("stsserve", flag.ExitOnError)
	var (
		addr       = fs.String("addr", ":8080", "listen address")
		addrFile   = fs.String("addr-file", "", "write the bound listen address to this file (tests and :0 ports)")
		budgetMB   = fs.Int64("budget-mb", 1024, "LRU byte budget for resident plans (MiB)")
		flush      = fs.Duration("flush", 500*time.Microsecond, "coalescer flush deadline (partial panels ship after this)")
		queue      = fs.Int("queue", 256, "per-coalescer request queue bound (admission control)")
		workers    = fs.Int("workers", 0, "default solver goroutines per plan (0 = GOMAXPROCS)")
		width      = fs.Int("width", 8, "maximum coalesced panel width")
		drainFor   = fs.Duration("drain-timeout", 15*time.Second, "graceful shutdown bound")
		drainGrace = fs.Duration("drain-grace", 0, "pause between flipping /healthz to draining and closing the listener")
		faults     = fs.String("faults", "", "deterministic fault-injection spec for chaos drills (point:mode[:key=val,...];...)")
		faultSeed  = fs.Uint64("fault-seed", 1, "fault-injection decision seed")
		snapDir    = fs.String("snapshot-dir", "", "persist built plans here and warm-start from it at boot (empty = no persistence)")
		route      = fs.String("route", "", "run as a router over these comma-separated replica URLs instead of serving plans")
		hedgeAfter = fs.Duration("hedge-after", 25*time.Millisecond, "router: hedge a solve to the next replica after this latency (negative disables)")
		healthIvl  = fs.Duration("health-interval", 500*time.Millisecond, "router: replica /healthz probe period")
	)
	var preloads []serve.PlanSpec
	fs.Func("preload", "plan spec JSON to register at boot (repeatable)", func(v string) error {
		var spec serve.PlanSpec
		if err := json.Unmarshal([]byte(v), &spec); err != nil {
			return err
		}
		preloads = append(preloads, spec)
		return nil
	})
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *route != "" {
		return runRouter(*route, *addr, *addrFile, *hedgeAfter, *healthIvl, *drainFor, sig)
	}

	if *faults != "" {
		if err := faultinject.Enable(*faults, *faultSeed); err != nil {
			log.Printf("stsserve: -faults: %v", err)
			return 2
		}
		defer faultinject.Disable()
		log.Printf("stsserve: CHAOS: fault injection armed: %s (seed %d)", *faults, *faultSeed)
	}

	if *snapDir != "" {
		if err := os.MkdirAll(*snapDir, 0o755); err != nil {
			log.Printf("stsserve: -snapshot-dir: %v", err)
			return 1
		}
	}
	reg := serve.NewRegistry(serve.Config{
		BudgetBytes: *budgetMB << 20,
		FlushDelay:  *flush,
		QueueCap:    *queue,
		Workers:     *workers,
		BlockWidth:  *width,
		SnapshotDir: *snapDir,
	})
	if *snapDir != "" {
		start := time.Now()
		loaded, err := reg.WarmStart()
		if err != nil {
			log.Printf("stsserve: warm start: %v", err)
			reg.Close()
			return 1
		}
		if loaded > 0 {
			log.Printf("stsserve: warm-started %d plan(s) from %s in %v",
				loaded, *snapDir, time.Since(start).Round(time.Millisecond))
		}
	}
	for _, spec := range preloads {
		start := time.Now()
		info, err := reg.Register(spec)
		if err != nil {
			log.Printf("stsserve: preload %q: %v", spec.Name, err)
			reg.Close()
			return 1
		}
		log.Printf("stsserve: preloaded plan %q (n=%d nnz=%d packs=%d) in %v",
			spec.Name, info.N, info.NNZ, info.Packs, time.Since(start).Round(time.Millisecond))
	}
	srv := serve.NewServer(reg)
	defer srv.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Printf("stsserve: listen: %v", err)
		return 1
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			log.Printf("stsserve: -addr-file: %v", err)
			ln.Close()
			return 1
		}
	}

	// Header/idle timeouts shed slow-loris connections; the generous
	// read/write bounds still accommodate multi-megabyte solve bodies.
	hs := &http.Server{
		Handler:           srv,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       2 * time.Minute,
		WriteTimeout:      2 * time.Minute,
		IdleTimeout:       time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	log.Printf("stsserve: listening on %s (flush %v, queue %d, width %d, budget %d MiB)",
		ln.Addr(), *flush, *queue, *width, *budgetMB)

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("stsserve: %v", err)
			return 1
		}
		return 0
	case s := <-sig:
		log.Printf("stsserve: %v — draining (grace %v, bound %v)", s, *drainGrace, *drainFor)
		// Flip first, close later: /healthz answers 503 "draining" and new
		// work bounces with Retry-After while the listener is still open,
		// so balancers drain us instead of seeing connection resets.
		srv.BeginDrain()
		if *drainGrace > 0 {
			time.Sleep(*drainGrace)
		}
		ctx, cancel := context.WithTimeout(context.Background(), *drainFor)
		err := hs.Shutdown(ctx) // stop accepting; wait out in-flight handlers
		cancel()
		if err != nil {
			log.Printf("stsserve: shutdown: %v", err)
		}
		srv.Close() // drain coalescers, close solver pools
		log.Printf("stsserve: drained, exiting")
		return 0
	}
}

// runRouter is the -route mode body: no registry, no plans — one
// consistent-hash router process over a fleet of stsserve replicas.
func runRouter(route, addr, addrFile string, hedgeAfter, healthIvl, drainFor time.Duration, sig <-chan os.Signal) int {
	var backends []string
	for _, b := range strings.Split(route, ",") {
		if b = strings.TrimSpace(b); b != "" {
			backends = append(backends, b)
		}
	}
	rt, err := serve.NewRouter(serve.RouterConfig{
		Backends:       backends,
		HedgeAfter:     hedgeAfter,
		HealthInterval: healthIvl,
	})
	if err != nil {
		log.Printf("stsserve: -route: %v", err)
		return 2
	}
	defer rt.Close()

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Printf("stsserve: listen: %v", err)
		return 1
	}
	if addrFile != "" {
		if err := os.WriteFile(addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			log.Printf("stsserve: -addr-file: %v", err)
			ln.Close()
			return 1
		}
	}
	hs := &http.Server{
		Handler:           rt,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       2 * time.Minute,
		WriteTimeout:      2 * time.Minute,
		IdleTimeout:       time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	log.Printf("stsserve: routing on %s across %d replicas (hedge %v, probe %v)",
		ln.Addr(), len(backends), hedgeAfter, healthIvl)

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("stsserve: %v", err)
			return 1
		}
		return 0
	case s := <-sig:
		log.Printf("stsserve: %v — draining router (bound %v)", s, drainFor)
		ctx, cancel := context.WithTimeout(context.Background(), drainFor)
		err := hs.Shutdown(ctx)
		cancel()
		if err != nil {
			log.Printf("stsserve: shutdown: %v", err)
		}
		log.Printf("stsserve: drained, exiting")
		return 0
	}
}
