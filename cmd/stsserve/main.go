// Command stsserve runs the solve-as-a-service daemon: an HTTP JSON API
// over a concurrent plan registry whose coalescer packs concurrent
// single-RHS solve requests onto the blocked panel kernels — the
// long-running, many-solves-per-ordering traffic shape the STS-k paper's
// amortisation argument targets.
//
// Usage:
//
//	stsserve -addr :8080
//	stsserve -preload '{"name":"g3","class":"grid3d","n":50000,"method":"sts3"}'
//	stsserve -budget-mb 512 -flush 1ms -queue 512
//
// Then:
//
//	curl -X POST localhost:8080/v1/plans -d '{"name":"g3","class":"grid3d","n":50000}'
//	curl -X POST localhost:8080/v1/solve -d '{"plan":"g3","b":[...]}'
//	curl -X PUT localhost:8080/v1/plans/g3/values -d '{"values":[...],"ifVersion":1}'
//	curl localhost:8080/metrics
//
// The PUT swaps new matrix values into the plan's fixed sparsity
// (numeric refactorization): symbolic work is reused, in-flight solves
// finish on the old values, and the plan's value version — reported in
// GET /v1/plans and the stsserve_plan_version gauge — is bumped.
//
// SIGINT/SIGTERM trigger a graceful drain: the listener stops, in-flight
// and queued solves complete, solver pools shut down, and the process
// exits.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"stsk/serve"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		budgetMB = flag.Int64("budget-mb", 1024, "LRU byte budget for resident plans (MiB)")
		flush    = flag.Duration("flush", 500*time.Microsecond, "coalescer flush deadline (partial panels ship after this)")
		queue    = flag.Int("queue", 256, "per-coalescer request queue bound (admission control)")
		workers  = flag.Int("workers", 0, "default solver goroutines per plan (0 = GOMAXPROCS)")
		width    = flag.Int("width", 8, "maximum coalesced panel width")
		drainFor = flag.Duration("drain-timeout", 15*time.Second, "graceful shutdown bound")
	)
	var preloads []serve.PlanSpec
	flag.Func("preload", "plan spec JSON to register at boot (repeatable)", func(v string) error {
		var spec serve.PlanSpec
		if err := json.Unmarshal([]byte(v), &spec); err != nil {
			return err
		}
		preloads = append(preloads, spec)
		return nil
	})
	flag.Parse()

	reg := serve.NewRegistry(serve.Config{
		BudgetBytes: *budgetMB << 20,
		FlushDelay:  *flush,
		QueueCap:    *queue,
		Workers:     *workers,
		BlockWidth:  *width,
	})
	for _, spec := range preloads {
		start := time.Now()
		info, err := reg.Register(spec)
		if err != nil {
			log.Fatalf("stsserve: preload %q: %v", spec.Name, err)
		}
		log.Printf("stsserve: preloaded plan %q (n=%d nnz=%d packs=%d) in %v",
			spec.Name, info.N, info.NNZ, info.Packs, time.Since(start).Round(time.Millisecond))
	}
	srv := serve.NewServer(reg)

	// Header/idle timeouts shed slow-loris connections; the generous
	// read/write bounds still accommodate multi-megabyte solve bodies.
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       2 * time.Minute,
		WriteTimeout:      2 * time.Minute,
		IdleTimeout:       time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("stsserve: listening on %s (flush %v, queue %d, width %d, budget %d MiB)",
		*addr, *flush, *queue, *width, *budgetMB)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("stsserve: %v", err)
		}
	case s := <-sig:
		log.Printf("stsserve: %v — draining (bound %v)", s, *drainFor)
		ctx, cancel := context.WithTimeout(context.Background(), *drainFor)
		if err := hs.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "stsserve: shutdown: %v\n", err)
		}
		cancel()
		srv.Close() // drain coalescers, close solver pools
		log.Printf("stsserve: drained, exiting")
	}
}
