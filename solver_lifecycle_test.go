package stsk

import (
	"context"
	"errors"
	"slices"
	"sync"
	"testing"
)

// TestSolverLifecycleAfterClose is the facade half of the Close-contract
// audit the serve registry depends on: double Close (sequential and
// concurrent) is safe, and every public entry point fails with ErrClosed
// (via errors.Is) after Close.
func TestSolverLifecycleAfterClose(t *testing.T) {
	mat, err := Generate("grid3d", 600)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Build(mat, STS3)
	if err != nil {
		t.Fatal(err)
	}
	n := plan.N()
	vec := func() []float64 { return make([]float64, n) }
	batch := func() [][]float64 { return [][]float64{vec(), vec()} }
	ctx := context.Background()

	s := plan.NewSolver(WithWorkers(2))
	if _, err := s.SolveUpper(vec()); err != nil { // warm the transpose
		t.Fatal(err)
	}
	s.Close()
	s.Close()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); s.Close() }()
	}
	wg.Wait()

	paths := []struct {
		name string
		call func() error
	}{
		{"Solve", func() error { _, err := s.Solve(vec()); return err }},
		{"SolveCtx", func() error { _, err := s.SolveCtx(ctx, vec()); return err }},
		{"SolveInto", func() error { return s.SolveInto(vec(), vec()) }},
		{"SolveIntoCtx", func() error { return s.SolveIntoCtx(ctx, vec(), vec()) }},
		{"SolveUpper", func() error { _, err := s.SolveUpper(vec()); return err }},
		{"SolveUpperCtx", func() error { _, err := s.SolveUpperCtx(ctx, vec()); return err }},
		{"SolveUpperInto", func() error { return s.SolveUpperInto(vec(), vec()) }},
		{"SolveUpperIntoCtx", func() error { return s.SolveUpperIntoCtx(ctx, vec(), vec()) }},
		{"SolveBatch", func() error { _, err := s.SolveBatch(batch()); return err }},
		{"SolveBatchCtx", func() error { _, err := s.SolveBatchCtx(ctx, batch()); return err }},
		{"SolveBatchInto", func() error { return s.SolveBatchInto(batch(), batch()) }},
		{"SolveUpperBatchInto", func() error { return s.SolveUpperBatchInto(batch(), batch()) }},
		{"SolveBlock", func() error { _, err := s.SolveBlock(ctx, batch()); return err }},
		{"SolveBlockInto", func() error { return s.SolveBlockInto(ctx, batch(), batch()) }},
		{"SolveUpperBlock", func() error { _, err := s.SolveUpperBlock(ctx, batch()); return err }},
		{"SolveUpperBlockInto", func() error { return s.SolveUpperBlockInto(ctx, batch(), batch()) }},
		{"ApplySGS", func() error { _, err := s.ApplySGS(vec()); return err }},
		{"ApplySGSInto", func() error { return s.ApplySGSInto(vec(), vec()) }},
		{"ApplySGSBatch", func() error { _, err := s.ApplySGSBatch(batch()); return err }},
		{"SolveMany", func() error {
			bs := make(chan []float64, 1)
			bs <- vec()
			close(bs)
			return (<-s.SolveMany(bs)).Err
		}},
		{"SolveSeq", func() error {
			var last error
			for _, res := range s.SolveSeq(ctx, slices.Values(batch())) {
				last = res.Err
			}
			return last
		}},
	}
	for _, path := range paths {
		if err := path.call(); !errors.Is(err, ErrClosed) {
			t.Errorf("%s after Close: err = %v, want ErrClosed", path.name, err)
		}
	}

	// The plan (and its shared solver) outlive any dedicated solver's
	// Close: Plan.Solve still works.
	if _, err := plan.Solve(vec()); err != nil {
		t.Errorf("Plan.Solve after dedicated solver Close: %v", err)
	}
}

// TestSolverCloseVsInFlightBatch races Close against dispatched batches
// and panels at the facade: every call either completes with correct
// bits or reports ErrClosed, the solver never deadlocks, and a fresh
// solver on the same plan is unaffected.
func TestSolverCloseVsInFlightBatch(t *testing.T) {
	mat, err := Generate("grid3d", 800)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Build(mat, STS3)
	if err != nil {
		t.Fatal(err)
	}
	n := plan.N()
	const nrhs = 24
	B := make([][]float64, nrhs)
	want := make([][]float64, nrhs)
	xTrue := make([]float64, n)
	for r := range B {
		for i := range xTrue {
			xTrue[i] = float64((i+3*r)%7) - 3
		}
		B[r] = plan.RHSFor(xTrue)
		if want[r], err = plan.SolveSequential(B[r]); err != nil {
			t.Fatal(err)
		}
	}
	for trial := 0; trial < 20; trial++ {
		s := plan.NewSolver(WithWorkers(3))
		type result struct {
			X   [][]float64
			err error
		}
		results := make(chan result, 2)
		go func() {
			X, err := s.SolveBatch(B)
			results <- result{X, err}
		}()
		go func() {
			X, err := s.SolveBlock(context.Background(), B)
			results <- result{X, err}
		}()
		s.Close()
		for k := 0; k < 2; k++ {
			res := <-results
			if res.err != nil {
				if !errors.Is(res.err, ErrClosed) {
					t.Fatalf("trial %d: err = %v, want nil or ErrClosed", trial, res.err)
				}
				continue
			}
			for i := range res.X {
				for j := range res.X[i] {
					if res.X[i][j] != want[i][j] {
						t.Fatalf("trial %d: successful call has wrong bits at rhs %d index %d", trial, i, j)
					}
				}
			}
		}
	}
}
