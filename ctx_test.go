package stsk

// Context-cancellation and sentinel-error tests for the v2 facade: a
// cancelled batch returns context.Canceled and leaves the Solver
// reusable, SolveSeq streams in order and survives early breaks, and
// every failure mode matches its sentinel via errors.Is.

import (
	"context"
	"errors"
	"slices"
	"testing"
	"time"
)

func testPlan(t *testing.T, class string, n, rowsPerSuper int) *Plan {
	t.Helper()
	mat, err := Generate(class, n)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Build(mat, STS3, WithRowsPerSuper(rowsPerSuper))
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// TestSolveBatchCtxCancelledLeavesSolverReusable is the acceptance test:
// a cancelled SolveBatchCtx returns context.Canceled and the Solver keeps
// serving solves afterwards. The pre-cancelled case is deterministic; the
// mid-batch case cancels while a large batch is in flight.
func TestSolveBatchCtxCancelledLeavesSolverReusable(t *testing.T) {
	plan := testPlan(t, "grid2d", 500, 8)
	B, want := manufactured(t, plan, 8, 71)
	solver := plan.NewSolver(WithWorkers(2))
	defer solver.Close()

	// Deterministic: the context is dead before dispatch begins.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := solver.SolveBatchCtx(ctx, B); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled batch: err = %v, want context.Canceled", err)
	}

	// Mid-batch: a batch of thousands of unbuffered dispatches, cancelled
	// from another goroutine. Scheduling jitter can delay the cancel past
	// a fast batch, so shrink the delay until the cancel lands mid-flight
	// — every attempt asserts the full contract either way.
	big := make([][]float64, 8192)
	for i := range big {
		big[i] = B[i%len(B)]
	}
	cancelled := false
	for delay := 2 * time.Millisecond; delay >= 0 && !cancelled; delay /= 2 {
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(delay)
			cancel()
		}()
		_, err := solver.SolveBatchCtx(ctx, big)
		switch {
		case errors.Is(err, context.Canceled):
			cancelled = true
		case err == nil:
			// Batch won the race; try again with a faster cancel.
		default:
			t.Fatalf("mid-batch cancel: err = %v, want context.Canceled or nil", err)
		}
		if delay == 0 {
			break
		}
	}
	if !cancelled {
		t.Fatal("cancel never interrupted the batch, even immediately")
	}

	// The Solver (and its pool) must be fully usable afterwards.
	x, err := solver.Solve(B[0])
	if err != nil {
		t.Fatalf("solver unusable after cancelled batch: %v", err)
	}
	assertExact(t, "post-cancel solve", x, want[0])
	X, err := solver.SolveBatch(B)
	if err != nil {
		t.Fatal(err)
	}
	for r := range X {
		assertExact(t, "post-cancel batch", X[r], want[r])
	}
}

func TestSolveCtxAndSolveUpperCtxHonorDeadline(t *testing.T) {
	plan := testPlan(t, "grid2d", 500, 8)
	b := make([]float64, plan.N())
	solver := plan.NewSolver(WithWorkers(2))
	defer solver.Close()
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := solver.SolveCtx(ctx, b); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("SolveCtx: err = %v, want DeadlineExceeded", err)
	}
	if _, err := solver.SolveUpperCtx(ctx, b); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("SolveUpperCtx: err = %v, want DeadlineExceeded", err)
	}
	if _, err := solver.Solve(b); err != nil {
		t.Fatalf("solver unusable after expired-deadline solves: %v", err)
	}
}

func TestSolveManyCtxMidStreamCancel(t *testing.T) {
	plan := testPlan(t, "grid3d", 800, 8)
	B, want := manufactured(t, plan, 3, 37)
	solver := plan.NewSolver(WithWorkers(2))
	defer solver.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	bs := make(chan []float64)
	go func() {
		// An endless producer: only cancellation ends this stream.
		for i := 0; ; i++ {
			select {
			case bs <- B[i%len(B)]:
			case <-ctx.Done():
				return
			}
		}
	}()
	out := solver.SolveManyCtx(ctx, bs)
	first, ok := <-out
	if !ok || first.Err != nil {
		t.Fatalf("first result: %+v ok=%v", first, ok)
	}
	assertExact(t, "first streamed", first.X, want[0])
	cancel()

	var last SolveResult
	for r := range out {
		last = r
	}
	if !errors.Is(last.Err, context.Canceled) {
		t.Fatalf("stream ended with %v, want context.Canceled", last.Err)
	}
	x, err := solver.Solve(B[1])
	if err != nil {
		t.Fatalf("solver unusable after cancelled stream: %v", err)
	}
	assertExact(t, "post-cancel solve", x, want[1])
}

// TestSolveManyCloseDrainsProducer guards the stream's abandonment
// semantics: when the Solver is closed mid-stream (no context involved),
// the dispatch loop must keep draining the input channel — reporting
// ErrClosed per vector — so a producer that never watches a context is
// not stranded blocked on a send.
func TestSolveManyCloseDrainsProducer(t *testing.T) {
	plan := testPlan(t, "grid2d", 400, 8)
	B, _ := manufactured(t, plan, 2, 53)
	solver := plan.NewSolver(WithWorkers(2))

	const total = 50
	bs := make(chan []float64) // unbuffered: a stranded producer would hang
	produced := make(chan struct{})
	go func() {
		defer close(produced)
		for i := 0; i < total; i++ {
			bs <- B[i%len(B)]
		}
		close(bs)
	}()
	out := solver.SolveMany(bs)
	first, ok := <-out
	if !ok || first.Err != nil {
		t.Fatalf("first result: %+v ok=%v", first, ok)
	}
	solver.Close()

	// Every produced vector still gets a result (later ones ErrClosed),
	// the producer runs to completion, and the stream terminates.
	got, closedErrs := 1, 0
	for r := range out {
		got++
		if errors.Is(r.Err, ErrClosed) {
			closedErrs++
		} else if r.Err != nil {
			t.Fatalf("unexpected error: %v", r.Err)
		}
	}
	if got != total {
		t.Fatalf("received %d results, want %d", got, total)
	}
	if closedErrs == 0 {
		t.Fatal("expected at least one ErrClosed result after Close")
	}
	select {
	case <-produced:
	case <-time.After(5 * time.Second):
		t.Fatal("producer stranded: input channel no longer drained")
	}
}

func TestSolveSeqOrderedResults(t *testing.T) {
	plan := testPlan(t, "grid3d", 900, 8)
	B, want := manufactured(t, plan, 24, 43)
	solver := plan.NewSolver(WithWorkers(3))
	defer solver.Close()
	seen := 0
	for i, res := range solver.SolveSeq(context.Background(), slices.Values(B)) {
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		if i != seen {
			t.Fatalf("index %d out of order (want %d)", i, seen)
		}
		assertExact(t, "seq", res.X, want[i])
		seen++
	}
	if seen != len(B) {
		t.Fatalf("iterated %d results, want %d", seen, len(B))
	}
}

func TestSolveSeqEarlyBreakReleasesPool(t *testing.T) {
	plan := testPlan(t, "grid3d", 900, 8)
	B, want := manufactured(t, plan, 64, 47)
	solver := plan.NewSolver(WithWorkers(3))
	defer solver.Close()
	for i, res := range solver.SolveSeq(context.Background(), slices.Values(B)) {
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		if i == 2 {
			break // must cancel the stream, not deadlock the pool
		}
	}
	// The pool must be free for new work immediately.
	x, err := solver.Solve(B[0])
	if err != nil {
		t.Fatal(err)
	}
	assertExact(t, "post-break solve", x, want[0])
}

func TestDimensionSentinelAcrossFacade(t *testing.T) {
	plan := testPlan(t, "grid2d", 400, 8)
	short := make([]float64, plan.N()-3)
	full := make([]float64, plan.N())
	if _, err := plan.Solve(short); !errors.Is(err, ErrDimension) {
		t.Fatalf("Plan.Solve: %v", err)
	}
	if _, err := plan.SolveUpper(short); !errors.Is(err, ErrDimension) {
		t.Fatalf("Plan.SolveUpper: %v", err)
	}
	if _, err := plan.SolveWith(short, WithWorkers(2)); !errors.Is(err, ErrDimension) {
		t.Fatalf("Plan.SolveWith: %v", err)
	}
	if _, err := plan.SolveUpperWith(short); !errors.Is(err, ErrDimension) {
		t.Fatalf("Plan.SolveUpperWith: %v", err)
	}
	if _, err := plan.SolveSequential(short); !errors.Is(err, ErrDimension) {
		t.Fatalf("Plan.SolveSequential: %v", err)
	}
	solver := plan.NewSolver(WithWorkers(2))
	defer solver.Close()
	if _, err := solver.Solve(short); !errors.Is(err, ErrDimension) {
		t.Fatalf("Solver.Solve: %v", err)
	}
	if _, err := solver.SolveUpper(short); !errors.Is(err, ErrDimension) {
		t.Fatalf("Solver.SolveUpper: %v", err)
	}
	if _, err := solver.ApplySGS(short); !errors.Is(err, ErrDimension) {
		t.Fatalf("Solver.ApplySGS: %v", err)
	}
	// One bad vector fails the whole batch before any dispatch.
	if _, err := solver.SolveBatch([][]float64{full, short, full}); !errors.Is(err, ErrDimension) {
		t.Fatalf("Solver.SolveBatch: %v", err)
	}
	// The Into-variants validate the same way, including solution vectors.
	if err := solver.SolveInto(short, full); !errors.Is(err, ErrDimension) {
		t.Fatalf("Solver.SolveInto: %v", err)
	}
	if err := solver.SolveIntoCtx(context.Background(), full, short); !errors.Is(err, ErrDimension) {
		t.Fatalf("Solver.SolveIntoCtx: %v", err)
	}
	if err := solver.SolveUpperInto(full, short); !errors.Is(err, ErrDimension) {
		t.Fatalf("Solver.SolveUpperInto: %v", err)
	}
	if err := solver.ApplySGSInto(short, full); !errors.Is(err, ErrDimension) {
		t.Fatalf("Solver.ApplySGSInto: %v", err)
	}
	other := make([]float64, plan.N())
	if err := solver.SolveBatchInto([][]float64{other, short}, [][]float64{full, full}); !errors.Is(err, ErrDimension) {
		t.Fatalf("Solver.SolveBatchInto short solution: %v", err)
	}
	// Untouched: validation failed before any dispatch.
	for i := range other {
		if other[i] != 0 {
			t.Fatal("SolveBatchInto wrote output despite failed validation")
		}
	}
	if err := solver.SolveUpperBatchInto([][]float64{full}, [][]float64{full, full}); !errors.Is(err, ErrDimension) {
		t.Fatalf("Solver.SolveUpperBatchInto length mismatch: %v", err)
	}
	// Preconditioners validate too.
	if err := NewJacobi(plan).Apply(full, short); !errors.Is(err, ErrDimension) {
		t.Fatalf("Jacobi.Apply: %v", err)
	}
	if err := NewSGS(solver).Apply(full, short); !errors.Is(err, ErrDimension) {
		t.Fatalf("SGS.Apply: %v", err)
	}
}

func TestClosedSentinelAcrossFacade(t *testing.T) {
	plan := testPlan(t, "grid2d", 400, 8)
	solver := plan.NewSolver(WithWorkers(2))
	b := make([]float64, plan.N())
	solver.Close()
	if _, err := solver.Solve(b); !errors.Is(err, ErrClosed) {
		t.Fatalf("Solve after Close: %v", err)
	}
	if _, err := solver.SolveCtx(context.Background(), b); !errors.Is(err, ErrClosed) {
		t.Fatalf("SolveCtx after Close: %v", err)
	}
	if _, err := solver.SolveBatchCtx(context.Background(), [][]float64{b}); !errors.Is(err, ErrClosed) {
		t.Fatalf("SolveBatchCtx after Close: %v", err)
	}
}

// TestPreconditionersMatchManualApplications pins the Preconditioner
// implementations to their definitions through the public API.
func TestPreconditionersMatchManualApplications(t *testing.T) {
	plan := testPlan(t, "grid3d", 700, 8)
	solver := plan.NewSolver(WithWorkers(2))
	defer solver.Close()
	r := make([]float64, plan.N())
	for i := range r {
		r[i] = float64(i%9) - 4
	}

	// Jacobi: z = r / diag.
	z := make([]float64, plan.N())
	if err := NewJacobi(plan).Apply(z, r); err != nil {
		t.Fatal(err)
	}
	d := plan.Diagonal()
	for i := range z {
		if z[i] != r[i]/d[i] {
			t.Fatalf("jacobi mismatch at %d", i)
		}
	}

	// SGS: must equal Solver.ApplySGS bitwise.
	want, err := solver.ApplySGS(r)
	if err != nil {
		t.Fatal(err)
	}
	if err := NewSGS(solver).Apply(z, r); err != nil {
		t.Fatal(err)
	}
	assertExact(t, "sgs precond", z, want)

	// IC(0): must equal the factor plan's two sweeps bitwise.
	ic, err := NewIC0(plan)
	if err != nil {
		t.Fatal(err)
	}
	defer ic.Close()
	y, err := ic.Factor().SolveSequential(r)
	if err != nil {
		t.Fatal(err)
	}
	wantZ := make([]float64, plan.N())
	if err := ic.solver.SolveUpperInto(wantZ, y); err != nil {
		t.Fatal(err)
	}
	if err := ic.Apply(z, r); err != nil {
		t.Fatal(err)
	}
	assertExact(t, "ic0 precond", z, wantZ)
}
