// ordering visualises what the STS-k transformations do to a small
// triangular matrix (the paper's Figure 6): plain colouring scatters the
// off-diagonal reuse structure, while STS-3's in-pack DAR reordering
// band-reduces it so consecutive tasks share solution components.
package main

import (
	"log"
	"os"

	"stsk/internal/bench"
)

func main() {
	r := bench.New(1000, os.Stdout)
	if err := r.Fig6(); err != nil {
		log.Fatal(err)
	}
}
