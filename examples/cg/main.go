// Preconditioned conjugate gradient — the application that motivates fast
// sparse triangular solution (paper §1) — built on the library's krylov
// package. Each preconditioner application is one or two pack-parallel
// STS-3 triangular sweeps on a persistent stsk.Solver, so the triangular
// solution dominates each iteration exactly as in a production PCG.
//
// The example sweeps the built-in preconditioners (Jacobi, symmetric
// Gauss–Seidel, incomplete Cholesky IC(0)) against unpreconditioned CG,
// watching convergence through a per-iteration callback, and bounds the
// whole run with a context deadline.
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"time"

	"stsk"
	"stsk/krylov"
)

func main() {
	mat, err := stsk.Generate("grid3d", 30000)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := stsk.Build(mat, stsk.STS3)
	if err != nil {
		log.Fatal(err)
	}
	n := plan.N()
	fmt.Printf("PCG on %d unknowns (%d nnz), preconditioners via STS-3 triangular solves\n",
		n, mat.NNZ())

	// Manufactured problem: A′ xTrue = rhs.
	xTrue := make([]float64, n)
	for i := range xTrue {
		xTrue[i] = math.Sin(float64(i))
	}
	rhs := make([]float64, n)
	plan.ApplySymmetric(rhs, xTrue)

	// One persistent solve engine serves every SGS application; IC(0)
	// holds its own pool over the factor plan.
	solver := plan.NewSolver()
	defer solver.Close()
	ic0, err := stsk.NewIC0(plan)
	if err != nil {
		log.Fatal(err)
	}
	defer ic0.Close()

	// The whole Krylov run is bounded by one deadline; a production
	// service would pass its request context here instead.
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	var baseline int
	for _, pc := range []struct {
		name    string
		precond stsk.Preconditioner // nil = unpreconditioned
	}{
		{"unpreconditioned", nil},
		{"Jacobi", stsk.NewJacobi(plan)},
		{"SGS", stsk.NewSGS(solver)},
		{"IC(0)", ic0},
	} {
		trace := func(it krylov.Iteration) {
			if it.K%25 == 0 {
				fmt.Printf("  %-17s iter %4d  rel.residual %.3e\n", pc.name, it.K, it.Residual)
			}
		}
		x, stats, err := krylov.CG(ctx, plan, rhs,
			krylov.WithPreconditioner(pc.precond),
			krylov.WithTolerance(1e-10),
			krylov.WithMaxIterations(5000),
			krylov.WithCallback(trace))
		if err != nil {
			log.Fatalf("%s: %v", pc.name, err)
		}
		maxErr := 0.0
		for i := range x {
			if e := math.Abs(x[i] - xTrue[i]); e > maxErr {
				maxErr = e
			}
		}
		if pc.precond == nil {
			baseline = stats.Iterations
		}
		fmt.Printf("%-17s %4d iterations (%.1fx vs plain CG), max error %.3g\n",
			pc.name, stats.Iterations, float64(baseline)/float64(stats.Iterations), maxErr)
	}
}
