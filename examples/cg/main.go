// Preconditioned conjugate gradient — the application that motivates fast
// sparse triangular solution (paper §1). The symmetric Gauss–Seidel
// preconditioner M = L D⁻¹ Lᵀ is applied once per iteration as a
// pack-parallel STS-3 forward solve followed by a backward solve, so the
// triangular solution dominates each iteration exactly as in a production
// PCG. Every iteration's solves run on one persistent stsk.Solver per
// plan, so the worker pool is spawned once for the whole Krylov loop
// rather than twice per iteration.
package main

import (
	"fmt"
	"log"
	"math"

	"stsk"
)

func main() {
	mat, err := stsk.Generate("grid3d", 30000)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := stsk.Build(mat, stsk.STS3)
	if err != nil {
		log.Fatal(err)
	}
	n := plan.N()
	fmt.Printf("PCG on %d unknowns (%d nnz), SGS preconditioner via STS-3 triangular solves\n",
		n, mat.NNZ())

	// Manufactured problem: A′ xTrue = rhs.
	xTrue := make([]float64, n)
	for i := range xTrue {
		xTrue[i] = math.Sin(float64(i))
	}
	rhs := make([]float64, n)
	plan.ApplySymmetric(rhs, xTrue)

	// One persistent solve engine serves every preconditioner application.
	solver := plan.NewSolver()
	defer solver.Close()

	x, iters, err := pcg(plan, solver, rhs, 1e-10, 500)
	if err != nil {
		log.Fatal(err)
	}
	maxErr := 0.0
	for i := range x {
		if e := math.Abs(x[i] - xTrue[i]); e > maxErr {
			maxErr = e
		}
	}
	fmt.Printf("SGS-preconditioned CG: %d iterations, max error %.3g\n", iters, maxErr)

	// A stronger preconditioner: incomplete Cholesky IC(0). Both of its
	// triangular sweeps run pack-parallel on the same STS-3 structure.
	ic, err := plan.IC0()
	if err != nil {
		log.Fatal(err)
	}
	icSolver := ic.NewSolver()
	defer icSolver.Close()
	_, icIters, err := pcgIC(plan, icSolver, rhs, 1e-10, 500)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("IC(0)-preconditioned CG: %d iterations\n", icIters)

	// The same system without preconditioning needs many more iterations —
	// each saved iteration is two triangular solves the paper makes cheap.
	_, plain, err := cgUnpreconditioned(plan, rhs, 1e-10, 5000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unpreconditioned CG: %d iterations (%.1fx more than SGS)\n",
		plain, float64(plain)/float64(iters))
}

// pcgIC is pcg with the IC(0) preconditioner M = L̂·L̂ᵀ: forward solve on
// the factor plan's persistent solver, then its pack-parallel backward
// solve — both sweeps on the same parked worker pool.
func pcgIC(plan *stsk.Plan, icSolver *stsk.Solver, b []float64, tol float64, maxIter int) ([]float64, int, error) {
	apply := func(r []float64) ([]float64, error) {
		y, err := icSolver.Solve(r)
		if err != nil {
			return nil, err
		}
		return icSolver.SolveUpper(y)
	}
	return pcgWith(plan, apply, b, tol, maxIter)
}

// pcg solves A′x = b with symmetric Gauss-Seidel preconditioning applied
// by the plan's persistent solver.
func pcg(plan *stsk.Plan, solver *stsk.Solver, b []float64, tol float64, maxIter int) ([]float64, int, error) {
	return pcgWith(plan, solver.ApplySGS, b, tol, maxIter)
}

// pcgWith solves A′x = b with an arbitrary preconditioner application.
func pcgWith(plan *stsk.Plan, applyM func([]float64) ([]float64, error), b []float64, tol float64, maxIter int) ([]float64, int, error) {
	n := len(b)
	x := make([]float64, n)
	r := append([]float64(nil), b...)
	z, err := applyM(r)
	if err != nil {
		return nil, 0, err
	}
	p := append([]float64(nil), z...)
	ap := make([]float64, n)
	rz := dot(r, z)
	bnorm := math.Sqrt(dot(b, b))
	for it := 1; it <= maxIter; it++ {
		plan.ApplySymmetric(ap, p)
		alpha := rz / dot(p, ap)
		axpy(x, alpha, p)
		axpy(r, -alpha, ap)
		if math.Sqrt(dot(r, r)) <= tol*bnorm {
			return x, it, nil
		}
		if z, err = applyM(r); err != nil {
			return nil, it, err
		}
		rzNew := dot(r, z)
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	return x, maxIter, fmt.Errorf("pcg: no convergence in %d iterations", maxIter)
}

func cgUnpreconditioned(plan *stsk.Plan, b []float64, tol float64, maxIter int) ([]float64, int, error) {
	n := len(b)
	x := make([]float64, n)
	r := append([]float64(nil), b...)
	p := append([]float64(nil), r...)
	ap := make([]float64, n)
	rr := dot(r, r)
	bnorm := math.Sqrt(dot(b, b))
	for it := 1; it <= maxIter; it++ {
		plan.ApplySymmetric(ap, p)
		alpha := rr / dot(p, ap)
		axpy(x, alpha, p)
		axpy(r, -alpha, ap)
		rrNew := dot(r, r)
		if math.Sqrt(rrNew) <= tol*bnorm {
			return x, it, nil
		}
		beta := rrNew / rr
		rr = rrNew
		for i := range p {
			p[i] = r[i] + beta*p[i]
		}
	}
	return x, maxIter, fmt.Errorf("cg: no convergence in %d iterations", maxIter)
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func axpy(y []float64, alpha float64, x []float64) {
	for i := range y {
		y[i] += alpha * x[i]
	}
}
