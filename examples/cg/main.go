// Preconditioned conjugate gradient — the application that motivates fast
// sparse triangular solution (paper §1). The symmetric Gauss–Seidel
// preconditioner M = L D⁻¹ Lᵀ is applied once per iteration as a
// pack-parallel STS-3 forward solve followed by a backward solve, so the
// triangular solution dominates each iteration exactly as in a production
// PCG.
package main

import (
	"fmt"
	"log"
	"math"

	"stsk"
)

func main() {
	mat, err := stsk.Generate("grid3d", 30000)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := stsk.Build(mat, stsk.STS3)
	if err != nil {
		log.Fatal(err)
	}
	n := plan.N()
	fmt.Printf("PCG on %d unknowns (%d nnz), SGS preconditioner via STS-3 triangular solves\n",
		n, mat.NNZ())

	// Manufactured problem: A′ xTrue = rhs.
	xTrue := make([]float64, n)
	for i := range xTrue {
		xTrue[i] = math.Sin(float64(i))
	}
	rhs := make([]float64, n)
	plan.ApplySymmetric(rhs, xTrue)

	x, iters, err := pcg(plan, rhs, 1e-10, 500)
	if err != nil {
		log.Fatal(err)
	}
	maxErr := 0.0
	for i := range x {
		if e := math.Abs(x[i] - xTrue[i]); e > maxErr {
			maxErr = e
		}
	}
	fmt.Printf("SGS-preconditioned CG: %d iterations, max error %.3g\n", iters, maxErr)

	// A stronger preconditioner: incomplete Cholesky IC(0). Both of its
	// triangular sweeps run pack-parallel on the same STS-3 structure.
	ic, err := plan.IC0()
	if err != nil {
		log.Fatal(err)
	}
	_, icIters, err := pcgIC(plan, ic, rhs, 1e-10, 500)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("IC(0)-preconditioned CG: %d iterations\n", icIters)

	// The same system without preconditioning needs many more iterations —
	// each saved iteration is two triangular solves the paper makes cheap.
	_, plain, err := cgUnpreconditioned(plan, rhs, 1e-10, 5000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unpreconditioned CG: %d iterations (%.1fx more than SGS)\n",
		plain, float64(plain)/float64(iters))
}

// pcgIC is pcg with the IC(0) preconditioner M = L̂·L̂ᵀ: forward solve on
// the factor plan, then its pack-parallel backward solve.
func pcgIC(plan, ic *stsk.Plan, b []float64, tol float64, maxIter int) ([]float64, int, error) {
	apply := func(r []float64) ([]float64, error) {
		y, err := ic.Solve(r)
		if err != nil {
			return nil, err
		}
		return ic.SolveUpper(y)
	}
	return pcgWith(plan, apply, b, tol, maxIter)
}

// pcg solves A′x = b with symmetric Gauss-Seidel preconditioning.
func pcg(plan *stsk.Plan, b []float64, tol float64, maxIter int) ([]float64, int, error) {
	return pcgWith(plan, func(r []float64) ([]float64, error) { return applySGS(plan, r) }, b, tol, maxIter)
}

// pcgWith solves A′x = b with an arbitrary preconditioner application.
func pcgWith(plan *stsk.Plan, applyM func([]float64) ([]float64, error), b []float64, tol float64, maxIter int) ([]float64, int, error) {
	n := len(b)
	x := make([]float64, n)
	r := append([]float64(nil), b...)
	z, err := applyM(r)
	if err != nil {
		return nil, 0, err
	}
	p := append([]float64(nil), z...)
	ap := make([]float64, n)
	rz := dot(r, z)
	bnorm := math.Sqrt(dot(b, b))
	for it := 1; it <= maxIter; it++ {
		plan.ApplySymmetric(ap, p)
		alpha := rz / dot(p, ap)
		axpy(x, alpha, p)
		axpy(r, -alpha, ap)
		if math.Sqrt(dot(r, r)) <= tol*bnorm {
			return x, it, nil
		}
		if z, err = applyM(r); err != nil {
			return nil, it, err
		}
		rzNew := dot(r, z)
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	return x, maxIter, fmt.Errorf("pcg: no convergence in %d iterations", maxIter)
}

// applySGS computes z = (L D⁻¹ Lᵀ)⁻¹ r: forward solve L y = r (parallel,
// STS-3), scale by D, backward solve Lᵀ z = D y.
func applySGS(plan *stsk.Plan, r []float64) ([]float64, error) {
	y, err := plan.Solve(r)
	if err != nil {
		return nil, err
	}
	d := plan.Diagonal()
	dy := make([]float64, len(y))
	for i := range y {
		dy[i] = d[i] * y[i]
	}
	return plan.SolveUpper(dy)
}

func cgUnpreconditioned(plan *stsk.Plan, b []float64, tol float64, maxIter int) ([]float64, int, error) {
	n := len(b)
	x := make([]float64, n)
	r := append([]float64(nil), b...)
	p := append([]float64(nil), r...)
	ap := make([]float64, n)
	rr := dot(r, r)
	bnorm := math.Sqrt(dot(b, b))
	for it := 1; it <= maxIter; it++ {
		plan.ApplySymmetric(ap, p)
		alpha := rr / dot(p, ap)
		axpy(x, alpha, p)
		axpy(r, -alpha, ap)
		rrNew := dot(r, r)
		if math.Sqrt(rrNew) <= tol*bnorm {
			return x, it, nil
		}
		beta := rrNew / rr
		rr = rrNew
		for i := range p {
			p[i] = r[i] + beta*p[i]
		}
	}
	return x, maxIter, fmt.Errorf("cg: no convergence in %d iterations", maxIter)
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func axpy(y []float64, alpha float64, x []float64) {
	for i := range y {
		y[i] += alpha * x[i]
	}
}
