// spmv demonstrates the CSR-k substructure on sparse matrix–vector
// multiplication — the problem the format was invented for (the paper's
// reference [4], HiPC'14) before STS-k reused it for triangular solution.
// It compares the plain CSR row-split kernel with the CSR-k super-row
// kernel on a suite matrix.
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"stsk/internal/gen"
	"stsk/internal/order"
	"stsk/internal/sparse"
	"stsk/internal/spmv"
)

func main() {
	spec := gen.BySuiteID(gen.PaperSuite(60000), "S1") // nlpkkt class, dense rows
	a := spec.Build(60000)
	fmt.Printf("SpMV on %s class: n=%d nnz=%d\n", spec.Name, a.N, a.NNZ())

	// Build the CSR-k structure (RCM + super-rows); SpMV has no
	// dependencies, so only the super-row level matters here.
	p, err := order.Build(a, order.Options{Method: order.STS3})
	if err != nil {
		log.Fatal(err)
	}
	aPerm := sparse.SymmetrizePattern(p.S.L)

	x := make([]float64, a.N)
	for i := range x {
		x[i] = float64(i%13) * 0.25
	}
	want := make([]float64, a.N)
	if err := spmv.Sequential(aPerm, want, x); err != nil {
		log.Fatal(err)
	}

	workers := runtime.GOMAXPROCS(0)
	const reps = 50

	yCSR := make([]float64, a.N)
	start := time.Now()
	for i := 0; i < reps; i++ {
		if err := spmv.Parallel(aPerm, yCSR, x, spmv.Options{Workers: workers}); err != nil {
			log.Fatal(err)
		}
	}
	tCSR := time.Since(start) / reps

	yK := make([]float64, a.N)
	start = time.Now()
	for i := 0; i < reps; i++ {
		if err := spmv.ParallelCSRK(aPerm, p.S, yK, x, spmv.Options{Workers: workers}); err != nil {
			log.Fatal(err)
		}
	}
	tK := time.Since(start) / reps

	if d := sparse.MaxAbsDiff(yCSR, want); d > 1e-10 {
		log.Fatalf("CSR kernel wrong by %g", d)
	}
	if d := sparse.MaxAbsDiff(yK, want); d > 1e-10 {
		log.Fatalf("CSR-k kernel wrong by %g", d)
	}
	fmt.Printf("CSR   row-split: %v per SpMV (%d workers)\n", tCSR, workers)
	fmt.Printf("CSR-k super-row: %v per SpMV (%d super-rows)\n", tK, p.S.NumSuperRows())
	fmt.Println("both kernels verified against the sequential reference")
}
