// numaexplore compares the four triangular-solution schemes across NUMA
// topologies on the deterministic cache simulator: the paper's Intel
// Westmere-EX and AMD Magny-Cours nodes plus a flat-latency UMA reference
// that isolates how much of STS-k's advantage comes from NUMA effects.
package main

import (
	"fmt"
	"log"

	"stsk"
)

func main() {
	mat, err := stsk.GenerateSuite("D5", 15000) // delaunay_n24 class
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("matrix D5 (delaunay class): n=%d nnz=%d\n\n", mat.N(), mat.NNZ())

	cores := map[string]int{"intel": 16, "amd": 12, "uma": 16}
	plans := make(map[stsk.Method]*stsk.Plan)
	for _, m := range stsk.Methods() {
		if plans[m], err = stsk.Build(mat, m); err != nil {
			log.Fatal(err)
		}
	}

	for _, machine := range stsk.MachineNames() {
		q := cores[machine]
		fmt.Printf("%s @ %d cores:\n", machine, q)
		fmt.Printf("  %-9s %14s %12s %10s\n", "method", "cycles", "sync", "hit rate")
		var ref uint64
		for _, m := range stsk.Methods() {
			res, err := plans[m].Simulate(machine, q)
			if err != nil {
				log.Fatal(err)
			}
			if m == stsk.CSRLS {
				ref = res.Cycles
			}
			fmt.Printf("  %-9v %14d %12d %9.1f%%   (%.2fx vs CSR-LS)\n",
				m, res.Cycles, res.SyncCycles, res.HitRate*100,
				float64(ref)/float64(res.Cycles))
		}
		fmt.Println()
	}
}
