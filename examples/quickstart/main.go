// Quickstart: build an STS-3 plan for a triangulated-mesh matrix and solve
// L′x = b, comparing the four schemes' pack structure along the way.
package main

import (
	"fmt"
	"log"

	"stsk"
)

func main() {
	// A Delaunay-class mesh matrix (the paper's D2/D5 class), ~20k rows.
	mat, err := stsk.Generate("trimesh", 20000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("matrix: n=%d nnz=%d (%.2f nnz/row)\n\n", mat.N(), mat.NNZ(), mat.RowDensity())

	// Build the paper's scheme: colouring packs over super-rows with
	// in-pack DAR reordering (STS-3), and solve for a manufactured b.
	// Every entry point takes the same functional options — here the
	// paper's Intel super-row size, explicitly.
	plan, err := stsk.Build(mat, stsk.STS3, stsk.WithRowsPerSuper(80))
	if err != nil {
		log.Fatal(err)
	}
	xTrue := make([]float64, plan.N())
	for i := range xTrue {
		xTrue[i] = float64(i%10) + 1
	}
	b := plan.RHSFor(xTrue)
	x, err := plan.Solve(b)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("STS-3 solve: packs=%d residual=%.3g\n\n", plan.NumPacks(), plan.Residual(x, b))

	// Why STS-3: compare the parallel structure of all four schemes.
	fmt.Printf("%-9s %9s %14s %12s\n", "method", "packs", "rows/pack", "top-5 work")
	for _, m := range stsk.Methods() {
		p, err := stsk.Build(mat, m)
		if err != nil {
			log.Fatal(err)
		}
		st := p.Stats()
		fmt.Printf("%-9v %9d %14.1f %11.1f%%\n",
			m, st.NumPacks, st.MeanRowsPerPack, st.WorkShareTop5*100)
	}
}
