// Package stsk is a Go reproduction of STS-k, the multilevel sparse
// triangular solution scheme for NUMA multicores of Kabir, Booth, Aupy,
// Benoit, Robert and Raghavan (SC'15 / INRIA RR-8763).
//
// Given a structurally symmetric sparse matrix A = L + Lᵀ, the library
// computes an STS-k ordering — base RCM, super-rows for spatial locality,
// packs of independent super-rows via graph colouring or level sets, packs
// sorted by increasing size, and RCM on each pack's data-affinity-and-reuse
// (DAR) graph for temporal locality — and solves the resulting triangular
// system L′x = b pack-parallel, either under the paper's OpenMP-style
// barrier schedules or under a dependency-driven point-to-point schedule
// (GraphSchedule) that replaces the inter-pack barriers with per-task
// atomic completion counters over a transitively-sparsified task DAG.
//
// Because the Go runtime offers no thread pinning or NUMA placement, the
// paper's hardware timings are reproduced on a deterministic trace-driven
// cache simulator of the two evaluation machines (32-core Intel
// Westmere-EX, 24-core AMD Magny-Cours); see DESIGN.md. Wall-clock
// goroutine solving is also available and correct, just noisier.
//
// Quick start:
//
//	mat, _ := stsk.Generate("trimesh", 20000)
//	plan, _ := stsk.Build(mat, stsk.STS3, stsk.WithRowsPerSuper(80))
//	xTrue := make([]float64, plan.N())  // any target solution, in plan order
//	b := plan.RHSFor(xTrue)             // manufactured right-hand side b = L′·xTrue
//	x, _ := plan.Solve(b)
//
// Every entry point takes the same functional options: Build reads the
// ordering options (WithRowsPerSuper, WithLevels, WithSloanInPack), while
// NewSolver and SolveWith read the scheduling options (WithWorkers,
// WithSchedule, WithChunk).
//
// For repeated solves against the same plan — the iterative-solver traffic
// the paper targets — create a Solver once and stream right-hand sides
// through its persistent worker pool, with context-aware forms for
// cancellation and deadlines:
//
//	solver := plan.NewSolver(stsk.WithWorkers(8))
//	defer solver.Close()
//	x, _ = solver.Solve(b)                    // pooled pack-parallel solve
//	X, _ := solver.SolveBatchCtx(ctx, manyRHS) // pipelined, one worker per RHS
//	P, _ := solver.SolveBlock(ctx, manyRHS)    // blocked: one matrix sweep per RHS panel
//	for i, res := range solver.SolveSeq(ctx, slices.Values(manyRHS)) {
//	    _ = i // ordered streaming without channel boilerplate
//	    _ = res.X
//	}
//
// Failures are matched with errors.Is against the package sentinels
// ErrClosed, ErrDimension and ErrNotConverged. The krylov package builds
// a full preconditioned conjugate-gradient solver on top of this facade
// through the Preconditioner interface, and the serve package (daemon:
// cmd/stsserve) exposes plans over HTTP with adaptive coalescing of
// concurrent requests onto the blocked panel kernels.
//
// See DESIGN.md for the build pipeline and the solver-engine lifecycle.
package stsk

import (
	"fmt"
	"io"
	"os"
	"slices"
	"strings"
	"sync"

	"stsk/internal/cachesim"
	"stsk/internal/csrk"
	"stsk/internal/gen"
	"stsk/internal/ichol"
	"stsk/internal/machine"
	"stsk/internal/metrics"
	"stsk/internal/order"
	"stsk/internal/solve"
	"stsk/internal/sparse"
)

// Method selects one of the paper's four triangular-solution schemes.
type Method = order.Method

// The four schemes of the paper's evaluation (§4.1).
const (
	CSRLS  = order.CSRLS  // level sets on the fine graph (reference)
	CSRCOL = order.CSRCOL // colouring on the fine graph
	CSR3LS = order.CSR3LS // level sets + k-level sub-structuring
	STS3   = order.STS3   // colouring + k-level sub-structuring (the paper's scheme)
)

// Methods lists all four schemes in the paper's presentation order.
func Methods() []Method { return order.Methods() }

// ParseMethod resolves a method's command-line/config spelling ("csr-ls",
// "csr-col", "csr-3-ls", "sts3", case-insensitive, underscores accepted)
// to the Method constant — the single parser shared by the cmds and the
// serve subsystem.
func ParseMethod(s string) (Method, error) {
	switch strings.ToLower(strings.ReplaceAll(s, "_", "-")) {
	case "csr-ls", "csrls":
		return CSRLS, nil
	case "csr-3-ls", "csr3ls":
		return CSR3LS, nil
	case "csr-col", "csrcol":
		return CSRCOL, nil
	case "sts3", "sts-3", "csr-3-col":
		return STS3, nil
	}
	return 0, fmt.Errorf("stsk: unknown method %q", s)
}

// Matrix is a structurally symmetric sparse matrix with a full nonzero
// diagonal — the A = L + Lᵀ input of the STS-k pipeline.
type Matrix struct {
	a *sparse.CSR
}

// N returns the matrix dimension.
func (m *Matrix) N() int { return m.a.N }

// NNZ returns the number of stored entries.
func (m *Matrix) NNZ() int { return m.a.NNZ() }

// RowDensity returns mean stored entries per row.
func (m *Matrix) RowDensity() float64 { return m.a.RowDensity() }

// Values returns a copy of the stored entry values in CSR order — the
// array Plan.Refactor accepts. Mutate the copy and hand it back to
// Refactor (or SetValues) to step an evolving system without rebuilding
// the plan.
func (m *Matrix) Values() []float64 {
	return append([]float64(nil), m.a.Val...)
}

// SetValues replaces the matrix's entry values in place, keeping the
// sparsity pattern. The length must match NNZ; vals is copied.
func (m *Matrix) SetValues(vals []float64) error {
	if len(vals) != len(m.a.Val) {
		return fmt.Errorf("%w: %d values for a matrix with %d stored entries", ErrDimension, len(vals), len(m.a.Val))
	}
	copy(m.a.Val, vals)
	return nil
}

// Generate builds a synthetic matrix of one of the paper's Table 1 classes
// at roughly n rows. Classes: "grid2d", "grid3d", "kkt3d", "fem3d", "rgg",
// "trimesh", "quaddual", "roadnet".
func Generate(class string, n int) (*Matrix, error) {
	if n < 16 {
		n = 16
	}
	side2 := intSqrt(n)
	side3 := intCbrt(n)
	var a *sparse.CSR
	switch class {
	case "grid2d":
		a = gen.Grid2D(side2, side2)
	case "grid3d":
		a = gen.Grid3D(side3, side3, side3)
	case "kkt3d":
		a = gen.KKT3D(side3, side3, side3)
	case "fem3d":
		s := intCbrt(n / 2)
		a = gen.FEM3D(s, s, s, 2)
	case "rgg":
		a = gen.RGG(n, gen.RGGDegree(n, 14), 21)
	case "trimesh":
		a = gen.TriMesh(side2, side2, 7)
	case "quaddual":
		a = gen.QuadDual(intSqrt(n/2), intSqrt(n/2), 4)
	case "roadnet":
		a = gen.RoadNet(intSqrt(n/7), intSqrt(n/7), 3, 5, 3)
	default:
		return nil, fmt.Errorf("stsk: unknown matrix class %q", class)
	}
	return &Matrix{a: a}, nil
}

// SuiteIDs returns the paper's Table 1 matrix labels in order.
func SuiteIDs() []string {
	specs := gen.PaperSuite(64)
	ids := make([]string, len(specs))
	for i, s := range specs {
		ids[i] = s.ID
	}
	return ids
}

// GenerateSuite builds the Table 1 stand-in with the given paper label
// ("G1", "D1", "S1", "D2".."D10") at roughly scale rows.
func GenerateSuite(id string, scale int) (*Matrix, error) {
	spec := gen.BySuiteID(gen.PaperSuite(scale), id)
	if spec == nil {
		return nil, fmt.Errorf("stsk: unknown suite matrix %q (have %v)", id, SuiteIDs())
	}
	return &Matrix{a: spec.Build(scale)}, nil
}

// ReadMatrixMarket loads a Matrix Market coordinate stream. Triangular or
// unsymmetric inputs are symmetrised structurally (A = L + Lᵀ on the
// pattern), a missing diagonal is completed, and the values are replaced
// by SPD-by-dominance values so the lower triangle is a well-conditioned
// solvable system. Use this to drop real UF collection matrices into the
// pipeline.
func ReadMatrixMarket(r io.Reader) (*Matrix, error) {
	a, err := sparse.ReadMatrixMarket(r)
	if err != nil {
		return nil, err
	}
	if !a.IsStructurallySymmetric() {
		a = sparse.SymmetrizePattern(a)
	}
	a = sparse.EnsureDiagonal(a)
	if err := sparse.AssignSPDValues(a); err != nil {
		return nil, err
	}
	return &Matrix{a: a}, nil
}

// ReadMatrixMarketFile is ReadMatrixMarket over a file path — the
// open/read/close sequence previously copy-pasted across the cmds, shared
// here so every loader (cmd/stssolve, cmd/stsinfo, the serve registry)
// applies the same symmetrisation and SPD value policy.
func ReadMatrixMarketFile(path string) (*Matrix, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	m, err := ReadMatrixMarket(f)
	if err != nil {
		return nil, fmt.Errorf("stsk: %s: %w", path, err)
	}
	return m, nil
}

// Plan is a built STS-k ordering: the permuted triangular system plus the
// pack/super-row structure, ready to solve repeatedly for many right-hand
// sides (the pre-processing the paper amortises, §4.1).
type Plan struct {
	inner *order.Plan

	// vals is the plan's copy-on-write value-epoch sequence: the numeric
	// side of the factor, swapped atomically by Refactor while every piece
	// of symbolic work (packs, permutation, task DAG, packed layout
	// geometry) stays shared across epochs. It lives in its own allocation
	// (never pointing back at the Plan or a Solver) so solve engines
	// holding it cannot create a cycle that defeats the Solver's GC
	// cleanup.
	vals *solve.Values

	// origRowPtr/origCol reference the pattern of the matrix the plan was
	// built from, so Refactor can map input-order values onto the permuted
	// factor. Nil for derived plans (IC0 factors), whose values are
	// computed rather than copied.
	origRowPtr []int
	origCol    []int

	// refactorMu serialises Refactor calls and guards valMap, the lazily
	// built map from input CSR entry to factor value slot (-1 for entries
	// landing above the diagonal after permutation).
	refactorMu sync.Mutex
	valMap     []int

	// lazyMu guards the lazily built caches below; Plans are documented as
	// safe for concurrent solving, so lazy construction must be too.
	lazyMu sync.Mutex
	aSym   *sparse.CSR   // plan-ordered symmetric matrix A′ (current epoch's values)
	dag    *csrk.TaskDAG // dependency DAG for the graph schedule
	dagPar float64       // cached dag.Parallelism()

	// shared is the plan's own persistent Solver, built on first
	// default-option Solve/SolveUpper so repeated solves reuse one parked
	// worker pool instead of spawning goroutines per call.
	sharedOnce sync.Once
	shared     *Solver
}

func newPlan(inner *order.Plan) *Plan {
	return &Plan{inner: inner, vals: solve.NewValues(inner.S)}
}

// structure returns the current value epoch's structure: the shared
// symbolic arrays plus the live value array. Everything on the Plan that
// reads factor values goes through here, so a Refactor is visible to all
// of it.
func (p *Plan) structure() *csrk.Structure { return p.vals.Structure() }

// sharedSolver returns (building once, concurrency-safe) the plan's
// persistent default-option Solver.
func (p *Plan) sharedSolver() *Solver {
	p.sharedOnce.Do(func() { p.shared = p.NewSolver() })
	return p.shared
}

// taskDAG returns (building lazily, concurrency-safe) the plan's
// dependency DAG for the point-to-point graph schedule: packs carved into
// nnz-balanced super-row chunks, direct dependencies read off the matrix,
// transitively sparsified so each task waits only on its direct
// unsatisfied predecessors. Built once and shared by every Solver of the
// plan.
func (p *Plan) taskDAG() *csrk.TaskDAG {
	p.lazyMu.Lock()
	defer p.lazyMu.Unlock()
	if p.dag == nil {
		p.dag = order.BuildTaskDAG(p.inner.S, order.TaskDAGOptions{})
		p.dagPar = p.dag.Parallelism()
	}
	return p.dag
}

// graphWins reports whether the graph schedule should be the default for
// this plan: the DAG must offer enough parallel slack (tasks per critical
// path) that point-to-point scheduling beats the barrier pairing rather
// than merely matching it.
func (p *Plan) graphWins() bool {
	p.taskDAG()
	p.lazyMu.Lock()
	defer p.lazyMu.Unlock()
	return p.dagPar >= 1.5
}

// symmetric returns (building lazily) A′ = L′ + L′ᵀ − D in plan order.
func (p *Plan) symmetric() *sparse.CSR {
	p.lazyMu.Lock()
	defer p.lazyMu.Unlock()
	if p.aSym == nil {
		p.aSym = sparse.SymmetrizePattern(p.structure().L)
	}
	return p.aSym
}

// ApplySymmetric computes y = A′·x where A′ is the plan-ordered symmetric
// matrix whose lower triangle the plan solves — the operator a
// preconditioned-CG iteration multiplies by.
func (p *Plan) ApplySymmetric(y, x []float64) {
	p.symmetric().MatVec(y, x)
}

// Diagonal returns a copy of the diagonal of the plan's system at the
// current value epoch.
func (p *Plan) Diagonal() []float64 {
	l := p.structure().L
	d := make([]float64, l.N)
	for i := 0; i < l.N; i++ {
		d[i] = l.Val[l.RowPtr[i+1]-1]
	}
	return d
}

// SolveUpper solves L′ᵀ z = b with the pack-parallel backward solver
// (packs in reverse order) — the second sweep of a symmetric Gauss–Seidel
// or incomplete-Cholesky preconditioner whose first sweep is the plan's
// forward solve. It runs on the plan's shared persistent Solver, so
// repeated calls reuse one parked worker pool, with the same
// serialisation and pool-lifetime behavior as Solve. A right-hand side of
// the wrong length returns ErrDimension before the shared pool is even
// created.
func (p *Plan) SolveUpper(b []float64) ([]float64, error) {
	if err := p.checkDim(b); err != nil {
		return nil, err
	}
	return p.sharedSolver().SolveUpper(b)
}

// SolveUpperWith is SolveUpper with explicit scheduling options. Unlike
// SolveUpper it is always one-shot: it spins goroutines up and down
// around the call, so option experiments never pin a pool and timings of
// this path measure the same engine for every option value. Hold a
// Plan.NewSolver(opts...) for repeated non-default solves.
func (p *Plan) SolveUpperWith(b []float64, opts ...Option) ([]float64, error) {
	if err := p.checkDim(b); err != nil {
		return nil, err
	}
	x := make([]float64, p.N())
	if err := solve.SolveOnceVals(p.vals, x, b, true, p.lowerSolve(applyOptions(opts))); err != nil {
		return nil, err
	}
	return x, nil
}

// checkDim validates one plan-order vector length at the facade, so a
// short or long right-hand side fails fast with ErrDimension instead of
// reaching a solve kernel.
func (p *Plan) checkDim(v []float64) error {
	if len(v) != p.N() {
		return fmt.Errorf("%w: vector length %d, want %d", ErrDimension, len(v), p.N())
	}
	return nil
}

// IC0 computes the zero-fill incomplete Cholesky factor of the plan's
// symmetric matrix A′ and returns a new Plan over the factor L̂ — same
// permutation, same pack/super-row structure (IC(0) preserves the
// pattern), factored values. Solving with the returned plan applies the
// triangular sweeps of the preconditioner M = L̂·L̂ᵀ, the setting that
// motivates the paper (§1). AutoBoost shifts the diagonal if A′ is not
// positive definite enough for IC(0).
func (p *Plan) IC0() (*Plan, error) {
	lfac, err := ichol.Factor(p.symmetric(), ichol.Options{AutoBoost: true})
	if err != nil {
		return nil, err
	}
	s2, err := csrk.Build(lfac, p.inner.S.SuperPtr, p.inner.S.PackPtr)
	if err != nil {
		return nil, err
	}
	inner2 := &order.Plan{
		Method:   p.inner.Method,
		Opts:     p.inner.Opts,
		Perm:     p.inner.Perm,
		S:        s2,
		NumPacks: p.inner.NumPacks,
	}
	return newPlan(inner2), nil
}

// Build runs the ordering pipeline for the given method. The ordering
// options (WithRowsPerSuper, WithLevels, WithSloanInPack) tune the
// pipeline beyond the method choice; scheduling options are ignored here
// and read by NewSolver/SolveWith instead.
func Build(m *Matrix, method Method, opts ...Option) (*Plan, error) {
	c := applyOptions(opts)
	oo := order.Options{
		Method:       method,
		RowsPerSuper: c.rowsPerSuper,
		Levels:       c.levels,
	}
	if c.sloanInPack {
		oo.InPackOrder = order.InPackSloan
	}
	p, err := order.Build(m.a, oo)
	if err != nil {
		return nil, err
	}
	plan := newPlan(p)
	// Remember the source pattern so Refactor can map new input-order
	// values onto the permuted factor. The ordering pipeline reads only
	// the pattern, so a rebuilt plan on the same pattern is structurally
	// identical — which is what makes Refactor equivalent to (and bitwise
	// interchangeable with) a full rebuild.
	plan.origRowPtr, plan.origCol = m.a.RowPtr, m.a.Col
	return plan, nil
}

// Refactor replaces the plan's factor values with new ones for the same
// sparsity — numeric refactorization. values is the CSR value array of
// the input matrix the plan was built from (Matrix.Values order); it is
// mapped through the plan's permutation onto the lower factor and
// published as a new copy-on-write value epoch. All symbolic work — the
// pack partition, the task DAG, the permutations, the packed-layout
// geometry — is reused, so Refactor costs O(nnz) instead of a rebuild,
// and subsequent solves are bitwise identical to those of a plan freshly
// built on the new values.
//
// The swap is atomic and lock-free for solvers: solves already dispatched
// (including every member of an in-flight batch or block call) complete
// on the old values; solves dispatched afterwards see the new ones. No
// solve ever observes a mix.
//
// A values slice whose length does not match the plan's pattern, or a
// derived plan (IC0 factor), is rejected with ErrSparsityMismatch; a zero
// diagonal is rejected without publishing anything. Derived state
// (Diagonal, ApplySymmetric, IC0) reflects the new values on next use —
// re-derive IC0 factors by calling IC0 again after Refactor.
func (p *Plan) Refactor(values []float64) error {
	p.refactorMu.Lock()
	defer p.refactorMu.Unlock()
	if p.origCol == nil {
		return fmt.Errorf("%w: plan derives its values (IC0 factor); refactor the base plan and call IC0 again", ErrSparsityMismatch)
	}
	if len(values) != len(p.origCol) {
		return fmt.Errorf("%w: %d values for a pattern with %d stored entries", ErrSparsityMismatch, len(values), len(p.origCol))
	}
	if p.valMap == nil {
		if err := p.buildValMap(); err != nil {
			return err
		}
	}
	l := p.inner.S.L // pattern arrays, shared by every epoch
	newVal := make([]float64, len(l.Val))
	for k, idx := range p.valMap {
		if idx >= 0 {
			newVal[idx] = values[k]
		}
	}
	if err := p.vals.Swap(newVal); err != nil {
		return fmt.Errorf("stsk: refactor: %w", err)
	}
	// The symmetrised operator caches the old values; rebuild on demand.
	p.lazyMu.Lock()
	p.aSym = nil
	p.lazyMu.Unlock()
	return nil
}

// RefactorMatrix is Refactor accepting a matrix, validating that its
// sparsity is identical to the pattern the plan was built from. Use it
// when the evolving system hands back whole matrices; use Refactor when
// only the value array changes.
func (p *Plan) RefactorMatrix(m *Matrix) error {
	if m == nil || m.a == nil {
		return fmt.Errorf("%w: nil matrix", ErrSparsityMismatch)
	}
	if p.origCol != nil {
		if m.a.N != p.N() || !slices.Equal(m.a.RowPtr, p.origRowPtr) || !slices.Equal(m.a.Col, p.origCol) {
			return fmt.Errorf("%w: matrix pattern differs from the one the plan was built from", ErrSparsityMismatch)
		}
	}
	return p.Refactor(m.a.Val)
}

// ValuesVersion returns the plan's value-epoch sequence number: 0 at
// Build, incremented by every successful Refactor. Serving layers use it
// to report which numeric version a solve ran against.
func (p *Plan) ValuesVersion() uint64 { return p.vals.Version() }

// buildValMap computes, for every stored entry (i, j) of the source
// pattern, the index of its slot in the permuted lower factor L′ — or -1
// when the permuted entry lands strictly above the diagonal (it is then
// represented by its structural mirror). Called once under refactorMu.
func (p *Plan) buildValMap() error {
	perm := p.inner.Perm
	l := p.inner.S.L
	vm := make([]int, len(p.origCol))
	for i := 0; i+1 < len(p.origRowPtr); i++ {
		pi := perm[i]
		lo, hi := l.RowPtr[pi], l.RowPtr[pi+1]
		cols := l.Col[lo:hi]
		for k := p.origRowPtr[i]; k < p.origRowPtr[i+1]; k++ {
			pj := perm[p.origCol[k]]
			if pj > pi {
				vm[k] = -1
				continue
			}
			idx, ok := slices.BinarySearch(cols, pj)
			if !ok {
				return fmt.Errorf("%w: entry (%d,%d) has no slot in the plan's factor", ErrSparsityMismatch, i, p.origCol[k])
			}
			vm[k] = lo + idx
		}
	}
	p.valMap = vm
	return nil
}

// Method returns the scheme this plan implements.
func (p *Plan) Method() Method { return p.inner.Method }

// N returns the system dimension.
func (p *Plan) N() int { return p.inner.S.L.N }

// NumPacks returns the number of parallel steps (synchronisation points).
func (p *Plan) NumPacks() int { return p.inner.NumPacks }

// Permutation returns a copy of the row permutation (original index of the
// input matrix → row of the plan's triangular system).
func (p *Plan) Permutation() []int {
	return append([]int(nil), p.inner.Perm...)
}

// PermuteVector maps a vector from the original index order into plan
// order: out[perm[i]] = v[i].
func (p *Plan) PermuteVector(v []float64) []float64 { return p.inner.PermuteRHS(v) }

// UnpermuteVector maps a plan-order vector back to the original order.
func (p *Plan) UnpermuteVector(v []float64) []float64 { return p.inner.UnpermuteSolution(v) }

// RHSFor returns b = L′·x for a chosen solution x (in plan order), handy
// for tests and demos.
func (p *Plan) RHSFor(x []float64) []float64 {
	return sparse.RHSForSolution(p.structure().L, x)
}

// Residual returns the infinity-norm residual ‖L′x − b‖∞.
func (p *Plan) Residual(x, b []float64) float64 {
	return sparse.Residual(p.structure().L, x, b)
}

// Solve solves L′x = b (both in plan order) with the paper's default
// schedule for the plan's method and returns x. It runs on the plan's
// shared persistent Solver, so repeated calls reuse one parked worker
// pool; the pool stays parked until the plan is garbage collected.
// Cooperative solves on one pool are serialised, so concurrent Solve
// calls on one Plan queue rather than run side by side — goroutines
// needing independent parallel solves should each hold a Plan.NewSolver,
// which is also the route to batches, contexts, and explicit lifecycle
// control. A right-hand side of the wrong length returns ErrDimension
// before the shared pool is even created.
func (p *Plan) Solve(b []float64) ([]float64, error) {
	if err := p.checkDim(b); err != nil {
		return nil, err
	}
	return p.sharedSolver().Solve(b)
}

// SolveWith is Solve with explicit scheduling options. Unlike Solve it is
// always one-shot: it spins goroutines up and down around the call, so
// option experiments never pin a pool and timings of this path measure
// the same engine for every option value. Hold a Plan.NewSolver(opts...)
// for repeated non-default solves.
func (p *Plan) SolveWith(b []float64, opts ...Option) ([]float64, error) {
	if err := p.checkDim(b); err != nil {
		return nil, err
	}
	x := make([]float64, p.N())
	if err := solve.SolveOnceVals(p.vals, x, b, false, p.lowerSolve(applyOptions(opts))); err != nil {
		return nil, err
	}
	return x, nil
}

// SolveSequential solves L′x = b on one core — the baseline T(·, ·, 1).
func (p *Plan) SolveSequential(b []float64) ([]float64, error) {
	return solve.Sequential(p.structure(), b)
}

// Stats summarises the pack structure of a plan (Figures 7–8 measures).
type Stats struct {
	NumPacks        int
	Rows            int
	NNZ             int64
	MeanRowsPerPack float64
	LargestPackRows int
	// WorkShareTop5 is the fraction of nonzeros in the 5 largest packs.
	WorkShareTop5 float64
}

// Stats computes the parallelism measures of the plan.
func (p *Plan) Stats() Stats {
	st := metrics.Analyze(p.inner.S)
	return Stats{
		NumPacks:        st.NumPacks,
		Rows:            st.Rows,
		NNZ:             st.NNZ,
		MeanRowsPerPack: st.MeanRowsPerPack,
		LargestPackRows: st.LargestPackRows,
		WorkShareTop5:   st.WorkShareTop5,
	}
}

// SimResult is the outcome of a modeled solve on a NUMA topology.
type SimResult struct {
	Machine    string
	Cores      int
	Cycles     uint64  // modeled makespan
	SyncCycles uint64  // barrier portion
	HitRate    float64 // fraction of accesses served by L1/L2/local L3
	NumPacks   int
}

// MachineNames lists the built-in NUMA topologies: "intel" (32-core
// Westmere-EX), "amd" (24-core Magny-Cours), "uma" (flat 32-core
// reference).
func MachineNames() []string { return []string{"intel", "amd", "uma"} }

// Simulate replays the plan's solve on the named topology with the given
// core count (compact placement) and returns modeled cycles — the
// reproduction's stand-in for the paper's pinned hardware timings.
func (p *Plan) Simulate(machineName string, cores int) (SimResult, error) {
	topo, ok := machine.Known()[machineName]
	if !ok {
		return SimResult{}, fmt.Errorf("stsk: unknown machine %q (have %v)", machineName, MachineNames())
	}
	chunk := 1
	if !p.inner.Method.UsesSuperRows() {
		chunk = 32
	}
	res, err := cachesim.Simulate(p.inner.S, topo, cachesim.Options{Cores: cores, Chunk: chunk, Repeats: 2})
	if err != nil {
		return SimResult{}, err
	}
	return SimResult{
		Machine:    topo.Name,
		Cores:      cores,
		Cycles:     res.Cycles,
		SyncCycles: res.SyncCycles,
		HitRate:    res.HitRate,
		NumPacks:   res.NumPacks,
	}, nil
}

func intSqrt(n int) int {
	s := 1
	for (s+1)*(s+1) <= n {
		s++
	}
	if s < 2 {
		s = 2
	}
	return s
}

func intCbrt(n int) int {
	s := 1
	for (s+1)*(s+1)*(s+1) <= n {
		s++
	}
	if s < 2 {
		s = 2
	}
	return s
}
