package stsk

import (
	"errors"
	"math"
	"testing"

	"stsk/internal/testmat"
)

// fuzzValues derives a full value array for m from the fuzzer's bytes:
// each stored entry is rescaled by a byte-driven power of two in
// [2⁻⁸, 2⁸] with byte-driven sign flips, and diagonal entries are kept
// away from zero (a legitimate rejection tested separately) so every
// derived system is solvable.
func fuzzValues(m *Matrix, data []byte) []float64 {
	vals := m.Values()
	if len(data) == 0 {
		data = []byte{0x55}
	}
	for k := range vals {
		b := data[k%len(data)]
		exp := int(b&0x0f) - 8 // 2^-8 .. 2^7
		f := math.Ldexp(1, exp)
		if b&0x10 != 0 {
			f = -f
		}
		vals[k] *= f
	}
	// Clamp diagonals: near-zero pivots stay representable but solvable.
	a := m.a
	for i := 0; i < a.N; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			if a.Col[k] == i {
				if math.Abs(vals[k]) < 1e-6 {
					vals[k] = math.Copysign(1e-6, vals[k]+1e-300)
				}
			}
		}
	}
	return vals
}

// denseLower extracts the plan's permuted lower factor L′ as a dense
// matrix by applying the symmetric operator to unit vectors: column j of
// A′ = L′ + L′ᵀ − D below the diagonal is exactly column j of L′.
func denseLower(p *Plan) [][]float64 {
	n := p.N()
	L := make([][]float64, n)
	for i := range L {
		L[i] = make([]float64, n)
	}
	e := make([]float64, n)
	col := make([]float64, n)
	for j := 0; j < n; j++ {
		e[j] = 1
		p.ApplySymmetric(col, e)
		e[j] = 0
		for i := j; i < n; i++ {
			L[i][j] = col[i]
		}
	}
	return L
}

// FuzzRefactor drives Plan.Refactor with fuzzed value perturbations on a
// fixed sparsity and checks the whole pipeline against a naive dense
// forward substitution at 1e-12, plus bitwise identity against a plan
// freshly built on the same values — and pins the ErrSparsityMismatch
// rejection for truncated arrays.
func FuzzRefactor(f *testing.F) {
	f.Add([]byte{0})
	f.Add([]byte{0xff, 0x10, 0x08})
	f.Add([]byte("sign flips and near-zero diagonals"))
	f.Add([]byte{0x1f, 0x00, 0x17, 0x09, 0x80})

	f.Fuzz(func(t *testing.T, data []byte) {
		m := &Matrix{a: testmat.Grid3D(4)} // fixed 64-row SPD sparsity
		p, err := Build(m, STS3)
		if err != nil {
			t.Fatal(err)
		}
		vals := fuzzValues(m, data)

		// A truncated array is a sparsity mismatch, and must not publish.
		if err := p.Refactor(vals[:len(vals)-1]); !errors.Is(err, ErrSparsityMismatch) {
			t.Fatalf("truncated values: %v, want ErrSparsityMismatch", err)
		}
		if err := p.Refactor(vals); err != nil {
			t.Fatal(err)
		}

		b := manufacturedB(p, 5)
		x, err := p.SolveWith(b, WithWorkers(3))
		if err != nil {
			t.Fatal(err)
		}

		// Naive dense reference on the refactored factor.
		L := denseLower(p)
		ref := make([]float64, p.N())
		for i := range ref {
			s := b[i]
			for j := 0; j < i; j++ {
				s -= L[i][j] * ref[j]
			}
			ref[i] = s / L[i][i]
		}
		for i := range x {
			diff := math.Abs(x[i] - ref[i])
			scale := math.Max(1, math.Abs(ref[i]))
			if diff/scale > 1e-12 || math.IsNaN(x[i]) {
				t.Fatalf("x[%d] = %v, dense reference %v (rel %g)", i, x[i], ref[i], diff/scale)
			}
		}

		// Bitwise identity against a fresh build on the same values.
		if err := m.SetValues(vals); err != nil {
			t.Fatal(err)
		}
		fresh, err := Build(m, STS3)
		if err != nil {
			t.Fatal(err)
		}
		want, err := fresh.SolveSequential(b)
		if err != nil {
			t.Fatal(err)
		}
		got, err := p.SolveSequential(b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("refactored plan differs from rebuild at %d: %v vs %v", i, got[i], want[i])
			}
		}
	})
}
