package stsk

// Preconditioner applies z = M⁻¹r for a symmetric positive definite
// preconditioner M of the plan's symmetric matrix A′. It is the seam
// between this package and iterative solvers: the krylov package accepts
// any Preconditioner, and the built-in implementations — Jacobi,
// symmetric Gauss–Seidel, and incomplete Cholesky IC(0) — ride the
// persistent Solver so every application is two pooled pack-parallel
// triangular sweeps at most.
//
// Apply must treat r as read-only, must fully overwrite z, and must
// accept z and r of length Plan.N(), returning ErrDimension otherwise.
// Implementations here are safe for concurrent use.
type Preconditioner interface {
	Apply(z, r []float64) error
}

// jacobi is the diagonal preconditioner M = D. It divides rather than
// multiplying by a precomputed reciprocal so z = r/d holds bitwise, like
// every other kernel in this package.
type jacobi struct {
	diag []float64
}

// NewJacobi returns the Jacobi (diagonal) preconditioner M = D of the
// plan's symmetric matrix — the cheapest preconditioner, one divide per
// unknown and no triangular solves.
func NewJacobi(p *Plan) Preconditioner {
	return &jacobi{diag: p.Diagonal()}
}

func (m *jacobi) Apply(z, r []float64) error {
	if len(z) != len(m.diag) || len(r) != len(m.diag) {
		return dimErr(len(z), len(r), len(m.diag))
	}
	for i := range z {
		z[i] = r[i] / m.diag[i]
	}
	return nil
}

// sgs applies M = L′ D⁻¹ L′ᵀ on a caller-owned Solver.
type sgs struct {
	s *Solver
}

// NewSGS returns the symmetric Gauss–Seidel preconditioner
// M = L′ D⁻¹ L′ᵀ applied on the given Solver's worker pool: a
// pack-parallel forward sweep, a diagonal scale, and a pack-parallel
// backward sweep per application. The caller keeps ownership of the
// Solver and its lifecycle.
func NewSGS(s *Solver) Preconditioner { return &sgs{s: s} }

// Apply delegates to ApplySGSInto, which already validates both vectors
// against the plan and reports ErrDimension.
func (m *sgs) Apply(z, r []float64) error { return m.s.ApplySGSInto(z, r) }

// IC0Preconditioner applies the zero-fill incomplete-Cholesky
// preconditioner M = L̂·L̂ᵀ: a forward and a backward pack-parallel sweep
// of the factor, both on a dedicated persistent Solver over the factor
// plan. Close releases that pool; an IC0Preconditioner dropped without
// Close cleans up at the next GC like any Solver.
type IC0Preconditioner struct {
	factor *Plan
	solver *Solver
}

// NewIC0 factors the plan's symmetric matrix with zero-fill incomplete
// Cholesky (Plan.IC0, auto-boosting the diagonal when needed) and starts
// a persistent Solver over the factor with the given scheduling options.
func NewIC0(p *Plan, opts ...Option) (*IC0Preconditioner, error) {
	factor, err := p.IC0()
	if err != nil {
		return nil, err
	}
	return &IC0Preconditioner{factor: factor, solver: factor.NewSolver(opts...)}, nil
}

// Factor returns the plan over the incomplete-Cholesky factor L̂ — same
// permutation and pack structure as the source plan, factored values.
func (m *IC0Preconditioner) Factor() *Plan { return m.factor }

// Close releases the preconditioner's worker pool.
func (m *IC0Preconditioner) Close() { m.solver.Close() }

// Apply computes z = (L̂·L̂ᵀ)⁻¹ r with two pooled triangular sweeps; the
// Solver's Into methods validate both vectors and report ErrDimension.
// The intermediate rides the factor Solver's own scratch pool.
func (m *IC0Preconditioner) Apply(z, r []float64) error {
	yp := m.solver.scratch.Get().(*[]float64)
	y := *yp
	defer m.solver.scratch.Put(yp)
	if err := m.solver.SolveInto(y, r); err != nil {
		return err
	}
	return m.solver.SolveUpperInto(z, y)
}
