package stsk

// End-to-end integration tests: the full pipeline from Matrix Market bytes
// through ordering, parallel forward/backward solves, IC(0)
// preconditioning, and the NUMA simulator, exercised together the way a
// downstream PCG user would.

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"stsk/internal/sparse"
	"stsk/internal/testmat"
)

func TestEndToEndMatrixMarketPipeline(t *testing.T) {
	// Serialise a corpus matrix, reload it through the public API, and run
	// the complete STS-3 flow.
	a := testmat.TriMesh(24)
	var buf bytes.Buffer
	if err := sparse.WriteMatrixMarket(&buf, a); err != nil {
		t.Fatal(err)
	}
	mat, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if mat.N() != a.N {
		t.Fatalf("round trip changed n: %d vs %d", mat.N(), a.N)
	}
	for _, method := range Methods() {
		plan, err := Build(mat, method, WithRowsPerSuper(12))
		if err != nil {
			t.Fatalf("%v: %v", method, err)
		}
		xTrue := make([]float64, plan.N())
		for i := range xTrue {
			xTrue[i] = math.Cos(float64(i))
		}
		b := plan.RHSFor(xTrue)
		x, err := plan.SolveWith(b, WithWorkers(4))
		if err != nil {
			t.Fatalf("%v: %v", method, err)
		}
		if d := sparse.MaxAbsDiff(x, xTrue); d > 1e-9 {
			t.Fatalf("%v: solve error %g", method, d)
		}
		sim, err := plan.Simulate("amd", 12)
		if err != nil {
			t.Fatalf("%v: %v", method, err)
		}
		if sim.Cycles == 0 {
			t.Fatalf("%v: empty simulation", method)
		}
	}
}

func TestEndToEndPCGWithIC0(t *testing.T) {
	// A miniature of examples/cg as a regression test: PCG with IC(0)
	// through the public API must converge on an SPD system.
	mat, err := Generate("grid2d", 900)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Build(mat, STS3, WithRowsPerSuper(10))
	if err != nil {
		t.Fatal(err)
	}
	ic, err := plan.IC0()
	if err != nil {
		t.Fatal(err)
	}
	n := plan.N()
	rng := rand.New(rand.NewSource(11))
	xTrue := make([]float64, n)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	b := make([]float64, n)
	plan.ApplySymmetric(b, xTrue)

	x := make([]float64, n)
	r := append([]float64(nil), b...)
	applyM := func(v []float64) []float64 {
		y, err := ic.Solve(v)
		if err != nil {
			t.Fatal(err)
		}
		z, err := ic.SolveUpper(y)
		if err != nil {
			t.Fatal(err)
		}
		return z
	}
	z := applyM(r)
	p := append([]float64(nil), z...)
	ap := make([]float64, n)
	rz := dotf(r, z)
	iters := 0
	for it := 1; it <= 200; it++ {
		iters = it
		plan.ApplySymmetric(ap, p)
		alpha := rz / dotf(p, ap)
		for i := range x {
			x[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
		}
		if math.Sqrt(dotf(r, r)) < 1e-10 {
			break
		}
		z = applyM(r)
		rzNew := dotf(r, z)
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	if iters >= 200 {
		t.Fatalf("PCG did not converge in %d iterations", iters)
	}
	if d := sparse.MaxAbsDiff(x, xTrue); d > 1e-6 {
		t.Fatalf("PCG solution error %g after %d iterations", d, iters)
	}
	// IC(0) must beat the diagonal preconditioner on iteration count for a
	// Laplacian this size (sanity that the factor actually helps).
	if iters > 60 {
		t.Fatalf("IC(0)-PCG took %d iterations on a 900-point Laplacian", iters)
	}
}

func dotf(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func TestBuildOrderingOptionExtensions(t *testing.T) {
	mat, err := Generate("trimesh", 1500)
	if err != nil {
		t.Fatal(err)
	}
	k4, err := Build(mat, STS3, WithRowsPerSuper(8), WithLevels(4))
	if err != nil {
		t.Fatal(err)
	}
	sloan, err := Build(mat, STS3, WithRowsPerSuper(8), WithSloanInPack())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []*Plan{k4, sloan} {
		xTrue := sparseOnes(p.N())
		b := p.RHSFor(xTrue)
		x, err := p.Solve(b)
		if err != nil {
			t.Fatal(err)
		}
		if r := p.Residual(x, b); r > 1e-9 {
			t.Fatalf("residual %g", r)
		}
	}
	if _, err := Build(mat, CSRLS, WithLevels(4)); err == nil {
		t.Fatal("row-level method accepted Levels=4")
	}
}

func sparseOnes(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 1
	}
	return v
}
