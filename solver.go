package stsk

import (
	"runtime"
	"sync"

	"stsk/internal/solve"
	"stsk/internal/sparse"
)

// Solver is a reusable solve engine over one Plan: a persistent pool of
// worker goroutines started once and parked between solves, with the
// pack-schedule bookkeeping preallocated. Where Plan.SolveWith pays
// goroutine spawn on every call, a Solver amortises that setup across an
// arbitrary stream of right-hand sides — the "many solves per ordering"
// traffic shape that motivates the paper (§4.1).
//
// A Solver offers three solve shapes:
//
//   - Single solves (Solve, SolveInto, SolveUpper, SolveUpperInto,
//     ApplySGS): one right-hand side swept pack-parallel by the whole pool
//     under the plan's default schedule.
//   - Batched solves (SolveBatch, SolveBatchInto, ApplySGSBatch): many
//     independent right-hand sides pipelined through the pack levels, one
//     vector per worker with no barriers.
//   - Streaming solves (SolveMany): batch semantics over a channel, with
//     results in input order and bounded in-flight memory.
//
// All shapes produce results bitwise identical to Plan.SolveSequential.
// A Solver is safe for concurrent use from multiple goroutines. Close
// releases the pool; a Solver that is garbage collected without Close
// releases it automatically.
type Solver struct {
	plan      *Plan
	eng       *solve.Engine
	scratch   sync.Pool // intermediate vectors for the fused sweeps
	cleanup   runtime.Cleanup
	closeOnce sync.Once
}

// NewSolver starts a persistent solve engine for the plan. The variadic
// options fix the pool size and schedule for the solver's lifetime; when
// omitted, the paper's per-method defaults apply (dynamic,32 for the
// row-level schemes, guided,1 for the k-level schemes, GOMAXPROCS
// workers). Callers should Close the solver when done with it, though an
// unreferenced Solver cleans up after itself at the next GC.
func (p *Plan) NewSolver(so ...SolveOptions) *Solver {
	var opts SolveOptions
	if len(so) > 0 {
		opts = so[0]
	}
	// Every solver of this plan lazily shares the plan's single validated
	// transpose for backward sweeps, instead of each engine building its
	// own O(nnz) copy. The closure captures only the upperLazy cache —
	// capturing the Plan would reach the shared Solver through p.shared
	// and keep the AddCleanup below from ever firing.
	cache := p.upperCache
	eng := solve.NewEngineWithUpper(p.inner.S, func() (*sparse.CSR, error) {
		us, err := cache.get()
		if err != nil {
			return nil, err
		}
		return us.Transposed(), nil
	}, p.solveOptions(opts))
	s := &Solver{plan: p, eng: eng}
	s.scratch.New = func() any { return make([]float64, p.N()) }
	// If the Solver is dropped without Close, release the parked workers
	// once the GC proves it unreachable (the engine never references the
	// Solver, so this fires).
	s.cleanup = runtime.AddCleanup(s, func(e *solve.Engine) { e.Close() }, s.eng)
	return s
}

// Workers returns the solver's fixed pool size.
func (s *Solver) Workers() int { return s.eng.Workers() }

// Plan returns the plan this solver is bound to.
func (s *Solver) Plan() *Plan { return s.plan }

// Close stops the worker pool and waits for the workers to exit. Solves
// already in flight complete, solves issued after Close fail; Close is
// idempotent.
func (s *Solver) Close() {
	s.closeOnce.Do(func() {
		s.cleanup.Stop()
		s.eng.Close()
	})
}

// Solve solves L′x = b (both in plan order) pack-parallel on the pooled
// workers and returns x.
func (s *Solver) Solve(b []float64) ([]float64, error) { return s.eng.Solve(b) }

// SolveInto is Solve writing into a caller-provided vector.
func (s *Solver) SolveInto(x, b []float64) error { return s.eng.SolveInto(x, b) }

// SolveUpper solves the transposed system L′ᵀx = b pack-parallel, packs
// in reverse order — the second sweep of a symmetric Gauss–Seidel or
// incomplete-Cholesky preconditioner.
func (s *Solver) SolveUpper(b []float64) ([]float64, error) { return s.eng.SolveUpper(b) }

// SolveUpperInto is SolveUpper writing into a caller-provided vector.
func (s *Solver) SolveUpperInto(x, b []float64) error { return s.eng.SolveUpperInto(x, b) }

// SolveBatch solves L′xᵢ = bᵢ for every right-hand side of B and returns
// the solutions in order. Each vector is swept start-to-finish by one
// pooled worker with no inter-pack barriers, so up to Workers independent
// right-hand sides travel the pack levels concurrently — the highest-
// throughput path for iterative-solver and multi-scenario traffic.
func (s *Solver) SolveBatch(B [][]float64) ([][]float64, error) { return s.eng.SolveBatch(B) }

// SolveBatchInto is SolveBatch writing into caller-provided solution
// vectors; X[i] may alias B[i] for in-place solves.
func (s *Solver) SolveBatchInto(X, B [][]float64) error { return s.eng.SolveBatchInto(X, B) }

// SolveUpperBatchInto solves L′ᵀxᵢ = bᵢ for every right-hand side,
// pipelined like SolveBatch.
func (s *Solver) SolveUpperBatchInto(X, B [][]float64) error { return s.eng.SolveUpperBatchInto(X, B) }

// SolveResult is one solved right-hand side from SolveMany.
type SolveResult struct {
	X   []float64
	Err error
}

// SolveMany streams right-hand sides through the pool: vectors read from
// bs are solved concurrently (one worker per vector) and delivered on the
// returned channel in input order. At most 2×Workers solves are in flight
// at once, so unbounded streams run in bounded memory. The output channel
// closes once bs is closed and drained.
//
// The caller owns the stream's lifecycle: close bs when done producing
// and receive until the output channel closes. The output buffer lets a
// short tail (up to 2×Workers results) flush without a consumer — enough
// for the stop-on-first-error pattern — but a stream abandoned with more
// work outstanding blocks the internal goroutines, and the producer,
// until the output is drained.
func (s *Solver) SolveMany(bs <-chan []float64) <-chan SolveResult {
	out := make(chan SolveResult, 2*s.eng.Workers())
	go func() {
		defer close(out)
		for r := range s.eng.SolveMany(bs) {
			out <- SolveResult{X: r.X, Err: r.Err}
		}
	}()
	return out
}

// ApplySGS applies the symmetric Gauss–Seidel preconditioner
// M⁻¹ = (L′ D⁻¹ L′ᵀ)⁻¹ to r and returns z = M⁻¹r: a pack-parallel forward
// sweep, a diagonal scale, and a pack-parallel backward sweep, all on the
// pooled workers — one PCG preconditioner application with no goroutine
// spawns and no allocations beyond the result.
func (s *Solver) ApplySGS(r []float64) ([]float64, error) {
	z := make([]float64, s.plan.N())
	if err := s.ApplySGSInto(z, r); err != nil {
		return nil, err
	}
	return z, nil
}

// ApplySGSInto is ApplySGS writing into a caller-provided vector.
func (s *Solver) ApplySGSInto(z, r []float64) error {
	y := s.scratch.Get().([]float64)
	defer s.scratch.Put(y)
	if err := s.eng.SolveInto(y, r); err != nil {
		return err
	}
	d := s.eng.Diagonal() // engine-owned, read-only
	for i := range y {
		y[i] *= d[i]
	}
	return s.eng.SolveUpperInto(z, y)
}

// ApplySGSBatch applies the symmetric Gauss–Seidel preconditioner to every
// vector of R, pipelined: one worker performs both sweeps of a vector back
// to back, keeping the intermediate in its own preallocated scratch.
func (s *Solver) ApplySGSBatch(R [][]float64) ([][]float64, error) {
	Z := make([][]float64, len(R))
	for i := range Z {
		Z[i] = make([]float64, s.plan.N())
	}
	if err := s.eng.ApplySGSBatch(Z, R); err != nil {
		return nil, err
	}
	return Z, nil
}
