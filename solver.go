package stsk

import (
	"context"
	"fmt"
	"iter"
	"runtime"
	"sync"

	"stsk/internal/panicsafe"
	"stsk/internal/solve"
)

// Solver is a reusable solve engine over one Plan: a persistent pool of
// worker goroutines started once and parked between solves, with the
// pack-schedule bookkeeping preallocated. Where Plan.SolveWith pays
// goroutine spawn on every call, a Solver amortises that setup across an
// arbitrary stream of right-hand sides — the "many solves per ordering"
// traffic shape that motivates the paper (§4.1).
//
// A Solver offers three solve shapes:
//
//   - Single solves (Solve, SolveInto, SolveUpper, SolveUpperInto,
//     ApplySGS): one right-hand side swept pack-parallel by the whole pool
//     under the plan's default schedule.
//   - Batched solves (SolveBatch, SolveBatchInto, ApplySGSBatch): many
//     independent right-hand sides pipelined through the pack levels, one
//     vector per worker with no barriers.
//   - Streaming solves (SolveMany, SolveSeq): batch semantics over a
//     channel or iterator, with results in input order and bounded
//     in-flight memory.
//
// Each shape has a context-aware form (SolveCtx, SolveUpperCtx,
// SolveBatchCtx, SolveManyCtx, SolveSeq) that honors cancellation and
// deadlines: a dead context stops new work from being dispatched and the
// call returns ctx.Err(), leaving the Solver fully usable. Right-hand
// sides of the wrong length are rejected with ErrDimension before any
// work is dispatched, and solves issued after Close return ErrClosed;
// both match with errors.Is.
//
// All shapes produce results bitwise identical to Plan.SolveSequential.
// A Solver is safe for concurrent use from multiple goroutines. Close
// releases the pool; a Solver that is garbage collected without Close
// releases it automatically.
type Solver struct {
	plan      *Plan
	eng       *solve.Engine
	scratch   sync.Pool // intermediate vectors for the fused sweeps
	cleanup   runtime.Cleanup
	closeOnce sync.Once
}

// NewSolver starts a persistent solve engine for the plan. The scheduling
// options (WithWorkers, WithSchedule, WithChunk) fix the pool size and
// schedule for the solver's lifetime; when omitted, the paper's
// per-method defaults apply (dynamic,32 for the row-level schemes,
// guided,1 for the k-level schemes, GOMAXPROCS workers). Callers should
// Close the solver when done with it, though an unreferenced Solver
// cleans up after itself at the next GC.
func (p *Plan) NewSolver(opts ...Option) *Solver {
	// Every solver of this plan binds to the plan's shared value-epoch
	// sequence, so per-epoch derived state (the packed layout, the O(nnz)
	// validated transpose, the diagonal) is built once and shared by all
	// of them — and a Plan.Refactor is picked up by every solver's next
	// dispatch. The engine references only the Values, never the Plan:
	// a path back to the Plan would reach the shared Solver through
	// p.shared and keep the AddCleanup below from ever firing.
	eng := solve.NewEngineVals(p.vals, p.lowerSolve(applyOptions(opts)))
	s := &Solver{plan: p, eng: eng}
	// Pool *[]float64, not []float64: boxing a slice header into the pool's
	// interface allocates, which would cost one allocation per ApplySGSInto.
	s.scratch.New = func() any { buf := make([]float64, p.N()); return &buf }
	// If the Solver is dropped without Close, release the parked workers
	// once the GC proves it unreachable (the engine never references the
	// Solver, so this fires).
	s.cleanup = runtime.AddCleanup(s, func(e *solve.Engine) { e.Close() }, s.eng)
	return s
}

// Workers returns the solver's fixed pool size.
func (s *Solver) Workers() int { return s.eng.Workers() }

// Plan returns the plan this solver is bound to.
func (s *Solver) Plan() *Plan { return s.plan }

// Close stops the worker pool and waits for the workers to exit. Solves
// already in flight complete, solves issued after Close fail with
// ErrClosed; Close is idempotent.
func (s *Solver) Close() {
	s.closeOnce.Do(func() {
		s.cleanup.Stop()
		s.eng.Close()
	})
}

// Solve solves L′x = b (both in plan order) pack-parallel on the pooled
// workers and returns x.
func (s *Solver) Solve(b []float64) ([]float64, error) {
	defer runtime.KeepAlive(s) // pin the GC cleanup for the call (see NewSolver)
	if err := s.plan.checkDim(b); err != nil {
		return nil, err
	}
	return s.eng.Solve(b)
}

// SolveCtx is Solve honoring a context: cancellation and deadline are
// checked before the sweep is dispatched (a sweep already running is
// never preempted), returning ctx.Err() without touching the pool.
func (s *Solver) SolveCtx(ctx context.Context, b []float64) ([]float64, error) {
	defer runtime.KeepAlive(s) // pin the GC cleanup for the call (see NewSolver)
	if err := s.plan.checkDim(b); err != nil {
		return nil, err
	}
	x := make([]float64, s.plan.N())
	if err := s.eng.SolveIntoCtx(ctx, x, b); err != nil {
		return nil, err
	}
	return x, nil
}

// SolveInto is Solve writing into a caller-provided vector.
func (s *Solver) SolveInto(x, b []float64) error {
	defer runtime.KeepAlive(s) // pin the GC cleanup for the call (see NewSolver)
	if err := s.checkDims(x, b); err != nil {
		return err
	}
	return s.eng.SolveInto(x, b)
}

// SolveIntoCtx is SolveInto honoring a context, with the same
// dispatch-boundary semantics as SolveCtx — the allocation-free form for
// context-aware solve loops over a reused solution buffer.
func (s *Solver) SolveIntoCtx(ctx context.Context, x, b []float64) error {
	defer runtime.KeepAlive(s) // pin the GC cleanup for the call (see NewSolver)
	if err := s.checkDims(x, b); err != nil {
		return err
	}
	return s.eng.SolveIntoCtx(ctx, x, b)
}

// SolveUpper solves the transposed system L′ᵀx = b pack-parallel, packs
// in reverse order — the second sweep of a symmetric Gauss–Seidel or
// incomplete-Cholesky preconditioner.
func (s *Solver) SolveUpper(b []float64) ([]float64, error) {
	defer runtime.KeepAlive(s) // pin the GC cleanup for the call (see NewSolver)
	if err := s.plan.checkDim(b); err != nil {
		return nil, err
	}
	return s.eng.SolveUpper(b)
}

// SolveUpperCtx is SolveUpper honoring a context, with the same
// dispatch-boundary semantics as SolveCtx.
func (s *Solver) SolveUpperCtx(ctx context.Context, b []float64) ([]float64, error) {
	defer runtime.KeepAlive(s) // pin the GC cleanup for the call (see NewSolver)
	if err := s.plan.checkDim(b); err != nil {
		return nil, err
	}
	x := make([]float64, s.plan.N())
	if err := s.eng.SolveUpperIntoCtx(ctx, x, b); err != nil {
		return nil, err
	}
	return x, nil
}

// SolveUpperInto is SolveUpper writing into a caller-provided vector.
func (s *Solver) SolveUpperInto(x, b []float64) error {
	defer runtime.KeepAlive(s) // pin the GC cleanup for the call (see NewSolver)
	if err := s.checkDims(x, b); err != nil {
		return err
	}
	return s.eng.SolveUpperInto(x, b)
}

// SolveUpperIntoCtx is SolveUpperInto honoring a context, with the same
// dispatch-boundary semantics as SolveCtx.
func (s *Solver) SolveUpperIntoCtx(ctx context.Context, x, b []float64) error {
	defer runtime.KeepAlive(s) // pin the GC cleanup for the call (see NewSolver)
	if err := s.checkDims(x, b); err != nil {
		return err
	}
	return s.eng.SolveUpperIntoCtx(ctx, x, b)
}

// SolveBatch solves L′xᵢ = bᵢ for every right-hand side of B and returns
// the solutions in order. Each vector is swept start-to-finish by one
// pooled worker with no inter-pack barriers, so up to Workers independent
// right-hand sides travel the pack levels concurrently — the highest-
// throughput path for iterative-solver and multi-scenario traffic.
//
//stsk:allow-background (non-context convenience wrapper; SolveBatchCtx threads a caller ctx)
func (s *Solver) SolveBatch(B [][]float64) ([][]float64, error) {
	return s.SolveBatchCtx(context.Background(), B)
}

// SolveBatchCtx is SolveBatch honoring a context: a cancelled or expired
// context stops the dispatch loop — no further right-hand sides are
// handed to the pool — and the call returns ctx.Err() once the solves
// already in flight drain. The Solver stays fully usable afterwards.
// Every right-hand side is validated up front, so a single short vector
// fails the whole batch with ErrDimension before any work is dispatched.
func (s *Solver) SolveBatchCtx(ctx context.Context, B [][]float64) ([][]float64, error) {
	defer runtime.KeepAlive(s) // pin the GC cleanup for the call (see NewSolver)
	if err := s.checkBatchDims(B); err != nil {
		return nil, err
	}
	X := make([][]float64, len(B))
	for i := range X {
		X[i] = make([]float64, s.plan.N())
	}
	if err := s.eng.SolveBatchIntoCtx(ctx, X, B); err != nil {
		return nil, err
	}
	return X, nil
}

// SolveBatchInto is SolveBatch writing into caller-provided solution
// vectors; X[i] may alias B[i] for in-place solves. Like SolveBatchCtx,
// the whole batch is validated before any work is dispatched.
func (s *Solver) SolveBatchInto(X, B [][]float64) error {
	defer runtime.KeepAlive(s) // pin the GC cleanup for the call (see NewSolver)
	if err := s.checkBatchPairs(X, B); err != nil {
		return err
	}
	return s.eng.SolveBatchInto(X, B)
}

// SolveUpperBatchInto solves L′ᵀxᵢ = bᵢ for every right-hand side,
// pipelined like SolveBatch.
func (s *Solver) SolveUpperBatchInto(X, B [][]float64) error {
	defer runtime.KeepAlive(s) // pin the GC cleanup for the call (see NewSolver)
	if err := s.checkBatchPairs(X, B); err != nil {
		return err
	}
	return s.eng.SolveUpperBatchInto(X, B)
}

// SolveBlock solves L′xᵢ = bᵢ for every right-hand side of xs with the
// blocked multi-vector (panel) kernels and returns the solutions in
// order. Where SolveBatch walks the full matrix once per right-hand side,
// SolveBlock groups the vectors into row-major panels of up to
// WithBlockWidth columns (default 8) and sweeps each panel in a single
// matrix traversal under the solver's schedule — barrier packs or the
// graph scheduler's task chunks — loading each (col, val) pair once and
// applying it across all panel columns. Index and value traffic per
// right-hand side drops by the panel width, which is what bounds a
// cache-resident solve.
//
// Every panel column is bitwise identical to Solve on that right-hand
// side (and so to Plan.SolveSequential). Cancellation is honored between
// panels: a dead context returns ctx.Err() with the remaining panels
// unsolved and the Solver fully usable. Ragged or wrong-length
// right-hand sides fail the whole call with ErrDimension before any work
// is dispatched; after Close the call fails with ErrClosed.
func (s *Solver) SolveBlock(ctx context.Context, xs [][]float64) ([][]float64, error) {
	defer runtime.KeepAlive(s) // pin the GC cleanup for the call (see NewSolver)
	if err := s.checkBatchDims(xs); err != nil {
		return nil, err
	}
	X := make([][]float64, len(xs))
	for i := range X {
		X[i] = make([]float64, s.plan.N())
	}
	if err := s.eng.SolveBlockIntoCtx(ctx, X, xs, 0); err != nil {
		return nil, err
	}
	return X, nil
}

// SolveBlockInto is SolveBlock writing into caller-provided solution
// vectors — the allocation-free form once the solver is warm. X[i] may
// alias B[i] for an in-place solve.
func (s *Solver) SolveBlockInto(ctx context.Context, X, B [][]float64) error {
	defer runtime.KeepAlive(s) // pin the GC cleanup for the call (see NewSolver)
	if err := s.checkBatchPairs(X, B); err != nil {
		return err
	}
	return s.eng.SolveBlockIntoCtx(ctx, X, B, 0)
}

// SolveUpperBlock solves the transposed system L′ᵀxᵢ = bᵢ for every
// right-hand side with the blocked backward-substitution kernels, panels
// swept in reverse pack order — the multi-vector form of SolveUpper.
func (s *Solver) SolveUpperBlock(ctx context.Context, xs [][]float64) ([][]float64, error) {
	defer runtime.KeepAlive(s) // pin the GC cleanup for the call (see NewSolver)
	if err := s.checkBatchDims(xs); err != nil {
		return nil, err
	}
	X := make([][]float64, len(xs))
	for i := range X {
		X[i] = make([]float64, s.plan.N())
	}
	if err := s.eng.SolveUpperBlockIntoCtx(ctx, X, xs, 0); err != nil {
		return nil, err
	}
	return X, nil
}

// SolveUpperBlockInto is SolveUpperBlock writing into caller-provided
// solution vectors.
func (s *Solver) SolveUpperBlockInto(ctx context.Context, X, B [][]float64) error {
	defer runtime.KeepAlive(s) // pin the GC cleanup for the call (see NewSolver)
	if err := s.checkBatchPairs(X, B); err != nil {
		return err
	}
	return s.eng.SolveUpperBlockIntoCtx(ctx, X, B, 0)
}

// checkDims validates a solution/right-hand-side pair at the facade.
func (s *Solver) checkDims(x, b []float64) error {
	n := s.plan.N()
	if len(x) != n || len(b) != n {
		return dimErr(len(x), len(b), n)
	}
	return nil
}

// checkBatchDims validates a whole batch at the facade, reporting the
// first offending vector.
func (s *Solver) checkBatchDims(B [][]float64) error {
	n := s.plan.N()
	for i, b := range B {
		if len(b) != n {
			return fmt.Errorf("%w: rhs %d has length %d, want %d", ErrDimension, i, len(b), n)
		}
	}
	return nil
}

// checkBatchPairs validates caller-provided solution and right-hand-side
// batches together before anything is dispatched.
func (s *Solver) checkBatchPairs(X, B [][]float64) error {
	if len(X) != len(B) {
		return fmt.Errorf("%w: batch lengths %d/%d differ", ErrDimension, len(X), len(B))
	}
	if err := s.checkBatchDims(B); err != nil {
		return err
	}
	return s.checkBatchDims(X)
}

// SolveResult is one solved right-hand side from SolveMany and SolveSeq.
type SolveResult struct {
	X   []float64
	Err error
}

// SolveMany streams right-hand sides through the pool: vectors read from
// bs are solved concurrently (one worker per vector) and delivered on the
// returned channel in input order. At most 2×Workers solves are in flight
// at once, so unbounded streams run in bounded memory. The output channel
// closes once bs is closed and drained.
//
// The caller owns the stream's lifecycle: close bs when done producing
// and receive until the output channel closes. The output buffer lets a
// short tail (up to 2×Workers results) flush without a consumer — enough
// for the stop-on-first-error pattern — but a stream abandoned with more
// work outstanding blocks the internal goroutines, and the producer,
// until the output is drained. SolveManyCtx and SolveSeq tie the stream
// to a context instead, which is the easier lifecycle to get right.
//
//stsk:allow-background (non-context convenience wrapper; SolveManyCtx threads a caller ctx)
func (s *Solver) SolveMany(bs <-chan []float64) <-chan SolveResult {
	return s.SolveManyCtx(context.Background(), bs)
}

// SolveManyCtx is SolveMany honoring a context: when ctx is cancelled the
// stream stops reading bs and dispatching solves, the in-flight tail
// drains in order, a final SolveResult carrying ctx.Err() is delivered,
// and the channel closes — even if bs is never closed. The Solver stays
// fully usable afterwards.
func (s *Solver) SolveManyCtx(ctx context.Context, bs <-chan []float64) <-chan SolveResult {
	out := make(chan SolveResult, 2*s.eng.Workers())
	panicsafe.Go("stsk.SolveManyCtx", func() {
		defer close(out)
		for r := range s.eng.SolveManyCtx(ctx, bs) {
			out <- SolveResult{X: r.X, Err: r.Err}
		}
	})
	return out
}

// SolveSeq streams right-hand sides through the pool and returns the
// results as an iterator over (index, result) pairs, in input order —
// SolveMany without the channel boilerplate:
//
//	for i, res := range solver.SolveSeq(ctx, slices.Values(B)) {
//	    if res.Err != nil { ... }
//	    use(i, res.X)
//	}
//
// Up to 2×Workers solves are pipelined ahead of the consumer, so ranging
// over an unbounded sequence runs in bounded memory. Breaking out of the
// range loop cancels the stream's internal context, stops the producer,
// and releases every in-flight solve; cancelling ctx does the same and
// additionally yields a final result carrying ctx.Err().
func (s *Solver) SolveSeq(ctx context.Context, bs iter.Seq[[]float64]) iter.Seq2[int, SolveResult] {
	return func(yield func(int, SolveResult) bool) {
		ctx, cancel := context.WithCancel(ctx)
		defer cancel()
		in := make(chan []float64)
		panicsafe.Go("stsk.SolveSeq", func() {
			defer close(in)
			for b := range bs {
				select {
				case in <- b:
				case <-ctx.Done():
					return
				}
			}
		})
		out := s.eng.SolveManyCtx(ctx, in)
		// Any exit — early break, panic, or Goexit in the caller's loop
		// body — must first cancel (so the producer stops and out closes)
		// and then drain the bounded in-flight tail, or the pool would be
		// left feeding an abandoned stream.
		defer func() {
			cancel()
			for range out {
			}
		}()
		i := 0
		for r := range out {
			if !yield(i, SolveResult{X: r.X, Err: r.Err}) {
				return
			}
			i++
		}
	}
}

// ApplySGS applies the symmetric Gauss–Seidel preconditioner
// M⁻¹ = (L′ D⁻¹ L′ᵀ)⁻¹ to r and returns z = M⁻¹r: a pack-parallel forward
// sweep, a diagonal scale, and a pack-parallel backward sweep, all on the
// pooled workers — one PCG preconditioner application with no goroutine
// spawns and no allocations beyond the result.
func (s *Solver) ApplySGS(r []float64) ([]float64, error) {
	if err := s.plan.checkDim(r); err != nil {
		return nil, err
	}
	z := make([]float64, s.plan.N())
	if err := s.ApplySGSInto(z, r); err != nil {
		return nil, err
	}
	return z, nil
}

// ApplySGSInto is ApplySGS writing into a caller-provided vector.
//
// The three stages are separate dispatches, so a Plan.Refactor landing
// mid-call can split them across value epochs; ApplySGSBatch fuses both
// sweeps into one dispatch and is always epoch-consistent.
func (s *Solver) ApplySGSInto(z, r []float64) error {
	defer runtime.KeepAlive(s) // pin the GC cleanup for the call (see NewSolver)
	if err := s.checkDims(z, r); err != nil {
		return err
	}
	yp := s.scratch.Get().(*[]float64)
	y := *yp
	defer s.scratch.Put(yp)
	if err := s.eng.SolveInto(y, r); err != nil {
		return err
	}
	d := s.eng.Diagonal() // engine-owned, read-only
	for i := range y {
		y[i] *= d[i]
	}
	return s.eng.SolveUpperInto(z, y)
}

// ApplySGSBatch applies the symmetric Gauss–Seidel preconditioner to every
// vector of R, pipelined: one worker performs both sweeps of a vector back
// to back, keeping the intermediate in its own preallocated scratch.
func (s *Solver) ApplySGSBatch(R [][]float64) ([][]float64, error) {
	defer runtime.KeepAlive(s) // pin the GC cleanup for the call (see NewSolver)
	if err := s.checkBatchDims(R); err != nil {
		return nil, err
	}
	Z := make([][]float64, len(R))
	for i := range Z {
		Z[i] = make([]float64, s.plan.N())
	}
	if err := s.eng.ApplySGSBatch(Z, R); err != nil {
		return nil, err
	}
	return Z, nil
}
