//go:build !race

package stsk

const raceEnabled = false
