package serve

import (
	"errors"
	"net/http"
	"strconv"
	"time"
)

// traceDoc is the GET /debug/traces response: ring bookkeeping plus the
// retained slow traces, newest first.
type traceDoc struct {
	Enabled     bool       `json:"enabled"`
	Capacity    int        `json:"capacity"`
	Retained    int        `json:"retained"`
	Admitted    uint64     `json:"admitted"`
	ThresholdMs float64    `json:"thresholdMs"`
	Traces      []traceRec `json:"traces"`
}

// traceRec is one retained trace: identity, outcome, and the per-stage
// breakdown with offsets from request admission.
type traceRec struct {
	ID      string      `json:"id"`
	Plan    string      `json:"plan,omitempty"`
	Outcome string      `json:"outcome"`
	Start   time.Time   `json:"start"`
	TotalMs float64     `json:"totalMs"`
	Dropped int         `json:"droppedSpans,omitempty"`
	Spans   []traceSpan `json:"spans"`
}

// traceSpan is one stage interval, microsecond-resolution offsets from
// the trace's admission stamp.
type traceSpan struct {
	Stage      string  `json:"stage"`
	OffsetUs   float64 `json:"offsetUs"`
	DurationUs float64 `json:"durationUs"`
}

// handleTraces serves the slow-trace ring: every retained trace whose
// end-to-end latency is at least ?thresholdMs= (default 0, i.e. all
// retained traces), newest first, with its span breakdown. The ring only
// admits traces at least Config.TraceSlow long in the first place;
// thresholdMs filters further at read time.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	ring := s.reg.TraceRing()
	if ring == nil {
		writeError(w, http.StatusNotFound, errors.New("tracing disabled (Config.DisableTracing)"), 0)
		return
	}
	thresholdMs := 0.0
	if q := r.URL.Query().Get("thresholdMs"); q != "" {
		v, err := strconv.ParseFloat(q, 64)
		if err != nil || v < 0 {
			writeError(w, http.StatusBadRequest, errors.New("thresholdMs must be a non-negative number"), 0)
			return
		}
		thresholdMs = v
	}
	recs := ring.Snapshot(time.Duration(thresholdMs * float64(time.Millisecond)))
	doc := traceDoc{
		Enabled:     true,
		Capacity:    ring.Cap(),
		Retained:    ring.Len(),
		Admitted:    ring.Admitted(),
		ThresholdMs: thresholdMs,
		Traces:      make([]traceRec, 0, len(recs)),
	}
	for _, rec := range recs {
		tr := traceRec{
			ID:      rec.ID,
			Plan:    rec.Plan,
			Outcome: rec.Outcome,
			Start:   rec.Start,
			TotalMs: float64(rec.Total.Microseconds()) / 1000,
			Dropped: rec.Dropped,
			Spans:   make([]traceSpan, 0, len(rec.Spans)),
		}
		for _, sp := range rec.Spans {
			tr.Spans = append(tr.Spans, traceSpan{
				Stage:      sp.Stage.String(),
				OffsetUs:   float64(sp.Start) / 1e3,
				DurationUs: float64(sp.End-sp.Start) / 1e3,
			})
		}
		doc.Traces = append(doc.Traces, tr)
	}
	writeJSON(w, http.StatusOK, doc)
}
