package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"stsk"
	"stsk/internal/faultinject"
	"stsk/internal/panicsafe"
	"stsk/internal/trace"
)

// Package sentinels surfaced by the serving layer; the HTTP transport
// maps them onto status codes. ErrQueueFull is admission control — the
// bounded coalescer queue bounced the request (HTTP 429) — and
// ErrDraining reports a registry shutting down (HTTP 503). ErrDegraded
// and ErrShed are the brownout controller's refusals: cold plan builds
// deferred while overloaded (503) and low-priority requests shed below
// the degraded-mode threshold (429).
var (
	ErrUnknownPlan = errors.New("serve: unknown plan")
	ErrQueueFull   = errors.New("serve: solve queue full")
	ErrDraining    = errors.New("serve: registry draining")
	ErrDegraded    = errors.New("serve: degraded, cold plan builds refused")
	ErrShed        = errors.New("serve: request shed under brownout")
)

// errCoalescerClosed reports an enqueue that raced an eviction: the plan's
// solver is shutting down. It never escapes the registry — Registry.Solve
// retries against a freshly built plan, and translates the sentinel to a
// retriable ErrDraining if it loses the race on every attempt.
var errCoalescerClosed = errors.New("serve: coalescer closed")

// solveReq is one queued single-RHS solve. done is buffered (capacity 1)
// so a dispatcher can always complete a request whose caller has already
// given up on its context and gone away. tr is the request's lifecycle
// trace (nil when untraced); the coalescer holds its own reference from
// enqueue until completion, so recording queue/kernel spans for an
// abandoned caller can never touch a recycled trace. enqNs and popNs
// stamp the queue interval for the queue_wait/coalesce_wait spans.
type solveReq struct {
	//stsk:allow-ctx-field (request-scoped: carried only from enqueue to dispatch, never stored past completion)
	ctx   context.Context
	b     []float64
	x     []float64
	done  chan error
	tr    *trace.Trace
	enqNs int64
	popNs int64
}

// complete records nothing, releases the coalescer's trace reference,
// and answers the waiting caller — the single completion path every
// dispatcher-side branch funnels through so no reference ever leaks.
func (r *solveReq) complete(err error) {
	r.tr.Release()
	r.tr = nil
	r.done <- err
}

// coalescer converts request concurrency into panel-kernel throughput for
// one (solver, sweep-direction) key: concurrent single-RHS solve requests
// queue into a bounded channel, and a dispatcher goroutine packs up to
// width pending right-hand sides into one blocked panel solve
// (Solver.SolveBlockInto), flushing early when a small deadline expires —
// so a lone request still ships promptly, while a burst of 32 requests
// rides the matrix traversal eight at a time.
//
// The adaptive part is free: under light load the flush timer fires with
// a partial panel (width 1–2, latency-bound); under heavy load the queue
// always holds a full panel's worth and the timer never fires
// (throughput-bound). The achieved mean width is exported via Metrics.
type coalescer struct {
	solver *stsk.Solver
	upper  bool // backward sweeps (L′ᵀx = b) instead of forward
	width  int  // max requests per panel
	// flush is the partial-panel hold deadline in nanoseconds, shared by
	// every coalescer of a registry so the brownout controller can shrink
	// it under load without touching each coalescer.
	flush *atomic.Int64
	met   *Metrics

	mu     sync.Mutex // guards closed vs enqueue
	closed bool

	queue chan *solveReq
	stop  chan struct{}
	wg    sync.WaitGroup

	// Dispatcher-owned scratch, reused across batches.
	batch  []*solveReq
	xs, bs [][]float64
}

// newCoalescer builds an unstarted coalescer; call start to launch the
// dispatcher (tests enqueue against an unstarted one for determinism).
func newCoalescer(solver *stsk.Solver, upper bool, width, queueCap int, flush *atomic.Int64, met *Metrics) *coalescer {
	return &coalescer{
		solver: solver,
		upper:  upper,
		width:  width,
		flush:  flush,
		met:    met,
		queue:  make(chan *solveReq, queueCap),
		stop:   make(chan struct{}),
		batch:  make([]*solveReq, 0, width),
		xs:     make([][]float64, 0, width),
		bs:     make([][]float64, 0, width),
	}
}

func (c *coalescer) start() {
	c.wg.Add(1)
	panicsafe.Go("serve.coalescer", func() {
		defer c.wg.Done()
		c.run()
	})
}

// depth reports the requests currently queued (a point-in-time gauge).
func (c *coalescer) depth() int { return len(c.queue) }

// enqueue admits a request or bounces it: a full queue returns
// ErrQueueFull immediately (admission control — the transport answers
// 429 rather than building unbounded backlog), and a closed coalescer
// returns errCoalescerClosed so the registry retries against a rebuilt
// plan. The closed check and the send share c.mu, so no request can slip
// into the queue after the dispatcher's final drain.
func (c *coalescer) enqueue(r *solveReq) error {
	if err := faultinject.Fire(faultinject.CoalescerEnqueue); err != nil {
		if errors.Is(err, faultinject.ErrSaturated) {
			// An injected saturation models a full queue; translate to the
			// domain sentinel so retry policy and HTTP mapping are exercised
			// exactly as for real backpressure.
			return ErrQueueFull
		}
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return errCoalescerClosed
	}
	select {
	case c.queue <- r:
		return nil
	default:
		return ErrQueueFull
	}
}

// solve queues one right-hand side and waits for its panel to complete.
// The caller's context is honored at every stage: a dead context is
// dropped at collection time without touching a kernel, and a caller
// whose context dies while waiting returns promptly — the dispatcher
// completes the buffered response into the void.
func (c *coalescer) solve(ctx context.Context, b []float64) ([]float64, error) {
	// A dead request is never queued: it would only occupy a bounded
	// admission slot until the dispatcher discards it, starving live
	// requests into 429s.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	e0 := trace.Now()
	tr := trace.FromContext(ctx)
	r := &solveReq{ctx: ctx, b: b, x: make([]float64, len(b)), done: make(chan error, 1), tr: tr}
	// The enqueue stamp and the reference must both be in place before the
	// request is visible to the dispatcher, which may pop (and complete) it
	// immediately; past the enqueue only the local tr is safe to touch.
	r.enqNs = trace.Now()
	tr.Retain()
	if err := c.enqueue(r); err != nil {
		tr.Release()
		return nil, err
	}
	tr.Observe(trace.StageEnqueue, e0, r.enqNs)
	select {
	case err := <-r.done:
		if err != nil {
			return nil, err
		}
		return r.x, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// close stops the dispatcher after a graceful drain: requests already
// queued are still solved (their callers are waiting), new enqueues fail,
// and close returns once the dispatcher has exited. The solver itself is
// closed by the owner afterwards, so every drained panel runs on a live
// pool.
func (c *coalescer) close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		c.wg.Wait()
		return
	}
	c.closed = true
	c.mu.Unlock()
	close(c.stop)
	c.wg.Wait()
}

// run is the dispatcher loop: park until a request arrives, collect a
// panel around it, dispatch, repeat. On stop it drains the queue — no
// request admitted by enqueue is ever stranded.
func (c *coalescer) run() {
	for {
		select {
		case r := <-c.queue:
			r.popNs = trace.Now()
			c.dispatchSafe(c.collect(r))
		case <-c.stop:
			c.drain()
			return
		}
	}
}

// collect gathers a panel around the first request: up to width requests,
// flushed early when the deadline expires (partial panels ship — the
// latency bound) or the coalescer stops. Requests whose context is
// already dead are answered immediately and excluded, so one cancelled
// client never occupies a panel slot.
func (c *coalescer) collect(first *solveReq) []*solveReq {
	batch := c.batch[:0]
	if err := first.ctx.Err(); err != nil {
		first.complete(err)
		return batch
	}
	batch = append(batch, first)
	timer := time.NewTimer(time.Duration(c.flush.Load()))
	defer timer.Stop()
	for len(batch) < c.width {
		select {
		case r := <-c.queue:
			r.popNs = trace.Now()
			if err := r.ctx.Err(); err != nil {
				r.complete(err)
				continue
			}
			batch = append(batch, r)
		case <-timer.C:
			return batch
		case <-c.stop:
			return batch
		}
	}
	return batch
}

// drain empties the queue after stop: panels are still coalesced (the
// queue is a snapshot of waiting callers), but nothing waits on the flush
// timer — ship what is there and exit.
func (c *coalescer) drain() {
	for {
		batch := c.batch[:0]
		for len(batch) < c.width {
			select {
			case r := <-c.queue:
				r.popNs = trace.Now()
				if err := r.ctx.Err(); err != nil {
					r.complete(err)
					continue
				}
				batch = append(batch, r)
			default:
				goto ship
			}
		}
	ship:
		if len(batch) == 0 {
			return
		}
		c.dispatchSafe(batch)
	}
}

// dispatchSafe is the dispatcher's panic-containment and fault-injection
// boundary around dispatch. The engine already converts kernel panics
// into errors at its own job boundaries, so the recover here is the
// second line of defence — whatever escapes, every member of the batch
// is completed (its caller is waiting on done) and the dispatcher
// goroutine survives to serve the next panel.
func (c *coalescer) dispatchSafe(batch []*solveReq) {
	if len(batch) == 0 {
		return
	}
	defer func() {
		if p := recover(); p != nil {
			err := panicsafe.AsError(p)
			for i, r := range batch {
				if r != nil {
					r.complete(err)
					batch[i] = nil
				}
			}
		}
	}()
	// Close out each member's queue interval: parked in the bounded queue
	// (queue_wait), then held in the flush window while the panel filled
	// (coalesce_wait).
	d0 := trace.Now()
	for _, r := range batch {
		r.tr.Observe(trace.StageQueueWait, r.enqNs, r.popNs)
		r.tr.Observe(trace.StageCoalesceWait, r.popNs, d0)
	}
	if err := faultinject.Fire(faultinject.CoalescerDispatch); err != nil {
		for i, r := range batch {
			r.complete(err)
			batch[i] = nil
		}
		return
	}
	// A multi-member panel runs under the background context (panel
	// isolation — see dispatch), which would sever the engine's span hooks
	// from every trace; thread the panel leader's trace through so pin/
	// dispatch/sweep attribution survives, attributed to the member that
	// opened the panel.
	//stsk:allow-background (panel isolation: one member's cancellation must not void its neighbours' work)
	ctx := trace.NewContext(context.Background(), batch[0].tr)
	c.dispatch(ctx, batch)
}

// dispatch solves one collected panel. A singleton rides the cooperative
// context-aware path (SolveIntoCtx) so its own deadline gates dispatch; a
// multi-request panel rides the blocked kernels (SolveBlockInto), one
// matrix traversal amortised over every member. Either way each member's
// solution is bitwise identical to Plan.Solve — the panel kernels
// evaluate every row dot product in the same order as the scalar path.
//
//stsk:noalloc
func (c *coalescer) dispatch(ctx context.Context, batch []*solveReq) {
	if len(batch) == 0 {
		return
	}
	c.met.Batches.Add(1)
	c.met.WidthSum.Add(int64(len(batch)))
	if len(batch) == 1 {
		r := batch[0]
		k0 := trace.Now()
		var err error
		if c.upper {
			err = c.solver.SolveUpperIntoCtx(r.ctx, r.x, r.b)
		} else {
			err = c.solver.SolveIntoCtx(r.ctx, r.x, r.b)
		}
		r.tr.Observe(trace.StageKernel, k0, trace.Now())
		r.complete(err)
		batch[0] = nil
		return
	}
	xs, bs := c.xs[:0], c.bs[:0]
	for _, r := range batch {
		xs = append(xs, r.x)
		bs = append(bs, r.b)
	}
	// The panel runs under the panel-isolation context built by
	// dispatchSafe: never cancelled — one member's death must not void its
	// neighbours' work, and a panel is at most width solves deep so it
	// completes promptly regardless — but carrying the leader's trace for
	// engine-stage attribution. Members whose context died mid-panel
	// simply find no reader on their buffered done channel.
	k0 := trace.Now()
	var err error
	if c.upper {
		err = c.solver.SolveUpperBlockInto(ctx, xs, bs)
	} else {
		err = c.solver.SolveBlockInto(ctx, xs, bs)
	}
	k1 := trace.Now()
	for i := range xs {
		xs[i], bs[i] = nil, nil
	}
	for i, r := range batch {
		// Every member rode the same panel: each gets the kernel span, so
		// any member's trace explains where its wall time went.
		r.tr.Observe(trace.StageKernel, k0, k1)
		r.complete(err)
		batch[i] = nil // drop the reference so the scratch array pins nothing
	}
}
