package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"stsk/internal/faultinject"
)

// TestChaosServing is the fault-tolerance acceptance harness: 32
// concurrent HTTP clients hammer a live server while deterministic
// faults fire inside it — kernel panics at engine job boundaries, queue
// saturation at the coalescer, transport-level injections, and epoch-
// swap failures under concurrent value updates. The daemon must never
// crash or deadlock, every 200 must be bitwise identical to Plan.Solve,
// every non-200 must come from the known refusal set, and the metrics
// must show panics actually recovered, requests actually solved, and
// saturation actually surfaced (not silently swallowed).
func TestChaosServing(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos harness is a load test")
	}
	reg := NewRegistry(Config{
		FlushDelay: 200 * time.Microsecond,
		QueueCap:   64,
		Retry:      RetryPolicy{MaxAttempts: 2, BaseBackoff: 100 * time.Microsecond},
		// Undersized on purpose: the storm must wrap the slow-trace ring
		// many times over, exercising eviction under concurrent admission.
		TraceRing: 32,
	})
	srv := NewServer(reg)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Close()
	hp := buildHammerPlan(t, reg, "g3", "grid3d", 1200, 6)

	// Identical-value refactorizations: every epoch swap that lands keeps
	// the solutions bitwise unchanged, so a torn epoch — a solve reading
	// half-updated values — would show up as a bitwise mismatch below.
	vals := scaledValues(t, "grid3d", 1200, 1.0)

	spec := "engine.job:panic:p=0.02" +
		";coalescer.enqueue:saturate:p=0.1" +
		";http.solve:error:p=0.01" +
		";epoch.swap:error:p=0.2"
	if err := faultinject.Enable(spec, 7); err != nil {
		t.Fatal(err)
	}
	defer faultinject.Disable()

	allowed := map[int]bool{
		http.StatusTooManyRequests:     true, // saturation / shed
		http.StatusInternalServerError: true, // contained panic, injected transport error
		http.StatusServiceUnavailable:  true, // draining / degraded
		http.StatusRequestTimeout:      true, // per-request deadline
	}

	const clients = 32
	const perRound = 20
	const maxRounds = 25
	var mismatches atomic.Int64
	client := ts.Client()

	oneRound := func(round int) {
		var wg sync.WaitGroup
		for cidx := 0; cidx < clients; cidx++ {
			wg.Add(1)
			go func(cidx int) {
				defer wg.Done()
				for it := 0; it < perRound; it++ {
					ri := (cidx + it + round) % len(hp.bs)
					upper := (cidx+it)%2 == 1
					raw, _ := json.Marshal(SolveRequest{Plan: "g3", B: hp.bs[ri], Upper: upper, TimeoutMs: 5000})
					req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/solve", bytes.NewReader(raw))
					if err != nil {
						t.Error(err)
						return
					}
					req.Header.Set("Content-Type", "application/json")
					// Half the clients claim a priority, so brownout shedding
					// (if queue pressure trips it) never starves the round.
					if cidx%2 == 0 {
						req.Header.Set("X-STS-Priority", "1")
					}
					resp, err := client.Do(req)
					if err != nil {
						t.Errorf("client %d: transport error: %v", cidx, err)
						return
					}
					body, err := io.ReadAll(resp.Body)
					resp.Body.Close()
					if err != nil {
						t.Errorf("client %d: read: %v", cidx, err)
						return
					}
					if resp.StatusCode != http.StatusOK {
						if !allowed[resp.StatusCode] {
							t.Errorf("client %d: status %d outside the refusal set: %s", cidx, resp.StatusCode, body)
							return
						}
						continue
					}
					var sr SolveResponse
					if err := json.Unmarshal(body, &sr); err != nil {
						t.Errorf("client %d: bad 200 body: %v", cidx, err)
						return
					}
					want := hp.fwd[ri]
					if upper {
						want = hp.bwd[ri]
					}
					for i := range sr.X {
						if sr.X[i] != want[i] {
							mismatches.Add(1)
							t.Errorf("client %d rhs %d upper=%v: bit difference at %d under chaos", cidx, ri, upper, i)
							return
						}
					}
				}
			}(cidx)
		}
		// A concurrent updater exercises epoch.swap under fire. Identical
		// values: a failed swap and a landed swap are both bitwise no-ops.
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				raw, _ := json.Marshal(UpdateValuesRequest{Values: vals})
				req, _ := http.NewRequest(http.MethodPut, ts.URL+"/v1/plans/g3/values", bytes.NewReader(raw))
				resp, err := client.Do(req)
				if err != nil {
					t.Errorf("updater: %v", err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK && !allowed[resp.StatusCode] {
					t.Errorf("updater: status %d outside the refusal set", resp.StatusCode)
					return
				}
				time.Sleep(time.Millisecond)
			}
		}()
		wg.Wait()
	}

	var snap Snapshot
	for round := 0; round < maxRounds; round++ {
		oneRound(round)
		if t.Failed() {
			t.FailNow()
		}
		snap = reg.Metrics().Snapshot()
		if snap.PanicsRecovered > 0 && snap.Solved > 0 && snap.Rejected > 0 {
			break
		}
	}
	if snap.PanicsRecovered == 0 {
		t.Error("chaos never recovered a panic — the injection (or the containment) is dead")
	}
	if snap.Solved == 0 {
		t.Error("chaos never solved a request")
	}
	if snap.Rejected == 0 {
		t.Error("chaos never surfaced queue saturation as a rejection")
	}
	if mismatches.Load() > 0 {
		t.Fatalf("%d bitwise mismatches under chaos", mismatches.Load())
	}

	// After the storm: faults off, the same daemon serves a clean,
	// bitwise-correct solve — nothing was torn or poisoned.
	faultinject.Disable()
	if reg.brown != nil {
		reg.brown.heal()
	}
	raw, _ := json.Marshal(SolveRequest{Plan: "g3", B: hp.bs[0]})
	resp, err := client.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr SolveResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("post-chaos solve: %d (%v)", resp.StatusCode, err)
	}
	assertBitwise(t, sr.X, hp.fwd[0], "post-chaos solve")

	// The metrics exposition still renders and carries the fault counters.
	mresp, err := client.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	mbody, _ := io.ReadAll(mresp.Body)
	wantLine := fmt.Sprintf("stsserve_panics_recovered_total %s", strconv.FormatInt(snap.PanicsRecovered, 10))
	if !bytes.Contains(mbody, []byte(wantLine)) {
		t.Errorf("metrics exposition missing %q", wantLine)
	}
	t.Logf("chaos: solved=%d rejected=%d failed=%d panics=%d retries=%d shed=%d cancelled=%d",
		snap.Solved, snap.Rejected, snap.Failed, snap.PanicsRecovered, snap.Retries, snap.Shed, snap.Cancelled)

	// The slow-trace ring survived the storm intact: bounded at its
	// capacity, evicting (admissions far beyond capacity), every retained
	// record internally consistent, and read-time threshold filtering
	// monotone. Storm outcomes — including the refusals — are all from the
	// trace outcome vocabulary.
	ring := reg.TraceRing()
	if ring == nil {
		t.Fatal("chaos registry has no trace ring")
	}
	if ring.Len() > ring.Cap() {
		t.Errorf("ring len %d exceeds capacity %d", ring.Len(), ring.Cap())
	}
	if ring.Admitted() <= uint64(ring.Cap()) {
		t.Errorf("ring admitted %d traces, want far more than capacity %d under load", ring.Admitted(), ring.Cap())
	}
	outcomes := map[string]bool{"ok": true, "cancelled": true, "rejected": true,
		"shed": true, "degraded": true, "panic": true, "error": true}
	all := ring.Snapshot(0)
	if len(all) != ring.Len() {
		t.Errorf("snapshot returned %d records, ring holds %d", len(all), ring.Len())
	}
	for _, rec := range all {
		if rec.ID == "" || rec.Total < 0 || !outcomes[rec.Outcome] {
			t.Errorf("inconsistent chaos trace: id=%q total=%v outcome=%q", rec.ID, rec.Total, rec.Outcome)
		}
		for _, sp := range rec.Spans {
			if sp.Start < 0 || sp.End < sp.Start || sp.End > int64(rec.Total) {
				t.Errorf("trace %s: span %s [%d,%d) outside [0,%d)", rec.ID, sp.Stage, sp.Start, sp.End, int64(rec.Total))
			}
		}
	}
	if len(all) > 1 {
		cut := all[len(all)/2].Total
		for _, rec := range ring.Snapshot(cut) {
			if rec.Total < cut {
				t.Errorf("threshold %v leaked a %v trace", cut, rec.Total)
			}
		}
	}
}
