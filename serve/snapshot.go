package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"strings"

	"stsk"
	"stsk/internal/panicsafe"
)

// Plan snapshot persistence (Config.SnapshotDir): every built plan is
// serialized write-behind through stsk.WriteSnapshotFile, and an acquire
// miss warm-loads the file instead of re-running the seconds-scale
// ordering pipeline. The registry rides on the core snapshot format and
// stores its own state in the opaque extra sections:
//
//	Meta    JSON snapMeta — the registered PlanSpec (a reload refuses a
//	        snapshot written for a different spec) and the registry-level
//	        value version the snapshot corresponds to
//	AuxVals the latest UpdateValues array (input order), nil when the
//	        plan still carries the spec's own values
//
// Consistency contract: the (version, AuxVals) pair is read under the
// registry mutex, so it is always coherent; when AuxVals is present the
// loader re-applies it via Plan.Refactor, making the live values exactly
// the pair's values regardless of which epoch happened to be serialized.
// A writer re-checks (state, version) stability after the atomic rename
// and rewrites until the file matches the live entry, with snapMu
// serialising writers per entry so the file converges to the latest
// state. Corrupted, truncated, version-skewed, or mismatched snapshots
// are counted, removed, and fall back to a cold build — a bad snapshot
// is never worse than no snapshot.

// snapMeta is the registry's embedder metadata inside a plan snapshot.
type snapMeta struct {
	Spec    PlanSpec `json:"spec"`
	Version uint64   `json:"version"`
}

// snapshotPath is the on-disk location of one plan's snapshot; the name
// is path-escaped so arbitrary plan names cannot traverse out of the
// snapshot directory.
func (r *Registry) snapshotPath(name string) string {
	return filepath.Join(r.cfg.SnapshotDir, url.PathEscape(name)+".snap")
}

// snapshotAsync schedules a write-behind snapshot of the entry. The
// caller passes the state whose plan should be serialized, captured
// while it is (or just was) the entry's resident state — an eviction or
// registry Close landing before the goroutine runs must not lose the
// write, so the writer does not depend on e.st staying populated.
// Callers invoke this under r.mu after proving !r.closed, which orders
// the WaitGroup Add before Close's Wait — Close therefore drains every
// scheduled write before returning, making shutdown durable.
func (r *Registry) snapshotAsync(e *entry, st *planState) {
	if r.cfg.SnapshotDir == "" || st == nil {
		return
	}
	r.shutdowns.Add(1)
	panicsafe.Go("serve.snapshot-write", func() {
		defer r.shutdowns.Done()
		r.writeSnapshot(e, st)
	})
}

// writeSnapshot persists the entry's plan, re-reading the live
// (version, values) pair under r.mu and rewriting until the renamed
// file reflects a stable pair. The captured st is only a fallback for
// when the entry's state was evicted or torn down meanwhile: its plan
// data stays readable after shutdown, and the recorded (version,
// AuxVals) pair — which the loader replays via Refactor — is what
// defines the snapshot's values, not whichever epoch the plan happened
// to have baked in. If the entry moves faster than the bounded
// rewrites, the writer spawned by the newer change is already queued on
// snapMu behind us and will observe the final state.
func (r *Registry) writeSnapshot(e *entry, st *planState) {
	e.snapMu.Lock()
	defer e.snapMu.Unlock()
	for attempt := 0; attempt < 4; attempt++ {
		r.mu.Lock()
		if e.st != nil {
			st = e.st // prefer the live state
		}
		ver, vals := e.version, e.vals
		r.mu.Unlock()
		if ver > 1 && vals == nil {
			// Updated past the spec's values but the array is gone — should
			// be impossible (UpdateValues always retains its copy); refuse to
			// write a file the loader would reject.
			r.met.SnapshotErrors.Add(1)
			return
		}
		meta, err := json.Marshal(snapMeta{Spec: e.spec, Version: ver})
		if err != nil {
			r.met.SnapshotErrors.Add(1)
			return
		}
		extra := stsk.SnapshotExtra{Meta: meta, AuxVals: vals}
		if err := st.base.plan.WriteSnapshotFile(r.snapshotPath(e.spec.Name), extra); err != nil {
			r.met.SnapshotErrors.Add(1)
			return
		}
		r.met.SnapshotWrites.Add(1)
		r.mu.Lock()
		stable := (e.st == st || e.st == nil) && e.version == ver
		r.mu.Unlock()
		if stable {
			return
		}
	}
}

// readSnapshotFile loads and validates one snapshot file for registry
// use: the core format checks (CRC, framing, plan invariants) run inside
// stsk.ReadSnapshotFile, then the registry metadata is decoded and the
// AuxVals value array — when present — is re-applied so the live values
// match the recorded version exactly.
func readSnapshotFile(path string) (*stsk.Plan, snapMeta, []float64, error) {
	plan, extra, err := stsk.ReadSnapshotFile(path)
	if err != nil {
		return nil, snapMeta{}, nil, err
	}
	var meta snapMeta
	if err := json.Unmarshal(extra.Meta, &meta); err != nil {
		return nil, snapMeta{}, nil, fmt.Errorf("%w: registry metadata: %v", stsk.ErrBadSnapshot, err)
	}
	if meta.Version == 0 || meta.Spec.Name == "" {
		return nil, snapMeta{}, nil, fmt.Errorf("%w: registry metadata incomplete", stsk.ErrBadSnapshot)
	}
	if meta.Version > 1 && extra.AuxVals == nil {
		// A version past 1 means UpdateValues landed, whose values MUST be
		// recorded — otherwise a post-reload eviction would rebuild the
		// spec's original matrix under the updated version number.
		return nil, snapMeta{}, nil, fmt.Errorf("%w: version %d snapshot lacks its value array", stsk.ErrBadSnapshot, meta.Version)
	}
	if extra.AuxVals != nil {
		if err := plan.Refactor(extra.AuxVals); err != nil {
			return nil, snapMeta{}, nil, fmt.Errorf("%w: recorded values rejected: %v", stsk.ErrBadSnapshot, err)
		}
	}
	return plan, meta, extra.AuxVals, nil
}

// discardSnapshot counts and removes a snapshot file that failed
// validation, so the cost of refusing it is paid once, not on every
// acquire miss.
func (r *Registry) discardSnapshot(path string) {
	r.met.SnapshotErrors.Add(1)
	_ = os.Remove(path)
}

// loadSnapshot attempts a warm load for an acquire miss. curVer and pend
// are the entry's version and retained values, frozen while the caller
// holds the entry's build slot. On success it returns the ready state
// and the snapshot's (version, values) for the caller to reconcile:
// a snapshot at or past curVer is adopted as-is; one lagging curVer has
// the newer pend values re-applied so the state matches the live entry.
func (r *Registry) loadSnapshot(spec PlanSpec, curVer uint64, pend []float64) (*planState, uint64, []float64, bool) {
	path := r.snapshotPath(spec.Name)
	plan, meta, vals, err := readSnapshotFile(path)
	if err != nil {
		if !errors.Is(err, os.ErrNotExist) {
			r.discardSnapshot(path)
		}
		return nil, 0, nil, false
	}
	if meta.Spec != spec {
		// Same name, different spec — a re-registration changed the plan's
		// definition since the snapshot was written. The file is not
		// corrupt, but it describes a different system; drop it.
		r.discardSnapshot(path)
		return nil, 0, nil, false
	}
	if meta.Version < curVer && pend != nil {
		if err := plan.Refactor(pend); err != nil {
			r.discardSnapshot(path)
			return nil, 0, nil, false
		}
	}
	st := &planState{spec: spec, base: r.newVariant(plan, spec)}
	st.bytes = st.base.bytes
	return st, meta.Version, vals, true
}

// WarmStart pre-populates the registry from every snapshot in
// Config.SnapshotDir: each valid file registers its recorded spec and
// installs the reloaded plan as resident state at its recorded value
// version, within the byte budget (LRU eviction applies as usual, and
// evicted plans warm-load back on demand). Files that fail validation
// are counted, removed, and skipped; plans already registered are left
// alone. Returns the number of plans made resident.
//
// Call it once at boot, before serving: a warm-started replica answers
// its first solve in milliseconds instead of paying a cold ordering-
// pipeline build per plan.
func (r *Registry) WarmStart() (int, error) {
	if r.cfg.SnapshotDir == "" {
		return 0, nil
	}
	des, err := os.ReadDir(r.cfg.SnapshotDir)
	if err != nil {
		return 0, err
	}
	loaded := 0
	for _, de := range des {
		if de.IsDir() || !strings.HasSuffix(de.Name(), ".snap") {
			continue
		}
		path := filepath.Join(r.cfg.SnapshotDir, de.Name())
		plan, meta, vals, err := readSnapshotFile(path)
		if err != nil {
			r.discardSnapshot(path)
			continue
		}
		if meta.Spec.validate() != nil || url.PathEscape(meta.Spec.Name)+".snap" != de.Name() {
			// The recorded spec must be well-formed and must own this file
			// name — a snapshot cannot install itself under another plan's
			// slot.
			r.discardSnapshot(path)
			continue
		}
		r.mu.Lock()
		if r.closed {
			r.mu.Unlock()
			return loaded, ErrDraining
		}
		if _, ok := r.entries[meta.Spec.Name]; ok {
			r.mu.Unlock()
			continue
		}
		r.mu.Unlock()

		// Build the servable state outside the mutex (solver pools spin up
		// here), then commit it if the name is still free.
		st := &planState{spec: meta.Spec, base: r.newVariant(plan, meta.Spec)}
		st.bytes = st.base.bytes

		r.mu.Lock()
		if _, ok := r.entries[meta.Spec.Name]; ok || r.closed {
			closed := r.closed
			r.mu.Unlock()
			st.shutdown()
			if closed {
				return loaded, ErrDraining
			}
			continue
		}
		r.clock++
		st.lastUse = r.clock
		r.entries[meta.Spec.Name] = &entry{spec: meta.Spec, st: st, version: meta.Version, vals: vals}
		r.used += st.bytes
		r.met.SnapshotLoads.Add(1)
		r.evictLocked(st)
		r.mu.Unlock()
		loaded++
	}
	return loaded, nil
}
