package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"stsk"
)

func postJSON(t *testing.T, client *http.Client, url string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func TestServerEndToEnd(t *testing.T) {
	reg := NewRegistry(Config{})
	srv := NewServer(reg)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Close()

	// Register a plan over HTTP.
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/plans",
		PlanSpec{Name: "g3", Class: "grid3d", N: 1500, Method: "sts3"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register: %d %s", resp.StatusCode, body)
	}
	var info PlanInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if !info.Loaded || info.N == 0 {
		t.Fatalf("register info: %+v", info)
	}

	// Conflicting registration → 409; idempotent → 200.
	resp, _ = postJSON(t, ts.Client(), ts.URL+"/v1/plans", PlanSpec{Name: "g3", Class: "trimesh", N: 999})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("conflicting register: %d, want 409", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.Client(), ts.URL+"/v1/plans", PlanSpec{Name: "g3", Class: "grid3d", N: 1500, Method: "sts3"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("idempotent register: %d, want 200", resp.StatusCode)
	}

	// Listing shows it.
	lresp, err := ts.Client().Get(ts.URL + "/v1/plans")
	if err != nil {
		t.Fatal(err)
	}
	var infos []PlanInfo
	if err := json.NewDecoder(lresp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	lresp.Body.Close()
	if len(infos) != 1 || infos[0].Spec.Name != "g3" {
		t.Fatalf("list: %+v", infos)
	}

	// Solve over HTTP, forward and upper, bitwise vs Plan.Solve (JSON
	// float64 round-trips exactly).
	ref := refPlan(t, "grid3d", 1500, stsk.STS3)
	b := manufacturedRHS(ref, 7)
	var wg sync.WaitGroup
	for _, upper := range []bool{false, true} {
		wg.Add(1)
		go func(upper bool) {
			defer wg.Done()
			resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/solve",
				SolveRequest{Plan: "g3", B: b, Upper: upper})
			if resp.StatusCode != http.StatusOK {
				t.Errorf("solve upper=%v: %d %s", upper, resp.StatusCode, body)
				return
			}
			var sr SolveResponse
			if err := json.Unmarshal(body, &sr); err != nil {
				t.Error(err)
				return
			}
			var want []float64
			if upper {
				want, _ = ref.SolveUpper(b)
			} else {
				want, _ = ref.Solve(b)
			}
			for i := range sr.X {
				if sr.X[i] != want[i] {
					t.Errorf("upper=%v: HTTP solution differs at %d", upper, i)
					return
				}
			}
		}(upper)
	}
	wg.Wait()

	// Error mapping: unknown plan 404, short rhs 400.
	resp, _ = postJSON(t, ts.Client(), ts.URL+"/v1/solve", SolveRequest{Plan: "nope", B: b})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown plan: %d, want 404", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.Client(), ts.URL+"/v1/solve", SolveRequest{Plan: "g3", B: b[:3]})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("short rhs: %d, want 400", resp.StatusCode)
	}

	// Health and metrics.
	hresp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health healthBody
	if err := json.NewDecoder(hresp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if health.Status != "ok" || health.Plans != 1 {
		t.Errorf("healthz: %+v", health)
	}
	mresp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, series := range []string{
		"stsserve_requests_total",
		"stsserve_requests_solved_total 2",
		"stsserve_solve_batches_total",
		"stsserve_panel_width_mean",
		"stsserve_plans_loaded 1",
		"stsserve_solve_latency_seconds_bucket{le=\"+Inf\"} 2",
	} {
		if !strings.Contains(string(mbody), series) {
			t.Errorf("metrics exposition missing %q:\n%s", series, mbody)
		}
	}

	// Drain: after Close every endpoint that mutates answers 503 and
	// healthz reports draining.
	srv.Close()
	resp, _ = postJSON(t, ts.Client(), ts.URL+"/v1/solve", SolveRequest{Plan: "g3", B: b})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("solve while draining: %d, want 503", resp.StatusCode)
	}
	hresp, err = ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(hresp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if health.Status != "draining" {
		t.Errorf("healthz while draining: %+v", health)
	}
}
