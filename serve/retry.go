package serve

import (
	"context"
	"errors"
	"math/rand/v2"
	"time"
)

// RetryPolicy bounds how Registry.Solve retries transient failures: the
// eviction race (errCoalescerClosed) and admission-control rejections
// (ErrQueueFull). Retries are deadline-budget-aware — a backoff that
// would outlive the request's context is never slept — and only the
// retriable sentinels are retried: dimension errors, unknown plans,
// contained panics (ErrInternal) and cancellations all fail immediately.
type RetryPolicy struct {
	// MaxAttempts caps total attempts, first try included. Default 3.
	MaxAttempts int

	// BaseBackoff is the first retry's backoff; each further retry
	// doubles it, jittered uniformly in [d/2, d). An eviction-race retry
	// (errCoalescerClosed) skips the backoff entirely — the rebuild
	// itself is the wait. Default 500µs.
	BaseBackoff time.Duration

	// MaxBackoff caps the exponential growth. Default 8ms.
	MaxBackoff time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 500 * time.Microsecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 8 * time.Millisecond
	}
	return p
}

// retriable reports whether the retry policy may try again after err.
func retriable(err error) bool {
	return errors.Is(err, errCoalescerClosed) || errors.Is(err, ErrQueueFull)
}

// backoff is the jittered exponential delay before retry attempt
// `attempt` (1 = first retry).
func (p RetryPolicy) backoff(attempt int) time.Duration {
	d := p.BaseBackoff << (attempt - 1)
	if d > p.MaxBackoff || d <= 0 {
		d = p.MaxBackoff
	}
	// Uniform jitter in [d/2, d) decorrelates retry storms: thundering
	// herds that were rejected together do not come back together.
	return d/2 + time.Duration(rand.Int64N(int64(d/2)+1))
}

// sleepRetry sleeps d unless the context would expire first: a retry
// that cannot complete within the remaining deadline budget is pointless
// occupancy, so the caller gets the original error back instead. Returns
// false when the retry should be abandoned.
func sleepRetry(ctx context.Context, d time.Duration) bool {
	if deadline, ok := ctx.Deadline(); ok && time.Until(deadline) <= d {
		return false
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
