package serve

import (
	"fmt"
	"io"
	"runtime/metrics"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"stsk/internal/trace"
)

// latencyBuckets are the upper bounds (seconds) of the solve-latency
// histogram, spanning sub-millisecond cache-resident solves up to
// multi-second cold builds; the implicit final bucket is +Inf.
var latencyBuckets = [...]float64{
	0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

// histogram is a fixed-bucket latency histogram with atomic counters —
// enough for the Prometheus text exposition without any dependency.
type histogram struct {
	counts [len(latencyBuckets) + 1]atomic.Int64
	sumNs  atomic.Int64
	count  atomic.Int64
}

func (h *histogram) observe(d time.Duration) {
	s := d.Seconds()
	i := 0
	for i < len(latencyBuckets) && s > latencyBuckets[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sumNs.Add(d.Nanoseconds())
	h.count.Add(1)
}

// Metrics is the serving subsystem's shared instrumentation: request
// outcome counters, coalescing effectiveness (batches vs requests, whose
// ratio is the achieved mean panel width), registry lifecycle counters,
// and the end-to-end solve latency histogram. All fields are updated with
// atomics, so one Metrics value is shared by the registry, every
// coalescer, and the HTTP layer.
type Metrics struct {
	// Request outcomes, counted once per Registry.Solve call.
	Requests  atomic.Int64 // every solve request received
	Solved    atomic.Int64 // completed with a solution
	Cancelled atomic.Int64 // context cancelled or deadline expired
	Rejected  atomic.Int64 // bounced by admission control (queue full)
	Failed    atomic.Int64 // any other error (unknown plan, dimension, ...)

	// Coalescing effectiveness: WidthSum/Batches is the achieved mean
	// panel width — the number of concurrent requests each matrix
	// traversal was amortised over.
	Batches  atomic.Int64 // panel dispatches issued to solvers
	WidthSum atomic.Int64 // total requests carried by those dispatches

	// Registry lifecycle.
	PlanBuilds   atomic.Int64 // plans (or IC0 variants) built cold
	Evictions    atomic.Int64 // LRU evictions under the byte budget
	ValueUpdates atomic.Int64 // numeric refactorizations applied (UpdateValues)

	// Snapshot persistence (Config.SnapshotDir).
	SnapshotLoads  atomic.Int64 // plans made resident from a snapshot (no cold build)
	SnapshotWrites atomic.Int64 // write-behind snapshot files persisted
	SnapshotErrors atomic.Int64 // snapshots refused (corrupt, stale spec) or failed writes

	// Fault tolerance.
	Retries         atomic.Int64 // solve attempts beyond the first (retry policy)
	PanicsRecovered atomic.Int64 // kernel panics contained into ErrInternal
	Shed            atomic.Int64 // requests shed below the brownout priority threshold
	Degraded        atomic.Int64 // requests refused by brownout degradation (not failures)

	latency histogram

	// stages attributes latency per lifecycle stage and outcome, fed by
	// finished traces (Registry.FinishTrace): stages[s][0] for solved
	// requests, stages[s][1] for every failure class.
	stages [trace.NumStages][2]histogram

	// planStages accumulates per-plan per-stage time: plan name →
	// *planStageSums. Bounded by the registered-plan count, which the
	// registry already bounds.
	planStages sync.Map
}

// planStageSums is one plan's per-stage running totals, exported as
// stsserve_plan_stage_seconds_{sum,count}.
type planStageSums [trace.NumStages]struct {
	sumNs atomic.Int64
	count atomic.Int64
}

// observeTrace folds one finished trace into the per-stage histograms
// and, when the record names a plan, its per-plan stage totals. Stages
// the request never touched (no spans) are not observed — a histogram
// count is "requests that exercised this stage".
func (m *Metrics) observeTrace(rec trace.Record, ok bool) {
	oi := 0
	if !ok {
		oi = 1
	}
	var ps *planStageSums
	if rec.Plan != "" {
		if v, found := m.planStages.Load(rec.Plan); found {
			ps = v.(*planStageSums)
		} else {
			v, _ := m.planStages.LoadOrStore(rec.Plan, &planStageSums{})
			ps = v.(*planStageSums)
		}
	}
	for s := 0; s < trace.NumStages; s++ {
		d := rec.StageTotal(trace.Stage(s))
		if d <= 0 {
			continue
		}
		m.stages[s][oi].observe(d)
		if ps != nil {
			ps[s].sumNs.Add(int64(d))
			ps[s].count.Add(1)
		}
	}
}

// ObserveLatency records one completed solve's end-to-end latency
// (queueing + coalescing + panel solve).
func (m *Metrics) ObserveLatency(d time.Duration) { m.latency.observe(d) }

// Snapshot is a point-in-time copy of the counters, for tests and the
// servebench driver.
type Snapshot struct {
	Requests, Solved, Cancelled, Rejected, Failed int64
	Batches, WidthSum                             int64
	PlanBuilds, Evictions, ValueUpdates           int64
	SnapshotLoads, SnapshotWrites, SnapshotErrors int64
	Retries, PanicsRecovered, Shed, Degraded      int64
}

// Snapshot copies the counters.
func (m *Metrics) Snapshot() Snapshot {
	return Snapshot{
		Requests:        m.Requests.Load(),
		Solved:          m.Solved.Load(),
		Cancelled:       m.Cancelled.Load(),
		Rejected:        m.Rejected.Load(),
		Failed:          m.Failed.Load(),
		Batches:         m.Batches.Load(),
		WidthSum:        m.WidthSum.Load(),
		PlanBuilds:      m.PlanBuilds.Load(),
		Evictions:       m.Evictions.Load(),
		ValueUpdates:    m.ValueUpdates.Load(),
		SnapshotLoads:   m.SnapshotLoads.Load(),
		SnapshotWrites:  m.SnapshotWrites.Load(),
		SnapshotErrors:  m.SnapshotErrors.Load(),
		Retries:         m.Retries.Load(),
		PanicsRecovered: m.PanicsRecovered.Load(),
		Shed:            m.Shed.Load(),
		Degraded:        m.Degraded.Load(),
	}
}

// StageLatencyTotal reports one stage's cumulative observed time and
// observation count across both outcomes — the reconciliation hook for
// tests that check the queue-wait histogram against the coalescer's
// queue-depth integral.
func (m *Metrics) StageLatencyTotal(s trace.Stage) (time.Duration, int64) {
	var sum, n int64
	for oi := 0; oi < 2; oi++ {
		sum += m.stages[s][oi].sumNs.Load()
		n += m.stages[s][oi].count.Load()
	}
	return time.Duration(sum), n
}

// latencyTotals reports the histogram's cumulative observation count and
// how many observations exceeded the given threshold (seconds) — the
// brownout controller diffs consecutive reads to get a per-tick window.
func (m *Metrics) latencyTotals(threshold float64) (total, over int64) {
	var below int64
	for i, ub := range latencyBuckets {
		if ub <= threshold {
			below += m.latency.counts[i].Load()
		}
	}
	total = m.latency.count.Load()
	return total, total - below
}

// MeanPanelWidth is the achieved mean panel width so far: requests
// dispatched / panel dispatches. Zero before the first dispatch.
func (s Snapshot) MeanPanelWidth() float64 {
	if s.Batches == 0 {
		return 0
	}
	return float64(s.WidthSum) / float64(s.Batches)
}

// writePrometheus renders the metrics in the Prometheus text exposition
// format. The registry supplies the point-in-time gauges (queue depth,
// loaded plans, byte usage).
func (m *Metrics) writePrometheus(w io.Writer, reg *Registry) {
	s := m.Snapshot()
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, format string, v any) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s "+format+"\n", name, help, name, name, v)
	}
	counter("stsserve_requests_total", "Solve requests received.", s.Requests)
	counter("stsserve_requests_solved_total", "Solve requests completed with a solution.", s.Solved)
	counter("stsserve_requests_cancelled_total", "Solve requests cancelled or timed out.", s.Cancelled)
	counter("stsserve_requests_rejected_total", "Solve requests bounced by admission control.", s.Rejected)
	counter("stsserve_requests_failed_total", "Solve requests failed for other reasons.", s.Failed)
	counter("stsserve_solve_batches_total", "Coalesced panel dispatches issued to solvers.", s.Batches)
	counter("stsserve_solve_batched_requests_total", "Requests carried by coalesced dispatches.", s.WidthSum)
	gauge("stsserve_panel_width_mean", "Achieved mean panel width (batched requests / batches).", "%g", s.MeanPanelWidth())
	counter("stsserve_plan_builds_total", "Plans and IC0 variants built cold.", s.PlanBuilds)
	counter("stsserve_plan_evictions_total", "LRU plan evictions under the byte budget.", s.Evictions)
	counter("stsserve_value_updates_total", "Numeric refactorizations applied via UpdateValues.", s.ValueUpdates)
	counter("stsserve_snapshot_loads_total", "Plans made resident from an on-disk snapshot instead of a cold build.", s.SnapshotLoads)
	counter("stsserve_snapshot_writes_total", "Write-behind plan snapshot files persisted.", s.SnapshotWrites)
	counter("stsserve_snapshot_errors_total", "Snapshots refused as invalid or failed to persist.", s.SnapshotErrors)
	counter("stsserve_retries_total", "Solve attempts beyond the first under the retry policy.", s.Retries)
	counter("stsserve_panics_recovered_total", "Kernel panics contained into ErrInternal at engine job boundaries.", s.PanicsRecovered)
	counter("stsserve_requests_shed_total", "Requests shed below the brownout priority threshold.", s.Shed)
	counter("stsserve_requests_degraded_total", "Requests refused by brownout degradation (intentional shedding, not failures).", s.Degraded)
	bst, _ := reg.BrownoutState()
	gauge("stsserve_brownout_state", "Degradation state: 0 healthy, 1 degraded, 2 draining.", "%d", int64(bst))
	gauge("stsserve_queue_depth", "Requests currently queued across all coalescers.", "%d", reg.QueueDepth())
	gauge("stsserve_plans_registered", "Plans registered.", "%d", reg.Len())
	gauge("stsserve_plans_loaded", "Plans currently built and resident.", "%d", reg.Loaded())
	gauge("stsserve_plan_bytes", "Estimated bytes held by resident plans.", "%d", reg.BytesUsed())
	if vs := reg.versions(); len(vs) > 0 {
		fmt.Fprintf(w, "# HELP stsserve_plan_version Current value version of each registered plan.\n")
		fmt.Fprintf(w, "# TYPE stsserve_plan_version gauge\n")
		for _, v := range vs {
			fmt.Fprintf(w, "stsserve_plan_version{plan=%q} %d\n", v.name, v.version)
		}
	}

	// Latency histogram.
	fmt.Fprintf(w, "# HELP stsserve_solve_latency_seconds End-to-end solve latency (queueing + coalescing + solve).\n")
	fmt.Fprintf(w, "# TYPE stsserve_solve_latency_seconds histogram\n")
	writeHistogram(w, "stsserve_solve_latency_seconds", "", &m.latency)

	// Per-stage latency attribution, fed by finished lifecycle traces.
	fmt.Fprintf(w, "# HELP stsserve_stage_latency_seconds Per-stage solve-lifecycle latency attributed by tracing.\n")
	fmt.Fprintf(w, "# TYPE stsserve_stage_latency_seconds histogram\n")
	for s := 0; s < trace.NumStages; s++ {
		for oi, outcome := range [2]string{"ok", "error"} {
			h := &m.stages[s][oi]
			if h.count.Load() == 0 && outcome == "error" {
				continue // keep the exposition compact: error rows appear once seen
			}
			labels := fmt.Sprintf("stage=%q,outcome=%q", trace.Stage(s).String(), outcome)
			writeHistogram(w, "stsserve_stage_latency_seconds", labels, h)
		}
	}

	// Per-plan stage totals (sum/count, not buckets — cardinality is
	// plans × stages, so buckets would be disproportionate).
	m.writePlanStages(w)

	// Go runtime health read at scrape time: scheduler pressure and GC
	// pauses are the usual suspects when stage histograms shift without a
	// code change.
	writeRuntimeMetrics(w)
}

// writeHistogram renders one fixed-bucket histogram's bucket/sum/count
// lines, with optional extra labels (no surrounding braces).
func writeHistogram(w io.Writer, name, labels string, h *histogram) {
	sep := func(le string) string {
		if labels == "" {
			return fmt.Sprintf("{le=%q}", le)
		}
		return fmt.Sprintf("{%s,le=%q}", labels, le)
	}
	cum := int64(0)
	for i, ub := range latencyBuckets {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, sep(fmt.Sprintf("%g", ub)), cum)
	}
	cum += h.counts[len(latencyBuckets)].Load()
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, sep("+Inf"), cum)
	suffix := ""
	if labels != "" {
		suffix = "{" + labels + "}"
	}
	fmt.Fprintf(w, "%s_sum%s %g\n", name, suffix, float64(h.sumNs.Load())/1e9)
	fmt.Fprintf(w, "%s_count%s %d\n", name, suffix, h.count.Load())
}

// writePlanStages renders the per-plan per-stage running totals, sorted
// by plan name for a stable exposition.
func (m *Metrics) writePlanStages(w io.Writer) {
	type row struct {
		plan string
		sums *planStageSums
	}
	var rows []row
	m.planStages.Range(func(k, v any) bool {
		rows = append(rows, row{k.(string), v.(*planStageSums)})
		return true
	})
	if len(rows) == 0 {
		return
	}
	slices.SortFunc(rows, func(a, b row) int {
		if a.plan < b.plan {
			return -1
		} else if a.plan > b.plan {
			return 1
		}
		return 0
	})
	fmt.Fprintf(w, "# HELP stsserve_plan_stage_seconds Cumulative per-plan time attributed to each lifecycle stage.\n")
	fmt.Fprintf(w, "# TYPE stsserve_plan_stage_seconds_sum counter\n")
	for _, r := range rows {
		for s := 0; s < trace.NumStages; s++ {
			if n := r.sums[s].count.Load(); n > 0 {
				fmt.Fprintf(w, "stsserve_plan_stage_seconds_sum{plan=%q,stage=%q} %g\n",
					r.plan, trace.Stage(s).String(), float64(r.sums[s].sumNs.Load())/1e9)
				fmt.Fprintf(w, "stsserve_plan_stage_seconds_count{plan=%q,stage=%q} %d\n",
					r.plan, trace.Stage(s).String(), n)
			}
		}
	}
}

// runtimeSamples are the runtime/metrics series exported at /metrics.
var runtimeSamples = []string{
	"/sched/goroutines:goroutines",
	"/gc/pauses:seconds",
	"/sched/latencies:seconds",
}

// writeRuntimeMetrics exports scheduler and GC health from
// runtime/metrics: a goroutine gauge plus GC-pause and scheduling-latency
// histograms folded into the serving latency buckets (the _sum is
// approximated from bucket upper bounds and marked so in HELP).
func writeRuntimeMetrics(w io.Writer) {
	samples := make([]metrics.Sample, len(runtimeSamples))
	for i, name := range runtimeSamples {
		samples[i].Name = name
	}
	metrics.Read(samples)
	for _, s := range samples {
		switch s.Name {
		case "/sched/goroutines:goroutines":
			if s.Value.Kind() == metrics.KindUint64 {
				fmt.Fprintf(w, "# HELP stsserve_go_goroutines Live goroutines (runtime/metrics).\n# TYPE stsserve_go_goroutines gauge\n")
				fmt.Fprintf(w, "stsserve_go_goroutines %d\n", s.Value.Uint64())
			}
		case "/gc/pauses:seconds":
			writeRuntimeHist(w, "stsserve_go_gc_pause_seconds",
				"Stop-the-world GC pause distribution (runtime/metrics; _sum approximated from bucket bounds).", s)
		case "/sched/latencies:seconds":
			writeRuntimeHist(w, "stsserve_go_sched_latency_seconds",
				"Goroutine scheduling latency distribution (runtime/metrics; _sum approximated from bucket bounds).", s)
		}
	}
}

// writeRuntimeHist folds a runtime/metrics float64 histogram into the
// fixed serving buckets and renders it.
func writeRuntimeHist(w io.Writer, name, help string, s metrics.Sample) {
	if s.Value.Kind() != metrics.KindFloat64Histogram {
		return
	}
	h := s.Value.Float64Histogram()
	var folded [len(latencyBuckets) + 1]uint64
	var approxSum float64
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		ub := h.Buckets[i+1]
		j := 0
		for j < len(latencyBuckets) && ub > latencyBuckets[j] {
			j++
		}
		folded[j] += c
		bound := ub
		if bound > latencyBuckets[len(latencyBuckets)-1]*10 || bound != bound || bound > 1e18 {
			bound = h.Buckets[i] // +Inf upper bound: fall back to the lower edge
		}
		approxSum += float64(c) * bound
	}
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	cum := uint64(0)
	total := uint64(0)
	for _, c := range folded {
		total += c
	}
	for j, ub := range latencyBuckets {
		cum += folded[j]
		fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", name, ub, cum)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, total)
	fmt.Fprintf(w, "%s_sum %g\n", name, approxSum)
	fmt.Fprintf(w, "%s_count %d\n", name, total)
}
