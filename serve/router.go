package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"stsk/internal/panicsafe"
	"stsk/internal/trace"
)

// Router is the scale-out front of a fleet of stsserve replicas: one
// stdlib-HTTP process that owns no plans itself and routes the v1 API
// across N backends (ROADMAP item 4b, `stsserve -route`).
//
//   - Solve requests are routed by consistent hashing on the plan name
//     (an FNV-64a ring with virtual nodes), so each plan's working set
//     stays hot on one replica while the namespace spreads over the
//     fleet, and adding a replica only remaps ~1/N of the plans.
//   - Replica health is probed at /healthz on an interval; an unhealthy
//     (dead, draining, degraded) replica is ejected from preference and
//     requests fail over along the ring. A transport error during a
//     forward ejects passively, without waiting for the next probe.
//   - Tail latency is cut by hedging: when a solve has not answered
//     within HedgeAfter, the same request is launched on the next
//     replica of the ring and the first acceptable response wins (the
//     losers' contexts are cancelled). Solves are idempotent, so a
//     hedge can never double-apply work.
//   - Registrations and value updates are broadcast to every healthy
//     replica, so any of them can serve (or warm-rebuild) any plan when
//     failover lands on it; X-STS-Priority passes through untouched, so
//     brownout shedding composes per replica.
//
// The router refuses with 502/503 only when every candidate replica
// failed or none exists; it never originates a 500 itself.
type Router struct {
	cfg     RouterConfig
	client  *http.Client
	mux     *http.ServeMux
	backs   []*routerBackend
	ring    []ringEntry
	met     RouterMetrics
	stop    chan struct{}
	stopped sync.WaitGroup
	once    sync.Once
}

// RouterConfig tunes a Router. Zero values select the defaults noted on
// each field.
type RouterConfig struct {
	// Backends are the replica base URLs (e.g. "http://10.0.0.7:8377");
	// a bare host:port gets "http://" prepended. At least one is
	// required.
	Backends []string

	// HedgeAfter is how long a routed solve may go unanswered before the
	// same request is hedged to the next replica. Default 25ms; negative
	// disables hedging.
	HedgeAfter time.Duration

	// HealthInterval is the /healthz probe period. Default 500ms.
	HealthInterval time.Duration

	// VNodes is the number of virtual nodes per backend on the hash
	// ring (more = smoother key spread). Default 64.
	VNodes int

	// Client overrides the forwarding HTTP client (timeouts come from
	// the inbound request's context, so the default client has none).
	Client *http.Client
}

func (c RouterConfig) withDefaults() RouterConfig {
	if c.HedgeAfter == 0 {
		c.HedgeAfter = 25 * time.Millisecond
	}
	if c.HealthInterval <= 0 {
		c.HealthInterval = 500 * time.Millisecond
	}
	if c.VNodes <= 0 {
		c.VNodes = 64
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	return c
}

// RouterMetrics counts the router's own traffic, separate from any
// registry metrics (the router holds no registry).
type RouterMetrics struct {
	Requests   atomic.Int64 // solve requests received
	Hedges     atomic.Int64 // hedge attempts launched after HedgeAfter
	Failovers  atomic.Int64 // attempts moved to another replica after a failure
	Ejections  atomic.Int64 // backends marked unhealthy (probe or passive)
	Broadcasts atomic.Int64 // registration/value-update fan-outs
}

// routerBackend is one replica and its live health flag.
type routerBackend struct {
	base    string
	healthy atomic.Bool
}

// ringEntry is one virtual node: the hash point and the backend index.
type ringEntry struct {
	h   uint64
	idx int
}

// errNoBackends reports a router with every replica ejected.
var errNoBackends = errors.New("serve: router has no healthy backends")

// NewRouter builds the hash ring, marks every backend healthy (the
// prober and passive ejection correct that within one probe interval or
// one failed forward), and starts the health prober. Call Close to stop
// probing.
func NewRouter(cfg RouterConfig) (*Router, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Backends) == 0 {
		return nil, errors.New("serve: router needs at least one backend")
	}
	rt := &Router{
		cfg:    cfg,
		client: cfg.Client,
		mux:    http.NewServeMux(),
		stop:   make(chan struct{}),
	}
	for _, b := range cfg.Backends {
		b = strings.TrimRight(strings.TrimSpace(b), "/")
		if b == "" {
			return nil, errors.New("serve: empty router backend")
		}
		if !strings.Contains(b, "://") {
			b = "http://" + b
		}
		rb := &routerBackend{base: b}
		rb.healthy.Store(true)
		rt.backs = append(rt.backs, rb)
	}
	for i, b := range rt.backs {
		for v := 0; v < cfg.VNodes; v++ {
			rt.ring = append(rt.ring, ringEntry{h: fnv64(fmt.Sprintf("%s#%d", b.base, v)), idx: i})
		}
	}
	sort.Slice(rt.ring, func(i, j int) bool { return rt.ring[i].h < rt.ring[j].h })

	rt.mux.HandleFunc("POST /v1/solve", rt.handleSolve)
	rt.mux.HandleFunc("POST /v1/plans", rt.handleBroadcast)
	rt.mux.HandleFunc("PUT /v1/plans/{name}/values", rt.handleBroadcast)
	rt.mux.HandleFunc("GET /v1/plans", rt.handleList)
	rt.mux.HandleFunc("GET /healthz", rt.handleHealth)
	rt.mux.HandleFunc("GET /metrics", rt.handleMetrics)

	rt.stopped.Add(1)
	panicsafe.Go("serve.router-prober", func() {
		defer rt.stopped.Done()
		rt.probeLoop()
	})
	return rt, nil
}

// Close stops the health prober. In-flight forwards are owned by their
// requests' contexts and finish on their own.
func (rt *Router) Close() {
	rt.once.Do(func() { close(rt.stop) })
	rt.stopped.Wait()
}

// Metrics returns the router's counters.
func (rt *Router) Metrics() *RouterMetrics { return &rt.met }

func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rt.mux.ServeHTTP(w, r)
}

// fnv64 hashes a string onto the ring: FNV-64a for the byte mixing, then
// a splitmix64-style finalizer. The finalizer matters — raw FNV-1a barely
// diffuses the final bytes into the high bits, and vnode labels differ
// only in their numeric suffix, which without finalization clusters a
// backend's vnodes into a few arcs and skews the key spread badly.
func fnv64(s string) uint64 {
	h := fnv.New64a()
	_, _ = io.WriteString(h, s)
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// candidates returns every backend index in routing preference order for
// one plan: the ring walk from the plan's hash point, deduplicated, with
// healthy replicas ahead of ejected ones (ejected replicas stay at the
// tail as a last resort, so a fleet that is entirely "unhealthy" — e.g.
// all brownout-degraded — still gets offered the traffic rather than
// blackholed).
func (rt *Router) candidates(plan string) []int {
	start := sort.Search(len(rt.ring), func(j int) bool { return rt.ring[j].h >= fnv64(plan) })
	seen := make([]bool, len(rt.backs))
	order := make([]int, 0, len(rt.backs))
	for k := 0; k < len(rt.ring) && len(order) < len(rt.backs); k++ {
		e := rt.ring[(start+k)%len(rt.ring)]
		if !seen[e.idx] {
			seen[e.idx] = true
			order = append(order, e.idx)
		}
	}
	out := make([]int, 0, len(order))
	for _, idx := range order {
		if rt.backs[idx].healthy.Load() {
			out = append(out, idx)
		}
	}
	for _, idx := range order {
		if !rt.backs[idx].healthy.Load() {
			out = append(out, idx)
		}
	}
	return out
}

// eject marks a backend unhealthy (passively, from a failed forward, or
// from the prober) and counts the transition.
func (rt *Router) eject(b *routerBackend) {
	if b.healthy.Swap(false) {
		rt.met.Ejections.Add(1)
	}
}

// probeLoop drives /healthz probes until Close.
func (rt *Router) probeLoop() {
	t := time.NewTicker(rt.cfg.HealthInterval)
	defer t.Stop()
	rt.probeAll()
	for {
		select {
		case <-rt.stop:
			return
		case <-t.C:
			rt.probeAll()
		}
	}
}

// probeAll probes every backend once. A 200 /healthz revives an ejected
// replica; anything else — including 503 draining/degraded — ejects it.
func (rt *Router) probeAll() {
	for _, b := range rt.backs {
		//stsk:allow-background (prober owns its probes; there is no caller request to inherit from)
		ctx, cancel := context.WithTimeout(context.Background(), rt.cfg.HealthInterval)
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.base+"/healthz", nil)
		if err != nil {
			cancel()
			rt.eject(b)
			continue
		}
		resp, err := rt.client.Do(req)
		if err != nil {
			cancel()
			rt.eject(b)
			continue
		}
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
		cancel()
		if resp.StatusCode == http.StatusOK {
			b.healthy.Store(true)
		} else {
			rt.eject(b)
		}
	}
}

// captured is a fully buffered backend response, so the router can
// decide to relay or discard it after the fact (hedging needs the
// decision before any byte reaches the client).
type captured struct {
	status int
	header http.Header
	body   []byte
}

// relay writes the captured response to the client, passing through the
// content type, the backend's back-off hints, and the X-STS-* headers.
func (c *captured) relay(w http.ResponseWriter) {
	for _, k := range []string{"Content-Type", "Retry-After"} {
		if v := c.header.Get(k); v != "" {
			w.Header().Set(k, v)
		}
	}
	for k, vs := range c.header {
		if strings.HasPrefix(k, "X-Sts-") || strings.HasPrefix(k, "X-STS-") {
			w.Header()[k] = vs
		}
	}
	w.WriteHeader(c.status)
	_, _ = w.Write(c.body)
}

// forward sends one buffered request to a backend and buffers the whole
// response.
func (rt *Router) forward(ctx context.Context, method, url string, hdr http.Header, body []byte) (*captured, error) {
	req, err := http.NewRequestWithContext(ctx, method, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	for k, vs := range hdr {
		req.Header[k] = vs
	}
	if req.Header.Get("Content-Type") == "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxSolveBody))
	if err != nil {
		return nil, err
	}
	return &captured{status: resp.StatusCode, header: resp.Header, body: raw}, nil
}

// passHeaders picks the inbound headers a forward carries: content type
// plus every X-STS-* header (the priority passthrough the brownout
// shedding composes on).
func passHeaders(r *http.Request) http.Header {
	out := http.Header{}
	if v := r.Header.Get("Content-Type"); v != "" {
		out.Set("Content-Type", v)
	}
	for k, vs := range r.Header {
		if strings.HasPrefix(k, "X-Sts-") || strings.HasPrefix(k, "X-STS-") {
			out[k] = vs
		}
	}
	return out
}

// handleSolve routes one solve along the plan's ring order with
// failover and hedging. An attempt is accepted — and every other
// in-flight attempt cancelled — unless it died in transport or answered
// 5xx; 4xx responses (bad dimension, unknown plan, shed) relay
// faithfully, they would fail identically everywhere.
func (rt *Router) handleSolve(w http.ResponseWriter, r *http.Request) {
	rt.met.Requests.Add(1)
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxSolveBody))
	if err != nil {
		writeError(w, http.StatusBadRequest, err, 0)
		return
	}
	var peek struct {
		Plan string `json:"plan"`
	}
	if err := json.Unmarshal(body, &peek); err != nil || peek.Plan == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: router: solve body needs a plan name: %v", err), 0)
		return
	}
	cands := rt.candidates(peek.Plan)
	hdr := passHeaders(r)
	// Stamp a trace ID before fanning out so every hedged attempt — and
	// the backend trace each one spawns — shares the client's ID, or one
	// minted here when the client supplied none. The accepted attempt's
	// response echoes it back via the relayed X-STS-Trace-Id header.
	if hdr.Get("X-Sts-Trace-Id") == "" {
		hdr.Set("X-Sts-Trace-Id", trace.NewID())
	}
	ctx := r.Context()

	type attempt struct {
		cand int
		resp *captured
		err  error
	}
	results := make(chan attempt, len(cands))
	cancels := make([]context.CancelFunc, len(cands))
	defer func() {
		for _, c := range cancels {
			if c != nil {
				c()
			}
		}
	}()
	launched := 0
	launch := func() {
		i := launched
		launched++
		b := rt.backs[cands[i]]
		actx, cancel := context.WithCancel(ctx)
		cancels[i] = cancel
		panicsafe.Go("serve.router-solve", func() {
			resp, err := rt.forward(actx, http.MethodPost, b.base+"/v1/solve", hdr, body)
			results <- attempt{cand: i, resp: resp, err: err}
		})
	}
	launch()

	hedge := time.NewTimer(hedgeDelay(rt.cfg.HedgeAfter))
	defer hedge.Stop()
	var last attempt
	for pending := 1; pending > 0; {
		select {
		case res := <-results:
			pending--
			b := rt.backs[cands[res.cand]]
			if res.err == nil && res.resp.status < http.StatusInternalServerError {
				res.resp.relay(w)
				return
			}
			// Transport death or a 5xx: eject passively and fail over.
			if res.err != nil && ctx.Err() == nil {
				rt.eject(b)
			}
			last = res
			if launched < len(cands) && ctx.Err() == nil {
				rt.met.Failovers.Add(1)
				launch()
				pending++
			}
		case <-hedge.C:
			if launched < len(cands) && ctx.Err() == nil {
				rt.met.Hedges.Add(1)
				launch()
				pending++
				hedge.Reset(hedgeDelay(rt.cfg.HedgeAfter))
			}
		case <-ctx.Done():
			writeError(w, statusFor(ctx.Err()), ctx.Err(), 0)
			return
		}
	}
	// Every candidate failed. A buffered backend 5xx relays as-is (it is
	// the replica's error, not ours); pure transport failure is a 502.
	if last.resp != nil {
		last.resp.relay(w)
		return
	}
	if len(cands) == 0 {
		writeError(w, http.StatusServiceUnavailable, errNoBackends, time.Second)
		return
	}
	writeError(w, http.StatusBadGateway,
		fmt.Errorf("serve: router: all %d replicas failed for plan %q: %v", len(cands), peek.Plan, last.err), time.Second)
}

// hedgeDelay maps the config knob to a timer value: negative disables
// hedging by pushing the timer past any request lifetime.
func hedgeDelay(d time.Duration) time.Duration {
	if d < 0 {
		return 24 * time.Hour
	}
	return d
}

// handleBroadcast fans a registration or value update out to every
// currently healthy replica (all of them when all are ejected), so any
// replica can serve any plan on failover. The client sees the first
// successful response; per-replica failures only fail the request when
// no replica accepted it.
func (rt *Router) handleBroadcast(w http.ResponseWriter, r *http.Request) {
	rt.met.Broadcasts.Add(1)
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxSolveBody))
	if err != nil {
		writeError(w, http.StatusBadRequest, err, 0)
		return
	}
	hdr := passHeaders(r)
	targets := make([]*routerBackend, 0, len(rt.backs))
	for _, b := range rt.backs {
		if b.healthy.Load() {
			targets = append(targets, b)
		}
	}
	if len(targets) == 0 {
		targets = rt.backs
	}
	type outcome struct {
		resp *captured
		err  error
	}
	results := make([]outcome, len(targets))
	var wg sync.WaitGroup
	for i, b := range targets {
		wg.Add(1)
		i, b := i, b
		panicsafe.Go("serve.router-broadcast", func() {
			defer wg.Done()
			resp, err := rt.forward(r.Context(), r.Method, b.base+r.URL.Path, hdr, body)
			results[i] = outcome{resp: resp, err: err}
			if err != nil && r.Context().Err() == nil {
				rt.eject(b)
			}
		})
	}
	wg.Wait()
	var best *captured
	var lastErr error
	for _, res := range results {
		switch {
		case res.err != nil:
			lastErr = res.err
		case res.resp.status < 300 && (best == nil || best.status >= 300):
			best = res.resp
		case best == nil:
			best = res.resp
		}
	}
	if best != nil {
		best.relay(w)
		return
	}
	writeError(w, http.StatusBadGateway, fmt.Errorf("serve: router: broadcast reached no replica: %v", lastErr), time.Second)
}

// handleList forwards the plan listing to the first healthy replica
// (registrations are broadcast, so any replica's listing is the fleet's).
func (rt *Router) handleList(w http.ResponseWriter, r *http.Request) {
	for _, b := range rt.backs {
		if !b.healthy.Load() {
			continue
		}
		resp, err := rt.forward(r.Context(), http.MethodGet, b.base+"/v1/plans", nil, nil)
		if err != nil {
			if r.Context().Err() == nil {
				rt.eject(b)
			}
			continue
		}
		resp.relay(w)
		return
	}
	writeError(w, http.StatusServiceUnavailable, errNoBackends, time.Second)
}

// routerHealth is the router's /healthz document.
type routerHealth struct {
	Status   string              `json:"status"` // "ok" or "unavailable"
	Backends []routerBackendInfo `json:"backends"`
}

type routerBackendInfo struct {
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
}

func (rt *Router) handleHealth(w http.ResponseWriter, r *http.Request) {
	doc := routerHealth{Status: "unavailable"}
	for _, b := range rt.backs {
		ok := b.healthy.Load()
		if ok {
			doc.Status = "ok"
		}
		doc.Backends = append(doc.Backends, routerBackendInfo{URL: b.base, Healthy: ok})
	}
	code := http.StatusOK
	if doc.Status != "ok" {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, doc)
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("stsrouter_requests_total", "Solve requests routed.", rt.met.Requests.Load())
	counter("stsrouter_hedges_total", "Hedge attempts launched after the latency threshold.", rt.met.Hedges.Load())
	counter("stsrouter_failovers_total", "Attempts moved to another replica after a failure.", rt.met.Failovers.Load())
	counter("stsrouter_ejections_total", "Backends marked unhealthy by probes or failed forwards.", rt.met.Ejections.Load())
	counter("stsrouter_broadcasts_total", "Registration and value-update fan-outs.", rt.met.Broadcasts.Load())
	fmt.Fprintf(w, "# HELP stsrouter_backend_healthy Per-backend health (1 healthy, 0 ejected).\n# TYPE stsrouter_backend_healthy gauge\n")
	for _, b := range rt.backs {
		v := 0
		if b.healthy.Load() {
			v = 1
		}
		fmt.Fprintf(w, "stsrouter_backend_healthy{backend=%q} %d\n", b.base, v)
	}
}
