package serve

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"stsk"
	"stsk/internal/faultinject"
	"stsk/internal/panicsafe"
)

// withFaults enables the fault-injection plan for one test and restores
// a clean process on cleanup.
func withFaults(t *testing.T, spec string, seed uint64) {
	t.Helper()
	if err := faultinject.Enable(spec, seed); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(faultinject.Disable)
}

// quietRegistry builds a registry whose brownout controller never ticks
// on its own (Interval one hour), so tests drive the state machine by
// hand deterministically.
func quietRegistry(cfg Config) *Registry {
	if cfg.Brownout.Interval == 0 {
		cfg.Brownout.Interval = time.Hour
	}
	return NewRegistry(cfg)
}

// TestRetryPolicyBackoff pins the jittered-exponential shape: attempt n
// backs off within [base·2ⁿ⁻¹/2, base·2ⁿ⁻¹], capped at MaxBackoff.
func TestRetryPolicyBackoff(t *testing.T) {
	p := RetryPolicy{}.withDefaults()
	for attempt := 1; attempt <= 8; attempt++ {
		want := p.BaseBackoff << (attempt - 1)
		if want > p.MaxBackoff || want <= 0 {
			want = p.MaxBackoff
		}
		for i := 0; i < 50; i++ {
			d := p.backoff(attempt)
			if d < want/2 || d > want {
				t.Fatalf("attempt %d: backoff %v outside [%v, %v]", attempt, d, want/2, want)
			}
		}
	}
}

// TestSleepRetryHonorsDeadline: a backoff the deadline cannot afford is
// refused without sleeping, and a cancellation interrupts the sleep.
func TestSleepRetryHonorsDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
	defer cancel()
	begin := time.Now()
	if sleepRetry(ctx, 50*time.Millisecond) {
		t.Fatal("sleepRetry slept past the context deadline budget")
	}
	if elapsed := time.Since(begin); elapsed > 20*time.Millisecond {
		t.Fatalf("deadline-refused sleep took %v, want immediate", elapsed)
	}
	ctx2, cancel2 := context.WithCancel(context.Background())
	go func() { time.Sleep(time.Millisecond); cancel2() }()
	if sleepRetry(ctx2, 10*time.Second) {
		t.Fatal("sleepRetry outlived its context cancellation")
	}
}

// TestSolveRetriesTransientSaturation: injected queue saturation on the
// first enqueue attempts is absorbed by the retry policy — the request
// still succeeds bitwise, and the retries are counted.
func TestSolveRetriesTransientSaturation(t *testing.T) {
	reg := quietRegistry(Config{})
	defer reg.Close()
	hp := buildHammerPlan(t, reg, "g3", "grid3d", 1000, 1)

	// Fire on the first two enqueue invocations only: attempt 1 and 2
	// bounce with ErrQueueFull, attempt 3 (of the default 3) succeeds.
	withFaults(t, "coalescer.enqueue:saturate:count=2", 1)
	x, err := reg.Solve(context.Background(), "g3", VariantDirect, false, hp.bs[0])
	if err != nil {
		t.Fatalf("solve should have survived 2 injected saturations: %v", err)
	}
	assertBitwise(t, x, hp.fwd[0], "post-retry solve")
	snap := reg.Metrics().Snapshot()
	if snap.Retries != 2 {
		t.Errorf("retries = %d, want 2", snap.Retries)
	}
	if snap.Rejected != 0 {
		t.Errorf("rejected = %d, want 0 (retries absorbed the saturation)", snap.Rejected)
	}
}

// TestSolveRetryExhaustion: saturation on every attempt exhausts the
// budget and surfaces ErrQueueFull (HTTP 429), counted as rejected.
func TestSolveRetryExhaustion(t *testing.T) {
	reg := quietRegistry(Config{Retry: RetryPolicy{MaxAttempts: 2, BaseBackoff: 100 * time.Microsecond}})
	defer reg.Close()
	hp := buildHammerPlan(t, reg, "g3", "grid3d", 1000, 1)

	withFaults(t, "coalescer.enqueue:saturate", 1)
	_, err := reg.Solve(context.Background(), "g3", VariantDirect, false, hp.bs[0])
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull after exhausted retries", err)
	}
	snap := reg.Metrics().Snapshot()
	if snap.Rejected != 1 || snap.Retries != 1 {
		t.Errorf("rejected/retries = %d/%d, want 1/1", snap.Rejected, snap.Retries)
	}
}

// TestSolveRetryNeverOutlivesDeadline: with permanent saturation and a
// deadline smaller than one backoff, the retry loop gives up promptly
// instead of sleeping past the budget.
func TestSolveRetryNeverOutlivesDeadline(t *testing.T) {
	reg := quietRegistry(Config{Retry: RetryPolicy{MaxAttempts: 5, BaseBackoff: 200 * time.Millisecond, MaxBackoff: time.Second}})
	defer reg.Close()
	hp := buildHammerPlan(t, reg, "g3", "grid3d", 1000, 1)

	withFaults(t, "coalescer.enqueue:saturate", 1)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	begin := time.Now()
	_, err := reg.Solve(ctx, "g3", VariantDirect, false, hp.bs[0])
	if elapsed := time.Since(begin); elapsed > 150*time.Millisecond {
		t.Fatalf("retry loop ran %v under a 20ms deadline", elapsed)
	}
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want the original ErrQueueFull back", err)
	}
}

// TestSolvePanicRecoveredEndToEnd: a kernel panic injected at the engine
// job boundary surfaces as a contained ErrInternal (HTTP 500), bumps the
// panics-recovered counter, and leaves the plan serving bitwise-correct
// solutions afterwards.
func TestSolvePanicRecoveredEndToEnd(t *testing.T) {
	reg := quietRegistry(Config{})
	defer reg.Close()
	hp := buildHammerPlan(t, reg, "g3", "grid3d", 1000, 1)

	withFaults(t, "engine.job:panic:count=1", 1)
	_, err := reg.Solve(context.Background(), "g3", VariantDirect, false, hp.bs[0])
	if !errors.Is(err, panicsafe.ErrInternal) {
		t.Fatalf("err = %v, want a contained ErrInternal", err)
	}
	if stack := panicsafe.Stack(err); len(stack) == 0 {
		t.Error("contained panic lost its stack trace")
	}
	faultinject.Disable()

	x, err := reg.Solve(context.Background(), "g3", VariantDirect, false, hp.bs[0])
	if err != nil {
		t.Fatalf("post-panic solve: %v", err)
	}
	assertBitwise(t, x, hp.fwd[0], "post-panic solve")
	snap := reg.Metrics().Snapshot()
	if snap.PanicsRecovered != 1 {
		t.Errorf("panics recovered = %d, want 1", snap.PanicsRecovered)
	}
	if snap.Failed != 1 {
		t.Errorf("failed = %d, want 1", snap.Failed)
	}
}

// TestBrownoutStateMachine drives the controller's evaluate by hand:
// a latency spike degrades (shrinking the flush deadline), degraded mode
// sheds low-priority requests and refuses cold builds, and RecoverTicks
// calm evaluations heal everything back.
func TestBrownoutStateMachine(t *testing.T) {
	cfg := Config{
		FlushDelay: 800 * time.Microsecond,
		Brownout: BrownoutConfig{
			Interval:       time.Hour, // ticks driven by hand
			DegradeLatency: 10 * time.Millisecond,
			RecoverTicks:   3,
		},
	}
	reg := quietRegistry(cfg)
	defer reg.Close()
	hp := buildHammerPlan(t, reg, "resident", "grid3d", 800, 1)

	if st, _ := reg.BrownoutState(); st != BrownoutHealthy {
		t.Fatalf("fresh registry state = %v, want healthy", st)
	}
	if err := reg.AdmitPriority(0); err != nil {
		t.Fatalf("healthy registry shed a request: %v", err)
	}

	// A window where most solves breach DegradeLatency trips the
	// controller on its next tick.
	for i := 0; i < 8; i++ {
		reg.met.ObserveLatency(50 * time.Millisecond)
	}
	reg.brown.evaluate()
	st, reason := reg.BrownoutState()
	if st != BrownoutDegraded {
		t.Fatalf("state after latency spike = %v, want degraded", st)
	}
	if !strings.Contains(reason, "latency") {
		t.Errorf("degrade reason = %q, want a latency reason", reason)
	}
	if got, want := reg.flushNs.Load(), int64(cfg.FlushDelay)/4; got != want {
		t.Errorf("degraded flush deadline = %dns, want %dns", got, want)
	}

	// Degraded: default threshold sheds only priority < 1.
	if err := reg.AdmitPriority(0); !errors.Is(err, ErrShed) {
		t.Fatalf("priority-0 admit while degraded: %v, want ErrShed", err)
	}
	if err := reg.AdmitPriority(1); err != nil {
		t.Fatalf("priority-1 admit while degraded: %v, want admitted", err)
	}

	// Degraded: cold plan builds are refused, resident plans still serve.
	if _, err := reg.Register(PlanSpec{Name: "cold", Class: "trimesh", N: 500}); !errors.Is(err, ErrDegraded) {
		t.Fatalf("cold build while degraded: %v, want ErrDegraded", err)
	}
	x, err := reg.Solve(context.Background(), "resident", VariantDirect, false, hp.bs[0])
	if err != nil {
		t.Fatalf("resident solve while degraded: %v", err)
	}
	assertBitwise(t, x, hp.fwd[0], "degraded resident solve")

	// Hysteresis: fewer than RecoverTicks calm evaluations do not heal.
	reg.brown.evaluate()
	reg.brown.evaluate()
	if st, _ := reg.BrownoutState(); st != BrownoutDegraded {
		t.Fatal("healed before RecoverTicks calm evaluations")
	}
	reg.brown.evaluate()
	if st, _ := reg.BrownoutState(); st != BrownoutHealthy {
		t.Fatalf("state after %d calm ticks = %v, want healthy", 3, st)
	}
	if got := reg.flushNs.Load(); got != int64(cfg.FlushDelay) {
		t.Errorf("healed flush deadline = %dns, want %dns restored", got, int64(cfg.FlushDelay))
	}
	if _, err := reg.Register(PlanSpec{Name: "cold", Class: "trimesh", N: 500}); err != nil {
		t.Fatalf("cold build after heal: %v", err)
	}

	snap := reg.Metrics().Snapshot()
	if snap.Shed != 1 {
		t.Errorf("shed = %d, want 1", snap.Shed)
	}
}

// TestBrownoutQueuePressure: evaluate degrades on queue depth too, with
// the reason naming the queue. The pressure gauge is read off unstarted
// coalescers (no dispatcher to race) wired straight into the registry.
func TestBrownoutQueuePressure(t *testing.T) {
	reg := quietRegistry(Config{QueueCap: 4})
	defer reg.Close()
	ref := refPlan(t, "grid3d", 500, stsk.STS3)
	solver := ref.NewSolver()
	st := &planState{base: variantState{
		plan:   ref,
		solver: solver,
		lower:  newCoalescer(solver, false, 8, 4, flushNanos(time.Millisecond), reg.met),
		upper:  newCoalescer(solver, true, 8, 4, flushNanos(time.Millisecond), reg.met),
	}}
	reg.mu.Lock()
	reg.entries["fake"] = &entry{spec: PlanSpec{Name: "fake"}, st: st}
	reg.mu.Unlock()

	// 7 of the 8 summed slots (2 coalescers × cap 4) → frac 0.875 ≥ 0.75.
	for i := 0; i < 4; i++ {
		st.base.lower.queue <- &solveReq{ctx: context.Background(), done: make(chan error, 1)}
	}
	for i := 0; i < 3; i++ {
		st.base.upper.queue <- &solveReq{ctx: context.Background(), done: make(chan error, 1)}
	}
	reg.brown.evaluate()
	bst, reason := reg.BrownoutState()
	if bst != BrownoutDegraded || !strings.Contains(reason, "queue") {
		t.Fatalf("state/reason = %v/%q, want degraded on queue depth", bst, reason)
	}
}

// TestServerFaultSurface drives the transport-layer fault contract over
// HTTP: Retry-After headers and retryAfterMs on retriable refusals,
// X-STS-Priority shedding, the degraded and draining /healthz documents,
// and the 500 mapping for contained panics.
func TestServerFaultSurface(t *testing.T) {
	reg := quietRegistry(Config{})
	srv := NewServer(reg)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Close()
	hp := buildHammerPlan(t, reg, "g3", "grid3d", 900, 1)

	solveBody := SolveRequest{Plan: "g3", B: hp.bs[0]}
	get := func(path string) (*http.Response, []byte) {
		t.Helper()
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		out, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp, out
	}

	// Healthy: 200 ok, no reason.
	resp, body := get("/healthz")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"ok"`) {
		t.Fatalf("healthy /healthz: %d %s", resp.StatusCode, body)
	}

	// Contained panic → 500, metric visible at /metrics.
	withFaults(t, "engine.job:panic:count=1", 1)
	resp, body = postJSON(t, ts.Client(), ts.URL+"/v1/solve", solveBody)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicked solve: %d %s, want 500", resp.StatusCode, body)
	}
	faultinject.Disable()
	resp, body = get("/metrics")
	if !strings.Contains(string(body), "stsserve_panics_recovered_total 1") {
		t.Errorf("metrics missing recovered panic: %d %s", resp.StatusCode, body)
	}

	// Degraded: /healthz 503 "degraded" with reason; unprioritized solve
	// shed with 429 + Retry-After; prioritized solve passes bitwise.
	reg.brown.degrade("latency over threshold")
	resp, body = get("/healthz")
	if resp.StatusCode != http.StatusServiceUnavailable ||
		!strings.Contains(string(body), `"degraded"`) ||
		!strings.Contains(string(body), "latency over threshold") {
		t.Fatalf("degraded /healthz: %d %s", resp.StatusCode, body)
	}
	resp, body = postJSON(t, ts.Client(), ts.URL+"/v1/solve", solveBody)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("shed solve: %d %s, want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") != "1" {
		t.Errorf("shed Retry-After = %q, want \"1\"", resp.Header.Get("Retry-After"))
	}
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil || eb.RetryAfterMs != 1000 {
		t.Errorf("shed retryAfterMs = %d (err %v), want 1000", eb.RetryAfterMs, err)
	}

	raw, _ := json.Marshal(solveBody)
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/solve", strings.NewReader(string(raw)))
	req.Header.Set("X-STS-Priority", "3")
	presp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var sr SolveResponse
	if err := json.NewDecoder(presp.Body).Decode(&sr); err != nil || presp.StatusCode != http.StatusOK {
		t.Fatalf("prioritized solve: %d (%v)", presp.StatusCode, err)
	}
	presp.Body.Close()
	assertBitwise(t, sr.X, hp.fwd[0], "prioritized degraded solve")
	reg.brown.heal()

	// Draining via BeginDrain: health 503 "draining", solve 503 with the
	// 2s Retry-After, yet the registry stays open underneath.
	srv.BeginDrain()
	resp, body = get("/healthz")
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(body), `"draining"`) {
		t.Fatalf("draining /healthz: %d %s", resp.StatusCode, body)
	}
	resp, body = postJSON(t, ts.Client(), ts.URL+"/v1/solve", solveBody)
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") != "2" {
		t.Fatalf("draining solve: %d Retry-After=%q %s, want 503/2", resp.StatusCode, resp.Header.Get("Retry-After"), body)
	}
	if reg.Draining() {
		t.Fatal("BeginDrain closed the registry — it must only mark the transport")
	}
}

// TestHealthzReportsRegistryClosed pins the fixed blind spot: a registry
// closed out from under the server (embedder-driven shutdown) must turn
// /healthz into a draining 503 even though the server itself was never
// told to drain.
func TestHealthzReportsRegistryClosed(t *testing.T) {
	reg := quietRegistry(Config{})
	srv := NewServer(reg)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	reg.Close()
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hb healthBody
	if err := json.NewDecoder(resp.Body).Decode(&hb); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable || hb.Status != "draining" {
		t.Fatalf("/healthz after registry close: %d %+v, want 503 draining", resp.StatusCode, hb)
	}
	if hb.Reason == "" {
		t.Error("registry-closed health report lost its reason")
	}
}
