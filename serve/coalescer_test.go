package serve

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"stsk"
)

// flushNanos builds the shared flush-deadline cell a registry would own.
func flushNanos(d time.Duration) *atomic.Int64 {
	var v atomic.Int64
	v.Store(int64(d))
	return &v
}

// TestCoalescerDeadlineFlushPartialPanel pins the deadline-flush path
// deterministically: three requests are queued before the dispatcher
// starts, fewer than the panel width, so the flush timer — not a full
// panel — must ship them, as ONE batch of width 3.
func TestCoalescerDeadlineFlushPartialPanel(t *testing.T) {
	ref := refPlan(t, "grid3d", 1000, stsk.STS3)
	solver := ref.NewSolver(stsk.WithBlockWidth(8))
	defer solver.Close()
	met := &Metrics{}
	c := newCoalescer(solver, false, 8, 64, flushNanos(5*time.Millisecond), met)

	reqs := make([]*solveReq, 3)
	for i := range reqs {
		b := manufacturedRHS(ref, i)
		reqs[i] = &solveReq{ctx: context.Background(), b: b, x: make([]float64, ref.N()), done: make(chan error, 1)}
		if err := c.enqueue(reqs[i]); err != nil {
			t.Fatal(err)
		}
	}
	c.start()
	for i, r := range reqs {
		if err := <-r.done; err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		want, _ := ref.Solve(r.b)
		assertBitwise(t, r.x, want, "flushed request")
	}
	c.close()

	snap := met.Snapshot()
	if snap.Batches != 1 {
		t.Errorf("batches = %d, want 1 (partial panel must ship on the flush deadline)", snap.Batches)
	}
	if snap.WidthSum != 3 {
		t.Errorf("width sum = %d, want 3", snap.WidthSum)
	}
}

// TestCoalescerQueueFull pins admission control: with the dispatcher not
// yet draining, a queue at capacity bounces further requests with
// ErrQueueFull instead of queueing unboundedly.
func TestCoalescerQueueFull(t *testing.T) {
	ref := refPlan(t, "grid3d", 500, stsk.STS3)
	solver := ref.NewSolver()
	defer solver.Close()
	c := newCoalescer(solver, false, 8, 2, flushNanos(time.Millisecond), &Metrics{})

	mk := func(i int) *solveReq {
		return &solveReq{ctx: context.Background(), b: manufacturedRHS(ref, i), x: make([]float64, ref.N()), done: make(chan error, 1)}
	}
	q1, q2 := mk(1), mk(2)
	if err := c.enqueue(q1); err != nil {
		t.Fatal(err)
	}
	if err := c.enqueue(q2); err != nil {
		t.Fatal(err)
	}
	if err := c.enqueue(mk(3)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third enqueue on cap-2 queue: err = %v, want ErrQueueFull", err)
	}
	// Close drains gracefully: the two admitted requests still complete.
	c.start()
	c.close()
	for i, r := range []*solveReq{q1, q2} {
		if err := <-r.done; err != nil {
			t.Fatalf("drained request %d: %v", i, err)
		}
	}
	if err := c.enqueue(mk(4)); !errors.Is(err, errCoalescerClosed) {
		t.Fatalf("enqueue after close: err = %v, want errCoalescerClosed", err)
	}
}

// hammerPlan pairs a registry spec with an identically built reference
// plan's pre-manufactured right-hand sides and expected solutions.
type hammerPlan struct {
	name string
	bs   [][]float64
	fwd  [][]float64
	bwd  [][]float64
}

func buildHammerPlan(t *testing.T, reg *Registry, name, class string, n, nrhs int) *hammerPlan {
	t.Helper()
	if _, err := reg.Register(PlanSpec{Name: name, Class: class, N: n}); err != nil {
		t.Fatal(err)
	}
	ref := refPlan(t, class, n, stsk.STS3)
	hp := &hammerPlan{name: name}
	for i := 0; i < nrhs; i++ {
		b := manufacturedRHS(ref, 100*i+len(class))
		f, err := ref.Solve(b)
		if err != nil {
			t.Fatal(err)
		}
		u, err := ref.SolveUpper(b)
		if err != nil {
			t.Fatal(err)
		}
		hp.bs = append(hp.bs, b)
		hp.fwd = append(hp.fwd, f)
		hp.bwd = append(hp.bwd, u)
	}
	return hp
}

// TestCoalescerHammer race-hammers the full serving path: N goroutines ×
// mixed plans × both sweep directions × random cancellations, asserting
// every successful response is bitwise identical to Plan.Solve and every
// failure is a context error — and that cancelled requests never poison
// the shared solver for their panel-mates.
func TestCoalescerHammer(t *testing.T) {
	reg := NewRegistry(Config{FlushDelay: 200 * time.Microsecond, QueueCap: 1024})
	defer reg.Close()
	plans := []*hammerPlan{
		buildHammerPlan(t, reg, "g3", "grid3d", 1200, 6),
		buildHammerPlan(t, reg, "tm", "trimesh", 1200, 6),
	}

	const goroutines = 8
	const iters = 50
	var cancelled, solved atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for it := 0; it < iters; it++ {
				hp := plans[rng.Intn(len(plans))]
				ri := rng.Intn(len(hp.bs))
				upper := rng.Intn(2) == 1
				ctx := context.Background()
				var cancel context.CancelFunc
				doomed := rng.Intn(4) == 0
				if doomed {
					ctx, cancel = context.WithCancel(ctx)
					cancel() // dead before it even queues
				}
				x, err := reg.Solve(ctx, hp.name, VariantDirect, upper, hp.bs[ri])
				if cancel != nil {
					cancel()
				}
				switch {
				case err == nil:
					want := hp.fwd[ri]
					if upper {
						want = hp.bwd[ri]
					}
					for i := range x {
						if x[i] != want[i] {
							t.Errorf("%s upper=%v rhs %d: bit difference at %d", hp.name, upper, ri, i)
							return
						}
					}
					solved.Add(1)
				case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
					cancelled.Add(1)
				default:
					t.Errorf("unexpected error: %v", err)
					return
				}
			}
		}(int64(g) + 42)
	}
	wg.Wait()
	if solved.Load() == 0 {
		t.Fatal("no request solved")
	}
	if cancelled.Load() == 0 {
		t.Fatal("no request cancelled — the hammer lost its random cancellations")
	}
	snap := reg.Metrics().Snapshot()
	if snap.Solved != solved.Load() || snap.Cancelled != cancelled.Load() {
		t.Errorf("metrics drift: solved %d/%d cancelled %d/%d",
			snap.Solved, solved.Load(), snap.Cancelled, cancelled.Load())
	}
}

// TestCoalescerLoadMeanWidth is the acceptance load test: ≥32 in-flight
// single-RHS requests against one plan must coalesce to a mean panel
// width above 2 with every solution bitwise identical to Plan.Solve.
func TestCoalescerLoadMeanWidth(t *testing.T) {
	reg := NewRegistry(Config{FlushDelay: time.Millisecond, QueueCap: 256})
	defer reg.Close()
	hp := buildHammerPlan(t, reg, "g3", "grid3d", 3000, 8)

	const clients = 32
	const perClient = 25
	var wg sync.WaitGroup
	var failures atomic.Int64
	start := make(chan struct{})
	for cidx := 0; cidx < clients; cidx++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			<-start
			for it := 0; it < perClient; it++ {
				ri := rng.Intn(len(hp.bs))
				x, err := reg.Solve(context.Background(), "g3", VariantDirect, false, hp.bs[ri])
				if err != nil {
					t.Errorf("solve: %v", err)
					failures.Add(1)
					return
				}
				for i := range x {
					if x[i] != hp.fwd[ri][i] {
						t.Errorf("rhs %d: bit difference at %d", ri, i)
						failures.Add(1)
						return
					}
				}
			}
		}(int64(cidx))
	}
	close(start)
	wg.Wait()
	if failures.Load() > 0 {
		t.FailNow()
	}
	snap := reg.Metrics().Snapshot()
	if snap.Solved != clients*perClient {
		t.Fatalf("solved = %d, want %d", snap.Solved, clients*perClient)
	}
	if w := snap.MeanPanelWidth(); w <= 2 {
		t.Errorf("mean panel width = %.2f, want > 2 under %d concurrent clients", w, clients)
	} else {
		t.Logf("mean panel width %.2f over %d batches", w, snap.Batches)
	}
}

// TestCoalescerCancelPromptness: a request with an expired deadline
// returns promptly even while the queue is busy, and the shared solver
// keeps serving correct solutions afterwards.
func TestCoalescerCancelPromptness(t *testing.T) {
	reg := NewRegistry(Config{FlushDelay: time.Millisecond})
	defer reg.Close()
	hp := buildHammerPlan(t, reg, "g3", "grid3d", 2000, 2)

	// Background load keeps the dispatcher busy.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_, _ = reg.Solve(context.Background(), "g3", VariantDirect, false, hp.bs[0])
				}
			}
		}()
	}
	for i := 0; i < 20; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 50*time.Microsecond)
		begin := time.Now()
		_, err := reg.Solve(ctx, "g3", VariantDirect, false, hp.bs[1])
		elapsed := time.Since(begin)
		cancel()
		if err != nil && !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled) {
			t.Fatalf("doomed solve %d: unexpected error %v", i, err)
		}
		if elapsed > 2*time.Second {
			t.Fatalf("doomed solve %d took %v — cancellation is not prompt", i, elapsed)
		}
	}
	close(stop)
	wg.Wait()

	// Not poisoned: a clean solve still answers bitwise.
	x, err := reg.Solve(context.Background(), "g3", VariantDirect, false, hp.bs[1])
	if err != nil {
		t.Fatal(err)
	}
	assertBitwise(t, x, hp.fwd[1], "post-cancellation solve")
}
