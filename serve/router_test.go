package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// fakeReplica is a scripted stsserve backend for router tests.
type fakeReplica struct {
	srv      *httptest.Server
	solves   atomic.Int64
	plans    atomic.Int64
	values   atomic.Int64
	priority atomic.Value // last X-STS-Priority seen on /v1/solve
	delay    time.Duration
	status   int // response code for /v1/solve (default 200)
	healthy  atomic.Bool
}

func newFakeReplica(t *testing.T, tag string, delay time.Duration, status int) *fakeReplica {
	t.Helper()
	f := &fakeReplica{delay: delay, status: status}
	f.healthy.Store(true)
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/solve", func(w http.ResponseWriter, r *http.Request) {
		f.solves.Add(1)
		f.priority.Store(r.Header.Get("X-STS-Priority"))
		if f.delay > 0 {
			select {
			case <-time.After(f.delay):
			case <-r.Context().Done():
				return
			}
		}
		if f.status != 0 && f.status != http.StatusOK {
			http.Error(w, "scripted failure", f.status)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"x":[1],"replica":%q}`, tag)
	})
	mux.HandleFunc("POST /v1/plans", func(w http.ResponseWriter, r *http.Request) {
		f.plans.Add(1)
		w.WriteHeader(http.StatusCreated)
		fmt.Fprintf(w, `{"name":"ok"}`)
	})
	mux.HandleFunc("PUT /v1/plans/{name}/values", func(w http.ResponseWriter, r *http.Request) {
		f.values.Add(1)
		fmt.Fprintf(w, `{"version":2}`)
	})
	mux.HandleFunc("GET /v1/plans", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, `{"plans":[],"replica":%q}`, tag)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if !f.healthy.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprint(w, `{"status":"ok"}`)
	})
	f.srv = httptest.NewServer(mux)
	t.Cleanup(f.srv.Close)
	return f
}

func newTestRouter(t *testing.T, cfg RouterConfig) *Router {
	t.Helper()
	rt, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt
}

func routerSolve(t *testing.T, rt *Router, plan string, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	body := strings.NewReader(fmt.Sprintf(`{"plan":%q,"b":[1]}`, plan))
	req := httptest.NewRequest(http.MethodPost, "/v1/solve", body)
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	w := httptest.NewRecorder()
	rt.ServeHTTP(w, req)
	return w
}

// TestRouterFailover kills one replica outright: every solve must still
// answer 200 from the survivor — the router never surfaces a 5xx of its
// own while any replica can serve.
func TestRouterFailover(t *testing.T) {
	alive := newFakeReplica(t, "alive", 0, 0)
	dead := newFakeReplica(t, "dead", 0, 0)
	dead.srv.Close() // transport-level death, no graceful drain

	rt := newTestRouter(t, RouterConfig{
		Backends:       []string{alive.srv.URL, dead.srv.URL},
		HealthInterval: time.Hour, // passive ejection only
		HedgeAfter:     -1,
	})
	for i := 0; i < 20; i++ {
		w := routerSolve(t, rt, fmt.Sprintf("plan-%d", i), nil)
		if w.Code != http.StatusOK {
			t.Fatalf("solve %d: status %d, body %s", i, w.Code, w.Body.String())
		}
	}
	if rt.Metrics().Ejections.Load() < 1 {
		t.Fatal("dead replica never ejected passively")
	}
	// After ejection the dead replica is deprioritized: failovers stop.
	before := rt.Metrics().Failovers.Load()
	for i := 0; i < 10; i++ {
		if w := routerSolve(t, rt, fmt.Sprintf("plan-%d", i), nil); w.Code != http.StatusOK {
			t.Fatalf("post-ejection solve %d: status %d", i, w.Code)
		}
	}
	if after := rt.Metrics().Failovers.Load(); after != before {
		t.Fatalf("failovers kept climbing after ejection: %d -> %d", before, after)
	}
}

// TestRouterAllDead exhausts every replica: the router answers 502 (bad
// gateway), never a 500 of its own.
func TestRouterAllDead(t *testing.T) {
	a := newFakeReplica(t, "a", 0, 0)
	b := newFakeReplica(t, "b", 0, 0)
	a.srv.Close()
	b.srv.Close()
	rt := newTestRouter(t, RouterConfig{
		Backends:       []string{a.srv.URL, b.srv.URL},
		HealthInterval: time.Hour,
		HedgeAfter:     -1,
	})
	w := routerSolve(t, rt, "p", nil)
	if w.Code != http.StatusBadGateway {
		t.Fatalf("all-dead status = %d, want 502", w.Code)
	}
}

// TestRouterRelays4xx confirms client errors pass through verbatim
// instead of triggering failover — a bad request fails identically on
// every replica.
func TestRouterRelays4xx(t *testing.T) {
	a := newFakeReplica(t, "a", 0, http.StatusNotFound)
	b := newFakeReplica(t, "b", 0, http.StatusNotFound)
	rt := newTestRouter(t, RouterConfig{
		Backends:       []string{a.srv.URL, b.srv.URL},
		HealthInterval: time.Hour,
		HedgeAfter:     -1,
	})
	w := routerSolve(t, rt, "p", nil)
	if w.Code != http.StatusNotFound {
		t.Fatalf("status = %d, want the replica's 404", w.Code)
	}
	if a.solves.Load()+b.solves.Load() != 1 {
		t.Fatalf("4xx caused failover: %d+%d attempts", a.solves.Load(), b.solves.Load())
	}
}

// TestRouterHedging pins a plan to a slow replica: after HedgeAfter the
// router launches the same solve on the next replica and relays
// whichever answers first.
func TestRouterHedging(t *testing.T) {
	slow := newFakeReplica(t, "slow", 300*time.Millisecond, 0)
	fast := newFakeReplica(t, "fast", 0, 0)
	rt := newTestRouter(t, RouterConfig{
		Backends:       []string{slow.srv.URL, fast.srv.URL},
		HealthInterval: time.Hour,
		HedgeAfter:     10 * time.Millisecond,
	})
	// Find a plan name the ring routes to the slow replica first.
	plan := ""
	for i := 0; i < 256; i++ {
		name := fmt.Sprintf("pin-%d", i)
		if rt.backs[rt.candidates(name)[0]].base == strings.TrimRight(slow.srv.URL, "/") {
			plan = name
			break
		}
	}
	if plan == "" {
		t.Fatal("no plan hashes to the slow replica")
	}
	start := time.Now()
	w := routerSolve(t, rt, plan, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d", w.Code)
	}
	var resp struct {
		Replica string `json:"replica"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Replica != "fast" {
		t.Fatalf("hedge lost: answered by %q", resp.Replica)
	}
	if d := time.Since(start); d > 250*time.Millisecond {
		t.Fatalf("hedged solve took %v, slower than the slow replica", d)
	}
	if rt.Metrics().Hedges.Load() < 1 {
		t.Fatal("hedge not counted")
	}
}

// TestRouterPriorityPassthrough: X-STS-Priority reaches the replica so
// brownout shedding composes through the router.
func TestRouterPriorityPassthrough(t *testing.T) {
	a := newFakeReplica(t, "a", 0, 0)
	rt := newTestRouter(t, RouterConfig{
		Backends:       []string{a.srv.URL},
		HealthInterval: time.Hour,
		HedgeAfter:     -1,
	})
	w := routerSolve(t, rt, "p", map[string]string{"X-STS-Priority": "high"})
	if w.Code != http.StatusOK {
		t.Fatalf("status %d", w.Code)
	}
	if got, _ := a.priority.Load().(string); got != "high" {
		t.Fatalf("replica saw priority %q, want %q", got, "high")
	}
}

// TestRouterBroadcast: registrations and value updates fan out to every
// healthy replica.
func TestRouterBroadcast(t *testing.T) {
	a := newFakeReplica(t, "a", 0, 0)
	b := newFakeReplica(t, "b", 0, 0)
	rt := newTestRouter(t, RouterConfig{
		Backends:       []string{a.srv.URL, b.srv.URL},
		HealthInterval: time.Hour,
		HedgeAfter:     -1,
	})
	req := httptest.NewRequest(http.MethodPost, "/v1/plans", strings.NewReader(`{"name":"g"}`))
	w := httptest.NewRecorder()
	rt.ServeHTTP(w, req)
	if w.Code != http.StatusCreated {
		t.Fatalf("register status %d", w.Code)
	}
	if a.plans.Load() != 1 || b.plans.Load() != 1 {
		t.Fatalf("registration reached %d/%d replicas, want 1/1", a.plans.Load(), b.plans.Load())
	}
	req = httptest.NewRequest(http.MethodPut, "/v1/plans/g/values", strings.NewReader(`{"values":[1]}`))
	w = httptest.NewRecorder()
	rt.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("values status %d", w.Code)
	}
	if a.values.Load() != 1 || b.values.Load() != 1 {
		t.Fatalf("values reached %d/%d replicas, want 1/1", a.values.Load(), b.values.Load())
	}
}

// TestRouterHealthEjection drives the prober: a replica turning
// unhealthy is ejected within a probe interval and revived when it
// recovers; the router's own /healthz reflects the fleet.
func TestRouterHealthEjection(t *testing.T) {
	a := newFakeReplica(t, "a", 0, 0)
	b := newFakeReplica(t, "b", 0, 0)
	rt := newTestRouter(t, RouterConfig{
		Backends:       []string{a.srv.URL, b.srv.URL},
		HealthInterval: 10 * time.Millisecond,
		HedgeAfter:     -1,
	})
	waitHealth := func(idx int, want bool) {
		deadline := time.Now().Add(5 * time.Second)
		for rt.backs[idx].healthy.Load() != want {
			if time.Now().After(deadline) {
				t.Fatalf("backend %d health never became %v", idx, want)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	b.healthy.Store(false)
	waitHealth(1, false)
	// Solves keep landing on the healthy replica only.
	for i := 0; i < 10; i++ {
		if w := routerSolve(t, rt, fmt.Sprintf("p-%d", i), nil); w.Code != http.StatusOK {
			t.Fatalf("solve during ejection: %d", w.Code)
		}
	}
	if b.solves.Load() != 0 {
		t.Fatalf("ejected replica served %d solves", b.solves.Load())
	}
	// Router /healthz still ok with one replica up.
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	w := httptest.NewRecorder()
	rt.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("router healthz = %d with one healthy replica", w.Code)
	}
	b.healthy.Store(true)
	waitHealth(1, true)
}

// TestRouterHashStability: the ring is deterministic, spreads plans
// across replicas, and keeps every plan's primary stable across calls.
func TestRouterHashStability(t *testing.T) {
	a := newFakeReplica(t, "a", 0, 0)
	b := newFakeReplica(t, "b", 0, 0)
	rt := newTestRouter(t, RouterConfig{
		Backends:       []string{a.srv.URL, b.srv.URL},
		HealthInterval: time.Hour,
		HedgeAfter:     -1,
	})
	counts := map[int]int{}
	for i := 0; i < 200; i++ {
		plan := fmt.Sprintf("plan-%d", i)
		c1 := rt.candidates(plan)
		c2 := rt.candidates(plan)
		if len(c1) != 2 || len(c2) != 2 || c1[0] != c2[0] || c1[1] != c2[1] {
			t.Fatalf("candidates for %q unstable: %v vs %v", plan, c1, c2)
		}
		counts[c1[0]]++
	}
	if counts[0] < 40 || counts[1] < 40 {
		t.Fatalf("ring skew: primary counts %v", counts)
	}
}

// TestRouterMetricsEndpoint sanity-checks the exposition.
func TestRouterMetricsEndpoint(t *testing.T) {
	a := newFakeReplica(t, "a", 0, 0)
	rt := newTestRouter(t, RouterConfig{
		Backends:       []string{a.srv.URL},
		HealthInterval: time.Hour,
		HedgeAfter:     -1,
	})
	routerSolve(t, rt, "p", nil)
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	w := httptest.NewRecorder()
	rt.ServeHTTP(w, req)
	body := w.Body.String()
	for _, want := range []string{"stsrouter_requests_total 1", "stsrouter_backend_healthy"} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
}
