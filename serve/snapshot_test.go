package serve

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"stsk"
)

// waitSnapshotWrites polls until the registry has persisted at least n
// write-behind snapshots (they run on background goroutines).
func waitSnapshotWrites(t *testing.T, reg *Registry, n int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for reg.Metrics().SnapshotWrites.Load() < n {
		if time.Now().After(deadline) {
			t.Fatalf("snapshot writes stuck at %d, want >= %d", reg.Metrics().SnapshotWrites.Load(), n)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSnapshotWarmStart is the durability round trip: a registry builds
// and updates a plan, a second registry on the same snapshot directory
// warm-starts it — no cold build, version preserved, and solves bitwise
// identical to a plan refactored with the updated values.
func TestSnapshotWarmStart(t *testing.T) {
	dir := t.TempDir()
	reg1 := NewRegistry(Config{SnapshotDir: dir})
	if _, err := reg1.Register(PlanSpec{Name: "g", Class: "grid3d", N: 900, Method: "sts3"}); err != nil {
		t.Fatal(err)
	}
	vals := scaledValues(t, "grid3d", 900, 3)
	if _, err := reg1.UpdateValues("g", vals, 0); err != nil {
		t.Fatal(err)
	}
	// Close drains the write-behind goroutines, so the directory is
	// final afterwards.
	reg1.Close()

	reg2 := NewRegistry(Config{SnapshotDir: dir})
	defer reg2.Close()
	loaded, err := reg2.WarmStart()
	if err != nil {
		t.Fatal(err)
	}
	if loaded != 1 {
		t.Fatalf("WarmStart loaded %d plans, want 1", loaded)
	}
	snap := reg2.Metrics().Snapshot()
	if snap.PlanBuilds != 0 || snap.SnapshotLoads != 1 {
		t.Fatalf("warm start: PlanBuilds=%d SnapshotLoads=%d, want 0/1", snap.PlanBuilds, snap.SnapshotLoads)
	}
	var found bool
	for _, pi := range reg2.List() {
		if pi.Spec.Name == "g" {
			found = true
			if pi.Version != 2 || !pi.Loaded {
				t.Fatalf("warm-started plan: %+v, want version 2, loaded", pi)
			}
		}
	}
	if !found {
		t.Fatal("warm start did not register the snapshotted plan")
	}

	ref := refPlan(t, "grid3d", 900, stsk.STS3)
	if err := ref.Refactor(vals); err != nil {
		t.Fatal(err)
	}
	b := manufacturedRHS(ref, 9)
	got, err := reg2.Solve(context.Background(), "g", VariantDirect, false, b)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	assertBitwise(t, got, want, "warm-started solve")
	if pb := reg2.Metrics().PlanBuilds.Load(); pb != 0 {
		t.Fatalf("solve after warm start triggered %d cold builds", pb)
	}
}

// TestSnapshotEvictionWarmReload checks the acquire-miss path: an
// evicted plan comes back from its snapshot, not a cold rebuild.
func TestSnapshotEvictionWarmReload(t *testing.T) {
	dir := t.TempDir()
	reg := NewRegistry(Config{SnapshotDir: dir, BudgetBytes: 1 << 19}) // one resident plan
	defer reg.Close()
	if _, err := reg.Register(PlanSpec{Name: "a", Class: "grid3d", N: 900, Method: "sts3"}); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Register(PlanSpec{Name: "b", Class: "grid3d", N: 900, Method: "sts3"}); err != nil {
		t.Fatal(err)
	}
	waitSnapshotWrites(t, reg, 2)
	for _, pi := range reg.List() {
		if pi.Spec.Name == "a" && pi.Loaded {
			t.Skip("budget did not evict; environment-dependent estimate")
		}
	}

	ref := refPlan(t, "grid3d", 900, stsk.STS3)
	b := manufacturedRHS(ref, 4)
	got, err := reg.Solve(context.Background(), "a", VariantDirect, false, b)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	assertBitwise(t, got, want, "warm-reloaded solve")

	snap := reg.Metrics().Snapshot()
	if snap.PlanBuilds != 2 {
		t.Fatalf("PlanBuilds=%d after warm reload, want 2 (the original cold builds)", snap.PlanBuilds)
	}
	if snap.SnapshotLoads < 1 {
		t.Fatalf("SnapshotLoads=%d, want >= 1", snap.SnapshotLoads)
	}
}

// TestSnapshotCorruptFallsBack plants garbage where the snapshot should
// be: the registry must count and remove it, then build cold — a bad
// snapshot is never worse than no snapshot.
func TestSnapshotCorruptFallsBack(t *testing.T) {
	dir := t.TempDir()
	reg := NewRegistry(Config{SnapshotDir: dir})
	defer reg.Close()
	path := filepath.Join(dir, "g.snap")
	if err := os.WriteFile(path, []byte("STSKSNAPgarbage-not-a-snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	// WarmStart refuses it.
	if loaded, err := reg.WarmStart(); err != nil || loaded != 0 {
		t.Fatalf("WarmStart on garbage: loaded=%d err=%v", loaded, err)
	}
	if reg.Metrics().SnapshotErrors.Load() < 1 {
		t.Fatal("garbage snapshot not counted")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("garbage snapshot not removed")
	}

	// Registration proceeds cold and rewrites a valid file.
	if _, err := reg.Register(PlanSpec{Name: "g", Class: "grid3d", N: 900, Method: "sts3"}); err != nil {
		t.Fatal(err)
	}
	if pb := reg.Metrics().PlanBuilds.Load(); pb != 1 {
		t.Fatalf("PlanBuilds=%d, want 1", pb)
	}
	waitSnapshotWrites(t, reg, 1)
	if _, _, err := stsk.ReadSnapshotFile(path); err != nil {
		t.Fatalf("rewritten snapshot invalid: %v", err)
	}
}

// TestSnapshotSpecMismatchDiscarded re-registers a name with a different
// spec: the old snapshot describes a different system and must be
// discarded, not loaded.
func TestSnapshotSpecMismatchDiscarded(t *testing.T) {
	dir := t.TempDir()
	reg1 := NewRegistry(Config{SnapshotDir: dir})
	if _, err := reg1.Register(PlanSpec{Name: "g", Class: "grid3d", N: 900, Method: "sts3"}); err != nil {
		t.Fatal(err)
	}
	reg1.Close()

	reg2 := NewRegistry(Config{SnapshotDir: dir})
	defer reg2.Close()
	if _, err := reg2.Register(PlanSpec{Name: "g", Class: "grid2d", N: 1600, Method: "sts3"}); err != nil {
		t.Fatal(err)
	}
	snap := reg2.Metrics().Snapshot()
	if snap.PlanBuilds != 1 || snap.SnapshotLoads != 0 {
		t.Fatalf("PlanBuilds=%d SnapshotLoads=%d, want 1/0 (mismatched snapshot must not load)", snap.PlanBuilds, snap.SnapshotLoads)
	}
	if snap.SnapshotErrors < 1 {
		t.Fatal("mismatched snapshot not counted as discarded")
	}
}

// TestWarmStartRefusesRenamedSnapshot moves one plan's snapshot under
// another name: the file-name/spec binding check must refuse it, so a
// snapshot cannot install itself into another plan's slot.
func TestWarmStartRefusesRenamedSnapshot(t *testing.T) {
	dir := t.TempDir()
	reg1 := NewRegistry(Config{SnapshotDir: dir})
	if _, err := reg1.Register(PlanSpec{Name: "a", Class: "grid3d", N: 900, Method: "sts3"}); err != nil {
		t.Fatal(err)
	}
	reg1.Close()
	if err := os.Rename(filepath.Join(dir, "a.snap"), filepath.Join(dir, "b.snap")); err != nil {
		t.Fatal(err)
	}

	reg2 := NewRegistry(Config{SnapshotDir: dir})
	defer reg2.Close()
	loaded, err := reg2.WarmStart()
	if err != nil {
		t.Fatal(err)
	}
	if loaded != 0 {
		t.Fatalf("renamed snapshot loaded %d plans, want 0", loaded)
	}
	if reg2.Metrics().SnapshotErrors.Load() < 1 {
		t.Fatal("renamed snapshot not counted as discarded")
	}
}
