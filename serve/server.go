package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"stsk"
	"stsk/internal/faultinject"
	"stsk/internal/trace"
)

// Server is the HTTP JSON transport over a Registry — stdlib net/http
// only, no dependencies. Routes:
//
//	POST /v1/plans                 register a PlanSpec and build it (409 on conflict)
//	GET  /v1/plans                 list registered plans and their residency
//	PUT  /v1/plans/{name}/values   swap in new matrix values (numeric refactorization)
//	POST /v1/solve                 solve one right-hand side (coalesced onto panels)
//	GET  /healthz                  liveness + drain state
//	GET  /metrics                  Prometheus text exposition
//	GET  /debug/traces             slow-trace ring (per-stage breakdowns)
//
// Admission control surfaces as 429 (coalescer queue full), per-request
// deadlines as 408, and a draining server as 503. Close marks the server
// draining and gracefully drains the registry: queued solves complete,
// new requests bounce.
type Server struct {
	reg       *Registry
	mux       *http.ServeMux
	draining  atomic.Bool
	closeOnce sync.Once
	start     time.Time
}

// NewServer wraps a registry with the HTTP API.
func NewServer(reg *Registry) *Server {
	s := &Server{reg: reg, mux: http.NewServeMux(), start: time.Now()}
	s.mux.HandleFunc("POST /v1/plans", s.handleRegister)
	s.mux.HandleFunc("GET /v1/plans", s.handleList)
	s.mux.HandleFunc("PUT /v1/plans/{name}/values", s.handleUpdateValues)
	s.mux.HandleFunc("POST /v1/solve", s.handleSolve)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /debug/traces", s.handleTraces)
	return s
}

// Registry returns the server's registry.
func (s *Server) Registry() *Registry { return s.reg }

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// BeginDrain marks the server draining without closing the registry:
// new plan and solve requests answer 503 with a Retry-After while
// requests already queued in the coalescers keep completing, and
// /healthz flips to "draining" so load balancers stop routing here. A
// daemon calls this the moment it catches SIGTERM, serves its drain
// grace period, and then calls Close.
func (s *Server) BeginDrain() {
	s.draining.Store(true)
}

// Close drains and stops serving: subsequent plan and solve requests
// answer 503 while in-flight ones (including every request already
// queued in a coalescer) complete. Intended order in a daemon:
// http.Server.Shutdown first (stop accepting connections), then Close.
func (s *Server) Close() {
	s.draining.Store(true)
	s.closeOnce.Do(s.reg.Close)
}

// Request-body caps: a solve body is dominated by the right-hand side
// (~20 chars per float64 in JSON, so 256 MiB covers ~10M rows with slack);
// a plan spec is a few hundred bytes of names and integers.
const (
	maxSolveBody = 256 << 20
	maxPlanBody  = 1 << 20
)

// errorBody is the uniform error envelope. RetryAfterMs mirrors the
// Retry-After header (which only has 1-second resolution) for retriable
// refusals, so clients can back off programmatically.
type errorBody struct {
	Error        string `json:"error"`
	RetryAfterMs int64  `json:"retryAfterMs,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	// Marshal before touching the status line: an unencodable value (a
	// solution that overflowed to ±Inf/NaN, which JSON cannot carry) must
	// surface as a 500, not a 200 with an empty body.
	raw, err := json.Marshal(v)
	if err != nil {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		_, _ = w.Write([]byte(`{"error":"response not representable in JSON (non-finite values?)"}` + "\n"))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_, _ = w.Write(append(raw, '\n'))
}

// writeError renders the error envelope with the given back-off hint
// (0 = none). The Retry-After header rounds the hint up to whole seconds
// (RFC 9110 delay-seconds); the JSON body carries the precise value.
func writeError(w http.ResponseWriter, code int, err error, hint time.Duration) {
	body := errorBody{Error: err.Error()}
	if hint > 0 {
		w.Header().Set("Retry-After", strconv.FormatInt(int64((hint+time.Second-1)/time.Second), 10))
		body.RetryAfterMs = hint.Milliseconds()
	}
	writeJSON(w, code, body)
}

// error writes err with the server's retry hint for it.
func (s *Server) error(w http.ResponseWriter, code int, err error) {
	writeError(w, code, err, s.retryAfter(err))
}

// retryAfter is the client back-off hint for retriable refusals:
// queue-full and shed requests clear in about a flush interval (round up
// to the 1s header floor); a plan evicted mid-request rebuilds — or
// warm-loads from its snapshot — in milliseconds, so the hint is a
// handful of the live coalescer flush interval; draining and degraded
// states need the operator — or the brownout controller — a few seconds
// to resolve.
func (s *Server) retryAfter(err error) time.Duration {
	switch {
	case errors.Is(err, ErrPlanEvicted):
		hint := 10 * time.Duration(s.reg.flushNs.Load())
		return min(max(hint, 2*time.Millisecond), time.Second)
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrShed):
		return time.Second
	case errors.Is(err, ErrDraining), errors.Is(err, ErrDegraded):
		return 2 * time.Second
	default:
		return 0
	}
}

// statusFor maps the serving-layer sentinels onto HTTP statuses.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrUnknownPlan):
		return http.StatusNotFound
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrShed):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrDraining), errors.Is(err, ErrDegraded), errors.Is(err, ErrPlanEvicted):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrPlanExists), errors.Is(err, ErrVersionConflict):
		return http.StatusConflict
	case errors.Is(err, stsk.ErrDimension), errors.Is(err, stsk.ErrSparsityMismatch):
		return http.StatusBadRequest
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusRequestTimeout
	default:
		return http.StatusInternalServerError
	}
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.error(w, http.StatusServiceUnavailable, ErrDraining)
		return
	}
	var spec PlanSpec
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxPlanBody)).Decode(&spec); err != nil {
		s.error(w, http.StatusBadRequest, err)
		return
	}
	info, err := s.reg.Register(spec)
	if err != nil {
		code := statusFor(err)
		if code == http.StatusInternalServerError {
			code = http.StatusBadRequest // bad spec, unknown class, unreadable file
		}
		s.error(w, code, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.reg.List())
}

// UpdateValuesRequest is the PUT /v1/plans/{name}/values body: the new
// value array in the registered matrix's storage order (same sparsity —
// a changed pattern is a 400), plus an optional optimistic-concurrency
// precondition: when IfVersion is non-zero the update fails with 409
// unless the plan is still at exactly that value version.
type UpdateValuesRequest struct {
	Values    []float64 `json:"values"`
	IfVersion uint64    `json:"ifVersion,omitempty"`
}

func (s *Server) handleUpdateValues(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.error(w, http.StatusServiceUnavailable, ErrDraining)
		return
	}
	var req UpdateValuesRequest
	// A value array is the same order of magnitude as a right-hand side,
	// so it gets the solve-body cap, not the plan-spec one.
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSolveBody)).Decode(&req); err != nil {
		s.error(w, http.StatusBadRequest, err)
		return
	}
	info, err := s.reg.UpdateValues(r.PathValue("name"), req.Values, req.IfVersion)
	if err != nil {
		s.error(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// SolveRequest is the /v1/solve body. B is the right-hand side in plan
// order; Upper selects the transposed sweep; Variant selects the factor
// ("" direct, "ic0" incomplete Cholesky); TimeoutMs bounds the request
// end to end (queueing included) on top of the client's own socket
// deadline.
type SolveRequest struct {
	Plan      string    `json:"plan"`
	B         []float64 `json:"b"`
	Upper     bool      `json:"upper,omitempty"`
	Variant   string    `json:"variant,omitempty"`
	TimeoutMs int       `json:"timeoutMs,omitempty"`
}

// SolveResponse carries the solution of one coalesced solve.
type SolveResponse struct {
	X          []float64 `json:"x"`
	Plan       string    `json:"plan"`
	DurationMs float64   `json:"durationMs"`
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	// One lifecycle trace per solve request, honouring a client-supplied
	// X-STS-Trace-Id and echoing the effective ID back so callers (and the
	// router's hedged fan-out) can correlate logs, /debug/traces entries,
	// and responses. tr is nil — and every hook inert — when tracing is
	// disabled.
	tr := s.reg.NewTrace(r.Header.Get("X-STS-Trace-Id"))
	if tr != nil {
		w.Header().Set("X-STS-Trace-Id", tr.ID())
	}
	var planName string
	var reqErr error
	defer func() { s.reg.FinishTrace(tr, planName, reqErr) }()
	a0 := trace.Now()
	if s.draining.Load() {
		reqErr = ErrDraining
		s.error(w, http.StatusServiceUnavailable, ErrDraining)
		return
	}
	if err := faultinject.Fire(faultinject.HTTPSolve); err != nil {
		reqErr = err
		s.error(w, statusFor(err), err)
		return
	}
	// X-STS-Priority is the brownout shedding key: while degraded, requests
	// below the configured threshold bounce with 429 before touching the
	// registry. Absent or malformed headers read as priority 0.
	pri := 0
	if h := r.Header.Get("X-STS-Priority"); h != "" {
		if v, err := strconv.Atoi(h); err == nil {
			pri = v
		}
	}
	if err := s.reg.AdmitPriority(pri); err != nil {
		reqErr = err
		s.error(w, statusFor(err), err)
		return
	}
	var req SolveRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSolveBody)).Decode(&req); err != nil {
		reqErr = err
		s.error(w, http.StatusBadRequest, err)
		return
	}
	planName = req.Plan
	ctx := r.Context()
	if req.TimeoutMs > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMs)*time.Millisecond)
		defer cancel()
	}
	ctx = trace.NewContext(ctx, tr)
	tr.Observe(trace.StageAdmission, a0, trace.Now())
	start := time.Now()
	x, err := s.reg.Solve(ctx, req.Plan, req.Variant, req.Upper, req.B)
	if err != nil {
		reqErr = err
		s.error(w, statusFor(err), err)
		return
	}
	w0 := trace.Now()
	writeJSON(w, http.StatusOK, SolveResponse{
		X:          x,
		Plan:       req.Plan,
		DurationMs: float64(time.Since(start).Microseconds()) / 1000,
	})
	tr.Observe(trace.StageSerialize, w0, trace.Now())
}

// healthBody is the /healthz document.
type healthBody struct {
	Status  string  `json:"status"` // "ok", "degraded", or "draining"
	Reason  string  `json:"reason,omitempty"`
	Plans   int     `json:"plans"`
	Loaded  int     `json:"loaded"`
	UptimeS float64 `json:"uptimeS"`
}

// handleHealth reports liveness plus degradation: draining (server told
// to drain, or the registry itself closed) and brownout-degraded both
// answer 503 so load balancers stop routing here, with the tripping
// reason in the body.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	status, reason := "ok", ""
	code := http.StatusOK
	bst, why := s.reg.BrownoutState()
	switch {
	case s.draining.Load() || s.reg.Draining() || bst == BrownoutDraining:
		status = "draining"
		code = http.StatusServiceUnavailable
		if !s.draining.Load() {
			reason = why
		}
	case bst == BrownoutDegraded:
		status = "degraded"
		reason = why
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, healthBody{
		Status:  status,
		Reason:  reason,
		Plans:   s.reg.Len(),
		Loaded:  s.reg.Loaded(),
		UptimeS: time.Since(s.start).Seconds(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.reg.met.writePrometheus(w, s.reg)
}
