package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"stsk"
)

func putJSON(t *testing.T, client *http.Client, url string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPut, url, bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// scaledValues returns the spec matrix's value array scaled by f — a
// deterministic "evolving system" step that both the server and the
// reference plan can reproduce exactly.
func scaledValues(t *testing.T, class string, n int, f float64) []float64 {
	t.Helper()
	mat, err := stsk.Generate(class, n)
	if err != nil {
		t.Fatal(err)
	}
	vals := mat.Values()
	for i := range vals {
		vals[i] *= f
	}
	return vals
}

// TestUpdateValuesEndToEnd drives the PUT /v1/plans/{name}/values
// contract over HTTP: version bump visible in GET /v1/plans, coalesced
// post-update responses bitwise equal to a plan rebuilt on the new
// values, the IC0 variant re-factored, the 404/400/409 error mapping,
// and the metrics exposition.
func TestUpdateValuesEndToEnd(t *testing.T) {
	reg := NewRegistry(Config{})
	srv := NewServer(reg)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Close()

	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/plans",
		PlanSpec{Name: "g3", Class: "grid3d", N: 1200, Method: "sts3"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register: %d %s", resp.StatusCode, body)
	}
	var info PlanInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.Version != 1 {
		t.Fatalf("registered plan at version %d, want 1", info.Version)
	}

	// Warm the IC0 variant so the update has something to drop.
	ref := refPlan(t, "grid3d", 1200, stsk.STS3)
	b := manufacturedRHS(ref, 11)
	resp, body = postJSON(t, ts.Client(), ts.URL+"/v1/solve",
		SolveRequest{Plan: "g3", B: b, Variant: VariantIC0})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ic0 solve: %d %s", resp.StatusCode, body)
	}

	// Error contract first: unknown plan 404, wrong-length values 400,
	// stale ifVersion 409.
	vals := scaledValues(t, "grid3d", 1200, 2)
	resp, _ = putJSON(t, ts.Client(), ts.URL+"/v1/plans/nope/values", UpdateValuesRequest{Values: vals})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown plan: %d, want 404", resp.StatusCode)
	}
	resp, body = putJSON(t, ts.Client(), ts.URL+"/v1/plans/g3/values", UpdateValuesRequest{Values: vals[:7]})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("short values: %d %s, want 400", resp.StatusCode, body)
	}
	resp, body = putJSON(t, ts.Client(), ts.URL+"/v1/plans/g3/values", UpdateValuesRequest{Values: vals, IfVersion: 99})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("stale ifVersion: %d %s, want 409", resp.StatusCode, body)
	}

	// The real update, conditioned on the current version.
	resp, body = putJSON(t, ts.Client(), ts.URL+"/v1/plans/g3/values", UpdateValuesRequest{Values: vals, IfVersion: 1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("update: %d %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.Version != 2 {
		t.Fatalf("updated plan at version %d, want 2", info.Version)
	}

	// GET /v1/plans reports the bumped version and the dropped IC0 variant.
	lresp, err := ts.Client().Get(ts.URL + "/v1/plans")
	if err != nil {
		t.Fatal(err)
	}
	var infos []PlanInfo
	if err := json.NewDecoder(lresp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	lresp.Body.Close()
	if len(infos) != 1 || infos[0].Version != 2 {
		t.Fatalf("list after update: %+v", infos)
	}
	if infos[0].IC0 {
		t.Fatal("IC0 variant still resident after value update")
	}

	// Post-update coalesced solves are bitwise equal to a plan rebuilt on
	// the new values — direct, upper, and the lazily re-factored IC0.
	if err := ref.Refactor(vals); err != nil {
		t.Fatal(err)
	}
	refIC0, err := ref.IC0()
	if err != nil {
		t.Fatal(err)
	}
	checks := []struct {
		name string
		req  SolveRequest
		want func() ([]float64, error)
	}{
		{"direct", SolveRequest{Plan: "g3", B: b}, func() ([]float64, error) { return ref.Solve(b) }},
		{"upper", SolveRequest{Plan: "g3", B: b, Upper: true}, func() ([]float64, error) { return ref.SolveUpper(b) }},
		{"ic0", SolveRequest{Plan: "g3", B: b, Variant: VariantIC0}, func() ([]float64, error) { return refIC0.Solve(b) }},
	}
	for _, c := range checks {
		resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/solve", c.req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s solve after update: %d %s", c.name, resp.StatusCode, body)
		}
		var sr SolveResponse
		if err := json.Unmarshal(body, &sr); err != nil {
			t.Fatal(err)
		}
		want, err := c.want()
		if err != nil {
			t.Fatal(err)
		}
		assertBitwise(t, sr.X, want, c.name+"/post-update")
	}

	// Metrics report the update counter and the per-plan version gauge.
	mresp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, series := range []string{
		"stsserve_value_updates_total 1",
		`stsserve_plan_version{plan="g3"} 2`,
	} {
		if !strings.Contains(string(mbody), series) {
			t.Errorf("metrics exposition missing %q:\n%s", series, mbody)
		}
	}

	// Draining server bounces updates with 503.
	srv.Close()
	resp, _ = putJSON(t, ts.Client(), ts.URL+"/v1/plans/g3/values", UpdateValuesRequest{Values: vals})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("update while draining: %d, want 503", resp.StatusCode)
	}
}

// TestUpdateValuesSurvivesEviction: a value update outlives LRU eviction —
// the rebuilt plan replays the latest values before going live, so a
// client can never observe a silent revert to the spec's original matrix.
func TestUpdateValuesSurvivesEviction(t *testing.T) {
	reg := NewRegistry(Config{BudgetBytes: 1 << 19}) // tiny: one resident plan at most
	defer reg.Close()
	if _, err := reg.Register(PlanSpec{Name: "a", Class: "grid3d", N: 900, Method: "sts3"}); err != nil {
		t.Fatal(err)
	}
	vals := scaledValues(t, "grid3d", 900, 3)
	info, err := reg.UpdateValues("a", vals, 0)
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != 2 {
		t.Fatalf("version %d after update, want 2", info.Version)
	}

	// Evict "a" by building a second plan under the tiny budget.
	if _, err := reg.Register(PlanSpec{Name: "b", Class: "grid3d", N: 900, Method: "sts3"}); err != nil {
		t.Fatal(err)
	}
	for _, pi := range reg.List() {
		if pi.Spec.Name == "a" && pi.Loaded {
			t.Skip("budget did not evict; environment-dependent estimate")
		}
	}

	// The rebuilt plan must solve on the updated values.
	ref := refPlan(t, "grid3d", 900, stsk.STS3)
	if err := ref.Refactor(vals); err != nil {
		t.Fatal(err)
	}
	b := manufacturedRHS(ref, 3)
	x, err := reg.Solve(t.Context(), "a", VariantDirect, false, b)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	assertBitwise(t, x, want, "post-eviction")

	// And the version is still 2.
	for _, pi := range reg.List() {
		if pi.Spec.Name == "a" && pi.Version != 2 {
			t.Fatalf("version %d after eviction+rebuild, want 2", pi.Version)
		}
	}
}

// TestUpdateValuesConcurrentWithSolves hammers UpdateValues against
// coalesced solves (run under -race): every response is a complete
// solution for one of the two value epochs, never torn.
func TestUpdateValuesConcurrentWithSolves(t *testing.T) {
	reg := NewRegistry(Config{})
	defer reg.Close()
	if _, err := reg.Register(PlanSpec{Name: "g", Class: "grid3d", N: 900, Method: "sts3"}); err != nil {
		t.Fatal(err)
	}
	v1 := scaledValues(t, "grid3d", 900, 1)
	v2 := scaledValues(t, "grid3d", 900, 2)
	ref := refPlan(t, "grid3d", 900, stsk.STS3)
	b := manufacturedRHS(ref, 5)
	want1, err := ref.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Refactor(v2); err != nil {
		t.Fatal(err)
	}
	want2, err := ref.Solve(b)
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		for i := 0; i < 20; i++ {
			v := v1
			if i%2 == 0 {
				v = v2
			}
			if _, err := reg.UpdateValues("g", v, 0); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < 30; i++ {
		x, err := reg.Solve(t.Context(), "g", VariantDirect, false, b)
		if err != nil {
			t.Fatal(err)
		}
		match1, match2 := true, true
		for j := range x {
			if x[j] != want1[j] {
				match1 = false
			}
			if x[j] != want2[j] {
				match2 = false
			}
			if !match1 && !match2 {
				t.Fatalf("solve %d: torn solution at %d", i, j)
			}
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}
