package serve

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"

	"stsk"
)

// TestUpdateValuesEvictionStaleness is the headline regression test for
// the UpdateValues/eviction staleness race: under budget churn, an
// eviction could detach the state an update had refactored while a
// concurrent rebuild re-read the entry's OLD value array; the update
// then committed its values and bumped the version anyway, leaving a
// resident plan that served the previous values under the new version
// number until the next eviction.
//
// The fix makes the commit conditional on the refactored state still
// being the resident one (or nothing resident and no build in flight),
// looping to reapply otherwise — so the invariant below is exact: once
// UpdateValues returns, every subsequent solve is bitwise the solve of
// a plan refactored with those values, eviction storms notwithstanding.
// Run under -race; pre-fix this fails within a few rounds.
func TestUpdateValuesEvictionStaleness(t *testing.T) {
	reg := NewRegistry(Config{BudgetBytes: 1 << 19}) // one resident plan at most
	defer reg.Close()
	const n = 900
	if _, err := reg.Register(PlanSpec{Name: "a", Class: "grid3d", N: n, Method: "sts3"}); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Register(PlanSpec{Name: "b", Class: "grid3d", N: n, Method: "sts3"}); err != nil {
		t.Fatal(err)
	}

	ref := refPlan(t, "grid3d", n, stsk.STS3)
	b := manufacturedRHS(ref, 7)

	// Churners: hammering "b" under the tiny budget evicts "a" over and
	// over; hammering "a" makes the post-eviction rebuild start the
	// instant the eviction lands — which is exactly the rebuild that
	// races the update's value commit.
	stop := make(chan struct{})
	var churned sync.WaitGroup
	var churnErr atomic.Value
	rhs := make([]float64, ref.N()) // grid3d rounds n down to a cube
	for i := range rhs {
		rhs[i] = 1
	}
	for _, name := range []string{"a", "b"} {
		name := name
		churned.Add(1)
		go func() {
			defer churned.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := reg.Solve(context.Background(), name, VariantDirect, false, rhs); err != nil {
					churnErr.Store(err)
					return
				}
			}
		}()
	}

	const rounds = 40
	for i := 1; i <= rounds; i++ {
		vals := scaledValues(t, "grid3d", n, 1+float64(i)/rounds)
		if _, err := reg.UpdateValues("a", vals, 0); err != nil {
			t.Fatalf("round %d: UpdateValues: %v", i, err)
		}
		// No other updater exists, so from the moment UpdateValues
		// returned, "a" must solve on exactly these values — whether the
		// refactored state survived, or an eviction forced a rebuild that
		// replayed them.
		if err := ref.Refactor(vals); err != nil {
			t.Fatal(err)
		}
		want, err := ref.Solve(b)
		if err != nil {
			t.Fatal(err)
		}
		got, err := reg.Solve(context.Background(), "a", VariantDirect, false, b)
		if err != nil {
			t.Fatalf("round %d: Solve: %v", i, err)
		}
		assertBitwise(t, got, want, "post-update solve")
	}
	close(stop)
	churned.Wait()
	if err := churnErr.Load(); err != nil {
		t.Fatalf("churner: %v", err)
	}

	// The version advanced once per update on top of the initial 1.
	for _, pi := range reg.List() {
		if pi.Spec.Name == "a" && pi.Version != rounds+1 {
			t.Fatalf("version %d after %d updates, want %d", pi.Version, rounds, rounds+1)
		}
	}
}
