package serve

import (
	"sync/atomic"
	"time"

	"stsk/internal/panicsafe"
)

// BrownoutState is the registry's degradation state, exported at
// /healthz and /metrics (stsserve_brownout_state).
type BrownoutState int32

const (
	// BrownoutHealthy: full service.
	BrownoutHealthy BrownoutState = iota

	// BrownoutDegraded: overloaded but serving. Requests below the
	// priority threshold are shed (429 + Retry-After), cold plan builds
	// are refused (503), and the coalescer flush deadline is shrunk so
	// queued work ships in smaller, prompter panels.
	BrownoutDegraded

	// BrownoutDraining: the registry is shutting down; everything new is
	// refused with ErrDraining.
	BrownoutDraining
)

func (s BrownoutState) String() string {
	switch s {
	case BrownoutDegraded:
		return "degraded"
	case BrownoutDraining:
		return "draining"
	default:
		return "healthy"
	}
}

// BrownoutConfig tunes the degradation state machine. Zero values select
// the defaults noted on each field; Disable turns the controller off
// (the registry then reports BrownoutHealthy forever).
type BrownoutConfig struct {
	// Interval between controller evaluations. Default 100ms.
	Interval time.Duration

	// DegradeQueueFrac enters degraded mode when the summed coalescer
	// queue depth exceeds this fraction of total queue capacity.
	// Default 0.75.
	DegradeQueueFrac float64

	// RecoverQueueFrac is the hysteresis floor: healing requires the
	// queue fraction at or below this for RecoverTicks consecutive
	// evaluations. Default 0.25.
	RecoverQueueFrac float64

	// DegradeLatency and DegradeLatencyFrac enter degraded mode when
	// more than DegradeLatencyFrac of the solves observed since the last
	// evaluation took longer than DegradeLatency. Defaults 250ms, 0.5.
	DegradeLatency     time.Duration
	DegradeLatencyFrac float64

	// RecoverTicks is how many consecutive calm evaluations heal a
	// degraded registry — hysteresis against flapping. Default 5.
	RecoverTicks int

	// ShedBelowPriority is the X-STS-Priority threshold under degraded
	// mode: requests with priority < this are shed. The default 1 sheds
	// only requests that did not claim a priority (header absent = 0).
	ShedBelowPriority int

	// DegradedFlushDiv divides the coalescer flush deadline while
	// degraded, trading panel width for queue drain speed. Default 4.
	DegradedFlushDiv int64

	// Disable turns the controller off.
	Disable bool
}

func (c BrownoutConfig) withDefaults() BrownoutConfig {
	if c.Interval <= 0 {
		c.Interval = 100 * time.Millisecond
	}
	if c.DegradeQueueFrac <= 0 {
		c.DegradeQueueFrac = 0.75
	}
	if c.RecoverQueueFrac <= 0 {
		c.RecoverQueueFrac = 0.25
	}
	if c.DegradeLatency <= 0 {
		c.DegradeLatency = 250 * time.Millisecond
	}
	if c.DegradeLatencyFrac <= 0 {
		c.DegradeLatencyFrac = 0.5
	}
	if c.RecoverTicks <= 0 {
		c.RecoverTicks = 5
	}
	if c.ShedBelowPriority == 0 {
		c.ShedBelowPriority = 1
	}
	if c.DegradedFlushDiv <= 0 {
		c.DegradedFlushDiv = 4
	}
	return c
}

// brownout is the degradation state machine: a small controller loop
// that watches queue pressure and the latency histogram and moves the
// registry between healthy, degraded, and draining. State reads are a
// single atomic load on the request path.
type brownout struct {
	reg *Registry
	cfg BrownoutConfig

	state  atomic.Int32
	reason atomic.Pointer[string]

	// Controller-goroutine-private evaluation state.
	calm                int   // consecutive calm ticks while degraded
	lastTotal, lastOver int64 // histogram cursor for per-tick windows

	stop chan struct{}
	done chan struct{}
}

func newBrownout(reg *Registry, cfg BrownoutConfig) *brownout {
	b := &brownout{
		reg:  reg,
		cfg:  cfg.withDefaults(),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	empty := ""
	b.reason.Store(&empty)
	return b
}

// start launches the controller loop.
func (b *brownout) start() {
	panicsafe.Go("serve.brownout", func() {
		defer close(b.done)
		t := time.NewTicker(b.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				b.evaluate()
			case <-b.stop:
				return
			}
		}
	})
}

// close moves to draining and stops the controller loop.
func (b *brownout) close() {
	b.setState(BrownoutDraining, "registry draining")
	close(b.stop)
	<-b.done
}

// State returns the current degradation state and, when degraded, the
// reason that tripped it.
func (b *brownout) State() (BrownoutState, string) {
	return BrownoutState(b.state.Load()), *b.reason.Load()
}

func (b *brownout) setState(s BrownoutState, reason string) {
	b.reason.Store(&reason)
	b.state.Store(int32(s))
}

// evaluate is one controller tick: measure, then walk the state machine.
func (b *brownout) evaluate() {
	depth, capacity := b.reg.queueStats()
	queueFrac := 0.0
	if capacity > 0 {
		queueFrac = float64(depth) / float64(capacity)
	}
	total, over := b.reg.met.latencyTotals(b.cfg.DegradeLatency.Seconds())
	wTotal, wOver := total-b.lastTotal, over-b.lastOver
	b.lastTotal, b.lastOver = total, over
	slow := wTotal > 0 && float64(wOver)/float64(wTotal) >= b.cfg.DegradeLatencyFrac

	switch BrownoutState(b.state.Load()) {
	case BrownoutDraining:
		return
	case BrownoutHealthy:
		switch {
		case queueFrac >= b.cfg.DegradeQueueFrac:
			b.degrade("queue depth over threshold")
		case slow:
			b.degrade("latency over threshold")
		}
	case BrownoutDegraded:
		if queueFrac <= b.cfg.RecoverQueueFrac && !slow {
			b.calm++
			if b.calm >= b.cfg.RecoverTicks {
				b.heal()
			}
		} else {
			b.calm = 0
		}
	}
}

// degrade enters degraded mode: record the reason and shrink the shared
// coalescer flush deadline so partial panels ship promptly — wide panels
// are a throughput optimisation the registry cannot afford while its
// queues are backing up.
func (b *brownout) degrade(reason string) {
	b.calm = 0
	b.setState(BrownoutDegraded, reason)
	b.reg.flushNs.Store(int64(b.reg.cfg.FlushDelay) / b.cfg.DegradedFlushDiv)
}

// heal restores full service and the configured flush deadline.
func (b *brownout) heal() {
	b.calm = 0
	b.setState(BrownoutHealthy, "")
	b.reg.flushNs.Store(int64(b.reg.cfg.FlushDelay))
}
