package serve

import (
	"context"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"stsk"
)

// refPlan builds a Plan identical to what the registry builds for a
// generated-class spec, so tests can compare registry responses bitwise
// against Plan.Solve.
func refPlan(t *testing.T, class string, n int, method stsk.Method) *stsk.Plan {
	t.Helper()
	mat, err := stsk.Generate(class, n)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := stsk.Build(mat, method)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// manufacturedRHS returns a deterministic right-hand side for the plan.
func manufacturedRHS(plan *stsk.Plan, seed int) []float64 {
	xTrue := make([]float64, plan.N())
	for i := range xTrue {
		xTrue[i] = math.Sin(float64(i + seed))
	}
	return plan.RHSFor(xTrue)
}

func assertBitwise(t *testing.T, got, want []float64, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: differs from Plan.Solve at index %d: %v vs %v", label, i, got[i], want[i])
		}
	}
}

func TestRegistryRegisterAndSolve(t *testing.T) {
	reg := NewRegistry(Config{})
	defer reg.Close()
	info, err := reg.Register(PlanSpec{Name: "g3", Class: "grid3d", N: 2000, Method: "sts3"})
	if err != nil {
		t.Fatal(err)
	}
	if !info.Loaded || info.N == 0 || info.Bytes == 0 {
		t.Fatalf("registration info incomplete: %+v", info)
	}

	ref := refPlan(t, "grid3d", 2000, stsk.STS3)
	if ref.N() != info.N {
		t.Fatalf("registry plan n=%d, reference n=%d", info.N, ref.N())
	}
	b := manufacturedRHS(ref, 1)

	x, err := reg.Solve(context.Background(), "g3", VariantDirect, false, b)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	assertBitwise(t, x, want, "forward")

	xu, err := reg.Solve(context.Background(), "g3", VariantDirect, true, b)
	if err != nil {
		t.Fatal(err)
	}
	wantU, err := ref.SolveUpper(b)
	if err != nil {
		t.Fatal(err)
	}
	assertBitwise(t, xu, wantU, "upper")
}

func TestRegistrySolveErrors(t *testing.T) {
	reg := NewRegistry(Config{})
	defer reg.Close()
	if _, err := reg.Register(PlanSpec{Name: "g3", Class: "grid3d", N: 1000}); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := reg.Solve(ctx, "nope", VariantDirect, false, make([]float64, 10)); !errors.Is(err, ErrUnknownPlan) {
		t.Errorf("unknown plan: err = %v, want ErrUnknownPlan", err)
	}
	if _, err := reg.Solve(ctx, "g3", "cholmod", false, make([]float64, 10)); err == nil {
		t.Error("unknown variant accepted")
	}
	if _, err := reg.Solve(ctx, "g3", VariantDirect, false, make([]float64, 3)); !errors.Is(err, stsk.ErrDimension) {
		t.Errorf("short rhs: err = %v, want ErrDimension", err)
	}
	snap := reg.Metrics().Snapshot()
	if snap.Failed != 3 {
		t.Errorf("failed counter = %d, want 3", snap.Failed)
	}
}

func TestRegistryRegisterValidation(t *testing.T) {
	reg := NewRegistry(Config{})
	defer reg.Close()
	for _, spec := range []PlanSpec{
		{},          // no name
		{Name: "a"}, // no source
		{Name: "a", Class: "grid3d", Suite: "D2"},        // two sources
		{Name: "a", Class: "grid3d", Method: "cholesky"}, // bad method
		{Name: "a", Class: "hypercube9"},                 // unknown class (build-time)
	} {
		if _, err := reg.Register(spec); err == nil {
			t.Errorf("spec %+v accepted, want error", spec)
		}
	}
	// Idempotent re-registration; conflicting spec rejected.
	if _, err := reg.Register(PlanSpec{Name: "a", Class: "grid3d", N: 500}); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Register(PlanSpec{Name: "a", Class: "grid3d", N: 500}); err != nil {
		t.Errorf("idempotent re-register: %v", err)
	}
	if _, err := reg.Register(PlanSpec{Name: "a", Class: "trimesh", N: 500}); !errors.Is(err, ErrPlanExists) {
		t.Errorf("conflicting re-register: err = %v, want ErrPlanExists", err)
	}
}

func TestRegistryFilePlan(t *testing.T) {
	// A 6-node chain in Matrix Market coordinate format; the loader
	// symmetrises the pattern and assigns SPD-by-dominance values, same
	// as cmd/stssolve -file.
	mtx := `%%MatrixMarket matrix coordinate real general
6 6 11
1 1 2.0
2 2 2.0
3 3 2.0
4 4 2.0
5 5 2.0
6 6 2.0
2 1 -1.0
3 2 -1.0
4 3 -1.0
5 4 -1.0
6 5 -1.0
`
	path := filepath.Join(t.TempDir(), "chain.mtx")
	if err := os.WriteFile(path, []byte(mtx), 0o644); err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry(Config{})
	defer reg.Close()
	info, err := reg.Register(PlanSpec{Name: "chain", File: path})
	if err != nil {
		t.Fatal(err)
	}
	if info.N != 6 {
		t.Fatalf("file plan n = %d, want 6", info.N)
	}
	mat, err := stsk.ReadMatrixMarketFile(path)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := stsk.Build(mat, stsk.STS3)
	if err != nil {
		t.Fatal(err)
	}
	b := manufacturedRHS(ref, 3)
	x, err := reg.Solve(context.Background(), "chain", VariantDirect, false, b)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := ref.Solve(b)
	assertBitwise(t, x, want, "file plan")
}

func TestRegistryIC0Variant(t *testing.T) {
	reg := NewRegistry(Config{})
	defer reg.Close()
	if _, err := reg.Register(PlanSpec{Name: "g3", Class: "grid3d", N: 1500}); err != nil {
		t.Fatal(err)
	}
	ref := refPlan(t, "grid3d", 1500, stsk.STS3)
	fref, err := ref.IC0()
	if err != nil {
		t.Fatal(err)
	}
	b := manufacturedRHS(ref, 5)
	x, err := reg.Solve(context.Background(), "g3", VariantIC0, false, b)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fref.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	assertBitwise(t, x, want, "ic0")
	// The variant is resident now and listed; bytes grew.
	infos := reg.List()
	if len(infos) != 1 || !infos[0].IC0 {
		t.Fatalf("IC0 residency not reported: %+v", infos)
	}
	if got := reg.Metrics().Snapshot().PlanBuilds; got != 2 {
		t.Errorf("plan builds = %d, want 2 (base + ic0)", got)
	}
}

func TestRegistryLRUEviction(t *testing.T) {
	// Budget sized to hold one plan but not two: registering the second
	// evicts the first (LRU); solving the first transparently rebuilds.
	probe := NewRegistry(Config{})
	info, err := probe.Register(PlanSpec{Name: "p", Class: "grid3d", N: 2000})
	if err != nil {
		t.Fatal(err)
	}
	probe.Close()
	budget := info.Bytes + info.Bytes/2

	reg := NewRegistry(Config{BudgetBytes: budget})
	defer reg.Close()
	if _, err := reg.Register(PlanSpec{Name: "a", Class: "grid3d", N: 2000}); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Register(PlanSpec{Name: "b", Class: "trimesh", N: 2000}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for reg.Loaded() != 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := reg.Loaded(); got != 1 {
		t.Fatalf("after second build: %d plans resident, want 1", got)
	}
	snap := reg.Metrics().Snapshot()
	if snap.Evictions == 0 {
		t.Fatal("no eviction recorded")
	}
	if reg.Len() != 2 {
		t.Fatalf("registered plans = %d, want 2 (evicted specs stay registered)", reg.Len())
	}

	// Solving the evicted plan rebuilds it and still answers bitwise.
	ref := refPlan(t, "grid3d", 2000, stsk.STS3)
	b := manufacturedRHS(ref, 9)
	x, err := reg.Solve(context.Background(), "a", VariantDirect, false, b)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := ref.Solve(b)
	assertBitwise(t, x, want, "rebuilt after eviction")
	if got := reg.Metrics().Snapshot().PlanBuilds; got < 3 {
		t.Errorf("plan builds = %d, want ≥ 3 (a, b, a again)", got)
	}
}

func TestRegistryCloseDrains(t *testing.T) {
	reg := NewRegistry(Config{})
	if _, err := reg.Register(PlanSpec{Name: "g3", Class: "grid3d", N: 1000}); err != nil {
		t.Fatal(err)
	}
	reg.Close()
	reg.Close() // idempotent
	if _, err := reg.Solve(context.Background(), "g3", VariantDirect, false, make([]float64, 10)); !errors.Is(err, ErrDraining) {
		t.Errorf("solve after close: err = %v, want ErrDraining", err)
	}
	if _, err := reg.Register(PlanSpec{Name: "x", Class: "grid3d", N: 500}); !errors.Is(err, ErrDraining) {
		t.Errorf("register after close: err = %v, want ErrDraining", err)
	}
}
