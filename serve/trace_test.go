package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"
	"time"

	"stsk"
	"stsk/internal/trace"
)

// solveTraced posts one solve and returns the response plus the
// lifecycle trace record the ring retained for it.
func solveTraced(t *testing.T, ts *httptest.Server, reg *Registry, req SolveRequest, hdr map[string]string) (*http.Response, trace.Record) {
	t.Helper()
	raw, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hreq, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/solve", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		hreq.Header.Set(k, v)
	}
	resp, err := ts.Client().Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	id := resp.Header.Get("X-STS-Trace-Id")
	if id == "" {
		t.Fatal("solve response carries no X-STS-Trace-Id header")
	}
	for _, rec := range reg.TraceRing().Snapshot(0) {
		if rec.ID == id {
			return resp, rec
		}
	}
	t.Fatalf("trace %s not retained in the ring", id)
	return nil, trace.Record{}
}

// checkWellNested fails unless every pair of spans is either disjoint or
// one contains the other (half-open intervals), and every span lies
// within [0, Total]. Returns the fraction of the trace's wall time the
// span union covers.
func checkWellNested(t *testing.T, rec trace.Record) float64 {
	t.Helper()
	total := int64(rec.Total)
	for i, s := range rec.Spans {
		if s.Start < 0 || s.End < s.Start || s.End > total {
			t.Errorf("span %d (%s): [%d, %d) outside trace [0, %d)", i, s.Stage, s.Start, s.End, total)
		}
		for j := i + 1; j < len(rec.Spans); j++ {
			o := rec.Spans[j]
			disjoint := s.End <= o.Start || o.End <= s.Start
			sInO := o.Start <= s.Start && s.End <= o.End
			oInS := s.Start <= o.Start && o.End <= s.End
			if !disjoint && !sInO && !oInS {
				t.Errorf("spans %s [%d,%d) and %s [%d,%d) partially overlap — not well-nested",
					s.Stage, s.Start, s.End, o.Stage, o.Start, o.End)
			}
		}
	}
	if total <= 0 {
		return 0
	}
	// Union of span intervals (Spans are sorted by start).
	type iv struct{ a, b int64 }
	var merged []iv
	for _, s := range rec.Spans {
		if n := len(merged); n > 0 && s.Start <= merged[n-1].b {
			if s.End > merged[n-1].b {
				merged[n-1].b = s.End
			}
			continue
		}
		merged = append(merged, iv{s.Start, s.End})
	}
	covered := int64(0)
	for _, m := range merged {
		covered += m.b - m.a
	}
	return float64(covered) / float64(total)
}

// TestTraceLifecycleCoverage pins the tentpole contract: a served solve
// leaves one well-nested trace whose spans attribute at least 95% of the
// request's wall time to named stages. The generous flush deadline makes
// coalesce_wait dominate, so scheduler noise in the untraced gaps (a
// channel handoff, a goroutine wake-up) stays far under the 5% budget;
// best-of-three absorbs one-off CI hiccups.
func TestTraceLifecycleCoverage(t *testing.T) {
	reg := NewRegistry(Config{FlushDelay: 5 * time.Millisecond})
	srv := NewServer(reg)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Close()
	ref := refPlan(t, "grid3d", 1500, stsk.STS3)
	if _, err := reg.Register(PlanSpec{Name: "g3", Class: "grid3d", N: 1500, Method: "sts3"}); err != nil {
		t.Fatal(err)
	}
	b := manufacturedRHS(ref, 1)

	best := 0.0
	var bestRec trace.Record
	for attempt := 0; attempt < 3 && best < 0.95; attempt++ {
		resp, rec := solveTraced(t, ts, reg, SolveRequest{Plan: "g3", B: b}, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("solve: status %d", resp.StatusCode)
		}
		if cov := checkWellNested(t, rec); cov > best {
			best, bestRec = cov, rec
		}
	}
	if best < 0.95 {
		t.Errorf("span coverage %.1f%% < 95%% of wall time: %+v", best*100, bestRec)
	}
	// The stages the single-solve lifecycle must visit.
	for _, want := range []trace.Stage{
		trace.StageAdmission, trace.StageRegistry, trace.StageEnqueue,
		trace.StageQueueWait, trace.StageCoalesceWait, trace.StageKernel,
		trace.StageSerialize,
	} {
		if bestRec.StageTotal(want) <= 0 {
			t.Errorf("stage %s missing from the lifecycle trace: %+v", want, bestRec)
		}
	}
	if bestRec.Outcome != "ok" {
		t.Errorf("outcome = %q, want ok", bestRec.Outcome)
	}
	if bestRec.Dropped != 0 {
		t.Errorf("dropped %d spans on a plain solve", bestRec.Dropped)
	}
}

// TestTraceIDPropagation pins the correlation contract: a
// client-supplied X-STS-Trace-Id is echoed on the response and names the
// retained record; absent a client ID the server mints one.
func TestTraceIDPropagation(t *testing.T) {
	reg := NewRegistry(Config{})
	if !reg.TracingEnabled() {
		t.Fatal("tracing disabled under the default Config")
	}
	srv := NewServer(reg)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Close()
	ref := refPlan(t, "grid3d", 800, stsk.STS3)
	if _, err := reg.Register(PlanSpec{Name: "g3", Class: "grid3d", N: 800}); err != nil {
		t.Fatal(err)
	}
	b := manufacturedRHS(ref, 2)

	resp, rec := solveTraced(t, ts, reg, SolveRequest{Plan: "g3", B: b},
		map[string]string{"X-STS-Trace-Id": "tracetest42"})
	if got := resp.Header.Get("X-STS-Trace-Id"); got != "tracetest42" {
		t.Errorf("echoed trace ID = %q, want the client's tracetest42", got)
	}
	if rec.ID != "tracetest42" || rec.Plan != "g3" {
		t.Errorf("retained record = %q/%q, want tracetest42/g3", rec.ID, rec.Plan)
	}

	resp, rec = solveTraced(t, ts, reg, SolveRequest{Plan: "g3", B: b}, nil)
	if id := resp.Header.Get("X-STS-Trace-Id"); len(id) != 16 {
		t.Errorf("minted trace ID %q, want 16 hex chars", id)
	} else if rec.ID != id {
		t.Errorf("record ID %q != header %q", rec.ID, id)
	}
}

// TestDebugTracesEndpoint pins the /debug/traces JSON: per-stage
// breakdowns for retained traces, threshold filtering at read time, and
// a 404 when tracing is disabled.
func TestDebugTracesEndpoint(t *testing.T) {
	reg := NewRegistry(Config{})
	srv := NewServer(reg)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Close()
	ref := refPlan(t, "grid3d", 800, stsk.STS3)
	if _, err := reg.Register(PlanSpec{Name: "g3", Class: "grid3d", N: 800}); err != nil {
		t.Fatal(err)
	}
	if _, rec := solveTraced(t, ts, reg, SolveRequest{Plan: "g3", B: manufacturedRHS(ref, 3)}, nil); rec.ID == "" {
		t.Fatal("no trace retained")
	}

	resp, err := ts.Client().Get(ts.URL + "/debug/traces?thresholdMs=0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc traceDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/traces: %d (%v)", resp.StatusCode, err)
	}
	if !doc.Enabled || doc.Capacity <= 0 || doc.Admitted == 0 || len(doc.Traces) == 0 {
		t.Fatalf("trace doc: %+v", doc)
	}
	got := doc.Traces[0]
	if got.Outcome != "ok" || got.Plan != "g3" || len(got.Spans) == 0 {
		t.Errorf("retained trace: %+v", got)
	}
	for _, sp := range got.Spans {
		if sp.Stage == "" || sp.DurationUs < 0 || sp.OffsetUs < 0 {
			t.Errorf("bad span in /debug/traces: %+v", sp)
		}
	}
	if !sort.SliceIsSorted(got.Spans, func(i, j int) bool { return got.Spans[i].OffsetUs <= got.Spans[j].OffsetUs }) {
		t.Errorf("spans not sorted by offset: %+v", got.Spans)
	}

	// An absurd threshold filters everything; a malformed one is a 400.
	resp, err = ts.Client().Get(ts.URL + "/debug/traces?thresholdMs=1e9")
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(resp.Body).Decode(&doc)
	resp.Body.Close()
	if len(doc.Traces) != 0 {
		t.Errorf("thresholdMs=1e9 retained %d traces", len(doc.Traces))
	}
	resp, err = ts.Client().Get(ts.URL + "/debug/traces?thresholdMs=-3")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("negative threshold: status %d, want 400", resp.StatusCode)
	}

	// Disabled tracing: no header, no endpoint.
	off := NewRegistry(Config{DisableTracing: true})
	if off.TracingEnabled() {
		t.Fatal("TracingEnabled true despite DisableTracing")
	}
	osrv := NewServer(off)
	ots := httptest.NewServer(osrv)
	defer ots.Close()
	defer osrv.Close()
	if _, err := off.Register(PlanSpec{Name: "g3", Class: "grid3d", N: 800}); err != nil {
		t.Fatal(err)
	}
	raw, _ := json.Marshal(SolveRequest{Plan: "g3", B: manufacturedRHS(ref, 4)})
	oresp, err := ots.Client().Post(ots.URL+"/v1/solve", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	oresp.Body.Close()
	if id := oresp.Header.Get("X-STS-Trace-Id"); id != "" {
		t.Errorf("disabled tracing still stamped trace ID %q", id)
	}
	oresp, err = ots.Client().Get(ots.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	oresp.Body.Close()
	if oresp.StatusCode != http.StatusNotFound {
		t.Errorf("/debug/traces with tracing disabled: %d, want 404", oresp.StatusCode)
	}
}

// TestQueueWaitReconciliation pins the queue-wait attribution against a
// known queue-depth integral: three requests parked in an unstarted
// coalescer for a fixed interval must account for at least
// 3 × interval of queue_wait in the stage histograms once dispatched —
// the histogram sum reconciles with ∫ depth dt, which the parked phase
// bounds from below.
func TestQueueWaitReconciliation(t *testing.T) {
	ref := refPlan(t, "grid3d", 600, stsk.STS3)
	solver := ref.NewSolver(stsk.WithBlockWidth(8))
	defer solver.Close()
	met := &Metrics{}
	c := newCoalescer(solver, false, 8, 64, flushNanos(time.Millisecond), met)

	const parked = 3
	const hold = 20 * time.Millisecond
	reqs := make([]*solveReq, parked)
	trs := make([]*trace.Trace, parked)
	for i := range reqs {
		trs[i] = trace.New("")
		trs[i].Retain() // the coalescer's reference, released by complete()
		reqs[i] = &solveReq{
			ctx:  context.Background(),
			b:    manufacturedRHS(ref, i),
			x:    make([]float64, ref.N()),
			done: make(chan error, 1),
			tr:   trs[i],
		}
		reqs[i].enqNs = trace.Now()
		if err := c.enqueue(reqs[i]); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(hold) // every request sits queued: depth integral ≥ parked × hold
	c.start()
	for i, r := range reqs {
		if err := <-r.done; err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	c.close()
	for _, tr := range trs {
		rec := tr.Finish("g3", "ok")
		met.observeTrace(rec, true)
		tr.Release()
	}

	sum, count := met.StageLatencyTotal(trace.StageQueueWait)
	if count != parked {
		t.Fatalf("queue_wait observations = %d, want %d", count, parked)
	}
	floor := time.Duration(parked) * hold
	if sum < floor {
		t.Errorf("queue_wait sum %v < depth integral floor %v", sum, floor)
	}
	if ceil := floor + 5*time.Second; sum > ceil {
		t.Errorf("queue_wait sum %v implausibly above %v — stamps broken", sum, ceil)
	}
}
