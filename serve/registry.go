// Package serve turns the stsk library into a long-running
// solve-as-a-service subsystem: a concurrent plan registry that builds
// and caches Plans with their pooled Solvers behind an LRU byte budget,
// an adaptive micro-batching coalescer that packs concurrent single-RHS
// requests onto the blocked panel kernels, and an HTTP JSON transport
// (see Server) with Prometheus-text metrics — the traffic shape the
// STS-k paper's amortisation argument was built for, as a daemon
// (cmd/stsserve).
package serve

import (
	"context"
	"errors"
	"fmt"
	"slices"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"stsk"
	"stsk/internal/faultinject"
	"stsk/internal/panicsafe"
	"stsk/internal/trace"
)

// Variant names accepted by Solve: the empty string solves the plan's own
// triangular factor; VariantIC0 lazily computes the zero-fill incomplete
// Cholesky factor of the plan's symmetric matrix and solves that — the
// preconditioner sweeps of the paper's motivating PCG workload.
const (
	VariantDirect = ""
	VariantIC0    = "ic0"
)

// ErrPlanExists reports a Register whose name is already taken by a
// different spec (HTTP 409). Re-registering the identical spec is
// idempotent and succeeds.
var ErrPlanExists = errors.New("serve: plan already registered with a different spec")

// ErrVersionConflict reports a conditional UpdateValues whose ifVersion
// no longer matches the plan's current value version — another update
// landed first (HTTP 409, the optimistic-concurrency contract).
var ErrVersionConflict = errors.New("serve: plan version conflict")

// ErrPlanEvicted reports a request that lost the LRU eviction race on
// every retry attempt: the plan was evicted between lookup and enqueue,
// repeatedly, under pathological budget churn. Unlike ErrDraining this
// is not an operator condition — the plan rebuilds (or warm-loads from
// a snapshot) in milliseconds on a healthy server, so clients should
// retry after roughly a coalescer flush interval, not seconds.
var ErrPlanEvicted = errors.New("serve: plan evicted mid-request")

// PlanSpec names a matrix source and the ordering/solver configuration
// the registry builds for it. Exactly one of Class, Suite and File must
// be set; the zero values of the remaining fields select the library
// defaults (method STS-3, GOMAXPROCS workers, panel width 8).
type PlanSpec struct {
	Name string `json:"name"`

	// Matrix source: a synthetic class (stsk.Generate), a paper Table 1
	// suite id (stsk.GenerateSuite), or a Matrix Market file path
	// (stsk.ReadMatrixMarketFile).
	Class string `json:"class,omitempty"`
	Suite string `json:"suite,omitempty"`
	File  string `json:"file,omitempty"`

	// N is the target row count for generated sources (default 20000).
	N int `json:"n,omitempty"`

	// Method is the ordering scheme: csr-ls, csr-col, csr-3-ls, sts3
	// (default sts3).
	Method string `json:"method,omitempty"`

	// RowsPerSuper tunes the super-row size (stsk.WithRowsPerSuper).
	RowsPerSuper int `json:"rowsPerSuper,omitempty"`

	// Workers fixes the solver pool size (0 = GOMAXPROCS).
	Workers int `json:"workers,omitempty"`

	// BlockWidth caps the coalescer's panel width for this plan
	// (0 = the registry default, normally 8).
	BlockWidth int `json:"blockWidth,omitempty"`
}

// validate checks the spec shape without touching any matrix source.
func (s PlanSpec) validate() error {
	if s.Name == "" {
		return errors.New("serve: plan spec needs a name")
	}
	sources := 0
	for _, src := range []string{s.Class, s.Suite, s.File} {
		if src != "" {
			sources++
		}
	}
	if sources != 1 {
		return fmt.Errorf("serve: plan %q needs exactly one of class, suite, file", s.Name)
	}
	if s.Method != "" {
		if _, err := stsk.ParseMethod(s.Method); err != nil {
			return err
		}
	}
	return nil
}

// loadMatrix obtains the spec's matrix.
func (s PlanSpec) loadMatrix() (*stsk.Matrix, error) {
	n := s.N
	if n <= 0 {
		n = 20000
	}
	switch {
	case s.Class != "":
		return stsk.Generate(s.Class, n)
	case s.Suite != "":
		return stsk.GenerateSuite(s.Suite, n)
	default:
		return stsk.ReadMatrixMarketFile(s.File)
	}
}

// method resolves the spec's ordering scheme.
func (s PlanSpec) method() stsk.Method {
	if s.Method == "" {
		return stsk.STS3
	}
	m, _ := stsk.ParseMethod(s.Method) // validated at registration
	return m
}

// Config tunes a Registry. Zero values select the defaults noted on each
// field.
type Config struct {
	// BudgetBytes caps the estimated bytes of resident built plans; the
	// least-recently-used plan is evicted (coalescers drained, Solver
	// closed, memory released to the GC) when the budget is exceeded.
	// A single plan larger than the budget is still admitted — the
	// budget then holds nothing else. Default 1 GiB.
	BudgetBytes int64

	// FlushDelay is how long the coalescer holds a partial panel open for
	// more requests before shipping it. Default 500µs.
	FlushDelay time.Duration

	// QueueCap bounds each coalescer's request queue; a full queue
	// rejects with ErrQueueFull (HTTP 429). Default 256.
	QueueCap int

	// Workers is the default solver pool size for plans whose spec does
	// not set one (0 = GOMAXPROCS).
	Workers int

	// BlockWidth is the default maximum panel width (0 = 8, the widest
	// unrolled kernel).
	BlockWidth int

	// Retry bounds how Solve retries transient failures (eviction races,
	// queue-full rejections); see RetryPolicy.
	Retry RetryPolicy

	// Brownout tunes the degradation state machine; see BrownoutConfig.
	Brownout BrownoutConfig

	// SnapshotDir, when non-empty, enables plan snapshot persistence:
	// every built plan is serialized there write-behind (on build and on
	// UpdateValues), an acquire miss warm-loads the snapshot instead of
	// re-running the ordering pipeline, and WarmStart pre-populates the
	// registry from the directory at boot. Empty disables persistence.
	SnapshotDir string

	// DisableTracing turns the solve-lifecycle trace recorder off: no
	// per-stage span attribution, no stage histograms, an empty
	// /debug/traces. The armed overhead is ≤3% of coalesced throughput
	// (the tracebench cells), so tracing defaults to on.
	DisableTracing bool

	// TraceRing bounds the slow-trace ring buffer behind /debug/traces
	// (default 256 finished traces; the oldest is evicted).
	TraceRing int

	// TraceSlow is the ring's admission threshold: only traces at least
	// this slow end to end are retained for /debug/traces. Zero admits
	// every finished trace (the query-time thresholdMs parameter still
	// filters). Per-stage histograms observe every trace regardless.
	TraceSlow time.Duration
}

func (c Config) withDefaults() Config {
	if c.BudgetBytes <= 0 {
		c.BudgetBytes = 1 << 30
	}
	if c.FlushDelay <= 0 {
		c.FlushDelay = 500 * time.Microsecond
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 256
	}
	if c.BlockWidth <= 0 {
		c.BlockWidth = 8
	}
	if c.TraceRing <= 0 {
		c.TraceRing = 256
	}
	c.Retry = c.Retry.withDefaults()
	return c
}

// variantState is one built, servable triangular system: a Plan, its
// persistent pooled Solver, and the pair of coalescers (forward and
// backward sweeps) multiplexing requests onto it.
type variantState struct {
	plan         *stsk.Plan
	solver       *stsk.Solver
	lower, upper *coalescer
	bytes        int64
}

// close drains both coalescers (queued requests still get solved) and
// then closes the solver — the GC-safe eviction order: no panel is ever
// dispatched to a closed pool, and once close returns the only thing
// keeping the plan's memory alive is the garbage collector's next sweep.
func (v *variantState) close() {
	v.lower.close()
	v.upper.close()
	v.solver.Close()
}

// planState is the built state of one registry entry: the base variant
// plus the lazily built IC0 variant. lastUse and bytes are maintained
// under the registry mutex; ic0 is an atomic pointer so listing and
// routing never take ic0Mu (which serialises only the build/shutdown
// path and is never acquired while the registry mutex is held by the
// same goroutine's callees — eviction reads bytes, not ic0).
type planState struct {
	spec    PlanSpec
	base    variantState
	lastUse int64
	bytes   int64 // base + built variants; registry-mutex-guarded

	ic0Mu   sync.Mutex
	ic0     atomic.Pointer[variantState]
	evicted bool // under ic0Mu; late IC0 builds bounce and retry
}

// shutdown gracefully stops everything the state owns. Runs outside the
// registry mutex (eviction spawns it on a goroutine; Close runs it
// synchronously after releasing the mutex).
func (st *planState) shutdown() {
	st.ic0Mu.Lock()
	st.evicted = true
	ic0 := st.ic0.Swap(nil)
	st.ic0Mu.Unlock()
	if ic0 != nil {
		ic0.close()
	}
	st.base.close()
}

// Registry is the concurrent plan cache at the heart of the serving
// subsystem. Specs are registered by name; the built artifacts (Plan,
// pooled Solver, coalescers, lazy IC0 variant) are cached behind an LRU
// byte budget. Eviction only forgets the built state — the spec stays
// registered, and the next request transparently rebuilds. All methods
// are safe for concurrent use.
type Registry struct {
	cfg Config
	met *Metrics

	mu      sync.Mutex
	entries map[string]*entry
	used    int64
	clock   int64
	closed  bool

	// updMu serialises UpdateValues calls so the version check, the
	// refactorization, and the version bump are one atomic step from the
	// client's point of view; solves never take it.
	updMu sync.Mutex

	// shutdowns tracks eviction-spawned teardown goroutines so Close can
	// honor its "every pool has exited" contract.
	shutdowns sync.WaitGroup

	// flushNs is the live coalescer flush deadline in nanoseconds,
	// shared by every coalescer the registry builds; the brownout
	// controller shrinks it under load and restores it on heal.
	flushNs atomic.Int64

	// brown is the degradation state machine; nil when disabled.
	brown *brownout

	// ring holds finished slow traces for /debug/traces; nil when
	// tracing is disabled.
	ring *trace.Ring
}

// entry is one registered spec plus its cached built state. st and
// building are guarded by Registry.mu; building is non-nil while one
// goroutine runs the expensive build, and other requests wait on it
// instead of duplicating the work. version and vals live here rather
// than on planState so value updates survive eviction: the next rebuild
// reapplies vals via Plan.Refactor before the state goes live.
type entry struct {
	spec     PlanSpec
	st       *planState
	building chan struct{}
	version  uint64    // value version, 1 at registration; bumped by UpdateValues
	vals     []float64 // latest updated values (immutable copy), nil = spec's own

	// snapMu serialises this entry's write-behind snapshot writers so the
	// on-disk file always converges to the latest (state, version) pair.
	snapMu sync.Mutex
}

// NewRegistry builds an empty registry and starts its brownout
// controller (unless cfg.Brownout.Disable).
func NewRegistry(cfg Config) *Registry {
	r := &Registry{
		cfg:     cfg.withDefaults(),
		met:     &Metrics{},
		entries: make(map[string]*entry),
	}
	r.flushNs.Store(int64(r.cfg.FlushDelay))
	if !r.cfg.DisableTracing {
		r.ring = trace.NewRing(r.cfg.TraceRing)
	}
	if !r.cfg.Brownout.Disable {
		r.brown = newBrownout(r, r.cfg.Brownout)
		r.brown.start()
	}
	return r
}

// TracingEnabled reports whether the solve-lifecycle trace recorder is
// armed.
func (r *Registry) TracingEnabled() bool { return r.ring != nil }

// TraceRing exposes the slow-trace ring buffer (nil when tracing is
// disabled) — the store behind GET /debug/traces.
func (r *Registry) TraceRing() *trace.Ring { return r.ring }

// NewTrace starts one request's lifecycle trace with the given ID (""
// generates one), or returns nil — inert everywhere — when tracing is
// disabled. Pair with FinishTrace.
func (r *Registry) NewTrace(id string) *trace.Trace {
	if r.ring == nil {
		return nil
	}
	return trace.New(id)
}

// FinishTrace closes a trace started by NewTrace (or adopted by Solve):
// the finished record feeds the per-stage latency histograms and, when
// at least TraceSlow end to end, the /debug/traces ring. Nil-safe.
func (r *Registry) FinishTrace(tr *trace.Trace, plan string, err error) {
	if tr == nil {
		return
	}
	rec := tr.Finish(plan, outcomeLabel(err))
	r.met.observeTrace(rec, err == nil)
	if r.ring != nil && rec.Total >= r.cfg.TraceSlow {
		r.ring.Add(rec)
	}
	tr.Release()
}

// outcomeLabel classifies a solve error for trace records, mirroring the
// metrics outcome counters.
func outcomeLabel(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return "cancelled"
	case errors.Is(err, ErrQueueFull):
		return "rejected"
	case errors.Is(err, ErrShed):
		return "shed"
	case errors.Is(err, ErrDegraded):
		return "degraded"
	case errors.Is(err, panicsafe.ErrInternal):
		return "panic"
	default:
		return "error"
	}
}

// BrownoutState reports the degradation state and, when degraded, the
// reason that tripped the controller. A closed registry is draining no
// matter what the controller last said.
func (r *Registry) BrownoutState() (BrownoutState, string) {
	r.mu.Lock()
	closed := r.closed
	r.mu.Unlock()
	if closed {
		return BrownoutDraining, "registry closed"
	}
	if r.brown == nil {
		return BrownoutHealthy, ""
	}
	return r.brown.State()
}

// Draining reports whether the registry has been closed.
func (r *Registry) Draining() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.closed
}

// AdmitPriority applies brownout load shedding: while degraded, a
// request with priority below the configured threshold is refused with
// ErrShed (and counted). Healthy and draining registries admit
// everything — draining refuses later with ErrDraining anyway.
func (r *Registry) AdmitPriority(pri int) error {
	if r.brown == nil {
		return nil
	}
	if st, _ := r.brown.State(); st == BrownoutDegraded && pri < r.brown.cfg.ShedBelowPriority {
		r.met.Shed.Add(1)
		return fmt.Errorf("%w: priority %d below threshold %d", ErrShed, pri, r.brown.cfg.ShedBelowPriority)
	}
	return nil
}

// queueStats sums queue depth and capacity across every live coalescer
// — the brownout controller's pressure gauge.
func (r *Registry) queueStats() (depth, capacity int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, e := range r.entries {
		if st := e.st; st != nil {
			depth += st.base.lower.depth() + st.base.upper.depth()
			capacity += 2 * r.cfg.QueueCap
			if ic0 := st.ic0.Load(); ic0 != nil {
				depth += ic0.lower.depth() + ic0.upper.depth()
				capacity += 2 * r.cfg.QueueCap
			}
		}
	}
	return depth, capacity
}

// Metrics returns the registry's shared instrumentation.
func (r *Registry) Metrics() *Metrics { return r.met }

// PlanInfo describes one registered plan for the listing and
// registration APIs.
type PlanInfo struct {
	Spec    PlanSpec `json:"spec"`
	Loaded  bool     `json:"loaded"`
	Version uint64   `json:"version,omitempty"` // value version; bumped by UpdateValues
	N       int      `json:"n,omitempty"`
	NNZ     int64    `json:"nnz,omitempty"`
	Packs   int      `json:"packs,omitempty"`
	Bytes   int64    `json:"bytes,omitempty"`
	IC0     bool     `json:"ic0,omitempty"` // IC0 variant currently built
}

// Register stores a spec and eagerly builds its plan, so registration
// reports build errors (bad file, unknown class) and the plan's
// statistics synchronously. Registering an identical spec again is
// idempotent; a name collision with a different spec fails with
// ErrPlanExists.
func (r *Registry) Register(spec PlanSpec) (PlanInfo, error) {
	if err := spec.validate(); err != nil {
		return PlanInfo{}, err
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return PlanInfo{}, ErrDraining
	}
	inserted := false
	if e, ok := r.entries[spec.Name]; ok && e.spec != spec {
		r.mu.Unlock()
		return PlanInfo{}, fmt.Errorf("%w: %q", ErrPlanExists, spec.Name)
	} else if !ok {
		r.entries[spec.Name] = &entry{spec: spec, version: 1}
		inserted = true
	}
	r.mu.Unlock()
	if _, err := r.acquire(spec.Name); err != nil {
		if inserted {
			// A spec that never built (bad class, unreadable file) does not
			// stay registered — the name is free for a corrected retry.
			r.mu.Lock()
			if e, ok := r.entries[spec.Name]; ok && e.spec == spec && e.st == nil && e.building == nil {
				delete(r.entries, spec.Name)
			}
			r.mu.Unlock()
		}
		return PlanInfo{}, err
	}
	infos := r.list(spec.Name)
	if len(infos) == 0 {
		return PlanInfo{}, ErrDraining // closed between build and listing
	}
	return infos[0], nil
}

// List describes every registered plan, built or not.
func (r *Registry) List() []PlanInfo { return r.list("") }

func (r *Registry) list(only string) []PlanInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []PlanInfo
	for name, e := range r.entries {
		if only != "" && name != only {
			continue
		}
		info := PlanInfo{Spec: e.spec, Version: e.version}
		if st := e.st; st != nil {
			stats := st.base.plan.Stats()
			info.Loaded = true
			info.N = st.base.plan.N()
			info.NNZ = stats.NNZ
			info.Packs = st.base.plan.NumPacks()
			info.Bytes = st.bytes
			info.IC0 = st.ic0.Load() != nil
		}
		out = append(out, info)
	}
	return out
}

// Len reports the number of registered plans.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries)
}

// Loaded reports the number of plans currently built and resident.
func (r *Registry) Loaded() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, e := range r.entries {
		if e.st != nil {
			n++
		}
	}
	return n
}

// BytesUsed reports the estimated bytes of resident built plans.
func (r *Registry) BytesUsed() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.used
}

// QueueDepth reports the requests currently queued across every resident
// coalescer — the backpressure gauge exported at /metrics.
func (r *Registry) QueueDepth() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	depth := 0
	for _, e := range r.entries {
		if st := e.st; st != nil {
			depth += st.base.lower.depth() + st.base.upper.depth()
			if ic0 := st.ic0.Load(); ic0 != nil {
				depth += ic0.lower.depth() + ic0.upper.depth()
			}
		}
	}
	return depth
}

// Solve routes one right-hand side through the named plan's coalescer
// and returns the solution (in plan order), bitwise identical to
// Plan.Solve on the same system. variant selects the factor (VariantIC0
// builds the incomplete-Cholesky factor lazily on first use); upper
// selects the transposed sweep L′ᵀx = b. The context is honored
// end-to-end: queueing, coalescing, and dispatch.
//
// If the plan was evicted between lookup and enqueue (the race window is
// a few instructions wide), Solve transparently rebuilds it and retries
// once.
func (r *Registry) Solve(ctx context.Context, name, variant string, upper bool, b []float64) ([]float64, error) {
	r.met.Requests.Add(1)
	// A caller below the HTTP layer (benchmarks, embedders) arrives with
	// no trace in its context; start and finish one here so direct Solve
	// traffic still feeds the stage histograms and the slow-trace ring.
	// The HTTP layer's traces pass through untouched — the server owns
	// their admission/serialize spans and their finish.
	tr := trace.FromContext(ctx)
	owned := (*trace.Trace)(nil)
	if tr == nil && r.ring != nil {
		owned = r.NewTrace("")
		ctx = trace.NewContext(ctx, owned)
	}
	start := time.Now()
	x, err := r.solve(ctx, name, variant, upper, b)
	if owned != nil {
		r.FinishTrace(owned, name, err)
	}
	switch {
	case err == nil:
		r.met.Solved.Add(1)
		r.met.ObserveLatency(time.Since(start))
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		r.met.Cancelled.Add(1)
	case errors.Is(err, ErrQueueFull):
		r.met.Rejected.Add(1)
	case errors.Is(err, ErrDegraded), errors.Is(err, ErrShed):
		// Intentional brownout load shedding, not a malfunction: counted
		// under its own metric so failure-rate alarms stay quiet while the
		// controller is deliberately refusing work.
		r.met.Degraded.Add(1)
	case errors.Is(err, panicsafe.ErrInternal):
		// A kernel panic contained at an engine job boundary: failed,
		// and counted separately so operators can alarm on it.
		r.met.PanicsRecovered.Add(1)
		r.met.Failed.Add(1)
	default:
		r.met.Failed.Add(1)
	}
	return x, err
}

// solve is the retry-policy loop around solveOnce: bounded attempts,
// only the retriable sentinels (eviction races, queue-full rejections),
// jittered exponential backoff for backpressure, and never a sleep the
// caller's deadline cannot afford.
func (r *Registry) solve(ctx context.Context, name, variant string, upper bool, b []float64) ([]float64, error) {
	if variant != VariantDirect && variant != VariantIC0 {
		return nil, fmt.Errorf("serve: unknown variant %q (have \"\" and %q)", variant, VariantIC0)
	}
	pol := r.cfg.Retry
	for attempt := 1; ; attempt++ {
		x, err := r.solveOnce(ctx, name, variant, upper, b)
		if err == nil || !retriable(err) || attempt >= pol.MaxAttempts {
			return x, translateEvicted(err, name)
		}
		if errors.Is(err, ErrQueueFull) {
			// Backpressure: give the coalescer a jittered beat to drain
			// before re-admitting. An eviction race skips the backoff —
			// the plan rebuild itself is the wait.
			b0 := trace.Now()
			ok := sleepRetry(ctx, pol.backoff(attempt))
			trace.FromContext(ctx).Observe(trace.StageRetryBackoff, b0, trace.Now())
			if !ok {
				return nil, translateEvicted(err, name)
			}
		}
		r.met.Retries.Add(1)
	}
}

// solveOnce is one acquire-and-enqueue attempt.
func (r *Registry) solveOnce(ctx context.Context, name, variant string, upper bool, b []float64) ([]float64, error) {
	g0 := trace.Now()
	st, err := r.acquire(name)
	if err != nil {
		return nil, err
	}
	// Validate the length against the base plan (the IC0 factor has
	// the same dimension) BEFORE touching the lazy variant, so a
	// wrong-length request can never trigger an incomplete-Cholesky
	// factorization it has no use for.
	if len(b) != st.base.plan.N() {
		return nil, fmt.Errorf("%w: rhs length %d, want %d for plan %q",
			stsk.ErrDimension, len(b), st.base.plan.N(), name)
	}
	vs := &st.base
	if variant == VariantIC0 {
		if vs, err = r.acquireIC0(st); err != nil {
			return nil, err
		}
	}
	// The registry span covers plan acquisition end to end — a cache hit
	// is microseconds, a cold build or snapshot warm-load is where a
	// "slow solve" that was really a slow build shows up.
	trace.FromContext(ctx).Observe(trace.StageRegistry, g0, trace.Now())
	c := vs.lower
	if upper {
		c = vs.upper
	}
	return c.solve(ctx, b)
}

// translateEvicted keeps the internal errCoalescerClosed sentinel from
// escaping the registry when a request loses the eviction race on every
// attempt (pathological budget churn): the client gets a retriable 503
// with a flush-interval-scale retry hint (ErrPlanEvicted) instead of an
// opaque 500 — or the 2-second ErrDraining back-off, which would be
// wildly pessimistic for a plan that rebuilds in milliseconds.
func translateEvicted(err error, name string) error {
	if errors.Is(err, errCoalescerClosed) {
		return fmt.Errorf("%w: plan %q, retry", ErrPlanEvicted, name)
	}
	return err
}

// acquire returns the entry's built state, building it (once, with
// concurrent callers waiting) when absent, charging the byte budget, and
// evicting least-recently-used plans to fit.
func (r *Registry) acquire(name string) (*planState, error) {
	r.mu.Lock()
	for {
		if r.closed {
			r.mu.Unlock()
			return nil, ErrDraining
		}
		e, ok := r.entries[name]
		if !ok {
			r.mu.Unlock()
			return nil, fmt.Errorf("%w: %q", ErrUnknownPlan, name)
		}
		if e.st != nil {
			r.clock++
			e.st.lastUse = r.clock
			st := e.st
			r.mu.Unlock()
			return st, nil
		}
		if e.building != nil {
			ch := e.building
			r.mu.Unlock()
			<-ch
			r.mu.Lock()
			continue // built, build failed (this caller retries), or evicted again
		}
		if r.brown != nil {
			// A degraded registry refuses cold builds: the ordering
			// pipeline is seconds of CPU the overloaded node cannot spare,
			// and resident plans are what it must keep serving.
			if st, _ := r.brown.State(); st == BrownoutDegraded {
				r.mu.Unlock()
				return nil, fmt.Errorf("%w: plan %q is not resident", ErrDegraded, name)
			}
		}
		e.building = make(chan struct{})
		// UpdateValues commits version/vals only while no build is in
		// flight (see its residency re-check), so both are frozen while we
		// hold e.building.
		pend := e.vals
		eVer := e.version
		r.mu.Unlock()

		// Prefer a warm load: a valid snapshot skips the seconds-scale
		// ordering pipeline entirely. A stale or missing snapshot falls
		// through to the cold build.
		var st *planState
		var err error
		snapVer, warm := uint64(0), false
		var snapVals []float64
		if r.cfg.SnapshotDir != "" {
			st, snapVer, snapVals, warm = r.loadSnapshot(e.spec, eVer, pend)
		}
		if !warm {
			st, err = r.buildState(e.spec)
			if err == nil && pend != nil {
				// The plan was numerically updated before this (re)build —
				// reapply the latest values so an evicted-and-rebuilt plan never
				// silently reverts to the spec's original matrix.
				if rerr := st.base.plan.Refactor(pend); rerr != nil {
					st.shutdown()
					st, err = nil, fmt.Errorf("serve: reapplying updated values for plan %q: %w", e.spec.Name, rerr)
				}
			}
		}

		r.mu.Lock()
		close(e.building)
		e.building = nil
		if err != nil {
			r.mu.Unlock()
			return nil, err
		}
		if r.closed {
			r.mu.Unlock()
			st.shutdown()
			return nil, ErrDraining
		}
		e.st = st
		r.used += st.bytes
		if warm {
			r.met.SnapshotLoads.Add(1)
			if snapVer > e.version {
				// The snapshot outlives this registry's knowledge (a fresh
				// registration against a previous process's snapshot): adopt
				// its version and values so later rebuilds replay them.
				e.version = snapVer
				e.vals = snapVals
			}
		} else {
			r.met.PlanBuilds.Add(1)
		}
		if !warm || snapVer < e.version {
			// The on-disk snapshot is absent or lags the live state; bring
			// it up to date write-behind.
			r.snapshotAsync(e, st)
		}
		r.evictLocked(st)
	}
}

// buildState runs the expensive part — matrix load, ordering pipeline,
// solver pool — outside the registry mutex.
func (r *Registry) buildState(spec PlanSpec) (*planState, error) {
	if err := faultinject.Fire(faultinject.RegistryBuild); err != nil {
		return nil, err
	}
	mat, err := spec.loadMatrix()
	if err != nil {
		return nil, err
	}
	plan, err := stsk.Build(mat, spec.method(), stsk.WithRowsPerSuper(spec.RowsPerSuper))
	if err != nil {
		return nil, err
	}
	st := &planState{spec: spec, base: r.newVariant(plan, spec)}
	st.bytes = st.base.bytes
	return st, nil
}

// newVariant wires a built plan into a servable variant: pooled solver,
// forward and backward coalescers, byte estimate.
func (r *Registry) newVariant(plan *stsk.Plan, spec PlanSpec) variantState {
	workers := spec.Workers
	if workers <= 0 {
		workers = r.cfg.Workers
	}
	width := spec.BlockWidth
	if width <= 0 {
		width = r.cfg.BlockWidth
	}
	solver := plan.NewSolver(stsk.WithWorkers(workers), stsk.WithBlockWidth(width))
	v := variantState{
		plan:   plan,
		solver: solver,
		lower:  newCoalescer(solver, false, width, r.cfg.QueueCap, &r.flushNs, r.met),
		upper:  newCoalescer(solver, true, width, r.cfg.QueueCap, &r.flushNs, r.met),
		bytes:  estimateBytes(plan),
	}
	v.lower.start()
	v.upper.start()
	return v
}

// acquireIC0 returns (building lazily, once) the state's
// incomplete-Cholesky variant, charging its bytes against the budget.
func (r *Registry) acquireIC0(st *planState) (*variantState, error) {
	if vs := st.ic0.Load(); vs != nil {
		return vs, nil
	}
	st.ic0Mu.Lock()
	defer st.ic0Mu.Unlock()
	if st.evicted {
		return nil, errCoalescerClosed
	}
	if vs := st.ic0.Load(); vs != nil {
		return vs, nil
	}
	if err := faultinject.Fire(faultinject.RegistryBuild); err != nil {
		return nil, err
	}
	fplan, err := st.base.plan.IC0()
	if err != nil {
		return nil, err
	}
	vs := r.newVariant(fplan, st.spec)
	st.ic0.Store(&vs)
	r.mu.Lock()
	// Only charge the budget if the state is still resident: an eviction
	// that raced this build (its shutdown is parked on ic0Mu right now)
	// has already uncharged st.bytes, and will close this variant the
	// moment ic0Mu is released — charging it would leak the bytes into
	// r.used forever and bias the registry toward eviction thrash.
	if e, ok := r.entries[st.spec.Name]; ok && e.st == st {
		r.used += vs.bytes
		st.bytes += vs.bytes
		r.evictLocked(st)
	}
	r.met.PlanBuilds.Add(1)
	r.mu.Unlock()
	return &vs, nil
}

// dropIC0 discards st's lazily built IC0 variant (factored from values
// that are being superseded) so the next ic0 request re-factorizes.
// Teardown runs off-mutex like an eviction, and the bytes are uncharged
// only if the state is still resident (an eviction racing us already
// did it).
func (r *Registry) dropIC0(name string, st *planState) {
	st.ic0Mu.Lock()
	old := st.ic0.Swap(nil)
	st.ic0Mu.Unlock()
	if old == nil {
		return
	}
	r.mu.Lock()
	if e, ok := r.entries[name]; ok && e.st == st {
		r.used -= old.bytes
		st.bytes -= old.bytes
	}
	r.mu.Unlock()
	r.shutdowns.Add(1)
	panicsafe.Go("serve.ic0-teardown", func() {
		defer r.shutdowns.Done()
		old.close()
	})
}

// UpdateValues performs a numeric refactorization of the named plan:
// new values for the registered matrix's fixed sparsity are swapped in
// via Plan.Refactor (copy-on-write — in-flight solves finish on the old
// values, later dispatches see the new ones; nothing drains), the lazy
// IC0 variant factored from the old values is dropped for rebuild on
// next use, and the plan's value version is bumped. ifVersion, when
// non-zero, makes the update conditional: it fails with
// ErrVersionConflict unless the current version matches (optimistic
// concurrency for competing updaters). The values slice is copied and
// retained, so updates survive LRU eviction — a rebuild reapplies them.
func (r *Registry) UpdateValues(name string, values []float64, ifVersion uint64) (PlanInfo, error) {
	r.updMu.Lock()
	defer r.updMu.Unlock()

	st, err := r.acquire(name)
	if err != nil {
		return PlanInfo{}, err
	}
	r.mu.Lock()
	e, ok := r.entries[name]
	if !ok {
		r.mu.Unlock()
		return PlanInfo{}, fmt.Errorf("%w: %q", ErrUnknownPlan, name)
	}
	if ifVersion != 0 && e.version != ifVersion {
		cur := e.version
		r.mu.Unlock()
		return PlanInfo{}, fmt.Errorf("%w: plan %q is at version %d, update conditioned on %d",
			ErrVersionConflict, name, cur, ifVersion)
	}
	r.mu.Unlock()

	// Copy before swapping: the caller keeps its slice, and the retained
	// copy must stay immutable for eviction-rebuild replay.
	vals := append([]float64(nil), values...)
	for {
		if err := st.base.plan.Refactor(vals); err != nil {
			return PlanInfo{}, err
		}

		// The IC0 variant was factored from the old values; drop it so the
		// next ic0 request re-factorizes lazily on the same pattern.
		r.dropIC0(name, st)

		// Residency re-check: the version bump is committed only in the
		// same critical section that proves the refactored state is the
		// resident one. Without this, an eviction landing between acquire
		// and Refactor leaves the refactorization on a detached state while
		// a concurrent rebuild (which read e.vals before our commit)
		// installs the OLD values — and the bumped version would then lie
		// about what the resident plan serves until its next eviction.
		r.mu.Lock()
		e, ok := r.entries[name]
		if !ok {
			r.mu.Unlock()
			return PlanInfo{}, fmt.Errorf("%w: %q", ErrUnknownPlan, name)
		}
		if e.st == st || (e.st == nil && e.building == nil) {
			// Either our state is resident (it now carries vals), or nothing
			// is resident and no build is in flight — the next build reads
			// e.vals under r.mu and replays them. In both cases a reader of
			// the new version observes the new values.
			e.vals = vals
			e.version++
			if !r.closed {
				r.snapshotAsync(e, st)
			}
			r.mu.Unlock()
			break
		}
		r.mu.Unlock()

		// Lost the race: an eviction+rebuild (or a build still in flight
		// that read the pre-update values) made a different state current.
		// Reapply the values to whatever is resident and re-check, until
		// the refactored state and the resident state are the same one.
		if st, err = r.acquire(name); err != nil {
			return PlanInfo{}, err
		}
	}
	r.met.ValueUpdates.Add(1)

	infos := r.list(name)
	if len(infos) == 0 {
		return PlanInfo{}, ErrDraining // removed between update and listing
	}
	return infos[0], nil
}

// versions snapshots every registered plan's value version, sorted by
// name, for the per-plan /metrics gauge.
func (r *Registry) versions() []planVersion {
	r.mu.Lock()
	out := make([]planVersion, 0, len(r.entries))
	for name, e := range r.entries {
		out = append(out, planVersion{name: name, version: e.version})
	}
	r.mu.Unlock()
	slices.SortFunc(out, func(a, b planVersion) int { return strings.Compare(a.name, b.name) })
	return out
}

type planVersion struct {
	name    string
	version uint64
}

// evictLocked (registry mutex held) drops least-recently-used built
// plans until the budget fits, sparing keep (the state just built or
// extended — evicting it would thrash). The actual teardown — coalescer
// drain, Solver.Close — runs on a goroutine outside the mutex; requests
// that raced the eviction either complete during the drain or bounce
// with errCoalescerClosed and transparently rebuild.
func (r *Registry) evictLocked(keep *planState) {
	for r.used > r.cfg.BudgetBytes {
		var victim *entry
		for _, e := range r.entries {
			if e.st == nil || e.st == keep {
				continue
			}
			if victim == nil || e.st.lastUse < victim.st.lastUse {
				victim = e
			}
		}
		if victim == nil {
			return
		}
		st := victim.st
		victim.st = nil
		r.used -= st.bytes
		r.met.Evictions.Add(1)
		r.shutdowns.Add(1)
		panicsafe.Go("serve.evict-teardown", func() {
			defer r.shutdowns.Done()
			st.shutdown()
		})
	}
}

// Close drains every coalescer (queued requests still complete), closes
// every solver, and marks the registry draining: later Register and
// Solve calls fail with ErrDraining. Close is idempotent and returns
// once every resident pool has exited.
func (r *Registry) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	var sts []*planState
	for _, e := range r.entries {
		if e.st != nil {
			sts = append(sts, e.st)
			e.st = nil
		}
	}
	r.used = 0
	r.mu.Unlock()
	// Stop the brownout controller outside the mutex — its evaluate tick
	// takes r.mu (queueStats), so stopping under the lock would deadlock.
	if r.brown != nil {
		r.brown.close()
	}
	for _, st := range sts {
		st.shutdown()
	}
	// Teardowns spawned by earlier evictions may still be draining; a
	// Close that returns with solver goroutines live would break
	// embedders asserting quiescence.
	r.shutdowns.Wait()
}

// estimateBytes approximates a built plan's resident footprint: the CSR
// factor and its transpose (16 B per stored entry each), their packed
// int32 twins (12 B each), and the per-row bookkeeping — generous on
// purpose, since the budget exists to bound the process, not to meter it.
func estimateBytes(p *stsk.Plan) int64 {
	st := p.Stats()
	return st.NNZ*56 + int64(st.Rows)*96 + 1<<16
}
