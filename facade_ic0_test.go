package stsk

import (
	"math"
	"math/rand"
	"testing"
)

func TestSolveUpperParallelCorrect(t *testing.T) {
	m, err := Generate("trimesh", 1600)
	if err != nil {
		t.Fatal(err)
	}
	for _, method := range Methods() {
		p, err := Build(m, method, WithRowsPerSuper(10))
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(31))
		xTrue := make([]float64, p.N())
		for i := range xTrue {
			xTrue[i] = rng.NormFloat64()
		}
		// b = L′ᵀ · xTrue via ApplySymmetric minus strictly-lower part is
		// awkward; instead verify L′ᵀ x = b by residual through the
		// symmetric operator identity: compute b with a manual transpose
		// multiply using ApplySymmetric(A′) = L + Lᵀ - D.
		// Simpler: solve and check the defining equation via SolveUpper of
		// a manufactured b built from two triangular applications.
		y, err := p.Solve(p.RHSFor(xTrue)) // L′ y = L′ xTrue ⇒ y = xTrue
		if err != nil {
			t.Fatal(err)
		}
		if d := maxDiff(y, xTrue); d > 1e-9 {
			t.Fatalf("%v: forward sanity failed (%g)", method, d)
		}
		// Round trip: z = (L′ᵀ)⁻¹ (L′ᵀ would require U·xTrue); build U·x
		// through ApplySymmetric: A′x = Lx + Uᵀ... instead verify
		// (L′ᵀ)⁻¹ then L′ᵀ-multiply via residual on the SGS identity used
		// by the cg example: M z = r with M = L D⁻¹ Lᵀ.
		r := make([]float64, p.N())
		for i := range r {
			r[i] = rng.Float64()*2 - 1
		}
		yy, err := p.Solve(r)
		if err != nil {
			t.Fatal(err)
		}
		d := p.Diagonal()
		dy := make([]float64, len(yy))
		for i := range yy {
			dy[i] = d[i] * yy[i]
		}
		z, err := p.SolveUpper(dy)
		if err != nil {
			t.Fatal(err)
		}
		// Forward-apply M: u = Lᵀz; u = D⁻¹u; u = L u; compare to r.
		// Use the plan's own pieces: A′ = L + Lᵀ − D ⇒ Lᵀz = A′z − Lz + Dz.
		az := make([]float64, p.N())
		p.ApplySymmetric(az, z)
		lz := applyLower(p, z)
		u := make([]float64, p.N())
		for i := range u {
			u[i] = (az[i] - lz[i] + d[i]*z[i]) / d[i]
		}
		lu := applyLower(p, u)
		if dd := maxDiff(lu, r); dd > 1e-8 {
			t.Fatalf("%v: SGS identity residual %g", method, dd)
		}
	}
}

// applyLower computes L′·x through the public API: L′x = (A′x + D x − L′ᵀx)
// is circular, so rebuild L′ action from Solve: L′(L′⁻¹ v) = v. Instead use
// RHSFor, which is exactly L′·x.
func applyLower(p *Plan, x []float64) []float64 {
	return p.RHSFor(x)
}

func maxDiff(a, b []float64) float64 {
	d := 0.0
	for i := range a {
		if e := math.Abs(a[i] - b[i]); e > d {
			d = e
		}
	}
	return d
}

func TestIC0FactorPlan(t *testing.T) {
	m, err := Generate("grid3d", 3000)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Build(m, STS3, WithRowsPerSuper(12))
	if err != nil {
		t.Fatal(err)
	}
	ic, err := p.IC0()
	if err != nil {
		t.Fatal(err)
	}
	if ic.NumPacks() != p.NumPacks() || ic.N() != p.N() {
		t.Fatal("IC0 plan structure diverged")
	}
	// The factor plan must solve its own triangular system exactly.
	xTrue := make([]float64, ic.N())
	for i := range xTrue {
		xTrue[i] = float64(i%5) + 1
	}
	b := ic.RHSFor(xTrue)
	x, err := ic.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	if r := ic.Residual(x, b); r > 1e-9 {
		t.Fatalf("IC0 forward residual %g", r)
	}
	// M = L̂L̂ᵀ must reproduce A′ entrywise on the pattern: check via the
	// preconditioner application being near-identity on smooth vectors.
	v := make([]float64, ic.N())
	for i := range v {
		v[i] = 1
	}
	av := make([]float64, ic.N())
	p.ApplySymmetric(av, v)
	y, err := ic.Solve(av)
	if err != nil {
		t.Fatal(err)
	}
	z, err := ic.SolveUpper(y)
	if err != nil {
		t.Fatal(err)
	}
	num, den := 0.0, 0.0
	for i := range v {
		d := z[i] - v[i]
		num += d * d
		den += v[i] * v[i]
	}
	if rel := math.Sqrt(num / den); rel > 0.8 {
		t.Fatalf("IC(0) preconditioner application too far from identity: %.3f", rel)
	}
}
