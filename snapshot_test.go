package stsk

import (
	"bytes"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"stsk/internal/snapshot"
)

// snapshotRHS builds a deterministic right-hand side for bitwise solve
// comparisons.
func snapshotRHS(p *Plan, seed int) []float64 {
	xTrue := make([]float64, p.N())
	for i := range xTrue {
		xTrue[i] = math.Sin(float64(i + seed))
	}
	return p.RHSFor(xTrue)
}

func solveBitwiseEqual(t *testing.T, a, b *Plan, label string) {
	t.Helper()
	rhs := snapshotRHS(a, 11)
	xa, err := a.Solve(rhs)
	if err != nil {
		t.Fatalf("%s: original solve: %v", label, err)
	}
	xb, err := b.Solve(rhs)
	if err != nil {
		t.Fatalf("%s: reloaded solve: %v", label, err)
	}
	for i := range xa {
		if xa[i] != xb[i] {
			t.Fatalf("%s: reloaded solve differs at %d: %v vs %v", label, i, xa[i], xb[i])
		}
	}
	ua, err := a.SolveUpper(rhs)
	if err != nil {
		t.Fatalf("%s: original upper: %v", label, err)
	}
	ub, err := b.SolveUpper(rhs)
	if err != nil {
		t.Fatalf("%s: reloaded upper: %v", label, err)
	}
	for i := range ua {
		if ua[i] != ub[i] {
			t.Fatalf("%s: reloaded upper differs at %d: %v vs %v", label, i, ua[i], ub[i])
		}
	}
}

// TestSnapshotRoundTripCorpus snapshots plans across matrix classes and
// every ordering method and requires the reload to be an exact replica:
// same shape, same version, bitwise-identical solves.
func TestSnapshotRoundTripCorpus(t *testing.T) {
	for _, class := range []string{"grid2d", "grid3d", "rgg", "roadnet"} {
		for _, method := range []Method{CSRLS, CSR3LS, CSRCOL, STS3} {
			label := class + "/" + method.String()
			mat, err := Generate(class, 1500)
			if err != nil {
				t.Fatal(err)
			}
			p, err := Build(mat, method)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			extra := SnapshotExtra{Meta: []byte("m:" + label), AuxVals: nil}
			if err := p.WriteSnapshot(&buf, extra); err != nil {
				t.Fatalf("%s: write: %v", label, err)
			}
			q, gotExtra, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("%s: read: %v", label, err)
			}
			if string(gotExtra.Meta) != "m:"+label || gotExtra.AuxVals != nil {
				t.Fatalf("%s: extra sections mangled: %+v", label, gotExtra)
			}
			if q.N() != p.N() || q.Method() != p.Method() || q.NumPacks() != p.NumPacks() {
				t.Fatalf("%s: shape mismatch: n %d/%d method %v/%v packs %d/%d",
					label, q.N(), p.N(), q.Method(), p.Method(), q.NumPacks(), p.NumPacks())
			}
			if q.ValuesVersion() != p.ValuesVersion() {
				t.Fatalf("%s: version %d, want %d", label, q.ValuesVersion(), p.ValuesVersion())
			}
			solveBitwiseEqual(t, p, q, label)

			// The reload keeps accepting input-order Refactor calls.
			vals := mat.Values()
			for i := range vals {
				vals[i] *= 2
			}
			if err := p.Refactor(vals); err != nil {
				t.Fatal(err)
			}
			if err := q.Refactor(vals); err != nil {
				t.Fatalf("%s: reloaded Refactor: %v", label, err)
			}
			solveBitwiseEqual(t, p, q, label+" post-refactor")
		}
	}
}

// TestSnapshotDerivedPlanRefused confirms an IC0 factor plan — whose
// values are derived, not source values — refuses to snapshot rather
// than producing a file that would mis-Refactor after reload.
func TestSnapshotDerivedPlanRefused(t *testing.T) {
	mat, err := Generate("grid3d", 1000)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Build(mat, STS3)
	if err != nil {
		t.Fatal(err)
	}
	ic0, err := p.IC0()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ic0.WriteSnapshot(&buf, SnapshotExtra{}); !errors.Is(err, ErrSparsityMismatch) {
		t.Fatalf("IC0 snapshot: err = %v, want ErrSparsityMismatch", err)
	}
}

// TestSnapshotRefusesDamage takes a valid snapshot file and feeds the
// reader corrupted, truncated, and version-skewed variants: every one
// must be refused with ErrBadSnapshot (and the precise codec sentinel),
// never a crash or a silently wrong plan.
func TestSnapshotRefusesDamage(t *testing.T) {
	mat, err := Generate("grid3d", 1200)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Build(mat, STS3)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "p.snap")
	if err := p.WriteSnapshotFile(path, SnapshotExtra{Meta: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	check := func(name string, mut []byte, want error) {
		t.Helper()
		q, _, err := ReadSnapshot(bytes.NewReader(mut))
		if err == nil {
			t.Fatalf("%s: accepted (n=%d)", name, q.N())
		}
		if !errors.Is(err, ErrBadSnapshot) {
			t.Fatalf("%s: err = %v, want ErrBadSnapshot", name, err)
		}
		if want != nil && !errors.Is(err, want) {
			t.Fatalf("%s: err = %v, want %v", name, err, want)
		}
	}

	// Truncations at assorted depths, including mid-header and mid-payload.
	for _, cut := range []int{0, 7, 31, 32, 100, len(raw) / 2, len(raw) - 1} {
		check("truncate", raw[:cut], snapshot.ErrInvalid)
	}
	// Single-byte corruption in the payload (CRC must catch it).
	for _, off := range []int{40, 64, 200, len(raw) - 3} {
		mut := append([]byte(nil), raw...)
		mut[off] ^= 0x20
		check("corrupt", mut, snapshot.ErrInvalid)
	}
	// Version skew.
	mut := append([]byte(nil), raw...)
	mut[8] = 99
	check("version-skew", mut, snapshot.ErrVersion)
	// Bad magic.
	mut = append([]byte(nil), raw...)
	copy(mut, "NOTASNAP")
	check("magic", mut, snapshot.ErrInvalid)
}

// TestSnapshotRejectsHostilePayload re-encodes a structurally corrupted
// image with a VALID checksum: the plan-level validation (permutation
// bijection, DAG bounds, pattern checks) must still refuse it — the CRC
// only proves the file is whole, not that it is honest.
func TestSnapshotRejectsHostilePayload(t *testing.T) {
	mat, err := Generate("grid3d", 1000)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Build(mat, STS3)
	if err != nil {
		t.Fatal(err)
	}
	img, err := p.snapshotImage(SnapshotExtra{})
	if err != nil {
		t.Fatal(err)
	}
	mutate := []struct {
		name string
		mut  func(*snapshot.Image)
	}{
		{"perm dup", func(i *snapshot.Image) { i.Perm[0] = i.Perm[1] }},
		{"perm oob", func(i *snapshot.Image) { i.Perm[0] = i.N + 5 }},
		{"method", func(i *snapshot.Image) { i.Method = 99 }},
		{"numpacks", func(i *snapshot.Image) { i.NumPacks += 3 }},
		{"dag succ oob", func(i *snapshot.Image) { i.DAG.Succ[0] = int32(len(i.DAG.TaskPtr)) + 7 }},
		{"dag ptr", func(i *snapshot.Image) { i.DAG.TaskPtr[0] = 1 }},
		{"orig ptr", func(i *snapshot.Image) { i.OrigRowPtr[1] = -1 }},
		{"no dag", func(i *snapshot.Image) { i.DAG = nil }},
		{"n zero", func(i *snapshot.Image) { i.N = 0 }},
	}
	for _, m := range mutate {
		// Round-trip through bytes to get an independent copy, then mutate.
		var buf bytes.Buffer
		if err := snapshot.Write(&buf, img); err != nil {
			t.Fatal(err)
		}
		cp, err := snapshot.Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		m.mut(cp)
		var out bytes.Buffer
		if err := snapshot.Write(&out, cp); err != nil {
			t.Fatal(err)
		}
		if q, _, err := ReadSnapshot(bytes.NewReader(out.Bytes())); err == nil {
			t.Fatalf("%s: hostile image accepted (n=%d)", m.name, q.N())
		} else if !errors.Is(err, ErrBadSnapshot) {
			t.Fatalf("%s: err = %v, want ErrBadSnapshot", m.name, err)
		}
	}
}

// TestSnapshotWarmSpeedup asserts the headline durability win: reloading
// a snapshot is at least 10x faster than re-running the ordering
// pipeline, with bitwise-identical solves. The scale is large enough
// that the build's superlinear ordering cost dwarfs the linear reload,
// keeping the margin safe against scheduler noise on loaded machines.
func TestSnapshotWarmSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	mat, err := Generate("grid3d", 1000000)
	if err != nil {
		t.Fatal(err)
	}

	t0 := time.Now()
	p, err := Build(mat, STS3)
	if err != nil {
		t.Fatal(err)
	}
	cold := time.Since(t0)

	path := filepath.Join(t.TempDir(), "p.snap")
	if err := p.WriteSnapshotFile(path, SnapshotExtra{}); err != nil {
		t.Fatal(err)
	}
	t1 := time.Now()
	q, _, err := ReadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	warm := time.Since(t1)

	solveBitwiseEqual(t, p, q, "warm")
	if warm*10 > cold {
		t.Fatalf("warm reload %v not 10x faster than cold build %v", warm, cold)
	}
	t.Logf("cold build %v, warm reload %v (%.0fx)", cold, warm, float64(cold)/float64(warm))
}
