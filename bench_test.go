package stsk

// One benchmark per table/figure of the paper's evaluation (§4), plus
// wall-clock goroutine benchmarks of the four solver schemes. The figure
// benchmarks run the internal/bench experiment drivers at a reduced suite
// scale so `go test -bench=.` terminates quickly; cmd/stsbench runs the
// same drivers at full scale. See DESIGN.md for the experiment index.

import (
	"context"
	"io"
	"runtime"
	"testing"
	"time"

	"stsk/internal/bench"
	"stsk/internal/dar"
	"stsk/internal/gen"
	"stsk/internal/order"
	"stsk/internal/solve"
)

const benchScale = 4000

func newBenchRunner(b *testing.B) *bench.Runner {
	b.Helper()
	r := bench.New(benchScale, io.Discard)
	r.Repeats = 1
	return r
}

func runExperiment(b *testing.B, name string) {
	r := newBenchRunner(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.Run(name); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1Suite regenerates Table 1 (suite statistics).
func BenchmarkTable1Suite(b *testing.B) { runExperiment(b, "table1") }

// BenchmarkFig6SpyPlots regenerates Figure 6 (colouring vs STS-3 structure).
func BenchmarkFig6SpyPlots(b *testing.B) { runExperiment(b, "fig6") }

// BenchmarkFig7Parallelism regenerates Figure 7 (packs vs components/pack).
func BenchmarkFig7Parallelism(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkFig8WorkShare regenerates Figure 8 (% work in 5 largest packs).
func BenchmarkFig8WorkShare(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkFig9Speedup regenerates Figure 9 (parallel speedup vs CSR-LS@1).
func BenchmarkFig9Speedup(b *testing.B) { runExperiment(b, "fig9") }

// BenchmarkFig10RelColor regenerates Figure 10 (STS-3 vs CSR-COL).
func BenchmarkFig10RelColor(b *testing.B) { runExperiment(b, "fig10") }

// BenchmarkFig11RelLS regenerates Figure 11 (CSR-3-LS vs CSR-LS).
func BenchmarkFig11RelLS(b *testing.B) { runExperiment(b, "fig11") }

// BenchmarkFig12CoreSweepColor regenerates Figure 12 (colour pair vs cores).
func BenchmarkFig12CoreSweepColor(b *testing.B) { runExperiment(b, "fig12") }

// BenchmarkFig13CoreSweepLS regenerates Figure 13 (level-set pair vs cores).
func BenchmarkFig13CoreSweepLS(b *testing.B) { runExperiment(b, "fig13") }

// BenchmarkFig14LargestPack regenerates Figure 14 (per-unknown locality).
func BenchmarkFig14LargestPack(b *testing.B) { runExperiment(b, "fig14") }

// --- Wall-clock goroutine solves (secondary, unpinned signal) ---

func benchSolve(b *testing.B, method Method, workers int) {
	mat, err := Generate("trimesh", 60000)
	if err != nil {
		b.Fatal(err)
	}
	plan, err := Build(mat, method)
	if err != nil {
		b.Fatal(err)
	}
	xTrue := make([]float64, plan.N())
	for i := range xTrue {
		xTrue[i] = 1
	}
	rhs := plan.RHSFor(xTrue)
	x, err := plan.SolveWith(rhs, WithWorkers(workers))
	if err != nil {
		b.Fatal(err)
	}
	if r := plan.Residual(x, rhs); r > 1e-9 {
		b.Fatalf("residual %g", r)
	}
	b.SetBytes(int64(mat.NNZ()) * 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plan.SolveWith(rhs, WithWorkers(workers)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveCSRLS(b *testing.B)  { benchSolve(b, CSRLS, 0) }
func BenchmarkSolveCSR3LS(b *testing.B) { benchSolve(b, CSR3LS, 0) }
func BenchmarkSolveCSRCOL(b *testing.B) { benchSolve(b, CSRCOL, 0) }
func BenchmarkSolveSTS3(b *testing.B)   { benchSolve(b, STS3, 0) }

func BenchmarkSolveSTS3Sequential(b *testing.B) { benchSolve(b, STS3, 1) }

// --- Multi-RHS engine comparison (the batched-solve acceptance bench) ---
//
// BenchmarkMultiRHSGrid3D drives 32 right-hand sides through one STS-3
// plan on a grid3d matrix three ways: the historical one-shot path
// (goroutines spawned per solve), the pooled Solver (persistent workers,
// pack-parallel per RHS), and the batched Solver path (one worker sweeps
// each RHS start to finish, RHSs pipelined through the pack levels).
// b.ReportMetric publishes solves/sec so the acceptance check — pooled or
// batched throughput ≥1.5× one-shot — reads straight off
// `go test -bench MultiRHS`. On a 1-core container batched lands at
// ~1.5-1.6× and pooled ~1.3-1.4×; with real parallelism both rise, since
// one-shot spawn cost scales with the worker count.
func BenchmarkMultiRHSGrid3D(b *testing.B) {
	mat, err := Generate("grid3d", 10000)
	if err != nil {
		b.Fatal(err)
	}
	plan, err := Build(mat, STS3)
	if err != nil {
		b.Fatal(err)
	}
	const nrhs = 32
	// At least 4 workers so the one-shot path really pays per-solve
	// goroutine spawn even on small CI boxes (Workers==1 short-circuits to
	// an inline sequential sweep and would hide the comparison).
	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	B := make([][]float64, nrhs)
	xTrue := make([]float64, plan.N())
	for r := range B {
		for i := range xTrue {
			xTrue[i] = float64((i+r)%7) - 3
		}
		B[r] = plan.RHSFor(xTrue)
	}
	perRHS := func(b *testing.B, d time.Duration) {
		b.ReportMetric(float64(nrhs*b.N)/d.Seconds(), "solves/s")
	}
	b.Run("one-shot", func(b *testing.B) {
		// SolveWith is always one-shot: this measures spawn-per-solve.
		b.ReportAllocs()
		start := time.Now()
		for i := 0; i < b.N; i++ {
			for _, rhs := range B {
				if _, err := plan.SolveWith(rhs, WithWorkers(workers)); err != nil {
					b.Fatal(err)
				}
			}
		}
		perRHS(b, time.Since(start))
	})
	// The barrier/graph pair is the tentpole acceptance comparison: same
	// pool, same packed kernels, only the inter-pack synchronisation
	// differs — condition-variable barriers vs dependency-driven
	// point-to-point counters.
	for _, sched := range []struct {
		name   string
		choice ScheduleChoice
	}{
		{"pooled-barrier", GuidedSchedule},
		{"pooled-graph", GraphSchedule},
	} {
		solver := plan.NewSolver(WithWorkers(workers), WithSchedule(sched.choice))
		b.Run(sched.name, func(b *testing.B) {
			x := make([]float64, plan.N())
			b.ReportAllocs()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				for _, rhs := range B {
					if err := solver.SolveInto(x, rhs); err != nil {
						b.Fatal(err)
					}
				}
			}
			perRHS(b, time.Since(start))
		})
		solver.Close()
	}
	solver := plan.NewSolver(WithWorkers(workers))
	defer solver.Close()
	b.Run("batched", func(b *testing.B) {
		X := make([][]float64, nrhs)
		for r := range X {
			X[r] = make([]float64, plan.N())
		}
		b.ReportAllocs()
		start := time.Now()
		for i := 0; i < b.N; i++ {
			if err := solver.SolveBatchInto(X, B); err != nil {
				b.Fatal(err)
			}
		}
		perRHS(b, time.Since(start))
	})
	// pooled-block is the panel-kernel acceptance variant: same pool, same
	// packed layout, but the 32 right-hand sides travel as four 8-wide
	// row-major panels, so the matrix (indices and values) is loaded four
	// times instead of 32 — the per-RHS throughput must be ≥ batched.
	// Width pinned to 8, the acceptance width (also the default).
	blockSolver := plan.NewSolver(WithWorkers(workers), WithBlockWidth(8))
	defer blockSolver.Close()
	b.Run("pooled-block", func(b *testing.B) {
		ctx := context.Background()
		X := make([][]float64, nrhs)
		for r := range X {
			X[r] = make([]float64, plan.N())
		}
		b.ReportAllocs()
		start := time.Now()
		for i := 0; i < b.N; i++ {
			if err := blockSolver.SolveBlockInto(ctx, X, B); err != nil {
				b.Fatal(err)
			}
		}
		perRHS(b, time.Since(start))
	})
}

// BenchmarkWideDAGSchedules is the wide-DAG acceptance benchmark: a
// block-diagonal matrix of independent grid blocks, where every pack
// mixes super-rows from blocks that share no data. The barrier schedule
// still synchronises all workers after every pack; the graph schedule
// lets each block's chain of tasks flow through the workers untouched by
// the others. Reported as solves/s like the MultiRHS benchmark.
func BenchmarkWideDAGSchedules(b *testing.B) {
	mat := blockDiagMatrix(8, gen.Grid2D(50, 50))
	plan, err := Build(mat, STS3)
	if err != nil {
		b.Fatal(err)
	}
	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	xTrue := make([]float64, plan.N())
	for i := range xTrue {
		xTrue[i] = float64(i%13) - 6
	}
	rhs := plan.RHSFor(xTrue)
	want, err := plan.SolveSequential(rhs)
	if err != nil {
		b.Fatal(err)
	}
	for _, sched := range []struct {
		name   string
		choice ScheduleChoice
	}{
		{"sequential", DefaultSchedule}, // workers=1 short-circuits to the packed sequential sweep
		{"barrier", GuidedSchedule},
		{"graph", GraphSchedule},
	} {
		w := workers
		if sched.name == "sequential" {
			w = 1
		}
		solver := plan.NewSolver(WithWorkers(w), WithSchedule(sched.choice))
		b.Run(sched.name, func(b *testing.B) {
			x := make([]float64, plan.N())
			b.ReportAllocs()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				if err := solver.SolveInto(x, rhs); err != nil {
					b.Fatal(err)
				}
			}
			perSolve := float64(b.N) / time.Since(start).Seconds()
			b.ReportMetric(perSolve, "solves/s")
			for i := range x {
				if x[i] != want[i] {
					b.Fatalf("%s: result differs from Sequential at %d", sched.name, i)
				}
			}
		})
		solver.Close()
	}
}

// BenchmarkOrderingPipeline measures the pre-processing cost the paper
// amortises over repeated solves (§4.1).
func BenchmarkOrderingPipeline(b *testing.B) {
	mat, err := Generate("trimesh", 30000)
	if err != nil {
		b.Fatal(err)
	}
	for _, m := range Methods() {
		b.Run(m.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Build(mat, m); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSchedules compares the OpenMP-style loop schedules on STS-3 —
// the §4.1 schedule-selection ablation.
func BenchmarkSchedules(b *testing.B) {
	mat, err := Generate("grid3d", 50000)
	if err != nil {
		b.Fatal(err)
	}
	plan, err := Build(mat, STS3)
	if err != nil {
		b.Fatal(err)
	}
	rhs := plan.RHSFor(make([]float64, plan.N()))
	for _, sc := range []struct {
		name string
		opts []Option
	}{
		{"static", []Option{WithSchedule(StaticSchedule)}},
		{"dynamic32", []Option{WithSchedule(DynamicSchedule), WithChunk(32)}},
		{"guided1", []Option{WithSchedule(GuidedSchedule), WithChunk(1)}},
		{"graph", []Option{WithSchedule(GraphSchedule)}},
	} {
		b.Run(sc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := plan.SolveWith(rhs, sc.opts...); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkInPackSchedulers compares the §3.3 In-Pack heuristics on a line
// DAR (the E-NP experiment).
func BenchmarkInPackSchedulers(b *testing.B) {
	b.Run("block", func(b *testing.B) {
		benchDarScheduler(b, func(in *dar.Instance) []int { return in.BlockSchedule() })
	})
	b.Run("dynamic", func(b *testing.B) {
		benchDarScheduler(b, func(in *dar.Instance) []int { return in.DynamicSchedule(nil) })
	})
}

func benchDarScheduler(b *testing.B, f func(*dar.Instance) []int) {
	in := dar.LineInstance(4096, 16, 5, 1, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		assign := f(in)
		if _, err := in.Cost(assign); err != nil {
			b.Fatal(err)
		}
	}
}

// --- ablation: in-pack DAR reordering on/off (the §3.4 design choice) ---

func BenchmarkAblationInPackRCM(b *testing.B) {
	mat, err := Generate("trimesh", 40000)
	if err != nil {
		b.Fatal(err)
	}
	for _, skip := range []bool{false, true} {
		name := "with-dar-rcm"
		if skip {
			name = "without-dar-rcm"
		}
		b.Run(name, func(b *testing.B) {
			p, err := order.Build(mat.a, order.Options{Method: order.STS3, SkipInPackRCM: skip})
			if err != nil {
				b.Fatal(err)
			}
			rhs := make([]float64, p.S.L.N)
			x := make([]float64, p.S.L.N)
			opts := solve.DefaultsFor(true, 0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := solve.ParallelInto(x, p.S, rhs, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
