package stsk

// Facade tests of the blocked multi-vector (panel) solve path: bitwise
// equality of every panel column against the sequential baseline across
// the whole corpus, both schedules, and every batch size around the
// kernel widths; table-driven validation of the ErrDimension/ErrClosed
// contract; concurrency under -race; and the zero-allocation fast path.

import (
	"context"
	"errors"
	"sync"
	"testing"

	"stsk/internal/testmat"
)

// corpusMatrices wraps the shared test corpus as facade matrices.
func corpusMatrices() []struct {
	Name string
	M    *Matrix
} {
	entries := testmat.Corpus()
	out := make([]struct {
		Name string
		M    *Matrix
	}, len(entries))
	for i, e := range entries {
		out[i].Name, out[i].M = e.Name, &Matrix{a: e.A}
	}
	return out
}

// TestSolveBlockBitwiseCorpus is the facade acceptance gate of the panel
// path: for every corpus matrix, all four methods, both schedules and
// batch sizes 1..9 (straddling every kernel width and remainder shape),
// each SolveBlock column must equal Plan.SolveSequential bit for bit.
func TestSolveBlockBitwiseCorpus(t *testing.T) {
	ctx := context.Background()
	for _, ent := range corpusMatrices() {
		for _, m := range Methods() {
			p, err := Build(ent.M, m, WithRowsPerSuper(8))
			if err != nil {
				t.Fatalf("%s/%v: %v", ent.Name, m, err)
			}
			B, want := manufacturedRHS(p, 9)
			for _, sched := range []struct {
				name   string
				choice ScheduleChoice
			}{
				{"barrier", GuidedSchedule},
				{"graph", GraphSchedule},
			} {
				s := p.NewSolver(WithWorkers(4), WithSchedule(sched.choice))
				for k := 1; k <= len(B); k++ {
					X, err := s.SolveBlock(ctx, B[:k])
					if err != nil {
						t.Fatalf("%s/%v/%s/k=%d: %v", ent.Name, m, sched.name, k, err)
					}
					for r := 0; r < k; r++ {
						for i := range X[r] {
							if X[r][i] != want[r][i] {
								t.Fatalf("%s/%v/%s/k=%d: column %d differs from Sequential at %d",
									ent.Name, m, sched.name, k, r, i)
							}
						}
					}
				}
				s.Close()
			}
		}
	}
}

// TestSolveBlockWidthOption drives one batch through every WithBlockWidth
// setting: carving the batch into different panels must never change a
// bit, and SolveUpperBlock must match the scalar SolveUpper the same way.
func TestSolveBlockWidthOption(t *testing.T) {
	ctx := context.Background()
	mat := &Matrix{a: testmat.TriMesh(14)}
	p, err := Build(mat, STS3)
	if err != nil {
		t.Fatal(err)
	}
	B, want := manufacturedRHS(p, 9)
	for _, width := range []int{1, 2, 3, 4, 5, 8, 64} {
		s := p.NewSolver(WithWorkers(3), WithBlockWidth(width))
		X, err := s.SolveBlock(ctx, B)
		if err != nil {
			t.Fatalf("width %d: %v", width, err)
		}
		for r := range X {
			for i := range X[r] {
				if X[r][i] != want[r][i] {
					t.Fatalf("width %d: column %d differs at %d", width, r, i)
				}
			}
		}
		s.Close()
	}
	s := p.NewSolver(WithWorkers(3))
	defer s.Close()
	wantU := make([][]float64, len(B))
	for r := range B {
		if wantU[r], err = s.SolveUpper(B[r]); err != nil {
			t.Fatal(err)
		}
	}
	XU, err := s.SolveUpperBlock(ctx, B)
	if err != nil {
		t.Fatal(err)
	}
	for r := range XU {
		for i := range XU[r] {
			if XU[r][i] != wantU[r][i] {
				t.Fatalf("upper: column %d differs at %d", r, i)
			}
		}
	}
}

// TestSolveBlockValidation is the facade half of the validation
// satellite: ragged or wrong-length right-hand sides must fail every
// block and batch entry point with ErrDimension before any work is
// dispatched, and every entry point must fail with ErrClosed after Close
// — all matched through errors.Is.
func TestSolveBlockValidation(t *testing.T) {
	ctx := context.Background()
	mat := &Matrix{a: testmat.Grid3D(4)}
	p, err := Build(mat, STS3)
	if err != nil {
		t.Fatal(err)
	}
	n := p.N()
	good := func() [][]float64 {
		v := make([][]float64, 3)
		for i := range v {
			v[i] = make([]float64, n)
		}
		return v
	}
	ragged := func(mut func(v [][]float64)) [][]float64 {
		v := good()
		mut(v)
		return v
	}
	s := p.NewSolver(WithWorkers(2))
	badBatches := []struct {
		name string
		B    [][]float64
	}{
		{"short rhs", ragged(func(v [][]float64) { v[1] = v[1][:n-1] })},
		{"long rhs", ragged(func(v [][]float64) { v[2] = make([]float64, n+1) })},
		{"nil rhs", ragged(func(v [][]float64) { v[0] = nil })},
		{"empty rhs", ragged(func(v [][]float64) { v[0] = []float64{} })},
	}
	for _, tc := range badBatches {
		for _, path := range []struct {
			name string
			call func(B [][]float64) error
		}{
			{"SolveBlock", func(B [][]float64) error { _, err := s.SolveBlock(ctx, B); return err }},
			{"SolveBlockInto", func(B [][]float64) error { return s.SolveBlockInto(ctx, good(), B) }},
			{"SolveUpperBlock", func(B [][]float64) error { _, err := s.SolveUpperBlock(ctx, B); return err }},
			{"SolveUpperBlockInto", func(B [][]float64) error { return s.SolveUpperBlockInto(ctx, good(), B) }},
			{"SolveBatch", func(B [][]float64) error { _, err := s.SolveBatch(B); return err }},
			{"SolveBatchCtx", func(B [][]float64) error { _, err := s.SolveBatchCtx(ctx, B); return err }},
			{"SolveBatchInto", func(B [][]float64) error { return s.SolveBatchInto(good(), B) }},
			{"SolveUpperBatchInto", func(B [][]float64) error { return s.SolveUpperBatchInto(good(), B) }},
			{"ApplySGSBatch", func(B [][]float64) error { _, err := s.ApplySGSBatch(B); return err }},
		} {
			if err := path.call(tc.B); !errors.Is(err, ErrDimension) {
				t.Errorf("%s/%s: err = %v, want ErrDimension", path.name, tc.name, err)
			}
		}
	}
	// Ragged solution batches on the Into forms.
	for _, path := range []struct {
		name string
		call func(X [][]float64) error
	}{
		{"SolveBlockInto", func(X [][]float64) error { return s.SolveBlockInto(ctx, X, good()) }},
		{"SolveBatchInto", func(X [][]float64) error { return s.SolveBatchInto(X, good()) }},
	} {
		if err := path.call(ragged(func(v [][]float64) { v[1] = v[1][:1] })); !errors.Is(err, ErrDimension) {
			t.Errorf("%s/short solution: err = %v, want ErrDimension", path.name, err)
		}
		if err := path.call(good()[:2]); !errors.Is(err, ErrDimension) {
			t.Errorf("%s/mismatched lengths: err = %v, want ErrDimension", path.name, err)
		}
	}
	s.Close()
	for _, path := range []struct {
		name string
		call func() error
	}{
		{"SolveBlock", func() error { _, err := s.SolveBlock(ctx, good()); return err }},
		{"SolveBlockInto", func() error { return s.SolveBlockInto(ctx, good(), good()) }},
		{"SolveUpperBlock", func() error { _, err := s.SolveUpperBlock(ctx, good()); return err }},
		{"SolveBatch", func() error { _, err := s.SolveBatch(good()); return err }},
		{"Solve", func() error { _, err := s.Solve(make([]float64, n)); return err }},
	} {
		if err := path.call(); !errors.Is(err, ErrClosed) {
			t.Errorf("%s after Close: err = %v, want ErrClosed", path.name, err)
		}
	}
}

// TestSolveBlockConcurrent hammers one Solver with concurrent panel
// batches from many goroutines — the -race gate for the shared panel
// scratch pool and the serialised cooperative sweeps.
func TestSolveBlockConcurrent(t *testing.T) {
	ctx := context.Background()
	mat := &Matrix{a: testmat.TriMesh(14)}
	p, err := Build(mat, STS3)
	if err != nil {
		t.Fatal(err)
	}
	B, want := manufacturedRHS(p, 9)
	for _, sched := range []ScheduleChoice{GuidedSchedule, GraphSchedule} {
		s := p.NewSolver(WithWorkers(4), WithSchedule(sched))
		var wg sync.WaitGroup
		for g := 0; g < 6; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for it := 0; it < 4; it++ {
					k := 1 + (g+it)%len(B)
					X, err := s.SolveBlock(ctx, B[:k])
					if err != nil {
						t.Error(err)
						return
					}
					for r := range X {
						for i := range X[r] {
							if X[r][i] != want[r][i] {
								t.Errorf("concurrent block: column %d differs at %d", r, i)
								return
							}
						}
					}
				}
			}(g)
		}
		wg.Wait()
		s.Close()
	}
}

// TestSolveBlockSteadyStateAllocs asserts the acceptance criterion that
// the facade panel fast path allocates nothing once warm, under both
// schedules.
func TestSolveBlockSteadyStateAllocs(t *testing.T) {
	testmat.SkipIfRace(t)
	ctx := context.Background()
	mat := &Matrix{a: testmat.Grid3D(6)}
	p, err := Build(mat, STS3)
	if err != nil {
		t.Fatal(err)
	}
	B, _ := manufacturedRHS(p, 8)
	X := make([][]float64, len(B))
	for i := range X {
		X[i] = make([]float64, p.N())
	}
	for _, sched := range []struct {
		name   string
		choice ScheduleChoice
	}{
		{"barrier", GuidedSchedule},
		{"graph", GraphSchedule},
	} {
		s := p.NewSolver(WithWorkers(4), WithSchedule(sched.choice))
		for i := 0; i < 3; i++ { // warm pools and panel scratch
			if err := s.SolveBlockInto(ctx, X, B); err != nil {
				t.Fatal(err)
			}
		}
		if n := testing.AllocsPerRun(50, func() {
			if err := s.SolveBlockInto(ctx, X, B); err != nil {
				t.Fatal(err)
			}
		}); n != 0 {
			t.Errorf("%s: SolveBlockInto allocates %.1f/op, want 0", sched.name, n)
		}
		s.Close()
	}
}
