package stsk

import (
	"errors"
	"slices"
	"sync"
	"testing"

	"stsk/internal/testmat"
)

// TestRefactorRacingSolves flips a plan between two numeric epochs while
// blocked panel batches and ordered streams are in flight. The
// copy-on-write contract: every solved right-hand side must bitwise
// equal the old-epoch or the new-epoch oracle — never a torn mix of the
// two. Run under -race.
func TestRefactorRacingSolves(t *testing.T) {
	m := &Matrix{a: testmat.Grid3D(10)} // 1000 rows
	p, err := Build(m, STS3)
	if err != nil {
		t.Fatal(err)
	}
	v0 := m.Values()
	v1 := make([]float64, len(v0))
	for k := range v0 {
		v1[k] = 2 * v0[k]
	}

	const nrhs = 4
	B := make([][]float64, nrhs)
	oracle0 := make([][]float64, nrhs)
	oracle1 := make([][]float64, nrhs)
	for r := range B {
		B[r] = manufacturedB(p, r)
		if oracle0[r], err = p.SolveSequential(B[r]); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Refactor(v1); err != nil {
		t.Fatal(err)
	}
	for r := range B {
		if oracle1[r], err = p.SolveSequential(B[r]); err != nil {
			t.Fatal(err)
		}
		// The two epochs must be distinguishable, or the torn-result check
		// below would be vacuous.
		if slices.Equal(oracle0[r], oracle1[r]) {
			t.Fatal("epoch oracles coincide")
		}
	}
	if err := p.Refactor(v0); err != nil {
		t.Fatal(err)
	}

	checkEpoch := func(label string, r int, x []float64) {
		if slices.Equal(x, oracle0[r]) || slices.Equal(x, oracle1[r]) {
			return
		}
		t.Errorf("%s: rhs %d matches neither epoch oracle — torn solve", label, r)
	}

	solver := p.NewSolver(WithWorkers(4), WithBlockWidth(4))
	defer solver.Close()
	ctx := t.Context()
	var wg sync.WaitGroup

	// The flipper: alternate the plan between the two value epochs.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			v := v0
			if i%2 == 0 {
				v = v1
			}
			if err := p.Refactor(v); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	// Blocked panel batches: each SolveBlockInto call pins one epoch, so
	// within a call every column comes from the same oracle — but the
	// check is per right-hand side, the stronger claim.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			X := make([][]float64, nrhs)
			for r := range X {
				X[r] = make([]float64, p.N())
			}
			for i := 0; i < 15; i++ {
				if err := solver.SolveBlockInto(ctx, X, B); err != nil {
					t.Error(err)
					return
				}
				for r := range X {
					checkEpoch("block", r, X[r])
				}
			}
		}()
	}

	// Ordered streams: SolveSeq pins an epoch per dispatched job.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 8; i++ {
			r := 0
			for _, res := range solver.SolveSeq(ctx, slices.Values(B)) {
				if res.Err != nil {
					t.Error(res.Err)
					return
				}
				checkEpoch("stream", r%nrhs, res.X)
				r++
			}
		}
	}()

	// Cooperative single solves ride along.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			x, err := solver.Solve(B[i%nrhs])
			if err != nil {
				t.Error(err)
				return
			}
			checkEpoch("coop", i%nrhs, x)
		}
	}()

	wg.Wait()
}

// TestRefactorRacingClose closes solvers while refactors are in flight:
// solves yield ErrClosed or a complete result, the refactor itself always
// lands atomically — after the dust settles the plan solves on exactly
// the last-published values, never a partial swap.
func TestRefactorRacingClose(t *testing.T) {
	m := &Matrix{a: testmat.TriMesh(12)}
	v0 := m.Values()
	v1 := make([]float64, len(v0))
	for k := range v0 {
		v1[k] = 3 * v0[k]
	}
	for trial := 0; trial < 10; trial++ {
		p, err := Build(m, STS3)
		if err != nil {
			t.Fatal(err)
		}
		b := manufacturedB(p, trial)
		solver := p.NewSolver(WithWorkers(3))
		var wg sync.WaitGroup
		wg.Add(3)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if err := p.Refactor(v1); err != nil {
					t.Error(err)
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if _, err := solver.Solve(b); err != nil {
					if !errors.Is(err, ErrClosed) {
						t.Error(err)
					}
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			solver.Close()
		}()
		wg.Wait()

		// The last published epoch is v1 in full: a one-shot solve and the
		// sequential reference agree bitwise, and both reflect v1.
		if err := m.SetValues(v1); err != nil {
			t.Fatal(err)
		}
		fresh, err := Build(m, STS3)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.SetValues(v0); err != nil { // restore for the next trial
			t.Fatal(err)
		}
		want, err := fresh.SolveSequential(b)
		if err != nil {
			t.Fatal(err)
		}
		got, err := p.SolveWith(b, WithWorkers(2))
		if err != nil {
			t.Fatal(err)
		}
		assertVecBitwise(t, "after close race", got, want)
	}
}

// TestRefactorConcurrentCallers hammers Refactor itself from many
// goroutines (it serialises internally): every call succeeds, the version
// counter counts every publish, and the survivor is one of the candidate
// arrays in full.
func TestRefactorConcurrentCallers(t *testing.T) {
	m := &Matrix{a: testmat.Grid3D(5)}
	p, err := Build(m, STS3)
	if err != nil {
		t.Fatal(err)
	}
	base := m.Values()
	const callers, rounds = 4, 8
	var wg sync.WaitGroup
	for g := 0; g < callers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			vals := perturbValues(base, g+1)
			for i := 0; i < rounds; i++ {
				if err := p.Refactor(vals); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if v := p.ValuesVersion(); v != callers*rounds {
		t.Fatalf("version %d after %d refactors", v, callers*rounds)
	}
	// Whatever won, the plan is coherent: parallel equals sequential.
	b := manufacturedB(p, 1)
	want, err := p.SolveSequential(b)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.SolveWith(b, WithWorkers(4), WithSchedule(GraphSchedule))
	if err != nil {
		t.Fatal(err)
	}
	assertVecBitwise(t, "concurrent refactor", got, want)
}
