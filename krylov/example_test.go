package krylov_test

import (
	"context"
	"fmt"
	"log"

	"stsk"
	"stsk/krylov"
)

// ExampleCG solves a manufactured SPD system with symmetric-Gauss–Seidel
// preconditioned conjugate gradient, every triangular sweep running
// pack-parallel on one persistent Solver.
func ExampleCG() {
	mat, err := stsk.Generate("grid3d", 8000)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := stsk.Build(mat, stsk.STS3)
	if err != nil {
		log.Fatal(err)
	}

	// Manufactured problem: A′ xTrue = b with xTrue = (1, 1, …, 1).
	xTrue := make([]float64, plan.N())
	for i := range xTrue {
		xTrue[i] = 1
	}
	b := make([]float64, plan.N())
	plan.ApplySymmetric(b, xTrue)

	// One parked worker pool serves every preconditioner application.
	solver := plan.NewSolver()
	defer solver.Close()

	x, stats, err := krylov.CG(context.Background(), plan, b,
		krylov.WithPreconditioner(stsk.NewSGS(solver)),
		krylov.WithTolerance(1e-8))
	if err != nil {
		log.Fatal(err)
	}
	maxErr := 0.0
	for i := range x {
		if e := x[i] - xTrue[i]; e > maxErr {
			maxErr = e
		} else if -e > maxErr {
			maxErr = -e
		}
	}
	fmt.Println("converged:", stats.Residual <= 1e-8)
	fmt.Println("solution recovered:", maxErr < 1e-6)
	// Output:
	// converged: true
	// solution recovered: true
}
