// Package krylov provides preconditioned Krylov-subspace solvers over
// stsk plans — the application that motivates fast sparse triangular
// solution (paper §1). Every iteration of a preconditioned conjugate
// gradient applies one forward and one backward triangular sweep; with an
// stsk.Preconditioner riding a persistent stsk.Solver, those sweeps run
// pack-parallel on a parked worker pool, so the triangular solution
// dominates each iteration exactly as in a production PCG.
//
// The package follows the facade's v2 conventions: functional options,
// context cancellation checked every iteration, and sentinel errors —
// a solve that exhausts its iteration budget reports
// stsk.ErrNotConverged via errors.Is.
//
//	solver := plan.NewSolver()
//	defer solver.Close()
//	x, stats, err := krylov.CG(ctx, plan, b,
//	    krylov.WithPreconditioner(stsk.NewSGS(solver)),
//	    krylov.WithTolerance(1e-8))
package krylov

import (
	"context"
	"fmt"
	"math"

	"stsk"
)

// Iteration is a per-iteration progress report delivered to the
// WithCallback observer.
type Iteration struct {
	K        int     // iteration number, starting at 1
	Residual float64 // relative residual ‖rₖ‖₂ / ‖b‖₂
}

// Stats summarises a finished (or abandoned) Krylov solve.
type Stats struct {
	Iterations int     // iterations performed
	Residual   float64 // final relative residual ‖r‖₂ / ‖b‖₂
}

// Option configures a Krylov solve.
type Option func(*config)

type config struct {
	tol      float64
	maxIter  int
	precond  stsk.Preconditioner
	callback func(Iteration)
}

// WithPreconditioner sets the preconditioner M applied as z = M⁻¹r each
// iteration; nil (the default) runs the unpreconditioned method.
func WithPreconditioner(m stsk.Preconditioner) Option {
	return func(c *config) { c.precond = m }
}

// WithTolerance sets the convergence tolerance on the relative residual
// ‖r‖₂/‖b‖₂; the default is 1e-8.
func WithTolerance(rtol float64) Option {
	return func(c *config) { c.tol = rtol }
}

// WithMaxIterations bounds the iteration count; the default is 1000.
// Exceeding it returns an error matching stsk.ErrNotConverged.
func WithMaxIterations(n int) Option {
	return func(c *config) { c.maxIter = n }
}

// WithCallback installs a per-iteration observer, called synchronously
// after each iteration's residual update — progress bars, convergence
// traces, adaptive monitoring.
func WithCallback(fn func(Iteration)) Option {
	return func(c *config) { c.callback = fn }
}

func applyOptions(opts []Option) config {
	c := config{tol: 1e-8, maxIter: 1000}
	for _, o := range opts {
		if o != nil {
			o(&c)
		}
	}
	return c
}

// CG solves A′x = b by the (optionally preconditioned) conjugate gradient
// method, where A′ is the plan's symmetric matrix and both vectors are in
// plan order. The context is checked every iteration: a cancelled or
// expired ctx abandons the solve and returns the iterate so far together
// with ctx.Err(). A right-hand side of the wrong length returns
// stsk.ErrDimension; exhausting the iteration budget returns the iterate
// with an error matching stsk.ErrNotConverged.
//
// A zero right-hand side returns the exact solution x = 0 immediately.
func CG(ctx context.Context, plan *stsk.Plan, b []float64, opts ...Option) ([]float64, Stats, error) {
	c := applyOptions(opts)
	n := plan.N()
	if len(b) != n {
		return nil, Stats{}, fmt.Errorf("%w: rhs length %d, want %d", stsk.ErrDimension, len(b), n)
	}
	x := make([]float64, n)
	bnorm := math.Sqrt(dot(b, b))
	if bnorm == 0 {
		return x, Stats{}, nil
	}
	r := append([]float64(nil), b...)
	z := make([]float64, n)
	applyM := func() error {
		if c.precond == nil {
			copy(z, r)
			return nil
		}
		return c.precond.Apply(z, r)
	}
	if err := applyM(); err != nil {
		return nil, Stats{}, err
	}
	p := append([]float64(nil), z...)
	ap := make([]float64, n)
	rz := dot(r, z)
	st := Stats{Residual: 1}
	for k := 1; k <= c.maxIter; k++ {
		if err := ctx.Err(); err != nil {
			return x, st, err
		}
		plan.ApplySymmetric(ap, p)
		alpha := rz / dot(p, ap)
		axpy(x, alpha, p)
		axpy(r, -alpha, ap)
		st.Iterations = k
		st.Residual = math.Sqrt(dot(r, r)) / bnorm
		if c.callback != nil {
			c.callback(Iteration{K: k, Residual: st.Residual})
		}
		if st.Residual <= c.tol {
			return x, st, nil
		}
		if err := applyM(); err != nil {
			return x, st, err
		}
		rzNew := dot(r, z)
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	return x, st, fmt.Errorf("%w: CG at relative residual %.3g after %d iterations (tol %.3g)",
		stsk.ErrNotConverged, st.Residual, st.Iterations, c.tol)
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func axpy(y []float64, alpha float64, x []float64) {
	for i := range y {
		y[i] += alpha * x[i]
	}
}
