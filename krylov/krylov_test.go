package krylov

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"stsk"
)

// problem builds a plan and a manufactured SPD system A′ xTrue = b.
func problem(t *testing.T, class string, n int) (*stsk.Plan, []float64, []float64) {
	t.Helper()
	mat, err := stsk.Generate(class, n)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := stsk.Build(mat, stsk.STS3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	xTrue := make([]float64, plan.N())
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	b := make([]float64, plan.N())
	plan.ApplySymmetric(b, xTrue)
	return plan, xTrue, b
}

// TestCGPreconditionersBeatPlainCG is the acceptance test: on grid3d and
// trimesh suite matrices, CG with the SGS and IC(0) preconditioners must
// reach a 1e-8 relative residual in strictly fewer iterations than
// unpreconditioned CG, and all three must actually solve the system.
func TestCGPreconditionersBeatPlainCG(t *testing.T) {
	const tol = 1e-8
	for _, class := range []string{"grid3d", "trimesh"} {
		plan, xTrue, b := problem(t, class, 4000)
		solver := plan.NewSolver()
		defer solver.Close()
		ic0, err := stsk.NewIC0(plan)
		if err != nil {
			t.Fatalf("%s: IC0: %v", class, err)
		}
		defer ic0.Close()

		run := func(name string, opts ...Option) Stats {
			t.Helper()
			x, st, err := CG(context.Background(), plan, b,
				append(opts, WithTolerance(tol), WithMaxIterations(5000))...)
			if err != nil {
				t.Fatalf("%s/%s: %v", class, name, err)
			}
			maxErr := 0.0
			for i := range x {
				if e := math.Abs(x[i] - xTrue[i]); e > maxErr {
					maxErr = e
				}
			}
			if maxErr > 1e-5 {
				t.Fatalf("%s/%s: solution error %g after %d iterations", class, name, maxErr, st.Iterations)
			}
			if st.Residual > tol {
				t.Fatalf("%s/%s: final residual %g above tol", class, name, st.Residual)
			}
			return st
		}

		plain := run("plain")
		sgsSt := run("sgs", WithPreconditioner(stsk.NewSGS(solver)))
		icSt := run("ic0", WithPreconditioner(ic0))
		if sgsSt.Iterations >= plain.Iterations {
			t.Fatalf("%s: SGS took %d iterations, plain CG %d", class, sgsSt.Iterations, plain.Iterations)
		}
		if icSt.Iterations >= plain.Iterations {
			t.Fatalf("%s: IC(0) took %d iterations, plain CG %d", class, icSt.Iterations, plain.Iterations)
		}
		t.Logf("%s: plain=%d sgs=%d ic0=%d iterations", class, plain.Iterations, sgsSt.Iterations, icSt.Iterations)
	}
}

func TestCGJacobiConverges(t *testing.T) {
	plan, xTrue, b := problem(t, "grid2d", 1500)
	x, st, err := CG(context.Background(), plan, b,
		WithPreconditioner(stsk.NewJacobi(plan)), WithMaxIterations(5000))
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if math.Abs(x[i]-xTrue[i]) > 1e-5 {
			t.Fatalf("solution error at %d after %d iterations", i, st.Iterations)
		}
	}
}

func TestCGCallbackAndStats(t *testing.T) {
	plan, _, b := problem(t, "grid2d", 900)
	var seen []Iteration
	_, st, err := CG(context.Background(), plan, b, WithCallback(func(it Iteration) {
		seen = append(seen, it)
	}))
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != st.Iterations {
		t.Fatalf("callback fired %d times for %d iterations", len(seen), st.Iterations)
	}
	for i, it := range seen {
		if it.K != i+1 {
			t.Fatalf("callback %d reported K=%d", i, it.K)
		}
	}
	if last := seen[len(seen)-1].Residual; last != st.Residual {
		t.Fatalf("last callback residual %g != stats residual %g", last, st.Residual)
	}
}

func TestCGNotConverged(t *testing.T) {
	plan, _, b := problem(t, "grid3d", 2000)
	x, st, err := CG(context.Background(), plan, b, WithMaxIterations(3))
	if !errors.Is(err, stsk.ErrNotConverged) {
		t.Fatalf("err = %v, want ErrNotConverged", err)
	}
	if st.Iterations != 3 || x == nil {
		t.Fatalf("stats %+v after budget exhaustion", st)
	}
}

func TestCGContextCancelled(t *testing.T) {
	plan, _, b := problem(t, "grid3d", 2000)
	// Cancel from the first iteration's callback: the next iteration's
	// check must abandon the solve with ctx.Err().
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	x, st, err := CG(ctx, plan, b, WithCallback(func(Iteration) { cancel() }))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if st.Iterations != 1 || x == nil {
		t.Fatalf("expected exactly one iteration before cancellation, got %+v", st)
	}
}

func TestCGDimensionAndZeroRHS(t *testing.T) {
	plan, _, _ := problem(t, "grid2d", 400)
	if _, _, err := CG(context.Background(), plan, make([]float64, 3)); !errors.Is(err, stsk.ErrDimension) {
		t.Fatalf("short rhs: err = %v, want ErrDimension", err)
	}
	x, st, err := CG(context.Background(), plan, make([]float64, plan.N()))
	if err != nil || st.Iterations != 0 {
		t.Fatalf("zero rhs: err=%v stats=%+v", err, st)
	}
	for i := range x {
		if x[i] != 0 {
			t.Fatal("zero rhs must give the zero solution")
		}
	}
}
