package stsk

import (
	"runtime"

	"stsk/internal/solve"
)

// Option configures the v2 facade entry points. One option vocabulary
// serves the whole API: Build reads the ordering options (WithRowsPerSuper,
// WithLevels, WithSloanInPack), while NewSolver, SolveWith and
// SolveUpperWith read the scheduling options (WithWorkers, WithSchedule,
// WithChunk). Options irrelevant to an entry point are ignored, so a
// single options slice can be threaded through an entire pipeline.
type Option func(*config)

// config is the merged option state; the zero value means "paper
// defaults" everywhere.
type config struct {
	// Ordering pipeline (Build).
	rowsPerSuper int
	levels       int
	sloanInPack  bool

	// Solve scheduling (NewSolver, SolveWith, SolveUpperWith).
	workers    int
	schedule   ScheduleChoice
	chunk      int
	blockWidth int
}

func applyOptions(opts []Option) config {
	var c config
	for _, o := range opts {
		if o != nil {
			o(&c)
		}
	}
	return c
}

// WithRowsPerSuper sets the super-row size for the k-level methods; the
// paper uses 80 (Intel, 256 KiB L2) and 320 (AMD, 512 KiB L2). 0 selects
// the default (80).
func WithRowsPerSuper(rows int) Option {
	return func(c *config) { c.rowsPerSuper = rows }
}

// WithLevels selects the structural depth k for the k-level methods: 0 or
// 3 is the paper's STS-3; 4 adds a second coarsening round (the §5
// extension for deeper NUMA hierarchies).
func WithLevels(k int) Option {
	return func(c *config) { c.levels = k }
}

// WithSloanInPack reorders each pack's DAR graph with Sloan's
// profile-reducing ordering instead of the paper's RCM (§3.4 names
// alternative bandwidth-reducing orderings as future work).
func WithSloanInPack() Option {
	return func(c *config) { c.sloanInPack = true }
}

// WithWorkers fixes the number of solver goroutines; 0 (the default)
// means GOMAXPROCS.
func WithWorkers(n int) Option {
	return func(c *config) { c.workers = n }
}

// WithSchedule selects the solve schedule; DefaultSchedule (the zero
// value) picks the graph schedule when the plan's dependency DAG offers
// real concurrency, and the paper's barrier pairing otherwise.
func WithSchedule(s ScheduleChoice) Option {
	return func(c *config) { c.schedule = s }
}

// WithChunk sets the barrier-schedule granularity in super-rows; 0
// selects the paper default for the chosen schedule. The graph schedule
// ignores it (task granularity is fixed in the plan's DAG).
func WithChunk(n int) Option {
	return func(c *config) { c.chunk = n }
}

// WithBlockWidth sets the panel width of the blocked multi-vector solves
// (Solver.SolveBlock): right-hand sides are grouped into row-major panels
// of up to k columns and the matrix is traversed once per panel instead of
// once per vector. 0 (the default) selects the widest unrolled kernel
// (8); widths round down to the kernel widths {8, 4, 2}; 1 disables
// panelling and solves column by column.
func WithBlockWidth(k int) Option {
	return func(c *config) { c.blockWidth = k }
}

// ScheduleChoice selects how packs are handed to workers during a
// cooperative solve. Static/Dynamic/Guided are the OpenMP-style barrier
// schedules of the paper: every pack ends at a global barrier.
// GraphSchedule replaces the barriers with dependency-driven
// point-to-point scheduling over the plan's task DAG. DefaultSchedule
// picks GraphSchedule when the DAG offers real concurrency (see
// Plan.NewSolver) and otherwise the paper's pairing for the plan's
// method (dynamic,32 for row-level schemes, guided,1 for k-level
// schemes).
type ScheduleChoice int

const (
	DefaultSchedule ScheduleChoice = iota
	StaticSchedule
	DynamicSchedule
	GuidedSchedule
	GraphSchedule
)

// lowerSolve maps the facade's scheduling options onto the internal
// solver options: the explicit schedule choices pass through, and
// DefaultSchedule resolves to the graph schedule when it wins — more than
// one effective worker and a dependency DAG with enough parallel slack to
// beat the barrier pairing. The plan's lazily built task DAG is attached
// whenever the graph schedule is selected.
func (p *Plan) lowerSolve(c config) solve.Options {
	opts := solve.DefaultsFor(p.inner.Method.UsesSuperRows(), c.workers)
	if c.chunk > 0 {
		opts.Chunk = c.chunk
	}
	if c.blockWidth > 0 {
		opts.BlockWidth = c.blockWidth
	}
	switch c.schedule {
	case StaticSchedule:
		opts.Schedule = solve.Static
	case DynamicSchedule:
		opts.Schedule = solve.Dynamic
	case GuidedSchedule:
		opts.Schedule = solve.Guided
	case GraphSchedule:
		opts.Schedule = solve.Graph
	case DefaultSchedule:
		if effectiveWorkers(c.workers) > 1 && p.graphWins() {
			opts.Schedule = solve.Graph
		}
	}
	if opts.Schedule == solve.Graph {
		opts.Graph = p.taskDAG()
	}
	return opts
}

// effectiveWorkers resolves the WithWorkers default the same way the
// engine will.
func effectiveWorkers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}
