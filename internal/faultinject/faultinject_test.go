package faultinject

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func reset(t *testing.T) {
	t.Helper()
	t.Cleanup(Disable)
}

func TestDisabledIsNoop(t *testing.T) {
	Disable()
	if err := Fire(EngineJob); err != nil {
		t.Fatalf("disabled Fire returned %v", err)
	}
	if Enabled() {
		t.Fatal("Enabled() true after Disable")
	}
}

func TestErrorMode(t *testing.T) {
	reset(t)
	if err := Enable("registry.build:error", 1); err != nil {
		t.Fatal(err)
	}
	err := Fire(RegistryBuild)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	if Fire(EngineJob) != nil {
		t.Fatal("rule must only fire at its own point")
	}
	if Fired(RegistryBuild) != 1 {
		t.Fatalf("Fired = %d, want 1", Fired(RegistryBuild))
	}
}

func TestPanicMode(t *testing.T) {
	reset(t)
	if err := Enable("engine.job:panic", 1); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected injected panic")
		}
	}()
	_ = Fire(EngineJob)
}

func TestSaturateMode(t *testing.T) {
	reset(t)
	if err := Enable("coalescer.enqueue:saturate", 1); err != nil {
		t.Fatal(err)
	}
	if err := Fire(CoalescerEnqueue); !errors.Is(err, ErrSaturated) {
		t.Fatalf("want ErrSaturated, got %v", err)
	}
}

func TestLatencyMode(t *testing.T) {
	reset(t)
	if err := Enable("http.solve:latency:d=10ms", 1); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := Fire(HTTPSolve); err != nil {
		t.Fatalf("latency mode must return nil, got %v", err)
	}
	if d := time.Since(start); d < 8*time.Millisecond {
		t.Fatalf("latency injection slept only %v", d)
	}
}

func TestEveryAfterCount(t *testing.T) {
	reset(t)
	// Fires on invocations 3, 7, 11 (every 4th, 0-based i where
	// (i+1)%4==0), but after=4 skips i=3 and count=1 stops after one.
	if err := Enable("epoch.swap:error:every=4,after=4,count=1", 1); err != nil {
		t.Fatal(err)
	}
	var fired []int
	for i := 0; i < 16; i++ {
		if Fire(EpochSwap) != nil {
			fired = append(fired, i)
		}
	}
	if len(fired) != 1 || fired[0] != 7 {
		t.Fatalf("fired at %v, want [7]", fired)
	}
}

func TestProbabilityDeterministic(t *testing.T) {
	reset(t)
	run := func(seed uint64) []bool {
		if err := Enable("engine.job:error:p=0.3", seed); err != nil {
			t.Fatal(err)
		}
		out := make([]bool, 200)
		for i := range out {
			out[i] = Fire(EngineJob) != nil
		}
		return out
	}
	a := run(42)
	b := run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at invocation %d", i)
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical fire patterns")
	}
	n := 0
	for _, f := range a {
		if f {
			n++
		}
	}
	if n < 30 || n > 90 {
		t.Fatalf("p=0.3 fired %d/200 times — far from expectation", n)
	}
}

func TestConcurrentFire(t *testing.T) {
	reset(t)
	if err := Enable("engine.job:error:p=0.5", 7); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				_ = Fire(EngineJob)
			}
		}()
	}
	wg.Wait()
	n := Fired(EngineJob)
	if n < 1000 || n > 3000 {
		t.Fatalf("p=0.5 over 4000 concurrent fires hit %d times", n)
	}
}

func TestParseErrors(t *testing.T) {
	reset(t)
	for _, spec := range []string{
		"nosuchpoint:error",
		"engine.job:nosuchmode",
		"engine.job",
		"engine.job:error:p=2",
		"engine.job:error:every=0",
		"engine.job:error:bogus",
		"engine.job:error:k=v",
		"engine.job:latency:d=-1s",
	} {
		if err := Enable(spec, 1); err == nil {
			t.Errorf("spec %q: want parse error", spec)
		}
	}
	if Enabled() {
		// Failed Enable calls must not have installed a partial plan
		// over the initial disabled state.
		t.Fatal("failed Enable left a plan active")
	}
}

func TestEmptySpecDisables(t *testing.T) {
	reset(t)
	if err := Enable("engine.job:error", 1); err != nil {
		t.Fatal(err)
	}
	if err := Enable("", 1); err != nil {
		t.Fatal(err)
	}
	if Enabled() {
		t.Fatal("empty spec must disable")
	}
}

func TestMultiRuleSpec(t *testing.T) {
	reset(t)
	spec := "engine.job:panic:p=0.05; coalescer.enqueue:saturate:every=2; registry.build:error:after=1,count=1"
	if err := Enable(spec, 7); err != nil {
		t.Fatal(err)
	}
	// registry.build: invocation 0 clean, invocation 1 fails, then clean.
	if err := Fire(RegistryBuild); err != nil {
		t.Fatalf("build invocation 0 should pass, got %v", err)
	}
	if err := Fire(RegistryBuild); !errors.Is(err, ErrInjected) {
		t.Fatalf("build invocation 1 should fail, got %v", err)
	}
	if err := Fire(RegistryBuild); err != nil {
		t.Fatalf("build invocation 2 should pass (count=1), got %v", err)
	}
	// coalescer.enqueue: every 2nd invocation saturates.
	if err := Fire(CoalescerEnqueue); err != nil {
		t.Fatalf("enqueue invocation 0 should pass, got %v", err)
	}
	if err := Fire(CoalescerEnqueue); !errors.Is(err, ErrSaturated) {
		t.Fatalf("enqueue invocation 1 should saturate, got %v", err)
	}
}

// TestFireNoAllocs pins the hook cost on the hot paths: Fire allocates
// nothing whether injection is disarmed (the production state — one
// atomic load and a nil check) or armed at a point whose rules do not
// fire this invocation. This is what lets //stsk:noalloc functions keep
// the hooks compiled in.
func TestFireNoAllocs(t *testing.T) {
	Disable()
	if n := testing.AllocsPerRun(100, func() {
		if err := Fire(EngineJob); err != nil {
			t.Fatalf("disarmed Fire returned %v", err)
		}
	}); n != 0 {
		t.Fatalf("disarmed Fire: %v allocs/op, want 0", n)
	}

	// Armed, but p=0 on this point and nothing on engine.job: the
	// decision machinery runs without firing and must stay alloc-free.
	if err := Enable("http.solve:error:p=0", 42); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(Disable)
	if n := testing.AllocsPerRun(100, func() {
		if err := Fire(EngineJob); err != nil {
			t.Fatalf("armed Fire at ruleless point returned %v", err)
		}
		if err := Fire(HTTPSolve); err != nil {
			t.Fatalf("armed p=0 Fire returned %v", err)
		}
	}); n != 0 {
		t.Fatalf("armed non-firing Fire: %v allocs/op, want 0", n)
	}
}
