// Package faultinject is a deterministic, seedable fault-injection
// registry. Hook points are threaded through the repo's hot seams
// (registry builds, coalescer enqueue/dispatch, engine jobs, epoch
// swaps, HTTP handlers); when no plan is enabled every hook compiles to
// a branch-on-nil no-op, so //stsk:noalloc paths stay allocation-free
// with the hooks compiled in.
//
// A plan is a semicolon-separated list of rules:
//
//	point:mode[:key=val,key=val...]
//
// where mode is one of error, panic, latency, saturate, and keys are
//
//	p=0.25      fire with probability 0.25 (deterministic, seeded)
//	every=3     fire on every 3rd invocation of the point
//	after=10    fire only from the 10th invocation on (0-based)
//	count=2     fire at most 2 times total
//	d=5ms       injected latency (latency mode only)
//
// Example: "engine.job:panic:p=0.05;coalescer.enqueue:saturate:every=7".
//
// Determinism: whether invocation i of a point fires is a pure function
// of (seed, point, i) via a splitmix64 mix, so a run with the same seed
// and the same per-point invocation counts reproduces the same faults
// regardless of goroutine interleaving.
package faultinject

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Point names an injection hook site.
type Point string

// Hook points threaded through the stack. The constant value appears in
// plan specs and in error text.
const (
	RegistryBuild     Point = "registry.build"
	CoalescerEnqueue  Point = "coalescer.enqueue"
	CoalescerDispatch Point = "coalescer.dispatch"
	EngineJob         Point = "engine.job"
	EpochSwap         Point = "epoch.swap"
	HTTPSolve         Point = "http.solve"
)

var allPoints = []Point{
	RegistryBuild, CoalescerEnqueue, CoalescerDispatch,
	EngineJob, EpochSwap, HTTPSolve,
}

// ErrInjected is the sentinel wrapped by every error-mode injection.
var ErrInjected = errors.New("faultinject: injected error")

// ErrSaturated is returned by saturate-mode injections. Call sites
// translate it to their domain's queue-full sentinel (faultinject sits
// below serve in the dependency order and cannot import it).
var ErrSaturated = errors.New("faultinject: injected saturation")

type mode uint8

const (
	modeError mode = iota
	modePanic
	modeLatency
	modeSaturate
)

// rule is one parsed injection rule. err is preallocated at parse time
// so firing allocates nothing.
type rule struct {
	point Point
	mode  mode
	// pThresh: fire when the seeded hash of the invocation is below
	// this threshold. ^uint64(0) means always (p=1 or no p key).
	pThresh uint64
	every   uint64 // fire when (i+1) % every == 0; 0 disables
	after   uint64 // fire only when i >= after
	count   int64  // max fires; <0 unlimited
	delay   time.Duration
	err     error
	fired   atomic.Int64
}

// plan is an enabled set of rules indexed by point.
type plan struct {
	seed  uint64
	rules map[Point][]*rule
	// invocations counts Fire calls per point, shared across rules so
	// the (seed, point, i) decision function is stable.
	invocations map[Point]*atomic.Uint64
}

var active atomic.Pointer[plan]

// Enable parses spec and installs it as the active plan, replacing any
// previous plan. An empty spec disables injection.
func Enable(spec string, seed uint64) error {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		Disable()
		return nil
	}
	p := &plan{
		seed:        seed,
		rules:       make(map[Point][]*rule),
		invocations: make(map[Point]*atomic.Uint64),
	}
	for _, pt := range allPoints {
		p.invocations[pt] = new(atomic.Uint64)
	}
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		r, err := parseRule(part)
		if err != nil {
			return fmt.Errorf("faultinject: rule %q: %w", part, err)
		}
		p.rules[r.point] = append(p.rules[r.point], r)
	}
	active.Store(p)
	return nil
}

// Disable removes the active plan; all hooks revert to no-ops.
func Disable() { active.Store(nil) }

// Enabled reports whether a plan is active.
func Enabled() bool { return active.Load() != nil }

// Fired returns the total number of injections fired at point since the
// current plan was enabled.
func Fired(pt Point) int64 {
	p := active.Load()
	if p == nil {
		return 0
	}
	var n int64
	for _, r := range p.rules[pt] {
		n += r.fired.Load()
	}
	return n
}

func parseRule(s string) (*rule, error) {
	fields := strings.SplitN(s, ":", 3)
	if len(fields) < 2 {
		return nil, errors.New("want point:mode[:opts]")
	}
	pt := Point(strings.TrimSpace(fields[0]))
	if !validPoint(pt) {
		return nil, fmt.Errorf("unknown point %q", pt)
	}
	r := &rule{point: pt, pThresh: ^uint64(0), count: -1}
	switch strings.TrimSpace(fields[1]) {
	case "error":
		r.mode = modeError
	case "panic":
		r.mode = modePanic
	case "latency":
		r.mode = modeLatency
		r.delay = time.Millisecond
	case "saturate":
		r.mode = modeSaturate
	default:
		return nil, fmt.Errorf("unknown mode %q", fields[1])
	}
	if len(fields) == 3 {
		for _, kv := range strings.Split(fields[2], ",") {
			kv = strings.TrimSpace(kv)
			if kv == "" {
				continue
			}
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("bad option %q", kv)
			}
			switch k {
			case "p":
				f, err := strconv.ParseFloat(v, 64)
				if err != nil || f < 0 || f > 1 {
					return nil, fmt.Errorf("bad probability %q", v)
				}
				if f >= 1 {
					r.pThresh = ^uint64(0)
				} else {
					r.pThresh = uint64(f * float64(1<<63) * 2)
				}
			case "every":
				n, err := strconv.ParseUint(v, 10, 64)
				if err != nil || n == 0 {
					return nil, fmt.Errorf("bad every %q", v)
				}
				r.every = n
			case "after":
				n, err := strconv.ParseUint(v, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("bad after %q", v)
				}
				r.after = n
			case "count":
				n, err := strconv.ParseInt(v, 10, 64)
				if err != nil || n < 0 {
					return nil, fmt.Errorf("bad count %q", v)
				}
				r.count = n
			case "d":
				d, err := time.ParseDuration(v)
				if err != nil || d < 0 {
					return nil, fmt.Errorf("bad duration %q", v)
				}
				r.delay = d
			default:
				return nil, fmt.Errorf("unknown option key %q", k)
			}
		}
	}
	switch r.mode {
	case modeError:
		r.err = fmt.Errorf("%w at %s", ErrInjected, pt)
	case modeSaturate:
		r.err = fmt.Errorf("%w at %s", ErrSaturated, pt)
	}
	return r, nil
}

func validPoint(pt Point) bool {
	for _, p := range allPoints {
		if p == pt {
			return true
		}
	}
	return false
}

// splitmix64 is the standard splitmix64 output function — a strong
// 64-bit mixer used to derive a deterministic per-invocation decision
// from (seed, point, invocation index).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func pointHash(pt Point) uint64 {
	var h uint64 = 14695981039346656037 // FNV-1a offset basis
	for i := 0; i < len(pt); i++ {
		h ^= uint64(pt[i])
		h *= 1099511628211
	}
	return h
}

// Fire evaluates the active plan at point pt. It returns nil (the
// overwhelmingly common case, a single atomic load) unless a rule
// fires: error/saturate modes return the rule's preallocated error,
// latency mode sleeps then returns nil, panic mode panics (the caller's
// containment recover is expected to catch it).
func Fire(pt Point) error {
	p := active.Load()
	if p == nil {
		return nil
	}
	return p.fire(pt)
}

func (p *plan) fire(pt Point) error {
	rules := p.rules[pt]
	if len(rules) == 0 {
		return nil
	}
	i := p.invocations[pt].Add(1) - 1
	for _, r := range rules {
		if !r.decide(p.seed, i) {
			continue
		}
		if r.count >= 0 && r.fired.Add(1) > r.count {
			r.fired.Add(-1)
			continue
		}
		if r.count < 0 {
			r.fired.Add(1)
		}
		switch r.mode {
		case modeError, modeSaturate:
			return r.err
		case modeLatency:
			time.Sleep(r.delay)
			return nil
		case modePanic:
			panic(fmt.Sprintf("faultinject: injected panic at %s (invocation %d)", pt, i))
		}
	}
	return nil
}

// decide is the pure (seed, point, i) → fire? function.
func (r *rule) decide(seed, i uint64) bool {
	if i < r.after {
		return false
	}
	if r.every != 0 && (i+1)%r.every != 0 {
		return false
	}
	if r.pThresh == ^uint64(0) {
		return true
	}
	h := splitmix64(seed ^ splitmix64(pointHash(r.point)^i))
	return h < r.pThresh
}
