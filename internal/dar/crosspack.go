package dar

import (
	"fmt"
	"math"
)

// CrossPackInstance models the paper's §5 extension: DAR graphs that span
// more than one pack. Packs execute in sequence on the one-level platform
// of Definition 1, but each processor's cache persists across packs, so
// the assignment of a pack's tasks should account for which inputs earlier
// packs already left in each cache.
type CrossPackInstance struct {
	Packs [][]Task // Packs[p] are the tasks of pack p, executed after p-1
	Q     int
	W     float64 // memory -> cache copy cost per new datum
	R     float64 // cache read cost per task input
	E     float64 // execution cost per task
}

// Validate checks instance sanity.
func (in *CrossPackInstance) Validate() error {
	if in.Q < 1 {
		return fmt.Errorf("dar: need at least one processor, got %d", in.Q)
	}
	if len(in.Packs) == 0 {
		return fmt.Errorf("dar: no packs")
	}
	for p, tasks := range in.Packs {
		if len(tasks) == 0 {
			return fmt.Errorf("dar: pack %d empty", p)
		}
	}
	if in.W < 0 || in.R < 0 || in.E < 0 {
		return fmt.Errorf("dar: negative costs")
	}
	return nil
}

// Cost evaluates a cross-pack schedule: assign[p][t] is the processor of
// task t of pack p. Per pack, the makespan is Equation (1) except that a
// datum already resident in the processor's cache from an earlier pack
// costs no W copy; total time is the sum of pack makespans (packs are
// separated by barriers).
func (in *CrossPackInstance) Cost(assign [][]int) (float64, error) {
	if len(assign) != len(in.Packs) {
		return 0, fmt.Errorf("dar: %d pack assignments for %d packs", len(assign), len(in.Packs))
	}
	cached := make([]map[int]struct{}, in.Q)
	for i := range cached {
		cached[i] = make(map[int]struct{})
	}
	total := 0.0
	for p, tasks := range in.Packs {
		if len(assign[p]) != len(tasks) {
			return 0, fmt.Errorf("dar: pack %d assignment length %d, want %d", p, len(assign[p]), len(tasks))
		}
		copies := make([]float64, in.Q)
		execs := make([]float64, in.Q)
		reads := make([]float64, in.Q)
		for t, task := range tasks {
			proc := assign[p][t]
			if proc < 0 || proc >= in.Q {
				return 0, fmt.Errorf("dar: pack %d task %d on processor %d of %d", p, t, proc, in.Q)
			}
			for _, x := range task.Inputs {
				if _, ok := cached[proc][x]; !ok {
					cached[proc][x] = struct{}{}
					copies[proc] += in.W
				}
			}
			reads[proc] += in.R * float64(len(task.Inputs))
			execs[proc] += in.E
		}
		worst := 0.0
		for q := 0; q < in.Q; q++ {
			if c := copies[q] + execs[q] + reads[q]; c > worst {
				worst = c
			}
		}
		total += worst
	}
	return total, nil
}

// IndependentSchedule assigns each pack separately with the §3.3 block
// heuristic, ignoring cross-pack cache state — the paper's baseline.
func (in *CrossPackInstance) IndependentSchedule() [][]int {
	out := make([][]int, len(in.Packs))
	for p, tasks := range in.Packs {
		single := &Instance{Tasks: tasks, Q: in.Q, W: in.W, R: in.R, E: in.E}
		out[p] = single.BlockSchedule()
	}
	return out
}

// AffinitySchedule assigns each pack with cross-pack awareness: tasks are
// taken in order and placed on the processor whose cache holds the most of
// the task's inputs (from earlier packs and earlier tasks), among
// processors that still have capacity ⌈n/q⌉ this pack; ties go to the
// least-loaded, then lowest-numbered processor. With cold caches this
// degenerates to the §3.3 block schedule (contiguous runs per processor);
// with warm caches tasks follow their data. This is the natural heuristic
// for the §5 spanning-DAR problem.
func (in *CrossPackInstance) AffinitySchedule() [][]int {
	cached := make([]map[int]struct{}, in.Q)
	for i := range cached {
		cached[i] = make(map[int]struct{})
	}
	out := make([][]int, len(in.Packs))
	for p, tasks := range in.Packs {
		capacity := (len(tasks) + in.Q - 1) / in.Q
		count := make([]int, in.Q)
		load := make([]float64, in.Q)
		out[p] = make([]int, len(tasks))
		for t, task := range tasks {
			best := -1
			bestCachedCnt := -1
			bestLoad := math.Inf(1)
			for q := 0; q < in.Q; q++ {
				if count[q] >= capacity {
					continue
				}
				cachedCnt := 0
				for _, x := range task.Inputs {
					if _, ok := cached[q][x]; ok {
						cachedCnt++
					}
				}
				if cachedCnt > bestCachedCnt ||
					(cachedCnt == bestCachedCnt && load[q] < bestLoad) {
					best, bestCachedCnt, bestLoad = q, cachedCnt, load[q]
				}
			}
			out[p][t] = best
			count[best]++
			newCopies := 0.0
			for _, x := range task.Inputs {
				if _, ok := cached[best][x]; !ok {
					cached[best][x] = struct{}{}
					newCopies++
				}
			}
			load[best] += in.W*newCopies + in.R*float64(len(task.Inputs)) + in.E
		}
	}
	return out
}

// ChainedPacksInstance builds a two-pack spanning-DAR benchmark: pack 0 is
// the §3.3 line (task i reads {x_i, x_{i+1}}), and pack 1's task i reads
// the same pair — so an affinity-aware schedule that repeats pack 0's
// placement pays no new copies in pack 1, while a placement-blind schedule
// generally does.
func ChainedPacksInstance(n, q int, w, r, e float64, offsetSecondPack int) *CrossPackInstance {
	mk := func(shift int) []Task {
		tasks := make([]Task, n)
		for i := range tasks {
			tasks[i] = Task{Inputs: []int{i + shift, i + 1 + shift}}
		}
		return tasks
	}
	return &CrossPackInstance{
		Packs: [][]Task{mk(0), mk(offsetSecondPack)},
		Q:     q,
		W:     w, R: r, E: e,
	}
}
