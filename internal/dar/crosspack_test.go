package dar

import (
	"math/rand"
	"testing"
)

func TestCrossPackValidate(t *testing.T) {
	bad := []*CrossPackInstance{
		{Packs: [][]Task{{{}}}, Q: 0},
		{Packs: nil, Q: 1},
		{Packs: [][]Task{{}}, Q: 1},
		{Packs: [][]Task{{{}}}, Q: 1, W: -1},
	}
	for i, in := range bad {
		if err := in.Validate(); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
	good := ChainedPacksInstance(8, 2, 1, 0, 0, 0)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCrossPackCostReuse(t *testing.T) {
	// One processor, two identical packs: the second pack re-reads cached
	// data, paying no W.
	in := ChainedPacksInstance(4, 1, 10, 1, 2, 0)
	assign := [][]int{{0, 0, 0, 0}, {0, 0, 0, 0}}
	c, err := in.Cost(assign)
	if err != nil {
		t.Fatal(err)
	}
	// Pack 0: 5 distinct data · 10 + 4 tasks · 2 + 8 reads · 1 = 66.
	// Pack 1: 0 new data + 8 + 8 = 16.
	if c != 82 {
		t.Fatalf("cost = %v, want 82", c)
	}
}

func TestCrossPackCostErrors(t *testing.T) {
	in := ChainedPacksInstance(3, 2, 1, 0, 0, 0)
	if _, err := in.Cost([][]int{{0, 0, 0}}); err == nil {
		t.Fatal("missing pack assignment accepted")
	}
	if _, err := in.Cost([][]int{{0, 0}, {0, 0, 0}}); err == nil {
		t.Fatal("short pack assignment accepted")
	}
	if _, err := in.Cost([][]int{{0, 0, 5}, {0, 0, 0}}); err == nil {
		t.Fatal("out-of-range processor accepted")
	}
}

func TestAffinityBeatsIndependentOnChainedPacks(t *testing.T) {
	// Pack 1 reuses pack 0's data exactly: affinity-aware placement must
	// cost no more, and strictly less when copies dominate.
	in := ChainedPacksInstance(32, 4, 20, 0.1, 1, 0)
	indep := in.IndependentSchedule()
	aff := in.AffinitySchedule()
	ci, err := in.Cost(indep)
	if err != nil {
		t.Fatal(err)
	}
	ca, err := in.Cost(aff)
	if err != nil {
		t.Fatal(err)
	}
	if ca > ci {
		t.Fatalf("affinity schedule (%v) worse than independent (%v)", ca, ci)
	}
	// On this instance the block schedule happens to repeat its placement,
	// so also test a shifted second pack where reuse is partial. The
	// affinity heuristic may trade a little balance for reuse there, so
	// allow modest slack.
	shifted := ChainedPacksInstance(32, 4, 20, 0.1, 1, 8)
	ci2, _ := shifted.Cost(shifted.IndependentSchedule())
	ca2, _ := shifted.Cost(shifted.AffinitySchedule())
	if ca2 > 1.15*ci2 {
		t.Fatalf("shifted: affinity (%v) much worse than independent (%v)", ca2, ci2)
	}
}

func TestAffinityScheduleRandomizedNeverWorseMuch(t *testing.T) {
	// Affinity scheduling is a heuristic: it may lose slightly on load
	// balance, but across random instances it must win on average and
	// never catastrophically lose.
	rng := rand.New(rand.NewSource(61))
	sumIndep, sumAff := 0.0, 0.0
	for trial := 0; trial < 30; trial++ {
		nPacks := 2 + rng.Intn(3)
		packs := make([][]Task, nPacks)
		for p := range packs {
			n := 4 + rng.Intn(20)
			packs[p] = make([]Task, n)
			for t := range packs[p] {
				k := 1 + rng.Intn(3)
				in := make([]int, k)
				for j := range in {
					in[j] = rng.Intn(40)
				}
				packs[p][t] = Task{Inputs: in}
			}
		}
		in := &CrossPackInstance{Packs: packs, Q: 1 + rng.Intn(4), W: 5, R: 0.5, E: 1}
		ci, err := in.Cost(in.IndependentSchedule())
		if err != nil {
			t.Fatal(err)
		}
		ca, err := in.Cost(in.AffinitySchedule())
		if err != nil {
			t.Fatal(err)
		}
		sumIndep += ci
		sumAff += ca
		if ca > 1.5*ci {
			t.Fatalf("trial %d: affinity %v catastrophically worse than independent %v", trial, ca, ci)
		}
	}
	if sumAff > sumIndep {
		t.Fatalf("affinity scheduling lost on aggregate: %v vs %v", sumAff, sumIndep)
	}
}
