package dar

import (
	"math"
	"math/rand"
	"testing"
)

// bruteForce enumerates every assignment without symmetry breaking — the
// oracle for ExactSchedule's pruned search.
func bruteForce(in *Instance) float64 {
	n := len(in.Tasks)
	assign := make([]int, n)
	best := math.Inf(1)
	var rec func(t int)
	rec = func(t int) {
		if t == n {
			c, _ := in.Cost(assign)
			if c < best {
				best = c
			}
			return
		}
		for p := 0; p < in.Q; p++ {
			assign[t] = p
			rec(t + 1)
		}
	}
	rec(0)
	return best
}

func TestExactScheduleMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(5)
		tasks := make([]Task, n)
		for i := range tasks {
			k := 1 + rng.Intn(3)
			inp := make([]int, k)
			for j := range inp {
				inp[j] = rng.Intn(2 * n)
			}
			tasks[i] = Task{Inputs: inp}
		}
		in := &Instance{
			Tasks: tasks,
			Q:     1 + rng.Intn(3),
			W:     float64(rng.Intn(6)),
			R:     rng.Float64() * 2,
			E:     rng.Float64() * 4,
		}
		_, pruned, err := in.ExactSchedule()
		if err != nil {
			t.Fatal(err)
		}
		oracle := bruteForce(in)
		if math.Abs(pruned-oracle) > 1e-9 {
			t.Fatalf("trial %d: pruned exact %v != brute force %v", trial, pruned, oracle)
		}
	}
}

func TestExactScheduleAssignmentAchievesCost(t *testing.T) {
	in := LineInstance(6, 3, 4, 0.5, 1)
	assign, cost, err := in.ExactSchedule()
	if err != nil {
		t.Fatal(err)
	}
	c, err := in.Cost(assign)
	if err != nil {
		t.Fatal(err)
	}
	if c != cost {
		t.Fatalf("returned assignment costs %v, reported %v", c, cost)
	}
}
