package dar

import (
	"math"
	"math/rand"
	"testing"
)

func TestCostEquation(t *testing.T) {
	// Two tasks on one processor: union of inputs, sum of reads.
	in := &Instance{
		Tasks: []Task{{Inputs: []int{0, 1}}, {Inputs: []int{1, 2}}},
		Q:     2, W: 10, R: 1, E: 100,
	}
	c, err := in.Cost([]int{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	want := 10*3 + 100*2 + 1*4.0 // |{0,1,2}|=3, 2 tasks, 4 reads
	if c != want {
		t.Fatalf("Cost = %v, want %v", c, want)
	}
	c, err = in.Cost([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	want = 10*2 + 100*1 + 1*2.0 // each proc: 2 data, 1 task, 2 reads
	if c != want {
		t.Fatalf("split Cost = %v, want %v", c, want)
	}
}

func TestCostErrors(t *testing.T) {
	in := LineInstance(3, 2, 1, 0, 0)
	if _, err := in.Cost([]int{0}); err == nil {
		t.Fatal("short assignment accepted")
	}
	if _, err := in.Cost([]int{0, 2, 0}); err == nil {
		t.Fatal("out-of-range processor accepted")
	}
}

func TestValidate(t *testing.T) {
	bad := []*Instance{
		{Tasks: []Task{{}}, Q: 0},
		{Tasks: nil, Q: 1},
		{Tasks: []Task{{}}, Q: 1, W: -1},
	}
	for i, in := range bad {
		if err := in.Validate(); err == nil {
			t.Fatalf("case %d: invalid instance accepted", i)
		}
	}
}

func TestBlockScheduleOptimalOnLine(t *testing.T) {
	// §3.3: on a line DAR with n = m·q, block assignment achieves
	// w(m+1) + e·m + 2r·m, and the exact schedule can do no better.
	in := LineInstance(8, 2, 5, 1, 3)
	block := in.BlockSchedule()
	blockCost, err := in.Cost(block)
	if err != nil {
		t.Fatal(err)
	}
	if want := LineOptimalCost(in); blockCost != want {
		t.Fatalf("block cost %v, want line-optimal %v", blockCost, want)
	}
	_, exactCost, err := in.ExactSchedule()
	if err != nil {
		t.Fatal(err)
	}
	if exactCost < blockCost-1e-9 {
		t.Fatalf("exact %v beats block %v on a line — contradicts §3.3 optimality", exactCost, blockCost)
	}
}

func TestExactBeatsOrMatchesHeuristics(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(6)
		tasks := make([]Task, n)
		for i := range tasks {
			k := 1 + rng.Intn(3)
			in := make([]int, k)
			for j := range in {
				in[j] = rng.Intn(n)
			}
			tasks[i] = Task{Inputs: in}
		}
		in := &Instance{Tasks: tasks, Q: 1 + rng.Intn(3), W: float64(1 + rng.Intn(5)), R: rng.Float64(), E: rng.Float64() * 3}
		_, exact, err := in.ExactSchedule()
		if err != nil {
			t.Fatal(err)
		}
		for name, assign := range map[string][]int{
			"block":   in.BlockSchedule(),
			"dynamic": in.DynamicSchedule(nil),
		} {
			c, err := in.Cost(assign)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, name, err)
			}
			if c < exact-1e-9 {
				t.Fatalf("trial %d: %s cost %v beats exact %v", trial, name, c, exact)
			}
		}
	}
}

func TestExactScheduleRefusesLarge(t *testing.T) {
	in := LineInstance(20, 2, 1, 0, 0)
	if _, _, err := in.ExactSchedule(); err == nil {
		t.Fatal("exact schedule accepted 20 tasks")
	}
}

func TestDynamicScheduleConsecutiveSharing(t *testing.T) {
	// With a single processor everything lands there.
	in := LineInstance(6, 1, 1, 1, 1)
	assign := in.DynamicSchedule(nil)
	for _, p := range assign {
		if p != 0 {
			t.Fatal("single processor must take all tasks")
		}
	}
	// With a much faster processor 0, it should take most tasks.
	in = LineInstance(12, 2, 1, 1, 1)
	assign = in.DynamicSchedule([]float64{10, 1})
	c0 := 0
	for _, p := range assign {
		if p == 0 {
			c0++
		}
	}
	if c0 <= 6 {
		t.Fatalf("fast processor took only %d of 12 tasks", c0)
	}
}

func TestBuildGraphCliqueAndPath(t *testing.T) {
	tasks := []Task{
		{Inputs: []int{7}},
		{Inputs: []int{7}},
		{Inputs: []int{7}},
		{Inputs: []int{9}},
	}
	full := BuildGraph(tasks, 0)
	if full.Degree(0) != 2 || full.Degree(1) != 2 || full.Degree(2) != 2 {
		t.Fatalf("clique degrees: %d %d %d, want 2 2 2", full.Degree(0), full.Degree(1), full.Degree(2))
	}
	if full.Degree(3) != 0 {
		t.Fatal("task with unique input must be isolated")
	}
	capped := BuildGraph(tasks, 2)
	if capped.Degree(1) != 2 || capped.Degree(0) != 1 || capped.Degree(2) != 1 {
		t.Fatalf("capped degrees: %d %d %d, want path 1 2 1", capped.Degree(0), capped.Degree(1), capped.Degree(2))
	}
}

func TestIsLine(t *testing.T) {
	line := BuildGraph(LineInstance(5, 1, 1, 1, 1).Tasks, 0)
	if !line.IsLine() {
		t.Fatal("line instance DAR should be a line")
	}
	// A ring (3-partition component) is not a line.
	ringTasks := []Task{
		{Inputs: []int{0, 1}},
		{Inputs: []int{1, 2}},
		{Inputs: []int{2, 0}},
	}
	ring := BuildGraph(ringTasks, 0)
	if ring.IsLine() {
		t.Fatal("3-cycle reported as line")
	}
	star := BuildGraph([]Task{
		{Inputs: []int{0}}, {Inputs: []int{0}}, {Inputs: []int{0}}, {Inputs: []int{0}},
	}, 0)
	if star.IsLine() {
		t.Fatal("K4 clique reported as line")
	}
}

func TestThreePartitionReduction(t *testing.T) {
	// Solvable instance: a = (2,2,3, 2,3,3) ... need B/4 < a_i < B/2.
	// Take B=7, n=2, integers {2,2,3} and {2,2,3}: 2 > 7/4? No (1.75<2 ok), 2 < 3.5 ok.
	a := []int{2, 2, 3, 2, 2, 3}
	b := 7
	inst, target, err := ThreePartitionInstance(a, b, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(inst.Tasks) != 14 || inst.Q != 2 {
		t.Fatalf("instance has %d tasks on %d procs, want 14 on 2", len(inst.Tasks), inst.Q)
	}
	if target != 21 {
		t.Fatalf("target = %v, want w·B = 21", target)
	}
	// Certificate: components {0,1,2} on proc 0 and {3,4,5} on proc 1.
	assign, err := ComponentAssignment(a, []int{0, 0, 0, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	c, err := inst.Cost(assign)
	if err != nil {
		t.Fatal(err)
	}
	if c != target {
		t.Fatalf("certificate cost %v, want exactly target %v", c, target)
	}
	// Splitting one ring across processors must cost strictly more in
	// total copies: the max side still pays for shared boundary data.
	badAssign := append([]int(nil), assign...)
	badAssign[0] = 1 // move one task of the first ring to proc 1
	bad, err := inst.Cost(badAssign)
	if err != nil {
		t.Fatal(err)
	}
	if bad <= target {
		t.Fatalf("splitting a ring gave cost %v <= target %v; reduction logic broken", bad, target)
	}
}

func TestThreePartitionValidation(t *testing.T) {
	if _, _, err := ThreePartitionInstance([]int{2, 2}, 7, 1); err == nil {
		t.Fatal("accepted non-multiple-of-3 integers")
	}
	if _, _, err := ThreePartitionInstance([]int{1, 2, 3}, 7, 1); err == nil {
		t.Fatal("accepted a_i outside (B/4, B/2)")
	}
	if _, _, err := ThreePartitionInstance([]int{2, 2, 2}, 7, 1); err == nil {
		t.Fatal("accepted sum != n·B")
	}
	if _, err := ComponentAssignment([]int{2, 2, 3}, []int{0}); err == nil {
		t.Fatal("accepted short group list")
	}
}

func TestExactScheduleTrivial(t *testing.T) {
	in := &Instance{Tasks: []Task{{Inputs: []int{0}}}, Q: 3, W: 2, R: 1, E: 5}
	assign, cost, err := in.ExactSchedule()
	if err != nil {
		t.Fatal(err)
	}
	if len(assign) != 1 || assign[0] != 0 {
		t.Fatalf("assign = %v", assign)
	}
	if want := 2 + 5 + 1.0; cost != want {
		t.Fatalf("cost = %v, want %v", cost, want)
	}
	if math.IsInf(cost, 1) {
		t.Fatal("no assignment found")
	}
}
