// Package dar implements the Data Affinity and Reuse model of paper §3.3:
// the DAR graph of a pack, the One-level platform cost model
// (Definitions 1–2), the In-Pack affinity-aware assignment problem shown
// NP-complete by Theorem 1, exact and heuristic schedulers, and the
// 3-Partition reduction used as a test oracle.
package dar

import (
	"fmt"
	"math"
	"sort"
)

// Task is one unit of work in a pack: solving the unknowns of one
// super-row. Inputs lists the data items (solution components from earlier
// packs) the task reads.
type Task struct {
	Inputs []int
}

// Instance is an In-Pack scheduling instance on the one-level platform of
// Definition 1: q processors, each with a private unbounded cache; copying
// a datum from memory to a cache costs W, each read from cache costs R,
// and each task takes E to execute.
type Instance struct {
	Tasks []Task
	Q     int     // processors
	W     float64 // memory -> cache copy cost per distinct datum
	R     float64 // cache read cost per task input
	E     float64 // execution cost per task
}

// Validate checks instance sanity.
func (in *Instance) Validate() error {
	if in.Q < 1 {
		return fmt.Errorf("dar: need at least one processor, got %d", in.Q)
	}
	if len(in.Tasks) == 0 {
		return fmt.Errorf("dar: no tasks")
	}
	if in.W < 0 || in.R < 0 || in.E < 0 {
		return fmt.Errorf("dar: negative costs")
	}
	return nil
}

// Cost evaluates Equation (1) for an assignment mapping task index ->
// processor: the makespan is the max over processors of
//
//	W·|∪ inputs| + E·|tasks| + R·Σ|inputs|.
func (in *Instance) Cost(assign []int) (float64, error) {
	if len(assign) != len(in.Tasks) {
		return 0, fmt.Errorf("dar: assignment length %d, want %d", len(assign), len(in.Tasks))
	}
	union := make([]map[int]struct{}, in.Q)
	reads := make([]int, in.Q)
	count := make([]int, in.Q)
	for t, p := range assign {
		if p < 0 || p >= in.Q {
			return 0, fmt.Errorf("dar: task %d assigned to processor %d of %d", t, p, in.Q)
		}
		if union[p] == nil {
			union[p] = make(map[int]struct{})
		}
		for _, x := range in.Tasks[t].Inputs {
			union[p][x] = struct{}{}
		}
		reads[p] += len(in.Tasks[t].Inputs)
		count[p]++
	}
	worst := 0.0
	for p := 0; p < in.Q; p++ {
		c := in.W*float64(len(union[p])) + in.E*float64(count[p]) + in.R*float64(reads[p])
		if c > worst {
			worst = c
		}
	}
	return worst, nil
}

// ExactSchedule finds a minimum-makespan assignment by exhaustive search
// with processor-symmetry breaking (task t may only open processor t').
// It is exponential and intended for instances with at most ~12 tasks;
// larger instances return an error so callers fail fast instead of hanging.
func (in *Instance) ExactSchedule() ([]int, float64, error) {
	if err := in.Validate(); err != nil {
		return nil, 0, err
	}
	n := len(in.Tasks)
	if n > 14 {
		return nil, 0, fmt.Errorf("dar: exact schedule limited to 14 tasks, got %d", n)
	}
	assign := make([]int, n)
	best := make([]int, n)
	bestCost := math.Inf(1)
	var rec func(t, used int)
	rec = func(t, used int) {
		if t == n {
			c, _ := in.Cost(assign)
			if c < bestCost {
				bestCost = c
				copy(best, assign)
			}
			return
		}
		limit := used + 1
		if limit > in.Q {
			limit = in.Q
		}
		for p := 0; p < limit; p++ {
			assign[t] = p
			nu := used
			if p == used {
				nu++
			}
			rec(t+1, nu)
		}
	}
	rec(0, 0)
	return best, bestCost, nil
}

// BlockSchedule assigns contiguous blocks of ⌈n/q⌉ tasks to processors in
// task order — the static algorithm of §3.3, optimal when the DAR is a
// line graph (consecutive tasks share one input).
func (in *Instance) BlockSchedule() []int {
	n := len(in.Tasks)
	m := (n + in.Q - 1) / in.Q
	assign := make([]int, n)
	for t := range assign {
		p := t / m
		if p >= in.Q {
			p = in.Q - 1
		}
		assign[t] = p
	}
	return assign
}

// LineOptimalCost returns the §3.3 lower bound for a line DAR with n = m·q
// tasks of two inputs each: w·(m+1) + e·m + r·(2m).
func LineOptimalCost(in *Instance) float64 {
	m := (len(in.Tasks) + in.Q - 1) / in.Q
	return in.W*float64(m+1) + in.E*float64(m) + in.R*float64(2*m)
}

// DynamicSchedule simulates the paper's dynamic heuristic on processors
// with the given relative speeds (len Q; 1.0 = nominal): processors take
// the next unassigned task as they become free, so consecutive tasks tend
// to run on the same processor and share cached inputs. With nil speeds
// all processors run at speed 1 and the result degenerates toward round
// robin in task order.
func (in *Instance) DynamicSchedule(speeds []float64) []int {
	if speeds == nil {
		speeds = make([]float64, in.Q)
		for i := range speeds {
			speeds[i] = 1
		}
	}
	type procState struct {
		id   int
		free float64
	}
	procs := make([]procState, in.Q)
	for i := range procs {
		procs[i] = procState{id: i}
	}
	cached := make([]map[int]struct{}, in.Q)
	for i := range cached {
		cached[i] = make(map[int]struct{})
	}
	assign := make([]int, len(in.Tasks))
	for t := range in.Tasks {
		// Earliest-free processor takes the task (ties to lowest id).
		best := 0
		for p := 1; p < in.Q; p++ {
			if procs[p].free < procs[best].free {
				best = p
			}
		}
		assign[t] = best
		// Charge W for new data, R per read, E to execute, scaled by speed.
		w := 0
		for _, x := range in.Tasks[t].Inputs {
			if _, ok := cached[best][x]; !ok {
				cached[best][x] = struct{}{}
				w++
			}
		}
		dur := in.W*float64(w) + in.R*float64(len(in.Tasks[t].Inputs)) + in.E
		procs[best].free += dur / speeds[best]
	}
	return assign
}

// Graph is a DAR graph: tasks are vertices, and two tasks are adjacent
// when their input sets intersect (they reuse a common solution component
// from an earlier pack).
type Graph struct {
	N   int
	adj [][]int
}

// BuildGraph constructs the DAR graph of the tasks. For every shared
// datum, the referencing tasks form a clique; maxClique caps how many
// pairwise edges a single datum may contribute (0 = no cap). When capped,
// the referencing tasks are chained in a path instead, which preserves
// connectivity (what RCM needs) without quadratic blow-up on popular data.
func BuildGraph(tasks []Task, maxClique int) *Graph {
	users := make(map[int][]int)
	for t, task := range tasks {
		for _, x := range task.Inputs {
			users[x] = append(users[x], t)
		}
	}
	adjSet := make([]map[int]struct{}, len(tasks))
	addEdge := func(a, b int) {
		if a == b {
			return
		}
		if adjSet[a] == nil {
			adjSet[a] = make(map[int]struct{})
		}
		if adjSet[b] == nil {
			adjSet[b] = make(map[int]struct{})
		}
		adjSet[a][b] = struct{}{}
		adjSet[b][a] = struct{}{}
	}
	for _, ts := range users {
		if maxClique > 0 && len(ts) > maxClique {
			sort.Ints(ts)
			for i := 1; i < len(ts); i++ {
				addEdge(ts[i-1], ts[i])
			}
			continue
		}
		for i := 0; i < len(ts); i++ {
			for j := i + 1; j < len(ts); j++ {
				addEdge(ts[i], ts[j])
			}
		}
	}
	g := &Graph{N: len(tasks), adj: make([][]int, len(tasks))}
	for v := range g.adj {
		if adjSet[v] == nil {
			continue
		}
		lst := make([]int, 0, len(adjSet[v]))
		for u := range adjSet[v] {
			lst = append(lst, u)
		}
		sort.Ints(lst)
		g.adj[v] = lst
	}
	return g
}

// Neighbors returns the sorted adjacency of task v.
func (g *Graph) Neighbors(v int) []int { return g.adj[v] }

// Degree returns the degree of task v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// IsLine reports whether the graph is a disjoint union of simple paths
// (every vertex has degree ≤ 2 and no cycles) — the easy case of §3.3.
func (g *Graph) IsLine() bool {
	for v := 0; v < g.N; v++ {
		if len(g.adj[v]) > 2 {
			return false
		}
	}
	// No cycles: every component must have edges = vertices - 1 (or 0).
	seen := make([]bool, g.N)
	for v := 0; v < g.N; v++ {
		if seen[v] {
			continue
		}
		verts, edges := 0, 0
		stack := []int{v}
		seen[v] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			verts++
			edges += len(g.adj[u])
			for _, w := range g.adj[u] {
				if !seen[w] {
					seen[w] = true
					stack = append(stack, w)
				}
			}
		}
		if edges/2 >= verts && verts > 1 {
			return false
		}
	}
	return true
}

// LineInstance builds the §3.3 line-DAR instance: n tasks where task i has
// inputs {x_i, x_{i+1}}, so consecutive tasks share exactly one datum
// (Figure 5).
func LineInstance(n, q int, w, r, e float64) *Instance {
	tasks := make([]Task, n)
	for i := range tasks {
		tasks[i] = Task{Inputs: []int{i, i + 1}}
	}
	return &Instance{Tasks: tasks, Q: q, W: w, R: r, E: e}
}

// ThreePartitionInstance builds the Theorem 1 reduction from a 3-Partition
// instance (integers a_1..a_3n summing to n·B): for each a_i a ring of a_i
// tasks over a_i data items (task j of component i reads x_{A_i+j} and
// x_{A_i+(j mod a_i)+1}), with q = n processors, r = e = 0, and target
// makespan w·B.
func ThreePartitionInstance(a []int, b int, w float64) (*Instance, float64, error) {
	if len(a)%3 != 0 {
		return nil, 0, fmt.Errorf("dar: 3-partition needs 3n integers, got %d", len(a))
	}
	n := len(a) / 3
	sum := 0
	for _, ai := range a {
		if 4*ai <= b || 2*ai >= b {
			return nil, 0, fmt.Errorf("dar: integer %d violates B/4 < a < B/2 for B=%d", ai, b)
		}
		sum += ai
	}
	if sum != n*b {
		return nil, 0, fmt.Errorf("dar: integers sum to %d, want n·B = %d", sum, n*b)
	}
	var tasks []Task
	base := 0
	for _, ai := range a {
		for j := 0; j < ai; j++ {
			tasks = append(tasks, Task{Inputs: []int{base + j, base + (j+1)%ai}})
		}
		base += ai
	}
	inst := &Instance{Tasks: tasks, Q: n, W: w, R: 0, E: 0}
	return inst, w * float64(b), nil
}

// ComponentAssignment maps every task of each ring to the processor given
// by groups: groups[i] is the processor for 3-partition component i. It is
// the certificate construction of Theorem 1's forward direction.
func ComponentAssignment(a []int, groups []int) ([]int, error) {
	if len(groups) != len(a) {
		return nil, fmt.Errorf("dar: %d groups for %d components", len(groups), len(a))
	}
	var assign []int
	for i, ai := range a {
		for j := 0; j < ai; j++ {
			assign = append(assign, groups[i])
		}
	}
	return assign, nil
}
