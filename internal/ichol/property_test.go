package ichol

import (
	"math/rand"
	"testing"
	"testing/quick"

	"stsk/internal/sparse"
)

// TestFactorPatternResidualProperty: for random SPD-by-dominance systems,
// IC(0) succeeds without shifting and reproduces A exactly on the stored
// lower-triangle positions.
func TestFactorPatternResidualProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(71))}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(50)
		coo := sparse.NewCOO(n, 6*n)
		for i := 0; i < n; i++ {
			coo.Add(i, i, 1)
		}
		for v := 1; v < n; v++ {
			coo.AddSym(v, rng.Intn(v), 1)
		}
		for e := 0; e < rng.Intn(3*n); e++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if i != j {
				coo.AddSym(i, j, 1)
			}
		}
		a := coo.ToCSR()
		if err := sparse.AssignSPDValues(a); err != nil {
			return false
		}
		l, err := Factor(a, Options{})
		if err != nil {
			return false
		}
		if l.NNZ() != a.Lower().NNZ() {
			return false // pattern must be preserved exactly
		}
		return VerifyOnPattern(a, l) < 1e-9
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestFactorExactOnChainsProperty: a tridiagonal (chain) matrix in natural
// order has a perfect elimination ordering with zero fill-in, so IC(0) is
// the exact Cholesky factorisation and the two-sweep solve inverts A
// exactly. (Random trees do NOT qualify: a vertex with two later children
// creates fill.)
func TestFactorExactOnChainsProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(73))}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		coo := sparse.NewCOO(n, 3*n)
		for i := 0; i < n; i++ {
			coo.Add(i, i, 1)
		}
		for v := 1; v < n; v++ {
			coo.AddSym(v, v-1, 1) // chain: zero fill-in in natural order
		}
		a := coo.ToCSR()
		if err := sparse.AssignSPDValues(a); err != nil {
			return false
		}
		l, err := Factor(a, Options{})
		if err != nil {
			return false
		}
		// Zero fill-in means IC(0) IS Cholesky: solving L y = A x, then
		// Lᵀ z = y must return z = x exactly.
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		ax := make([]float64, n)
		a.MatVec(ax, x)
		y, err := sparse.ForwardSubstitution(l, ax)
		if err != nil {
			return false
		}
		z, err := sparse.BackwardSubstitution(l.Transpose(), y)
		if err != nil {
			return false
		}
		return sparse.MaxAbsDiff(z, x) < 1e-8
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
