package ichol

import (
	"math"
	"math/rand"
	"testing"

	"stsk/internal/gen"
	"stsk/internal/sparse"
)

func TestFactorDenseEqualsCholesky(t *testing.T) {
	// On a dense SPD matrix IC(0) is the exact Cholesky factorisation.
	n := 6
	coo := sparse.NewCOO(n, n*n)
	rng := rand.New(rand.NewSource(2))
	b := make([][]float64, n)
	for i := range b {
		b[i] = make([]float64, n)
		for j := range b[i] {
			b[i][j] = rng.Float64()
		}
	}
	// A = B·Bᵀ + n·I is SPD and dense.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := 0.0
			for k := 0; k < n; k++ {
				v += b[i][k] * b[j][k]
			}
			if i == j {
				v += float64(n)
			}
			coo.Add(i, j, v)
		}
	}
	a := coo.ToCSR()
	l, err := Factor(a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res := VerifyOnPattern(a, l); res > 1e-9 {
		t.Fatalf("dense factor residual %g", res)
	}
	// Dense pattern: L·Lᵀ must equal A everywhere, i.e. it IS Cholesky.
	lt := l.Transpose()
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			got := 0.0
			for k := 0; k <= j; k++ {
				got += l.At(i, k) * lt.At(k, j)
			}
			if math.Abs(got-a.At(i, j)) > 1e-9 {
				t.Fatalf("L·Lᵀ[%d,%d] = %g, want %g", i, j, got, a.At(i, j))
			}
		}
	}
}

func TestFactorOnMeshClasses(t *testing.T) {
	mats := map[string]*sparse.CSR{
		"grid2d":  gen.Grid2D(15, 15),
		"trimesh": gen.TriMesh(12, 12, 3),
		"grid3d":  gen.Grid3D(6, 6, 6),
		"kkt3d":   gen.KKT3D(5, 5, 5),
	}
	for name, a := range mats {
		l, err := Factor(a, Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !l.IsLowerTriangular() || !l.HasFullNonzeroDiagonal() {
			t.Fatalf("%s: factor not a valid lower triangle", name)
		}
		if l.NNZ() != a.Lower().NNZ() {
			t.Fatalf("%s: IC(0) changed the pattern", name)
		}
		if res := VerifyOnPattern(a, l); res > 1e-9 {
			t.Fatalf("%s: pattern residual %g", name, res)
		}
	}
}

func TestFactorPreconditionerQuality(t *testing.T) {
	// M = L·Lᵀ must approximate A well: κ(M⁻¹A) ≪ κ(A). Cheap proxy:
	// applying M⁻¹A to random vectors stays close to identity compared to
	// D⁻¹A (Jacobi).
	a := gen.Grid2D(20, 20)
	l, err := Factor(a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	u := l.Transpose()
	rng := rand.New(rand.NewSource(7))
	v := make([]float64, a.N)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	av := make([]float64, a.N)
	a.MatVec(av, v)
	y, err := sparse.ForwardSubstitution(l, av)
	if err != nil {
		t.Fatal(err)
	}
	z, err := sparse.BackwardSubstitution(u, y)
	if err != nil {
		t.Fatal(err)
	}
	// ‖M⁻¹A v − v‖ / ‖v‖ should be well under 1 for IC(0) on a Laplacian.
	num, den := 0.0, 0.0
	for i := range v {
		d := z[i] - v[i]
		num += d * d
		den += v[i] * v[i]
	}
	if rel := math.Sqrt(num / den); rel > 0.75 {
		t.Fatalf("IC(0) preconditioner too weak: relative deviation %.3f", rel)
	}
}

func TestFactorBreakdownAndBoost(t *testing.T) {
	// An indefinite matrix breaks IC(0); AutoBoost must rescue it.
	coo := sparse.NewCOO(2, 4)
	coo.Add(0, 0, 1)
	coo.Add(1, 1, 1)
	coo.AddSym(0, 1, 5) // 2x2 with off-diagonal 5: indefinite
	a := coo.ToCSR()
	if _, err := Factor(a, Options{}); err == nil {
		t.Fatal("indefinite matrix factored without error")
	}
	l, err := Factor(a, Options{AutoBoost: true})
	if err != nil {
		t.Fatalf("AutoBoost failed: %v", err)
	}
	if !l.HasFullNonzeroDiagonal() {
		t.Fatal("boosted factor has zero diagonal")
	}
}

func TestFactorRejectsBadInput(t *testing.T) {
	coo := sparse.NewCOO(2, 2)
	coo.Add(0, 0, 1)
	coo.Add(1, 0, 1)
	if _, err := Factor(coo.ToCSR(), Options{}); err == nil {
		t.Fatal("non-symmetric matrix accepted")
	}
	// Missing diagonal.
	coo2 := sparse.NewCOO(2, 2)
	coo2.Add(0, 1, 1)
	coo2.Add(1, 0, 1)
	if _, err := Factor(coo2.ToCSR(), Options{}); err == nil {
		t.Fatal("hollow matrix accepted")
	}
}

func TestManualShift(t *testing.T) {
	a := gen.Grid2D(8, 8)
	l0, err := Factor(a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	l1, err := Factor(a, Options{Shift: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// Shift must change the factor (larger diagonal).
	d0 := l0.Val[l0.RowPtr[1]-1]
	d1 := l1.Val[l1.RowPtr[1]-1]
	if d1 <= d0 {
		t.Fatalf("shifted diagonal %g not larger than unshifted %g", d1, d0)
	}
}
