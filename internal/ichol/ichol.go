// Package ichol implements zero-fill incomplete Cholesky factorisation,
// IC(0): given a symmetric positive definite matrix A, it computes a lower
// triangular L with the sparsity pattern of tril(A) such that
// (L·Lᵀ)ᵢⱼ = Aᵢⱼ on every stored position. M = L·Lᵀ is the classic
// preconditioner whose application — one forward and one backward sparse
// triangular solve per iteration — is exactly the kernel STS-k accelerates
// (paper §1: "sparse triangular solutions are required ... particularly
// when sparse linear systems are solved using a method such as
// preconditioned conjugate gradient").
package ichol

import (
	"fmt"
	"math"

	"stsk/internal/sparse"
)

// Options tune the factorisation.
type Options struct {
	// Shift is added to every diagonal entry before factoring (a Manteuffel
	// shift); 0 factors A as given.
	Shift float64
	// AutoBoost retries with geometrically growing shifts if a pivot comes
	// out non-positive, instead of failing.
	AutoBoost bool
}

// Factor computes the IC(0) factor of a structurally symmetric matrix with
// a full diagonal. The returned matrix is lower triangular with sorted
// rows (diagonal last), ready for csrk.Build against an existing
// pack/super-row structure built from the same pattern.
func Factor(a *sparse.CSR, opts Options) (*sparse.CSR, error) {
	if !a.IsStructurallySymmetric() {
		return nil, fmt.Errorf("ichol: matrix must be structurally symmetric")
	}
	shift := opts.Shift
	for attempt := 0; ; attempt++ {
		l, err := factorOnce(a, shift)
		if err == nil {
			return l, nil
		}
		if !opts.AutoBoost || attempt >= 20 {
			return nil, err
		}
		if shift == 0 {
			shift = 1e-3 * maxDiag(a)
		} else {
			shift *= 4
		}
	}
}

func maxDiag(a *sparse.CSR) float64 {
	d := 1.0
	for i := 0; i < a.N; i++ {
		if v := math.Abs(a.At(i, i)); v > d {
			d = v
		}
	}
	return d
}

func factorOnce(a *sparse.CSR, shift float64) (*sparse.CSR, error) {
	l := a.Lower()
	if shift != 0 {
		for i := 0; i < l.N; i++ {
			l.Val[l.RowPtr[i+1]-1] += shift
		}
	}
	// Up-looking factorisation over the fixed pattern. Row i's strictly
	// lower entries are updated left to right:
	//   L[i,k] = (A[i,k] - Σ_{j<k} L[i,j]·L[k,j]) / L[k,k]
	//   L[i,i] = sqrt(A[i,i] - Σ_{j<i} L[i,j]²)
	for i := 0; i < l.N; i++ {
		rowLo, rowHi := l.RowPtr[i], l.RowPtr[i+1]
		if rowLo == rowHi || l.Col[rowHi-1] != i {
			return nil, fmt.Errorf("ichol: row %d has no diagonal entry", i)
		}
		for kk := rowLo; kk < rowHi-1; kk++ {
			k := l.Col[kk]
			dot := sparseDot(l, i, k, k) // Σ_{j<k} L[i,j]·L[k,j]
			dk := l.Val[l.RowPtr[k+1]-1]
			l.Val[kk] = (l.Val[kk] - dot) / dk
		}
		sq := 0.0
		for kk := rowLo; kk < rowHi-1; kk++ {
			sq += l.Val[kk] * l.Val[kk]
		}
		pivot := l.Val[rowHi-1] - sq
		if pivot <= 0 {
			return nil, fmt.Errorf("ichol: non-positive pivot %g at row %d (consider AutoBoost)", pivot, i)
		}
		l.Val[rowHi-1] = math.Sqrt(pivot)
	}
	return l, nil
}

// sparseDot computes Σ L[a,j]·L[b,j] over j < cutoff, merging the two
// sorted rows.
func sparseDot(l *sparse.CSR, a, b, cutoff int) float64 {
	ai, aEnd := l.RowPtr[a], l.RowPtr[a+1]
	bi, bEnd := l.RowPtr[b], l.RowPtr[b+1]
	s := 0.0
	for ai < aEnd && bi < bEnd {
		ca, cb := l.Col[ai], l.Col[bi]
		if ca >= cutoff || cb >= cutoff {
			break
		}
		switch {
		case ca < cb:
			ai++
		case cb < ca:
			bi++
		default:
			s += l.Val[ai] * l.Val[bi]
			ai++
			bi++
		}
	}
	return s
}

// VerifyOnPattern returns max |(L·Lᵀ)ᵢⱼ − Aᵢⱼ| over the stored positions of
// A's lower triangle — the defining residual of IC(0), which is exactly 0
// up to round-off when the factorisation succeeded.
func VerifyOnPattern(a, l *sparse.CSR) float64 {
	worst := 0.0
	for i := 0; i < a.N; i++ {
		cols, vals := a.Row(i)
		for k, j := range cols {
			if j > i {
				break
			}
			// (L·Lᵀ)[i,j] = Σ_m L[i,m]·L[j,m], m ≤ j.
			got := sparseDot(l, i, j, j+1)
			if d := math.Abs(got - vals[k]); d > worst {
				worst = d
			}
		}
	}
	return worst
}
