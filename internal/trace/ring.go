package trace

import (
	"sync"
	"time"
)

// Ring is the bounded slow-trace buffer behind GET /debug/traces: the
// registry adds every finished Record whose total meets its admission
// threshold, the oldest record is overwritten once capacity is reached,
// and Snapshot serves a newest-first copy filtered by a query-time
// threshold. All methods are safe for concurrent use.
type Ring struct {
	mu       sync.Mutex
	recs     []Record
	next     int
	admitted uint64
}

// NewRing builds an empty ring holding up to capacity records
// (minimum 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{recs: make([]Record, 0, capacity)}
}

// Add admits one finished record, evicting the oldest when full.
func (g *Ring) Add(rec Record) {
	g.mu.Lock()
	if len(g.recs) < cap(g.recs) {
		g.recs = append(g.recs, rec)
	} else {
		g.recs[g.next] = rec
		g.next = (g.next + 1) % cap(g.recs)
	}
	g.admitted++
	g.mu.Unlock()
}

// Len reports the records currently held (≤ capacity).
func (g *Ring) Len() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.recs)
}

// Cap reports the ring's fixed capacity.
func (g *Ring) Cap() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return cap(g.recs)
}

// Admitted reports how many records have ever been added — minus Len,
// the number evicted.
func (g *Ring) Admitted() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.admitted
}

// Snapshot copies the held records newest-first, keeping only those with
// Total ≥ min (min 0 keeps everything).
func (g *Ring) Snapshot(min time.Duration) []Record {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]Record, 0, len(g.recs))
	// Walk backwards from the newest: the slot before next when full,
	// the last appended element while filling.
	for i := 0; i < len(g.recs); i++ {
		j := len(g.recs) - 1 - i
		if len(g.recs) == cap(g.recs) {
			j = ((g.next-1-i)%len(g.recs) + len(g.recs)) % len(g.recs)
		}
		if rec := g.recs[j]; rec.Total >= min {
			out = append(out, rec)
		}
	}
	return out
}
