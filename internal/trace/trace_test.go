package trace

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestNilTraceIsInert(t *testing.T) {
	var tr *Trace
	tr.Observe(StageKernel, 1, 2) // must not panic
	tr.Retain()
	tr.Release()
	if tr.ID() != "" || tr.Start() != 0 {
		t.Fatalf("nil trace leaked state: id=%q start=%d", tr.ID(), tr.Start())
	}
	if rec := tr.Finish("p", "ok"); len(rec.Spans) != 0 {
		t.Fatalf("nil trace finished with spans: %+v", rec)
	}
	ctx := NewContext(context.Background(), nil)
	if FromContext(ctx) != nil {
		t.Fatal("NewContext(nil trace) must not arm the context")
	}
}

func TestObserveFinishRoundTrip(t *testing.T) {
	tr := New("abc123")
	defer tr.Release()
	s0 := tr.Start()
	tr.Observe(StageQueueWait, s0, s0+1000)
	tr.Observe(StageKernel, s0+1000, s0+5000)
	tr.Observe(StageSweep, s0+2000, s0+4000)
	// Let real time pass the synthetic stamps: Finish clamps spans to the
	// trace's wall interval.
	for Now() < s0+5000 {
		time.Sleep(time.Microsecond)
	}
	rec := tr.Finish("g3", "ok")
	if rec.ID != "abc123" || rec.Plan != "g3" || rec.Outcome != "ok" {
		t.Fatalf("record header wrong: %+v", rec)
	}
	if len(rec.Spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(rec.Spans))
	}
	// Sorted by start offset.
	for i := 1; i < len(rec.Spans); i++ {
		if rec.Spans[i].Start < rec.Spans[i-1].Start {
			t.Fatalf("spans unsorted: %+v", rec.Spans)
		}
	}
	if d := rec.StageTotal(StageKernel); d != 4*time.Microsecond {
		t.Fatalf("kernel total %v, want 4µs", d)
	}
	if rec.Total <= 0 {
		t.Fatalf("non-positive total %v", rec.Total)
	}
}

func TestObserveOverflowCountsDrops(t *testing.T) {
	tr := New("")
	defer tr.Release()
	for i := 0; i < MaxSpans+7; i++ {
		tr.Observe(StageKernel, int64(i), int64(i+1))
	}
	rec := tr.Finish("", "ok")
	if len(rec.Spans) != MaxSpans {
		t.Fatalf("got %d spans, want %d", len(rec.Spans), MaxSpans)
	}
	if rec.Dropped != 7 {
		t.Fatalf("dropped %d, want 7", rec.Dropped)
	}
}

func TestConcurrentObserve(t *testing.T) {
	tr := New("")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		tr.Retain()
		go func() {
			defer wg.Done()
			defer tr.Release()
			for i := 0; i < 4; i++ {
				s := Now()
				tr.Observe(StageKernel, s, s+10)
			}
		}()
	}
	wg.Wait()
	rec := tr.Finish("", "ok")
	tr.Release()
	if len(rec.Spans) != 32 {
		t.Fatalf("got %d spans, want 32", len(rec.Spans))
	}
}

func TestReleaseRecyclesOnlyAtZero(t *testing.T) {
	tr := New("first")
	tr.Retain()
	tr.Release() // back to 1 ref: must NOT recycle
	if tr.ID() != "first" {
		t.Fatalf("trace recycled while referenced: id=%q", tr.ID())
	}
	tr.Release()
}

func TestNewIDShapeAndUniqueness(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		id := NewID()
		if len(id) != 16 {
			t.Fatalf("id %q: want 16 hex chars", id)
		}
		if seen[id] {
			t.Fatalf("duplicate id %q", id)
		}
		seen[id] = true
	}
}

func TestContextRoundTrip(t *testing.T) {
	tr := New("ctxid")
	defer tr.Release()
	ctx := NewContext(context.Background(), tr)
	if got := FromContext(ctx); got != tr {
		t.Fatalf("FromContext = %p, want %p", got, tr)
	}
	if FromContext(context.Background()) != nil {
		t.Fatal("unarmed context must yield nil")
	}
	if FromContext(nil) != nil { //nolint:staticcheck // nil ctx tolerated by design
		t.Fatal("nil context must yield nil")
	}
}

func TestRingEvictionAndThreshold(t *testing.T) {
	g := NewRing(4)
	if g.Cap() != 4 {
		t.Fatalf("cap %d, want 4", g.Cap())
	}
	for i := 1; i <= 6; i++ {
		g.Add(Record{ID: string(rune('a' + i - 1)), Total: time.Duration(i) * time.Millisecond})
	}
	if g.Len() != 4 {
		t.Fatalf("len %d, want 4 after overflow", g.Len())
	}
	if g.Admitted() != 6 {
		t.Fatalf("admitted %d, want 6", g.Admitted())
	}
	all := g.Snapshot(0)
	if len(all) != 4 {
		t.Fatalf("snapshot len %d, want 4", len(all))
	}
	// Newest-first, oldest two evicted.
	if all[0].ID != "f" || all[3].ID != "c" {
		t.Fatalf("snapshot order wrong: %+v", all)
	}
	slow := g.Snapshot(5 * time.Millisecond)
	if len(slow) != 2 {
		t.Fatalf("threshold snapshot len %d, want 2: %+v", len(slow), slow)
	}
	for _, rec := range slow {
		if rec.Total < 5*time.Millisecond {
			t.Fatalf("threshold leaked fast record %+v", rec)
		}
	}
}

func TestRingPartialFillSnapshotOrder(t *testing.T) {
	g := NewRing(8)
	g.Add(Record{ID: "one"})
	g.Add(Record{ID: "two"})
	got := g.Snapshot(0)
	if len(got) != 2 || got[0].ID != "two" || got[1].ID != "one" {
		t.Fatalf("partial-fill snapshot wrong: %+v", got)
	}
}

func TestStageNames(t *testing.T) {
	seen := map[string]bool{}
	for s := Stage(0); int(s) < NumStages; s++ {
		name := s.String()
		if name == "" || name == "unknown" || seen[name] {
			t.Fatalf("stage %d has bad or duplicate name %q", s, name)
		}
		seen[name] = true
	}
	if Stage(200).String() != "unknown" {
		t.Fatal("out-of-range stage must stringify as unknown")
	}
}
