// Package trace is the solve-lifecycle span recorder behind the serving
// stack's per-stage latency attribution: one pooled, fixed-size Trace
// rides each request from HTTP admission through registry lookup,
// coalescer queueing, engine dispatch and kernel sweep to response
// serialization, stamping monotonic nanosecond spans along the way.
//
// The design contract mirrors internal/faultinject: the disarmed path is
// nil-fast. Every recording method is a no-op on a nil *Trace receiver —
// a concrete method call, no interface boxing, no allocation — so
// //stsk:noalloc hot paths (coalescer dispatch, engine panel sweeps) can
// carry unconditional hook calls and stay allocation-free whenever
// tracing is off or the context carries no trace. Arming is simply
// putting a non-nil *Trace into the request context.
//
// Concurrency: spans may be recorded from several goroutines (the
// requester, the coalescer dispatcher, the engine) while the trace is
// live. Slots are reserved with an atomic counter and every span field
// is stored atomically, with End written last — a reader skims partially
// written spans by skipping End == 0. Lifetime is reference-counted:
// the owner holds one reference from New, the coalescer retains one per
// queued request, and the trace returns to the pool only when the last
// Release lands, so a dispatcher completing a request whose caller
// already gave up can never scribble on a recycled trace.
package trace

import (
	"context"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Stage labels one lifecycle phase of a served solve. The taxonomy is
// ordered roughly by request flow; DESIGN.md §9 documents who records
// each stage and what its span covers.
type Stage uint8

const (
	// StageAdmission covers the HTTP handler's front door: priority
	// admission, body decode, context setup — everything before the
	// registry is consulted.
	StageAdmission Stage = iota
	// StageRegistry covers plan acquisition: registry lookup, and on a
	// miss the cold build or snapshot warm-load (including lazy IC0).
	StageRegistry
	// StageEnqueue covers handing the request to the coalescer's bounded
	// queue (admission-control mutex plus the channel send).
	StageEnqueue
	// StageQueueWait is time parked in the coalescer queue before the
	// dispatcher popped the request.
	StageQueueWait
	// StageCoalesceWait is time between the pop and panel dispatch — the
	// flush window spent waiting for more requests to share the panel.
	StageCoalesceWait
	// StageRetryBackoff is jittered backoff slept between retry attempts
	// after a queue-full rejection.
	StageRetryBackoff
	// StageKernel covers one solver call end to end for this request —
	// the panel (or singleton) solve it rode, pin/dispatch/sweep nested
	// inside.
	StageKernel
	// StageEpochPin covers pinning the copy-on-write value epoch (and
	// materialising the transpose for backward sweeps).
	StageEpochPin
	// StageDispatch covers handing job tokens to the worker pool.
	StageDispatch
	// StageSweep covers the numeric sweep itself: dispatch done to last
	// worker finished.
	StageSweep
	// StageSerialize covers encoding and writing the HTTP response.
	StageSerialize

	// NumStages is the size of per-stage metric arrays.
	NumStages = int(StageSerialize) + 1
)

var stageNames = [NumStages]string{
	"admission", "registry", "enqueue", "queue_wait", "coalesce_wait",
	"retry_backoff", "kernel", "epoch_pin", "dispatch", "sweep", "serialize",
}

// String returns the stage's snake_case name as exported in metric
// labels and /debug/traces JSON.
func (s Stage) String() string {
	if int(s) < NumStages {
		return stageNames[s]
	}
	return "unknown"
}

// MaxSpans bounds a trace's span array: a clean request records ~11
// spans, and each retry attempt can add up to 9 more, so 48 covers the
// default retry budget with slack. Overflow increments a drop counter
// instead of allocating.
const MaxSpans = 48

// base anchors the package's monotonic clock; wallBase maps stamps back
// to wall time for reporting.
var (
	base     = time.Now()
	wallBase = base
)

// Now is the monotonic stamp used for every span boundary: nanoseconds
// since process start. It is allocation-free and safe for
// //stsk:noalloc callers.
func Now() int64 { return int64(time.Since(base)) }

// Wall converts a Now stamp back to wall-clock time.
func Wall(ns int64) time.Time { return wallBase.Add(time.Duration(ns)) }

// span is the in-flight atomic representation; see the package comment
// for the publication protocol.
type span struct {
	stage atomic.Int64
	start atomic.Int64
	end   atomic.Int64 // stored last; 0 = not yet complete
}

// Trace is one request's span recorder. The zero value is not usable —
// obtain traces from New — but a nil *Trace is: every method no-ops, so
// hot paths hook unconditionally.
type Trace struct {
	id      string
	startNs int64
	n       atomic.Int32
	dropped atomic.Int32
	refs    atomic.Int32
	spans   [MaxSpans]span
}

var tracePool = sync.Pool{New: func() any { return new(Trace) }}

// idSeq feeds generated trace IDs; splitmix64 whitens the sequence so
// IDs from concurrent replicas don't visibly collide in dashboards.
var idSeq atomic.Uint64

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// idBase differentiates ID streams across processes: boot time in
// nanoseconds folded into every generated ID.
var idBase = uint64(time.Now().UnixNano())

// NewID mints a fresh 16-hex-digit trace ID (used by the router when a
// client supplied none, so the whole fan-out is attributable).
func NewID() string {
	v := splitmix64(idBase + idSeq.Add(1))
	s := strconv.FormatUint(v, 16)
	for len(s) < 16 {
		s = "0" + s
	}
	return s
}

// New takes a trace from the pool, stamps its start, and assigns its ID
// (the given one, or a generated one when empty). The caller owns one
// reference; pair with Release (directly or via a registry FinishTrace).
func New(id string) *Trace {
	t := tracePool.Get().(*Trace)
	if id == "" {
		id = NewID()
	}
	t.id = id
	t.startNs = Now()
	t.n.Store(0)
	t.dropped.Store(0)
	t.refs.Store(1)
	for i := range t.spans {
		t.spans[i].end.Store(0)
	}
	return t
}

// ID returns the trace's identifier ("" on nil).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Start returns the trace's admission stamp (0 on nil), in Now units.
func (t *Trace) Start() int64 {
	if t == nil {
		return 0
	}
	return t.startNs
}

// Observe records one completed span. Nil-safe, allocation-free, and
// callable from any goroutine holding a reference. Spans beyond
// MaxSpans are counted as dropped, never recorded.
func (t *Trace) Observe(stage Stage, start, end int64) {
	if t == nil {
		return
	}
	i := t.n.Add(1) - 1
	if int(i) >= MaxSpans {
		t.n.Add(-1)
		t.dropped.Add(1)
		return
	}
	s := &t.spans[i]
	s.stage.Store(int64(stage))
	s.start.Store(start)
	s.end.Store(end) // publishes the span; readers skip end == 0
}

// Retain adds a reference: a goroutine that will record into the trace
// after the owner may have finished (the coalescer dispatcher) must hold
// one. Nil-safe.
func (t *Trace) Retain() {
	if t == nil {
		return
	}
	t.refs.Add(1)
}

// Release drops a reference; the last one resets the trace and returns
// it to the pool. Nil-safe.
func (t *Trace) Release() {
	if t == nil {
		return
	}
	if t.refs.Add(-1) == 0 {
		t.id = ""
		tracePool.Put(t)
	}
}

// Span is one finished lifecycle phase in a Record, with Start/End as
// nanosecond offsets from the trace's own start.
type Span struct {
	Stage Stage
	Start int64
	End   int64
}

// Duration is the span's length.
func (s Span) Duration() time.Duration { return time.Duration(s.End - s.Start) }

// Record is the immutable snapshot a finished trace leaves behind: what
// the ring buffer stores and /debug/traces serves. Spans are sorted by
// start offset.
type Record struct {
	ID      string
	Plan    string
	Outcome string
	Start   time.Time
	Total   time.Duration
	Dropped int
	Spans   []Span
}

// StageTotal sums the durations of every span of the given stage —
// retries contribute multiple spans per stage.
func (r Record) StageTotal(stage Stage) time.Duration {
	var d time.Duration
	for _, s := range r.Spans {
		if s.Stage == stage {
			d += s.Duration()
		}
	}
	return d
}

// Finish closes the trace's wall interval and snapshots it into a
// Record. Call exactly once, from the owning goroutine, while still
// holding the owner reference; spans still being written by a straggler
// (a dispatcher completing an abandoned request) are simply skipped.
// Finish does not release the reference — callers pair it with Release.
func (t *Trace) Finish(plan, outcome string) Record {
	if t == nil {
		return Record{}
	}
	endNs := Now()
	n := int(t.n.Load())
	if n > MaxSpans {
		n = MaxSpans
	}
	rec := Record{
		ID:      t.id,
		Plan:    plan,
		Outcome: outcome,
		Start:   Wall(t.startNs),
		Total:   time.Duration(endNs - t.startNs),
		Dropped: int(t.dropped.Load()),
		Spans:   make([]Span, 0, n),
	}
	for i := 0; i < n; i++ {
		s := &t.spans[i]
		end := s.end.Load()
		if end == 0 {
			continue // reserved but not yet published
		}
		sp := Span{
			Stage: Stage(s.stage.Load()),
			Start: s.start.Load() - t.startNs,
			End:   end - t.startNs,
		}
		// A straggler publishing while Finish runs can stamp an end a hair
		// past the total just taken; clamp so records are always internally
		// consistent (every span within [0, Total]).
		if total := int64(rec.Total); sp.End > total {
			sp.End = total
		}
		if sp.Start > sp.End {
			sp.Start = sp.End
		}
		rec.Spans = append(rec.Spans, sp)
	}
	sortSpans(rec.Spans)
	return rec
}

// sortSpans orders by start offset (insertion sort: span counts are
// tiny and this avoids a sort.Slice closure).
func sortSpans(spans []Span) {
	for i := 1; i < len(spans); i++ {
		for j := i; j > 0 && spans[j].Start < spans[j-1].Start; j-- {
			spans[j], spans[j-1] = spans[j-1], spans[j]
		}
	}
}

// ctxKey is the context key type; traceKey is pre-boxed once so
// FromContext in //stsk:noalloc functions performs no interface
// conversion of its own.
type ctxKey struct{}

var traceKey any = ctxKey{}

// NewContext returns ctx carrying tr. A nil tr returns ctx unchanged,
// so disarmed callers pay nothing.
func NewContext(ctx context.Context, tr *Trace) context.Context {
	if tr == nil {
		return ctx
	}
	return context.WithValue(ctx, traceKey, tr)
}

// FromContext returns the context's trace, or nil when the request is
// untraced. Allocation-free; safe for //stsk:noalloc callers.
func FromContext(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	tr, _ := ctx.Value(traceKey).(*Trace)
	return tr
}
