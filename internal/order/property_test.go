package order

import (
	"math/rand"
	"testing"
	"testing/quick"

	"stsk/internal/graph"
	"stsk/internal/sparse"
)

// randomConnectedSym builds a random structurally symmetric matrix with a
// full diagonal: a random spanning tree (guaranteeing connectivity, which
// stresses the orderings less trivially than forests) plus random extra
// edges.
func randomConnectedSym(rng *rand.Rand, maxN int) *sparse.CSR {
	n := 2 + rng.Intn(maxN)
	coo := sparse.NewCOO(n, 6*n)
	for i := 0; i < n; i++ {
		coo.Add(i, i, 1)
	}
	for v := 1; v < n; v++ {
		coo.AddSym(v, rng.Intn(v), 1)
	}
	for e := 0; e < rng.Intn(4*n); e++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i != j {
			coo.AddSym(i, j, 1)
		}
	}
	m := coo.ToCSR()
	if err := sparse.AssignSPDValues(m); err != nil {
		panic(err)
	}
	return m
}

// TestPipelinePropertyAllMethods drives random connected graphs through
// every method and checks the full invariant set: valid permutation,
// validated structure (pack independence, triangular shape, diagonals),
// ascending pack sizes, and an exact solve after the permutation round
// trip.
func TestPipelinePropertyAllMethods(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(97))}
	for _, m := range Methods() {
		m := m
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			a := randomConnectedSym(rng, 80)
			opts := Options{
				Method:       m,
				RowsPerSuper: 1 + rng.Intn(12),
			}
			if m.UsesSuperRows() && rng.Intn(3) == 0 {
				opts.Levels = 4
				opts.SupersPerHyper = 1 + rng.Intn(4)
			}
			if rng.Intn(4) == 0 {
				opts.InPackOrder = InPackSloan
			}
			p, err := Build(a, opts)
			if err != nil {
				t.Logf("seed %d method %v: %v", seed, m, err)
				return false
			}
			if sparse.CheckPermutation(p.Perm) != nil {
				return false
			}
			if p.S.Validate() != nil {
				return false
			}
			counts := p.S.PackRowCounts()
			for i := 1; i < len(counts); i++ {
				if counts[i] < counts[i-1] {
					return false
				}
			}
			xTrue := make([]float64, a.N)
			for i := range xTrue {
				xTrue[i] = rng.NormFloat64()
			}
			xPerm := p.PermuteRHS(xTrue)
			b := sparse.RHSForSolution(p.S.L, xPerm)
			x, err := sparse.ForwardSubstitution(p.S.L, b)
			if err != nil {
				return false
			}
			back := p.UnpermuteSolution(x)
			return sparse.MaxAbsDiff(back, xTrue) < 1e-8
		}
		if err := quick.Check(f, cfg); err != nil {
			t.Fatalf("%v: %v", m, err)
		}
	}
}

// TestPacksAreIndependentSetsProperty verifies the §3.2 definition
// directly on the coarse graph: no two super-rows in the same pack may be
// adjacent.
func TestPacksAreIndependentSetsProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(101))}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomConnectedSym(rng, 60)
		p, err := Build(a, Options{Method: STS3, RowsPerSuper: 1 + rng.Intn(6)})
		if err != nil {
			return false
		}
		// Rebuild the super-row adjacency from the permuted matrix and the
		// structure boundaries, then check pack independence.
		l := p.S.L
		superOf := make([]int, l.N)
		for sr := 0; sr < p.S.NumSuperRows(); sr++ {
			lo, hi := p.S.SuperRowRows(sr)
			for i := lo; i < hi; i++ {
				superOf[i] = sr
			}
		}
		packOf := make([]int, p.S.NumSuperRows())
		for pk := 0; pk < p.S.NumPacks(); pk++ {
			lo, hi := p.S.PackSuperRows(pk)
			for sr := lo; sr < hi; sr++ {
				packOf[sr] = pk
			}
		}
		for i := 0; i < l.N; i++ {
			cols, _ := l.Row(i)
			for _, j := range cols {
				if j == i {
					continue
				}
				si, sj := superOf[i], superOf[j]
				if si != sj && packOf[si] == packOf[sj] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestLevelSetsDominateColorCountProperty: the number of level-set packs
// is always at least the number of colouring packs on the same graph —
// levels are a chain decomposition, colours an antichain cover.
func TestLevelSetsDominateColorCountProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(103))}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomConnectedSym(rng, 60)
		ls, err := Build(a, Options{Method: CSRLS})
		if err != nil {
			return false
		}
		// The longest path lower-bounds level count, while greedy colours
		// are bounded by maxdeg+1; on sparse random graphs LS ≥ COL holds
		// in practice. Use the weaker, always-true check instead: both
		// partitions cover all rows.
		col, err := Build(a, Options{Method: CSRCOL})
		if err != nil {
			return false
		}
		sumLS, sumCOL := 0, 0
		for _, c := range ls.S.PackRowCounts() {
			sumLS += c
		}
		for _, c := range col.S.PackRowCounts() {
			sumCOL += c
		}
		return sumLS == a.N && sumCOL == a.N
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestDarToGraphRoundTrip exercises the adjacency conversion used by the
// in-pack reorder.
func TestDarToGraphRoundTrip(t *testing.T) {
	a := randomConnectedSym(rand.New(rand.NewSource(5)), 40)
	g := graph.FromMatrix(a)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}
