// Package order implements the STS-k ordering pipeline (paper §3): starting
// from a structurally symmetric matrix A = L + Lᵀ, it applies the base RCM
// ordering, optionally coarsens rows into super-rows (CSR-k, §3.1), builds
// packs of independent (super-)rows by colouring or level sets (§3.2),
// sorts packs by increasing size, reorders the super-rows within each pack
// by RCM on the pack's Data-Affinity-and-Reuse graph (§3.4), and emits the
// final row permutation together with the 3-level csrk.Structure that the
// solvers and the cache simulator consume.
//
// All four schemes of the paper's evaluation are expressible:
//
//	CSR-LS    level sets on G1, row tasks          (reference)
//	CSR-COL   colouring on G1, row tasks
//	CSR-3-LS  level sets on G2, super-row tasks, k-level sub-structuring
//	STS-3     colouring on G2, super-row tasks, k-level sub-structuring
package order

import (
	"fmt"
	"sort"

	"stsk/internal/csrk"
	"stsk/internal/dar"
	"stsk/internal/graph"
	"stsk/internal/sparse"
)

// Method selects one of the paper's four triangular-solution schemes.
type Method int

const (
	CSRLS  Method = iota // level sets on the fine graph (reference scheme)
	CSRCOL               // colouring on the fine graph
	CSR3LS               // level sets on the coarse graph + k-level sub-structuring
	STS3                 // colouring on the coarse graph + k-level sub-structuring (CSR-3-COL)
)

func (m Method) String() string {
	switch m {
	case CSRLS:
		return "CSR-LS"
	case CSRCOL:
		return "CSR-COL"
	case CSR3LS:
		return "CSR-3-LS"
	case STS3:
		return "STS-3"
	}
	return fmt.Sprintf("Method(%d)", int(m))
}

// Methods lists the four schemes in the paper's presentation order.
func Methods() []Method { return []Method{CSRLS, CSR3LS, CSRCOL, STS3} }

// UsesColoring reports whether the method builds packs by graph colouring.
func (m Method) UsesColoring() bool { return m == CSRCOL || m == STS3 }

// UsesSuperRows reports whether the method applies the k-level
// sub-structuring (super-rows + in-pack DAR reordering).
func (m Method) UsesSuperRows() bool { return m == CSR3LS || m == STS3 }

// Options configures the pipeline. The zero value plus a Method is valid.
type Options struct {
	Method Method

	// RowsPerSuper is the super-row size for 3-level methods; the paper
	// uses 80 rows on Intel (256 KiB L2) and 320 on AMD (512 KiB L2).
	// Defaults to 80. Ignored by row-level methods.
	RowsPerSuper int

	// ColorOrder is the greedy-colouring vertex order. The default,
	// NaturalOrder, matches the Boost colouring the paper uses.
	ColorOrder graph.ColorOrder

	// SkipBaseRCM disables the RCM pre-ordering applied to every scheme
	// (§4.1). Intended for tests and ablations.
	SkipBaseRCM bool

	// SkipPackSort disables sorting packs by increasing size (§3.2).
	SkipPackSort bool

	// SkipInPackRCM disables the §3.4 DAR reordering within packs, leaving
	// super-rows in ascending index order. Intended for ablations; the
	// paper's CSR-3-* schemes always reorder.
	SkipInPackRCM bool

	// MaxCliquePerSource caps the number of tasks a single shared solution
	// component may pairwise connect in the DAR; beyond the cap the tasks
	// are chained in a path, which preserves the connectivity RCM needs
	// without quadratic edge blow-up on popular components. Defaults to 8.
	MaxCliquePerSource int

	// Levels selects the total number of structural levels k. 0 picks the
	// method's default: 2 for row-level methods (rows + packs) and 3 for
	// the CSR-3 methods (rows + super-rows + packs). 4 adds the paper's §5
	// extension: a second coarsening round groups SupersPerHyper
	// consecutive super-rows into one task before packs are built, for
	// machines with an additional well-differentiated sharing level.
	Levels int

	// SupersPerHyper is the second-round grouping factor when Levels is 4.
	// Defaults to 4.
	SupersPerHyper int

	// InPackOrder selects the bandwidth-reducing ordering applied to each
	// pack's DAR graph (§3.4). The paper uses RCM and names alternatives
	// as future work; Sloan is provided.
	InPackOrder InPackOrdering
}

// InPackOrdering names the §3.4 DAR reordering algorithm.
type InPackOrdering int

const (
	// InPackRCM reorders each pack's DAR by Reverse Cuthill–McKee (the
	// paper's choice).
	InPackRCM InPackOrdering = iota
	// InPackSloan reorders each pack's DAR by Sloan's profile-reducing
	// ordering.
	InPackSloan
)

func (o Options) withDefaults() Options {
	if o.RowsPerSuper <= 0 {
		o.RowsPerSuper = 80
	}
	if o.MaxCliquePerSource <= 0 {
		o.MaxCliquePerSource = 8
	}
	if o.Levels == 0 {
		if o.Method.UsesSuperRows() {
			o.Levels = 3
		} else {
			o.Levels = 2
		}
	}
	if o.SupersPerHyper <= 0 {
		o.SupersPerHyper = 4
	}
	return o
}

func (o Options) validate() error {
	if o.Method.UsesSuperRows() {
		if o.Levels != 3 && o.Levels != 4 {
			return fmt.Errorf("order: %v supports Levels 3 or 4, got %d", o.Method, o.Levels)
		}
	} else if o.Levels != 2 {
		return fmt.Errorf("order: %v is a row-level method (Levels 2), got %d", o.Method, o.Levels)
	}
	return nil
}

// Plan is the result of the pipeline: the permutation that was applied to
// the input matrix and the k-level structure over the permuted lower
// triangle.
type Plan struct {
	Method Method
	Opts   Options

	// Perm maps original row indices of the input matrix to rows of S.L.
	Perm []int

	// S holds the permuted lower-triangular matrix and the pack/super-row
	// boundaries (csrk "index3"/"index2" arrays).
	S *csrk.Structure

	// NumPacks is the number of parallel steps (colours or levels after
	// pack construction); equals S.NumPacks().
	NumPacks int
}

// PermuteRHS returns b permuted to the plan's row order: out[Perm[i]] = b[i].
func (p *Plan) PermuteRHS(b []float64) []float64 {
	out := make([]float64, len(b))
	for i, pi := range p.Perm {
		out[pi] = b[i]
	}
	return out
}

// UnpermuteSolution maps a solution of the permuted system back to the
// original unknown order: out[i] = x[Perm[i]].
func (p *Plan) UnpermuteSolution(x []float64) []float64 {
	out := make([]float64, len(x))
	for i, pi := range p.Perm {
		out[i] = x[pi]
	}
	return out
}

// Build runs the full pipeline on a structurally symmetric matrix with a
// full diagonal (A = L + Lᵀ; use sparse.SymmetrizePattern for triangular
// inputs) and returns the Plan for the requested method.
func Build(a *sparse.CSR, opts Options) (*Plan, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if a.N == 0 {
		return nil, fmt.Errorf("order: empty matrix")
	}
	if !a.IsStructurallySymmetric() {
		return nil, fmt.Errorf("order: matrix must be structurally symmetric (build A = L + Lᵀ first)")
	}
	if !a.HasFullNonzeroDiagonal() {
		return nil, fmt.Errorf("order: matrix must carry a full nonzero diagonal")
	}

	perm := sparse.IdentityPermutation(a.N)

	// Stage 1: base RCM (§4.1 applies it to every scheme).
	if !opts.SkipBaseRCM {
		p1 := graph.FromMatrix(a).RCM()
		var err error
		if a, err = sparse.PermuteSym(a, p1); err != nil {
			return nil, fmt.Errorf("order: base RCM: %w", err)
		}
		if perm, err = sparse.ComposePermutations(perm, p1); err != nil {
			return nil, err
		}
	}

	// Stage 2: super-rows (§3.1). Row-level methods use singleton parts;
	// Levels=4 folds a second contiguous grouping over the super-rows,
	// widening each task to a hyper-row (§5 extension).
	var part *graph.Partition
	if opts.Method.UsesSuperRows() {
		part = graph.CoarsenContiguous(a, opts.RowsPerSuper)
		if opts.Levels >= 4 {
			hyper := &graph.Partition{Membership: make([]int, a.N)}
			for i := 0; i < a.N; i++ {
				hyper.Membership[i] = part.Membership[i] / opts.SupersPerHyper
			}
			hyper.NumParts = (part.NumParts + opts.SupersPerHyper - 1) / opts.SupersPerHyper
			part = hyper
		}
	} else {
		part = &graph.Partition{Membership: sparse.IdentityPermutation(a.N), NumParts: a.N}
	}
	g1 := graph.FromMatrix(a)
	var g2 *graph.Graph
	if opts.Method.UsesSuperRows() {
		g2 = graph.CoarseGraph(g1, part)
	} else {
		g2 = g1
	}

	// Stage 3: packs of independent super-rows (§3.2).
	labels, numPacks := buildPacks(g2, opts)

	// Rows per part, for pack sizing and the final row permutation.
	partRows := make([][]int, part.NumParts)
	for i := 0; i < a.N; i++ {
		pt := part.Membership[i]
		partRows[pt] = append(partRows[pt], i)
	}

	// Stage 4: order packs by increasing size in solution components (§3.2).
	packRank := rankPacks(labels, numPacks, partRows, opts)

	// Stage 5: in-pack DAR ordering (§3.4) and final super-row sequence.
	sequence := sequenceSuperRows(a, part, partRows, labels, packRank, numPacks, opts)

	// Stage 6: fine row permutation, permuted matrix, structure arrays.
	p2 := make([]int, a.N)
	superPtr := make([]int, 0, part.NumParts+1)
	packPtr := make([]int, 0, numPacks+1)
	superPtr = append(superPtr, 0)
	packPtr = append(packPtr, 0)
	next := 0
	lastPack := -1
	for _, sr := range sequence {
		if pr := packRank[labels[sr]]; pr != lastPack {
			if lastPack >= 0 {
				packPtr = append(packPtr, len(superPtr)-1)
			}
			lastPack = pr
		}
		for _, row := range partRows[sr] {
			p2[row] = next
			next++
		}
		superPtr = append(superPtr, next)
	}
	packPtr = append(packPtr, len(superPtr)-1)

	a2, err := sparse.PermuteSym(a, p2)
	if err != nil {
		return nil, fmt.Errorf("order: final permutation: %w", err)
	}
	if perm, err = sparse.ComposePermutations(perm, p2); err != nil {
		return nil, err
	}
	s, err := csrk.Build(a2.Lower(), superPtr, packPtr)
	if err != nil {
		return nil, fmt.Errorf("order: structure for %v: %w", opts.Method, err)
	}
	return &Plan{
		Method:   opts.Method,
		Opts:     opts,
		Perm:     perm,
		S:        s,
		NumPacks: s.NumPacks(),
	}, nil
}

// buildPacks labels every super-row with its pack id.
func buildPacks(g2 *graph.Graph, opts Options) (labels []int, numPacks int) {
	if opts.Method.UsesColoring() {
		return g2.GreedyColor(opts.ColorOrder)
	}
	// Level sets, seeded at a vertex of largest degree (§4.1). BFS levels
	// may leave same-level neighbours, so the final packs are the DAG
	// levels induced by the BFS numbering: level(v) = 1 + max level of
	// already-numbered neighbours.
	bfsPerm := g2.BFSOrder(g2.MaxDegreeVertex())
	return dagLevelsUnderOrder(g2, bfsPerm)
}

// dagLevelsUnderOrder computes triangular level sets for the dependency
// DAG obtained by orienting every edge from the lower-numbered endpoint
// (under ord) to the higher: level(v) = 1 + max{level(u) : {u,v} ∈ E,
// ord(u) < ord(v)}.
func dagLevelsUnderOrder(g *graph.Graph, ord []int) (levels []int, numLevels int) {
	inv := sparse.InvertPermutation(ord)
	levels = make([]int, g.N)
	for k := 0; k < g.N; k++ {
		v := inv[k]
		lv := 0
		for _, u := range g.Neighbors(v) {
			if ord[u] < ord[v] && levels[u]+1 > lv {
				lv = levels[u] + 1
			}
		}
		levels[v] = lv
		if lv+1 > numLevels {
			numLevels = lv + 1
		}
	}
	return levels, numLevels
}

// rankPacks returns packRank[label] = position of that pack in the final
// pack sequence, ordering packs by increasing number of rows (§3.2), or
// keeping label order when SkipPackSort is set. Ties break by label so the
// result is deterministic.
func rankPacks(labels []int, numPacks int, partRows [][]int, opts Options) []int {
	sizes := make([]int, numPacks)
	for sr, lb := range labels {
		sizes[lb] += len(partRows[sr])
	}
	order := make([]int, numPacks)
	for i := range order {
		order[i] = i
	}
	if !opts.SkipPackSort {
		sort.SliceStable(order, func(x, y int) bool {
			if sizes[order[x]] != sizes[order[y]] {
				return sizes[order[x]] < sizes[order[y]]
			}
			return order[x] < order[y]
		})
	}
	rank := make([]int, numPacks)
	for pos, lb := range order {
		rank[lb] = pos
	}
	return rank
}

// sequenceSuperRows produces the final order of super-rows: packs by rank,
// and within each pack either ascending id or the §3.4 RCM-on-DAR order.
func sequenceSuperRows(a *sparse.CSR, part *graph.Partition, partRows [][]int,
	labels []int, packRank []int, numPacks int, opts Options) []int {

	packs := make([][]int, numPacks)
	for sr := 0; sr < part.NumParts; sr++ {
		pr := packRank[labels[sr]]
		packs[pr] = append(packs[pr], sr)
	}
	sequence := make([]int, 0, part.NumParts)
	reorder := opts.Method.UsesSuperRows() && !opts.SkipInPackRCM
	for pr := 0; pr < numPacks; pr++ {
		members := packs[pr]
		if reorder && len(members) > 2 {
			members = reorderPackDAR(a, part, partRows, labels, packRank, members, pr, opts)
		}
		sequence = append(sequence, members...)
	}
	return sequence
}

// reorderPackDAR implements §3.4: build the pack's DAR graph — two tasks
// are adjacent when they read a common solution component computed in an
// earlier pack — and return the pack's super-rows in RCM order of that
// graph, so the DAR becomes band-reduced (line-like) and the block/dynamic
// schedules of §3.3 reuse cached components between consecutive tasks.
func reorderPackDAR(a *sparse.CSR, part *graph.Partition, partRows [][]int,
	labels []int, packRank []int, members []int, myRank int, opts Options) []int {

	tasks := make([]dar.Task, len(members))
	seen := make(map[int]struct{})
	for t, sr := range members {
		clear(seen)
		var inputs []int
		for _, row := range partRows[sr] {
			cols, _ := a.Row(row)
			for _, j := range cols {
				src := part.Membership[j]
				if src == sr {
					continue
				}
				if packRank[labels[src]] >= myRank {
					continue // same or later pack: not a reuse source
				}
				if _, ok := seen[src]; !ok {
					seen[src] = struct{}{}
					inputs = append(inputs, src)
				}
			}
		}
		tasks[t] = dar.Task{Inputs: inputs}
	}
	dg := dar.BuildGraph(tasks, opts.MaxCliquePerSource)
	lg := darToGraph(dg)
	var perm []int // local task index -> new position
	if opts.InPackOrder == InPackSloan {
		perm = lg.Sloan()
	} else {
		perm = lg.RCM()
	}
	out := make([]int, len(members))
	for t, sr := range members {
		out[perm[t]] = sr
	}
	return out
}

// darToGraph converts a DAR graph into the graph package's CSR
// representation so RCM can run on it.
func darToGraph(d *dar.Graph) *graph.Graph {
	g := &graph.Graph{N: d.N, Ptr: make([]int, d.N+1)}
	for v := 0; v < d.N; v++ {
		g.Ptr[v+1] = g.Ptr[v] + d.Degree(v)
	}
	g.Adj = make([]int, g.Ptr[d.N])
	for v := 0; v < d.N; v++ {
		copy(g.Adj[g.Ptr[v]:], d.Neighbors(v))
	}
	return g
}
