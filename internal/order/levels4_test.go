package order

import (
	"testing"

	"stsk/internal/gen"
	"stsk/internal/sparse"
)

func TestLevels4BuildsAndSolves(t *testing.T) {
	a := gen.TriMesh(22, 22, 5)
	for _, m := range []Method{CSR3LS, STS3} {
		p3, err := Build(a, Options{Method: m, RowsPerSuper: 6})
		if err != nil {
			t.Fatal(err)
		}
		p4, err := Build(a, Options{Method: m, RowsPerSuper: 6, Levels: 4, SupersPerHyper: 3})
		if err != nil {
			t.Fatalf("%v levels=4: %v", m, err)
		}
		verifySolve(t, a, p4)
		// Hyper-rows are ~3x wider: far fewer tasks.
		if p4.S.NumSuperRows()*2 > p3.S.NumSuperRows() {
			t.Fatalf("%v: levels=4 tasks %d not clearly fewer than levels=3 %d",
				m, p4.S.NumSuperRows(), p3.S.NumSuperRows())
		}
		// And typically at least as few packs (coarser graph).
		if p4.NumPacks > p3.NumPacks*2 {
			t.Fatalf("%v: levels=4 packs %d exploded vs %d", m, p4.NumPacks, p3.NumPacks)
		}
	}
}

func TestLevelsValidation(t *testing.T) {
	a := gen.Grid2D(8, 8)
	if _, err := Build(a, Options{Method: CSRLS, Levels: 3}); err == nil {
		t.Fatal("row-level method accepted Levels=3")
	}
	if _, err := Build(a, Options{Method: STS3, Levels: 2}); err == nil {
		t.Fatal("k-level method accepted Levels=2")
	}
	if _, err := Build(a, Options{Method: STS3, Levels: 7}); err == nil {
		t.Fatal("Levels=7 accepted")
	}
	// Defaults pass.
	if _, err := Build(a, Options{Method: CSRLS}); err != nil {
		t.Fatal(err)
	}
	if _, err := Build(a, Options{Method: STS3}); err != nil {
		t.Fatal(err)
	}
}

func TestInPackSloanOption(t *testing.T) {
	a := gen.TriMesh(20, 20, 9)
	rcm, err := Build(a, Options{Method: STS3, RowsPerSuper: 6, InPackOrder: InPackRCM})
	if err != nil {
		t.Fatal(err)
	}
	sloan, err := Build(a, Options{Method: STS3, RowsPerSuper: 6, InPackOrder: InPackSloan})
	if err != nil {
		t.Fatal(err)
	}
	verifySolve(t, a, rcm)
	verifySolve(t, a, sloan)
	if err := sparse.CheckPermutation(sloan.Perm); err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range rcm.Perm {
		if rcm.Perm[i] != sloan.Perm[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("Sloan in-pack ordering identical to RCM on a non-trivial mesh")
	}
}
