package order

import (
	"sort"

	"stsk/internal/csrk"
)

// TaskDAGOptions tunes the dependency-DAG construction for the
// point-to-point graph schedule.
type TaskDAGOptions struct {
	// SplitPerPack caps the number of tasks carved from one pack, so wide
	// packs keep intra-pack parallelism under the graph schedule instead
	// of collapsing onto a single worker. Defaults to 8. The split is
	// deterministic (never tied to GOMAXPROCS) so a plan built on one
	// machine schedules identically everywhere.
	SplitPerPack int

	// MinTaskNNZ is the minimum work (stored entries) worth a scheduling
	// unit; packs smaller than SplitPerPack×MinTaskNNZ are carved into
	// proportionally fewer tasks. Defaults to 2048.
	MinTaskNNZ int

	// SparsifyLimit bounds the task count for full transitive reduction
	// (the ancestor bitsets cost O(tasks²/64) words). DAGs larger than the
	// limit keep their deduplicated direct edges, which is correct but
	// synchronises more than necessary. Defaults to 16384.
	SparsifyLimit int
}

func (o TaskDAGOptions) withDefaults() TaskDAGOptions {
	if o.SplitPerPack <= 0 {
		o.SplitPerPack = 8
	}
	if o.MinTaskNNZ <= 0 {
		o.MinTaskNNZ = 2048
	}
	if o.SparsifyLimit <= 0 {
		o.SparsifyLimit = 16384
	}
	return o
}

// BuildTaskDAG derives the pack-to-pack dependency DAG of a structure for
// the point-to-point graph schedule (the barrier-free counterpart of
// Algorithm 1's pack loop):
//
//  1. Each pack is split into up to SplitPerPack contiguous super-row
//     chunks of roughly equal nonzero count — the tasks. A task never
//     splits a super-row and never crosses a pack, so tasks inherit the
//     structure's independence guarantees: all dependencies point to
//     earlier packs.
//  2. Every task's direct dependencies are read off the matrix: a task
//     depends on the task owning each column its rows reference below its
//     own row range.
//  3. The dependency lists are transitively sparsified: an edge p→t is
//     dropped when p is already an ancestor of another predecessor of t,
//     so each task waits only on its direct unsatisfied predecessors and
//     a finishing task notifies the minimum set of successors.
//
// The result is built once at plan time and reused by every solve.
func BuildTaskDAG(s *csrk.Structure, opts TaskDAGOptions) *csrk.TaskDAG {
	opts = opts.withDefaults()
	l := s.L

	// Stage 1: carve packs into nnz-balanced contiguous super-row chunks.
	taskPtr := []int32{0}
	for p := 0; p < s.NumPacks(); p++ {
		slo, shi := s.PackSuperRows(p)
		rlo, rhi := s.PackRows(p)
		packNNZ := l.RowPtr[rhi] - l.RowPtr[rlo]
		k := packNNZ / opts.MinTaskNNZ
		if k > opts.SplitPerPack {
			k = opts.SplitPerPack
		}
		if k > shi-slo {
			k = shi - slo
		}
		if k < 1 {
			k = 1
		}
		// Walk the super-rows, cutting whenever the accumulated nonzeros
		// pass the next of k equal marks.
		cut := slo
		done := 0
		for c := 1; c < k; c++ {
			target := packNNZ * c / k
			for cut < shi-(k-c) && done < target {
				lo, hi := s.SuperRowRows(cut)
				done += l.RowPtr[hi] - l.RowPtr[lo]
				cut++
			}
			if cut > int(taskPtr[len(taskPtr)-1]) {
				taskPtr = append(taskPtr, int32(cut))
			}
		}
		taskPtr = append(taskPtr, int32(shi))
	}
	nt := len(taskPtr) - 1

	// Row ranges and row→task ownership.
	rowPtr := make([]int32, nt+1)
	rowTask := make([]int32, l.N)
	for t := 0; t < nt; t++ {
		rlo := s.SuperPtr[taskPtr[t]]
		rhi := s.SuperPtr[taskPtr[t+1]]
		rowPtr[t] = int32(rlo)
		rowPtr[t+1] = int32(rhi)
		for i := rlo; i < rhi; i++ {
			rowTask[i] = int32(t)
		}
	}

	// Stage 2: direct dependencies from the matrix structure.
	direct := make([][]int32, nt)
	stamp := make([]int32, nt)
	for i := range stamp {
		stamp[i] = -1
	}
	for t := 0; t < nt; t++ {
		rlo, rhi := int(rowPtr[t]), int(rowPtr[t+1])
		for i := rlo; i < rhi; i++ {
			for k := l.RowPtr[i]; k < l.RowPtr[i+1]; k++ {
				j := l.Col[k]
				if j >= rlo {
					continue // own task (rows of a task are contiguous)
				}
				pt := rowTask[j]
				if stamp[pt] != int32(t) {
					stamp[pt] = int32(t)
					direct[t] = append(direct[t], pt)
				}
			}
		}
		sort.Slice(direct[t], func(a, b int) bool { return direct[t][a] > direct[t][b] }) // descending
	}

	// Stage 3: transitive sparsification. anc[t] is the full ancestor set
	// of task t as a bitset; scanning the direct predecessors in
	// descending order, an edge is kept only when its target is not
	// already reachable through a kept one.
	pred := []int32{}
	predPtr := make([]int32, nt+1)
	if nt <= opts.SparsifyLimit {
		words := (nt + 63) / 64
		anc := make([]uint64, nt*words)
		for t := 0; t < nt; t++ {
			reach := anc[t*words : (t+1)*words]
			for _, p := range direct[t] {
				if reach[p>>6]&(1<<(uint(p)&63)) != 0 {
					continue // implied by a kept predecessor
				}
				pred = append(pred, p)
				pa := anc[int(p)*words : (int(p)+1)*words]
				for w := range reach {
					reach[w] |= pa[w]
				}
				reach[p>>6] |= 1 << (uint(p) & 63)
			}
			predPtr[t+1] = int32(len(pred))
		}
	} else {
		for t := 0; t < nt; t++ {
			pred = append(pred, direct[t]...)
			predPtr[t+1] = int32(len(pred))
		}
	}

	// Ascending predecessor order reads more naturally downstream.
	for t := 0; t < nt; t++ {
		seg := pred[predPtr[t]:predPtr[t+1]]
		for a, b := 0, len(seg)-1; a < b; a, b = a+1, b-1 {
			seg[a], seg[b] = seg[b], seg[a]
		}
	}

	// Successor lists by a counting transpose of Pred.
	succPtr := make([]int32, nt+1)
	for _, p := range pred {
		succPtr[p+1]++
	}
	for t := 0; t < nt; t++ {
		succPtr[t+1] += succPtr[t]
	}
	succ := make([]int32, len(pred))
	next := append([]int32(nil), succPtr[:nt]...)
	for t := 0; t < nt; t++ {
		for _, p := range pred[predPtr[t]:predPtr[t+1]] {
			succ[next[p]] = int32(t)
			next[p]++
		}
	}

	return &csrk.TaskDAG{
		TaskPtr: taskPtr,
		RowPtr:  rowPtr,
		Pred:    pred, PredPtr: predPtr,
		Succ: succ, SuccPtr: succPtr,
	}
}
