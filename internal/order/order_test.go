package order

import (
	"testing"

	"stsk/internal/gen"
	"stsk/internal/graph"
	"stsk/internal/sparse"
)

func buildPlan(t *testing.T, a *sparse.CSR, m Method) *Plan {
	t.Helper()
	p, err := Build(a, Options{Method: m, RowsPerSuper: 8})
	if err != nil {
		t.Fatalf("%v: %v", m, err)
	}
	return p
}

// verifySolve checks end-to-end correctness: pick a true solution in the
// ORIGINAL ordering, move it into plan order, manufacture the RHS for the
// permuted system, solve sequentially, and map back.
func verifySolve(t *testing.T, a *sparse.CSR, p *Plan) {
	t.Helper()
	xTrue := make([]float64, a.N)
	for i := range xTrue {
		xTrue[i] = float64(i%7) - 3
	}
	xPerm := p.PermuteRHS(xTrue) // reuse the mapping: out[Perm[i]] = xTrue[i]
	b := sparse.RHSForSolution(p.S.L, xPerm)
	x, err := sparse.ForwardSubstitution(p.S.L, b)
	if err != nil {
		t.Fatalf("%v: %v", p.Method, err)
	}
	back := p.UnpermuteSolution(x)
	if d := sparse.MaxAbsDiff(back, xTrue); d > 1e-9 {
		t.Fatalf("%v: solution error %g after permutation round trip", p.Method, d)
	}
}

func TestBuildAllMethodsOnMeshes(t *testing.T) {
	mats := map[string]*sparse.CSR{
		"grid2d":   gen.Grid2D(17, 13),
		"trimesh":  gen.TriMesh(14, 14, 3),
		"quaddual": gen.QuadDual(10, 10, 1),
		"roadnet":  gen.RoadNet(7, 7, 3, 5, 1),
		"grid3d":   gen.Grid3D(7, 6, 5),
	}
	for name, a := range mats {
		for _, m := range Methods() {
			p := buildPlan(t, a, m)
			if err := sparse.CheckPermutation(p.Perm); err != nil {
				t.Fatalf("%s/%v: %v", name, m, err)
			}
			if p.S.L.N != a.N {
				t.Fatalf("%s/%v: size mismatch", name, m)
			}
			if p.NumPacks < 1 {
				t.Fatalf("%s/%v: no packs", name, m)
			}
			// Structure validity (incl. pack independence) is enforced by
			// csrk.Build inside Build; re-check defensively.
			if err := p.S.Validate(); err != nil {
				t.Fatalf("%s/%v: %v", name, m, err)
			}
			verifySolve(t, a, p)
		}
	}
}

func TestColoringFewerPacksThanLevelSets(t *testing.T) {
	// Figure 7's headline: colouring produces orders of magnitude fewer
	// packs than level sets on mesh classes.
	a := gen.TriMesh(30, 30, 11)
	ls := buildPlan(t, a, CSRLS)
	col := buildPlan(t, a, CSRCOL)
	if col.NumPacks*4 > ls.NumPacks {
		t.Fatalf("colouring packs %d not clearly fewer than level-set packs %d", col.NumPacks, ls.NumPacks)
	}
}

func TestCoarseLevelSetsFewerPacks(t *testing.T) {
	// §3.2: level sets on G2 have fewer levels than on G1.
	a := gen.Grid2D(28, 28)
	fine := buildPlan(t, a, CSRLS)
	coarse := buildPlan(t, a, CSR3LS)
	if coarse.NumPacks >= fine.NumPacks {
		t.Fatalf("CSR-3-LS packs %d, CSR-LS packs %d; want fewer on G2", coarse.NumPacks, fine.NumPacks)
	}
}

func TestPackSizesAscending(t *testing.T) {
	a := gen.TriMesh(20, 20, 5)
	for _, m := range Methods() {
		p := buildPlan(t, a, m)
		counts := p.S.PackRowCounts()
		for i := 1; i < len(counts); i++ {
			if counts[i] < counts[i-1] {
				t.Fatalf("%v: pack sizes not ascending: %v", m, counts)
			}
		}
	}
}

func TestSkipPackSortKeepsLabelOrder(t *testing.T) {
	a := gen.TriMesh(16, 16, 9)
	p, err := Build(a, Options{Method: STS3, RowsPerSuper: 8, SkipPackSort: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.S.Validate(); err != nil {
		t.Fatal(err)
	}
	verifySolve(t, a, p)
}

func TestSuperRowsGrouped(t *testing.T) {
	a := gen.Grid2D(20, 20)
	p := buildPlan(t, a, STS3)
	if p.S.NumSuperRows() >= a.N {
		t.Fatalf("STS-3 should group rows: %d super-rows for %d rows", p.S.NumSuperRows(), a.N)
	}
	flat := buildPlan(t, a, CSRCOL)
	if flat.S.NumSuperRows() != a.N {
		t.Fatalf("CSR-COL must keep singleton super-rows, got %d", flat.S.NumSuperRows())
	}
}

func TestRowsPerSuperRespected(t *testing.T) {
	a := gen.Grid2D(20, 20)
	p, err := Build(a, Options{Method: STS3, RowsPerSuper: 5})
	if err != nil {
		t.Fatal(err)
	}
	for sr := 0; sr < p.S.NumSuperRows(); sr++ {
		lo, hi := p.S.SuperRowRows(sr)
		if hi-lo > 5 {
			t.Fatalf("super-row %d has %d rows, cap 5", sr, hi-lo)
		}
	}
}

func TestInPackRCMAblation(t *testing.T) {
	a := gen.TriMesh(22, 22, 13)
	with, err := Build(a, Options{Method: STS3, RowsPerSuper: 6})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Build(a, Options{Method: STS3, RowsPerSuper: 6, SkipInPackRCM: true})
	if err != nil {
		t.Fatal(err)
	}
	verifySolve(t, a, with)
	verifySolve(t, a, without)
	// Both are valid; the orders should genuinely differ on a non-trivial mesh.
	same := true
	for i := range with.Perm {
		if with.Perm[i] != without.Perm[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("in-pack RCM had no effect on the ordering")
	}
}

func TestSkipBaseRCM(t *testing.T) {
	a := gen.Grid2D(12, 12)
	p, err := Build(a, Options{Method: CSRCOL, SkipBaseRCM: true})
	if err != nil {
		t.Fatal(err)
	}
	verifySolve(t, a, p)
}

func TestBuildRejectsBadInput(t *testing.T) {
	empty := &sparse.CSR{N: 0, RowPtr: []int{0}, Col: []int{}, Val: []float64{}}
	if _, err := Build(empty, Options{Method: STS3}); err == nil {
		t.Fatal("empty matrix accepted")
	}
	// Non-symmetric input.
	coo := sparse.NewCOO(2, 3)
	coo.Add(0, 0, 1)
	coo.Add(1, 0, 1)
	coo.Add(1, 1, 1)
	if _, err := Build(coo.ToCSR(), Options{Method: STS3}); err == nil {
		t.Fatal("non-symmetric matrix accepted")
	}
	// Missing diagonal.
	coo2 := sparse.NewCOO(2, 2)
	coo2.Add(0, 1, 1)
	coo2.Add(1, 0, 1)
	if _, err := Build(coo2.ToCSR(), Options{Method: STS3}); err == nil {
		t.Fatal("hollow matrix accepted")
	}
}

func TestMethodStringsAndPredicates(t *testing.T) {
	if CSRLS.String() != "CSR-LS" || STS3.String() != "STS-3" ||
		CSR3LS.String() != "CSR-3-LS" || CSRCOL.String() != "CSR-COL" {
		t.Fatal("method names wrong")
	}
	if Method(42).String() == "" {
		t.Fatal("unknown method should still format")
	}
	if !STS3.UsesColoring() || !CSRCOL.UsesColoring() || CSRLS.UsesColoring() {
		t.Fatal("UsesColoring wrong")
	}
	if !STS3.UsesSuperRows() || !CSR3LS.UsesSuperRows() || CSRCOL.UsesSuperRows() {
		t.Fatal("UsesSuperRows wrong")
	}
	if len(Methods()) != 4 {
		t.Fatal("Methods() must list all four schemes")
	}
}

func TestDagLevelsUnderOrderValid(t *testing.T) {
	a := gen.TriMesh(10, 10, 2)
	g := graph.FromMatrix(a)
	ord := g.BFSOrder(g.MaxDegreeVertex())
	levels, nl := dagLevelsUnderOrder(g, ord)
	if nl < 2 {
		t.Fatalf("mesh should have several levels, got %d", nl)
	}
	for v := 0; v < g.N; v++ {
		for _, u := range g.Neighbors(v) {
			if levels[u] == levels[v] {
				t.Fatalf("adjacent vertices %d,%d share level %d", v, u, levels[v])
			}
		}
	}
}

func TestSingletonMatrix(t *testing.T) {
	coo := sparse.NewCOO(1, 1)
	coo.Add(0, 0, 2)
	a := coo.ToCSR()
	for _, m := range Methods() {
		p := buildPlan(t, a, m)
		if p.NumPacks != 1 {
			t.Fatalf("%v: packs = %d", m, p.NumPacks)
		}
	}
}
