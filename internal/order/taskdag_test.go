package order

import (
	"testing"

	"stsk/internal/csrk"
	"stsk/internal/gen"
	"stsk/internal/sparse"
)

// ancestorSets recomputes the full reachability closure of the DAG.
func ancestorSets(d *csrk.TaskDAG) [][]uint64 {
	nt := d.NumTasks()
	words := (nt + 63) / 64
	anc := make([][]uint64, nt)
	for t := 0; t < nt; t++ {
		anc[t] = make([]uint64, words)
		for _, p := range d.Preds(t) {
			anc[t][p>>6] |= 1 << (uint(p) & 63)
			for w := range anc[t] {
				anc[t][w] |= anc[p][w]
			}
		}
	}
	return anc
}

func has(set []uint64, t int32) bool { return set[t>>6]&(1<<(uint(t)&63)) != 0 }

// TestTaskDAGCoversMatrixDependencies builds DAGs for every method over a
// couple of mesh matrices and checks the scheduler contract: the DAG is
// structurally valid, and every matrix entry crossing a task boundary is
// covered by reachability — a task transitively waits on every task whose
// rows it reads.
func TestTaskDAGCoversMatrixDependencies(t *testing.T) {
	mats := map[string]*sparse.CSR{
		"grid3d":  gen.Grid3D(6, 6, 6),
		"trimesh": gen.TriMesh(13, 13, 3),
	}
	for name, a := range mats {
		for _, m := range Methods() {
			p, err := Build(a, Options{Method: m})
			if err != nil {
				t.Fatalf("%s/%v: %v", name, m, err)
			}
			d := BuildTaskDAG(p.S, TaskDAGOptions{SplitPerPack: 4, MinTaskNNZ: 16})
			if err := d.Validate(p.S); err != nil {
				t.Fatalf("%s/%v: %v", name, m, err)
			}
			anc := ancestorSets(d)
			rowTask := make([]int32, p.S.L.N)
			for task := 0; task < d.NumTasks(); task++ {
				lo, hi := d.TaskRows(task)
				for i := lo; i < hi; i++ {
					rowTask[i] = int32(task)
				}
			}
			l := p.S.L
			for i := 0; i < l.N; i++ {
				cols, _ := l.Row(i)
				for _, j := range cols {
					ti, tj := rowTask[i], rowTask[j]
					if ti == tj {
						continue
					}
					if !has(anc[ti], tj) {
						t.Fatalf("%s/%v: row %d (task %d) reads row %d (task %d) with no dependency path",
							name, m, i, j, ti, tj)
					}
				}
			}
		}
	}
}

// TestTaskDAGSparsified checks the transitive reduction: no direct edge
// may be implied by the rest of the task's predecessors.
func TestTaskDAGSparsified(t *testing.T) {
	a := gen.TriMesh(12, 12, 3)
	p, err := Build(a, Options{Method: STS3})
	if err != nil {
		t.Fatal(err)
	}
	d := BuildTaskDAG(p.S, TaskDAGOptions{SplitPerPack: 4, MinTaskNNZ: 16})
	anc := ancestorSets(d)
	for task := 0; task < d.NumTasks(); task++ {
		preds := d.Preds(task)
		for _, q := range preds {
			for _, other := range preds {
				if other != q && has(anc[other], q) {
					t.Fatalf("task %d: edge to %d is implied by predecessor %d", task, q, other)
				}
			}
		}
	}
}

// TestTaskDAGSplitsWidePacks checks that a wide pack is carved into
// several independent tasks (the intra-pack parallelism the graph
// schedule needs), and that the resulting DAG reports parallelism > 1.
func TestTaskDAGSplitsWidePacks(t *testing.T) {
	a := gen.Grid3D(7, 7, 7)
	p, err := Build(a, Options{Method: CSR3LS})
	if err != nil {
		t.Fatal(err)
	}
	d := BuildTaskDAG(p.S, TaskDAGOptions{SplitPerPack: 4, MinTaskNNZ: 16})
	if d.NumTasks() <= p.S.NumPacks() {
		t.Fatalf("no pack was split: %d tasks over %d packs", d.NumTasks(), p.S.NumPacks())
	}
	// The pack sequence is sorted by size, not by dependency, so the
	// critical path may be shorter than the pack count — that slack is
	// precisely what the graph schedule exploits — but it can never
	// exceed it: a task chain crosses each pack at most once.
	if cp := d.CriticalPath(); cp > p.S.NumPacks() || cp < 1 {
		t.Fatalf("critical path %d outside [1,%d]", cp, p.S.NumPacks())
	}
	if pi := d.Parallelism(); pi <= 1 {
		t.Fatalf("parallelism %.2f, want > 1", pi)
	}
}

// TestTaskDAGDefaults exercises the default splitting thresholds on a
// larger matrix and the no-sparsification fallback path.
func TestTaskDAGDefaults(t *testing.T) {
	a := gen.Grid2D(40, 40)
	p, err := Build(a, Options{Method: CSRLS})
	if err != nil {
		t.Fatal(err)
	}
	d := BuildTaskDAG(p.S, TaskDAGOptions{})
	if err := d.Validate(p.S); err != nil {
		t.Fatal(err)
	}
	dense := BuildTaskDAG(p.S, TaskDAGOptions{SparsifyLimit: 1, MinTaskNNZ: 1, SplitPerPack: 4})
	if err := dense.Validate(p.S); err != nil {
		t.Fatal(err)
	}
	sparse := BuildTaskDAG(p.S, TaskDAGOptions{MinTaskNNZ: 1, SplitPerPack: 4})
	if sparse.NumEdges() > dense.NumEdges() {
		t.Fatalf("sparsified DAG has more edges (%d) than the raw one (%d)", sparse.NumEdges(), dense.NumEdges())
	}
}
