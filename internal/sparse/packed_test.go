package sparse

import "testing"

// lowerFixture is a small lower-triangular system with diagonal last in
// each row (the csrk invariant).
func lowerFixture() *CSR {
	// [ 2 . . ]
	// [ 1 3 . ]
	// [ . 4 5 ]
	return &CSR{
		N:      3,
		RowPtr: []int{0, 1, 3, 5},
		Col:    []int{0, 0, 1, 1, 2},
		Val:    []float64{2, 1, 3, 4, 5},
	}
}

func TestPackLower(t *testing.T) {
	l := lowerFixture()
	p, ok := PackLower(l)
	if !ok {
		t.Fatal("PackLower refused a small matrix")
	}
	if p.N != 3 || p.NNZ() != l.NNZ() {
		t.Fatalf("N=%d NNZ=%d, want 3/%d", p.N, p.NNZ(), l.NNZ())
	}
	wantDiag := []float64{2, 3, 5}
	for i, d := range wantDiag {
		if p.Diag[i] != d {
			t.Fatalf("Diag[%d] = %v, want %v", i, p.Diag[i], d)
		}
	}
	wantPtr := []int32{0, 0, 1, 2}
	for i, w := range wantPtr {
		if p.RowPtr[i] != w {
			t.Fatalf("RowPtr[%d] = %d, want %d", i, p.RowPtr[i], w)
		}
	}
	if p.Col[0] != 0 || p.Val[0] != 1 || p.Col[1] != 1 || p.Val[1] != 4 {
		t.Fatalf("off-diagonals %v/%v wrong", p.Col, p.Val)
	}
}

func TestPackUpper(t *testing.T) {
	u := lowerFixture().Transpose() // diagonal first in each row
	p, ok := PackUpper(u)
	if !ok {
		t.Fatal("PackUpper refused a small matrix")
	}
	wantDiag := []float64{2, 3, 5}
	for i, d := range wantDiag {
		if p.Diag[i] != d {
			t.Fatalf("Diag[%d] = %v, want %v", i, p.Diag[i], d)
		}
	}
	// Row 0 of the transpose holds the off-diagonal (0,1)=1; row 1 holds (1,2)=4.
	if p.Col[0] != 1 || p.Val[0] != 1 || p.Col[1] != 2 || p.Val[1] != 4 {
		t.Fatalf("off-diagonals %v/%v wrong", p.Col, p.Val)
	}
	if p.RowPtr[3] != 2 {
		t.Fatalf("RowPtr end %d, want 2", p.RowPtr[3])
	}
}
