package sparse

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSymmetrizeProperty(t *testing.T) {
	// SymmetrizePattern computes literally A = M + Mᵀ (diagonal kept once):
	// the PATTERN is idempotent, and for a lower-triangular input the
	// values mirror exactly.
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(43))}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := randomSym(rng, 30).Lower()
		once := SymmetrizePattern(l)
		twice := SymmetrizePattern(once)
		if once.NNZ() != twice.NNZ() {
			return false
		}
		for k := range once.Col {
			if once.Col[k] != twice.Col[k] {
				return false
			}
		}
		// Value mirroring from the triangular input.
		for i := 0; i < l.N; i++ {
			cols, vals := l.Row(i)
			for k, j := range cols {
				if once.At(i, j) != vals[k] || once.At(j, i) != vals[k] {
					return false
				}
			}
		}
		// Doubling behaviour on a full symmetric input is the documented
		// A = M + Mᵀ semantics.
		for i := 0; i < once.N; i++ {
			cols, vals := once.Row(i)
			for k, j := range cols {
				want := vals[k]
				if i != j {
					want *= 2
				}
				if twice.At(i, j) != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestLowerPlusUpperReconstructProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(47))}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomSym(rng, 25)
		l, u := m.Lower(), m.Upper()
		// Lower + Upper double-count the diagonal; check entrywise.
		for i := 0; i < m.N; i++ {
			cols, vals := m.Row(i)
			for k, j := range cols {
				want := vals[k]
				got := l.At(i, j) + u.At(i, j)
				if i == j {
					got -= vals[k] // diagonal present in both
				}
				if got != want {
					return false
				}
			}
		}
		return l.NNZ()+u.NNZ() == m.NNZ()+m.N // diagonal counted twice
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestTransposePreservesMatVecProperty(t *testing.T) {
	// (Aᵀ)ᵀ x = A x and xᵀ(Ay) = (Aᵀx)ᵀy.
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(53))}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomSym(rng, 20)
		tr := m.Transpose()
		x := make([]float64, m.N)
		y := make([]float64, m.N)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		ay := make([]float64, m.N)
		m.MatVec(ay, y)
		atx := make([]float64, m.N)
		tr.MatVec(atx, x)
		lhs, rhs := 0.0, 0.0
		for i := range x {
			lhs += x[i] * ay[i]
			rhs += atx[i] * y[i]
		}
		return abs(lhs-rhs) < 1e-9*(1+abs(lhs))
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
