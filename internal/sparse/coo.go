package sparse

import (
	"fmt"
	"sort"
)

// COO is a square sparse matrix under construction, stored as unordered
// (row, col, value) triplets. Duplicate coordinates are summed when the
// matrix is compiled to CSR.
type COO struct {
	N   int
	row []int
	col []int
	val []float64
}

// NewCOO returns an empty n×n triplet accumulator with capacity hint cap.
func NewCOO(n, cap int) *COO {
	return &COO{
		N:   n,
		row: make([]int, 0, cap),
		col: make([]int, 0, cap),
		val: make([]float64, 0, cap),
	}
}

// Len returns the number of accumulated triplets (including duplicates).
func (c *COO) Len() int { return len(c.row) }

// Add appends the triplet (i, j, v). It panics if the coordinate is out of
// range; matrix assembly bugs should fail loudly at the insertion site.
func (c *COO) Add(i, j int, v float64) {
	if i < 0 || i >= c.N || j < 0 || j >= c.N {
		panic(fmt.Sprintf("sparse: COO.Add(%d, %d) out of range for n=%d", i, j, c.N))
	}
	c.row = append(c.row, i)
	c.col = append(c.col, j)
	c.val = append(c.val, v)
}

// AddSym appends (i, j, v) and, when i != j, (j, i, v).
func (c *COO) AddSym(i, j int, v float64) {
	c.Add(i, j, v)
	if i != j {
		c.Add(j, i, v)
	}
}

// ToCSR compiles the triplets into CSR form with sorted rows; duplicate
// coordinates are summed.
func (c *COO) ToCSR() *CSR {
	m := &CSR{N: c.N, RowPtr: make([]int, c.N+1)}
	if len(c.row) == 0 {
		m.Col = []int{}
		m.Val = []float64{}
		return m
	}
	// Counting sort by row, then sort each row segment by column and fold
	// duplicates. Two passes keep this O(nnz log rowlen) without a global sort.
	for _, i := range c.row {
		m.RowPtr[i+1]++
	}
	for i := 0; i < c.N; i++ {
		m.RowPtr[i+1] += m.RowPtr[i]
	}
	colTmp := make([]int, len(c.col))
	valTmp := make([]float64, len(c.val))
	next := append([]int(nil), m.RowPtr[:c.N]...)
	for k, i := range c.row {
		p := next[i]
		next[i]++
		colTmp[p] = c.col[k]
		valTmp[p] = c.val[k]
	}
	m.Col = make([]int, 0, len(colTmp))
	m.Val = make([]float64, 0, len(valTmp))
	newPtr := make([]int, c.N+1)
	for i := 0; i < c.N; i++ {
		lo, hi := m.RowPtr[i], m.RowPtr[i+1]
		seg := segment{colTmp[lo:hi], valTmp[lo:hi]}
		sort.Sort(seg)
		for k := lo; k < hi; k++ {
			j := colTmp[k]
			if n := len(m.Col); n > newPtr[i] && m.Col[n-1] == j {
				m.Val[n-1] += valTmp[k]
			} else {
				m.Col = append(m.Col, j)
				m.Val = append(m.Val, valTmp[k])
			}
		}
		newPtr[i+1] = len(m.Col)
	}
	m.RowPtr = newPtr
	return m
}

type segment struct {
	col []int
	val []float64
}

func (s segment) Len() int           { return len(s.col) }
func (s segment) Less(i, j int) bool { return s.col[i] < s.col[j] }
func (s segment) Swap(i, j int) {
	s.col[i], s.col[j] = s.col[j], s.col[i]
	s.val[i], s.val[j] = s.val[j], s.val[i]
}
