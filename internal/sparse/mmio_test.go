package sparse

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestReadMatrixMarketGeneral(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate real general
% a comment
3 3 4
1 1 2.0
2 2 3.0
3 1 -1.5
3 3 4.0
`
	m, err := ReadMatrixMarket(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if m.N != 3 || m.NNZ() != 4 {
		t.Fatalf("n=%d nnz=%d, want 3, 4", m.N, m.NNZ())
	}
	if m.At(2, 0) != -1.5 {
		t.Fatalf("At(2,0) = %v, want -1.5", m.At(2, 0))
	}
}

func TestReadMatrixMarketSymmetricExpansion(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate real symmetric
3 3 4
1 1 1.0
2 1 5.0
3 3 2.0
3 2 7.0
`
	m, err := ReadMatrixMarket(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 1) != 5 || m.At(1, 0) != 5 {
		t.Fatal("symmetric entry not mirrored")
	}
	if m.At(0, 0) != 1 {
		t.Fatal("diagonal entry doubled")
	}
	if !m.IsStructurallySymmetric() {
		t.Fatal("expanded matrix not symmetric")
	}
}

func TestReadMatrixMarketPattern(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate pattern symmetric
2 2 2
1 1
2 1
`
	m, err := ReadMatrixMarket(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if m.At(1, 0) != 1 || m.At(0, 1) != 1 {
		t.Fatal("pattern values should be 1")
	}
}

func TestReadMatrixMarketErrors(t *testing.T) {
	cases := map[string]string{
		"empty":           "",
		"no banner":       "3 3 1\n1 1 1\n",
		"bad object":      "%%MatrixMarket vector coordinate real general\n3 3 0\n",
		"bad format":      "%%MatrixMarket matrix array real general\n3 3 0\n",
		"bad field":       "%%MatrixMarket matrix coordinate complex general\n3 3 0\n",
		"bad symmetry":    "%%MatrixMarket matrix coordinate real hermitian\n3 3 0\n",
		"not square":      "%%MatrixMarket matrix coordinate real general\n3 2 0\n",
		"missing size":    "%%MatrixMarket matrix coordinate real general\n",
		"bad size line":   "%%MatrixMarket matrix coordinate real general\n3 3\n",
		"short entry":     "%%MatrixMarket matrix coordinate real general\n3 3 1\n1\n",
		"missing value":   "%%MatrixMarket matrix coordinate real general\n3 3 1\n1 1\n",
		"bad row index":   "%%MatrixMarket matrix coordinate real general\n3 3 1\nx 1 1\n",
		"bad col index":   "%%MatrixMarket matrix coordinate real general\n3 3 1\n1 x 1\n",
		"bad value":       "%%MatrixMarket matrix coordinate real general\n3 3 1\n1 1 x\n",
		"out of range":    "%%MatrixMarket matrix coordinate real general\n3 3 1\n4 1 1\n",
		"wrong nnz count": "%%MatrixMarket matrix coordinate real general\n3 3 2\n1 1 1\n",
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ReadMatrixMarket(strings.NewReader(src)); err == nil {
				t.Fatalf("accepted malformed input %q", src)
			}
		})
	}
}

func TestMatrixMarketRoundTrip(t *testing.T) {
	m := fromDense([][]float64{
		{1.25, 0, -3},
		{0, 2, 0},
		{7, 0, 0.5},
	})
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(toDense(m), toDense(back)) {
		t.Fatalf("round trip mismatch:\n%v\n%v", toDense(m), toDense(back))
	}
}
