package sparse

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// small builds a CSR from dense rows for test readability.
func fromDense(d [][]float64) *CSR {
	n := len(d)
	coo := NewCOO(n, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if d[i][j] != 0 {
				coo.Add(i, j, d[i][j])
			}
		}
	}
	return coo.ToCSR()
}

func toDense(m *CSR) [][]float64 {
	d := make([][]float64, m.N)
	for i := range d {
		d[i] = make([]float64, m.N)
		cols, vals := m.Row(i)
		for k, j := range cols {
			d[i][j] = vals[k]
		}
	}
	return d
}

// randomSym returns a random structurally symmetric matrix with full
// diagonal, n in [1, maxN].
func randomSym(rng *rand.Rand, maxN int) *CSR {
	n := 1 + rng.Intn(maxN)
	coo := NewCOO(n, 4*n)
	for i := 0; i < n; i++ {
		coo.Add(i, i, 1+rng.Float64())
	}
	edges := rng.Intn(3 * n)
	for e := 0; e < edges; e++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i != j {
			coo.AddSym(i, j, rng.Float64())
		}
	}
	return coo.ToCSR()
}

func randomPerm(rng *rand.Rand, n int) []int {
	return rng.Perm(n)
}

func TestCSRValidateGood(t *testing.T) {
	m := fromDense([][]float64{
		{2, 0, 1},
		{0, 3, 0},
		{1, 0, 4},
	})
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate() = %v, want nil", err)
	}
	if got := m.NNZ(); got != 5 {
		t.Fatalf("NNZ() = %d, want 5", got)
	}
	if got := m.At(2, 0); got != 1 {
		t.Fatalf("At(2,0) = %v, want 1", got)
	}
	if got := m.At(0, 1); got != 0 {
		t.Fatalf("At(0,1) = %v, want 0", got)
	}
}

func TestCSRValidateCatchesCorruption(t *testing.T) {
	base := fromDense([][]float64{{1, 2}, {3, 4}})
	tests := []struct {
		name string
		mut  func(*CSR)
	}{
		{"rowptr length", func(m *CSR) { m.RowPtr = m.RowPtr[:1] }},
		{"rowptr start", func(m *CSR) { m.RowPtr[0] = 1 }},
		{"rowptr end", func(m *CSR) { m.RowPtr[m.N] = 99 }},
		{"col out of range", func(m *CSR) { m.Col[0] = 7 }},
		{"col negative", func(m *CSR) { m.Col[0] = -1 }},
		{"unsorted row", func(m *CSR) { m.Col[0], m.Col[1] = m.Col[1], m.Col[0] }},
		{"duplicate col", func(m *CSR) { m.Col[1] = m.Col[0] }},
		{"val length", func(m *CSR) { m.Val = m.Val[:2] }},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			m := base.Clone()
			tc.mut(m)
			if err := m.Validate(); err == nil {
				t.Fatal("Validate() = nil, want error")
			}
		})
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		m := randomSym(rng, 30)
		tt := m.Transpose().Transpose()
		if !reflect.DeepEqual(toDense(m), toDense(tt)) {
			t.Fatalf("trial %d: transpose twice differs from original", trial)
		}
	}
}

func TestTransposeEntries(t *testing.T) {
	m := fromDense([][]float64{
		{1, 2, 0},
		{0, 0, 3},
		{4, 0, 5},
	})
	tr := m.Transpose()
	want := [][]float64{
		{1, 0, 4},
		{2, 0, 0},
		{0, 3, 5},
	}
	if !reflect.DeepEqual(toDense(tr), want) {
		t.Fatalf("Transpose mismatch: got %v want %v", toDense(tr), want)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("transpose invalid: %v", err)
	}
}

func TestLowerAndStrict(t *testing.T) {
	m := fromDense([][]float64{
		{1, 7, 0},
		{2, 3, 8},
		{0, 4, 5},
	})
	l := m.Lower()
	wantL := [][]float64{
		{1, 0, 0},
		{2, 3, 0},
		{0, 4, 5},
	}
	if !reflect.DeepEqual(toDense(l), wantL) {
		t.Fatalf("Lower mismatch: got %v want %v", toDense(l), wantL)
	}
	if !l.IsLowerTriangular() {
		t.Fatal("Lower() result not lower triangular")
	}
	s := m.Strict()
	if s.At(0, 0) != 0 || s.At(1, 1) != 0 {
		t.Fatal("Strict() kept a diagonal entry")
	}
	if s.At(1, 0) != 2 || s.At(0, 1) != 7 {
		t.Fatal("Strict() dropped an off-diagonal entry")
	}
}

func TestSymmetrizePattern(t *testing.T) {
	l := fromDense([][]float64{
		{1, 0, 0},
		{5, 2, 0},
		{0, 6, 3},
	})
	a := SymmetrizePattern(l)
	if err := a.Validate(); err != nil {
		t.Fatalf("symmetrized invalid: %v", err)
	}
	if !a.IsStructurallySymmetric() {
		t.Fatal("SymmetrizePattern result not symmetric")
	}
	if a.At(0, 1) != 5 || a.At(1, 0) != 5 {
		t.Fatalf("expected mirrored entry 5, got %v / %v", a.At(0, 1), a.At(1, 0))
	}
	if a.At(0, 0) != 1 {
		t.Fatalf("diagonal doubled: got %v want 1", a.At(0, 0))
	}
}

func TestSymmetrizePatternProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(25)
		coo := NewCOO(n, 3*n)
		for i := 0; i < n; i++ {
			coo.Add(i, i, 1)
		}
		for e := 0; e < rng.Intn(4*n); e++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if j <= i {
				coo.Add(i, j, 1)
			}
		}
		l := coo.ToCSR()
		a := SymmetrizePattern(l)
		if !a.IsStructurallySymmetric() {
			t.Fatalf("trial %d: not symmetric", trial)
		}
		// Lower triangle of the symmetrization must equal the input pattern.
		ll := a.Lower()
		if ll.NNZ() != l.NNZ() {
			t.Fatalf("trial %d: lower of symmetrization has %d nnz, input had %d", trial, ll.NNZ(), l.NNZ())
		}
	}
}

func TestPermuteSymRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 40; trial++ {
		m := randomSym(rng, 25)
		perm := randomPerm(rng, m.N)
		p, err := PermuteSym(m, perm)
		if err != nil {
			t.Fatalf("PermuteSym: %v", err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("permuted invalid: %v", err)
		}
		back, err := PermuteSym(p, InvertPermutation(perm))
		if err != nil {
			t.Fatalf("inverse PermuteSym: %v", err)
		}
		if !reflect.DeepEqual(toDense(m), toDense(back)) {
			t.Fatalf("trial %d: permute + inverse != identity", trial)
		}
	}
}

func TestPermuteSymEntrywise(t *testing.T) {
	m := fromDense([][]float64{
		{1, 2, 0},
		{2, 3, 4},
		{0, 4, 5},
	})
	perm := []int{2, 0, 1} // old 0 -> new 2, old 1 -> new 0, old 2 -> new 1
	p, err := PermuteSym(m, perm)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if got, want := p.At(perm[i], perm[j]), m.At(i, j); got != want {
				t.Fatalf("P A Pt [%d,%d]: got %v want %v", perm[i], perm[j], got, want)
			}
		}
	}
}

func TestPermuteSymRejectsBadPerm(t *testing.T) {
	m := fromDense([][]float64{{1, 0}, {0, 1}})
	for _, perm := range [][]int{{0}, {0, 0}, {0, 2}, {-1, 0}} {
		if _, err := PermuteSym(m, perm); err == nil {
			t.Fatalf("PermuteSym accepted invalid perm %v", perm)
		}
	}
}

func TestPermutationHelpers(t *testing.T) {
	perm := []int{3, 1, 0, 2}
	inv := InvertPermutation(perm)
	for i, p := range perm {
		if inv[p] != i {
			t.Fatalf("InvertPermutation wrong at %d", i)
		}
	}
	id := IdentityPermutation(4)
	comp, err := ComposePermutations(perm, id)
	if err != nil || !reflect.DeepEqual(comp, perm) {
		t.Fatalf("compose with identity: %v, %v", comp, err)
	}
	comp, err = ComposePermutations(perm, inv)
	if err != nil || !reflect.DeepEqual(comp, id) {
		t.Fatalf("compose with inverse: %v, %v", comp, err)
	}
	if _, err := ComposePermutations(perm, []int{0}); err == nil {
		t.Fatal("ComposePermutations accepted length mismatch")
	}
	if err := CheckPermutation([]int{1, 1}); err == nil {
		t.Fatal("CheckPermutation accepted duplicate")
	}
}

func TestBandwidth(t *testing.T) {
	m := fromDense([][]float64{
		{1, 0, 0, 9},
		{0, 1, 0, 0},
		{0, 0, 1, 0},
		{9, 0, 0, 1},
	})
	if got := m.Bandwidth(); got != 3 {
		t.Fatalf("Bandwidth = %d, want 3", got)
	}
	d := fromDense([][]float64{{5}})
	if got := d.Bandwidth(); got != 0 {
		t.Fatalf("Bandwidth of 1x1 = %d, want 0", got)
	}
}

func TestMatVec(t *testing.T) {
	m := fromDense([][]float64{
		{2, 0, 1},
		{0, 3, 0},
		{1, 0, 4},
	})
	x := []float64{1, 2, 3}
	y := make([]float64, 3)
	m.MatVec(y, x)
	want := []float64{5, 6, 13}
	if !reflect.DeepEqual(y, want) {
		t.Fatalf("MatVec = %v, want %v", y, want)
	}
}

func TestPermuteSymPreservesNNZQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 80, Rand: rand.New(rand.NewSource(11))}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomSym(rng, 20)
		perm := randomPerm(rng, m.N)
		p, err := PermuteSym(m, perm)
		if err != nil {
			return false
		}
		return p.NNZ() == m.NNZ() && p.Validate() == nil && p.IsStructurallySymmetric() == m.IsStructurallySymmetric()
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestIsLowerTriangularAndDiagonal(t *testing.T) {
	l := fromDense([][]float64{
		{1, 0},
		{2, 3},
	})
	if !l.IsLowerTriangular() {
		t.Fatal("expected lower triangular")
	}
	if !l.HasFullNonzeroDiagonal() {
		t.Fatal("expected full diagonal")
	}
	u := fromDense([][]float64{
		{1, 2},
		{0, 3},
	})
	if u.IsLowerTriangular() {
		t.Fatal("upper matrix reported lower triangular")
	}
	z := fromDense([][]float64{
		{0, 0},
		{2, 3},
	})
	if z.HasFullNonzeroDiagonal() {
		t.Fatal("zero diagonal not detected")
	}
}
