package sparse

import "fmt"

// Upper returns the upper triangle of m including the diagonal.
func (m *CSR) Upper() *CSR {
	u := &CSR{N: m.N, RowPtr: make([]int, m.N+1)}
	for i := 0; i < m.N; i++ {
		cols, vals := m.Row(i)
		k := searchInt(cols, i)
		u.Col = append(u.Col, cols[k:]...)
		u.Val = append(u.Val, vals[k:]...)
		u.RowPtr[i+1] = len(u.Col)
	}
	return u
}

// IsUpperTriangular reports whether every stored entry satisfies col >= row.
func (m *CSR) IsUpperTriangular() bool {
	for i := 0; i < m.N; i++ {
		cols, _ := m.Row(i)
		if len(cols) > 0 && cols[0] < i {
			return false
		}
	}
	return true
}

// BackwardSubstitution solves U x = b for an upper-triangular U with a
// nonzero diagonal, processing rows from last to first. Together with
// ForwardSubstitution it provides the symmetric Gauss–Seidel sweeps of the
// preconditioned-CG application that motivates the paper (§1).
func BackwardSubstitution(u *CSR, b []float64) ([]float64, error) {
	if !u.IsUpperTriangular() {
		return nil, fmt.Errorf("sparse: matrix is not upper triangular")
	}
	x := make([]float64, u.N)
	for i := u.N - 1; i >= 0; i-- {
		lo, hi := u.RowPtr[i], u.RowPtr[i+1]
		if lo == hi || u.Col[lo] != i {
			return nil, fmt.Errorf("sparse: row %d has no diagonal entry", i)
		}
		d := u.Val[lo]
		if d == 0 {
			return nil, fmt.Errorf("sparse: zero diagonal at row %d", i)
		}
		s := 0.0
		for k := lo + 1; k < hi; k++ {
			s += u.Val[k] * x[u.Col[k]]
		}
		x[i] = (b[i] - s) / d
	}
	return x, nil
}
