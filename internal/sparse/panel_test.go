package sparse

import "testing"

// TestPanelRoundTrip: PackPanel interleaves column vectors into a
// row-major panel and UnpackPanel is its exact inverse.
func TestPanelRoundTrip(t *testing.T) {
	const n, k = 7, 3
	cols := make([][]float64, k)
	for c := range cols {
		cols[c] = make([]float64, n)
		for i := range cols[c] {
			cols[c][i] = float64(c*100 + i)
		}
	}
	panel := make([]float64, n*k)
	PackPanel(panel, cols)
	for i := 0; i < n; i++ {
		for c := 0; c < k; c++ {
			if panel[i*k+c] != cols[c][i] {
				t.Fatalf("panel[%d,%d] = %v, want %v", i, c, panel[i*k+c], cols[c][i])
			}
		}
	}
	out := make([][]float64, k)
	for c := range out {
		out[c] = make([]float64, n)
	}
	UnpackPanel(out, panel)
	for c := range out {
		for i := range out[c] {
			if out[c][i] != cols[c][i] {
				t.Fatalf("col %d row %d = %v, want %v", c, i, out[c][i], cols[c][i])
			}
		}
	}
	PackPanel(nil, nil) // zero-width panels are no-ops
	UnpackPanel(nil, nil)
}
