package sparse

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Matrix Market (coordinate) I/O. Supports the subset needed to load the
// University of Florida collection matrices the paper uses: coordinate
// format, real / integer / pattern fields, general or symmetric symmetry.

// MMHeader describes a parsed Matrix Market banner and size line.
type MMHeader struct {
	Object    string // "matrix"
	Format    string // "coordinate"
	Field     string // "real", "integer", "pattern"
	Symmetry  string // "general", "symmetric"
	Rows      int
	Cols      int
	DeclNNZ   int // nonzeros declared in the size line (file entries)
	Symmetric bool
}

// ReadMatrixMarket parses a Matrix Market coordinate stream into CSR.
// Symmetric files are expanded to full storage (both triangles).
// Pattern files receive value 1 for every entry.
func ReadMatrixMarket(r io.Reader) (*CSR, error) {
	br := bufio.NewScanner(r)
	br.Buffer(make([]byte, 1<<20), 1<<20)

	hdr, err := readMMHeader(br)
	if err != nil {
		return nil, err
	}
	if hdr.Rows != hdr.Cols {
		return nil, fmt.Errorf("sparse: matrix market %dx%d is not square", hdr.Rows, hdr.Cols)
	}
	capHint := hdr.DeclNNZ
	if hdr.Symmetric {
		capHint *= 2
	}
	coo := NewCOO(hdr.Rows, capHint)
	seen := 0
	for br.Scan() {
		line := strings.TrimSpace(br.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 2 {
			return nil, fmt.Errorf("sparse: malformed matrix market entry %q", line)
		}
		i, err := strconv.Atoi(f[0])
		if err != nil {
			return nil, fmt.Errorf("sparse: bad row index %q: %v", f[0], err)
		}
		j, err := strconv.Atoi(f[1])
		if err != nil {
			return nil, fmt.Errorf("sparse: bad column index %q: %v", f[1], err)
		}
		v := 1.0
		if hdr.Field != "pattern" {
			if len(f) < 3 {
				return nil, fmt.Errorf("sparse: entry %q missing value", line)
			}
			v, err = strconv.ParseFloat(f[2], 64)
			if err != nil {
				return nil, fmt.Errorf("sparse: bad value %q: %v", f[2], err)
			}
		}
		i--
		j--
		if i < 0 || i >= hdr.Rows || j < 0 || j >= hdr.Cols {
			return nil, fmt.Errorf("sparse: entry (%d,%d) out of range for %dx%d", i+1, j+1, hdr.Rows, hdr.Cols)
		}
		if hdr.Symmetric && i != j {
			coo.AddSym(i, j, v)
		} else {
			coo.Add(i, j, v)
		}
		seen++
	}
	if err := br.Err(); err != nil {
		return nil, err
	}
	if seen != hdr.DeclNNZ {
		return nil, fmt.Errorf("sparse: matrix market declares %d entries, found %d", hdr.DeclNNZ, seen)
	}
	return coo.ToCSR(), nil
}

func readMMHeader(sc *bufio.Scanner) (*MMHeader, error) {
	if !sc.Scan() {
		return nil, fmt.Errorf("sparse: empty matrix market stream")
	}
	banner := strings.Fields(strings.ToLower(sc.Text()))
	if len(banner) < 5 || banner[0] != "%%matrixmarket" {
		return nil, fmt.Errorf("sparse: missing %%%%MatrixMarket banner")
	}
	hdr := &MMHeader{
		Object:   banner[1],
		Format:   banner[2],
		Field:    banner[3],
		Symmetry: banner[4],
	}
	if hdr.Object != "matrix" {
		return nil, fmt.Errorf("sparse: unsupported object %q", hdr.Object)
	}
	if hdr.Format != "coordinate" {
		return nil, fmt.Errorf("sparse: unsupported format %q (only coordinate)", hdr.Format)
	}
	switch hdr.Field {
	case "real", "integer", "pattern":
	default:
		return nil, fmt.Errorf("sparse: unsupported field %q", hdr.Field)
	}
	switch hdr.Symmetry {
	case "general":
	case "symmetric":
		hdr.Symmetric = true
	default:
		return nil, fmt.Errorf("sparse: unsupported symmetry %q", hdr.Symmetry)
	}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		f := strings.Fields(line)
		if len(f) != 3 {
			return nil, fmt.Errorf("sparse: malformed size line %q", line)
		}
		var err error
		if hdr.Rows, err = strconv.Atoi(f[0]); err != nil {
			return nil, fmt.Errorf("sparse: bad row count: %v", err)
		}
		if hdr.Cols, err = strconv.Atoi(f[1]); err != nil {
			return nil, fmt.Errorf("sparse: bad column count: %v", err)
		}
		if hdr.DeclNNZ, err = strconv.Atoi(f[2]); err != nil {
			return nil, fmt.Errorf("sparse: bad nnz count: %v", err)
		}
		return hdr, nil
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return nil, fmt.Errorf("sparse: matrix market stream missing size line")
}

// WriteMatrixMarket writes m in coordinate real general format.
func WriteMatrixMarket(w io.Writer, m *CSR) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate real general\n%d %d %d\n", m.N, m.N, m.NNZ()); err != nil {
		return err
	}
	for i := 0; i < m.N; i++ {
		cols, vals := m.Row(i)
		for k, j := range cols {
			if _, err := fmt.Fprintf(bw, "%d %d %.17g\n", i+1, j+1, vals[k]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
