package sparse

import (
	"fmt"
	"math"
)

// AssignSPDValues overwrites the values of a structurally symmetric matrix
// in place so that the result is symmetric positive definite by diagonal
// dominance: every off-diagonal entry becomes -1 and each diagonal entry
// becomes (row degree + 1). Rows missing a diagonal entry cause an error.
//
// The lower triangle of such a matrix is a well-conditioned unit-pattern
// triangular factor, which keeps solver round-off tiny and makes
// "solve then compare against the exact solution" tests meaningful.
func AssignSPDValues(m *CSR) error {
	for i := 0; i < m.N; i++ {
		lo, hi := m.RowPtr[i], m.RowPtr[i+1]
		diag := -1
		off := 0
		for k := lo; k < hi; k++ {
			if m.Col[k] == i {
				diag = k
			} else {
				m.Val[k] = -1
				off++
			}
		}
		if diag < 0 {
			return fmt.Errorf("sparse: row %d has no diagonal entry", i)
		}
		m.Val[diag] = float64(off) + 1
	}
	return nil
}

// EnsureDiagonal returns a matrix that has every diagonal entry stored,
// inserting zeros where missing. The input is returned unchanged if the
// diagonal is already complete.
func EnsureDiagonal(m *CSR) *CSR {
	missing := 0
	for i := 0; i < m.N; i++ {
		cols, _ := m.Row(i)
		k := searchInt(cols, i)
		if k == len(cols) || cols[k] != i {
			missing++
		}
	}
	if missing == 0 {
		return m
	}
	out := &CSR{
		N:      m.N,
		RowPtr: make([]int, m.N+1),
		Col:    make([]int, 0, m.NNZ()+missing),
		Val:    make([]float64, 0, m.NNZ()+missing),
	}
	for i := 0; i < m.N; i++ {
		cols, vals := m.Row(i)
		inserted := false
		for k, j := range cols {
			if !inserted && j > i {
				out.Col = append(out.Col, i)
				out.Val = append(out.Val, 0)
				inserted = true
			}
			if j == i {
				inserted = true
			}
			out.Col = append(out.Col, j)
			out.Val = append(out.Val, vals[k])
		}
		if !inserted {
			out.Col = append(out.Col, i)
			out.Val = append(out.Val, 0)
		}
		out.RowPtr[i+1] = len(out.Col)
	}
	return out
}

func searchInt(a []int, x int) int {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := (lo + hi) / 2
		if a[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// RHSForSolution returns b = L * xTrue, so that solving L x = b should
// recover xTrue exactly up to round-off.
func RHSForSolution(l *CSR, xTrue []float64) []float64 {
	b := make([]float64, l.N)
	l.MatVec(b, xTrue)
	return b
}

// Ones returns a length-n vector of ones.
func Ones(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 1
	}
	return v
}

// MaxAbsDiff returns max_i |a[i] - b[i]|.
func MaxAbsDiff(a, b []float64) float64 {
	if len(a) != len(b) {
		return math.Inf(1)
	}
	d := 0.0
	for i := range a {
		e := math.Abs(a[i] - b[i])
		if e > d {
			d = e
		}
	}
	return d
}

// Residual returns max_i |(L x)[i] - b[i]|, the infinity-norm residual of a
// candidate triangular solution.
func Residual(l *CSR, x, b []float64) float64 {
	lx := make([]float64, l.N)
	l.MatVec(lx, x)
	return MaxAbsDiff(lx, b)
}

// ForwardSubstitution solves L x = b sequentially by rows and returns x.
// It is the reference against which all parallel solvers are verified.
// L must be lower triangular with a nonzero diagonal.
func ForwardSubstitution(l *CSR, b []float64) ([]float64, error) {
	if !l.IsLowerTriangular() {
		return nil, fmt.Errorf("sparse: matrix is not lower triangular")
	}
	x := make([]float64, l.N)
	for i := 0; i < l.N; i++ {
		lo, hi := l.RowPtr[i], l.RowPtr[i+1]
		if lo == hi || l.Col[hi-1] != i {
			return nil, fmt.Errorf("sparse: row %d has no diagonal entry", i)
		}
		d := l.Val[hi-1]
		if d == 0 {
			return nil, fmt.Errorf("sparse: zero diagonal at row %d", i)
		}
		s := 0.0
		for k := lo; k < hi-1; k++ {
			s += l.Val[k] * x[l.Col[k]]
		}
		x[i] = (b[i] - s) / d
	}
	return x, nil
}
