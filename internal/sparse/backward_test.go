package sparse

import (
	"math/rand"
	"testing"
)

func TestUpperExtraction(t *testing.T) {
	m := fromDense([][]float64{
		{1, 7, 0},
		{2, 3, 8},
		{0, 4, 5},
	})
	u := m.Upper()
	if !u.IsUpperTriangular() {
		t.Fatal("Upper() result not upper triangular")
	}
	if u.At(0, 1) != 7 || u.At(1, 2) != 8 || u.At(2, 2) != 5 {
		t.Fatal("Upper() dropped entries")
	}
	if u.At(1, 0) != 0 {
		t.Fatal("Upper() kept a lower entry")
	}
}

func TestIsUpperTriangular(t *testing.T) {
	if !fromDense([][]float64{{1, 2}, {0, 3}}).IsUpperTriangular() {
		t.Fatal("upper matrix not recognised")
	}
	if fromDense([][]float64{{1, 0}, {2, 3}}).IsUpperTriangular() {
		t.Fatal("lower matrix reported upper")
	}
}

func TestBackwardSubstitution(t *testing.T) {
	u := fromDense([][]float64{
		{2, 1, 0},
		{0, 4, 3},
		{0, 0, 5},
	})
	xTrue := []float64{1, -2, 3}
	b := make([]float64, 3)
	u.MatVec(b, xTrue)
	x, err := BackwardSubstitution(u, b)
	if err != nil {
		t.Fatal(err)
	}
	if d := MaxAbsDiff(x, xTrue); d > 1e-12 {
		t.Fatalf("error %g", d)
	}
}

func TestBackwardSubstitutionErrors(t *testing.T) {
	lower := fromDense([][]float64{{1, 0}, {2, 3}})
	if _, err := BackwardSubstitution(lower, []float64{1, 1}); err == nil {
		t.Fatal("accepted lower-triangular input")
	}
	noDiag := fromDense([][]float64{{0, 1}, {0, 1}})
	if _, err := BackwardSubstitution(noDiag, []float64{1, 1}); err == nil {
		t.Fatal("accepted missing diagonal")
	}
	zeroDiag := &CSR{N: 1, RowPtr: []int{0, 1}, Col: []int{0}, Val: []float64{0}}
	if _, err := BackwardSubstitution(zeroDiag, []float64{1}); err == nil {
		t.Fatal("accepted zero diagonal")
	}
}

func TestForwardBackwardRoundTripSGS(t *testing.T) {
	// The symmetric Gauss-Seidel application: L y = r, then U z = D y.
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		a := randomSym(rng, 30)
		if err := AssignSPDValues(a); err != nil {
			t.Fatal(err)
		}
		l, u := a.Lower(), a.Upper()
		r := make([]float64, a.N)
		for i := range r {
			r[i] = rng.NormFloat64()
		}
		y, err := ForwardSubstitution(l, r)
		if err != nil {
			t.Fatal(err)
		}
		dy := make([]float64, a.N)
		for i := range dy {
			dy[i] = a.At(i, i) * y[i]
		}
		z, err := BackwardSubstitution(u, dy)
		if err != nil {
			t.Fatal(err)
		}
		// Verify M z = r with M = L D^{-1} U by applying M forward.
		uz := make([]float64, a.N)
		u.MatVec(uz, z)
		for i := range uz {
			uz[i] /= a.At(i, i)
		}
		lr := make([]float64, a.N)
		l.MatVec(lr, uz)
		if d := MaxAbsDiff(lr, r); d > 1e-8 {
			t.Fatalf("trial %d: SGS application error %g", trial, d)
		}
	}
}
