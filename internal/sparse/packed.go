package sparse

import "math"

// Packed is the compact structure-of-arrays layout the solve kernels
// stream: 32-bit row offsets and column indices over the off-diagonal
// entries only, with the diagonal pulled out into its own dense array.
//
// Relative to walking a CSR with 64-bit []int indices, a Packed matrix
// halves the index bytes moving through the innermost triangular-solve
// loop — on matrices whose packs fit in cache the solve is bandwidth-
// bound on exactly that traffic — and the separate diagonal removes the
// end-of-row branch from the kernel. Entries of a row keep their CSR
// order, so a kernel sweeping a Packed matrix accumulates each row's dot
// product in the same order as the CSR kernels and produces bitwise
// identical results.
//
// Values are stored level-contiguously for free: the ordering pipeline
// lays packs out as contiguous row ranges, so the off-diagonal Val array
// is walked front to back across a pack with no striding.
type Packed struct {
	N      int
	RowPtr []int32   // len N+1; off-diagonal entries of row i are RowPtr[i]:RowPtr[i+1]
	Col    []int32   // column index per off-diagonal entry
	Val    []float64 // value per off-diagonal entry, CSR order
	Diag   []float64 // diagonal entry per row
}

// NNZ returns the number of stored entries including the diagonal.
func (p *Packed) NNZ() int { return len(p.Col) + p.N }

// PackLower converts a lower-triangular CSR whose rows each end with the
// diagonal entry (the csrk invariant) into the packed layout. ok is false
// when the matrix is too large for 32-bit indexing or a row is missing
// its trailing diagonal, in which case callers keep the CSR kernels.
func PackLower(l *CSR) (p *Packed, ok bool) {
	if !packable(l) {
		return nil, false
	}
	p = newPacked(l)
	for i := 0; i < l.N; i++ {
		lo, hi := l.RowPtr[i], l.RowPtr[i+1]
		if lo == hi || l.Col[hi-1] != i {
			return nil, false
		}
		p.Diag[i] = l.Val[hi-1]
		for k := lo; k < hi-1; k++ {
			p.Col = append(p.Col, int32(l.Col[k]))
			p.Val = append(p.Val, l.Val[k])
		}
		p.RowPtr[i+1] = int32(len(p.Col))
	}
	return p, true
}

// PackUpper converts an upper-triangular CSR whose rows each start with
// the diagonal entry (the transposed-factor invariant) into the packed
// layout.
func PackUpper(u *CSR) (p *Packed, ok bool) {
	if !packable(u) {
		return nil, false
	}
	p = newPacked(u)
	for i := 0; i < u.N; i++ {
		lo, hi := u.RowPtr[i], u.RowPtr[i+1]
		if lo == hi || u.Col[lo] != i {
			return nil, false
		}
		p.Diag[i] = u.Val[lo]
		for k := lo + 1; k < hi; k++ {
			p.Col = append(p.Col, int32(u.Col[k]))
			p.Val = append(p.Val, u.Val[k])
		}
		p.RowPtr[i+1] = int32(len(p.Col))
	}
	return p, true
}

// packable reports whether every index of m fits 32-bit storage.
func packable(m *CSR) bool {
	return m.N < math.MaxInt32 && len(m.Col) < math.MaxInt32
}

func newPacked(m *CSR) *Packed {
	off := len(m.Col) - m.N // every row contributes exactly one diagonal
	if off < 0 {
		off = 0
	}
	return &Packed{
		N:      m.N,
		RowPtr: make([]int32, m.N+1),
		Col:    make([]int32, 0, off),
		Val:    make([]float64, 0, off),
		Diag:   make([]float64, m.N),
	}
}
