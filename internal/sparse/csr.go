// Package sparse provides the sparse-matrix substrate for the STS-k
// reproduction: COO and CSR storage, triangular views, symmetrisation,
// symmetric permutation, value synthesis for well-conditioned test systems,
// Matrix Market I/O, and dense verification helpers.
//
// All matrices are square. Indices are 0-based throughout (the Matrix
// Market reader converts from the 1-based on-disk convention).
package sparse

import (
	"errors"
	"fmt"
	"sort"
)

// CSR is a square sparse matrix in compressed sparse row form.
//
// Row i occupies the half-open range Col[RowPtr[i]:RowPtr[i+1]] and
// Val[RowPtr[i]:RowPtr[i+1]]. Column indices within a row are sorted
// ascending and unique for any CSR produced by this package.
type CSR struct {
	N      int       // matrix dimension
	RowPtr []int     // length N+1, monotone non-decreasing
	Col    []int     // length NNZ, column index per entry
	Val    []float64 // length NNZ, numeric value per entry
}

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.Col) }

// RowDensity returns the mean number of stored entries per row.
func (m *CSR) RowDensity() float64 {
	if m.N == 0 {
		return 0
	}
	return float64(m.NNZ()) / float64(m.N)
}

// Row returns the column indices and values of row i as sub-slices of the
// matrix storage. The caller must not modify them.
func (m *CSR) Row(i int) (cols []int, vals []float64) {
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	return m.Col[lo:hi], m.Val[lo:hi]
}

// At returns the value at (i, j), or 0 if the entry is not stored.
// Rows must be sorted (true for all CSR built by this package).
func (m *CSR) At(i, j int) float64 {
	cols, vals := m.Row(i)
	k := sort.SearchInts(cols, j)
	if k < len(cols) && cols[k] == j {
		return vals[k]
	}
	return 0
}

// Clone returns a deep copy of m.
func (m *CSR) Clone() *CSR {
	c := &CSR{
		N:      m.N,
		RowPtr: append([]int(nil), m.RowPtr...),
		Col:    append([]int(nil), m.Col...),
		Val:    append([]float64(nil), m.Val...),
	}
	return c
}

// Validate checks structural invariants: RowPtr shape and monotonicity,
// column indices in range, and sorted, duplicate-free rows.
func (m *CSR) Validate() error {
	if m.N < 0 {
		return fmt.Errorf("sparse: negative dimension %d", m.N)
	}
	if len(m.RowPtr) != m.N+1 {
		return fmt.Errorf("sparse: RowPtr length %d, want %d", len(m.RowPtr), m.N+1)
	}
	if m.RowPtr[0] != 0 {
		return fmt.Errorf("sparse: RowPtr[0] = %d, want 0", m.RowPtr[0])
	}
	if m.RowPtr[m.N] != len(m.Col) {
		return fmt.Errorf("sparse: RowPtr[N] = %d, want NNZ %d", m.RowPtr[m.N], len(m.Col))
	}
	if len(m.Col) != len(m.Val) {
		return fmt.Errorf("sparse: len(Col)=%d != len(Val)=%d", len(m.Col), len(m.Val))
	}
	for i := 0; i < m.N; i++ {
		lo, hi := m.RowPtr[i], m.RowPtr[i+1]
		if lo > hi {
			return fmt.Errorf("sparse: RowPtr decreases at row %d", i)
		}
		prev := -1
		for k := lo; k < hi; k++ {
			j := m.Col[k]
			if j < 0 || j >= m.N {
				return fmt.Errorf("sparse: row %d has column %d out of range [0,%d)", i, j, m.N)
			}
			if j <= prev {
				return fmt.Errorf("sparse: row %d not strictly sorted at entry %d (col %d after %d)", i, k, j, prev)
			}
			prev = j
		}
	}
	return nil
}

// IsLowerTriangular reports whether every stored entry satisfies col <= row.
func (m *CSR) IsLowerTriangular() bool {
	for i := 0; i < m.N; i++ {
		cols, _ := m.Row(i)
		if len(cols) > 0 && cols[len(cols)-1] > i {
			return false
		}
	}
	return true
}

// HasFullNonzeroDiagonal reports whether every row stores a nonzero
// diagonal entry. Triangular solution divides by the diagonal, so solvers
// require this property.
func (m *CSR) HasFullNonzeroDiagonal() bool {
	for i := 0; i < m.N; i++ {
		if m.At(i, i) == 0 {
			return false
		}
	}
	return true
}

// IsStructurallySymmetric reports whether the sparsity pattern satisfies
// (i,j) stored iff (j,i) stored.
func (m *CSR) IsStructurallySymmetric() bool {
	t := m.Transpose()
	if len(t.Col) != len(m.Col) {
		return false
	}
	for i := range m.RowPtr {
		if m.RowPtr[i] != t.RowPtr[i] {
			return false
		}
	}
	for k := range m.Col {
		if m.Col[k] != t.Col[k] {
			return false
		}
	}
	return true
}

// Transpose returns the transpose of m using a counting pass; rows of the
// result are sorted because the source rows are scanned in order.
func (m *CSR) Transpose() *CSR {
	t := &CSR{
		N:      m.N,
		RowPtr: make([]int, m.N+1),
		Col:    make([]int, len(m.Col)),
		Val:    make([]float64, len(m.Val)),
	}
	for _, j := range m.Col {
		t.RowPtr[j+1]++
	}
	for i := 0; i < m.N; i++ {
		t.RowPtr[i+1] += t.RowPtr[i]
	}
	next := append([]int(nil), t.RowPtr[:m.N]...)
	for i := 0; i < m.N; i++ {
		lo, hi := m.RowPtr[i], m.RowPtr[i+1]
		for k := lo; k < hi; k++ {
			j := m.Col[k]
			p := next[j]
			next[j]++
			t.Col[p] = i
			t.Val[p] = m.Val[k]
		}
	}
	return t
}

// Bandwidth returns max over stored entries of |i - j|.
func (m *CSR) Bandwidth() int {
	bw := 0
	for i := 0; i < m.N; i++ {
		cols, _ := m.Row(i)
		for _, j := range cols {
			d := i - j
			if d < 0 {
				d = -d
			}
			if d > bw {
				bw = d
			}
		}
	}
	return bw
}

// MatVec computes y = m * x. y and x must have length N and must not alias.
func (m *CSR) MatVec(y, x []float64) {
	for i := 0; i < m.N; i++ {
		lo, hi := m.RowPtr[i], m.RowPtr[i+1]
		s := 0.0
		for k := lo; k < hi; k++ {
			s += m.Val[k] * x[m.Col[k]]
		}
		y[i] = s
	}
}

// Lower returns the lower triangle of m including the diagonal, as a new CSR.
func (m *CSR) Lower() *CSR {
	l := &CSR{N: m.N, RowPtr: make([]int, m.N+1)}
	for i := 0; i < m.N; i++ {
		cols, _ := m.Row(i)
		cnt := sort.SearchInts(cols, i+1)
		l.RowPtr[i+1] = l.RowPtr[i] + cnt
	}
	nnz := l.RowPtr[m.N]
	l.Col = make([]int, 0, nnz)
	l.Val = make([]float64, 0, nnz)
	for i := 0; i < m.N; i++ {
		cols, vals := m.Row(i)
		cnt := sort.SearchInts(cols, i+1)
		l.Col = append(l.Col, cols[:cnt]...)
		l.Val = append(l.Val, vals[:cnt]...)
	}
	return l
}

// Strict returns m with diagonal entries removed (strictly off-diagonal part).
func (m *CSR) Strict() *CSR {
	s := &CSR{N: m.N, RowPtr: make([]int, m.N+1)}
	for i := 0; i < m.N; i++ {
		cols, vals := m.Row(i)
		for k, j := range cols {
			if j != i {
				s.Col = append(s.Col, j)
				s.Val = append(s.Val, vals[k])
			}
		}
		s.RowPtr[i+1] = len(s.Col)
	}
	return s
}

// SymmetrizePattern returns A = L + Lᵀ structurally: the union of the
// pattern of m and its transpose. Values are summed where both are present
// (diagonal entries are not doubled; the diagonal of m is kept as-is).
func SymmetrizePattern(m *CSR) *CSR {
	t := m.Transpose()
	out := &CSR{N: m.N, RowPtr: make([]int, m.N+1)}
	// Merge sorted rows of m and t, skipping t's diagonal (already in m if present).
	total := 0
	for i := 0; i < m.N; i++ {
		ac, _ := m.Row(i)
		bc, _ := t.Row(i)
		p, q := 0, 0
		for p < len(ac) || q < len(bc) {
			switch {
			case q >= len(bc) || (p < len(ac) && ac[p] < bc[q]):
				p++
			case p >= len(ac) || bc[q] < ac[p]:
				q++
			default:
				p++
				q++
			}
			total++
		}
	}
	out.Col = make([]int, 0, total)
	out.Val = make([]float64, 0, total)
	for i := 0; i < m.N; i++ {
		ac, av := m.Row(i)
		bc, bv := t.Row(i)
		p, q := 0, 0
		for p < len(ac) || q < len(bc) {
			switch {
			case q >= len(bc) || (p < len(ac) && ac[p] < bc[q]):
				out.Col = append(out.Col, ac[p])
				out.Val = append(out.Val, av[p])
				p++
			case p >= len(ac) || bc[q] < ac[p]:
				out.Col = append(out.Col, bc[q])
				out.Val = append(out.Val, bv[q])
				q++
			default: // same column: present in both; diagonal lands here too
				v := av[p]
				if ac[p] != i {
					v += bv[q]
				}
				out.Col = append(out.Col, ac[p])
				out.Val = append(out.Val, v)
				p++
				q++
			}
		}
		out.RowPtr[i+1] = len(out.Col)
	}
	return out
}

// PermuteSym applies the symmetric permutation B = P A Pᵀ, where perm maps
// old index to new index: B[perm[i]][perm[j]] = A[i][j]. perm must be a
// permutation of 0..N-1.
func PermuteSym(m *CSR, perm []int) (*CSR, error) {
	if len(perm) != m.N {
		return nil, fmt.Errorf("sparse: permutation length %d, want %d", len(perm), m.N)
	}
	if err := CheckPermutation(perm); err != nil {
		return nil, err
	}
	inv := InvertPermutation(perm)
	out := &CSR{N: m.N, RowPtr: make([]int, m.N+1)}
	for ni := 0; ni < m.N; ni++ {
		oi := inv[ni]
		out.RowPtr[ni+1] = out.RowPtr[ni] + (m.RowPtr[oi+1] - m.RowPtr[oi])
	}
	nnz := out.RowPtr[m.N]
	out.Col = make([]int, nnz)
	out.Val = make([]float64, nnz)
	type ent struct {
		j int
		v float64
	}
	var buf []ent
	for ni := 0; ni < m.N; ni++ {
		oi := inv[ni]
		cols, vals := m.Row(oi)
		buf = buf[:0]
		for k, j := range cols {
			buf = append(buf, ent{perm[j], vals[k]})
		}
		sort.Slice(buf, func(a, b int) bool { return buf[a].j < buf[b].j })
		base := out.RowPtr[ni]
		for k, e := range buf {
			out.Col[base+k] = e.j
			out.Val[base+k] = e.v
		}
	}
	return out, nil
}

// CheckPermutation verifies that perm is a bijection on 0..len(perm)-1.
func CheckPermutation(perm []int) error {
	seen := make([]bool, len(perm))
	for i, p := range perm {
		if p < 0 || p >= len(perm) {
			return fmt.Errorf("sparse: perm[%d] = %d out of range", i, p)
		}
		if seen[p] {
			return fmt.Errorf("sparse: perm value %d repeated", p)
		}
		seen[p] = true
	}
	return nil
}

// InvertPermutation returns inv with inv[perm[i]] = i.
func InvertPermutation(perm []int) []int {
	inv := make([]int, len(perm))
	for i, p := range perm {
		inv[p] = i
	}
	return inv
}

// IdentityPermutation returns the identity permutation of length n.
func IdentityPermutation(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// ComposePermutations returns the permutation equivalent to applying first,
// then second: out[i] = second[first[i]].
func ComposePermutations(first, second []int) ([]int, error) {
	if len(first) != len(second) {
		return nil, errors.New("sparse: permutation length mismatch")
	}
	out := make([]int, len(first))
	for i := range first {
		out[i] = second[first[i]]
	}
	return out, nil
}
