package sparse

// Panel interleave helpers for the blocked multi-vector solve kernels: a
// row-major n×k panel holds row i's k values at dst[i*k : i*k+k], so the
// solve kernels can apply one loaded matrix entry across all k columns
// with unit-stride panel access.
//
// Both directions walk the panel exactly once in memory order (the
// column vectors are read/written sequentially too), so the interleave
// costs one streaming pass rather than k strided ones — at solver sizes
// the panel is megabytes and the difference is material.

// PackPanel interleaves the equal-length column vectors cols into the
// row-major panel dst, which must have len(cols[0])·len(cols) elements.
func PackPanel(dst []float64, cols [][]float64) {
	kw := len(cols)
	if kw == 0 {
		return
	}
	n := len(cols[0])
	for row := 0; row < n; row++ {
		o := row * kw
		for c := 0; c < kw; c++ {
			dst[o+c] = cols[c][row]
		}
	}
}

// UnpackPanel scatters the row-major panel src back into the column
// vectors cols — the inverse of PackPanel.
func UnpackPanel(cols [][]float64, src []float64) {
	kw := len(cols)
	if kw == 0 {
		return
	}
	n := len(cols[0])
	for row := 0; row < n; row++ {
		o := row * kw
		for c := 0; c < kw; c++ {
			cols[c][row] = src[o+c]
		}
	}
}
