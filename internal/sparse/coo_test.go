package sparse

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestCOOToCSRBasic(t *testing.T) {
	coo := NewCOO(3, 8)
	coo.Add(2, 0, 1)
	coo.Add(0, 0, 2)
	coo.Add(1, 2, 3)
	coo.Add(0, 2, 4)
	m := coo.ToCSR()
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	want := [][]float64{
		{2, 0, 4},
		{0, 0, 3},
		{1, 0, 0},
	}
	if !reflect.DeepEqual(toDense(m), want) {
		t.Fatalf("ToCSR = %v, want %v", toDense(m), want)
	}
}

func TestCOODuplicatesSummed(t *testing.T) {
	coo := NewCOO(2, 4)
	coo.Add(0, 1, 1.5)
	coo.Add(0, 1, 2.5)
	coo.Add(1, 1, 1)
	coo.Add(1, 1, -1)
	m := coo.ToCSR()
	if got := m.At(0, 1); got != 4 {
		t.Fatalf("duplicate sum = %v, want 4", got)
	}
	if got := m.At(1, 1); got != 0 {
		t.Fatalf("cancelling duplicates = %v, want 0 (entry may be stored as explicit zero)", got)
	}
	// Entry count: duplicates folded.
	if m.NNZ() != 2 {
		t.Fatalf("NNZ = %d, want 2", m.NNZ())
	}
}

func TestCOOEmpty(t *testing.T) {
	m := NewCOO(5, 0).ToCSR()
	if err := m.Validate(); err != nil {
		t.Fatalf("empty matrix invalid: %v", err)
	}
	if m.NNZ() != 0 {
		t.Fatalf("NNZ = %d, want 0", m.NNZ())
	}
}

func TestCOOAddSym(t *testing.T) {
	coo := NewCOO(3, 4)
	coo.AddSym(0, 2, 7)
	coo.AddSym(1, 1, 3)
	m := coo.ToCSR()
	if m.At(0, 2) != 7 || m.At(2, 0) != 7 {
		t.Fatal("AddSym did not mirror off-diagonal")
	}
	if m.At(1, 1) != 3 {
		t.Fatal("AddSym doubled the diagonal")
	}
}

func TestCOOAddPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add out of range did not panic")
		}
	}()
	NewCOO(2, 1).Add(2, 0, 1)
}

func TestCOORandomizedAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(15)
		dense := make([][]float64, n)
		for i := range dense {
			dense[i] = make([]float64, n)
		}
		coo := NewCOO(n, 0)
		for e := 0; e < rng.Intn(5*n); e++ {
			i, j := rng.Intn(n), rng.Intn(n)
			v := float64(rng.Intn(9) - 4)
			dense[i][j] += v
			coo.Add(i, j, v)
		}
		m := coo.ToCSR()
		if err := m.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if got := m.At(i, j); got != dense[i][j] {
					// Stored explicit zeros are fine; At returns the sum either way.
					t.Fatalf("trial %d: At(%d,%d) = %v, want %v", trial, i, j, got, dense[i][j])
				}
			}
		}
	}
}
