package sparse

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestAssignSPDValues(t *testing.T) {
	m := fromDense([][]float64{
		{9, 9, 0},
		{9, 9, 9},
		{0, 9, 9},
	})
	if err := AssignSPDValues(m); err != nil {
		t.Fatal(err)
	}
	if m.At(0, 0) != 2 || m.At(1, 1) != 3 || m.At(2, 2) != 2 {
		t.Fatalf("diagonal dominance wrong: %v %v %v", m.At(0, 0), m.At(1, 1), m.At(2, 2))
	}
	if m.At(0, 1) != -1 || m.At(2, 1) != -1 {
		t.Fatal("off-diagonal values not -1")
	}
}

func TestAssignSPDValuesMissingDiagonal(t *testing.T) {
	m := fromDense([][]float64{
		{0, 1},
		{1, 1},
	})
	if err := AssignSPDValues(m); err == nil {
		t.Fatal("expected error for missing diagonal")
	} else if !strings.Contains(err.Error(), "diagonal") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

func TestEnsureDiagonal(t *testing.T) {
	m := fromDense([][]float64{
		{0, 5, 0},
		{5, 1, 0},
		{0, 0, 0},
	})
	out := EnsureDiagonal(m)
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		cols, _ := out.Row(i)
		found := false
		for _, j := range cols {
			if j == i {
				found = true
			}
		}
		if !found {
			t.Fatalf("row %d still missing diagonal", i)
		}
	}
	// Idempotent and identity when already complete.
	again := EnsureDiagonal(out)
	if again.NNZ() != out.NNZ() {
		t.Fatal("EnsureDiagonal not idempotent")
	}
}

func TestForwardSubstitutionSmall(t *testing.T) {
	l := fromDense([][]float64{
		{2, 0, 0},
		{1, 4, 0},
		{0, 3, 5},
	})
	xTrue := []float64{1, -2, 3}
	b := RHSForSolution(l, xTrue)
	x, err := ForwardSubstitution(l, b)
	if err != nil {
		t.Fatal(err)
	}
	if d := MaxAbsDiff(x, xTrue); d > 1e-12 {
		t.Fatalf("solution error %g", d)
	}
	if r := Residual(l, x, b); r > 1e-12 {
		t.Fatalf("residual %g", r)
	}
}

func TestForwardSubstitutionErrors(t *testing.T) {
	notLower := fromDense([][]float64{
		{1, 2},
		{0, 1},
	})
	if _, err := ForwardSubstitution(notLower, []float64{1, 1}); err == nil {
		t.Fatal("accepted non-lower matrix")
	}
	noDiag := fromDense([][]float64{
		{1, 0},
		{1, 0},
	})
	if _, err := ForwardSubstitution(noDiag, []float64{1, 1}); err == nil {
		t.Fatal("accepted missing diagonal")
	}
	zeroDiag := &CSR{N: 1, RowPtr: []int{0, 1}, Col: []int{0}, Val: []float64{0}}
	if _, err := ForwardSubstitution(zeroDiag, []float64{1}); err == nil {
		t.Fatal("accepted zero diagonal")
	}
}

func TestForwardSubstitutionRandomSPD(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 40; trial++ {
		a := randomSym(rng, 40)
		if err := AssignSPDValues(a); err != nil {
			t.Fatal(err)
		}
		l := a.Lower()
		xTrue := make([]float64, l.N)
		for i := range xTrue {
			xTrue[i] = rng.NormFloat64()
		}
		b := RHSForSolution(l, xTrue)
		x, err := ForwardSubstitution(l, b)
		if err != nil {
			t.Fatal(err)
		}
		if d := MaxAbsDiff(x, xTrue); d > 1e-9 {
			t.Fatalf("trial %d: error %g too large", trial, d)
		}
	}
}

func TestVectorHelpers(t *testing.T) {
	v := Ones(3)
	if v[0] != 1 || v[2] != 1 {
		t.Fatal("Ones wrong")
	}
	if d := MaxAbsDiff([]float64{1, 2}, []float64{1, 2, 3}); !math.IsInf(d, 1) {
		t.Fatal("length mismatch should be +Inf")
	}
	if d := MaxAbsDiff([]float64{1, 5}, []float64{2, 3}); d != 2 {
		t.Fatalf("MaxAbsDiff = %v, want 2", d)
	}
}
