package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestAblationsRun(t *testing.T) {
	var buf bytes.Buffer
	r := New(1500, &buf)
	r.Repeats = 1
	for _, name := range Ablations() {
		if err := r.RunAblation(name); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	out := buf.String()
	for _, want := range []string{"ablation-super", "ablation-color", "ablation-dar", "ablation-chunk", "ablation-levels", "ablation-numa"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %s section", want)
		}
	}
	if err := r.RunAblation("nope"); err == nil {
		t.Fatal("unknown ablation accepted")
	}
}

func TestAblationsViaRunDispatch(t *testing.T) {
	var buf bytes.Buffer
	r := New(1200, &buf)
	r.Repeats = 1
	if err := r.Run("ablation-levels"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "k=3 vs k=4") {
		t.Fatal("dispatch did not reach the ablation")
	}
}

func TestWallclockRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock timing in -short mode")
	}
	var buf bytes.Buffer
	r := New(1000, &buf)
	if err := r.Run("wallclock"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "wallclock") || !strings.Contains(out, "µs per solve") {
		t.Fatal("wallclock output malformed")
	}
	// All 12 matrices and 4 methods must appear.
	for _, id := range []string{"G1", "D10"} {
		if !strings.Contains(out, id) {
			t.Fatalf("wallclock missing %s row", id)
		}
	}
}
