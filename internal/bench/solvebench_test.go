package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// shrinkBenchDuration makes the wall-clock sampling loops finish after a
// single op so the smoke test exercises every cell cheaply.
func shrinkBenchDuration(t *testing.T) {
	t.Helper()
	old := benchMinDuration
	benchMinDuration = time.Nanosecond
	t.Cleanup(func() { benchMinDuration = old })
}

func TestSolveBenchSmoke(t *testing.T) {
	shrinkBenchDuration(t)
	var buf bytes.Buffer
	r := New(200, &buf)
	report, err := r.SolveBench()
	if err != nil {
		t.Fatal(err)
	}
	// 2 matrices × 4 methods × (3 schedules + 4 panel widths).
	if want := 2 * 4 * 7; len(report.Results) != want {
		t.Fatalf("got %d cells, want %d", len(report.Results), want)
	}
	var sawGraph, sawBlock bool
	for _, res := range report.Results {
		if res.NsPerOp <= 0 || res.SolvesPerSec <= 0 {
			t.Fatalf("%s/%s/%s: non-positive timing %v", res.Matrix, res.Method, res.Schedule, res)
		}
		if res.N <= 0 || res.NNZ <= 0 {
			t.Fatalf("%s/%s/%s: empty matrix", res.Matrix, res.Method, res.Schedule)
		}
		switch res.Schedule {
		case "graph":
			sawGraph = true
			if res.Tasks <= 0 {
				t.Fatalf("graph cell %s/%s missing DAG size", res.Matrix, res.Method)
			}
		case "block":
			sawBlock = true
			if res.Width < 2 || res.NRHS != 32 {
				t.Fatalf("block cell has width %d nrhs %d", res.Width, res.NRHS)
			}
		}
	}
	if !sawGraph || !sawBlock {
		t.Fatalf("missing schedule families: graph=%v block=%v", sawGraph, sawBlock)
	}
	if !strings.Contains(buf.String(), "grid3d") {
		t.Fatal("human-readable table missing matrix rows")
	}
}

func TestWriteSolveBenchJSONRoundTrips(t *testing.T) {
	shrinkBenchDuration(t)
	r := New(150, &bytes.Buffer{})
	var out bytes.Buffer
	if err := r.WriteSolveBenchJSON(&out); err != nil {
		t.Fatal(err)
	}
	var report SolveBenchReport
	if err := json.Unmarshal(out.Bytes(), &report); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if report.Scale != 150 || len(report.Results) == 0 || report.CPUs <= 0 {
		t.Fatalf("bad report header: %+v", report)
	}
}

func TestSolveBenchMatrixClasses(t *testing.T) {
	for _, class := range []string{"grid3d", "trimesh"} {
		mat, err := solveBenchMatrix(class, 300)
		if err != nil {
			t.Fatal(err)
		}
		if mat.N <= 0 || mat.N > 300 {
			t.Fatalf("%s: n=%d out of range", class, mat.N)
		}
	}
	if _, err := solveBenchMatrix("bogus", 300); err == nil {
		t.Fatal("unknown class accepted")
	}
}
