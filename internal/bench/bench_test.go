package bench

import (
	"bytes"
	"strings"
	"testing"

	"stsk/internal/metrics"
	"stsk/internal/order"
)

// testRunner returns a small-scale runner so the full evaluation stays fast.
func testRunner(t testing.TB) *Runner {
	t.Helper()
	var buf bytes.Buffer
	r := New(900, &buf)
	r.Repeats = 1
	return r
}

func TestTable1(t *testing.T) {
	r := testRunner(t)
	rows, err := r.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("table 1 has %d rows, want 12", len(rows))
	}
	for _, row := range rows {
		if row.N <= 0 || row.NNZ <= 0 {
			t.Fatalf("%s: empty matrix", row.ID)
		}
		if row.Dens < row.PaperDens/2.5 || row.Dens > row.PaperDens*1.6 {
			t.Errorf("%s: density %.2f too far from paper class %.2f", row.ID, row.Dens, row.PaperDens)
		}
	}
}

func TestFig6SpyPlots(t *testing.T) {
	var buf bytes.Buffer
	r := New(900, &buf)
	if err := r.Fig6(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "CSR-COL") || !strings.Contains(out, "STS-3") {
		t.Fatal("figure 6 output missing method sections")
	}
	if !strings.Contains(out, "*") {
		t.Fatal("spy plot has no nonzeros")
	}
}

func TestFig7ColoringDominatesLevelSets(t *testing.T) {
	r := testRunner(t)
	pts, err := r.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 12*4 {
		t.Fatalf("fig7 has %d points, want 48", len(pts))
	}
	// Per matrix: colouring must give fewer packs and more components/pack.
	byKey := make(map[string]Fig7Point)
	for _, p := range pts {
		byKey[p.MatID+"|"+p.Method.String()] = p
	}
	for _, id := range r.sortedIDs() {
		ls := byKey[id+"|CSR-LS"]
		col := byKey[id+"|CSR-COL"]
		if col.NumPacks >= ls.NumPacks {
			t.Errorf("%s: CSR-COL packs %d >= CSR-LS packs %d", id, col.NumPacks, ls.NumPacks)
		}
		if col.ComponentsPerPack <= ls.ComponentsPerPack {
			t.Errorf("%s: CSR-COL pack size not larger", id)
		}
		// §3.2: level sets on G2 give fewer packs than on G1. At the tiny
		// test scale the coarsening factor is small, so allow slack; the
		// strict claim is asserted at full scale by cmd/stsbench runs.
		ls3 := byKey[id+"|CSR-3-LS"]
		if float64(ls3.NumPacks) > 1.1*float64(ls.NumPacks) {
			t.Errorf("%s: CSR-3-LS packs %d > 1.1x CSR-LS packs %d", id, ls3.NumPacks, ls.NumPacks)
		}
	}
}

func TestFig8WorkConcentration(t *testing.T) {
	r := testRunner(t)
	rows, err := r.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	// Paper: colouring-based schemes hold >90% of work in the 5 largest
	// packs; level-set schemes hold only a few percent (at million-row
	// scale). At the reduced test scale the >90% bound holds for the
	// low-degree mesh/road classes; the dense FEM/KKT/RGG classes need
	// ~10-60 colours whose sizes only skew at full scale, so for those we
	// assert the ordering (colouring above level sets) instead.
	lowDegree := map[string]bool{
		"D2": true, "D3": true, "D4": true, "D5": true,
		"D6": true, "D7": true, "D8": true, "D9": true, "D10": true,
	}
	for _, row := range rows {
		if lowDegree[row.MatID] {
			if row.Share[order.STS3] < 0.9 {
				t.Errorf("%s: STS-3 top-5 share %.2f < 0.9", row.MatID, row.Share[order.STS3])
			}
			if row.Share[order.CSRCOL] < 0.9 {
				t.Errorf("%s: CSR-COL top-5 share %.2f < 0.9", row.MatID, row.Share[order.CSRCOL])
			}
		}
		if row.Share[order.CSRLS] >= row.Share[order.STS3] {
			t.Errorf("%s: CSR-LS share %.2f not below STS-3 %.2f", row.MatID, row.Share[order.CSRLS], row.Share[order.STS3])
		}
	}
}

func TestFig9HeadlineShape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep in -short mode")
	}
	r := testRunner(t)
	rows, err := r.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	for _, mc := range r.Machines {
		sts := geomeanOf(rows, mc.Label, order.STS3)
		col := geomeanOf(rows, mc.Label, order.CSRCOL)
		ls3 := geomeanOf(rows, mc.Label, order.CSR3LS)
		ls := geomeanOf(rows, mc.Label, order.CSRLS)
		// Headline ordering (Figure 9): STS-3 wins; both colouring and the
		// k-level LS variant beat the CSR-LS reference.
		if !(sts > col && sts > ls3 && sts > ls) {
			t.Errorf("%s: STS-3 %.2f not the best (col %.2f, 3-ls %.2f, ls %.2f)", mc.Label, sts, col, ls3, ls)
		}
		if col <= ls {
			t.Errorf("%s: CSR-COL %.2f not above CSR-LS %.2f", mc.Label, col, ls)
		}
		if sts < 1.5 {
			t.Errorf("%s: STS-3 speedup %.2f implausibly low", mc.Label, sts)
		}
	}
}

func TestFig10Fig11KLevelGains(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep in -short mode")
	}
	r := testRunner(t)
	colRows, err := r.RelativeSpeedup(order.CSRCOL, order.STS3, "fig10", "Relative Speedup (Color)")
	if err != nil {
		t.Fatal(err)
	}
	lsRows, err := r.RelativeSpeedup(order.CSRLS, order.CSR3LS, "fig11", "Relative Speedup (LS)")
	if err != nil {
		t.Fatal(err)
	}
	gm := func(rows []RelRow, label string) float64 {
		var vals []float64
		for _, row := range rows {
			if row.Machine == label {
				vals = append(vals, row.Ratio)
			}
		}
		return metrics.GeoMean(vals)
	}
	for _, mc := range r.Machines {
		if g := gm(colRows, mc.Label); g <= 1.0 {
			t.Errorf("%s: k-level gain with colouring %.2f <= 1 (paper: ~2.2)", mc.Label, g)
		}
		if g := gm(lsRows, mc.Label); g <= 1.0 {
			t.Errorf("%s: k-level gain with level sets %.2f <= 1 (paper: ~1.4-1.5)", mc.Label, g)
		}
	}
}

func TestFig12Fig13Sweeps(t *testing.T) {
	if testing.Short() {
		t.Skip("core sweep in -short mode")
	}
	var buf bytes.Buffer
	r := New(700, &buf)
	r.Repeats = 1
	// Restrict the sweep to keep the test quick.
	for i := range r.Machines {
		r.Machines[i].CoreSweep = []int{1, 4, r.Machines[i].EvalCores}
	}
	col, err := r.CoreSweep(order.CSRCOL, order.STS3, "fig12", "color")
	if err != nil {
		t.Fatal(err)
	}
	ls, err := r.CoreSweep(order.CSRLS, order.CSR3LS, "fig13", "ls")
	if err != nil {
		t.Fatal(err)
	}
	if len(col) != 6 || len(ls) != 6 {
		t.Fatalf("sweep lengths %d/%d, want 6/6", len(col), len(ls))
	}
	// At the evaluation core counts the k-level gain must be >1.
	for _, pt := range col {
		if pt.Cores >= 12 && pt.Ratio <= 1 {
			t.Errorf("fig12 %s@%d: ratio %.2f <= 1", pt.Machine, pt.Cores, pt.Ratio)
		}
	}
}

func TestFig14LocalityGain(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep in -short mode")
	}
	r := testRunner(t)
	rows, err := r.Fig14()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 24 {
		t.Fatalf("fig14 rows = %d, want 24", len(rows))
	}
	for _, mc := range r.Machines {
		var vals []float64
		for _, row := range rows {
			if row.Machine == mc.Label {
				vals = append(vals, row.Ratio)
			}
		}
		gm := 1.0
		for _, v := range vals {
			gm *= v
		}
		if gm <= 1 { // product > 1 iff geomean > 1
			t.Errorf("%s: largest-pack per-unknown gain <= 1 (paper: 1.75 Intel / 2.12 AMD)", mc.Label)
		}
	}
}

func TestRunDispatch(t *testing.T) {
	var buf bytes.Buffer
	r := New(700, &buf)
	r.Repeats = 1
	if err := r.Run("table1"); err != nil {
		t.Fatal(err)
	}
	if err := r.Run("nope"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if buf.Len() == 0 {
		t.Fatal("no output written")
	}
}

func TestRowsPerSuperAdaptive(t *testing.T) {
	if got := rowsPerSuper(1_000_000, 16, 80); got != 80 {
		t.Fatalf("large matrix rps = %d, want paper value 80", got)
	}
	if got := rowsPerSuper(2000, 16, 80); got < 8 || got > 80 {
		t.Fatalf("small matrix rps = %d out of range", got)
	}
	if got := rowsPerSuper(10, 16, 320); got != 8 {
		t.Fatalf("tiny matrix rps = %d, want floor 8", got)
	}
}
