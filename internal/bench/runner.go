// Package bench is the experiment harness of the reproduction: one driver
// per table/figure of the paper's evaluation (§4), shared by the stsbench
// command and the repository-root benchmarks. Timing comes from the
// deterministic NUMA cache simulator (internal/cachesim); see DESIGN.md §2
// for why wall-clock goroutine timing cannot reproduce pinned-OpenMP
// results and how the substitution preserves the paper's mechanisms.
package bench

import (
	"fmt"
	"io"

	"stsk/internal/cachesim"
	"stsk/internal/gen"
	"stsk/internal/machine"
	"stsk/internal/order"
	"stsk/internal/sparse"
)

// MachineConfig couples a topology with the paper's evaluation parameters
// for that machine.
type MachineConfig struct {
	Label             string
	Topo              machine.Topology
	EvalCores         int   // core count of Figures 9-11 and 14
	CoreSweep         []int // core counts of Figures 12-13
	PaperRowsPerSuper int   // §4.1: 80 rows (Intel), 320 rows (AMD)
}

// DefaultMachines returns the paper's two evaluation machines.
func DefaultMachines() []MachineConfig {
	return []MachineConfig{
		{
			Label:             "Intel",
			Topo:              machine.IntelWestmereEX32(),
			EvalCores:         16,
			CoreSweep:         []int{1, 2, 4, 8, 16, 24, 32},
			PaperRowsPerSuper: 80,
		},
		{
			Label:             "AMD",
			Topo:              machine.AMDMagnyCours24(),
			EvalCores:         12,
			CoreSweep:         []int{1, 2, 4, 6, 12, 18, 24},
			PaperRowsPerSuper: 320,
		},
	}
}

// Runner builds matrices, plans and simulations on demand and memoises
// them across experiments.
type Runner struct {
	Scale    int // target rows per suite matrix
	Repeats  int // cache-simulator warm repeats
	Out      io.Writer
	Machines []MachineConfig

	specs []gen.Spec
	mats  map[string]*sparse.CSR
	plans map[string]*order.Plan
	sims  map[string]*cachesim.Result
}

// New returns a Runner at the given suite scale writing reports to out.
// The machine topologies are cache-scaled to the suite scale (see
// machine.ScaleCaches): the paper's matrices dwarf the real caches, so the
// reproduction shrinks the caches with the matrices to keep the
// footprint-to-cache ratios — the driver of every locality effect — in
// the paper's regime.
func New(scale int, out io.Writer) *Runner {
	machines := DefaultMachines()
	for i := range machines {
		machines[i].Topo = machine.ScaleCaches(machines[i].Topo, 16, l3Divisor(machines[i].Topo, scale))
	}
	return &Runner{
		Scale:    scale,
		Repeats:  2,
		Out:      out,
		Machines: machines,
		specs:    gen.PaperSuite(scale),
		mats:     make(map[string]*sparse.CSR),
		plans:    make(map[string]*order.Plan),
		sims:     make(map[string]*cachesim.Result),
	}
}

// l3Divisor picks a power-of-two divisor so the scaled L3 holds roughly
// 4 bytes per matrix row — mirroring the paper's machines, whose L3 held
// only a small fraction of the solution vector, let alone the matrix.
func l3Divisor(t machine.Topology, scale int) int {
	target := scale * 2
	if target < 1024 {
		target = 1024
	}
	div := 1
	for t.L3.SizeBytes/(div*2) >= target && div < 4096 {
		div *= 2
	}
	return div
}

// Specs returns the suite specifications.
func (r *Runner) Specs() []gen.Spec { return r.specs }

// Matrix returns (building and memoising) the suite matrix with the id.
func (r *Runner) Matrix(id string) (*sparse.CSR, error) {
	if m, ok := r.mats[id]; ok {
		return m, nil
	}
	spec := gen.BySuiteID(r.specs, id)
	if spec == nil {
		return nil, fmt.Errorf("bench: unknown suite matrix %q", id)
	}
	m := spec.Build(r.Scale)
	r.mats[id] = m
	return m, nil
}

// rowsPerSuper adapts the paper's per-machine super-row size to the scaled
// suite: a super-row should stay near the paper's value but leave at least
// ~16 super-rows per core so packs can load-balance.
func rowsPerSuper(n, cores, paperVal int) int {
	v := n / (cores * 16)
	if v > paperVal {
		v = paperVal
	}
	if v < 8 {
		v = 8
	}
	return v
}

// Plan returns the memoised ordering plan for (matrix, method, machine).
func (r *Runner) Plan(id string, m order.Method, mc MachineConfig) (*order.Plan, error) {
	rps := 0
	if m.UsesSuperRows() {
		mat, err := r.Matrix(id)
		if err != nil {
			return nil, err
		}
		rps = rowsPerSuper(mat.N, mc.EvalCores, mc.PaperRowsPerSuper)
	}
	key := fmt.Sprintf("%s|%v|%d", id, m, rps)
	if p, ok := r.plans[key]; ok {
		return p, nil
	}
	mat, err := r.Matrix(id)
	if err != nil {
		return nil, err
	}
	p, err := order.Build(mat, order.Options{Method: m, RowsPerSuper: rps})
	if err != nil {
		return nil, fmt.Errorf("bench: plan %s/%v: %w", id, m, err)
	}
	r.plans[key] = p
	return p, nil
}

// Sim returns the memoised simulation of (matrix, method, machine, cores).
func (r *Runner) Sim(id string, m order.Method, mc MachineConfig, cores int) (*cachesim.Result, error) {
	key := fmt.Sprintf("%s|%v|%s|%d", id, m, mc.Label, cores)
	if s, ok := r.sims[key]; ok {
		return s, nil
	}
	p, err := r.Plan(id, m, mc)
	if err != nil {
		return nil, err
	}
	chunk := 1
	if !m.UsesSuperRows() {
		chunk = 32 // the paper's schedule(dynamic,32) for row-level schemes
	}
	res, err := cachesim.Simulate(p.S, mc.Topo, cachesim.Options{
		Cores:   cores,
		Chunk:   chunk,
		Repeats: r.Repeats,
	})
	if err != nil {
		return nil, fmt.Errorf("bench: sim %s/%v on %s: %w", id, m, mc.Label, err)
	}
	r.sims[key] = res
	return res, nil
}

// Experiments lists the runnable experiment names in paper order.
func Experiments() []string {
	return []string{
		"table1", "fig6", "fig7", "fig8", "fig9",
		"fig10", "fig11", "fig12", "fig13", "fig14",
	}
}

// Run executes one experiment by name ("all" runs the full evaluation).
func (r *Runner) Run(name string) error {
	switch name {
	case "all":
		for _, e := range Experiments() {
			if err := r.Run(e); err != nil {
				return err
			}
			fmt.Fprintln(r.Out)
		}
		return nil
	case "table1":
		_, err := r.Table1()
		return err
	case "fig6":
		return r.Fig6()
	case "fig7":
		_, err := r.Fig7()
		return err
	case "fig8":
		_, err := r.Fig8()
		return err
	case "fig9":
		_, err := r.Fig9()
		return err
	case "fig10":
		_, err := r.RelativeSpeedup(order.CSRCOL, order.STS3, "fig10", "Relative Speedup (Color)")
		return err
	case "fig11":
		_, err := r.RelativeSpeedup(order.CSRLS, order.CSR3LS, "fig11", "Relative Speedup (LS)")
		return err
	case "fig12":
		_, err := r.CoreSweep(order.CSRCOL, order.STS3, "fig12", "Relative Speedup - Color")
		return err
	case "fig13":
		_, err := r.CoreSweep(order.CSRLS, order.CSR3LS, "fig13", "Relative Speedup - LS")
		return err
	case "fig14":
		_, err := r.Fig14()
		return err
	case "wallclock":
		return r.Wallclock(10)
	case "ablations":
		for _, ab := range Ablations() {
			if err := r.RunAblation(ab); err != nil {
				return err
			}
			fmt.Fprintln(r.Out)
		}
		return nil
	}
	for _, ab := range Ablations() {
		if name == ab {
			return r.RunAblation(name)
		}
	}
	return fmt.Errorf("bench: unknown experiment %q (have %v and %v)", name, Experiments(), Ablations())
}

// sortedIDs returns the suite ids in presentation order.
func (r *Runner) sortedIDs() []string {
	ids := make([]string, len(r.specs))
	for i, s := range r.specs {
		ids[i] = s.ID
	}
	return ids
}

// methodLabels formats the four schemes in the paper's column order.
var methodOrder = []order.Method{order.CSRLS, order.CSR3LS, order.CSRCOL, order.STS3}
