package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"stsk/internal/csrk"
	"stsk/internal/gen"
	"stsk/internal/order"
	"stsk/internal/solve"
	"stsk/internal/sparse"
)

// SolveBenchResult is one measured (matrix, method, schedule) cell of the
// wall-clock solve benchmark — the machine-readable perf trajectory
// recorded as BENCH_stsk.json across PRs.
type SolveBenchResult struct {
	Matrix       string  `json:"matrix"`
	N            int     `json:"n"`
	NNZ          int     `json:"nnz"`
	Method       string  `json:"method"`
	Schedule     string  `json:"schedule"`
	Workers      int     `json:"workers"`
	Width        int     `json:"width,omitempty"` // blocksolve cells: RHS panel width (1 = scalar batched)
	NRHS         int     `json:"nrhs,omitempty"`  // blocksolve cells: batch size per op
	NsPerOp      float64 `json:"ns_per_op"`
	SolvesPerSec float64 `json:"solves_per_sec"`
	AllocsPerOp  float64 `json:"allocs_per_op"`
	Tasks        int     `json:"tasks,omitempty"`       // graph schedule: DAG size
	Edges        int     `json:"edges,omitempty"`       // graph schedule: sparsified deps
	Parallelism  float64 `json:"parallelism,omitempty"` // graph schedule: tasks / critical path

	// Serve cells (schedule "serve-perreq" / "serve-coalesced"): the
	// concurrent client count and the coalescer's achieved mean panel
	// width under that load.
	Clients        int     `json:"clients,omitempty"`
	MeanPanelWidth float64 `json:"mean_panel_width,omitempty"`

	// Refactor cells: the "refactor-swap" cell's speedup over the
	// "refactor-build" cell — numeric refactorization vs full rebuild.
	Speedup float64 `json:"speedup,omitempty"`
}

// SolveBenchReport is the BENCH_stsk.json document.
type SolveBenchReport struct {
	GOOS    string             `json:"goos"`
	GOARCH  string             `json:"goarch"`
	CPUs    int                `json:"cpus"`
	Scale   int                `json:"scale"`
	Results []SolveBenchResult `json:"results"`
}

// benchMinDuration is how long each wall-clock measurement loop samples
// before reporting a mean; the smoke test shrinks it.
var benchMinDuration = 150 * time.Millisecond

// solveBenchMatrix builds one wall-clock benchmark matrix near n rows.
func solveBenchMatrix(class string, n int) (*sparse.CSR, error) {
	switch class {
	case "grid3d":
		s := 2
		for (s+1)*(s+1)*(s+1) <= n {
			s++
		}
		return gen.Grid3D(s, s, s), nil
	case "trimesh":
		s := 2
		for (s+1)*(s+1) <= n {
			s++
		}
		return gen.TriMesh(s, s, 7), nil
	}
	return nil, fmt.Errorf("bench: unknown solve-bench matrix class %q", class)
}

// SolveBench measures wall-clock forward solves for every method on the
// standard benchmark matrices under three schedules — sequential (one
// worker), the paper's barrier pairing, and the dependency-driven graph
// schedule — plus the multi-RHS blocksolve cells: a 32-RHS batch driven
// through the scalar batched path (width 1) and the blocked panel
// kernels at widths 2, 4 and 8, reported as per-RHS throughput and
// steady-state allocations. A human-readable table goes to r.Out; the
// returned report is what stsbench serialises to BENCH_stsk.json.
func (r *Runner) SolveBench() (*SolveBenchReport, error) {
	workers := runtime.GOMAXPROCS(0)
	if workers < 2 {
		workers = 2
	}
	report := &SolveBenchReport{
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
		CPUs:   runtime.NumCPU(),
		Scale:  r.Scale,
	}
	fmt.Fprintf(r.Out, "Solve benchmark (wall-clock, %d workers)\n", workers)
	fmt.Fprintf(r.Out, "%-8s %-9s %-10s %12s %14s %10s\n", "matrix", "method", "schedule", "ns/op", "solves/s", "allocs/op")
	for _, class := range []string{"grid3d", "trimesh"} {
		mat, err := solveBenchMatrix(class, r.Scale)
		if err != nil {
			return nil, err
		}
		for _, m := range methodOrder {
			p, err := order.Build(mat, order.Options{Method: m})
			if err != nil {
				return nil, fmt.Errorf("bench: solvebench plan %s/%v: %w", class, m, err)
			}
			dag := order.BuildTaskDAG(p.S, order.TaskDAGOptions{})
			rhs := sparse.RHSForSolution(p.S.L, make([]float64, p.S.L.N))
			for _, sc := range []struct {
				name string
				opts solve.Options
			}{
				{"sequential", solve.Options{Workers: 1}},
				{"barrier", solve.DefaultsFor(m.UsesSuperRows(), workers)},
				{"graph", solve.Options{Workers: workers, Schedule: solve.Graph, Graph: dag}},
			} {
				res, err := measureSolve(p.S, rhs, sc.opts)
				if err != nil {
					return nil, err
				}
				res.Matrix, res.N, res.NNZ = class, mat.N, mat.NNZ()
				res.Method, res.Schedule = m.String(), sc.name
				if sc.name == "graph" {
					res.Tasks = dag.NumTasks()
					res.Edges = dag.NumEdges()
					res.Parallelism = dag.Parallelism()
				}
				report.Results = append(report.Results, res)
				fmt.Fprintf(r.Out, "%-8s %-9s %-10s %12.0f %14.0f %10.2f\n",
					class, m, sc.name, res.NsPerOp, res.SolvesPerSec, res.AllocsPerOp)
			}
			for _, width := range []int{1, 2, 4, 8} {
				res, err := measureBlockSolve(p.S, workers, width)
				if err != nil {
					return nil, err
				}
				res.Matrix, res.N, res.NNZ = class, mat.N, mat.NNZ()
				res.Method = m.String()
				report.Results = append(report.Results, res)
				label := fmt.Sprintf("%s-w%d", res.Schedule, width)
				fmt.Fprintf(r.Out, "%-8s %-9s %-10s %12.0f %14.0f %10.2f\n",
					class, m, label, res.NsPerOp, res.SolvesPerSec, res.AllocsPerOp)
			}
		}
	}
	return report, nil
}

// measureBlockSolve times a 32-RHS batch through the block path at the
// given panel width on a persistent engine (width 1 measures the scalar
// batched path as the baseline the panels amortise against). Reported
// ns/op and solves/s are per right-hand side.
func measureBlockSolve(st *csrk.Structure, workers, width int) (SolveBenchResult, error) {
	const nrhs = 32
	e := solve.NewEngine(st, solve.Options{Workers: workers, BlockWidth: width})
	defer e.Close()
	n := st.L.N
	B := make([][]float64, nrhs)
	X := make([][]float64, nrhs)
	for i := range B {
		x := make([]float64, n)
		for j := range x {
			x[j] = float64((j+3*i)%11) - 5
		}
		B[i] = sparse.RHSForSolution(st.L, x)
		X[i] = make([]float64, n)
	}
	run := func() error {
		if width == 1 {
			return e.SolveBatchInto(X, B)
		}
		return e.SolveBlockInto(X, B, width)
	}
	for i := 0; i < 3; i++ { // warm pools and panel scratch
		if err := run(); err != nil {
			return SolveBenchResult{}, err
		}
	}
	const maxOps = 5000
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	ops := 0
	for ops == 0 || (time.Since(start) < benchMinDuration && ops < maxOps) {
		if err := run(); err != nil {
			return SolveBenchResult{}, err
		}
		ops++
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	// Everything per right-hand side (including allocations), so the
	// blocksolve cells compare directly against the scalar schedule rows.
	perRHS := float64(elapsed.Nanoseconds()) / float64(ops*nrhs)
	sched := "block"
	if width == 1 {
		sched = "batched"
	}
	return SolveBenchResult{
		Schedule:     sched,
		Workers:      e.Workers(),
		Width:        width,
		NRHS:         nrhs,
		NsPerOp:      perRHS,
		SolvesPerSec: 1e9 / perRHS,
		AllocsPerOp:  float64(after.Mallocs-before.Mallocs) / float64(ops*nrhs),
	}, nil
}

// measureSolve times repeated cooperative solves on a persistent engine
// until enough samples accumulate, and reads steady-state allocations
// from the runtime's malloc counter (warm-up solves are excluded, so a
// healthy engine reports ~0).
func measureSolve(st *csrk.Structure, rhs []float64, opts solve.Options) (SolveBenchResult, error) {
	e := solve.NewEngine(st, opts)
	defer e.Close()
	x := make([]float64, st.L.N)
	for i := 0; i < 3; i++ { // warm pools and per-worker scratch
		if err := e.SolveInto(x, rhs); err != nil {
			return SolveBenchResult{}, err
		}
	}
	const maxOps = 50000
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	ops := 0
	for ops == 0 || (time.Since(start) < benchMinDuration && ops < maxOps) {
		if err := e.SolveInto(x, rhs); err != nil {
			return SolveBenchResult{}, err
		}
		ops++
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	ns := float64(elapsed.Nanoseconds()) / float64(ops)
	return SolveBenchResult{
		Workers:      e.Workers(),
		NsPerOp:      ns,
		SolvesPerSec: 1e9 / ns,
		AllocsPerOp:  float64(after.Mallocs-before.Mallocs) / float64(ops),
	}, nil
}

// WriteSolveBenchJSON runs SolveBench and serialises the report.
func (r *Runner) WriteSolveBenchJSON(w io.Writer) error {
	report, err := r.SolveBench()
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}
