package bench

import (
	"fmt"

	"stsk/internal/gen"
	"stsk/internal/order"
)

// Fig6 renders the paper's Figure 6 as ASCII spy plots: a small
// fluid-dynamics-style mesh matrix reordered by plain colouring (many
// colours, disordered off-diagonal blocks) versus STS-3 (fewer colours,
// banded sub-structure inside each pack). Pack boundaries are drawn along
// the diagonal.
func (r *Runner) Fig6() error {
	a := gen.TriMesh(5, 5, 4) // 25 rows, the scale of the paper's example
	col, err := order.Build(a, order.Options{Method: order.CSRCOL, SkipBaseRCM: false})
	if err != nil {
		return err
	}
	sts, err := order.Build(a, order.Options{Method: order.STS3, RowsPerSuper: 2})
	if err != nil {
		return err
	}
	fmt.Fprintf(r.Out, "Figure 6: L under colouring (%d packs) vs STS-3 (%d packs)\n",
		col.NumPacks, sts.NumPacks)
	fmt.Fprintln(r.Out, "\nCSR-COL:")
	spyPlot(r, col)
	fmt.Fprintln(r.Out, "\nSTS-3:")
	spyPlot(r, sts)
	return nil
}

// spyPlot prints the lower triangle with '*' for nonzeros, '.' for zeros,
// and '|' column separators at pack boundaries.
func spyPlot(r *Runner, p *order.Plan) {
	l := p.S.L
	boundary := make([]bool, l.N+1)
	for pk := 0; pk < p.S.NumPacks(); pk++ {
		lo, _ := p.S.PackRows(pk)
		boundary[lo] = true
	}
	for i := 0; i < l.N; i++ {
		if boundary[i] {
			for j := 0; j <= l.N; j++ {
				fmt.Fprint(r.Out, "--")
			}
			fmt.Fprintln(r.Out)
		}
		cols, _ := l.Row(i)
		next := 0
		for j := 0; j < l.N; j++ {
			if boundary[j] {
				fmt.Fprint(r.Out, "|")
			} else {
				fmt.Fprint(r.Out, " ")
			}
			if next < len(cols) && cols[next] == j {
				fmt.Fprint(r.Out, "*")
				next++
			} else if j <= i {
				fmt.Fprint(r.Out, ".")
			} else {
				fmt.Fprint(r.Out, " ")
			}
		}
		fmt.Fprintln(r.Out)
	}
}
