package bench

import (
	"fmt"

	"stsk/internal/metrics"
	"stsk/internal/order"
)

// Table1Row mirrors one row of the paper's Table 1, with both the paper's
// original matrix and the scaled synthetic stand-in.
type Table1Row struct {
	ID, Name, Class string
	PaperN          int
	PaperNNZ        int64
	PaperDens       float64
	N, NNZ          int
	Dens            float64
}

// Table1 prints and returns the suite statistics (experiment E-T1).
func (r *Runner) Table1() ([]Table1Row, error) {
	fmt.Fprintf(r.Out, "Table 1: test suite (scale %d)\n", r.Scale)
	fmt.Fprintf(r.Out, "%-4s %-18s %-9s %12s %14s %8s | %10s %12s %8s\n",
		"ID", "UF matrix", "class", "paper n", "paper nnz", "nnz/n", "n", "nnz", "nnz/n")
	rows := make([]Table1Row, 0, len(r.specs))
	for _, spec := range r.specs {
		m, err := r.Matrix(spec.ID)
		if err != nil {
			return nil, err
		}
		row := Table1Row{
			ID: spec.ID, Name: spec.Name, Class: spec.Class,
			PaperN: spec.PaperN, PaperNNZ: spec.PaperNNZ, PaperDens: spec.PaperDens,
			N: m.N, NNZ: m.NNZ(), Dens: m.RowDensity(),
		}
		rows = append(rows, row)
		fmt.Fprintf(r.Out, "%-4s %-18s %-9s %12d %14d %8.2f | %10d %12d %8.2f\n",
			row.ID, row.Name, row.Class, row.PaperN, row.PaperNNZ, row.PaperDens,
			row.N, row.NNZ, row.Dens)
	}
	return rows, nil
}

// Fig7Point is one (method, matrix) point of Figure 7.
type Fig7Point struct {
	MatID             string
	Method            order.Method
	NumPacks          int
	ComponentsPerPack float64
}

// Fig7 prints and returns the degree-of-parallelism scatter (E-F7): the
// number of packs versus the mean solution components per pack for every
// method and matrix, plus per-method centroids (geometric means).
func (r *Runner) Fig7() ([]Fig7Point, error) {
	mc := r.Machines[0]
	fmt.Fprintln(r.Out, "Figure 7: degree of parallelism (packs vs mean components/pack)")
	fmt.Fprintf(r.Out, "%-4s %-9s %10s %18s\n", "mat", "method", "packs", "components/pack")
	var pts []Fig7Point
	for _, id := range r.sortedIDs() {
		for _, m := range methodOrder {
			p, err := r.Plan(id, m, mc)
			if err != nil {
				return nil, err
			}
			st := metrics.Analyze(p.S)
			pts = append(pts, Fig7Point{MatID: id, Method: m, NumPacks: st.NumPacks, ComponentsPerPack: st.MeanRowsPerPack})
			fmt.Fprintf(r.Out, "%-4s %-9v %10d %18.1f\n", id, m, st.NumPacks, st.MeanRowsPerPack)
		}
	}
	fmt.Fprintln(r.Out, "centroids (geometric means):")
	for _, m := range methodOrder {
		var packs, comps []float64
		for _, pt := range pts {
			if pt.Method == m {
				packs = append(packs, float64(pt.NumPacks))
				comps = append(comps, pt.ComponentsPerPack)
			}
		}
		fmt.Fprintf(r.Out, "  %-9v packs=%8.1f  components/pack=%12.1f\n",
			m, metrics.GeoMean(packs), metrics.GeoMean(comps))
	}
	return pts, nil
}

// Fig8Row is the top-5-pack work share of one matrix for all methods.
type Fig8Row struct {
	MatID string
	Share map[order.Method]float64 // fraction of nnz in the 5 largest packs
}

// Fig8 prints and returns the parallel-work concentration measure (E-F8).
func (r *Runner) Fig8() ([]Fig8Row, error) {
	mc := r.Machines[0]
	fmt.Fprintln(r.Out, "Figure 8: % of total work in the 5 largest packs")
	fmt.Fprintf(r.Out, "%-4s", "mat")
	for _, m := range methodOrder {
		fmt.Fprintf(r.Out, " %10v", m)
	}
	fmt.Fprintln(r.Out)
	var rows []Fig8Row
	for _, id := range r.sortedIDs() {
		row := Fig8Row{MatID: id, Share: make(map[order.Method]float64)}
		fmt.Fprintf(r.Out, "%-4s", id)
		for _, m := range methodOrder {
			p, err := r.Plan(id, m, mc)
			if err != nil {
				return nil, err
			}
			st := metrics.Analyze(p.S)
			row.Share[m] = st.WorkShareTop5
			fmt.Fprintf(r.Out, " %9.1f%%", st.WorkShareTop5*100)
		}
		fmt.Fprintln(r.Out)
		rows = append(rows, row)
	}
	for _, m := range methodOrder {
		var vals []float64
		for _, row := range rows {
			vals = append(vals, row.Share[m])
		}
		fmt.Fprintf(r.Out, "mean %v: %.1f%%\n", m, metrics.GeoMean(vals)*100)
	}
	return rows, nil
}

// Fig9Row is the parallel speedup of every method against CSR-LS on one
// core, for one matrix on one machine.
type Fig9Row struct {
	Machine string
	MatID   string
	Speedup map[order.Method]float64
}

// Fig9 prints and returns parallel speedups at the paper's evaluation core
// counts: T(mat, CSR-LS, 1) / T(mat, method, q) with q=16 (Intel) and
// q=12 (AMD) (E-F9).
func (r *Runner) Fig9() ([]Fig9Row, error) {
	var out []Fig9Row
	for _, mc := range r.Machines {
		fmt.Fprintf(r.Out, "Figure 9: parallel speedup vs CSR-LS@1, %d cores (%s)\n", mc.EvalCores, mc.Label)
		fmt.Fprintf(r.Out, "%-4s", "mat")
		for _, m := range methodOrder {
			fmt.Fprintf(r.Out, " %10v", m)
		}
		fmt.Fprintln(r.Out)
		for _, id := range r.sortedIDs() {
			ref, err := r.Sim(id, order.CSRLS, mc, 1)
			if err != nil {
				return nil, err
			}
			row := Fig9Row{Machine: mc.Label, MatID: id, Speedup: make(map[order.Method]float64)}
			fmt.Fprintf(r.Out, "%-4s", id)
			for _, m := range methodOrder {
				res, err := r.Sim(id, m, mc, mc.EvalCores)
				if err != nil {
					return nil, err
				}
				sp := metrics.Speedup(float64(ref.Cycles), float64(res.Cycles))
				row.Speedup[m] = sp
				fmt.Fprintf(r.Out, " %10.2f", sp)
			}
			fmt.Fprintln(r.Out)
			out = append(out, row)
		}
		for _, m := range methodOrder {
			fmt.Fprintf(r.Out, "geomean %v: %.2f\n", m, geomeanOf(out, mc.Label, m))
		}
	}
	return out, nil
}

func geomeanOf(rows []Fig9Row, machineLabel string, m order.Method) float64 {
	var vals []float64
	for _, row := range rows {
		if row.Machine == machineLabel {
			vals = append(vals, row.Speedup[m])
		}
	}
	return metrics.GeoMean(vals)
}

// RelRow is a relative-speedup entry for Figures 10 and 11.
type RelRow struct {
	Machine string
	MatID   string
	Ratio   float64 // T(reference)/T(improved)
}

// RelativeSpeedup prints and returns T(ref, q)/T(improved, q) per matrix on
// each machine — Figure 10 (CSR-COL vs STS-3) and Figure 11 (CSR-LS vs
// CSR-3-LS), the incremental gain from the k-level sub-structuring alone.
func (r *Runner) RelativeSpeedup(ref, improved order.Method, fig, title string) ([]RelRow, error) {
	var out []RelRow
	for _, mc := range r.Machines {
		fmt.Fprintf(r.Out, "%s (%s): %s, %d cores (%s)\n", fig, title, improved, mc.EvalCores, mc.Label)
		for _, id := range r.sortedIDs() {
			a, err := r.Sim(id, ref, mc, mc.EvalCores)
			if err != nil {
				return nil, err
			}
			b, err := r.Sim(id, improved, mc, mc.EvalCores)
			if err != nil {
				return nil, err
			}
			ratio := metrics.Speedup(float64(a.Cycles), float64(b.Cycles))
			out = append(out, RelRow{Machine: mc.Label, MatID: id, Ratio: ratio})
			fmt.Fprintf(r.Out, "%-4s %v/%v = %.2f\n", id, ref, improved, ratio)
		}
		var vals []float64
		for _, row := range out {
			if row.Machine == mc.Label {
				vals = append(vals, row.Ratio)
			}
		}
		fmt.Fprintf(r.Out, "geomean (%s): %.2f\n", mc.Label, metrics.GeoMean(vals))
	}
	return out, nil
}

// SweepPoint is one core count of the Figures 12-13 aggregate sweep.
type SweepPoint struct {
	Machine string
	Cores   int
	Ratio   float64 // total suite time ratio T(ref,q)/T(improved,q)
}

// CoreSweep prints and returns the aggregate relative speedup over the
// whole suite across core counts — Figure 12 (colour pair) and Figure 13
// (level-set pair).
func (r *Runner) CoreSweep(ref, improved order.Method, fig, title string) ([]SweepPoint, error) {
	var out []SweepPoint
	for _, mc := range r.Machines {
		fmt.Fprintf(r.Out, "%s (%s): T(*,%v,q)/T(*,%v,q) (%s)\n", fig, title, ref, improved, mc.Label)
		for _, cores := range mc.CoreSweep {
			var tRef, tImp float64
			for _, id := range r.sortedIDs() {
				a, err := r.Sim(id, ref, mc, cores)
				if err != nil {
					return nil, err
				}
				b, err := r.Sim(id, improved, mc, cores)
				if err != nil {
					return nil, err
				}
				tRef += float64(a.Cycles)
				tImp += float64(b.Cycles)
			}
			ratio := metrics.Speedup(tRef, tImp)
			out = append(out, SweepPoint{Machine: mc.Label, Cores: cores, Ratio: ratio})
			fmt.Fprintf(r.Out, "  %2d cores: %.2f\n", cores, ratio)
		}
	}
	return out, nil
}

// Fig14Row is the per-unknown largest-pack comparison of one matrix.
type Fig14Row struct {
	Machine string
	MatID   string
	Ratio   float64 // t(CSR-COL)/t(STS-3), per unknown, largest pack
}

// Fig14 prints and returns the locality isolation experiment (E-F14): the
// modeled time of the largest pack, scaled by its number of unknowns, for
// CSR-COL versus STS-3 — synchronisation costs excluded by construction.
func (r *Runner) Fig14() ([]Fig14Row, error) {
	var out []Fig14Row
	for _, mc := range r.Machines {
		fmt.Fprintf(r.Out, "Figure 14: largest-pack time per unknown, CSR-COL/STS-3, %d cores (%s)\n",
			mc.EvalCores, mc.Label)
		for _, id := range r.sortedIDs() {
			col, err := r.Sim(id, order.CSRCOL, mc, mc.EvalCores)
			if err != nil {
				return nil, err
			}
			sts, err := r.Sim(id, order.STS3, mc, mc.EvalCores)
			if err != nil {
				return nil, err
			}
			tCol := largestPackPerUnknown(col.PackCycles, col.PackRows)
			tSTS := largestPackPerUnknown(sts.PackCycles, sts.PackRows)
			ratio := metrics.Speedup(tCol, tSTS)
			out = append(out, Fig14Row{Machine: mc.Label, MatID: id, Ratio: ratio})
			fmt.Fprintf(r.Out, "%-4s %.2f\n", id, ratio)
		}
		var vals []float64
		for _, row := range out {
			if row.Machine == mc.Label {
				vals = append(vals, row.Ratio)
			}
		}
		fmt.Fprintf(r.Out, "geomean (%s): %.2f\n", mc.Label, metrics.GeoMean(vals))
	}
	return out, nil
}

// largestPackPerUnknown returns cycles/unknown for the pack with the most
// rows.
func largestPackPerUnknown(cycles []uint64, rows []int) float64 {
	best := -1
	for p, r := range rows {
		if best < 0 || r > rows[best] {
			best = p
		}
	}
	if best < 0 || rows[best] == 0 {
		return 0
	}
	return float64(cycles[best]) / float64(rows[best])
}
