package bench

import (
	"fmt"

	"stsk/internal/cachesim"
	"stsk/internal/graph"
	"stsk/internal/machine"
	"stsk/internal/metrics"
	"stsk/internal/order"
)

// Ablations lists the design-choice experiments beyond the paper's
// figures. Each isolates one ingredient of STS-k:
//
//	ablation-super   super-row size sweep (§3.1 / §4.1 "k ± 1" sensitivity)
//	ablation-color   greedy-colouring vertex orders (Boost-natural vs others)
//	ablation-dar     §3.4 in-pack DAR reordering: off / RCM / Sloan
//	ablation-levels  k=3 vs the §5 k=4 extension
//	ablation-numa    NUMA vs UMA topology at equal core count
func Ablations() []string {
	return []string{
		"ablation-super", "ablation-color", "ablation-dar",
		"ablation-chunk", "ablation-levels", "ablation-numa",
	}
}

// RunAblation executes one ablation by name on the D5 (delaunay-class)
// suite matrix.
func (r *Runner) RunAblation(name string) error {
	mat, err := r.Matrix("D5")
	if err != nil {
		return err
	}
	mc := r.Machines[0] // scaled Intel
	cores := mc.EvalCores

	sim := func(p *order.Plan, topo machine.Topology) (*cachesim.Result, error) {
		return cachesim.Simulate(p.S, topo, cachesim.Options{Cores: cores, Chunk: 1, Repeats: r.Repeats})
	}

	switch name {
	case "ablation-super":
		fmt.Fprintf(r.Out, "ablation-super: STS-3 vs super-row size (D5, Intel@%d)\n", cores)
		fmt.Fprintf(r.Out, "%8s %8s %8s %14s %10s\n", "rows", "supers", "packs", "cycles", "hit rate")
		for _, rps := range []int{10, 20, 40, 80, 160, 320} {
			p, err := order.Build(mat, order.Options{Method: order.STS3, RowsPerSuper: rps})
			if err != nil {
				return err
			}
			res, err := sim(p, mc.Topo)
			if err != nil {
				return err
			}
			fmt.Fprintf(r.Out, "%8d %8d %8d %14d %9.1f%%\n",
				rps, p.S.NumSuperRows(), p.NumPacks, res.Cycles, res.HitRate*100)
		}
		return nil

	case "ablation-color":
		fmt.Fprintf(r.Out, "ablation-color: STS-3 vs colouring vertex order (D5, Intel@%d)\n", cores)
		fmt.Fprintf(r.Out, "%-14s %8s %14s %12s\n", "order", "packs", "cycles", "top-5 work")
		for _, co := range []graph.ColorOrder{graph.NaturalOrder, graph.LargestFirst, graph.SmallestLast} {
			p, err := order.Build(mat, order.Options{Method: order.STS3, ColorOrder: co})
			if err != nil {
				return err
			}
			res, err := sim(p, mc.Topo)
			if err != nil {
				return err
			}
			st := metrics.Analyze(p.S)
			fmt.Fprintf(r.Out, "%-14v %8d %14d %11.1f%%\n", co, p.NumPacks, res.Cycles, st.WorkShareTop5*100)
		}
		return nil

	case "ablation-dar":
		fmt.Fprintf(r.Out, "ablation-dar: §3.4 in-pack reordering (D5, Intel@%d)\n", cores)
		fmt.Fprintf(r.Out, "%-10s %14s %10s %14s %10s\n", "variant", "cycles", "hit rate", "mean DAR span", "max DAR bw")
		variants := []struct {
			name string
			opts order.Options
		}{
			{"off", order.Options{Method: order.STS3, SkipInPackRCM: true}},
			{"rcm", order.Options{Method: order.STS3, InPackOrder: order.InPackRCM}},
			{"sloan", order.Options{Method: order.STS3, InPackOrder: order.InPackSloan}},
		}
		for _, v := range variants {
			p, err := order.Build(mat, v.opts)
			if err != nil {
				return err
			}
			res, err := sim(p, mc.Topo)
			if err != nil {
				return err
			}
			ds := metrics.DARBandwidths(p.S, 8)
			fmt.Fprintf(r.Out, "%-10s %14d %9.1f%% %14.2f %10d\n",
				v.name, res.Cycles, res.HitRate*100, metrics.MeanDARSpan(ds), metrics.MaxDARBandwidth(ds))
		}
		return nil

	case "ablation-chunk":
		fmt.Fprintf(r.Out, "ablation-chunk: simulator chunk size (temporal reuse, D5, Intel@%d)\n", cores)
		fmt.Fprintf(r.Out, "%8s %14s %10s\n", "chunk", "cycles", "hit rate")
		p, err := order.Build(mat, order.Options{Method: order.STS3})
		if err != nil {
			return err
		}
		for _, chunk := range []int{1, 2, 4, 8, 16} {
			res, err := cachesim.Simulate(p.S, mc.Topo, cachesim.Options{Cores: cores, Chunk: chunk, Repeats: r.Repeats})
			if err != nil {
				return err
			}
			fmt.Fprintf(r.Out, "%8d %14d %9.1f%%\n", chunk, res.Cycles, res.HitRate*100)
		}
		return nil

	case "ablation-levels":
		fmt.Fprintf(r.Out, "ablation-levels: k=3 vs k=4 (D5, Intel@%d)\n", cores)
		fmt.Fprintf(r.Out, "%-4s %8s %8s %14s\n", "k", "tasks", "packs", "cycles")
		for _, lv := range []int{3, 4} {
			p, err := order.Build(mat, order.Options{Method: order.STS3, Levels: lv})
			if err != nil {
				return err
			}
			res, err := sim(p, mc.Topo)
			if err != nil {
				return err
			}
			fmt.Fprintf(r.Out, "%-4d %8d %8d %14d\n", lv, p.S.NumSuperRows(), p.NumPacks, res.Cycles)
		}
		return nil

	case "ablation-numa":
		fmt.Fprintf(r.Out, "ablation-numa: NUMA vs UMA at %d cores (D5)\n", cores)
		fmt.Fprintf(r.Out, "%-10s %-9s %14s %12s %12s\n", "machine", "method", "cycles", "remote L3", "remote DRAM")
		uma := machine.ScaleCaches(machine.UMA(32), 16, l3Divisor(machine.UMA(32), r.Scale))
		for _, m := range []order.Method{order.CSRCOL, order.STS3} {
			p, err := order.Build(mat, order.Options{Method: m})
			if err != nil {
				return err
			}
			for _, tc := range []struct {
				label string
				topo  machine.Topology
			}{{"intel", mc.Topo}, {"uma", uma}} {
				res, err := sim(p, tc.topo)
				if err != nil {
					return err
				}
				fmt.Fprintf(r.Out, "%-10s %-9v %14d %12d %12d\n",
					tc.label, m, res.Cycles, res.Counts.L3Remote, res.Counts.DRAMRemote)
			}
		}
		return nil
	}
	return fmt.Errorf("bench: unknown ablation %q (have %v)", name, Ablations())
}
