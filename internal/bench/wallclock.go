package bench

import (
	"fmt"
	"runtime"
	"time"

	"stsk/internal/order"
	"stsk/internal/solve"
	"stsk/internal/sparse"
)

// Wallclock times the real goroutine solver over the suite — the
// secondary, unpinned signal (DESIGN.md §2). Times are the mean of
// `repeats` solves after one warm-up, mirroring the paper's average of 10
// repetitions with pre-processing excluded (§4.1).
func (r *Runner) Wallclock(repeats int) error {
	if repeats < 1 {
		repeats = 10
	}
	workers := runtime.GOMAXPROCS(0)
	fmt.Fprintf(r.Out, "wallclock: goroutine solver, %d workers, mean of %d solves (unpinned — noisy)\n",
		workers, repeats)
	fmt.Fprintf(r.Out, "%-4s", "mat")
	for _, m := range methodOrder {
		fmt.Fprintf(r.Out, " %12v", m)
	}
	fmt.Fprintln(r.Out, "   (µs per solve)")
	mc := r.Machines[0]
	for _, id := range r.sortedIDs() {
		fmt.Fprintf(r.Out, "%-4s", id)
		for _, m := range methodOrder {
			p, err := r.Plan(id, m, mc)
			if err != nil {
				return err
			}
			d, err := timeSolve(p, workers, repeats)
			if err != nil {
				return err
			}
			fmt.Fprintf(r.Out, " %12.1f", float64(d.Nanoseconds())/1e3)
		}
		fmt.Fprintln(r.Out)
	}
	return nil
}

func timeSolve(p *order.Plan, workers, repeats int) (time.Duration, error) {
	opts := solve.DefaultsFor(p.Method.UsesSuperRows(), workers)
	b := make([]float64, p.S.L.N)
	for i := range b {
		b[i] = 1
	}
	x := make([]float64, p.S.L.N)
	// Warm-up and correctness gate.
	if err := solve.ParallelInto(x, p.S, b, opts); err != nil {
		return 0, err
	}
	if res := sparse.Residual(p.S.L, x, b); res > 1e-6 {
		return 0, fmt.Errorf("bench: wallclock solve residual %g", res)
	}
	start := time.Now()
	for i := 0; i < repeats; i++ {
		if err := solve.ParallelInto(x, p.S, b, opts); err != nil {
			return 0, err
		}
	}
	return time.Since(start) / time.Duration(repeats), nil
}
