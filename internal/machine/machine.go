// Package machine describes the NUMA multicore topologies of the paper's
// evaluation (§4.1) for the trace-driven cache simulator.
//
// Go's runtime offers neither thread pinning nor NUMA-aware allocation, so
// the reproduction cannot re-run the paper's pinned-OpenMP measurements on
// real silicon. Instead, these topology descriptions — cache geometry and
// the latency numbers the paper cites from Molka et al. [PACT'09] — drive
// a deterministic simulation (internal/cachesim) in which task→core
// placement is explicit, exactly what KMP_AFFINITY=compact gave the
// authors.
package machine

import "fmt"

// CacheSpec is the geometry and hit latency of one cache level.
type CacheSpec struct {
	SizeBytes    int
	LineBytes    int
	Assoc        int
	LatencyCycle int // hit latency in cycles
}

// Topology is a NUMA multicore: identical sockets (NUMA domains), each
// with private per-core L1/L2 and one shared L3, over a NUMA memory.
type Topology struct {
	Name           string
	Sockets        int // NUMA domains
	CoresPerSocket int

	L1 CacheSpec // private per core
	L2 CacheSpec // private per core
	L3 CacheSpec // shared per socket; LatencyCycle is the local-bank latency

	// L3RemoteCycle is the latency of hitting a cache line in another
	// socket's L3 (the upper end of the paper's 38–170 cycle L3 range).
	L3RemoteCycle int
	// DRAMLocalCycle / DRAMRemoteCycle are memory latencies for the local
	// and a remote NUMA domain (paper: 175–290 cycles on the Intel node).
	DRAMLocalCycle  int
	DRAMRemoteCycle int

	// ComputeCycle is the cost of one fused multiply-add (one nonzero).
	ComputeCycle int

	// PrefetchCycle is the charged latency of a cache miss on a sequential
	// stream (the matrix value/index arrays and b): hardware prefetchers
	// hide stream latency almost completely, which is why sparse
	// triangular solution is bound by the latency of the irregular x
	// accesses — the paper's premise. 0 disables the prefetcher and
	// charges full miss latency on streams.
	PrefetchCycle int

	// DRAMPerLineCycle is the memory-controller occupancy per cache line
	// fetched from DRAM, per socket: a pack cannot finish faster than
	// (lines fetched by the socket's cores) × DRAMPerLineCycle, the
	// Little's-law bandwidth envelope the paper invokes for Figure 8.
	// 0 disables the bandwidth bound.
	DRAMPerLineCycle int

	// SyncBaseCycle and SyncPerCoreCycle model the barrier between packs:
	// cost = SyncBaseCycle + SyncPerCoreCycle·(active cores). Wolf et al.
	// [VECPAR'10] identify this synchronisation as the dominant overhead,
	// which is why pack counts matter (Figures 7–8).
	SyncBaseCycle    int
	SyncPerCoreCycle int
}

// TotalCores returns the number of cores in the machine.
func (t *Topology) TotalCores() int { return t.Sockets * t.CoresPerSocket }

// SocketOf returns the NUMA domain of a core under compact placement
// (cores fill socket 0 first, matching KMP_AFFINITY=compact).
func (t *Topology) SocketOf(core int) int { return core / t.CoresPerSocket }

// Validate checks that the topology is internally consistent.
func (t *Topology) Validate() error {
	if t.Sockets < 1 || t.CoresPerSocket < 1 {
		return fmt.Errorf("machine: %s: empty topology", t.Name)
	}
	for _, c := range []CacheSpec{t.L1, t.L2, t.L3} {
		if c.LineBytes <= 0 || c.Assoc <= 0 || c.SizeBytes <= 0 {
			return fmt.Errorf("machine: %s: malformed cache spec %+v", t.Name, c)
		}
		if c.SizeBytes%(c.LineBytes*c.Assoc) != 0 {
			return fmt.Errorf("machine: %s: cache size %d not divisible into %d-way sets of %dB lines",
				t.Name, c.SizeBytes, c.Assoc, c.LineBytes)
		}
	}
	if t.L1.LatencyCycle > t.L2.LatencyCycle || t.L2.LatencyCycle > t.L3.LatencyCycle {
		return fmt.Errorf("machine: %s: latencies must grow down the hierarchy", t.Name)
	}
	if t.L3.LatencyCycle > t.L3RemoteCycle || t.L3RemoteCycle > t.DRAMRemoteCycle {
		return fmt.Errorf("machine: %s: remote latencies must dominate local", t.Name)
	}
	if t.DRAMLocalCycle > t.DRAMRemoteCycle {
		return fmt.Errorf("machine: %s: local DRAM slower than remote", t.Name)
	}
	return nil
}

// IntelWestmereEX32 is the paper's Intel node: 4 × Xeon E7-8837
// (Westmere-EX), 8 cores per socket; 64 KiB L1 at 4 cycles and 256 KiB L2
// at 10 cycles private per core; 24 MiB L3 shared per socket with
// NUMA-banked latency 38–170 cycles; DRAM at 175–290 cycles (§4.1, citing
// Molka et al.).
func IntelWestmereEX32() Topology {
	return Topology{
		Name:           "intel-westmere-ex-32",
		Sockets:        4,
		CoresPerSocket: 8,
		L1:             CacheSpec{SizeBytes: 64 << 10, LineBytes: 64, Assoc: 8, LatencyCycle: 4},
		L2:             CacheSpec{SizeBytes: 256 << 10, LineBytes: 64, Assoc: 8, LatencyCycle: 10},
		L3:             CacheSpec{SizeBytes: 24 << 20, LineBytes: 64, Assoc: 24, LatencyCycle: 38},
		L3RemoteCycle:  170,
		DRAMLocalCycle: 175, DRAMRemoteCycle: 290,
		ComputeCycle:     1,
		PrefetchCycle:    4,
		DRAMPerLineCycle: 6,
		SyncBaseCycle:    600,
		SyncPerCoreCycle: 120,
	}
}

// AMDMagnyCours24 is the paper's AMD node: 2 × twelve-core Magny-Cours
// packages. Each package carries two six-core dies, so the machine has
// 4 NUMA domains of 6 cores; 64 KiB L1 and 512 KiB L2 private per core,
// 6 MiB L3 shared per die (§4.1).
func AMDMagnyCours24() Topology {
	return Topology{
		Name:           "amd-magny-cours-24",
		Sockets:        4, // NUMA dies
		CoresPerSocket: 6,
		L1:             CacheSpec{SizeBytes: 64 << 10, LineBytes: 64, Assoc: 2, LatencyCycle: 3},
		L2:             CacheSpec{SizeBytes: 512 << 10, LineBytes: 64, Assoc: 16, LatencyCycle: 12},
		L3:             CacheSpec{SizeBytes: 6 << 20, LineBytes: 64, Assoc: 48, LatencyCycle: 40},
		L3RemoteCycle:  180,
		DRAMLocalCycle: 190, DRAMRemoteCycle: 310,
		ComputeCycle:     1,
		PrefetchCycle:    5,
		DRAMPerLineCycle: 8,
		SyncBaseCycle:    700,
		SyncPerCoreCycle: 140,
	}
}

// UMA returns a uniform-memory reference machine: one NUMA domain, every
// latency flat. Useful for isolating NUMA effects in ablations.
func UMA(cores int) Topology {
	return Topology{
		Name:           fmt.Sprintf("uma-%d", cores),
		Sockets:        1,
		CoresPerSocket: cores,
		L1:             CacheSpec{SizeBytes: 64 << 10, LineBytes: 64, Assoc: 8, LatencyCycle: 4},
		L2:             CacheSpec{SizeBytes: 256 << 10, LineBytes: 64, Assoc: 8, LatencyCycle: 10},
		L3:             CacheSpec{SizeBytes: 24 << 20, LineBytes: 64, Assoc: 24, LatencyCycle: 40},
		L3RemoteCycle:  40,
		DRAMLocalCycle: 200, DRAMRemoteCycle: 200,
		ComputeCycle:     1,
		PrefetchCycle:    4,
		DRAMPerLineCycle: 6,
		SyncBaseCycle:    600,
		SyncPerCoreCycle: 120,
	}
}

// ScaleCaches returns a copy of the topology with private caches (L1, L2)
// divided by privDiv and the shared L3 divided by l3Div, latencies
// unchanged.
//
// The paper's matrices are 50-1000× larger than the evaluation machines'
// L3 caches; a container-scale reproduction shrinks the matrices, so the
// caches must shrink with them to keep the footprint-to-cache ratios — and
// with them the locality effects that separate the schemes — in the
// paper's regime. Divisors are clamped so every cache keeps at least one
// set and the hierarchy stays nested (L3 ≥ 2·L2).
func ScaleCaches(t Topology, privDiv, l3Div int) Topology {
	return ScaleCachesLine(t, privDiv, l3Div, 1)
}

// ScaleCachesLine is ScaleCaches with an additional divisor for the cache
// line size (floored at 8 bytes, one matrix entry): at reproduction scale
// the RCM bandwidth of the scaled matrices shrinks with √n, so a full 64-
// byte line spans an unrealistically large fraction of the band and hands
// row-level schemes spatial sharing the paper's matrices do not have.
func ScaleCachesLine(t Topology, privDiv, l3Div, lineDiv int) Topology {
	out := t
	out.L1 = scaleSpec(t.L1, privDiv)
	out.L2 = scaleSpec(t.L2, privDiv)
	out.L3 = scaleSpec(t.L3, l3Div)
	if lineDiv > 1 {
		for _, c := range []*CacheSpec{&out.L1, &out.L2, &out.L3} {
			c.LineBytes /= lineDiv
			if c.LineBytes < 8 {
				c.LineBytes = 8
			}
			unit := c.LineBytes * c.Assoc
			if c.SizeBytes < unit {
				c.SizeBytes = unit
			}
			if rem := c.SizeBytes % unit; rem != 0 {
				c.SizeBytes -= rem
			}
		}
	}
	if out.L3.SizeBytes < 2*out.L2.SizeBytes {
		out.L3.SizeBytes = 2 * out.L2.SizeBytes
		// Keep the set count integral.
		unit := out.L3.LineBytes * out.L3.Assoc
		if rem := out.L3.SizeBytes % unit; rem != 0 {
			out.L3.SizeBytes += unit - rem
		}
	}
	out.Name = fmt.Sprintf("%s/c%d-%d-l%d", t.Name, privDiv, l3Div, lineDiv)
	return out
}

func scaleSpec(c CacheSpec, div int) CacheSpec {
	if div < 1 {
		div = 1
	}
	c.SizeBytes /= div
	min := c.LineBytes * c.Assoc // one full set
	if c.SizeBytes < min {
		c.SizeBytes = min
	}
	if rem := c.SizeBytes % min; rem != 0 {
		c.SizeBytes -= rem
	}
	return c
}

// Known lists the built-in topologies by name.
func Known() map[string]Topology {
	return map[string]Topology{
		"intel": IntelWestmereEX32(),
		"amd":   AMDMagnyCours24(),
		"uma":   UMA(32),
	}
}
