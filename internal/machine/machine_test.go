package machine

import "testing"

func TestBuiltinTopologiesValid(t *testing.T) {
	for name, topo := range Known() {
		if err := topo.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestIntelShape(t *testing.T) {
	topo := IntelWestmereEX32()
	if topo.TotalCores() != 32 {
		t.Fatalf("intel cores = %d, want 32", topo.TotalCores())
	}
	if topo.Sockets != 4 || topo.CoresPerSocket != 8 {
		t.Fatalf("intel sockets/cores = %d/%d", topo.Sockets, topo.CoresPerSocket)
	}
	// Paper latencies (§4.1): L1 4cy, L2 10cy, L3 38-170cy, DRAM 175-290cy.
	if topo.L1.LatencyCycle != 4 || topo.L2.LatencyCycle != 10 {
		t.Fatal("intel private cache latencies diverge from the paper")
	}
	if topo.L3.LatencyCycle != 38 || topo.L3RemoteCycle != 170 {
		t.Fatal("intel L3 latency band diverges from the paper")
	}
	if topo.DRAMLocalCycle != 175 || topo.DRAMRemoteCycle != 290 {
		t.Fatal("intel DRAM latency band diverges from the paper")
	}
}

func TestAMDShape(t *testing.T) {
	topo := AMDMagnyCours24()
	if topo.TotalCores() != 24 {
		t.Fatalf("amd cores = %d, want 24", topo.TotalCores())
	}
	if topo.CoresPerSocket != 6 {
		t.Fatalf("amd NUMA domain size = %d, want 6 (L3 shared among 6 cores)", topo.CoresPerSocket)
	}
	if topo.L2.SizeBytes != 512<<10 || topo.L3.SizeBytes != 6<<20 {
		t.Fatal("amd cache sizes diverge from the paper")
	}
}

func TestSocketOfCompact(t *testing.T) {
	topo := IntelWestmereEX32()
	if topo.SocketOf(0) != 0 || topo.SocketOf(7) != 0 {
		t.Fatal("first 8 cores must share socket 0 under compact placement")
	}
	if topo.SocketOf(8) != 1 || topo.SocketOf(31) != 3 {
		t.Fatal("compact placement mapping wrong")
	}
}

func TestValidateRejectsBadTopologies(t *testing.T) {
	base := IntelWestmereEX32()
	mutations := []func(*Topology){
		func(t *Topology) { t.Sockets = 0 },
		func(t *Topology) { t.L1.SizeBytes = 0 },
		func(t *Topology) { t.L1.SizeBytes = 100 }, // not divisible into sets
		func(t *Topology) { t.L1.LatencyCycle = 99 },
		func(t *Topology) { t.L3RemoteCycle = 1 },
		func(t *Topology) { t.DRAMLocalCycle = 1000 },
	}
	for i, mut := range mutations {
		topo := base
		mut(&topo)
		if err := topo.Validate(); err == nil {
			t.Fatalf("mutation %d accepted", i)
		}
	}
}

func TestUMAFlat(t *testing.T) {
	topo := UMA(16)
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	if topo.DRAMLocalCycle != topo.DRAMRemoteCycle {
		t.Fatal("UMA must have flat DRAM latency")
	}
	if topo.Sockets != 1 {
		t.Fatal("UMA must be a single domain")
	}
}
