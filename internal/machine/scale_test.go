package machine

import "testing"

func TestScaleCachesShrinksAndValidates(t *testing.T) {
	for _, base := range []Topology{IntelWestmereEX32(), AMDMagnyCours24(), UMA(16)} {
		for _, div := range []int{2, 16, 512, 100000} {
			s := ScaleCaches(base, 16, div)
			if err := s.Validate(); err != nil {
				t.Fatalf("%s /%d: %v", base.Name, div, err)
			}
			if s.L1.SizeBytes > base.L1.SizeBytes || s.L3.SizeBytes > base.L3.SizeBytes {
				t.Fatalf("%s /%d: scaling grew a cache", base.Name, div)
			}
			if s.L3.SizeBytes < 2*s.L2.SizeBytes {
				t.Fatalf("%s /%d: hierarchy nesting broken (L3 %d < 2*L2 %d)",
					base.Name, div, s.L3.SizeBytes, s.L2.SizeBytes)
			}
			// Latencies and NUMA structure untouched.
			if s.L1.LatencyCycle != base.L1.LatencyCycle || s.DRAMRemoteCycle != base.DRAMRemoteCycle {
				t.Fatalf("%s: scaling changed latencies", base.Name)
			}
			if s.Sockets != base.Sockets {
				t.Fatalf("%s: scaling changed sockets", base.Name)
			}
		}
	}
}

func TestScaleCachesFloorsAtOneSet(t *testing.T) {
	s := ScaleCaches(IntelWestmereEX32(), 1<<30, 1<<30)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.L1.SizeBytes < s.L1.LineBytes*s.L1.Assoc {
		t.Fatal("L1 smaller than one set")
	}
}

func TestScaleCachesLine(t *testing.T) {
	s := ScaleCachesLine(IntelWestmereEX32(), 16, 256, 8)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.L1.LineBytes != 8 || s.L3.LineBytes != 8 {
		t.Fatalf("line sizes = %d/%d, want 8", s.L1.LineBytes, s.L3.LineBytes)
	}
	// Floor: dividing further stays at 8 bytes (one matrix entry).
	s = ScaleCachesLine(IntelWestmereEX32(), 16, 256, 1024)
	if s.L1.LineBytes != 8 {
		t.Fatalf("line floor broken: %d", s.L1.LineBytes)
	}
	// lineDiv 1 behaves exactly like ScaleCaches.
	a := ScaleCachesLine(IntelWestmereEX32(), 16, 256, 1)
	b := ScaleCaches(IntelWestmereEX32(), 16, 256)
	if a.L1 != b.L1 || a.L2 != b.L2 || a.L3 != b.L3 {
		t.Fatal("lineDiv=1 diverges from ScaleCaches")
	}
}

func TestScaledNamesDistinct(t *testing.T) {
	a := ScaleCaches(IntelWestmereEX32(), 16, 256)
	b := ScaleCaches(IntelWestmereEX32(), 16, 512)
	if a.Name == b.Name {
		t.Fatal("scaled topologies share a name")
	}
}
