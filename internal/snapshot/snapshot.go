// Package snapshot defines the on-disk persistence format for built
// STS-k plans: a versioned, checksummed binary image of everything the
// ordering pipeline produced — the row permutation, the permuted factor's
// CSR arrays at the current value epoch, the super-row and pack
// boundaries, the sparsified task DAG — plus opaque embedder metadata
// (the serve registry stores its plan spec and value version there).
//
// The format exists to amortize the expensive symbolic build across
// process lifetimes: a cold `stsk.Build` is seconds of ordering-pipeline
// CPU, a snapshot reload is one sequential file read plus O(nnz) decode.
// Every multi-byte value is little-endian; numeric arrays are stored as
// raw fixed-width sections behind one CRC-32C (hardware-accelerated on
// amd64/arm64, so checksumming never dominates a reload) so a reload is
// bulk reads, not per-element parsing decisions.
//
// Layout:
//
//	offset  size  field
//	0       8     magic "STSKSNAP"
//	8       4     format version (uint32, currently 1)
//	12      4     reserved (0)
//	16      8     payload length in bytes (uint64)
//	24      4     CRC-32C (Castagnoli) of the payload (uint32)
//	28      4     reserved (0)
//	32      …     payload: fixed meta block, then length-prefixed sections
//
// Payload sections, in order (each array is a uint64 element count
// followed by raw little-endian elements; a zero count marks an absent
// optional section). Int sections carry one width byte (4 or 8) after
// the count and use the narrow encoding whenever every value fits in an
// int32 — which is every plan this library can build, halving the
// dominant index arrays on disk:
//
//	meta        method int32, numPacks int32, n uint64, valueVersion uint64
//	perm        []int       row permutation (input row → factor row)
//	rowPtr      []int       factor CSR row pointers (len n+1)
//	col         []int       factor CSR column indices
//	val         []float64   factor values at the serialized value epoch
//	superPtr    []int       super-row boundaries (csrk "index2")
//	packPtr     []int       pack boundaries (csrk "index3")
//	origRowPtr  []int       source-matrix pattern (Refactor's input order)
//	origCol     []int
//	dag ×6      []int32     TaskPtr, RowPtr, Pred, PredPtr, Succ, SuccPtr
//	meta blob   []byte      opaque embedder metadata (optional)
//	auxVals     []float64   opaque embedder value array (optional)
//
// Read refuses anything it cannot prove whole: a wrong magic, an
// unsupported format version (ErrVersion), a truncated stream, a payload
// whose checksum does not match, or a section whose declared length
// exceeds the bytes actually present (ErrInvalid) — corruption is an
// error, never a panic or a partial image. Semantic validation of the
// decoded arrays (triangularity, pack independence, permutation
// bijectivity) is the caller's job; stsk.ReadSnapshot performs it before
// constructing a Plan.
package snapshot

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"

	"stsk/internal/csrk"
)

const (
	magic = "STSKSNAP"

	// FormatVersion is the on-disk format revision this build reads and
	// writes. Bump it on any incompatible layout change; Read refuses
	// other versions cleanly instead of mis-decoding them.
	FormatVersion = 1

	headerSize = 32
)

// Sentinels matched with errors.Is by loaders that fall back to a cold
// build when a snapshot cannot be used.
var (
	// ErrInvalid reports a snapshot that is not whole: bad magic,
	// truncation, checksum mismatch, or internally inconsistent section
	// lengths.
	ErrInvalid = errors.New("snapshot: invalid or corrupted snapshot")

	// ErrVersion reports a snapshot written by an incompatible format
	// revision.
	ErrVersion = errors.New("snapshot: unsupported snapshot format version")
)

// crcTable selects CRC-32C (Castagnoli), which Go computes with
// dedicated instructions on amd64 and arm64.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Image is the decoded (or to-be-encoded) content of one plan snapshot.
// Slices are aliased, not copied, by Write; Read returns freshly
// allocated arrays the caller owns.
type Image struct {
	Method       int32
	NumPacks     int32
	N            int
	ValueVersion uint64

	Perm   []int
	RowPtr []int
	Col    []int
	Val    []float64

	SuperPtr []int
	PackPtr  []int

	// OrigRowPtr/OrigCol carry the source matrix's pattern so a reloaded
	// plan can keep accepting Refactor calls in input order.
	OrigRowPtr []int
	OrigCol    []int

	// DAG is the sparsified task DAG, nil when the plan never built one.
	DAG *csrk.TaskDAG

	// Meta and AuxVals are opaque embedder sections, carried verbatim
	// under the same checksum. The serve registry stores its plan spec +
	// registry value version in Meta and the latest input-order value
	// array in AuxVals.
	Meta    []byte
	AuxVals []float64
}

// Write encodes img and writes it to w: header first, then the
// checksummed payload.
func Write(w io.Writer, img *Image) error {
	var e encoder
	// Reserve a worst-case payload up front so encoding never regrows.
	size := 24 + len(img.Meta)
	for _, a := range [][]int{img.Perm, img.RowPtr, img.Col, img.SuperPtr, img.PackPtr, img.OrigRowPtr, img.OrigCol} {
		size += 9 + 8*len(a)
	}
	size += 8*3 + 8*(len(img.Val)+len(img.AuxVals))
	if d := img.DAG; d != nil {
		size += 8*6 + 4*(len(d.TaskPtr)+len(d.RowPtr)+len(d.Pred)+len(d.PredPtr)+len(d.Succ)+len(d.SuccPtr))
	} else {
		size += 8 * 6
	}
	e.b = make([]byte, 0, size)
	e.meta(img)
	e.ints(img.Perm)
	e.ints(img.RowPtr)
	e.ints(img.Col)
	e.floats(img.Val)
	e.ints(img.SuperPtr)
	e.ints(img.PackPtr)
	e.ints(img.OrigRowPtr)
	e.ints(img.OrigCol)
	if d := img.DAG; d != nil {
		e.int32s(d.TaskPtr)
		e.int32s(d.RowPtr)
		e.int32s(d.Pred)
		e.int32s(d.PredPtr)
		e.int32s(d.Succ)
		e.int32s(d.SuccPtr)
	} else {
		for i := 0; i < 6; i++ {
			e.int32s(nil)
		}
	}
	e.blob(img.Meta)
	e.floats(img.AuxVals)

	var hdr [headerSize]byte
	copy(hdr[:8], magic)
	binary.LittleEndian.PutUint32(hdr[8:12], FormatVersion)
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(len(e.b)))
	binary.LittleEndian.PutUint32(hdr[24:28], crc32.Checksum(e.b, crcTable))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(e.b)
	return err
}

// Read decodes one snapshot from r, verifying the magic, format version,
// and payload checksum before touching any section.
func Read(r io.Reader) (*Image, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: truncated header", ErrInvalid)
	}
	if string(hdr[:8]) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrInvalid)
	}
	if v := binary.LittleEndian.Uint32(hdr[8:12]); v != FormatVersion {
		return nil, fmt.Errorf("%w: format %d, this build reads %d", ErrVersion, v, FormatVersion)
	}
	payloadLen := binary.LittleEndian.Uint64(hdr[16:24])
	if payloadLen > math.MaxInt64 {
		return nil, fmt.Errorf("%w: payload length overflows", ErrInvalid)
	}
	// Copy through a growing buffer rather than allocating payloadLen up
	// front: a corrupted header cannot demand a huge allocation before the
	// (truncated) stream runs dry.
	var buf bytes.Buffer
	if n, err := io.CopyN(&buf, r, int64(payloadLen)); err != nil || uint64(n) != payloadLen {
		return nil, fmt.Errorf("%w: truncated payload (%d of %d bytes)", ErrInvalid, buf.Len(), payloadLen)
	}
	return decodePayload(hdr[:], buf.Bytes())
}

// decodePayload verifies the payload against the (already magic- and
// version-checked) header and decodes the sections.
func decodePayload(hdr, payload []byte) (*Image, error) {
	wantCRC := binary.LittleEndian.Uint32(hdr[24:28])
	if crc32.Checksum(payload, crcTable) != wantCRC {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrInvalid)
	}

	d := decoder{b: payload}
	img := &Image{}
	if err := d.meta(img); err != nil {
		return nil, err
	}
	var err error
	read := func(dst *[]int) {
		if err == nil {
			*dst, err = d.ints()
		}
	}
	read(&img.Perm)
	read(&img.RowPtr)
	read(&img.Col)
	if err == nil {
		img.Val, err = d.floats()
	}
	read(&img.SuperPtr)
	read(&img.PackPtr)
	read(&img.OrigRowPtr)
	read(&img.OrigCol)
	var dagArr [6][]int32
	for i := range dagArr {
		if err == nil {
			dagArr[i], err = d.int32s()
		}
	}
	if err == nil {
		img.Meta, err = d.blob()
	}
	if err == nil {
		img.AuxVals, err = d.floats()
	}
	if err != nil {
		return nil, err
	}
	if d.off != len(d.b) {
		return nil, fmt.Errorf("%w: %d trailing payload bytes", ErrInvalid, len(d.b)-d.off)
	}
	if dagArr[0] != nil {
		img.DAG = &csrk.TaskDAG{
			TaskPtr: dagArr[0], RowPtr: dagArr[1],
			Pred: dagArr[2], PredPtr: dagArr[3],
			Succ: dagArr[4], SuccPtr: dagArr[5],
		}
	}
	return img, nil
}

// WriteFile writes img to path atomically: a temp file in the same
// directory, synced, then renamed over the destination — a crashed or
// concurrent writer can never leave a half-written snapshot under the
// final name.
func WriteFile(path string, img *Image) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".snap-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if err := Write(f, img); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// ReadFile reads one snapshot from path. Unlike the streaming Read it
// loads the file in one bulk read and decodes in place — the file's real
// size bounds the allocation, so the incremental-copy defence against
// forged payload lengths is unnecessary here.
func ReadFile(path string) (*Image, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(raw) < headerSize {
		return nil, fmt.Errorf("%w: truncated header", ErrInvalid)
	}
	hdr := raw[:headerSize]
	if string(hdr[:8]) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrInvalid)
	}
	if v := binary.LittleEndian.Uint32(hdr[8:12]); v != FormatVersion {
		return nil, fmt.Errorf("%w: format %d, this build reads %d", ErrVersion, v, FormatVersion)
	}
	payloadLen := binary.LittleEndian.Uint64(hdr[16:24])
	if payloadLen != uint64(len(raw)-headerSize) {
		return nil, fmt.Errorf("%w: payload length %d, file carries %d bytes", ErrInvalid, payloadLen, len(raw)-headerSize)
	}
	return decodePayload(hdr, raw[headerSize:])
}

// encoder accumulates the payload in memory; plans are a few dozen MiB
// at the largest served scales, well within one buffered build.
type encoder struct {
	b []byte
}

func (e *encoder) u64(v uint64) {
	e.b = binary.LittleEndian.AppendUint64(e.b, v)
}

func (e *encoder) meta(img *Image) {
	e.b = binary.LittleEndian.AppendUint32(e.b, uint32(img.Method))
	e.b = binary.LittleEndian.AppendUint32(e.b, uint32(img.NumPacks))
	e.u64(uint64(img.N))
	e.u64(img.ValueVersion)
}

// ints encodes an int section with its adaptive width byte: 4-byte
// elements whenever every value fits in an int32 (always, for plans this
// library can build — n and nnz are int32-bounded), 8-byte otherwise.
func (e *encoder) ints(a []int) {
	e.u64(uint64(len(a)))
	if len(a) == 0 {
		return
	}
	narrow := true
	for _, v := range a {
		if v < math.MinInt32 || v > math.MaxInt32 {
			narrow = false
			break
		}
	}
	if narrow {
		e.b = append(e.b, 4)
		for _, v := range a {
			e.b = binary.LittleEndian.AppendUint32(e.b, uint32(int32(v)))
		}
		return
	}
	e.b = append(e.b, 8)
	for _, v := range a {
		e.u64(uint64(int64(v)))
	}
}

func (e *encoder) int32s(a []int32) {
	e.u64(uint64(len(a)))
	for _, v := range a {
		e.b = binary.LittleEndian.AppendUint32(e.b, uint32(v))
	}
}

func (e *encoder) floats(a []float64) {
	e.u64(uint64(len(a)))
	for _, v := range a {
		e.u64(math.Float64bits(v))
	}
}

func (e *encoder) blob(a []byte) {
	e.u64(uint64(len(a)))
	e.b = append(e.b, a...)
}

// decoder walks the checksummed payload with bounds checks: every
// section's declared element count is validated against the bytes that
// remain before anything is allocated, so a forged length cannot demand
// an absurd allocation or index past the buffer.
type decoder struct {
	b   []byte
	off int
}

func (d *decoder) u64() (uint64, error) {
	if len(d.b)-d.off < 8 {
		return 0, fmt.Errorf("%w: truncated section", ErrInvalid)
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v, nil
}

// count reads an element count and verifies count*size bytes remain.
func (d *decoder) count(size int) (int, error) {
	n, err := d.u64()
	if err != nil {
		return 0, err
	}
	if n > uint64(len(d.b)-d.off)/uint64(size) {
		return 0, fmt.Errorf("%w: section of %d elements exceeds remaining payload", ErrInvalid, n)
	}
	return int(n), nil
}

func (d *decoder) meta(img *Image) error {
	if len(d.b)-d.off < 24 {
		return fmt.Errorf("%w: truncated meta block", ErrInvalid)
	}
	img.Method = int32(binary.LittleEndian.Uint32(d.b[d.off:]))
	img.NumPacks = int32(binary.LittleEndian.Uint32(d.b[d.off+4:]))
	n := binary.LittleEndian.Uint64(d.b[d.off+8:])
	img.ValueVersion = binary.LittleEndian.Uint64(d.b[d.off+16:])
	d.off += 24
	if n > math.MaxInt32 {
		return fmt.Errorf("%w: dimension %d out of range", ErrInvalid, n)
	}
	img.N = int(n)
	return nil
}

func (d *decoder) ints() ([]int, error) {
	cnt, err := d.u64()
	if err != nil {
		return nil, err
	}
	if cnt == 0 {
		return nil, nil
	}
	if len(d.b)-d.off < 1 {
		return nil, fmt.Errorf("%w: truncated section", ErrInvalid)
	}
	width := int(d.b[d.off])
	d.off++
	if width != 4 && width != 8 {
		return nil, fmt.Errorf("%w: int section width %d", ErrInvalid, width)
	}
	if cnt > uint64(len(d.b)-d.off)/uint64(width) {
		return nil, fmt.Errorf("%w: section of %d elements exceeds remaining payload", ErrInvalid, cnt)
	}
	out := make([]int, cnt)
	if width == 4 {
		for i := range out {
			out[i] = int(int32(binary.LittleEndian.Uint32(d.b[d.off:])))
			d.off += 4
		}
		return out, nil
	}
	for i := range out {
		out[i] = int(int64(binary.LittleEndian.Uint64(d.b[d.off:])))
		d.off += 8
	}
	return out, nil
}

func (d *decoder) int32s() ([]int32, error) {
	n, err := d.count(4)
	if err != nil || n == 0 {
		return nil, err
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(d.b[d.off:]))
		d.off += 4
	}
	return out, nil
}

func (d *decoder) floats() ([]float64, error) {
	n, err := d.count(8)
	if err != nil || n == 0 {
		return nil, err
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(d.b[d.off:]))
		d.off += 8
	}
	return out, nil
}

func (d *decoder) blob() ([]byte, error) {
	n, err := d.count(1)
	if err != nil || n == 0 {
		return nil, err
	}
	out := make([]byte, n)
	copy(out, d.b[d.off:])
	d.off += n
	return out, nil
}
