package snapshot

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"stsk/internal/csrk"
)

// fullImage is a small image exercising every section, including the
// optional ones (original pattern, DAG, meta blob, aux values).
func fullImage() *Image {
	return &Image{
		Method:       2,
		NumPacks:     2,
		N:            3,
		ValueVersion: 7,
		Perm:         []int{2, 0, 1},
		RowPtr:       []int{0, 1, 3, 6},
		Col:          []int{0, 0, 1, 0, 1, 2},
		Val:          []float64{1, 0.5, 2, 0.25, 0.75, 4},
		SuperPtr:     []int{0, 1, 3},
		PackPtr:      []int{0, 1, 2},
		OrigRowPtr:   []int{0, 1, 2, 3},
		OrigCol:      []int{0, 1, 2},
		DAG: &csrk.TaskDAG{
			TaskPtr: []int32{0, 1, 2},
			RowPtr:  []int32{0, 1, 3},
			Pred:    []int32{0},
			PredPtr: []int32{0, 0, 1},
			Succ:    []int32{1},
			SuccPtr: []int32{0, 1, 1},
		},
		Meta:    []byte(`{"spec":"x"}`),
		AuxVals: []float64{1, 2, 3, 4, 5, 6},
	}
}

// minImage leaves every optional section absent.
func minImage() *Image {
	img := fullImage()
	img.OrigRowPtr, img.OrigCol = nil, nil
	img.DAG = nil
	img.Meta, img.AuxVals = nil, nil
	return img
}

func encode(t *testing.T, img *Image) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, img); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name string
		img  *Image
	}{
		{"full", fullImage()},
		{"minimal", minImage()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got, err := Read(bytes.NewReader(encode(t, tc.img)))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, tc.img) {
				t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, tc.img)
			}
		})
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p.snap")
	img := fullImage()
	if err := WriteFile(path, img); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, img) {
		t.Fatal("file round trip mismatch")
	}
	if _, err := ReadFile(filepath.Join(t.TempDir(), "missing.snap")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing file: err = %v, want os.ErrNotExist", err)
	}
}

// TestTruncation cuts a valid encoding at every possible length: each
// prefix must be refused with an error, never decoded and never panic.
func TestTruncation(t *testing.T) {
	raw := encode(t, fullImage())
	for cut := 0; cut < len(raw); cut++ {
		if _, err := Read(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("truncation at %d of %d accepted", cut, len(raw))
		}
	}
}

// TestCorruption flips every byte in turn: any single-byte corruption
// must be refused (the CRC covers the payload; the header fields are
// each validated), never panic. Flips inside the 8-byte CRC field
// itself are also refused — the CRC then disagrees with the payload.
func TestCorruption(t *testing.T) {
	raw := encode(t, fullImage())
	for i := 0; i < len(raw); i++ {
		if (i >= 12 && i < 16) || (i >= 28 && i < 32) {
			continue // reserved header bytes, not semantically load-bearing
		}
		for _, bit := range []byte{0x01, 0x80} {
			mut := append([]byte(nil), raw...)
			mut[i] ^= bit
			if img, err := Read(bytes.NewReader(mut)); err == nil {
				t.Fatalf("corrupt byte %d (bit %#x) accepted: %+v", i, bit, img)
			}
		}
	}
}

func TestTrailingGarbage(t *testing.T) {
	raw := append(encode(t, fullImage()), 0xde, 0xad)
	// Trailing bytes beyond the framed payload are ignored by a stream
	// reader (payloadLen frames the image), but garbage INSIDE the frame
	// is not: extend the payload without fixing the header.
	if _, err := Read(bytes.NewReader(raw)); err != nil {
		t.Fatalf("framed read with trailing stream bytes: %v", err)
	}
}

func TestVersionSkew(t *testing.T) {
	raw := encode(t, fullImage())
	raw[8] = 0xff // formatVersion little-endian low byte
	if _, err := Read(bytes.NewReader(raw)); !errors.Is(err, ErrVersion) {
		t.Fatalf("future version: err = %v, want ErrVersion", err)
	}
}

func TestBadMagic(t *testing.T) {
	raw := encode(t, fullImage())
	raw[0] = 'X'
	if _, err := Read(bytes.NewReader(raw)); !errors.Is(err, ErrInvalid) {
		t.Fatalf("bad magic: err = %v, want ErrInvalid", err)
	}
}

// TestHugeCountRefused forges a section count far past the payload: the
// decoder must refuse before allocating, not OOM or panic.
func TestHugeCountRefused(t *testing.T) {
	img := minImage()
	raw := encode(t, img)
	// The first section after the fixed meta block is Perm's count
	// (u64). Overwrite it with a huge value and re-stamp the CRC so only
	// the count check can refuse it.
	payload := raw[headerSize:]
	off := 24 // method+numPacks int32 ×2, n u64, valueVersion u64
	for i := 0; i < 8; i++ {
		payload[off+i] = 0xff
	}
	restamp(raw)
	if _, err := Read(bytes.NewReader(raw)); !errors.Is(err, ErrInvalid) {
		t.Fatalf("huge count: err = %v, want ErrInvalid", err)
	}
}

// restamp recomputes the header CRC over a mutated payload.
func restamp(raw []byte) {
	c := crc32.Checksum(raw[headerSize:], crcTable)
	binary.LittleEndian.PutUint32(raw[24:28], c)
}
