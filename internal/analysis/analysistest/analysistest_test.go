package analysistest_test

import (
	"go/ast"
	"testing"

	"stsk/internal/analysis/analysistest"
	"stsk/internal/analysis/framework"
)

// makecall flags every call to the make builtin — just enough analyzer
// to exercise the harness itself: want matching on single and doubled
// expectations, and diagnostics spread across files of one package.
var makecall = &framework.Analyzer{
	Name: "makecall",
	Doc:  "report every make call",
	Run: func(pass *framework.Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "make" {
					pass.Reportf(call.Pos(), "make call (of %d args)", len(call.Args))
				}
				return true
			})
		}
		return nil
	},
}

func TestRun(t *testing.T) {
	analysistest.Run(t, "testdata", makecall, "fixture")
}
