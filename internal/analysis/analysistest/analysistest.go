// Package analysistest runs an Analyzer over testdata packages and checks
// its diagnostics against `// want "regexp"` comment expectations — the
// same convention as golang.org/x/tools' analysistest, implemented on the
// in-repo framework so the suite tests itself offline.
//
// Layout: each analyzer owns testdata/src/<pkg>/..., and Run(t, dir, a,
// "<pkg>") loads testdata/src as a GOPATH-style root. Every diagnostic
// must be matched by a want expectation on its line, and every want must
// be matched by a diagnostic.
package analysistest

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"stsk/internal/analysis/framework"
)

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)
var quotedRe = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

type want struct {
	file    string
	line    int
	rx      *regexp.Regexp
	matched bool
}

// Run loads each named package from dir/src and applies the analyzer,
// failing the test on any unmatched diagnostic or unsatisfied want.
func Run(t *testing.T, dir string, a *framework.Analyzer, pkgpaths ...string) {
	t.Helper()
	l := framework.NewLoader("", "", []string{dir + "/src"}, true)
	for _, pkgpath := range pkgpaths {
		pkg, err := l.Load(pkgpath)
		if err != nil {
			t.Fatalf("loading %s: %v", pkgpath, err)
		}
		check(t, a, pkg)
	}
}

func check(t *testing.T, a *framework.Analyzer, pkg *framework.Package) {
	t.Helper()
	wants, err := collectWants(pkg)
	if err != nil {
		t.Fatal(err)
	}
	var diags []framework.Diagnostic
	pass := &framework.Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.TypesInfo,
		Report:    func(d framework.Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("%s: %v", a.Name, err)
	}
	framework.SortDiagnostics(pkg.Fset, diags)
	for _, d := range diags {
		p := pkg.Fset.Position(d.Pos)
		if !matchWant(wants, p.Filename, p.Line, d.Message) {
			t.Errorf("%s:%d: unexpected diagnostic: %s", p.Filename, p.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.rx)
		}
	}
}

func collectWants(pkg *framework.Package) ([]*want, error) {
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Slash)
				for _, q := range quotedRe.FindAllString(m[1], -1) {
					s, err := strconv.Unquote(q)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want %s: %v", pos.Filename, pos.Line, q, err)
					}
					rx, err := regexp.Compile(s)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, s, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, rx: rx})
				}
			}
		}
	}
	return wants, nil
}

func matchWant(wants []*want, file string, line int, msg string) bool {
	for _, w := range wants {
		if !w.matched && w.line == line && sameFile(w.file, file) && w.rx.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

func sameFile(a, b string) bool {
	return a == b || strings.HasSuffix(a, b) || strings.HasSuffix(b, a)
}
