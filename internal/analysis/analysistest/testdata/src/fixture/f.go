// Package fixture feeds the harness's own test: the makecall analyzer
// must match every want here and nothing else.
package fixture

func alloc(n int) ([]int, map[string]int) {
	s := make([]int, n)                   // want "make call \\(of 2 args\\)"
	m := make(map[string]int, n)          // want "make call"
	_, _ = make([]int, 0), make([]int, 1) // want "make call" "make call"
	return s, m
}

func noAlloc(s []int) int { return len(s) }
