package errwrap_test

import (
	"testing"

	"stsk/internal/analysis/analysistest"
	"stsk/internal/analysis/errwrap"
)

func TestErrwrap(t *testing.T) {
	analysistest.Run(t, "testdata", errwrap.Analyzer, "errwrap")
}
