package errwrap

// errwrap runs on test files too — that is where == comparisons creep in.
func assertClosed(err error) bool {
	return err == ErrClosed // want "sentinel comparison with ==: use errors.Is\\(err, ErrClosed\\)"
}
