// Package errwrap is the analyzer's fixture: sentinel misuse one rule at
// a time, next to the errors.Is/%w shapes that pass.
package errwrap

import (
	"errors"
	"fmt"
)

var ErrClosed = errors.New("errwrap: closed")

var ErrDraining = errors.New("errwrap: draining")

func compare(err error) bool {
	if err == ErrClosed { // want "sentinel comparison with ==: use errors.Is\\(err, ErrClosed\\)"
		return true
	}
	if ErrDraining != err { // want "sentinel comparison with !=: use errors.Is\\(err, ErrDraining\\)"
		return false
	}
	return errors.Is(err, ErrClosed)
}

func compareLocal(err error) bool {
	local := errors.New("scoped")
	return err == local // a local is not a sentinel; == is the only identity it has
}

func sw(err error) int {
	switch err {
	case ErrClosed: // want "sentinel in a switch case: use errors.Is\\(err, ErrClosed\\)"
		return 1
	case nil:
		return 0
	}
	switch n := len("x"); n {
	case 1:
		return n
	}
	return 2
}

func wrap(n int) error {
	return fmt.Errorf("op %d: %v", n, ErrClosed) // want "sentinel ErrClosed formatted without %w"
}

func wrapOK(n int) error {
	return fmt.Errorf("op %d: %w", n, ErrClosed)
}
