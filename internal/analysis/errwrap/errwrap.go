// Package errwrap enforces the sentinel-error contract: errors crossing a
// package boundary wrap their sentinel with %w so errors.Is matches at
// any layer, and sentinel comparisons go through errors.Is — never ==/!=,
// which breaks the moment any layer adds wrapping detail.
//
// Rules (test files included — tests are where == comparisons creep in):
//
//  1. `err == ErrX` / `err != ErrX`, where ErrX is a package-level error
//     variable, must be errors.Is(err, ErrX).
//  2. `switch err { case ErrX: }` likewise.
//  3. fmt.Errorf with a sentinel argument must use the %w verb.
package errwrap

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"stsk/internal/analysis/framework"
)

var Analyzer = &framework.Analyzer{
	Name: "errwrap",
	Doc:  "require errors.Is for sentinel comparisons and %w for sentinel wrapping",
	Run:  run,
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				checkCompare(pass, n)
			case *ast.SwitchStmt:
				checkSwitch(pass, n)
			case *ast.CallExpr:
				checkErrorf(pass, n)
			}
			return true
		})
	}
	return nil
}

func checkCompare(pass *framework.Pass, b *ast.BinaryExpr) {
	if b.Op != token.EQL && b.Op != token.NEQ {
		return
	}
	var sentinel types.Object
	if s := sentinelOf(pass, b.X); s != nil {
		sentinel = s
	} else if s := sentinelOf(pass, b.Y); s != nil {
		sentinel = s
	}
	if sentinel == nil {
		return
	}
	pass.Reportf(b.Pos(), "sentinel comparison with %s: use errors.Is(err, %s)", b.Op, sentinel.Name())
}

func checkSwitch(pass *framework.Pass, sw *ast.SwitchStmt) {
	if sw.Tag == nil || !isErrorType(pass.TypesInfo.Types[sw.Tag].Type) {
		return
	}
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			if s := sentinelOf(pass, e); s != nil {
				pass.Reportf(e.Pos(), "sentinel in a switch case: use errors.Is(err, %s)", s.Name())
			}
		}
	}
}

func checkErrorf(pass *framework.Pass, call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Errorf" {
		return
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "fmt" {
		return
	}
	if len(call.Args) < 2 {
		return
	}
	format, ok := constantString(pass, call.Args[0])
	if !ok || strings.Contains(format, "%w") {
		return
	}
	for _, arg := range call.Args[1:] {
		if s := sentinelOf(pass, arg); s != nil {
			pass.Reportf(arg.Pos(), "sentinel %s formatted without %%w: wrapping detail would break errors.Is", s.Name())
		}
	}
}

func constantString(pass *framework.Pass, e ast.Expr) (string, bool) {
	tv := pass.TypesInfo.Types[e]
	if tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// sentinelOf resolves e to a package-level variable of type error, the
// shape of every sentinel in the repo (ErrClosed, ErrDimension, ...).
func sentinelOf(pass *framework.Pass, e ast.Expr) types.Object {
	var id *ast.Ident
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	obj := pass.TypesInfo.Uses[id]
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil {
		return nil
	}
	if v.Parent() != v.Pkg().Scope() {
		return nil // not package-level
	}
	if !isErrorType(v.Type()) {
		return nil
	}
	return v
}

func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Identical(t, types.Universe.Lookup("error").Type())
}
