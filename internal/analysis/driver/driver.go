// Package driver runs the full stslint analyzer suite over a package
// pattern — the engine behind cmd/stslint, kept importable so the suite's
// end-to-end behaviour is testable (and counted in coverage) without
// shelling out.
package driver

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"stsk/internal/analysis/ctxflow"
	"stsk/internal/analysis/epochpin"
	"stsk/internal/analysis/errwrap"
	"stsk/internal/analysis/framework"
	"stsk/internal/analysis/noalloc"
	"stsk/internal/analysis/recoverguard"
)

// Analyzers is the invariant suite, in reporting order.
var Analyzers = []*framework.Analyzer{
	noalloc.Analyzer,
	epochpin.Analyzer,
	ctxflow.Analyzer,
	errwrap.Analyzer,
	recoverguard.Analyzer,
}

// A Finding is one diagnostic, position pre-rendered.
type Finding struct {
	Analyzer string
	Pos      string // file:line:col, file relative to the module root
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Analyzer, f.Message)
}

// Options configures one run.
type Options struct {
	// Dir is any directory inside the module (the module root is found by
	// walking up to go.mod).
	Dir string

	// Patterns are package patterns relative to the module root
	// (defaults to ./...).
	Patterns []string

	// IncludeTests adds _test.go files to the run (errwrap's sentinel
	// findings live mostly in tests). Default true in cmd/stslint.
	IncludeTests bool
}

// Run executes every analyzer over every package matched by the patterns
// and returns the sorted findings.
func Run(opts Options) ([]Finding, error) {
	modDir, modPath, err := findModule(opts.Dir)
	if err != nil {
		return nil, err
	}
	patterns := opts.Patterns
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	l := framework.NewLoader(modDir, modPath, nil, opts.IncludeTests)
	paths, err := l.Expand(patterns)
	if err != nil {
		return nil, err
	}
	var findings []Finding
	for _, path := range paths {
		units := make([]*framework.Package, 0, 2)
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		units = append(units, pkg)
		if opts.IncludeTests {
			xt, err := l.LoadXTest(path)
			if err != nil {
				return nil, err
			}
			if xt != nil {
				units = append(units, xt)
			}
		}
		for _, unit := range units {
			fs, err := analyze(modDir, unit)
			if err != nil {
				return nil, err
			}
			findings = append(findings, fs...)
		}
	}
	return findings, nil
}

func analyze(modDir string, pkg *framework.Package) ([]Finding, error) {
	var findings []Finding
	for _, a := range Analyzers {
		var diags []framework.Diagnostic
		pass := &framework.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			Report:    func(d framework.Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.PkgPath, err)
		}
		framework.SortDiagnostics(pkg.Fset, diags)
		for _, d := range diags {
			p := pkg.Fset.Position(d.Pos)
			file := p.Filename
			if rel, err := filepath.Rel(modDir, file); err == nil && !strings.HasPrefix(rel, "..") {
				file = rel
			}
			findings = append(findings, Finding{
				Analyzer: a.Name,
				Pos:      fmt.Sprintf("%s:%d:%d", file, p.Line, p.Column),
				Message:  d.Message,
			})
		}
	}
	return findings, nil
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module directory and path.
func findModule(dir string) (modDir, modPath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		gomod := filepath.Join(dir, "go.mod")
		if _, err := os.Stat(gomod); err == nil {
			path, err := modulePath(gomod)
			if err != nil {
				return "", "", err
			}
			return dir, path, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("driver: no go.mod above %s", dir)
		}
		dir = parent
	}
}

func modulePath(gomod string) (string, error) {
	f, err := os.Open(gomod)
	if err != nil {
		return "", err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("driver: no module directive in %s", gomod)
}
