package driver_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"stsk/internal/analysis/driver"
)

// writeModule lays out a throwaway module under a temp dir.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const goMod = "module lintfixture\n\ngo 1.22\n"

func TestRunReportsSeededViolations(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": goMod,
		// A library package seeded with one violation per analyzer.
		"lib/lib.go": `package lib

import (
	"context"
	"errors"
)

var ErrGone = errors.New("lib: gone")

//stsk:noalloc
func Kernel(n int) []float64 {
	return make([]float64, n)
}

type Values struct{ v int }

func (v *Values) Current() int { return v.v }

func Poll(v *Values, n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += v.Current()
	}
	return s
}

func Root() context.Context {
	return context.Background()
}
`,
		"lib/lib_test.go": `package lib

func closed(err error) bool {
	return err == ErrGone
}
`,
	})

	findings, err := driver.Run(driver.Options{Dir: dir, IncludeTests: true})
	if err != nil {
		t.Fatal(err)
	}
	byAnalyzer := make(map[string][]string)
	for _, f := range findings {
		byAnalyzer[f.Analyzer] = append(byAnalyzer[f.Analyzer], f.String())
	}
	wants := map[string]struct{ pos, msg string }{
		"noalloc":  {"lib/lib.go:12", "make allocates"},
		"epochpin": {"lib/lib.go:22", "epoch load inside a loop"},
		"ctxflow":  {"lib/lib.go:28", "context.Background in a library package"},
		"errwrap":  {"lib/lib_test.go:4", "use errors.Is(err, ErrGone)"},
	}
	for name, want := range wants {
		got := byAnalyzer[name]
		if len(got) != 1 {
			t.Errorf("%s: got %d findings %v, want 1", name, len(got), got)
			continue
		}
		if !strings.Contains(got[0], want.pos) || !strings.Contains(got[0], want.msg) {
			t.Errorf("%s: finding %q, want position %q and message %q", name, got[0], want.pos, want.msg)
		}
	}
	if len(findings) != len(wants) {
		t.Errorf("total findings = %d, want %d: %v", len(findings), len(wants), findings)
	}
}

func TestRunCleanModule(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": goMod,
		"lib/lib.go": `package lib

import (
	"context"
	"errors"
)

var ErrGone = errors.New("lib: gone")

//stsk:noalloc
func Kernel(x, b []float64) {
	for i := range x {
		x[i] = b[i] * 2
	}
}

func Closed(err error) bool {
	return errors.Is(err, ErrGone)
}

//stsk:allow-background (non-context convenience wrapper)
func Root() context.Context {
	return context.Background()
}
`,
	})

	findings, err := driver.Run(driver.Options{Dir: dir, IncludeTests: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("clean module produced findings: %v", findings)
	}
}

func TestRunFindsModuleFromSubdir(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": goMod,
		"lib/lib.go": `package lib

//stsk:noalloc
func Kernel(n int) []int { return make([]int, n) }
`,
	})

	// Start from inside lib; the driver walks up to go.mod and renders
	// positions relative to the module root.
	findings, err := driver.Run(driver.Options{
		Dir:      filepath.Join(dir, "lib"),
		Patterns: []string{"./..."},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 || !strings.HasPrefix(findings[0].Pos, "lib/lib.go:") {
		t.Fatalf("findings = %v, want one at lib/lib.go", findings)
	}
}

func TestRunNoModule(t *testing.T) {
	if _, err := driver.Run(driver.Options{Dir: t.TempDir()}); err == nil {
		t.Fatal("expected an error outside any module")
	}
}
