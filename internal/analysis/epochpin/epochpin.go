// Package epochpin enforces the copy-on-write value-epoch discipline of
// the solve layer: every dispatch pins the current epoch exactly once and
// threads that snapshot through the whole sweep, so a numeric
// refactorization (Values.Swap) can never tear an in-flight solve — each
// solve is entirely old-epoch or entirely new-epoch.
//
// Statically that means, per function: at most one epoch load (a call to
// Values.Current/Structure/Version or to the underlying `cur` atomic's
// Load), never inside a loop, and never after a dispatch (a submit/
// submitCtx call or a channel send) — a load after dispatch could observe
// a different epoch than the work already in flight. Function literals
// are independent scopes. Streams that deliberately re-pin per dispatched
// element annotate the load with `//stsk:allow-epoch-repin`. Test files
// are exempt (they poll epochs in loops on purpose).
package epochpin

import (
	"go/ast"
	"go/token"
	"go/types"

	"stsk/internal/analysis/framework"
)

var Analyzer = &framework.Analyzer{
	Name: "epochpin",
	Doc:  "enforce one epoch load per function, outside loops, before dispatch",
	Run:  run,
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		lines := framework.DirectiveLines(pass.Fset, f)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if framework.HasFuncDirective(fd, framework.DirAllowEpochRepin) {
				continue
			}
			checkScope(pass, lines, fd.Body)
		}
	}
	return nil
}

// scope accumulates the epoch loads and dispatch points of one function
// body, excluding nested function literals (checked as their own scopes).
type scope struct {
	loads    []load
	dispatch token.Pos // earliest dispatch position, or NoPos
	inner    []*ast.FuncLit
}

type load struct {
	pos    token.Pos
	inLoop bool
}

func checkScope(pass *framework.Pass, lines map[int][]string, body ast.Node) {
	sc := collect(pass, body)
	reported := func(pos token.Pos) bool {
		return framework.AllowedAt(lines, pass.Fset, pos, framework.DirAllowEpochRepin)
	}
	for i, ld := range sc.loads {
		switch {
		case reported(ld.pos):
		case ld.inLoop:
			pass.Reportf(ld.pos, "epoch load inside a loop: pin the epoch once before the loop (//stsk:allow-epoch-repin to re-pin deliberately)")
		case i > 0:
			pass.Reportf(ld.pos, "second epoch load in one function: a solve must pin exactly one epoch")
		case sc.dispatch != token.NoPos && ld.pos > sc.dispatch:
			pass.Reportf(ld.pos, "epoch load after dispatch: the epoch must be pinned before work is submitted")
		}
	}
	for _, fl := range sc.inner {
		checkScope(pass, lines, fl.Body)
	}
}

func collect(pass *framework.Pass, body ast.Node) *scope {
	sc := &scope{dispatch: token.NoPos}
	var loopDepth int
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		switch n := n.(type) {
		case nil:
			return
		case *ast.FuncLit:
			sc.inner = append(sc.inner, n)
			return
		case *ast.ForStmt, *ast.RangeStmt:
			loopDepth++
			defer func() { loopDepth-- }()
		case *ast.SendStmt:
			if sc.dispatch == token.NoPos || n.Pos() < sc.dispatch {
				sc.dispatch = n.Pos()
			}
		case *ast.CallExpr:
			if isEpochLoad(pass, n) {
				sc.loads = append(sc.loads, load{pos: n.Pos(), inLoop: loopDepth > 0})
			} else if isDispatch(n) {
				if sc.dispatch == token.NoPos || n.Pos() < sc.dispatch {
					sc.dispatch = n.Pos()
				}
			}
		}
		// Recurse over children without entering nested scopes twice.
		ast.Inspect(n, func(child ast.Node) bool {
			if child == nil || child == n {
				return child == n
			}
			walk(child)
			return false
		})
	}
	walk(body)
	return sc
}

// isEpochLoad recognises the epoch accessors: a method call named
// Current, Structure or Version on a type named Values, or a Load on a
// field named cur of such a type (`v.cur.Load()`).
func isEpochLoad(pass *framework.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "Current", "Structure", "Version":
		return isValuesType(pass.TypesInfo.Types[sel.X].Type)
	case "Load":
		inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
		if !ok || inner.Sel.Name != "cur" {
			return false
		}
		return isValuesType(pass.TypesInfo.Types[inner.X].Type)
	}
	return false
}

func isValuesType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Values"
}

// isDispatch recognises the dispatch boundary: handing work to the pool
// via submit/submitCtx (channel sends are caught separately).
func isDispatch(call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		return fun.Sel.Name == "submit" || fun.Sel.Name == "submitCtx"
	case *ast.Ident:
		return fun.Name == "submit" || fun.Name == "submitCtx"
	}
	return false
}
