package epochpin

// Test files are exempt: tests poll epochs in loops on purpose (waiting
// for a Swap to become visible).
func pollUntil(v *Values, want int) {
	for v.Current().version != want {
	}
}
