// Package epochpin is the analyzer's fixture: a miniature of the solve
// layer's epoch holder (a Values type over a swappable snapshot) with the
// pin-once discipline violated one way per function.
package epochpin

type epoch struct{ version int }

type cell struct{ p *epoch }

func (c *cell) Load() *epoch { return c.p }

// Values mirrors internal/solve's copy-on-write epoch holder.
type Values struct{ cur cell }

func (v *Values) Current() *epoch { return v.cur.Load() }

func (v *Values) Structure() *epoch { return v.cur.Load() }

type engine struct{ jobs chan int }

func (e *engine) submit(j int) { e.jobs <- j }

// pinOnce is the discipline: one load, threaded everywhere.
func pinOnce(v *Values, n int) int {
	ep := v.Current()
	s := 0
	for i := 0; i < n; i++ {
		s += ep.version
	}
	return s
}

func loadInLoop(v *Values, n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += v.Current().version // want "epoch load inside a loop"
	}
	return s
}

func secondLoad(v *Values) int {
	a := v.Current()
	b := v.Structure() // want "second epoch load in one function"
	return a.version + b.version
}

func rawSecondLoad(v *Values) int {
	a := v.cur.Load()
	b := v.cur.Load() // want "second epoch load in one function"
	return a.version + b.version
}

func afterSubmit(v *Values, e *engine) int {
	e.submit(1)
	return v.Current().version // want "epoch load after dispatch"
}

func afterSend(v *Values, jobs chan int) int {
	jobs <- 1
	return v.Current().version // want "epoch load after dispatch"
}

// funcLitScopes: a literal is its own scope, so one load outside and one
// inside is two pins of two independent solves.
func funcLitScopes(v *Values) func() int {
	ep := v.Current()
	f := func() int {
		return v.Current().version + ep.version
	}
	return f
}

// repinLine re-pins per streamed element, annotated at the load.
func repinLine(v *Values, jobs chan int, n int) {
	for i := 0; i < n; i++ {
		//stsk:allow-epoch-repin
		jobs <- v.Current().version
	}
}

// repinFunc opts a whole polling helper out via its doc comment.
//
//stsk:allow-epoch-repin
func repinFunc(v *Values, n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += v.Current().version
	}
	return s
}
