package epochpin_test

import (
	"testing"

	"stsk/internal/analysis/analysistest"
	"stsk/internal/analysis/epochpin"
)

func TestEpochpin(t *testing.T) {
	analysistest.Run(t, "testdata", epochpin.Analyzer, "epochpin")
}
