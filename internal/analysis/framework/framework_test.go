package framework

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const directiveSrc = `package p

// helper does things.
//
//stsk:noalloc
func helper() {
	//stsk:allow-background (rationale here)
	_ = 1
	_ = 2 //stsk:allow-epoch-repin
}

// plain has no directive.
func plain() {}
`

func parse(t *testing.T, src string) (*token.FileSet, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, f
}

func TestParseDirective(t *testing.T) {
	cases := []struct{ text, want string }{
		{"//stsk:noalloc", "noalloc"},
		{"//stsk:allow-background (panel isolation)", "allow-background"},
		{"//stsk:allow-epoch-repin\tper-element", "allow-epoch-repin"},
		{"// stsk:noalloc", ""}, // a space makes it prose, not a directive
		{"// ordinary comment", ""},
		{"//stsk:", ""},
	}
	for _, c := range cases {
		if got := parseDirective(c.text); got != c.want {
			t.Errorf("parseDirective(%q) = %q, want %q", c.text, got, c.want)
		}
	}
}

func TestDirectiveLinesAndAllowedAt(t *testing.T) {
	fset, f := parse(t, directiveSrc)
	lines := DirectiveLines(fset, f)
	if len(lines) != 3 {
		t.Fatalf("DirectiveLines = %v, want 3 entries", lines)
	}

	// Find the two statements of helper's body.
	var fd *ast.FuncDecl
	for _, d := range f.Decls {
		if x, ok := d.(*ast.FuncDecl); ok && x.Name.Name == "helper" {
			fd = x
		}
	}
	first, second := fd.Body.List[0], fd.Body.List[1]
	if !AllowedAt(lines, fset, first.Pos(), DirAllowBackground) {
		t.Error("line-above directive not recognised")
	}
	if !AllowedAt(lines, fset, second.Pos(), DirAllowEpochRepin) {
		t.Error("same-line directive not recognised")
	}
	if AllowedAt(lines, fset, second.Pos(), DirAllowBackground) {
		t.Error("directive leaked to an unrelated line")
	}

	if !HasFuncDirective(fd, DirNoalloc) {
		t.Error("doc-comment directive not recognised")
	}
	if HasFuncDirective(fd, DirAllowCtxField) {
		t.Error("wrong doc directive matched")
	}
	for _, d := range f.Decls {
		if x, ok := d.(*ast.FuncDecl); ok && x.Name.Name == "plain" {
			if HasFuncDirective(x, DirNoalloc) {
				t.Error("directive found on an unannotated function")
			}
		}
	}
}

func TestWithStack(t *testing.T) {
	_, f := parse(t, "package p\n\nfunc g() { _ = &struct{ n int }{} }\n")
	sawLitWithUnaryParent := false
	WithStack(f, func(n ast.Node, stack []ast.Node) {
		if _, ok := n.(*ast.CompositeLit); !ok {
			return
		}
		if len(stack) == 0 {
			t.Fatal("composite literal with empty stack")
		}
		if u, ok := stack[len(stack)-1].(*ast.UnaryExpr); ok && u.X == n {
			sawLitWithUnaryParent = true
		}
		if _, ok := stack[0].(*ast.File); !ok {
			t.Error("stack bottom is not the file")
		}
	})
	if !sawLitWithUnaryParent {
		t.Error("WithStack never presented the literal with its & parent")
	}
}

func TestSortDiagnostics(t *testing.T) {
	fset, f := parse(t, directiveSrc)
	end, start := f.End(), f.Pos()
	diags := []Diagnostic{{Pos: end, Message: "b"}, {Pos: start, Message: "a"}}
	SortDiagnostics(fset, diags)
	if diags[0].Message != "a" || diags[1].Message != "b" {
		t.Fatalf("diagnostics not position-sorted: %v", diags)
	}
}

// writeTree lays a GOPATH-style src tree under a temp dir and returns it.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestLoaderLoad(t *testing.T) {
	src := writeTree(t, map[string]string{
		"fix/a.go":      "package fix\n\nimport \"strings\"\n\nfunc Upper(s string) string { return strings.ToUpper(s) }\n",
		"fix/a_test.go": "package fix\n\nvar inPackageTest = Upper(\"x\")\n",
		"fix/x_test.go": "package fix_test\n\nimport \"fix\"\n\nvar external = fix.Upper(\"y\")\n",
		// Excluded by build constraints and by name, respectively.
		"fix/tagged.go": "//go:build neverbuildme\n\npackage fix\n\nfunc Excluded() {}\n",
		"fix/_skip.go":  "package fix\n\nfunc AlsoExcluded() {}\n",
		"fix/sub/b.go":  "package sub\n\nimport \"fix\"\n\nvar V = fix.Upper(\"z\")\n",
	})

	l := NewLoader("", "", []string{src}, true)
	pkg, err := l.Load("fix")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkg.Files) != 2 {
		t.Fatalf("loaded %d files, want a.go + a_test.go", len(pkg.Files))
	}
	if pkg.Types.Scope().Lookup("Excluded") != nil {
		t.Error("build-constrained file leaked into the package")
	}
	if pkg.Types.Scope().Lookup("inPackageTest") == nil {
		t.Error("in-package test file missing with IncludeTests")
	}
	if again, _ := l.Load("fix"); again != pkg {
		t.Error("Load is not cached")
	}

	xt, err := l.LoadXTest("fix")
	if err != nil {
		t.Fatal(err)
	}
	if xt == nil || xt.PkgPath != "fix [test]" {
		t.Fatalf("LoadXTest = %+v, want the fix_test unit", xt)
	}

	// Our-package imports resolve through the loader itself.
	if _, err := l.Load("fix/sub"); err != nil {
		t.Fatal(err)
	}

	if _, err := l.Load("no/such/pkg"); err == nil {
		t.Error("loading a nonexistent package succeeded")
	}

	// Without IncludeTests, test files vanish and LoadXTest is nil.
	l2 := NewLoader("", "", []string{src}, false)
	pkg2, err := l2.Load("fix")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkg2.Files) != 1 {
		t.Fatalf("loaded %d files without tests, want 1", len(pkg2.Files))
	}
	if xt2, err := l2.LoadXTest("fix"); err != nil || xt2 != nil {
		t.Errorf("LoadXTest without IncludeTests = (%v, %v), want (nil, nil)", xt2, err)
	}
}

func TestLoaderImportCycle(t *testing.T) {
	src := writeTree(t, map[string]string{
		"a/a.go": "package a\n\nimport \"b\"\n\nvar V = b.V\n",
		"b/b.go": "package b\n\nimport \"a\"\n\nvar V = a.V\n",
	})
	l := NewLoader("", "", []string{src}, false)
	if _, err := l.Load("a"); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("err = %v, want an import cycle error", err)
	}
}

func TestLoaderModuleModeAndExpand(t *testing.T) {
	mod := writeTree(t, map[string]string{
		"root.go":         "package root\n",
		"inner/c.go":      "package inner\n\nimport \"example.com/m/inner/deep\"\n\nvar V = deep.V\n",
		"inner/deep/d.go": "package deep\n\nvar V = 1\n",
		// Skipped by Expand: testdata, hidden, underscore, no Go files.
		"inner/testdata/t.go": "package t\n",
		".hidden/h.go":        "package h\n",
		"_tools/u.go":         "package u\n",
		"empty/README":        "no go here\n",
	})
	l := NewLoader(mod, "example.com/m", nil, false)

	paths, err := l.Expand([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"example.com/m", "example.com/m/inner", "example.com/m/inner/deep"}
	if len(paths) != len(want) {
		t.Fatalf("Expand = %v, want %v", paths, want)
	}
	for i := range want {
		if paths[i] != want[i] {
			t.Fatalf("Expand = %v, want %v", paths, want)
		}
	}

	// Module-internal imports resolve through the module mapping.
	if _, err := l.Load("example.com/m/inner"); err != nil {
		t.Fatal(err)
	}

	single, err := l.Expand([]string{"./inner"})
	if err != nil || len(single) != 1 || single[0] != "example.com/m/inner" {
		t.Fatalf("Expand(./inner) = (%v, %v)", single, err)
	}
	if _, err := l.Expand([]string{"./empty"}); err == nil {
		t.Error("expanding a Go-less directory succeeded")
	}
}
