package framework

import (
	"go/ast"
	"go/token"
	"strings"
)

// Annotation directives recognised by the invariant suite. A directive is
// a comment of the form `//stsk:<name>`, optionally followed by a space
// and free-form rationale. Function-level directives live in the
// function's doc comment; statement- and field-level directives sit on
// the same line as the construct or on the line immediately above it.
const (
	// DirNoalloc marks a function whose body must contain no allocating
	// constructs (checked by the noalloc analyzer).
	DirNoalloc = "noalloc"

	// DirAllowBackground permits a context.Background()/TODO() call in a
	// library package (checked by the ctxflow analyzer). Reserved for
	// documented non-context convenience wrappers and the coalescer's
	// panel-isolation sites.
	DirAllowBackground = "allow-background"

	// DirAllowCtxField permits a context.Context struct field (ctxflow).
	// Reserved for request-scoped values travelling through a queue.
	DirAllowCtxField = "allow-ctx-field"

	// DirAllowEpochRepin permits an epoch load inside a loop or a second
	// load in one function (epochpin). Reserved for streams that
	// deliberately pin a fresh epoch per dispatched element.
	DirAllowEpochRepin = "allow-epoch-repin"

	// DirAllowBareGo permits a go statement whose goroutine has no
	// panic-capturing recover (recoverguard). Reserved for bounded
	// build-time fan-outs whose panics must surface to the caller's test
	// or build step rather than be contained.
	DirAllowBareGo = "allow-bare-go"
)

const directivePrefix = "//stsk:"

// parseDirective extracts the directive name from one comment line, or ""
// if the comment is not an stsk directive.
func parseDirective(text string) string {
	if !strings.HasPrefix(text, directivePrefix) {
		return ""
	}
	rest := text[len(directivePrefix):]
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		rest = rest[:i]
	}
	return rest
}

// DirectiveLines indexes every stsk directive of a file by the line it
// appears on. Analyzers consult it through AllowedAt.
func DirectiveLines(fset *token.FileSet, f *ast.File) map[int][]string {
	m := make(map[int][]string)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if d := parseDirective(c.Text); d != "" {
				line := fset.Position(c.Slash).Line
				m[line] = append(m[line], d)
			}
		}
	}
	return m
}

// AllowedAt reports whether directive name is attached to the construct
// at pos: on the same line, or on the line immediately above.
func AllowedAt(lines map[int][]string, fset *token.FileSet, pos token.Pos, name string) bool {
	l := fset.Position(pos).Line
	for _, d := range lines[l] {
		if d == name {
			return true
		}
	}
	for _, d := range lines[l-1] {
		if d == name {
			return true
		}
	}
	return false
}

// HasFuncDirective reports whether the function's doc comment carries the
// named directive.
func HasFuncDirective(fd *ast.FuncDecl, name string) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if parseDirective(c.Text) == name {
			return true
		}
	}
	return false
}
