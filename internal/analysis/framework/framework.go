// Package framework is a minimal, dependency-free mirror of the
// golang.org/x/tools go/analysis API: an Analyzer runs over one
// type-checked package (a Pass) and reports position-anchored
// Diagnostics. The repo's invariant suite (noalloc, epochpin, ctxflow,
// errwrap) is written against this surface, so the analyzers port to the
// real go/analysis framework mechanically if the x/tools dependency ever
// becomes available — the build environment is offline, so the framework
// itself is implemented here on the standard library's go/ast, go/types
// and go/importer alone.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and test expectations.
	Name string

	// Doc is the one-paragraph description shown by `stslint -help`.
	Doc string

	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// A Pass presents one type-checked package to an Analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. Analyzers normally use Reportf.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// InTestFile reports whether pos falls in a _test.go file. Hot-path
// analyzers (noalloc, epochpin, ctxflow) skip test files: the invariants
// guard production code, and tests legitimately allocate, poll epochs in
// loops, and use context.Background.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// A Diagnostic is one reported invariant violation.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// WithStack walks every node of f in depth-first order, calling fn with
// the node and the stack of its ancestors (outermost first, not including
// the node itself). It is the parent-aware counterpart of ast.Inspect
// that several analyzers need (e.g. "is this composite literal's address
// taken?").
func WithStack(f *ast.File, fn func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		fn(n, stack)
		stack = append(stack, n)
		return true
	})
}

// SortDiagnostics orders diagnostics by position for stable output.
func SortDiagnostics(fset *token.FileSet, diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
}
