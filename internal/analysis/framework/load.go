package framework

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one type-checked unit: a package's syntax trees plus the
// go/types objects the analyzers query. When the loader includes test
// files, in-package _test.go files are type-checked together with the
// package; external (package foo_test) files form their own unit.
type Package struct {
	// PkgPath is the import path ("stsk/internal/solve"), with " [test]"
	// appended for an external test unit.
	PkgPath string

	// Dir is the directory the files were loaded from.
	Dir string

	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// A Loader resolves import paths to type-checked packages without the
// go/packages machinery (the build environment is offline and the module
// has no dependencies): module-internal paths map onto the module
// directory, testdata-style GOPATH roots are consulted first, and
// everything else falls back to the standard library's source importer.
// Results are cached, so a ./... run type-checks each package once.
type Loader struct {
	Fset *token.FileSet

	// ModPath/ModDir map module-internal import paths onto directories.
	// Empty ModPath disables module mapping (analysistest mode).
	ModPath string
	ModDir  string

	// SrcDirs are GOPATH-style source roots (testdata/src) consulted
	// before the module mapping, so test fixtures shadow nothing real.
	SrcDirs []string

	// IncludeTests adds in-package _test.go files to each loaded unit and
	// exposes external test packages via LoadXTest.
	IncludeTests bool

	std      types.Importer
	cache    map[string]*Package
	loading  map[string]bool
	buildCtx build.Context
}

// NewLoader returns a Loader over one module tree (modPath may be empty
// for pure GOPATH-style roots).
func NewLoader(modDir, modPath string, srcDirs []string, includeTests bool) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset:         fset,
		ModPath:      modPath,
		ModDir:       modDir,
		SrcDirs:      srcDirs,
		IncludeTests: includeTests,
		std:          importer.ForCompiler(fset, "source", nil),
		cache:        make(map[string]*Package),
		loading:      make(map[string]bool),
		buildCtx:     build.Default,
	}
}

// dirFor maps an import path to the directory holding its source, or
// ok=false if the path is not ours (i.e. standard library).
func (l *Loader) dirFor(path string) (string, bool) {
	for _, root := range l.SrcDirs {
		dir := filepath.Join(root, filepath.FromSlash(path))
		if hasGoFiles(dir) {
			return dir, true
		}
	}
	if l.ModPath != "" {
		if path == l.ModPath {
			return l.ModDir, true
		}
		if rest, ok := strings.CutPrefix(path, l.ModPath+"/"); ok {
			return filepath.Join(l.ModDir, filepath.FromSlash(rest)), true
		}
	}
	return "", false
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}

// dirFiles lists dir's buildable Go files under the default build
// constraints, split into the primary package's non-test files, its
// in-package test files, and external (package name_test) test files.
func (l *Loader) dirFiles(dir string) (primary, inTest, xTest []string, err error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	type f struct {
		name, pkg string
		test      bool
	}
	var files []f
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		ok, err := l.buildCtx.MatchFile(dir, name)
		if err != nil || !ok {
			continue // unmatched build constraints (e.g. //go:build race)
		}
		src, err := parser.ParseFile(token.NewFileSet(), filepath.Join(dir, name), nil, parser.PackageClauseOnly)
		if err != nil {
			return nil, nil, nil, err
		}
		files = append(files, f{name, src.Name.Name, strings.HasSuffix(name, "_test.go")})
	}
	base := ""
	for _, fi := range files {
		if !fi.test {
			base = fi.pkg
			break
		}
	}
	for _, fi := range files {
		switch {
		case !fi.test:
			primary = append(primary, fi.name)
		case base != "" && fi.pkg == base+"_test":
			xTest = append(xTest, fi.name)
		default:
			inTest = append(inTest, fi.name)
		}
	}
	sort.Strings(primary)
	sort.Strings(inTest)
	sort.Strings(xTest)
	return primary, inTest, xTest, nil
}

// Load type-checks the package at the import path (with its in-package
// test files when IncludeTests is set), loading dependencies recursively.
func (l *Loader) Load(path string) (*Package, error) {
	if p, ok := l.cache[path]; ok {
		return p, nil
	}
	dir, ok := l.dirFor(path)
	if !ok {
		return nil, fmt.Errorf("framework: %s is not a module or testdata package", path)
	}
	if l.loading[path] {
		return nil, fmt.Errorf("framework: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	primary, inTest, _, err := l.dirFiles(dir)
	if err != nil {
		return nil, err
	}
	names := primary
	if l.IncludeTests {
		names = append(append([]string{}, primary...), inTest...)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("framework: no buildable Go files in %s", dir)
	}
	pkg, err := l.typeCheck(path, dir, names)
	if err != nil {
		return nil, err
	}
	l.cache[path] = pkg
	return pkg, nil
}

// LoadXTest type-checks the external test package (package name_test) of
// the import path, or returns (nil, nil) when the directory has none.
// Only meaningful with IncludeTests.
func (l *Loader) LoadXTest(path string) (*Package, error) {
	key := path + " [test]"
	if p, ok := l.cache[key]; ok {
		return p, nil
	}
	dir, ok := l.dirFor(path)
	if !ok {
		return nil, fmt.Errorf("framework: %s is not a module or testdata package", path)
	}
	_, _, xTest, err := l.dirFiles(dir)
	if err != nil {
		return nil, err
	}
	if !l.IncludeTests || len(xTest) == 0 {
		return nil, nil
	}
	if _, err := l.Load(path); err != nil {
		return nil, err // the unit under test must check before its tests
	}
	pkg, err := l.typeCheck(key, dir, xTest)
	if err != nil {
		return nil, err
	}
	l.cache[key] = pkg
	return pkg, nil
}

func (l *Loader) typeCheck(path, dir string, names []string) (*Package, error) {
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: (*loaderImporter)(l)}
	tpkg, err := conf.Check(strings.TrimSuffix(path, " [test]"), l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("framework: type-checking %s: %w", path, err)
	}
	return &Package{PkgPath: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, TypesInfo: info}, nil
}

// loaderImporter adapts the Loader to go/types: our packages resolve
// through the cache, everything else through the source importer.
type loaderImporter Loader

func (im *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(im)
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if _, ok := l.dirFor(path); ok {
		p, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// Expand resolves package patterns against the module tree: "./..."
// walks recursively (skipping testdata, hidden and underscore
// directories), anything else is a single directory relative to the
// module root. Returned paths are sorted import paths of directories
// that contain buildable Go files.
func (l *Loader) Expand(patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var out []string
	add := func(path string) {
		if !seen[path] {
			seen[path] = true
			out = append(out, path)
		}
	}
	for _, pat := range patterns {
		pat = strings.TrimSuffix(pat, "/")
		recursive := false
		if strings.HasSuffix(pat, "/...") {
			recursive = true
			pat = strings.TrimSuffix(pat, "/...")
		} else if pat == "..." {
			recursive = true
			pat = "."
		}
		rel := strings.TrimPrefix(pat, "./")
		if rel == "." {
			rel = ""
		}
		root := filepath.Join(l.ModDir, filepath.FromSlash(rel))
		if !recursive {
			if !hasGoFiles(root) {
				return nil, fmt.Errorf("framework: no Go files in %s", root)
			}
			add(l.pathFor(root))
			continue
		}
		err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if l.loadable(p) {
				add(l.pathFor(p))
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(out)
	return out, nil
}

// loadable reports whether dir yields at least one unit under the current
// settings (a primary package, or — with IncludeTests — any test files).
func (l *Loader) loadable(dir string) bool {
	primary, inTest, xTest, err := l.dirFiles(dir)
	if err != nil {
		return false
	}
	if len(primary) > 0 {
		return true
	}
	return l.IncludeTests && (len(inTest) > 0 || len(xTest) > 0)
}

func (l *Loader) pathFor(dir string) string {
	rel, err := filepath.Rel(l.ModDir, dir)
	if err != nil || rel == "." {
		return l.ModPath
	}
	return l.ModPath + "/" + filepath.ToSlash(rel)
}
