package recoverguard_test

import (
	"testing"

	"stsk/internal/analysis/analysistest"
	"stsk/internal/analysis/recoverguard"
)

func TestRecoverguard(t *testing.T) {
	analysistest.Run(t, "testdata", recoverguard.Analyzer, "recoverguard", "recoverguard/mainpkg")
}
