// Package recoverguard enforces the panic-containment discipline of the
// long-running packages: a goroutine launched by a library must not be
// able to take the process down, so every `go` statement has to route
// through a panic-capturing boundary.
//
// A go statement is accepted when (library packages only — package main
// is exempt, as are test files):
//
//  1. It launches a function literal that installs a panic-capturing
//     defer: a deferred function literal whose body calls recover(), or
//     a deferred call into the panicsafe package.
//  2. It launches a same-package named function or method whose body
//     installs such a defer (e.g. the engine's workerLoop).
//  3. It launches a function from the panicsafe package itself.
//  4. It is annotated `//stsk:allow-bare-go` — reserved for bounded
//     build-time fan-outs (graph coloring, SpMV workers) whose panics
//     must surface to the caller rather than be contained.
//
// Everything else is a diagnostic: the goroutine would crash the daemon
// on the first kernel or plumbing panic it meets.
package recoverguard

import (
	"go/ast"
	"go/types"
	"strings"

	"stsk/internal/analysis/framework"
)

var Analyzer = &framework.Analyzer{
	Name: "recoverguard",
	Doc:  "every library go statement must launch through a panic-capturing wrapper (//stsk:allow-bare-go to opt out)",
	Run:  run,
}

func run(pass *framework.Pass) error {
	if pass.Pkg.Name() == "main" {
		return nil
	}
	// Index the package's own function declarations so rule 2 can look a
	// launched callee's body up by its types object.
	decls := make(map[types.Object]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
					decls[obj] = fd
				}
			}
		}
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		lines := framework.DirectiveLines(pass.Fset, f)
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if framework.AllowedAt(lines, pass.Fset, g.Pos(), framework.DirAllowBareGo) {
				return true
			}
			if guardedLaunch(pass, decls, g.Call) {
				return true
			}
			pass.Reportf(g.Pos(), "go statement without a panic-capturing wrapper: launch via panicsafe, install a deferred recover, or annotate //stsk:allow-bare-go")
			return true
		})
	}
	return nil
}

// guardedLaunch reports whether the go statement's callee contains (or
// is) a panic-capturing boundary.
func guardedLaunch(pass *framework.Pass, decls map[types.Object]*ast.FuncDecl, call *ast.CallExpr) bool {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		return hasRecoverDefer(pass, fn.Body)
	case *ast.Ident:
		if obj := pass.TypesInfo.Uses[fn]; obj != nil {
			if fromPanicsafe(obj) {
				return true
			}
			if fd, ok := decls[obj]; ok {
				return hasRecoverDefer(pass, fd.Body)
			}
		}
	case *ast.SelectorExpr:
		if obj := pass.TypesInfo.Uses[fn.Sel]; obj != nil {
			if fromPanicsafe(obj) {
				return true
			}
			if fd, ok := decls[obj]; ok {
				return hasRecoverDefer(pass, fd.Body)
			}
		}
	}
	return false
}

// hasRecoverDefer reports whether the function body installs a
// panic-capturing defer at any nesting level of its own statements
// (nested function literals guard only themselves, so they are not
// descended into except as the deferred call's own callee).
func hasRecoverDefer(pass *framework.Pass, body *ast.BlockStmt) bool {
	guarded := false
	ast.Inspect(body, func(n ast.Node) bool {
		if guarded {
			return false
		}
		switch s := n.(type) {
		case *ast.FuncLit:
			return false // its defers protect it, not the launched goroutine
		case *ast.DeferStmt:
			switch fun := ast.Unparen(s.Call.Fun).(type) {
			case *ast.FuncLit:
				if callsRecover(pass, fun.Body) {
					guarded = true
				}
			case *ast.SelectorExpr:
				if obj := pass.TypesInfo.Uses[fun.Sel]; obj != nil && fromPanicsafe(obj) {
					guarded = true
				}
			}
			return false
		}
		return true
	})
	return guarded
}

// callsRecover reports whether the deferred literal's body calls the
// recover builtin (directly, not inside a further nested literal).
func callsRecover(pass *framework.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if obj := pass.TypesInfo.Uses[id]; obj != nil {
				if b, ok := obj.(*types.Builtin); ok && b.Name() == "recover" {
					found = true
				}
			}
		}
		return true
	})
	return found
}

// fromPanicsafe reports whether the object lives in the panicsafe
// package (any module's copy — the fixture package is plain "panicsafe").
func fromPanicsafe(obj types.Object) bool {
	pkg := obj.Pkg()
	if pkg == nil {
		return false
	}
	return pkg.Path() == "panicsafe" || strings.HasSuffix(pkg.Path(), "/panicsafe")
}
