// Package panicsafe is the fixture's stand-in for the real wrapper
// package: launching through it, or deferring into it, is a recognised
// panic-capturing boundary.
package panicsafe

// Go launches fn with a recover boundary.
func Go(name string, fn func()) {
	_ = name
	go func() {
		defer func() { _ = recover() }()
		fn()
	}()
}

// Forever is a guarded long-runner launched directly by fixtures.
func Forever() {}

// Capture is a deferred panic-capturing helper.
func Capture() {}
