// Package recoverguard is the analyzer's fixture: each launch shape that
// must be flagged, next to the guarded shape that makes it legal.
package recoverguard

import "panicsafe"

func leak() {}

func bareDecl() {
	go leak() // want "go statement without a panic-capturing wrapper"
}

func bareLit() {
	go func() { // want "go statement without a panic-capturing wrapper"
		leak()
	}()
}

// A recover hidden inside a nested literal guards only that literal, not
// the launched goroutine.
func nestedRecoverDoesNotCount() {
	go func() { // want "go statement without a panic-capturing wrapper"
		f := func() {
			defer func() { _ = recover() }()
		}
		f()
	}()
}

// A plain defer without recover is not a boundary.
func deferWithoutRecover() {
	go func() { // want "go statement without a panic-capturing wrapper"
		defer leak()
	}()
}

func guardedLit() {
	go func() {
		defer func() {
			if p := recover(); p != nil {
				_ = p
			}
		}()
		leak()
	}()
}

// The boundary may sit past other defers (the engine's stream goroutines
// register close-the-channel first, recover second).
func guardedLitSecondDefer() {
	go func() {
		defer leak()
		defer func() { _ = recover() }()
	}()
}

func guardedByPanicsafeDefer() {
	go func() {
		defer panicsafe.Capture()
		leak()
	}()
}

func launchedThroughPanicsafe() {
	panicsafe.Go("fixture", leak) // not a go statement here at all
	go panicsafe.Forever()        // the wrapper package is trusted wholesale
}

// worker mirrors the engine's workerLoop: a same-package declaration
// carrying its own recover boundary.
func worker() {
	defer func() { _ = recover() }()
	leak()
}

func guardedDecl() {
	go worker()
}

type pool struct{}

func (p *pool) loop() {
	defer func() { _ = recover() }()
}

func (p *pool) spin() {}

func (p *pool) spawn() {
	go p.loop()
	go p.spin() // want "go statement without a panic-capturing wrapper"
}

// Bounded build-time fan-outs may opt out with rationale.
func annotated() {
	//stsk:allow-bare-go (fixture: panics must surface to the build step)
	go leak()
}
