package recoverguard

// Test files are exempt: a test goroutine's panic should crash the test.
func testHelper() {
	go leak()
}
