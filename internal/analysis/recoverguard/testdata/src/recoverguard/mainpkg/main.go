// Command mainpkg shows the exemption: a daemon owns its goroutines'
// fate, so package main may launch bare.
package main

func main() {
	go func() {}()
}
