// Package noalloc checks that functions annotated `//stsk:noalloc`
// contain no allocating constructs. The steady-state solve kernels and
// dispatch loops are the repo's core promise — zero allocations per solve
// once warm — and this analyzer turns that promise from a benchmark
// assertion (which only covers the paths a test happens to drive) into a
// per-function static guarantee.
//
// Flagged constructs: make/new, non-self append (append whose result is
// not assigned back to its own first argument — the pooled-scratch idiom
// `x = append(x, ...)` over preallocated capacity is steady-state free),
// closures, go statements, slice/map/address-taken composite literals,
// non-constant string concatenation, string<->[]byte/[]rune conversions,
// implicit variadic slices (fmt.Errorf and friends), concrete-to-
// interface conversions (boxing — kept out of hot paths wholesale via
// typed wrappers, see internal/solve's typed sync.Pool wrappers), and
// method values. The check is intraprocedural: callees keep their own
// annotations.
package noalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"stsk/internal/analysis/framework"
)

var Analyzer = &framework.Analyzer{
	Name: "noalloc",
	Doc:  "report allocating constructs inside functions annotated //stsk:noalloc",
	Run:  run,
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		if len(f.Decls) > 0 && pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !framework.HasFuncDirective(fd, framework.DirNoalloc) {
				continue
			}
			checkBody(pass, fd)
		}
	}
	return nil
}

func checkBody(pass *framework.Pass, fd *ast.FuncDecl) {
	c := &checker{pass: pass, sig: signatureOf(pass, fd)}
	c.walk(fd.Body, nil)
}

type checker struct {
	pass *framework.Pass
	sig  *types.Signature
}

func signatureOf(pass *framework.Pass, fd *ast.FuncDecl) *types.Signature {
	if obj, ok := pass.TypesInfo.Defs[fd.Name]; ok && obj != nil {
		if sig, ok := obj.Type().(*types.Signature); ok {
			return sig
		}
	}
	return nil
}

// walk inspects the body with an ancestor stack (parent-sensitive rules:
// self-append, address-taken literals, method values).
func (c *checker) walk(body ast.Node, stack []ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		c.node(n, stack)
		stack = append(stack, n)
		return true
	})
}

func (c *checker) node(n ast.Node, stack []ast.Node) {
	switch n := n.(type) {
	case *ast.CallExpr:
		c.call(n, stack)
	case *ast.FuncLit:
		c.pass.Reportf(n.Pos(), "closure allocates in //stsk:noalloc function")
	case *ast.GoStmt:
		c.pass.Reportf(n.Pos(), "go statement allocates in //stsk:noalloc function")
	case *ast.CompositeLit:
		c.compositeLit(n, stack)
	case *ast.BinaryExpr:
		c.binary(n)
	case *ast.AssignStmt:
		c.assign(n)
	case *ast.SendStmt:
		if ch, ok := c.typeOf(n.Chan).Underlying().(*types.Chan); ok {
			c.box(ch.Elem(), n.Value)
		}
	case *ast.ReturnStmt:
		c.returnStmt(n)
	case *ast.SelectorExpr:
		c.methodValue(n, stack)
	}
}

func (c *checker) typeOf(e ast.Expr) types.Type {
	if t := c.pass.TypesInfo.Types[e].Type; t != nil {
		return t
	}
	return types.Typ[types.Invalid]
}

func (c *checker) call(call *ast.CallExpr, stack []ast.Node) {
	info := c.pass.TypesInfo
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				c.pass.Reportf(call.Pos(), "make allocates in //stsk:noalloc function")
			case "new":
				c.pass.Reportf(call.Pos(), "new allocates in //stsk:noalloc function")
			case "append":
				if !selfAppend(call, stack) {
					c.pass.Reportf(call.Pos(), "append may grow its backing array in //stsk:noalloc function (only self-append to reused scratch is allowed)")
				}
			}
			return
		}
	}
	// Conversions.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		c.conversion(tv.Type, call)
		return
	}
	// Ordinary calls: variadic slices and interface-boxing arguments.
	sig, ok := c.typeOf(call.Fun).Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	if sig.Variadic() && call.Ellipsis == token.NoPos && len(call.Args) >= params.Len() {
		c.pass.Reportf(call.Pos(), "implicit variadic slice allocates in //stsk:noalloc function")
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < params.Len()-1 || !sig.Variadic():
			if i >= params.Len() {
				continue
			}
			pt = params.At(i).Type()
		case call.Ellipsis != token.NoPos:
			pt = params.At(params.Len() - 1).Type()
		default:
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		}
		c.box(pt, arg)
	}
}

// selfAppend reports the steady-state idiom `x = append(x, ...)`: the
// sole right-hand side of an assignment whose first argument textually
// matches the assignment target.
func selfAppend(call *ast.CallExpr, stack []ast.Node) bool {
	if len(call.Args) == 0 || len(stack) == 0 {
		return false
	}
	as, ok := stack[len(stack)-1].(*ast.AssignStmt)
	if !ok || len(as.Rhs) != 1 || len(as.Lhs) != 1 || as.Rhs[0] != call {
		return false
	}
	return types.ExprString(as.Lhs[0]) == types.ExprString(call.Args[0])
}

func (c *checker) conversion(target types.Type, call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	src := c.typeOf(call.Args[0])
	if isString(target) && isByteOrRuneSlice(src) || isByteOrRuneSlice(target) && isString(src) {
		c.pass.Reportf(call.Pos(), "string conversion allocates in //stsk:noalloc function")
		return
	}
	c.box(target, call.Args[0])
}

func (c *checker) compositeLit(lit *ast.CompositeLit, stack []ast.Node) {
	t := c.typeOf(lit)
	switch t.Underlying().(type) {
	case *types.Slice, *types.Map:
		c.pass.Reportf(lit.Pos(), "composite literal allocates in //stsk:noalloc function")
		return
	}
	if len(stack) > 0 {
		if u, ok := stack[len(stack)-1].(*ast.UnaryExpr); ok && u.Op == token.AND && u.X == lit {
			c.pass.Reportf(lit.Pos(), "composite literal allocates in //stsk:noalloc function (address taken)")
		}
	}
}

func (c *checker) binary(b *ast.BinaryExpr) {
	if b.Op != token.ADD {
		return
	}
	tv := c.pass.TypesInfo.Types[b]
	if tv.Value != nil { // constant-folded
		return
	}
	if isString(tv.Type) {
		c.pass.Reportf(b.Pos(), "string concatenation allocates in //stsk:noalloc function")
	}
}

func (c *checker) assign(as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return // tuple assignment from a call; the call itself is checked
	}
	for i := range as.Lhs {
		if as.Tok == token.DEFINE {
			continue // := takes the RHS type; no conversion happens
		}
		c.box(c.typeOf(as.Lhs[i]), as.Rhs[i])
	}
}

func (c *checker) returnStmt(r *ast.ReturnStmt) {
	if c.sig == nil || len(r.Results) != c.sig.Results().Len() {
		return
	}
	for i, res := range r.Results {
		c.box(c.sig.Results().At(i).Type(), res)
	}
}

// box reports a concrete value converted to an interface type — a
// potential heap allocation the hot path must not rely on escape
// analysis to elide.
func (c *checker) box(dst types.Type, src ast.Expr) {
	if dst == nil || !types.IsInterface(dst) {
		return
	}
	st := c.typeOf(src)
	if st == nil || types.IsInterface(st) {
		return
	}
	if b, ok := st.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return
	}
	c.pass.Reportf(src.Pos(), "interface conversion may allocate in //stsk:noalloc function (use a typed wrapper)")
}

func (c *checker) methodValue(sel *ast.SelectorExpr, stack []ast.Node) {
	s, ok := c.pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return
	}
	if len(stack) > 0 {
		if call, ok := stack[len(stack)-1].(*ast.CallExpr); ok && call.Fun == sel {
			return // ordinary method call
		}
	}
	c.pass.Reportf(sel.Pos(), "method value allocates in //stsk:noalloc function")
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune)
}
