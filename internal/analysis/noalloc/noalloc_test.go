package noalloc_test

import (
	"testing"

	"stsk/internal/analysis/analysistest"
	"stsk/internal/analysis/noalloc"
)

func TestNoalloc(t *testing.T) {
	analysistest.Run(t, "testdata", noalloc.Analyzer, "noalloc")
}
