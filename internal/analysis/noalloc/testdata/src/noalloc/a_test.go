package noalloc

// Test files are exempt: an annotated helper here may allocate without
// a finding (benchmarks annotate prototypes before they move).
//
//stsk:noalloc
func testOnlyScratch(n int) []float64 {
	return make([]float64, n)
}
