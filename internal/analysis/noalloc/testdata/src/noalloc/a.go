// Package noalloc is the analyzer's fixture: every flagged construct
// once, plus the idioms the hot paths rely on staying unflagged.
package noalloc

import "fmt"

type pair struct{ a, b int }

func (p pair) sum() int { return p.a + p.b }

func helper() {}

//stsk:noalloc
func builtins(x []float64, n int) []float64 {
	s := make([]float64, n) // want "make allocates in //stsk:noalloc function"
	p := new(int)           // want "new allocates in //stsk:noalloc function"
	_ = p
	y := append(x, 1) // want "append may grow its backing array"
	_ = y
	x = append(x, s...) // self-append: the pooled-scratch idiom stays legal
	return x
}

//stsk:noalloc
func control(n int) {
	f := func() int { return n } // want "closure allocates"
	_ = f
	go helper() // want "go statement allocates"
}

//stsk:noalloc
func literals() int {
	v := pair{1, 2} // a value-typed literal lives on the stack
	_ = []int{1}    // want "composite literal allocates"
	q := &pair{}    // want "address taken"
	return v.a + q.b
}

//stsk:noalloc
func strings(s1, s2 string) int {
	s3 := s1 + s2       // want "string concatenation allocates"
	const c = "a" + "b" // constant-folded: free
	b := []byte(s1)     // want "string conversion allocates"
	s4 := string(b)     // want "string conversion allocates"
	return len(s3) + len(s4) + len(c)
}

//stsk:noalloc
func boxing(n int, ch chan any) any {
	_ = fmt.Sprintf("%d", n) // want "implicit variadic slice allocates" "interface conversion may allocate"
	var i any
	i = n // want "interface conversion may allocate"
	_ = i
	ch <- n  // want "interface conversion may allocate"
	return n // want "interface conversion may allocate"
}

//stsk:noalloc
func methodValue(p pair) func() int {
	_ = p.sum()  // an ordinary method call is fine
	return p.sum // want "method value allocates"
}

//stsk:noalloc
func clean(x, b []float64, start, end int) {
	for i := start; i < end; i++ {
		x[i] = b[i] * 2
	}
}

// Unannotated functions allocate freely.
func unannotated(n int) []float64 {
	return make([]float64, n)
}

// The disarmed trace-hook pattern: hot paths call concrete methods on a
// possibly-nil *recorder unconditionally (internal/trace-style). A
// concrete pointer-receiver call boxes nothing and allocates nothing —
// the nil receiver just branches out — so annotated kernels may hook
// tracing without exemption comments.
type recorder struct{ n int }

func (r *recorder) observe(stage int, start, end int64) {
	if r == nil {
		return
	}
	r.n++
	_ = stage
	_ = start
	_ = end
}

func (r *recorder) id() string {
	if r == nil {
		return ""
	}
	return "id"
}

//stsk:noalloc
func tracedKernel(x, b []float64, tr *recorder) {
	t0 := int64(0)
	for i := range x {
		x[i] = b[i] * 2
	}
	tr.observe(1, t0, 1)
	_ = tr.id()
}
