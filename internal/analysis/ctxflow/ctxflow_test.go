package ctxflow_test

import (
	"testing"

	"stsk/internal/analysis/analysistest"
	"stsk/internal/analysis/ctxflow"
)

func TestCtxflow(t *testing.T) {
	analysistest.Run(t, "testdata", ctxflow.Analyzer, "ctxflow", "ctxflow/mainpkg")
}
