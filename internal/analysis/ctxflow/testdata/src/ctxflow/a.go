// Package ctxflow is the analyzer's fixture: each context-threading rule
// violated once, next to the annotated shape that makes it legal.
package ctxflow

import "context"

type holder struct {
	ctx context.Context // want "context.Context stored in a struct"
	n   int
}

// queued mirrors the serve coalescer's request: a ctx riding a queue.
type queued struct {
	//stsk:allow-ctx-field
	ctx context.Context
	n   int
}

type solver struct{}

func (s *solver) Solve() {}

func (s *solver) SolveCtx(ctx context.Context) { _ = ctx }

func fresh() context.Context {
	return context.Background() // want "context.Background in a library package"
}

func todo() context.Context {
	return context.TODO() // want "context.Background in a library package"
}

func drops(ctx context.Context) {
	_ = ctx
	_ = context.Background() // want "context.Background drops the caller's ctx: forward ctx"
}

// wrapper is a documented non-context convenience entry point.
//
//stsk:allow-background
func wrapper() context.Context {
	return context.Background()
}

func annotatedLine() context.Context {
	//stsk:allow-background
	return context.Background()
}

func variant(ctx context.Context, s *solver) {
	s.Solve() // want "call SolveCtx and forward ctx"
	s.SolveCtx(ctx)
}

func variantAllowed(ctx context.Context, s *solver) {
	_ = ctx
	//stsk:allow-background (panel isolation)
	s.Solve()
}
