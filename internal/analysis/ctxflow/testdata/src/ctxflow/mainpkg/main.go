// Command mainpkg exercises the package-main exemption: a binary is the
// root of the context tree, so Background belongs here.
package main

import "context"

func main() {
	_ = context.Background()
}
