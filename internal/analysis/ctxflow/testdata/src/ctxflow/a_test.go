package ctxflow

import "context"

// Test files are exempt: tests root their own contexts.
func testRoot() context.Context {
	return context.Background()
}
