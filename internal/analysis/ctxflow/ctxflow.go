// Package ctxflow enforces the context-threading discipline of the
// library packages: cancellation and deadlines must flow from the caller
// to every blocking callee.
//
// Rules (library packages only — package main is exempt, as are test
// files):
//
//  1. No context.Background()/TODO() call, except at sites annotated
//     `//stsk:allow-background` (documented non-context convenience
//     wrappers, and the serve coalescer's panel isolation — one member's
//     cancellation must not void its panel-mates' work).
//  2. A function that receives a ctx must not manufacture a fresh
//     background context for a callee that accepts one — that silently
//     drops the caller's deadline.
//  3. A function that receives a ctx must call the context-aware variant
//     of a callee when one exists (method X where the receiver also has
//     XCtx), forwarding its ctx rather than falling back to the
//     background-context wrapper.
//  4. context.Context never lives in a struct field (it is a call-scoped
//     value), except fields annotated `//stsk:allow-ctx-field`
//     (request-scoped values travelling through a queue).
package ctxflow

import (
	"go/ast"
	"go/types"

	"stsk/internal/analysis/framework"
)

var Analyzer = &framework.Analyzer{
	Name: "ctxflow",
	Doc:  "enforce context threading: no Background in libraries, forward ctx to Ctx variants, no ctx struct fields",
	Run:  run,
}

func run(pass *framework.Pass) error {
	if pass.Pkg.Name() == "main" {
		return nil
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		lines := framework.DirectiveLines(pass.Fset, f)
		checkFile(pass, lines, f)
	}
	return nil
}

func checkFile(pass *framework.Pass, lines map[int][]string, f *ast.File) {
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				checkStruct(pass, lines, st)
			}
		case *ast.FuncDecl:
			if d.Body == nil {
				continue
			}
			allowAll := framework.HasFuncDirective(d, framework.DirAllowBackground)
			checkFunc(pass, lines, d, allowAll)
		}
	}
}

func checkStruct(pass *framework.Pass, lines map[int][]string, st *ast.StructType) {
	for _, field := range st.Fields.List {
		if !isContextType(pass.TypesInfo.Types[field.Type].Type) {
			continue
		}
		if framework.AllowedAt(lines, pass.Fset, field.Pos(), framework.DirAllowCtxField) {
			continue
		}
		pass.Reportf(field.Pos(), "context.Context stored in a struct: pass it as a parameter (//stsk:allow-ctx-field for request-scoped queue values)")
	}
}

func checkFunc(pass *framework.Pass, lines map[int][]string, fd *ast.FuncDecl, allowAll bool) {
	ctxParam := contextParam(pass, fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isBackgroundCall(pass, call) {
			if allowAll || framework.AllowedAt(lines, pass.Fset, call.Pos(), framework.DirAllowBackground) {
				return true
			}
			if ctxParam != nil {
				pass.Reportf(call.Pos(), "context.Background drops the caller's ctx: forward %s (//stsk:allow-background if isolation is intended)", ctxParam.Name())
			} else {
				pass.Reportf(call.Pos(), "context.Background in a library package: accept a ctx or annotate //stsk:allow-background")
			}
			return true
		}
		if ctxParam != nil {
			checkCtxVariant(pass, lines, call, ctxParam)
		}
		return true
	})
}

// checkCtxVariant flags s.X(...) inside a ctx-carrying function when the
// receiver also offers XCtx — the non-context variant would run the work
// under a background context, detaching it from the caller's deadline.
func checkCtxVariant(pass *framework.Pass, lines map[int][]string, call *ast.CallExpr, ctxParam *types.Var) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return
	}
	sig, ok := s.Obj().Type().(*types.Signature)
	if !ok || hasContextParam(sig) {
		return // already context-aware
	}
	ms := types.NewMethodSet(s.Recv())
	variant := ms.Lookup(pass.Pkg, sel.Sel.Name+"Ctx")
	if variant == nil {
		return
	}
	if framework.AllowedAt(lines, pass.Fset, call.Pos(), framework.DirAllowBackground) {
		return
	}
	pass.Reportf(call.Pos(), "call %sCtx and forward %s: the %s variant detaches from the caller's context", sel.Sel.Name, ctxParam.Name(), sel.Sel.Name)
}

func contextParam(pass *framework.Pass, fd *ast.FuncDecl) *types.Var {
	obj, ok := pass.TypesInfo.Defs[fd.Name]
	if !ok || obj == nil {
		return nil
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return nil
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if p := sig.Params().At(i); isContextType(p.Type()) {
			return p
		}
	}
	return nil
}

func hasContextParam(sig *types.Signature) bool {
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

func isBackgroundCall(pass *framework.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if sel.Sel.Name != "Background" && sel.Sel.Name != "TODO" {
		return false
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

func isContextType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}
