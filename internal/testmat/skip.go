package testmat

import "testing"

// SkipIfRace skips tests whose assertions cannot hold under the race
// detector — pool-reuse and allocation counts, chiefly: the race
// detector's sync.Pool deliberately drops puts, so "the pool recycled my
// buffer" is unobservable there. One shared guard instead of a copy of
// the skip in every pooling test.
func SkipIfRace(t testing.TB) {
	if raceEnabled {
		t.Helper()
		t.Skip("sync.Pool drops puts under the race detector")
	}
}
