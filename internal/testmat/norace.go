//go:build !race

package testmat

const raceEnabled = false
