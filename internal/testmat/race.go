//go:build race

package testmat

// raceEnabled reports that this build runs under the race detector, where
// sync.Pool deliberately drops puts and allocation-free assertions cannot
// hold.
const raceEnabled = true
