// Package testmat is the shared matrix corpus of the test suite: the
// structurally symmetric, SPD-by-dominance matrices that the solver,
// scheduler, facade and benchmark tests all exercise. Every builder
// returns a fresh matrix (entries are mutable test fixtures), and every
// matrix satisfies the pipeline's input invariants — full nonzero
// diagonal, structural symmetry, values assigned by sparse.AssignSPDValues
// so the lower triangle is a well-conditioned triangular factor.
//
// The corpus deliberately spans the shapes that stress different solver
// paths: mesh-like matrices with real level structure (grid3d, trimesh),
// a block-diagonal matrix whose dependency DAG is a forest of independent
// subtrees (the wide-DAG schedule case), an arrow matrix whose final row
// touches everything (a serialising bottleneck row), a pure chain whose
// DAG is one critical path (no parallelism at all), a dense-ish banded
// lower triangle (long rows, heavy per-row arithmetic), a diagonal-only
// matrix (every row empty apart from its pivot), and a 1×1 system.
package testmat

import (
	"stsk/internal/gen"
	"stsk/internal/sparse"
)

// Entry is one named corpus matrix.
type Entry struct {
	Name string
	A    *sparse.CSR
}

// Corpus returns the standard small corpus, freshly built, sized so a
// test can afford to run every (matrix × method × schedule) combination.
func Corpus() []Entry {
	return []Entry{
		{"grid3d", Grid3D(6)},
		{"trimesh", TriMesh(14)},
		{"blockdiag", BlockDiag(4, gen.Grid2D(7, 7))},
		{"arrow", Arrow(97)},
		{"chain", Chain(101)},
		{"denselower", DenseBand(64, 32)},
		{"diagonly", DiagOnly(33)},
		{"one", One()},
	}
}

// Grid3D returns a side³ 7-point Laplacian — the bread-and-butter mesh
// matrix of the paper's evaluation.
func Grid3D(side int) *sparse.CSR { return gen.Grid3D(side, side, side) }

// TriMesh returns a perturbed triangular mesh on a side×side grid.
func TriMesh(side int) *sparse.CSR { return gen.TriMesh(side, side, 3) }

// BlockDiag tiles `blocks` disjoint copies of a along the diagonal: a
// matrix whose dependency DAG is `blocks` independent subtrees — the
// wide-DAG shape where barrier scheduling synchronises workers that share
// no data at all.
func BlockDiag(blocks int, a *sparse.CSR) *sparse.CSR {
	n := a.N * blocks
	out := &sparse.CSR{N: n, RowPtr: make([]int, n+1)}
	out.Col = make([]int, 0, a.NNZ()*blocks)
	out.Val = make([]float64, 0, a.NNZ()*blocks)
	for blk := 0; blk < blocks; blk++ {
		off := blk * a.N
		for i := 0; i < a.N; i++ {
			cols, vals := a.Row(i)
			for k, j := range cols {
				out.Col = append(out.Col, j+off)
				out.Val = append(out.Val, vals[k])
			}
			out.RowPtr[off+i+1] = len(out.Col)
		}
	}
	return out
}

// Arrow returns an n×n arrow matrix: a full diagonal plus a dense final
// row and column. The last row depends on every other unknown, so every
// schedule funnels through one bottleneck task; super-row and pack
// carving must cope with one pathologically long row.
func Arrow(n int) *sparse.CSR {
	coo := sparse.NewCOO(n, 3*n)
	for i := 0; i < n; i++ {
		coo.Add(i, i, 1)
	}
	for i := 0; i < n-1; i++ {
		coo.AddSym(n-1, i, 1)
	}
	return spd(coo.ToCSR())
}

// Chain returns the n-node path graph (a tridiagonal matrix): the
// dependency DAG is a single chain, the zero-parallelism worst case where
// every schedule must degenerate gracefully to sequential progress.
func Chain(n int) *sparse.CSR {
	coo := sparse.NewCOO(n, 3*n)
	for i := 0; i < n; i++ {
		coo.Add(i, i, 1)
	}
	for i := 0; i+1 < n; i++ {
		coo.AddSym(i, i+1, 1)
	}
	return spd(coo.ToCSR())
}

// DenseBand returns an n×n symmetric band matrix of half-bandwidth bw —
// with bw near n/2 a dense-ish lower triangle whose long rows stress the
// inner kernel loop rather than the scheduler.
func DenseBand(n, bw int) *sparse.CSR {
	coo := sparse.NewCOO(n, n*(bw+1))
	for i := 0; i < n; i++ {
		coo.Add(i, i, 1)
		for j := i - bw; j < i; j++ {
			if j >= 0 {
				coo.AddSym(i, j, 1)
			}
		}
	}
	return spd(coo.ToCSR())
}

// DiagOnly returns an n×n diagonal matrix: every row is "empty" apart
// from its pivot, the degenerate shape where the whole solve is n
// independent divisions and any pack structure is pure overhead.
func DiagOnly(n int) *sparse.CSR {
	coo := sparse.NewCOO(n, n)
	for i := 0; i < n; i++ {
		coo.Add(i, i, 1)
	}
	return spd(coo.ToCSR())
}

// One returns the 1×1 system — the smallest input every entry point must
// survive.
func One() *sparse.CSR { return DiagOnly(1) }

func spd(m *sparse.CSR) *sparse.CSR {
	if err := sparse.AssignSPDValues(m); err != nil {
		panic(err)
	}
	return m
}
