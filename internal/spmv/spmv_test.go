package spmv

import (
	"math/rand"
	"testing"

	"stsk/internal/gen"
	"stsk/internal/order"
	"stsk/internal/sparse"
)

func TestParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	mats := []*sparse.CSR{
		gen.TriMesh(20, 20, 1),
		gen.Grid3D(7, 7, 7),
		gen.RGG(800, gen.RGGDegree(800, 12), 5),
	}
	for mi, a := range mats {
		x := make([]float64, a.N)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		want := make([]float64, a.N)
		if err := Sequential(a, want, x); err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 7} {
			got := make([]float64, a.N)
			if err := Parallel(a, got, x, Options{Workers: workers, Chunk: 5}); err != nil {
				t.Fatal(err)
			}
			if d := sparse.MaxAbsDiff(got, want); d > 1e-12 {
				t.Fatalf("mat %d workers %d: diff %g", mi, workers, d)
			}
		}
	}
}

func TestParallelCSRKMatchesSequential(t *testing.T) {
	a := gen.TriMesh(24, 24, 9)
	p, err := order.Build(a, order.Options{Method: order.STS3, RowsPerSuper: 10})
	if err != nil {
		t.Fatal(err)
	}
	// The structure's row order differs from a's: use the plan-ordered
	// symmetric matrix.
	aPerm := sparse.SymmetrizePattern(p.S.L)
	rng := rand.New(rand.NewSource(5))
	x := make([]float64, aPerm.N)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want := make([]float64, aPerm.N)
	if err := Sequential(aPerm, want, x); err != nil {
		t.Fatal(err)
	}
	got := make([]float64, aPerm.N)
	if err := ParallelCSRK(aPerm, p.S, got, x, Options{Workers: 6}); err != nil {
		t.Fatal(err)
	}
	if d := sparse.MaxAbsDiff(got, want); d > 1e-12 {
		t.Fatalf("csr-k spmv diff %g", d)
	}
}

func TestSpMVErrors(t *testing.T) {
	a := gen.Grid2D(5, 5)
	y := make([]float64, a.N)
	if err := Sequential(a, y, make([]float64, 3)); err == nil {
		t.Fatal("short x accepted")
	}
	if err := Parallel(a, make([]float64, 2), make([]float64, a.N), Options{}); err == nil {
		t.Fatal("short y accepted")
	}
	p, err := order.Build(a, order.Options{Method: order.STS3, RowsPerSuper: 4})
	if err != nil {
		t.Fatal(err)
	}
	aPerm := sparse.SymmetrizePattern(p.S.L)
	if err := ParallelCSRK(aPerm, p.S, make([]float64, 2), make([]float64, a.N), Options{}); err == nil {
		t.Fatal("short y accepted by csr-k kernel")
	}
	small := gen.Grid2D(3, 3)
	if err := ParallelCSRK(small, p.S, make([]float64, small.N), make([]float64, small.N), Options{}); err == nil {
		t.Fatal("mismatched structure accepted")
	}
}
