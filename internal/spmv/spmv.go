// Package spmv implements sparse matrix–vector multiplication over the
// CSR-k substructure — the paper's own foundation (reference [4], Kabir,
// Booth & Raghavan, HiPC'14): the same super-row agglomeration that STS-k
// reuses was introduced to raise cache hit rates in parallel SpMV, where
// no dependencies exist and every super-row can run concurrently.
//
// The package provides a plain CSR kernel, a parallel row-split kernel,
// and the CSR-k super-row kernel, so the CSR vs CSR-k comparison of [4]
// can be reproduced as an ablation of this repository's structures.
package spmv

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"stsk/internal/csrk"
	"stsk/internal/sparse"
)

// Sequential computes y = A·x with the plain CSR kernel.
func Sequential(a *sparse.CSR, y, x []float64) error {
	if len(x) != a.N || len(y) != a.N {
		return fmt.Errorf("spmv: vector lengths %d/%d, want %d", len(y), len(x), a.N)
	}
	a.MatVec(y, x)
	return nil
}

// Options configures the parallel kernels.
type Options struct {
	Workers int // 0 = GOMAXPROCS
	Chunk   int // rows (or super-rows) per grab; 0 = 64
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Chunk <= 0 {
		o.Chunk = 64
	}
	return o
}

// Parallel computes y = A·x with a dynamic row-split over workers — the
// conventional parallel CSR SpMV baseline of [4].
func Parallel(a *sparse.CSR, y, x []float64, opts Options) error {
	if len(x) != a.N || len(y) != a.N {
		return fmt.Errorf("spmv: vector lengths %d/%d, want %d", len(y), len(x), a.N)
	}
	opts = opts.withDefaults()
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		// Bounded compute fan-out joined before return: a panic must
		// surface to the caller, not be contained mid-multiply.
		//stsk:allow-bare-go
		go func() {
			defer wg.Done()
			c := int64(opts.Chunk)
			for {
				from := next.Add(c) - c
				if from >= int64(a.N) {
					return
				}
				to := from + c
				if to > int64(a.N) {
					to = int64(a.N)
				}
				rows(a, y, x, int(from), int(to))
			}
		}()
	}
	wg.Wait()
	return nil
}

// ParallelCSRK computes y = A·x over a csrk.Structure built on A's lower
// triangle... no: SpMV needs the full matrix, so the structure's super-row
// boundaries are applied to the full symmetric matrix a (which must share
// the structure's row ordering). Each worker grabs whole super-rows, so
// the x-window of one task matches the L2-sized block CSR-k targets.
func ParallelCSRK(a *sparse.CSR, s *csrk.Structure, y, x []float64, opts Options) error {
	if a.N != s.L.N {
		return fmt.Errorf("spmv: matrix size %d does not match structure %d", a.N, s.L.N)
	}
	if len(x) != a.N || len(y) != a.N {
		return fmt.Errorf("spmv: vector lengths %d/%d, want %d", len(y), len(x), a.N)
	}
	opts = opts.withDefaults()
	nSupers := s.NumSuperRows()
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		// Bounded compute fan-out joined before return (see above).
		//stsk:allow-bare-go
		go func() {
			defer wg.Done()
			for {
				sr := int(next.Add(1) - 1)
				if sr >= nSupers {
					return
				}
				lo, hi := s.SuperRowRows(sr)
				rows(a, y, x, lo, hi)
			}
		}()
	}
	wg.Wait()
	return nil
}

func rows(a *sparse.CSR, y, x []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		s := 0.0
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			s += a.Val[k] * x[a.Col[k]]
		}
		y[i] = s
	}
}
