package cachesim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"stsk/internal/machine"
)

// refLRU is an obviously-correct reference model: a slice ordered by
// recency per set.
type refLRU struct {
	sets  map[uint64][]uint64
	assoc int
	nsets uint64
}

func newRefLRU(sizeLines, assoc int) *refLRU {
	return &refLRU{
		sets:  make(map[uint64][]uint64),
		assoc: assoc,
		nsets: uint64(sizeLines / assoc),
	}
}

func (r *refLRU) probe(line uint64) bool {
	idx := line % r.nsets
	set := r.sets[idx]
	for i, tag := range set {
		if tag == line {
			set = append(set[:i], set[i+1:]...)
			r.sets[idx] = append([]uint64{line}, set...)
			return true
		}
	}
	set = append([]uint64{line}, set...)
	if len(set) > r.assoc {
		set = set[:r.assoc]
	}
	r.sets[idx] = set
	return false
}

func TestCacheMatchesReferenceLRU(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(13))}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sizeLines := []int{4, 8, 16, 32}[rng.Intn(4)]
		assoc := []int{1, 2, 4}[rng.Intn(3)]
		if assoc > sizeLines {
			assoc = sizeLines
		}
		c := NewCache(machine.CacheSpec{
			SizeBytes: sizeLines * 64, LineBytes: 64, Assoc: assoc, LatencyCycle: 1,
		})
		ref := newRefLRU(sizeLines, assoc)
		for i := 0; i < 400; i++ {
			line := uint64(rng.Intn(3 * sizeLines))
			if c.Probe(line) != ref.probe(line) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestCacheHitPlusMissEqualsTotal(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	c := NewCache(machine.CacheSpec{SizeBytes: 1024, LineBytes: 64, Assoc: 4, LatencyCycle: 1})
	n := 500
	for i := 0; i < n; i++ {
		c.Probe(uint64(rng.Intn(64)))
	}
	if c.Hits+c.Misses != uint64(n) {
		t.Fatalf("hits %d + misses %d != %d", c.Hits, c.Misses, n)
	}
}
