package cachesim

import (
	"fmt"

	"stsk/internal/csrk"
	"stsk/internal/machine"
)

// Layout assigns disjoint byte ranges to the solver's arrays so the cache
// simulator sees a realistic address stream. All elements are modeled as
// 8 bytes (float64 values; int columns are 8 bytes on amd64).
type Layout struct {
	ValBase, ColBase, RowPtrBase, XBase, BBase uint64
}

// NewLayout spaces the arrays of an n-row, nnz-entry system far apart so
// they never alias in the simulated address space.
func NewLayout(n, nnz int) Layout {
	const gap = 1 << 30 // 1 GiB segments: indices never collide
	return Layout{
		ValBase:    0 * gap,
		ColBase:    1 * gap,
		RowPtrBase: 2 * gap,
		XBase:      3 * gap,
		BBase:      4 * gap,
	}
}

// Options configures one simulation run.
type Options struct {
	// Cores is the number of active cores (compact placement). Required.
	Cores int
	// Chunk is how many consecutive super-rows a core claims at once,
	// mirroring the solver's dynamic/guided chunking. Defaults to 1.
	Chunk int
	// Repeats replays the solve this many times over persistent caches
	// and reports the last replay — the paper times the average of 10
	// warm repeats, so Repeats=2 gives a warm-cache measurement.
	// Defaults to 1 (cold).
	Repeats int
}

// Result reports modeled time and locality for one simulated solve.
type Result struct {
	Cycles      uint64   // total modeled makespan, including barriers
	SyncCycles  uint64   // portion spent in inter-pack barriers
	PackCycles  []uint64 // per-pack makespan, barrier excluded
	PackRows    []int    // solution components per pack (for Fig 14 scaling)
	Counts      AccessCounts
	HitRate     float64 // L1+L2+local-L3 fraction
	Cores       int
	NumPacks    int
	MachineName string
}

// Simulate replays the pack-parallel solve of the structure on the
// topology with the given core count and returns modeled cycles.
//
// Scheduling follows the dynamic heuristic of §3.3: within a pack, the
// earliest-available core claims the next chunk of super-rows in pack
// order, so consecutive DAR-adjacent tasks tend to share a core and its
// caches. A barrier (SyncBase + SyncPerCore·cores) separates packs.
func Simulate(s *csrk.Structure, topo machine.Topology, opts Options) (*Result, error) {
	if opts.Cores < 1 {
		return nil, fmt.Errorf("cachesim: need at least one core")
	}
	if opts.Chunk < 1 {
		opts.Chunk = 1
	}
	if opts.Repeats < 1 {
		opts.Repeats = 1
	}
	h, err := NewHierarchy(topo, opts.Cores)
	if err != nil {
		return nil, err
	}
	lay := NewLayout(s.L.N, s.L.NNZ())
	res := &Result{
		Cores:       opts.Cores,
		NumPacks:    s.NumPacks(),
		MachineName: topo.Name,
		PackRows:    s.PackRowCounts(),
	}
	for rep := 0; rep < opts.Repeats; rep++ {
		res.PackCycles = res.PackCycles[:0]
		res.Cycles = 0
		res.SyncCycles = 0
		replay(s, topo, h, lay, opts, res)
	}
	res.Counts = h.Counts
	res.HitRate = h.HitRate()
	return res, nil
}

// replay runs one full solve over the (persistent) hierarchy.
func replay(s *csrk.Structure, topo machine.Topology, h *Hierarchy, lay Layout, opts Options, res *Result) {
	avail := make([]uint64, opts.Cores)
	var now uint64
	syncCost := uint64(topo.SyncBaseCycle + topo.SyncPerCoreCycle*opts.Cores)
	sockets := topo.SocketOf(opts.Cores-1) + 1
	dramLines := make([]uint64, sockets)
	for p := 0; p < s.NumPacks(); p++ {
		for c := range avail {
			avail[c] = now
		}
		for sk := range dramLines {
			dramLines[sk] = 0
		}
		lo, hi := s.PackSuperRows(p)
		for next := lo; next < hi; {
			end := next + opts.Chunk
			if end > hi {
				end = hi
			}
			core := 0
			for c := 1; c < opts.Cores; c++ {
				if avail[c] < avail[core] {
					core = c
				}
			}
			sock := topo.SocketOf(core)
			for sr := next; sr < end; sr++ {
				d0 := h.Counts.DRAMLocal + h.Counts.DRAMRemote
				avail[core] += replaySuperRow(s, h, lay, core, sr, topo.ComputeCycle)
				dramLines[sock] += h.Counts.DRAMLocal + h.Counts.DRAMRemote - d0
			}
			next = end
		}
		makespan := uint64(0)
		for _, a := range avail {
			if a-now > makespan {
				makespan = a - now
			}
		}
		// Little's-law bandwidth envelope: a socket's memory controller can
		// deliver one DRAM line per DRAMPerLineCycle, no matter how well
		// latency overlaps — the pack cannot complete faster than its most
		// loaded controller (the paper's Figure 8 discussion).
		if topo.DRAMPerLineCycle > 0 {
			for _, lines := range dramLines {
				if bw := lines * uint64(topo.DRAMPerLineCycle); bw > makespan {
					makespan = bw
				}
			}
		}
		res.PackCycles = append(res.PackCycles, makespan)
		now += makespan
		if p+1 < s.NumPacks() {
			now += syncCost
			res.SyncCycles += syncCost
		}
	}
	res.Cycles = now
}

// replaySuperRow charges the access stream of solving one super-row on one
// core and returns the modeled duration in cycles: per row, read b[i] and
// the row's index/value stream, read x[col] per off-diagonal entry, one
// FMA per entry, and write x[i].
func replaySuperRow(s *csrk.Structure, h *Hierarchy, lay Layout, core, sr, computeCycle int) uint64 {
	l := s.L
	rowLo, rowHi := s.SuperRowRows(sr)
	var cycles uint64
	for i := rowLo; i < rowHi; i++ {
		cycles += h.AccessStream(core, lay.BBase+uint64(i)*8)
		cycles += h.AccessStream(core, lay.RowPtrBase+uint64(i)*8)
		lo, hi := l.RowPtr[i], l.RowPtr[i+1]
		for k := lo; k < hi; k++ {
			cycles += h.AccessStream(core, lay.ColBase+uint64(k)*8)
			cycles += h.AccessStream(core, lay.ValBase+uint64(k)*8)
			j := l.Col[k]
			if j != i {
				cycles += h.Access(core, lay.XBase+uint64(j)*8)
			}
			cycles += uint64(computeCycle)
		}
		cycles += h.Access(core, lay.XBase+uint64(i)*8) // store of x[i]
	}
	return cycles
}
