package cachesim

import (
	"testing"

	"stsk/internal/gen"
	"stsk/internal/machine"
	"stsk/internal/order"
)

func TestStreamPrefetchDiscount(t *testing.T) {
	topo := machine.IntelWestmereEX32()
	h, err := NewHierarchy(topo, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Cold stream access: charged PrefetchCycle, not DRAM latency.
	if lat := h.AccessStream(0, 0); lat != uint64(topo.PrefetchCycle) {
		t.Fatalf("cold stream access charged %d, want prefetch %d", lat, topo.PrefetchCycle)
	}
	// The line is still installed: a warm random access hits L1.
	if lat := h.Access(0, 0); lat != uint64(topo.L1.LatencyCycle) {
		t.Fatalf("stream access did not fill the cache (lat %d)", lat)
	}
	// A cold random access pays full DRAM latency.
	if lat := h.Access(0, 1<<20); lat != uint64(topo.DRAMLocalCycle) {
		t.Fatalf("cold random access charged %d, want %d", lat, topo.DRAMLocalCycle)
	}
}

func TestStreamPrefetchDisabled(t *testing.T) {
	topo := machine.IntelWestmereEX32()
	topo.PrefetchCycle = 0
	h, err := NewHierarchy(topo, 1)
	if err != nil {
		t.Fatal(err)
	}
	if lat := h.AccessStream(0, 0); lat != uint64(topo.DRAMLocalCycle) {
		t.Fatalf("disabled prefetcher still discounted: %d", lat)
	}
}

func TestBandwidthEnvelopeBinds(t *testing.T) {
	// With an extreme per-line cost the bandwidth bound must dominate the
	// pack makespan; with 0 it must never.
	a := gen.TriMesh(24, 24, 3)
	p, err := order.Build(a, order.Options{Method: order.STS3, RowsPerSuper: 12})
	if err != nil {
		t.Fatal(err)
	}
	free := machine.ScaleCaches(machine.IntelWestmereEX32(), 16, 1024)
	free.DRAMPerLineCycle = 0
	bound := free
	bound.DRAMPerLineCycle = 100000
	rFree, err := Simulate(p.S, free, Options{Cores: 8})
	if err != nil {
		t.Fatal(err)
	}
	rBound, err := Simulate(p.S, bound, Options{Cores: 8})
	if err != nil {
		t.Fatal(err)
	}
	if rBound.Cycles <= rFree.Cycles {
		t.Fatalf("bandwidth envelope did not bind: %d <= %d", rBound.Cycles, rFree.Cycles)
	}
}

func TestBandwidthEnvelopeMonotoneInCost(t *testing.T) {
	a := gen.Grid2D(20, 20)
	p, err := order.Build(a, order.Options{Method: order.CSRCOL})
	if err != nil {
		t.Fatal(err)
	}
	base := machine.ScaleCaches(machine.IntelWestmereEX32(), 16, 1024)
	var prev uint64
	for _, c := range []int{0, 6, 60, 600} {
		topo := base
		topo.DRAMPerLineCycle = c
		r, err := Simulate(p.S, topo, Options{Cores: 8, Chunk: 32})
		if err != nil {
			t.Fatal(err)
		}
		if r.Cycles < prev {
			t.Fatalf("cycles decreased (%d -> %d) as per-line cost rose to %d", prev, r.Cycles, c)
		}
		prev = r.Cycles
	}
}

func TestSmallLineSizeHierarchy(t *testing.T) {
	topo := machine.ScaleCachesLine(machine.IntelWestmereEX32(), 16, 256, 8)
	h, err := NewHierarchy(topo, 2)
	if err != nil {
		t.Fatal(err)
	}
	// 8-byte lines: entries 0 and 1 live on different lines.
	h.Access(0, 0)
	if lat := h.Access(0, 8); lat == uint64(topo.L1.LatencyCycle) {
		t.Fatal("adjacent 8-byte entries shared a line under lineDiv=8")
	}
	if lat := h.Access(0, 0); lat != uint64(topo.L1.LatencyCycle) {
		t.Fatalf("first entry not cached: %d", lat)
	}
}

func TestRejectsWeirdLineSize(t *testing.T) {
	topo := machine.IntelWestmereEX32()
	topo.L1.LineBytes = 48
	topo.L2.LineBytes = 48
	topo.L3.LineBytes = 48
	if _, err := NewHierarchy(topo, 1); err == nil {
		t.Fatal("non-power-of-two line size accepted")
	}
}
