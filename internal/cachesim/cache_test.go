package cachesim

import (
	"testing"

	"stsk/internal/machine"
)

func tinySpec(sizeLines, assoc int) machine.CacheSpec {
	return machine.CacheSpec{
		SizeBytes:    sizeLines * 64,
		LineBytes:    64,
		Assoc:        assoc,
		LatencyCycle: 1,
	}
}

func TestCacheHitAfterInsert(t *testing.T) {
	c := NewCache(tinySpec(8, 2))
	if c.Probe(42) {
		t.Fatal("cold cache hit")
	}
	if !c.Probe(42) {
		t.Fatal("line not resident after insert")
	}
	if c.Hits != 1 || c.Misses != 1 {
		t.Fatalf("hits/misses = %d/%d, want 1/1", c.Hits, c.Misses)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// Direct-mapped-per-set with 2 ways and 4 sets: lines 0, 4, 8 share set 0.
	c := NewCache(tinySpec(8, 2))
	c.Probe(0)
	c.Probe(4)
	c.Probe(8) // evicts 0 (LRU)
	if c.Contains(0) {
		t.Fatal("LRU line not evicted")
	}
	if !c.Contains(4) || !c.Contains(8) {
		t.Fatal("wrong line evicted")
	}
	// Touch 4, insert 12: should evict 8, not 4.
	c.Probe(4)
	c.Probe(12)
	if !c.Contains(4) || c.Contains(8) {
		t.Fatal("LRU order not updated on hit")
	}
}

func TestCacheContainsDoesNotPromote(t *testing.T) {
	c := NewCache(tinySpec(8, 2))
	c.Probe(0)
	c.Probe(4)
	// Peek 0 must not promote it: inserting 8 should still evict 0.
	if !c.Contains(0) {
		t.Fatal("peek lost line")
	}
	c.Probe(8)
	if c.Contains(0) {
		t.Fatal("Contains promoted the line")
	}
}

func TestCacheReset(t *testing.T) {
	c := NewCache(tinySpec(4, 2))
	c.Probe(1)
	c.Reset()
	if c.Contains(1) || c.Hits != 0 || c.Misses != 0 {
		t.Fatal("Reset incomplete")
	}
}

func TestHierarchyLatencies(t *testing.T) {
	topo := machine.IntelWestmereEX32()
	h, err := NewHierarchy(topo, 16)
	if err != nil {
		t.Fatal(err)
	}
	const addr = 12345 * 64
	// Cold: DRAM local (first touch homes it to socket 0).
	if lat := h.Access(0, addr); lat != uint64(topo.DRAMLocalCycle) {
		t.Fatalf("cold access latency %d, want DRAM local %d", lat, topo.DRAMLocalCycle)
	}
	// Warm on same core: L1.
	if lat := h.Access(0, addr); lat != uint64(topo.L1.LatencyCycle) {
		t.Fatalf("warm access latency %d, want L1 %d", lat, topo.L1.LatencyCycle)
	}
	// Another core on the same socket: local L3 hit.
	if lat := h.Access(1, addr); lat != uint64(topo.L3.LatencyCycle) {
		t.Fatalf("same-socket access latency %d, want L3 %d", lat, topo.L3.LatencyCycle)
	}
	// A core on another socket: remote L3.
	if lat := h.Access(8, addr); lat != uint64(topo.L3RemoteCycle) {
		t.Fatalf("cross-socket access latency %d, want remote L3 %d", lat, topo.L3RemoteCycle)
	}
}

func TestHierarchyFirstTouchHoming(t *testing.T) {
	topo := machine.IntelWestmereEX32()
	h, err := NewHierarchy(topo, 16)
	if err != nil {
		t.Fatal(err)
	}
	// Core 8 (socket 1) touches a line first: homed to socket 1.
	const addr = 999 * 64
	if lat := h.Access(8, addr); lat != uint64(topo.DRAMLocalCycle) {
		t.Fatalf("first touch latency %d, want local DRAM", lat)
	}
	// Evict it by flooding socket 1's L3 and core 8's L1/L2... simpler:
	// fresh hierarchy, pre-home via a socket-1 access, then access the
	// line from socket 0 after the L3 copy is gone.
	h2, _ := NewHierarchy(topo, 16)
	h2.Access(8, addr)
	// Flood socket 1's caches so addr is evicted everywhere on socket 1.
	spec := topo.L3
	lines := spec.SizeBytes / spec.LineBytes * 2
	for i := 0; i < lines; i++ {
		h2.Access(8, uint64(1<<40)+uint64(i)*64)
	}
	if lat := h2.Access(0, addr); lat != uint64(topo.DRAMRemoteCycle) {
		t.Fatalf("remote-homed access latency %d, want remote DRAM %d", lat, topo.DRAMRemoteCycle)
	}
}

func TestHierarchyUMANoRemotePenalty(t *testing.T) {
	topo := machine.UMA(8)
	h, err := NewHierarchy(topo, 8)
	if err != nil {
		t.Fatal(err)
	}
	h.Access(0, 64)
	if lat := h.Access(7, 64); lat != uint64(topo.L3.LatencyCycle) {
		t.Fatalf("UMA shared L3 latency %d, want %d", lat, topo.L3.LatencyCycle)
	}
	if h.Counts.DRAMRemote != 0 {
		t.Fatal("UMA produced remote DRAM accesses")
	}
}

func TestNewHierarchyRejectsBadCores(t *testing.T) {
	topo := machine.IntelWestmereEX32()
	if _, err := NewHierarchy(topo, 0); err == nil {
		t.Fatal("0 cores accepted")
	}
	if _, err := NewHierarchy(topo, 33); err == nil {
		t.Fatal("33 cores accepted on a 32-core machine")
	}
	bad := topo
	bad.Sockets = 0
	if _, err := NewHierarchy(bad, 1); err == nil {
		t.Fatal("invalid topology accepted")
	}
}

func TestHitRate(t *testing.T) {
	topo := machine.UMA(2)
	h, _ := NewHierarchy(topo, 1)
	if h.HitRate() != 0 {
		t.Fatal("empty hierarchy hit rate should be 0")
	}
	h.Access(0, 0)  // miss
	h.Access(0, 0)  // L1 hit
	h.Access(0, 64) // miss
	if got := h.HitRate(); got < 0.3 || got > 0.4 {
		t.Fatalf("hit rate %v, want 1/3", got)
	}
}
