package cachesim

import (
	"testing"

	"stsk/internal/gen"
	"stsk/internal/machine"
	"stsk/internal/order"
)

func simPlan(t testing.TB, m order.Method, scale int) *order.Plan {
	t.Helper()
	a := gen.TriMesh(scale, scale, 7)
	p, err := order.Build(a, order.Options{Method: m, RowsPerSuper: 16})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSimulateBasics(t *testing.T) {
	p := simPlan(t, order.STS3, 20)
	topo := machine.IntelWestmereEX32()
	res, err := Simulate(p.S, topo, Options{Cores: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 {
		t.Fatal("zero modeled cycles")
	}
	if res.NumPacks != p.NumPacks {
		t.Fatalf("packs %d, want %d", res.NumPacks, p.NumPacks)
	}
	if len(res.PackCycles) != p.NumPacks || len(res.PackRows) != p.NumPacks {
		t.Fatal("per-pack series length wrong")
	}
	wantSync := uint64(p.NumPacks-1) * uint64(topo.SyncBaseCycle+topo.SyncPerCoreCycle*8)
	if res.SyncCycles != wantSync {
		t.Fatalf("sync cycles %d, want %d", res.SyncCycles, wantSync)
	}
	var sum uint64
	for _, pc := range res.PackCycles {
		sum += pc
	}
	if sum+res.SyncCycles != res.Cycles {
		t.Fatalf("pack cycles %d + sync %d != total %d", sum, res.SyncCycles, res.Cycles)
	}
	if res.HitRate <= 0 || res.HitRate >= 1 {
		t.Fatalf("implausible hit rate %v", res.HitRate)
	}
}

func TestSimulateDeterministic(t *testing.T) {
	p := simPlan(t, order.CSRCOL, 16)
	topo := machine.AMDMagnyCours24()
	a, err := Simulate(p.S, topo, Options{Cores: 12})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(p.S, topo, Options{Cores: 12})
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.Counts != b.Counts {
		t.Fatal("simulation not deterministic")
	}
}

func TestSimulateMoreCoresNotSlowerOnBigPacks(t *testing.T) {
	// Colouring yields a few huge packs; adding cores must cut the modeled
	// pack time even though barriers grow slightly.
	p := simPlan(t, order.STS3, 28)
	topo := machine.IntelWestmereEX32()
	r1, err := Simulate(p.S, topo, Options{Cores: 1})
	if err != nil {
		t.Fatal(err)
	}
	r16, err := Simulate(p.S, topo, Options{Cores: 16})
	if err != nil {
		t.Fatal(err)
	}
	if r16.Cycles >= r1.Cycles {
		t.Fatalf("16 cores (%d cycles) not faster than 1 core (%d cycles)", r16.Cycles, r1.Cycles)
	}
}

func TestSimulateWarmRepeatsFasterOrEqual(t *testing.T) {
	p := simPlan(t, order.STS3, 16)
	topo := machine.UMA(8)
	cold, err := Simulate(p.S, topo, Options{Cores: 4, Repeats: 1})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Simulate(p.S, topo, Options{Cores: 4, Repeats: 3})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Cycles > cold.Cycles {
		t.Fatalf("warm replay (%d) slower than cold (%d)", warm.Cycles, cold.Cycles)
	}
}

func TestSimulateSTS3BeatsCSRLS(t *testing.T) {
	// The headline shape (Figure 9): STS-3 clearly beats the CSR-LS
	// reference at a NUMA-relevant core count.
	topo := machine.IntelWestmereEX32()
	sts := simPlan(t, order.STS3, 36)
	ls := simPlan(t, order.CSRLS, 36)
	rSTS, err := Simulate(sts.S, topo, Options{Cores: 16})
	if err != nil {
		t.Fatal(err)
	}
	rLS, err := Simulate(ls.S, topo, Options{Cores: 16})
	if err != nil {
		t.Fatal(err)
	}
	if rSTS.Cycles >= rLS.Cycles {
		t.Fatalf("STS-3 (%d cycles) not faster than CSR-LS (%d cycles) at 16 cores",
			rSTS.Cycles, rLS.Cycles)
	}
}

func TestSimulateLocalityOrdering(t *testing.T) {
	// STS-3's sub-structuring must yield a hit rate at least as good as
	// row-level colouring on a mesh (the §4.4 locality claim).
	topo := machine.IntelWestmereEX32()
	sts := simPlan(t, order.STS3, 32)
	col := simPlan(t, order.CSRCOL, 32)
	rSTS, err := Simulate(sts.S, topo, Options{Cores: 16, Repeats: 2})
	if err != nil {
		t.Fatal(err)
	}
	rCOL, err := Simulate(col.S, topo, Options{Cores: 16, Repeats: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rSTS.HitRate < rCOL.HitRate {
		t.Fatalf("STS-3 hit rate %.4f below CSR-COL %.4f", rSTS.HitRate, rCOL.HitRate)
	}
}

func TestSimulateErrors(t *testing.T) {
	p := simPlan(t, order.STS3, 8)
	topo := machine.IntelWestmereEX32()
	if _, err := Simulate(p.S, topo, Options{Cores: 0}); err == nil {
		t.Fatal("0 cores accepted")
	}
	if _, err := Simulate(p.S, topo, Options{Cores: 100}); err == nil {
		t.Fatal("too many cores accepted")
	}
}
