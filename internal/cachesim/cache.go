// Package cachesim is the trace-driven NUMA cache-hierarchy simulator that
// stands in for the paper's pinned-OpenMP hardware measurements (see
// DESIGN.md §2). It replays the exact memory-access stream of the
// pack-parallel triangular solver of Algorithm 1 against set-associative
// LRU caches wired into a machine.Topology, with explicit compact
// task→core placement and first-touch NUMA page homing, and reports
// modeled cycles — deterministic, placement-controlled analogues of the
// paper's execution times.
package cachesim

import (
	"fmt"

	"stsk/internal/machine"
)

// Cache is one set-associative LRU cache. Tags are stored most-recently
// used first within each set.
type Cache struct {
	sets     [][]uint64
	assoc    int
	numSets  uint64
	Hits     uint64
	Misses   uint64
	lineMask uint64
}

// NewCache builds a cache with the given geometry. Addresses are probed in
// line units, so the spec's line size only participates via the caller.
func NewCache(spec machine.CacheSpec) *Cache {
	numSets := spec.SizeBytes / (spec.LineBytes * spec.Assoc)
	if numSets < 1 {
		numSets = 1
	}
	return &Cache{
		sets:    make([][]uint64, numSets),
		assoc:   spec.Assoc,
		numSets: uint64(numSets),
	}
}

// Probe looks the line up, updating LRU state, and inserts it on a miss
// (evicting the least recently used line if the set is full). It reports
// whether the access hit.
func (c *Cache) Probe(line uint64) bool {
	idx := line % c.numSets
	set := c.sets[idx]
	for i, tag := range set {
		if tag == line {
			// Move to front (MRU).
			copy(set[1:i+1], set[:i])
			set[0] = line
			c.Hits++
			return true
		}
	}
	c.Misses++
	if len(set) < c.assoc {
		set = append(set, 0)
	}
	copy(set[1:], set)
	set[0] = line
	c.sets[idx] = set
	return false
}

// Contains reports whether the line is resident without touching LRU
// state — used to model a remote-socket L3 snoop.
func (c *Cache) Contains(line uint64) bool {
	for _, tag := range c.sets[line%c.numSets] {
		if tag == line {
			return true
		}
	}
	return false
}

// Reset empties the cache and clears counters.
func (c *Cache) Reset() {
	for i := range c.sets {
		c.sets[i] = c.sets[i][:0]
	}
	c.Hits, c.Misses = 0, 0
}

// AccessCounts aggregates where accesses were served.
type AccessCounts struct {
	L1, L2          uint64
	L3Local         uint64
	L3Remote        uint64
	DRAMLocal       uint64
	DRAMRemote      uint64
	Total           uint64
	CyclesFromReads uint64
}

// Hierarchy is the full machine: private L1/L2 per core, shared L3 per
// socket, first-touch NUMA homing of cache lines.
type Hierarchy struct {
	topo   machine.Topology
	cores  int
	l1, l2 []*Cache
	l3     []*Cache
	home   map[uint64]uint8
	Counts AccessCounts

	lineShift uint // log2 of the topology's cache-line size
}

// NewHierarchy wires caches for the first `cores` cores of the topology
// under compact placement.
func NewHierarchy(topo machine.Topology, cores int) (*Hierarchy, error) {
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	if cores < 1 || cores > topo.TotalCores() {
		return nil, fmt.Errorf("cachesim: %d cores requested, topology %q has %d",
			cores, topo.Name, topo.TotalCores())
	}
	h := &Hierarchy{
		topo:  topo,
		cores: cores,
		l1:    make([]*Cache, cores),
		l2:    make([]*Cache, cores),
		home:  make(map[uint64]uint8),
	}
	for shift := uint(3); shift <= 12; shift++ {
		if 1<<shift == topo.L1.LineBytes {
			h.lineShift = shift
		}
	}
	if h.lineShift == 0 {
		return nil, fmt.Errorf("cachesim: line size %d is not a power of two in [8,4096]", topo.L1.LineBytes)
	}
	for c := 0; c < cores; c++ {
		h.l1[c] = NewCache(topo.L1)
		h.l2[c] = NewCache(topo.L2)
	}
	sockets := topo.SocketOf(cores-1) + 1
	h.l3 = make([]*Cache, sockets)
	for s := range h.l3 {
		h.l3[s] = NewCache(topo.L3)
	}
	return h, nil
}

// Access charges one random (pointer-chasing) memory access by the given
// core to the byte address and returns its latency in cycles. Use
// AccessStream for sequential array traffic.
func (h *Hierarchy) Access(core int, addr uint64) uint64 {
	return h.access(core, addr, false)
}

// AccessStream charges one access belonging to a sequential stream (matrix
// values, column indices, row pointers, the right-hand side): misses are
// charged the topology's PrefetchCycle instead of the full latency,
// modelling a hardware stream prefetcher. Cache contents update exactly as
// for Access, so stream traffic still causes capacity pressure.
func (h *Hierarchy) AccessStream(core int, addr uint64) uint64 {
	return h.access(core, addr, true)
}

func (h *Hierarchy) access(core int, addr uint64, stream bool) uint64 {
	line := addr >> h.lineShift
	h.Counts.Total++
	if h.l1[core].Probe(line) {
		h.Counts.L1++
		lat := uint64(h.topo.L1.LatencyCycle)
		h.Counts.CyclesFromReads += lat
		return lat
	}
	if h.l2[core].Probe(line) {
		h.Counts.L2++
		return h.charge(stream, uint64(h.topo.L2.LatencyCycle))
	}
	sock := h.topo.SocketOf(core)
	if h.l3[sock].Probe(line) {
		h.Counts.L3Local++
		return h.charge(stream, uint64(h.topo.L3.LatencyCycle))
	}
	// Local L3 missed (line now inserted). Snoop the other sockets, then
	// fall through to DRAM with first-touch homing.
	for s := range h.l3 {
		if s == sock {
			continue
		}
		if h.l3[s].Contains(line) {
			h.Counts.L3Remote++
			return h.charge(stream, uint64(h.topo.L3RemoteCycle))
		}
	}
	homeSock, ok := h.home[line]
	if !ok {
		homeSock = uint8(sock)
		h.home[line] = homeSock
	}
	if int(homeSock) == sock {
		h.Counts.DRAMLocal++
		return h.charge(stream, uint64(h.topo.DRAMLocalCycle))
	}
	h.Counts.DRAMRemote++
	return h.charge(stream, uint64(h.topo.DRAMRemoteCycle))
}

// charge applies the prefetcher discount to stream misses and accumulates
// the read-cycle counter.
func (h *Hierarchy) charge(stream bool, lat uint64) uint64 {
	if stream && h.topo.PrefetchCycle > 0 && lat > uint64(h.topo.PrefetchCycle) {
		lat = uint64(h.topo.PrefetchCycle)
	}
	h.Counts.CyclesFromReads += lat
	return lat
}

// HitRate returns the fraction of accesses served by L1 or L2 or the local
// L3 — the locality measure the paper's CSR-k analysis optimises.
func (h *Hierarchy) HitRate() float64 {
	if h.Counts.Total == 0 {
		return 0
	}
	served := h.Counts.L1 + h.Counts.L2 + h.Counts.L3Local
	return float64(served) / float64(h.Counts.Total)
}
