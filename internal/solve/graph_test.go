package solve

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"stsk/internal/gen"
	"stsk/internal/order"
	"stsk/internal/testmat"
)

// graphEngine builds an engine on the dependency-driven schedule with a
// fine-grained DAG so even small test matrices exercise real task graphs.
func graphEngine(p *order.Plan, workers int) *Engine {
	dag := order.BuildTaskDAG(p.S, order.TaskDAGOptions{SplitPerPack: 4, MinTaskNNZ: 16})
	return NewEngine(p.S, Options{Workers: workers, Schedule: Graph, Graph: dag})
}

// TestGraphSolveMatchesSequentialBitwise is the core correctness gate of
// the point-to-point scheduler: for every method and several worker
// counts, graph-scheduled solves must equal Sequential bit for bit.
func TestGraphSolveMatchesSequentialBitwise(t *testing.T) {
	for _, ent := range testmat.Corpus() {
		name, a := ent.Name, ent.A
		for _, m := range order.Methods() {
			p := planFor(t, a, m)
			B, want := randomRHS(p, 3, 17)
			for _, workers := range []int{2, 3, 8} {
				e := graphEngine(p, workers)
				for r := range B {
					x, err := e.Solve(B[r])
					if err != nil {
						t.Fatal(err)
					}
					assertBitwise(t, name+"/"+m.String()+"/graph", x, want[r])
				}
				e.Close()
			}
		}
	}
}

// TestGraphSolveUpperBitwise checks the reverse sweep: the graph schedule
// runs the DAG backwards (successors become prerequisites) and must match
// the single-worker backward solve bitwise.
func TestGraphSolveUpperBitwise(t *testing.T) {
	a := gen.Grid2D(12, 12)
	for _, m := range order.Methods() {
		p := planFor(t, a, m)
		us, err := NewUpperSolver(p.S)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(3))
		b := make([]float64, a.N)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		want, err := us.Solve(b, Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		e := graphEngine(p, 4)
		x, err := e.SolveUpper(b)
		if err != nil {
			t.Fatal(err)
		}
		assertBitwise(t, m.String()+"/graph-upper", x, want)
		e.Close()
	}
}

// TestGraphScheduleFallsBackWithoutDAG: the Graph schedule without a DAG
// must demote itself to the barrier Guided schedule and still solve.
func TestGraphScheduleFallsBackWithoutDAG(t *testing.T) {
	a := gen.Grid2D(10, 10)
	p := planFor(t, a, order.STS3)
	e := NewEngine(p.S, Options{Workers: 3, Schedule: Graph})
	defer e.Close()
	if e.opts.Schedule != Guided {
		t.Fatalf("schedule %v, want fallback to Guided", e.opts.Schedule)
	}
	B, want := randomRHS(p, 1, 9)
	x, err := e.Solve(B[0])
	if err != nil {
		t.Fatal(err)
	}
	assertBitwise(t, "fallback", x, want[0])
}

// TestGraphScheduleRejectsForeignDAG: a DAG built for another structure
// must be dropped rather than drive an out-of-bounds schedule.
func TestGraphScheduleRejectsForeignDAG(t *testing.T) {
	small := planFor(t, gen.Grid2D(8, 8), order.STS3)
	big := planFor(t, gen.Grid2D(12, 12), order.STS3)
	dag := order.BuildTaskDAG(big.S, order.TaskDAGOptions{})
	e := NewEngine(small.S, Options{Workers: 2, Schedule: Graph, Graph: dag})
	defer e.Close()
	if e.opts.Graph != nil || e.opts.Schedule != Guided {
		t.Fatalf("foreign DAG accepted: schedule %v", e.opts.Schedule)
	}
}

// TestGraphConcurrentSolves hammers one graph-scheduled engine with a mix
// of cooperative forward/backward solves and batches from many
// goroutines — the race-detector gate for the P2P scheduler state.
func TestGraphConcurrentSolves(t *testing.T) {
	a := gen.TriMesh(12, 12, 3)
	p := planFor(t, a, order.STS3)
	B, want := randomRHS(p, 6, 29)
	e := graphEngine(p, 4)
	defer e.Close()
	if err := e.ensureUpper(e.vals.Current()); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < 5; it++ {
				switch g % 3 {
				case 0:
					x, err := e.Solve(B[it%len(B)])
					if err != nil {
						t.Error(err)
						return
					}
					for i := range x {
						if x[i] != want[it%len(B)][i] {
							t.Errorf("graph coop mismatch at %d", i)
							return
						}
					}
				case 1:
					if _, err := e.SolveUpper(B[it%len(B)]); err != nil {
						t.Error(err)
						return
					}
				default:
					X, err := e.SolveBatch(B)
					if err != nil {
						t.Error(err)
						return
					}
					for r := range X {
						for i := range X[r] {
							if X[r][i] != want[r][i] {
								t.Errorf("batch mismatch rhs %d at %d", r, i)
								return
							}
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestGraphCloseRacingSolves closes graph-scheduled engines while solves
// are in flight: complete or ErrClosed, never a deadlock.
func TestGraphCloseRacingSolves(t *testing.T) {
	a := gen.Grid2D(10, 10)
	p := planFor(t, a, order.STS3)
	B, _ := randomRHS(p, 2, 3)
	for trial := 0; trial < 20; trial++ {
		e := graphEngine(p, 4)
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < 10; i++ {
					var err error
					if g%2 == 0 {
						_, err = e.Solve(B[i%2])
					} else {
						_, err = e.SolveBatch(B)
					}
					if err != nil {
						if !errors.Is(err, ErrClosed) {
							t.Error(err)
						}
						return
					}
				}
			}(g)
		}
		e.Close()
		wg.Wait()
	}
}

// TestEngineSteadyStateAllocs asserts the satellite acceptance: once the
// pools are warm, Into-style solves — cooperative barrier, cooperative
// graph, and batches — allocate nothing per call.
func TestEngineSteadyStateAllocs(t *testing.T) {
	testmat.SkipIfRace(t)
	a := gen.Grid3D(6, 6, 6)
	p := planFor(t, a, order.STS3)
	B, _ := randomRHS(p, 8, 41)
	X := make([][]float64, len(B))
	for i := range X {
		X[i] = make([]float64, p.S.L.N)
	}
	x := make([]float64, p.S.L.N)

	check := func(name string, e *Engine) {
		t.Helper()
		defer e.Close()
		// Warm the worker scratch, pools, and lazy transpose.
		for i := 0; i < 3; i++ {
			if err := e.SolveInto(x, B[0]); err != nil {
				t.Fatal(err)
			}
			if err := e.SolveBatchInto(X, B); err != nil {
				t.Fatal(err)
			}
			if err := e.SolveUpperInto(x, B[0]); err != nil {
				t.Fatal(err)
			}
		}
		if n := testing.AllocsPerRun(50, func() {
			if err := e.SolveInto(x, B[0]); err != nil {
				t.Fatal(err)
			}
		}); n != 0 {
			t.Errorf("%s: SolveInto allocates %.1f/op, want 0", name, n)
		}
		if n := testing.AllocsPerRun(50, func() {
			if err := e.SolveBatchInto(X, B); err != nil {
				t.Fatal(err)
			}
		}); n != 0 {
			t.Errorf("%s: SolveBatchInto allocates %.1f/op, want 0", name, n)
		}
		if n := testing.AllocsPerRun(50, func() {
			if err := e.SolveUpperInto(x, B[0]); err != nil {
				t.Fatal(err)
			}
		}); n != 0 {
			t.Errorf("%s: SolveUpperInto allocates %.1f/op, want 0", name, n)
		}
	}
	check("barrier", NewEngine(p.S, Options{Workers: 4}))
	check("graph", graphEngine(p, 4))
}
