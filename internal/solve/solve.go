// Package solve provides the triangular-solution kernels of the STS-k
// reproduction: a sequential reference and a pack-parallel solver over the
// csrk.Structure, with OpenMP-style static, dynamic(chunk) and
// guided(chunk) loop schedules standing in for the paper's
// `#pragma omp parallel for schedule(runtime, chunk)` (Algorithm 1).
//
// The paper runs CSR-LS/CSR-COL with schedule(dynamic,32) and the CSR-3-*
// schemes with schedule(guided,1) (§4.1); DefaultsFor reproduces that
// pairing.
package solve

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"stsk/internal/csrk"
)

// Schedule selects how super-rows of a pack are handed to workers.
type Schedule int

const (
	// Static splits each pack into equal contiguous blocks, one per worker.
	Static Schedule = iota
	// Dynamic hands out fixed chunks of super-rows first-come-first-served.
	Dynamic
	// Guided hands out shrinking chunks (remaining / workers, floored at
	// the chunk size), the OpenMP guided policy.
	Guided
)

func (s Schedule) String() string {
	switch s {
	case Static:
		return "static"
	case Dynamic:
		return "dynamic"
	case Guided:
		return "guided"
	}
	return fmt.Sprintf("Schedule(%d)", int(s))
}

// Options configures the parallel solver.
type Options struct {
	// Workers is the number of solver goroutines; defaults to GOMAXPROCS.
	Workers int
	// Schedule is the loop schedule; defaults to Guided.
	Schedule Schedule
	// Chunk is the schedule granularity in super-rows; defaults to 1.
	Chunk int
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Chunk <= 0 {
		o.Chunk = 1
	}
	return o
}

// DefaultsFor returns the paper's schedule pairing: dynamic,32 for the
// row-level schemes and guided,1 for the k-level schemes (§4.1).
func DefaultsFor(usesSuperRows bool, workers int) Options {
	if usesSuperRows {
		return Options{Workers: workers, Schedule: Guided, Chunk: 1}
	}
	return Options{Workers: workers, Schedule: Dynamic, Chunk: 32}
}

// Sequential solves S.L x = b by rows in order and returns x. It is the
// single-core baseline T(mat, method, 1) of the evaluation.
func Sequential(s *csrk.Structure, b []float64) ([]float64, error) {
	l := s.L
	if len(b) != l.N {
		return nil, fmt.Errorf("solve: rhs length %d, want %d", len(b), l.N)
	}
	x := make([]float64, l.N)
	solveRows(l.RowPtr, l.Col, l.Val, x, b, 0, l.N)
	return x, nil
}

// solveRows performs forward substitution for rows [lo, hi). Each row's
// diagonal entry is last (guaranteed by csrk.Structure.Validate).
func solveRows(rowPtr, col []int, val, x, b []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		s := 0.0
		end := rowPtr[i+1] - 1
		for k := rowPtr[i]; k < end; k++ {
			s += val[k] * x[col[k]]
		}
		x[i] = (b[i] - s) / val[end]
	}
}

// Parallel solves S.L x = b with the pack-parallel scheme of Algorithm 1:
// packs run one after another; the super-rows of a pack are distributed
// over workers by the configured schedule; rows inside a super-row are
// solved sequentially by one worker.
func Parallel(s *csrk.Structure, b []float64, opts Options) ([]float64, error) {
	x := make([]float64, s.L.N)
	if err := ParallelInto(x, s, b, opts); err != nil {
		return nil, err
	}
	return x, nil
}

// ParallelInto is Parallel writing into a caller-provided solution vector,
// for benchmark loops that avoid per-solve allocation.
func ParallelInto(x []float64, s *csrk.Structure, b []float64, opts Options) error {
	l := s.L
	if len(b) != l.N || len(x) != l.N {
		return fmt.Errorf("solve: vector lengths %d/%d, want %d", len(x), len(b), l.N)
	}
	opts = opts.withDefaults()
	if opts.Workers == 1 || s.NumSuperRows() == 1 {
		solveRows(l.RowPtr, l.Col, l.Val, x, b, 0, l.N)
		return nil
	}
	run := &runner{
		s:    s,
		x:    x,
		b:    b,
		opts: opts,
	}
	run.barrier.size = opts.Workers
	run.barrier.cond = sync.NewCond(&run.barrier.mu)
	run.counters = make([]atomic.Int64, s.NumPacks())
	for p := range run.counters {
		run.counters[p].Store(int64(s.PackPtr[p]))
	}
	var wg sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			run.work(id)
		}(w)
	}
	wg.Wait()
	return nil
}

// runner carries the shared state of one parallel solve.
type runner struct {
	s        *csrk.Structure
	x, b     []float64
	opts     Options
	counters []atomic.Int64 // per-pack next super-row (dynamic/guided)
	barrier  barrier
}

func (r *runner) work(id int) {
	s := r.s
	for p := 0; p < s.NumPacks(); p++ {
		lo, hi := s.PackSuperRows(p)
		switch r.opts.Schedule {
		case Static:
			span := hi - lo
			per := (span + r.opts.Workers - 1) / r.opts.Workers
			start := lo + id*per
			end := start + per
			if start > hi {
				start = hi
			}
			if end > hi {
				end = hi
			}
			for sr := start; sr < end; sr++ {
				r.solveSuper(sr)
			}
		case Dynamic:
			c := int64(r.opts.Chunk)
			for {
				from := r.counters[p].Add(c) - c
				if from >= int64(hi) {
					break
				}
				to := from + c
				if to > int64(hi) {
					to = int64(hi)
				}
				for sr := int(from); sr < int(to); sr++ {
					r.solveSuper(sr)
				}
			}
		case Guided:
			for {
				from, to, ok := r.grabGuided(p, hi)
				if !ok {
					break
				}
				for sr := from; sr < to; sr++ {
					r.solveSuper(sr)
				}
			}
		}
		// All workers must finish pack p before any starts pack p+1;
		// the barrier's mutex also publishes the x writes.
		r.barrier.wait()
	}
}

// grabGuided claims the next guided chunk of pack p: remaining/workers
// super-rows, floored at the chunk option.
func (r *runner) grabGuided(p, hi int) (from, to int, ok bool) {
	for {
		cur := r.counters[p].Load()
		if cur >= int64(hi) {
			return 0, 0, false
		}
		remaining := int(int64(hi) - cur)
		take := remaining / r.opts.Workers
		if take < r.opts.Chunk {
			take = r.opts.Chunk
		}
		if take > remaining {
			take = remaining
		}
		if r.counters[p].CompareAndSwap(cur, cur+int64(take)) {
			return int(cur), int(cur) + take, true
		}
	}
}

func (r *runner) solveSuper(sr int) {
	lo, hi := r.s.SuperRowRows(sr)
	solveRows(r.s.L.RowPtr, r.s.L.Col, r.s.L.Val, r.x, r.b, lo, hi)
}

// barrier is a reusable counting barrier; waiters of one generation block
// until all workers arrive, then the next generation begins.
type barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	count int
	size  int
	gen   int
}

func (b *barrier) wait() {
	b.mu.Lock()
	gen := b.gen
	b.count++
	if b.count == b.size {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
	} else {
		for gen == b.gen {
			b.cond.Wait()
		}
	}
	b.mu.Unlock()
}
