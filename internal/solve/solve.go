// Package solve provides the triangular-solution kernels of the STS-k
// reproduction: a sequential reference and a pack-parallel solver over the
// csrk.Structure, with OpenMP-style static, dynamic(chunk) and
// guided(chunk) loop schedules standing in for the paper's
// `#pragma omp parallel for schedule(runtime, chunk)` (Algorithm 1).
//
// The paper runs CSR-LS/CSR-COL with schedule(dynamic,32) and the CSR-3-*
// schemes with schedule(guided,1) (§4.1); DefaultsFor reproduces that
// pairing.
package solve

import (
	"fmt"
	"runtime"
	"sync"

	"stsk/internal/csrk"
)

// Schedule selects how super-rows of a pack are handed to workers.
type Schedule int

const (
	// Static splits each pack into equal contiguous blocks, one per worker.
	Static Schedule = iota
	// Dynamic hands out fixed chunks of super-rows first-come-first-served.
	Dynamic
	// Guided hands out shrinking chunks (remaining / workers, floored at
	// the chunk size), the OpenMP guided policy.
	Guided
	// Graph replaces the barrier between packs with dependency-driven
	// point-to-point scheduling over a csrk.TaskDAG: tasks carry atomic
	// completion counters and a worker finishing a task immediately claims
	// any task it makes ready, so independent subtrees never synchronise.
	// Requires Options.Graph; falls back to Guided without one.
	Graph
)

func (s Schedule) String() string {
	switch s {
	case Static:
		return "static"
	case Dynamic:
		return "dynamic"
	case Guided:
		return "guided"
	case Graph:
		return "graph"
	}
	return fmt.Sprintf("Schedule(%d)", int(s))
}

// Options configures the parallel solver.
type Options struct {
	// Workers is the number of solver goroutines; defaults to GOMAXPROCS.
	Workers int
	// Schedule is the loop schedule; defaults to Guided.
	Schedule Schedule
	// Chunk is the schedule granularity in super-rows; defaults to 1.
	// Ignored by the Graph schedule (granularity is fixed in the DAG).
	Chunk int
	// Graph is the dependency DAG driving the Graph schedule, built once
	// at plan time by order.BuildTaskDAG over the same structure.
	Graph *csrk.TaskDAG

	// BlockWidth is the default panel width of the blocked multi-vector
	// solves (SolveBlockInto and friends): right-hand sides are grouped
	// into row-major panels of up to this many columns and the matrix is
	// traversed once per panel instead of once per vector. 0 selects the
	// widest unrolled kernel (8); widths round down to {8, 4, 2}; 1
	// disables panelling.
	BlockWidth int

	// oneShot marks an engine that lives for a single solve (the
	// Parallel/UpperSolver compatibility wrappers): such engines skip the
	// O(nnz) packed-layout conversion, whose cost only amortises across
	// repeated solves on a persistent engine.
	oneShot bool
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Chunk <= 0 {
		o.Chunk = 1
	}
	if o.BlockWidth <= 0 {
		o.BlockWidth = maxBlockWidth
	}
	if o.Schedule == Graph && o.Graph == nil {
		o.Schedule = Guided
	}
	return o
}

// DefaultsFor returns the paper's schedule pairing: dynamic,32 for the
// row-level schemes and guided,1 for the k-level schemes (§4.1).
func DefaultsFor(usesSuperRows bool, workers int) Options {
	if usesSuperRows {
		return Options{Workers: workers, Schedule: Guided, Chunk: 1}
	}
	return Options{Workers: workers, Schedule: Dynamic, Chunk: 32}
}

// Sequential solves S.L x = b by rows in order and returns x. It is the
// single-core baseline T(mat, method, 1) of the evaluation.
func Sequential(s *csrk.Structure, b []float64) ([]float64, error) {
	l := s.L
	if len(b) != l.N {
		return nil, fmt.Errorf("%w: rhs length %d, want %d", ErrDimension, len(b), l.N)
	}
	x := make([]float64, l.N)
	solveRows(l.RowPtr, l.Col, l.Val, x, b, 0, l.N)
	return x, nil
}

// solveRows performs forward substitution for rows [lo, hi). Each row's
// diagonal entry is last (guaranteed by csrk.Structure.Validate).
//
//stsk:noalloc
func solveRows(rowPtr, col []int, val, x, b []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		s := 0.0
		end := rowPtr[i+1] - 1
		for k := rowPtr[i]; k < end; k++ {
			s += val[k] * x[col[k]]
		}
		x[i] = (b[i] - s) / val[end]
	}
}

// Parallel solves S.L x = b with the pack-parallel scheme of Algorithm 1:
// packs run one after another; the super-rows of a pack are distributed
// over workers by the configured schedule; rows inside a super-row are
// solved sequentially by one worker.
func Parallel(s *csrk.Structure, b []float64, opts Options) ([]float64, error) {
	x := make([]float64, s.L.N)
	if err := ParallelInto(x, s, b, opts); err != nil {
		return nil, err
	}
	return x, nil
}

// ParallelInto is Parallel writing into a caller-provided solution vector,
// for benchmark loops that avoid per-solve allocation.
//
// Both functions are one-shot compatibility wrappers over Engine: they
// spin the worker pool up and down around a single cooperative solve,
// matching the historical cost of spawning fresh goroutines per call.
// Callers solving the same structure repeatedly should hold an Engine (or
// the stsk.Solver facade) instead.
func ParallelInto(x []float64, s *csrk.Structure, b []float64, opts Options) error {
	l := s.L
	if len(b) != l.N || len(x) != l.N {
		return fmt.Errorf("%w: vector lengths %d/%d, want %d", ErrDimension, len(x), len(b), l.N)
	}
	opts = opts.withDefaults()
	if opts.Workers == 1 || s.NumSuperRows() == 1 {
		solveRows(l.RowPtr, l.Col, l.Val, x, b, 0, l.N)
		return nil
	}
	opts.oneShot = true
	e := NewEngine(s, opts)
	defer e.Close()
	return e.SolveInto(x, b)
}

// SolveOnceVals runs one one-shot cooperative solve over a shared
// value-epoch sequence — forward (L′x = b) or, when upper is set, the
// transposed system L′ᵀx = b. Unlike ParallelInto it reuses v's per-epoch
// derived state (the packed layout and the validated transpose), so
// one-shot solves against a plan that also holds persistent engines pay
// no per-call transpose.
func SolveOnceVals(v *Values, x, b []float64, upper bool, opts Options) error {
	ep := v.Current()
	n := ep.s.L.N
	if len(b) != n || len(x) != n {
		return fmt.Errorf("%w: vector lengths %d/%d, want %d", ErrDimension, len(x), len(b), n)
	}
	opts = opts.withDefaults()
	if upper {
		if err := ep.ensureUpper(v.packWanted.Load()); err != nil {
			return err
		}
	}
	if opts.Workers == 1 || ep.s.NumSuperRows() == 1 {
		if upper {
			ep.backwardRows(x, b, 0, n)
		} else {
			ep.forwardRows(x, b, 0, n)
		}
		return nil
	}
	opts.oneShot = true
	e := newEngine(v, nil, opts)
	defer e.Close()
	if upper {
		return e.SolveUpperInto(x, b)
	}
	return e.SolveInto(x, b)
}

// barrier is a reusable counting barrier; waiters of one generation block
// until all workers arrive, then the next generation begins.
type barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	count int
	size  int
	gen   int
}

func (b *barrier) wait() {
	b.mu.Lock()
	gen := b.gen
	b.count++
	if b.count == b.size {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
	} else {
		for gen == b.gen {
			b.cond.Wait()
		}
	}
	b.mu.Unlock()
}
