package solve

import (
	"math/rand"
	"testing"

	"stsk/internal/csrk"
	"stsk/internal/gen"
	"stsk/internal/order"
	"stsk/internal/sparse"
)

// planFor builds a plan for the given matrix and method.
func planFor(t testing.TB, a *sparse.CSR, m order.Method) *order.Plan {
	t.Helper()
	p, err := order.Build(a, order.Options{Method: m, RowsPerSuper: 8})
	if err != nil {
		t.Fatalf("%v: %v", m, err)
	}
	return p
}

func TestSequentialMatchesReference(t *testing.T) {
	a := gen.Grid2D(13, 11)
	p := planFor(t, a, order.STS3)
	xTrue := make([]float64, a.N)
	for i := range xTrue {
		xTrue[i] = float64(i%5) + 0.5
	}
	b := sparse.RHSForSolution(p.S.L, xTrue)
	x, err := Sequential(p.S, b)
	if err != nil {
		t.Fatal(err)
	}
	if d := sparse.MaxAbsDiff(x, xTrue); d > 1e-10 {
		t.Fatalf("sequential error %g", d)
	}
	if _, err := Sequential(p.S, b[:3]); err == nil {
		t.Fatal("short rhs accepted")
	}
}

func TestParallelAllMethodsSchedulesWorkers(t *testing.T) {
	mats := map[string]*sparse.CSR{
		"trimesh": gen.TriMesh(18, 18, 3),
		"grid3d":  gen.Grid3D(6, 6, 6),
		"roadnet": gen.RoadNet(6, 6, 3, 5, 1),
	}
	for name, a := range mats {
		for _, m := range order.Methods() {
			p := planFor(t, a, m)
			xTrue := make([]float64, a.N)
			rng := rand.New(rand.NewSource(9))
			for i := range xTrue {
				xTrue[i] = rng.NormFloat64()
			}
			b := sparse.RHSForSolution(p.S.L, xTrue)
			for _, sched := range []Schedule{Static, Dynamic, Guided} {
				for _, workers := range []int{1, 2, 3, 8} {
					x, err := Parallel(p.S, b, Options{Workers: workers, Schedule: sched, Chunk: 2})
					if err != nil {
						t.Fatalf("%s/%v/%v/w%d: %v", name, m, sched, workers, err)
					}
					if d := sparse.MaxAbsDiff(x, xTrue); d > 1e-9 {
						t.Fatalf("%s/%v/%v/w%d: error %g", name, m, sched, workers, d)
					}
				}
			}
		}
	}
}

func TestParallelIntoReusesBuffer(t *testing.T) {
	a := gen.Grid2D(10, 10)
	p := planFor(t, a, order.CSRCOL)
	xTrue := sparse.Ones(a.N)
	b := sparse.RHSForSolution(p.S.L, xTrue)
	x := make([]float64, a.N)
	for rep := 0; rep < 3; rep++ {
		if err := ParallelInto(x, p.S, b, Options{Workers: 4}); err != nil {
			t.Fatal(err)
		}
		if d := sparse.MaxAbsDiff(x, xTrue); d > 1e-10 {
			t.Fatalf("rep %d: error %g", rep, d)
		}
	}
	if err := ParallelInto(x[:2], p.S, b, Options{}); err == nil {
		t.Fatal("short x accepted")
	}
	if err := ParallelInto(x, p.S, b[:2], Options{}); err == nil {
		t.Fatal("short b accepted")
	}
}

func TestParallelManyMoreWorkersThanWork(t *testing.T) {
	// More workers than super-rows in any pack: schedules must not deadlock
	// or double-solve.
	a := gen.Grid2D(5, 5)
	p := planFor(t, a, order.CSRLS)
	xTrue := sparse.Ones(a.N)
	b := sparse.RHSForSolution(p.S.L, xTrue)
	for _, sched := range []Schedule{Static, Dynamic, Guided} {
		x, err := Parallel(p.S, b, Options{Workers: 16, Schedule: sched})
		if err != nil {
			t.Fatal(err)
		}
		if d := sparse.MaxAbsDiff(x, xTrue); d > 1e-10 {
			t.Fatalf("%v: error %g", sched, d)
		}
	}
}

func TestParallelRandomizedStress(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	specs := gen.PaperSuite(400)
	for trial := 0; trial < 6; trial++ {
		spec := specs[rng.Intn(len(specs))]
		a := spec.Build(400)
		m := order.Methods()[rng.Intn(4)]
		p := planFor(t, a, m)
		xTrue := make([]float64, a.N)
		for i := range xTrue {
			xTrue[i] = rng.Float64()*4 - 2
		}
		b := sparse.RHSForSolution(p.S.L, xTrue)
		opts := Options{
			Workers:  1 + rng.Intn(8),
			Schedule: Schedule(rng.Intn(3)),
			Chunk:    1 + rng.Intn(5),
		}
		x, err := Parallel(p.S, b, opts)
		if err != nil {
			t.Fatalf("%s/%v: %v", spec.ID, m, err)
		}
		if d := sparse.MaxAbsDiff(x, xTrue); d > 1e-8 {
			t.Fatalf("%s/%v %+v: error %g", spec.ID, m, opts, d)
		}
	}
}

func TestFlatStructureSolve(t *testing.T) {
	// A Flat structure has one pack: everything sequential in one chunk.
	a := gen.Grid2D(8, 8)
	l := a.Lower()
	s := csrk.Flat(l)
	xTrue := sparse.Ones(a.N)
	b := sparse.RHSForSolution(l, xTrue)
	x, err := Parallel(s, b, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if d := sparse.MaxAbsDiff(x, xTrue); d > 1e-10 {
		t.Fatalf("flat solve error %g", d)
	}
}

func TestDefaultsFor(t *testing.T) {
	o := DefaultsFor(true, 8)
	if o.Schedule != Guided || o.Chunk != 1 || o.Workers != 8 {
		t.Fatalf("k-level defaults wrong: %+v", o)
	}
	o = DefaultsFor(false, 4)
	if o.Schedule != Dynamic || o.Chunk != 32 {
		t.Fatalf("row-level defaults wrong: %+v", o)
	}
}

func TestScheduleString(t *testing.T) {
	if Static.String() != "static" || Dynamic.String() != "dynamic" || Guided.String() != "guided" {
		t.Fatal("schedule names wrong")
	}
	if Schedule(9).String() == "" {
		t.Fatal("unknown schedule should format")
	}
}
