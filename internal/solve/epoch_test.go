package solve

import (
	"errors"
	"testing"

	"stsk/internal/order"
	"stsk/internal/testmat"
)

// TestValuesSwapContract pins the Values.Swap error contract: wrong
// lengths wrap ErrDimension, a zero diagonal is rejected, and a failed
// swap publishes nothing.
func TestValuesSwapContract(t *testing.T) {
	a := testmat.Grid3D(4)
	p := planFor(t, a, order.STS3)
	v := NewValues(p.S)
	if got := v.Version(); got != 0 {
		t.Fatalf("fresh Values at version %d", got)
	}
	nnz := len(p.S.L.Val)
	if err := v.Swap(make([]float64, nnz-1)); !errors.Is(err, ErrDimension) {
		t.Fatalf("short swap: %v, want ErrDimension", err)
	}
	if err := v.Swap(make([]float64, nnz+1)); !errors.Is(err, ErrDimension) {
		t.Fatalf("long swap: %v, want ErrDimension", err)
	}
	zeroed := append([]float64(nil), p.S.L.Val...)
	zeroed[p.S.L.RowPtr[3]-1] = 0 // row 2's diagonal (last stored entry of the row)
	if err := v.Swap(zeroed); err == nil {
		t.Fatal("zero diagonal accepted")
	}
	if got := v.Version(); got != 0 {
		t.Fatalf("version %d after rejected swaps, want 0", got)
	}

	doubled := make([]float64, nnz)
	for k, x := range p.S.L.Val {
		doubled[k] = 2 * x
	}
	if err := v.Swap(doubled); err != nil {
		t.Fatal(err)
	}
	if got := v.Version(); got != 1 {
		t.Fatalf("version %d after swap, want 1", got)
	}
	if &v.Structure().L.Val[0] != &doubled[0] {
		t.Fatal("swap did not publish the new value array")
	}
	if v.Structure().L.Col == nil || &v.Structure().L.Col[0] != &p.S.L.Col[0] {
		t.Fatal("swap did not share the symbolic arrays")
	}
}

// TestEngineSeesSwappedValues: an engine bound to a shared Values must
// solve on the new epoch after a swap, bitwise equal to Sequential over
// the swapped structure — on the cooperative, batch, and upper paths.
func TestEngineSeesSwappedValues(t *testing.T) {
	a := testmat.TriMesh(10)
	p := planFor(t, a, order.STS3)
	v := NewValues(p.S)
	e := NewEngineVals(v, Options{Workers: 3})
	defer e.Close()

	B, want := randomRHS(p, 2, 13)
	x, err := e.Solve(B[0])
	if err != nil {
		t.Fatal(err)
	}
	assertBitwise(t, "pre-swap", x, want[0])

	scaled := make([]float64, len(p.S.L.Val))
	for k, val := range p.S.L.Val {
		scaled[k] = -3 * val
	}
	if err := v.Swap(scaled); err != nil {
		t.Fatal(err)
	}
	for r := range B {
		wantNew, err := Sequential(v.Structure(), B[r])
		if err != nil {
			t.Fatal(err)
		}
		x, err := e.Solve(B[r])
		if err != nil {
			t.Fatal(err)
		}
		assertBitwise(t, "post-swap coop", x, wantNew)
		X, err := e.SolveBatch(B[r : r+1])
		if err != nil {
			t.Fatal(err)
		}
		assertBitwise(t, "post-swap batch", X[0], wantNew)
	}
	// The upper path re-derives the transpose for the new epoch.
	us, err := NewUpperSolver(v.Structure())
	if err != nil {
		t.Fatal(err)
	}
	wantU, err := us.Solve(B[0], Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	gotU, err := e.SolveUpper(B[0])
	if err != nil {
		t.Fatal(err)
	}
	assertBitwise(t, "post-swap upper", gotU, wantU)
	if tr := us.Transposed(); tr == nil || tr.N != p.S.L.N {
		t.Fatal("upper solver does not expose its validated transpose")
	}
}

// TestEpochAccessorsAndOneShot covers the epoch-threaded read paths: the
// engine exposes its Values handle and per-epoch diagonal, and
// SolveOnceVals (the one-shot path over a shared epoch sequence) matches
// Sequential on both sweeps and rejects bad lengths.
func TestEpochAccessorsAndOneShot(t *testing.T) {
	a := testmat.Grid3D(4)
	p := planFor(t, a, order.STS3)
	v := NewValues(p.S)
	e := NewEngineVals(v, Options{Workers: 2})
	defer e.Close()
	if e.Values() != v {
		t.Fatal("engine does not expose its Values handle")
	}
	diag := e.Diagonal()
	if len(diag) != p.S.L.N {
		t.Fatalf("diagonal has %d entries, want %d", len(diag), p.S.L.N)
	}
	for i, d := range diag {
		if d == 0 {
			t.Fatalf("zero diagonal at row %d", i)
		}
	}

	B, want := randomRHS(p, 1, 7)
	x := make([]float64, p.S.L.N)
	if err := SolveOnceVals(v, x, B[0], false, Options{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	assertBitwise(t, "one-shot forward", x, want[0])
	us, err := NewUpperSolver(p.S)
	if err != nil {
		t.Fatal(err)
	}
	wantU, err := us.Solve(B[0], Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := SolveOnceVals(v, x, B[0], true, Options{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	assertBitwise(t, "one-shot upper", x, wantU)
	if err := SolveOnceVals(v, x, B[0][:2], false, Options{}); !errors.Is(err, ErrDimension) {
		t.Fatalf("short b: %v, want ErrDimension", err)
	}
}
