package solve

import (
	"math/rand"
	"testing"
	"testing/quick"

	"stsk/internal/order"
	"stsk/internal/sparse"
)

// randomSPDSystem builds a random connected SPD-by-dominance matrix.
func randomSPDSystem(rng *rand.Rand, maxN int) *sparse.CSR {
	n := 2 + rng.Intn(maxN)
	coo := sparse.NewCOO(n, 6*n)
	for i := 0; i < n; i++ {
		coo.Add(i, i, 1)
	}
	for v := 1; v < n; v++ {
		coo.AddSym(v, rng.Intn(v), 1)
	}
	for e := 0; e < rng.Intn(3*n); e++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i != j {
			coo.AddSym(i, j, 1)
		}
	}
	m := coo.ToCSR()
	if err := sparse.AssignSPDValues(m); err != nil {
		panic(err)
	}
	return m
}

// TestParallelEqualsSequentialProperty: for random systems, methods,
// schedules and worker counts, the parallel solver must agree bit-for-bit
// goal-wise (within round-off) with sequential forward substitution.
func TestParallelEqualsSequentialProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(59))}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomSPDSystem(rng, 70)
		m := order.Methods()[rng.Intn(4)]
		p, err := order.Build(a, order.Options{Method: m, RowsPerSuper: 1 + rng.Intn(10)})
		if err != nil {
			return false
		}
		b := make([]float64, a.N)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		ref, err := sparse.ForwardSubstitution(p.S.L, b)
		if err != nil {
			return false
		}
		x, err := Parallel(p.S, b, Options{
			Workers:  1 + rng.Intn(6),
			Schedule: Schedule(rng.Intn(3)),
			Chunk:    1 + rng.Intn(4),
		})
		if err != nil {
			return false
		}
		return sparse.MaxAbsDiff(x, ref) < 1e-10
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestUpperEqualsSequentialProperty mirrors the forward property for the
// pack-parallel backward solver.
func TestUpperEqualsSequentialProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(67))}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomSPDSystem(rng, 60)
		p, err := order.Build(a, order.Options{Method: order.STS3, RowsPerSuper: 1 + rng.Intn(8)})
		if err != nil {
			return false
		}
		us, err := NewUpperSolver(p.S)
		if err != nil {
			return false
		}
		u := p.S.L.Transpose()
		b := make([]float64, a.N)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		ref, err := sparse.BackwardSubstitution(u, b)
		if err != nil {
			return false
		}
		x, err := us.Solve(b, Options{
			Workers:  1 + rng.Intn(6),
			Schedule: Schedule(rng.Intn(3)),
			Chunk:    1 + rng.Intn(4),
		})
		if err != nil {
			return false
		}
		return sparse.MaxAbsDiff(x, ref) < 1e-10
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
