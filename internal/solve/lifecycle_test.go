package solve

import (
	"context"
	"errors"
	"sync"
	"testing"

	"stsk/internal/gen"
	"stsk/internal/order"
)

// TestEngineLifecycleAfterClose is the consolidated audit of the Close
// contract the serve registry leans on: after Close, EVERY entry point —
// cooperative, context, batch, block, stream, fused SGS — fails with
// ErrClosed (matched via errors.Is), and Close itself is idempotent,
// sequentially and concurrently.
func TestEngineLifecycleAfterClose(t *testing.T) {
	a := gen.Grid2D(10, 10)
	p := planFor(t, a, order.STS3)
	n := a.N
	vec := func() []float64 { return make([]float64, n) }
	batch := func() [][]float64 { return [][]float64{vec(), vec()} }
	ctx := context.Background()

	e := NewEngine(p.S, Options{Workers: 2})
	// Warm the upper path before Close so ensureUpper is not the error.
	if _, err := e.SolveUpper(vec()); err != nil {
		t.Fatal(err)
	}

	// Double Close: idempotent sequentially...
	e.Close()
	e.Close()
	// ...and concurrently.
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); e.Close() }()
	}
	wg.Wait()

	paths := []struct {
		name string
		call func() error
	}{
		{"Solve", func() error { _, err := e.Solve(vec()); return err }},
		{"SolveInto", func() error { return e.SolveInto(vec(), vec()) }},
		{"SolveIntoCtx", func() error { return e.SolveIntoCtx(ctx, vec(), vec()) }},
		{"SolveUpper", func() error { _, err := e.SolveUpper(vec()); return err }},
		{"SolveUpperInto", func() error { return e.SolveUpperInto(vec(), vec()) }},
		{"SolveUpperIntoCtx", func() error { return e.SolveUpperIntoCtx(ctx, vec(), vec()) }},
		{"SolveBatch", func() error { _, err := e.SolveBatch(batch()); return err }},
		{"SolveBatchInto", func() error { return e.SolveBatchInto(batch(), batch()) }},
		{"SolveBatchIntoCtx", func() error { return e.SolveBatchIntoCtx(ctx, batch(), batch()) }},
		{"SolveUpperBatchInto", func() error { return e.SolveUpperBatchInto(batch(), batch()) }},
		{"SolveUpperBatchIntoCtx", func() error { return e.SolveUpperBatchIntoCtx(ctx, batch(), batch()) }},
		{"SolveBlockInto", func() error { return e.SolveBlockInto(batch(), batch(), 0) }},
		{"SolveBlockIntoCtx", func() error { return e.SolveBlockIntoCtx(ctx, batch(), batch(), 0) }},
		{"SolveUpperBlockInto", func() error { return e.SolveUpperBlockInto(batch(), batch(), 0) }},
		{"SolveUpperBlockIntoCtx", func() error { return e.SolveUpperBlockIntoCtx(ctx, batch(), batch(), 0) }},
		{"ApplySGSBatch", func() error { return e.ApplySGSBatch(batch(), batch()) }},
		{"SolveMany", func() error {
			bs := make(chan []float64, 1)
			bs <- vec()
			close(bs)
			return (<-e.SolveMany(bs)).Err
		}},
	}
	for _, path := range paths {
		if err := path.call(); !errors.Is(err, ErrClosed) {
			t.Errorf("%s after Close: err = %v, want ErrClosed", path.name, err)
		}
	}
}

// TestEngineLifecycleWorkerOneAfterClose pins the degenerate layout: a
// one-worker engine skips the pool entirely in panelSolve, so its closed
// check is a separate code path from submit.
func TestEngineLifecycleWorkerOneAfterClose(t *testing.T) {
	a := gen.Grid2D(8, 8)
	p := planFor(t, a, order.STS3)
	e := NewEngine(p.S, Options{Workers: 1})
	b := make([]float64, a.N)
	e.Close()
	if err := e.SolveInto(b, b); !errors.Is(err, ErrClosed) {
		t.Errorf("one-worker SolveInto after Close: err = %v, want ErrClosed", err)
	}
	if err := e.SolveBlockInto([][]float64{b, b}, [][]float64{b, b}, 0); !errors.Is(err, ErrClosed) {
		t.Errorf("one-worker SolveBlockInto after Close: err = %v, want ErrClosed", err)
	}
}

// TestEngineCloseVsInFlightBatch races Close against a large dispatched
// batch: the batch must either complete fully (all solutions bitwise
// correct) or report ErrClosed — never deadlock, never a partial success
// disguised as a full one. Solves already handed to the pool finish;
// block solves race the same way.
func TestEngineCloseVsInFlightBatch(t *testing.T) {
	a := gen.Grid2D(14, 14)
	p := planFor(t, a, order.STS3)
	B, want := randomRHS(p, 24, 11)
	for trial := 0; trial < 25; trial++ {
		e := NewEngine(p.S, Options{Workers: 3})
		X := make([][]float64, len(B))
		for i := range X {
			X[i] = make([]float64, a.N)
		}
		errc := make(chan error, 2)
		go func() { errc <- e.SolveBatchInto(X, B) }()
		go func() { errc <- e.SolveBlockInto(make2d(len(B), a.N), B, 0) }()
		e.Close() // races the dispatch loops
		err1, err2 := <-errc, <-errc
		for _, err := range []error{err1, err2} {
			if err != nil && !errors.Is(err, ErrClosed) {
				t.Fatalf("trial %d: err = %v, want nil or ErrClosed", trial, err)
			}
		}
		if err1 == nil && err2 == nil {
			// Close landed after both batches: results must be complete.
			for i := range X {
				for j := range X[i] {
					if X[i][j] != want[i][j] {
						t.Fatalf("trial %d: successful batch has wrong bits at rhs %d index %d", trial, i, j)
					}
				}
			}
		}
	}
}

func make2d(rows, cols int) [][]float64 {
	out := make([][]float64, rows)
	for i := range out {
		out[i] = make([]float64, cols)
	}
	return out
}
