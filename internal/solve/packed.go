package solve

import "stsk/internal/sparse"

// Packed kernels: the same forward/backward substitution as
// solveRows/solveUpperRows, but streaming the compact structure-of-arrays
// layout — 32-bit row offsets and column indices over off-diagonal
// entries, diagonal in its own array. Halving the index bytes in the
// innermost loop matters because a cache-resident triangular solve is
// bound by exactly that traffic; hoisting the diagonal removes the
// end-of-row special case. Each row's dot product accumulates in the same
// entry order as the CSR kernels, so results are bitwise identical.

// solvePackedRows performs forward substitution for rows [lo, hi).
//
//stsk:noalloc
func solvePackedRows(p *sparse.Packed, x, b []float64, lo, hi int) {
	rp, col, val, diag := p.RowPtr, p.Col, p.Val, p.Diag
	for i := lo; i < hi; i++ {
		s := 0.0
		for k := rp[i]; k < rp[i+1]; k++ {
			s += val[k] * x[col[k]]
		}
		x[i] = (b[i] - s) / diag[i]
	}
}

// solvePackedUpperRows performs backward substitution for rows [lo, hi),
// highest first.
//
//stsk:noalloc
func solvePackedUpperRows(p *sparse.Packed, x, b []float64, lo, hi int) {
	rp, col, val, diag := p.RowPtr, p.Col, p.Val, p.Diag
	for i := hi - 1; i >= lo; i-- {
		s := 0.0
		for k := rp[i]; k < rp[i+1]; k++ {
			s += val[k] * x[col[k]]
		}
		x[i] = (b[i] - s) / diag[i]
	}
}
