package solve

import (
	"math/rand"
	"testing"

	"stsk/internal/gen"
	"stsk/internal/order"
	"stsk/internal/sparse"
)

func TestUpperSolverMatchesSequentialBackward(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	mats := map[string]*sparse.CSR{
		"trimesh": gen.TriMesh(16, 16, 3),
		"grid3d":  gen.Grid3D(6, 6, 6),
		"kkt3d":   gen.KKT3D(6, 6, 6),
	}
	for name, a := range mats {
		for _, m := range order.Methods() {
			p, err := order.Build(a, order.Options{Method: m, RowsPerSuper: 8})
			if err != nil {
				t.Fatal(err)
			}
			us, err := NewUpperSolver(p.S)
			if err != nil {
				t.Fatalf("%s/%v: %v", name, m, err)
			}
			xTrue := make([]float64, a.N)
			for i := range xTrue {
				xTrue[i] = rng.NormFloat64()
			}
			u := p.S.L.Transpose()
			b := make([]float64, a.N)
			u.MatVec(b, xTrue)
			for _, workers := range []int{1, 3, 8} {
				for _, sched := range []Schedule{Static, Dynamic, Guided} {
					x, err := us.Solve(b, Options{Workers: workers, Schedule: sched, Chunk: 2})
					if err != nil {
						t.Fatal(err)
					}
					if d := sparse.MaxAbsDiff(x, xTrue); d > 1e-9 {
						t.Fatalf("%s/%v/w%d/%v: error %g", name, m, workers, sched, d)
					}
					ref, err := sparse.BackwardSubstitution(u, b)
					if err != nil {
						t.Fatal(err)
					}
					if d := sparse.MaxAbsDiff(x, ref); d > 1e-12 {
						t.Fatalf("%s/%v: parallel differs from sequential backward by %g", name, m, d)
					}
				}
			}
		}
	}
}

func TestUpperSolverErrors(t *testing.T) {
	a := gen.Grid2D(6, 6)
	p, err := order.Build(a, order.Options{Method: order.STS3, RowsPerSuper: 4})
	if err != nil {
		t.Fatal(err)
	}
	us, err := NewUpperSolver(p.S)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := us.Solve(make([]float64, 3), Options{}); err == nil {
		t.Fatal("short rhs accepted")
	}
	x := make([]float64, 2)
	if err := us.SolveInto(x, make([]float64, a.N), Options{}); err == nil {
		t.Fatal("short x accepted")
	}
}

func TestForwardBackwardSGSParallel(t *testing.T) {
	// Full parallel SGS application: L y = r, then Lᵀ z = D y; verify
	// M z = r with M = L D⁻¹ Lᵀ.
	a := gen.TriMesh(20, 20, 5)
	p, err := order.Build(a, order.Options{Method: order.STS3, RowsPerSuper: 8})
	if err != nil {
		t.Fatal(err)
	}
	l := p.S.L
	us, err := NewUpperSolver(p.S)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(23))
	r := make([]float64, a.N)
	for i := range r {
		r[i] = rng.NormFloat64()
	}
	y, err := Parallel(p.S, r, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	dy := make([]float64, a.N)
	for i := 0; i < a.N; i++ {
		dy[i] = l.Val[l.RowPtr[i+1]-1] * y[i]
	}
	z, err := us.Solve(dy, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Apply M forward: L (D^{-1} (L^T z)) and compare with r.
	u := l.Transpose()
	uz := make([]float64, a.N)
	u.MatVec(uz, z)
	for i := range uz {
		uz[i] /= l.Val[l.RowPtr[i+1]-1]
	}
	lr := make([]float64, a.N)
	l.MatVec(lr, uz)
	if d := sparse.MaxAbsDiff(lr, r); d > 1e-8 {
		t.Fatalf("parallel SGS application error %g", d)
	}
}
