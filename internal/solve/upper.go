package solve

import (
	"fmt"

	"stsk/internal/csrk"
	"stsk/internal/sparse"
)

// UpperSolver solves the transposed system L′ᵀ x = b pack-parallel by
// running the STS-k structure backwards: packs are processed in reverse
// order, super-rows of a pack stay mutually independent under
// transposition, and rows inside a super-row are solved last-to-first.
// Together with the forward solver this makes the symmetric Gauss–Seidel
// and incomplete-Cholesky preconditioner applications of the paper's
// motivating PCG (§1) parallel in both sweeps.
//
// UpperSolver is the one-shot compatibility layer: each Solve spins a
// worker pool up and down around a single cooperative backward sweep.
// Callers applying the preconditioner repeatedly should hold an Engine
// (whose SolveUpperInto reuses a persistent pool) instead.
type UpperSolver struct {
	s *csrk.Structure
	u *sparse.CSR // L′ᵀ, upper triangular, diagonal first in each row
}

// NewUpperSolver transposes the structure's matrix once and validates that
// every row carries a leading nonzero diagonal.
func NewUpperSolver(s *csrk.Structure) (*UpperSolver, error) {
	u := s.L.Transpose()
	for i := 0; i < u.N; i++ {
		lo, hi := u.RowPtr[i], u.RowPtr[i+1]
		if lo == hi || u.Col[lo] != i {
			return nil, fmt.Errorf("solve: transposed row %d lacks a leading diagonal", i)
		}
		if u.Val[lo] == 0 {
			return nil, fmt.Errorf("solve: zero diagonal at transposed row %d", i)
		}
	}
	return &UpperSolver{s: s, u: u}, nil
}

// NewEngine starts a persistent Engine over the solver's structure that
// reuses the already-built transpose for backward sweeps.
func (us *UpperSolver) NewEngine(opts Options) *Engine {
	return newEngine(NewValues(us.s), us.u, opts)
}

// Transposed returns the validated transpose L′ᵀ the solver sweeps;
// callers must treat it as read-only.
func (us *UpperSolver) Transposed() *sparse.CSR { return us.u }

// Solve solves L′ᵀ x = b and returns x.
func (us *UpperSolver) Solve(b []float64, opts Options) ([]float64, error) {
	x := make([]float64, us.u.N)
	if err := us.SolveInto(x, b, opts); err != nil {
		return nil, err
	}
	return x, nil
}

// SolveInto is Solve writing into a caller-provided vector.
func (us *UpperSolver) SolveInto(x, b []float64, opts Options) error {
	u := us.u
	if len(b) != u.N || len(x) != u.N {
		return fmt.Errorf("%w: vector lengths %d/%d, want %d", ErrDimension, len(x), len(b), u.N)
	}
	opts = opts.withDefaults()
	if opts.Workers == 1 || us.s.NumSuperRows() == 1 {
		solveUpperRows(u.RowPtr, u.Col, u.Val, x, b, 0, u.N)
		return nil
	}
	opts.oneShot = true
	e := newEngine(NewValues(us.s), us.u, opts)
	defer e.Close()
	return e.SolveUpperInto(x, b)
}

// solveUpperRows performs backward substitution for rows [lo, hi), highest
// first. The diagonal entry leads each row of u.
//
//stsk:noalloc
func solveUpperRows(rowPtr, col []int, val, x, b []float64, lo, hi int) {
	for i := hi - 1; i >= lo; i-- {
		first := rowPtr[i]
		s := 0.0
		for k := first + 1; k < rowPtr[i+1]; k++ {
			s += val[k] * x[col[k]]
		}
		x[i] = (b[i] - s) / val[first]
	}
}
