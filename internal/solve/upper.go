package solve

import (
	"fmt"
	"sync"
	"sync/atomic"

	"stsk/internal/csrk"
	"stsk/internal/sparse"
)

// UpperSolver solves the transposed system L′ᵀ x = b pack-parallel by
// running the STS-k structure backwards: packs are processed in reverse
// order, super-rows of a pack stay mutually independent under
// transposition, and rows inside a super-row are solved last-to-first.
// Together with the forward solver this makes the symmetric Gauss–Seidel
// and incomplete-Cholesky preconditioner applications of the paper's
// motivating PCG (§1) parallel in both sweeps.
type UpperSolver struct {
	s *csrk.Structure
	u *sparse.CSR // L′ᵀ, upper triangular, diagonal first in each row
}

// NewUpperSolver transposes the structure's matrix once and validates that
// every row carries a leading nonzero diagonal.
func NewUpperSolver(s *csrk.Structure) (*UpperSolver, error) {
	u := s.L.Transpose()
	for i := 0; i < u.N; i++ {
		lo, hi := u.RowPtr[i], u.RowPtr[i+1]
		if lo == hi || u.Col[lo] != i {
			return nil, fmt.Errorf("solve: transposed row %d lacks a leading diagonal", i)
		}
		if u.Val[lo] == 0 {
			return nil, fmt.Errorf("solve: zero diagonal at transposed row %d", i)
		}
	}
	return &UpperSolver{s: s, u: u}, nil
}

// Solve solves L′ᵀ x = b and returns x.
func (us *UpperSolver) Solve(b []float64, opts Options) ([]float64, error) {
	x := make([]float64, us.u.N)
	if err := us.SolveInto(x, b, opts); err != nil {
		return nil, err
	}
	return x, nil
}

// SolveInto is Solve writing into a caller-provided vector.
func (us *UpperSolver) SolveInto(x, b []float64, opts Options) error {
	u := us.u
	if len(b) != u.N || len(x) != u.N {
		return fmt.Errorf("solve: vector lengths %d/%d, want %d", len(x), len(b), u.N)
	}
	opts = opts.withDefaults()
	if opts.Workers == 1 || us.s.NumSuperRows() == 1 {
		solveUpperRows(u.RowPtr, u.Col, u.Val, x, b, 0, u.N)
		return nil
	}
	run := &upperRunner{us: us, x: x, b: b, opts: opts}
	run.barrier.size = opts.Workers
	run.barrier.cond = sync.NewCond(&run.barrier.mu)
	run.counters = make([]atomic.Int64, us.s.NumPacks())
	for p := range run.counters {
		// Counters advance from the pack's TOP super-row downwards.
		run.counters[p].Store(int64(us.s.PackPtr[p+1]))
	}
	var wg sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			run.work(id)
		}(w)
	}
	wg.Wait()
	return nil
}

// solveUpperRows performs backward substitution for rows [lo, hi), highest
// first. The diagonal entry leads each row of u.
func solveUpperRows(rowPtr, col []int, val, x, b []float64, lo, hi int) {
	for i := hi - 1; i >= lo; i-- {
		first := rowPtr[i]
		s := 0.0
		for k := first + 1; k < rowPtr[i+1]; k++ {
			s += val[k] * x[col[k]]
		}
		x[i] = (b[i] - s) / val[first]
	}
}

type upperRunner struct {
	us       *UpperSolver
	x, b     []float64
	opts     Options
	counters []atomic.Int64
	barrier  barrier
}

func (r *upperRunner) work(id int) {
	s := r.us.s
	u := r.us.u
	for p := s.NumPacks() - 1; p >= 0; p-- {
		lo, hi := s.PackSuperRows(p)
		switch r.opts.Schedule {
		case Static:
			span := hi - lo
			per := (span + r.opts.Workers - 1) / r.opts.Workers
			start := lo + id*per
			end := start + per
			if start > hi {
				start = hi
			}
			if end > hi {
				end = hi
			}
			for sr := end - 1; sr >= start; sr-- {
				r.solveSuper(u, sr)
			}
		default: // Dynamic and Guided both count down in chunks.
			c := int64(r.opts.Chunk)
			for {
				to := r.counters[p].Add(-c) + c
				if to <= int64(lo) {
					break
				}
				from := to - c
				if from < int64(lo) {
					from = int64(lo)
				}
				for sr := int(to) - 1; sr >= int(from); sr-- {
					r.solveSuper(u, sr)
				}
			}
		}
		r.barrier.wait()
	}
}

func (r *upperRunner) solveSuper(u *sparse.CSR, sr int) {
	lo, hi := r.us.s.SuperRowRows(sr)
	solveUpperRows(u.RowPtr, u.Col, u.Val, r.x, r.b, lo, hi)
}
