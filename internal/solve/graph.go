package solve

import (
	"runtime"
	"sync"
	"sync/atomic"

	"stsk/internal/csrk"
	"stsk/internal/faultinject"
	"stsk/internal/panicsafe"
)

// graphRun is the shared state of one dependency-driven cooperative solve:
// the point-to-point replacement for the barrier schedule. Instead of all
// workers meeting at a condition-variable barrier after every pack, each
// task (a contiguous super-row chunk of one pack, csrk.TaskDAG) carries an
// atomic counter of unfinished direct predecessors. A worker finishing a
// task decrements its successors' counters and publishes any task that
// hits zero to a wait-free ready queue, then immediately claims the next
// ready task — so independent subtrees of the dependency DAG flow through
// the workers without ever synchronising with each other.
//
// The ready queue is a fixed array of one slot per task: publishers claim
// a slot with an atomic tail counter and store task+1 into it; consumers
// claim slots in order with an atomic head counter and wait for their
// slot's store. Every task is published exactly once (its counter reaches
// zero exactly once; roots are published at reset), so a consumer holding
// slot h < NumTasks always gets a task eventually, and consumers beyond
// NumTasks exit. Claiming is wait-free; waiting spins briefly and then
// parks on a condition variable so an over-subscribed machine is not
// burned by busy polling.
//
// Like the barrier path, each row is computed by exactly one worker with
// the sequential kernel's operation order, so results stay bitwise
// identical to Sequential. The run's arrays are allocated once per engine
// and reset per solve — steady-state solves allocate nothing.
type graphRun struct {
	e       *Engine
	dag     *csrk.TaskDAG
	ep      *epoch    // value epoch pinned at dispatch
	x, b    []float64 // row-major n×kw panels when kw > 1
	kw      int
	reverse bool

	remaining []atomic.Int32 // per task: unfinished direct deps (succs when reverse)
	slots     []atomic.Int32 // ready queue; a slot holds task id + 1
	head      atomic.Int32   // next slot to consume
	tail      atomic.Int32   // next slot to publish

	mu       sync.Mutex
	cond     *sync.Cond
	sleepers atomic.Int32 // consumers parked (or about to park) on cond

	// Containment state: first failure of the solve. A failed task still
	// completes (runTask recovers, work always calls complete), so
	// successors are never stranded — the solve finishes and reports.
	failMu  sync.Mutex
	failErr error

	wg sync.WaitGroup
}

// fail records the first failure of this graph solve.
func (g *graphRun) fail(err error) {
	g.failMu.Lock()
	if g.failErr == nil {
		g.failErr = err
	}
	g.failMu.Unlock()
}

func (g *graphRun) init(e *Engine, dag *csrk.TaskDAG) {
	g.e = e
	g.dag = dag
	g.remaining = make([]atomic.Int32, dag.NumTasks())
	g.slots = make([]atomic.Int32, dag.NumTasks())
	g.cond = sync.NewCond(&g.mu)
}

// reset prepares the run for one solve. Called with no workers active
// (under the engine's solveMu, before dispatch), so plain stores suffice.
func (g *graphRun) reset(ep *epoch, x, b []float64, kw int, reverse bool) {
	g.ep, g.x, g.b, g.kw, g.reverse = ep, x, b, kw, reverse
	g.failErr = nil
	g.head.Store(0)
	nt := g.dag.NumTasks()
	for t := 0; t < nt; t++ {
		g.slots[t].Store(0)
	}
	tail := int32(0)
	for t := 0; t < nt; t++ {
		var deps int32
		if reverse {
			deps = g.dag.SuccPtr[t+1] - g.dag.SuccPtr[t]
		} else {
			deps = g.dag.PredPtr[t+1] - g.dag.PredPtr[t]
		}
		g.remaining[t].Store(deps)
		if deps == 0 {
			g.slots[tail].Store(int32(t) + 1)
			tail++
		}
	}
	g.tail.Store(tail)
}

// runShare is the worker-side entry of a graph solve and its outer
// panic-containment boundary. An injected engine.job fault makes this
// worker bow out before claiming anything — any subset of workers drains
// the ready queue, so its mates finish the solve alone and the run
// reports the failure.
func (g *graphRun) runShare() {
	defer func() {
		if p := recover(); p != nil {
			g.fail(panicsafe.AsError(p))
		}
	}()
	if err := faultinject.Fire(faultinject.EngineJob); err != nil {
		g.fail(err)
		return
	}
	g.work()
}

// work is one worker's share of a graph solve: claim ready-queue slots in
// order until the queue is exhausted, running each task and publishing the
// successors it completes.
//
//stsk:noalloc
func (g *graphRun) work() {
	nt := int32(g.dag.NumTasks())
	for {
		h := g.head.Add(1) - 1
		if h >= nt {
			return
		}
		t := g.await(h)
		g.runTask(t)
		g.complete(t)
	}
}

// runTask is the per-task containment boundary: a kernel panic becomes a
// recorded failure and the task still counts as complete, so successor
// counters always reach zero and no worker parks forever in await.
func (g *graphRun) runTask(t int32) {
	defer func() {
		if p := recover(); p != nil {
			g.fail(panicsafe.AsError(p))
		}
	}()
	lo, hi := g.dag.TaskRows(int(t))
	switch {
	case g.kw > 1 && g.reverse:
		g.ep.backwardRowsBlock(g.x, g.b, g.kw, lo, hi)
	case g.kw > 1:
		g.ep.forwardRowsBlock(g.x, g.b, g.kw, lo, hi)
	case g.reverse:
		g.ep.backwardRows(g.x, g.b, lo, hi)
	default:
		g.ep.forwardRows(g.x, g.b, lo, hi)
	}
}

// await returns the task published to slot h, spinning briefly and then
// parking until a completion publishes it.
//
//stsk:noalloc
func (g *graphRun) await(h int32) int32 {
	for spin := 0; spin < 128; spin++ {
		if v := g.slots[h].Load(); v != 0 {
			return v - 1
		}
		runtime.Gosched()
	}
	g.sleepers.Add(1)
	g.mu.Lock()
	for g.slots[h].Load() == 0 {
		g.cond.Wait()
	}
	g.mu.Unlock()
	g.sleepers.Add(-1)
	return g.slots[h].Load() - 1
}

// complete publishes every task made ready by finishing t. The atomic
// decrement chain orders the finished task's x writes before the
// successor's execution on whichever worker picks it up.
//
//stsk:noalloc
func (g *graphRun) complete(t int32) {
	var notify []int32
	if g.reverse {
		notify = g.dag.Preds(int(t))
	} else {
		notify = g.dag.Succs(int(t))
	}
	published := false
	for _, u := range notify {
		if g.remaining[u].Add(-1) == 0 {
			slot := g.tail.Add(1) - 1
			g.slots[slot].Store(u + 1)
			published = true
		}
	}
	// A parked consumer either sees the slot store after taking the lock
	// (the store is sequenced before this load of sleepers, and its
	// sleepers increment before its slot check) or is woken here.
	if published && g.sleepers.Load() > 0 {
		g.mu.Lock()
		g.cond.Broadcast()
		g.mu.Unlock()
	}
}
