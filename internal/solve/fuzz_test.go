package solve

import (
	"math"
	"testing"

	"stsk/internal/order"
	"stsk/internal/sparse"
)

// matrixFromBytes deterministically derives a structurally symmetric,
// SPD-by-dominance matrix from fuzz input: byte 0 picks the dimension,
// byte pairs add symmetric off-diagonal entries. Every output satisfies
// the pipeline invariants, so the fuzzer explores matrix shapes (chains,
// hubs, near-dense rows, disconnected pieces) rather than input parsing.
func matrixFromBytes(data []byte) *sparse.CSR {
	n := 1 + int(data[0])%48
	coo := sparse.NewCOO(n, 3*n+2*len(data))
	for i := 0; i < n; i++ {
		coo.Add(i, i, 1)
	}
	for k := 1; k+1 < len(data); k += 2 {
		i, j := int(data[k])%n, int(data[k+1])%n
		if i != j {
			coo.AddSym(i, j, 1)
		}
	}
	m := coo.ToCSR()
	if err := sparse.AssignSPDValues(m); err != nil {
		panic(err) // full diagonal by construction
	}
	return m
}

// rhsFromBytes derives a bounded right-hand side so solutions stay
// well-scaled no matter what the fuzzer feeds in.
func rhsFromBytes(data []byte, n int) []float64 {
	b := make([]float64, n)
	for i := range b {
		v := 1.0
		if i < len(data) {
			v = float64(int(data[i])-128) / 32
		}
		b[i] = v
	}
	return b
}

// denseForward is the naive O(n²) reference: expand the permuted factor
// to a dense lower triangle and run textbook forward substitution.
func denseForward(l *sparse.CSR, b []float64) []float64 {
	n := l.N
	dense := make([]float64, n*n)
	for i := 0; i < n; i++ {
		cols, vals := l.Row(i)
		for k, j := range cols {
			dense[i*n+j] = vals[k]
		}
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		s := 0.0
		for j := 0; j < i; j++ {
			s += dense[i*n+j] * x[j]
		}
		x[i] = (b[i] - s) / dense[i*n+i]
	}
	return x
}

// FuzzTriangularSolve feeds random well-conditioned systems through the
// whole solve stack: Sequential must agree with the dense O(n²) reference
// to 1e-12, the graph-scheduled engine must agree with Sequential bit for
// bit, and every column of the blocked panel path must too.
func FuzzTriangularSolve(f *testing.F) {
	f.Add([]byte{7})
	f.Add([]byte{13, 1, 2, 2, 3, 3, 4, 0, 4})
	f.Add([]byte{47, 0, 1, 0, 2, 0, 3, 0, 4, 0, 5, 0, 6, 9, 9})
	f.Add([]byte{32, 250, 1, 17, 30, 2, 9, 4, 4, 11, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		a := matrixFromBytes(data)
		m := order.Methods()[int(data[0])%4]
		p, err := order.Build(a, order.Options{Method: m, RowsPerSuper: 1 + int(data[0])%9})
		if err != nil {
			t.Fatalf("ordering rejected a valid matrix: %v", err)
		}
		b := rhsFromBytes(data, a.N)
		want, err := Sequential(p.S, b)
		if err != nil {
			t.Fatal(err)
		}
		ref := denseForward(p.S.L, b)
		for i := range want {
			if d := math.Abs(want[i] - ref[i]); d > 1e-12*(1+math.Abs(ref[i])) {
				t.Fatalf("Sequential vs dense reference: x[%d] differs by %g", i, d)
			}
		}
		e := graphEngine(p, 1+int(data[0])%4)
		defer e.Close()
		x, err := e.Solve(b)
		if err != nil {
			t.Fatal(err)
		}
		assertBitwise(t, "graph-vs-sequential", x, want)
		// Panel path: three scaled copies of b through the blocked kernels,
		// each column bitwise equal to its own sequential solve.
		B := [][]float64{b, make([]float64, a.N), make([]float64, a.N)}
		for i := range b {
			B[1][i] = 2 * b[i]
			B[2][i] = -0.5 * b[i]
		}
		X := make([][]float64, len(B))
		for i := range X {
			X[i] = make([]float64, a.N)
		}
		if err := e.SolveBlockInto(X, B, 0); err != nil {
			t.Fatal(err)
		}
		for r := range B {
			col, err := Sequential(p.S, B[r])
			if err != nil {
				t.Fatal(err)
			}
			assertBitwise(t, "block-vs-sequential", X[r], col)
		}
	})
}

// lowerFromBytes derives a lower-triangular CSR with the csrk invariant
// (sorted columns, diagonal last in each row) straight from fuzz bytes —
// no ordering pipeline, so the packed layout is fuzzed directly.
func lowerFromBytes(data []byte) *sparse.CSR {
	n := 1 + int(data[0])%40
	l := &sparse.CSR{N: n, RowPtr: make([]int, n+1)}
	k := 1
	for i := 0; i < n; i++ {
		prev := -1
		for take := 0; take < 3 && k < len(data) && i > 0; take++ {
			j := int(data[k]) % i
			k++
			if j > prev {
				l.Col = append(l.Col, j)
				l.Val = append(l.Val, -1-float64(j%3))
				prev = j
			}
		}
		l.Col = append(l.Col, i)
		l.Val = append(l.Val, 4+float64(i%5))
		l.RowPtr[i+1] = len(l.Col)
	}
	return l
}

// FuzzPackedRoundTrip converts fuzzed lower-triangular factors to the
// compact 32-bit layout and back through the kernels: PackLower/PackUpper
// must preserve every entry, and the packed scalar and block kernels must
// match their CSR counterparts bit for bit.
func FuzzPackedRoundTrip(f *testing.F) {
	f.Add([]byte{5})
	f.Add([]byte{17, 0, 1, 2, 0, 3, 9, 9, 1, 4})
	f.Add([]byte{39, 250, 0, 0, 1, 1, 2, 30, 17, 8, 4, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		l := lowerFromBytes(data)
		n := l.N
		pk, ok := sparse.PackLower(l)
		if !ok {
			t.Fatalf("PackLower rejected an in-range factor (n=%d nnz=%d)", n, l.NNZ())
		}
		if pk.NNZ() != l.NNZ() {
			t.Fatalf("packed nnz %d, want %d", pk.NNZ(), l.NNZ())
		}
		b := rhsFromBytes(data, n)
		want := make([]float64, n)
		solveRows(l.RowPtr, l.Col, l.Val, want, b, 0, n)
		got := make([]float64, n)
		solvePackedRows(pk, got, b, 0, n)
		assertBitwise(t, "packed-forward", got, want)

		u := l.Transpose()
		upk, ok := sparse.PackUpper(u)
		if !ok {
			t.Fatalf("PackUpper rejected an in-range factor")
		}
		wantU := make([]float64, n)
		solveUpperRows(u.RowPtr, u.Col, u.Val, wantU, b, 0, n)
		gotU := make([]float64, n)
		solvePackedUpperRows(upk, gotU, b, 0, n)
		assertBitwise(t, "packed-backward", gotU, wantU)

		// Block kernels against their own CSR fallbacks and against the
		// scalar per-column results, on a width-4 panel.
		const kw = 4
		panelB := make([]float64, n*kw)
		for j := 0; j < kw; j++ {
			for i := 0; i < n; i++ {
				panelB[i*kw+j] = b[i] * float64(j+1)
			}
		}
		packedX := make([]float64, n*kw)
		solvePackedRowsBlock(pk, packedX, panelB, kw, 0, n)
		csrX := make([]float64, n*kw)
		solveRowsBlock(l.RowPtr, l.Col, l.Val, csrX, panelB, kw, 0, n)
		assertBitwise(t, "block-packed-vs-csr", packedX, csrX)
		for j := 0; j < kw; j++ {
			colB := make([]float64, n)
			for i := 0; i < n; i++ {
				colB[i] = panelB[i*kw+j]
			}
			colX := make([]float64, n)
			solveRows(l.RowPtr, l.Col, l.Val, colX, colB, 0, n)
			for i := 0; i < n; i++ {
				if packedX[i*kw+j] != colX[i] {
					t.Fatalf("panel column %d row %d: %v, want bitwise %v", j, i, packedX[i*kw+j], colX[i])
				}
			}
		}
	})
}

// TestPackedOverflowFallback is the size-capped synthetic check of the
// int32-overflow fallback: a factor whose dimension cannot be indexed in
// 32 bits must be rejected before any array is touched (the caller keeps
// the CSR kernels), and a row missing its trailing diagonal must be
// rejected too.
func TestPackedOverflowFallback(t *testing.T) {
	if _, ok := sparse.PackLower(&sparse.CSR{N: math.MaxInt32}); ok {
		t.Fatal("PackLower accepted an int32-overflowing dimension")
	}
	if _, ok := sparse.PackUpper(&sparse.CSR{N: math.MaxInt32}); ok {
		t.Fatal("PackUpper accepted an int32-overflowing dimension")
	}
	// Missing trailing diagonal: row 1 ends with column 0.
	bad := &sparse.CSR{N: 2, RowPtr: []int{0, 1, 2}, Col: []int{0, 0}, Val: []float64{1, 1}}
	if _, ok := sparse.PackLower(bad); ok {
		t.Fatal("PackLower accepted a factor without trailing diagonals")
	}
}
