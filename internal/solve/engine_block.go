package solve

import (
	"context"
	"fmt"

	"stsk/internal/sparse"
	"stsk/internal/trace"
)

// maxBlockWidth is the widest panel the blocked kernels unroll for, and
// the size the pooled panel scratch is provisioned at.
const maxBlockWidth = 8

// SolveBlockInto solves L′xᵢ = bᵢ for every right-hand side of B with the
// blocked multi-vector kernels: the right-hand sides are grouped into
// row-major panels of up to width columns and the matrix is traversed
// once per panel — each (col, val) pair loaded once and applied across
// all panel columns — instead of once per vector. A batch that forms a
// single panel is swept cooperatively under the engine's schedule
// (barrier packs or the graph scheduler's task chunks), so the whole pool
// shares one panel; a batch that forms several panels pipelines them
// through the pool like SolveBatch, one worker sweeping each panel start
// to finish with no barriers. Either way each panel column is bitwise
// identical to a scalar solve of that column. X[i] may alias B[i].
//
// width 0 selects the engine's configured BlockWidth; widths are rounded
// down to the unrolled kernel widths {8, 4, 2}, with remainder columns
// falling back to the scalar kernel.
//
//stsk:allow-background (non-context convenience wrapper; SolveBlockIntoCtx threads a caller ctx)
func (e *Engine) SolveBlockInto(X, B [][]float64, width int) error {
	return e.block(context.Background(), X, B, width, false)
}

// SolveBlockIntoCtx is SolveBlockInto honoring a context: cancellation is
// checked between panels (and before each panel is dispatched), returning
// ctx.Err() with the remaining panels unsolved. The engine stays fully
// usable.
func (e *Engine) SolveBlockIntoCtx(ctx context.Context, X, B [][]float64, width int) error {
	return e.block(ctx, X, B, width, false)
}

// SolveUpperBlockInto solves L′ᵀxᵢ = bᵢ for every right-hand side with the
// blocked backward-substitution kernels, panels swept in reverse pack
// order.
//
//stsk:allow-background (non-context convenience wrapper; SolveUpperBlockIntoCtx threads a caller ctx)
func (e *Engine) SolveUpperBlockInto(X, B [][]float64, width int) error {
	return e.block(context.Background(), X, B, width, true)
}

// SolveUpperBlockIntoCtx is SolveUpperBlockInto honoring a context, with
// the same between-panel semantics as SolveBlockIntoCtx.
func (e *Engine) SolveUpperBlockIntoCtx(ctx context.Context, X, B [][]float64, width int) error {
	return e.block(ctx, X, B, width, true)
}

// checkPanelDims validates a solution/right-hand-side batch eagerly: the
// batch lengths must agree and every vector must match the system
// dimension, reported with the offending index. Shared by the batch and
// block paths so ragged input fails with ErrDimension before any work is
// dispatched.
func (e *Engine) checkPanelDims(X, B [][]float64) error {
	if len(X) != len(B) {
		return fmt.Errorf("%w: batch lengths %d/%d differ", ErrDimension, len(X), len(B))
	}
	n := e.n
	for i := range B {
		if len(X[i]) != n || len(B[i]) != n {
			return fmt.Errorf("%w: rhs %d vector lengths %d/%d, want %d", ErrDimension, i, len(X[i]), len(B[i]), n)
		}
	}
	return nil
}

// block gathers right-hand sides into panels and solves them. A batch
// that fits one panel (or one scalar column) runs cooperatively under the
// engine's schedule so every worker shares it; a batch that carves into
// several groups fans them out as independent whole-panel jobs through
// the same pooled machinery as batch — each panel swept start-to-finish
// by one worker, distinct panels pipelining through the pack levels with
// no barriers. The value epoch is pinned once per call, so every panel of
// a block solve sweeps the same snapshot even when a refactorization
// lands mid-call. All scratch is pooled, so warm block solves allocate
// nothing.
//
//stsk:noalloc
func (e *Engine) block(ctx context.Context, X, B [][]float64, width int, reverse bool) error {
	if err := e.checkPanelDims(X, B); err != nil {
		return err
	}
	if len(B) == 0 {
		return nil
	}
	tr := trace.FromContext(ctx)
	p0 := trace.Now()
	ep := e.vals.Current()
	if reverse {
		if err := e.ensureUpper(ep); err != nil {
			return err
		}
	}
	tr.Observe(trace.StageEpochPin, p0, trace.Now())
	width = normalizeBlockWidth(width, e.opts.BlockWidth)
	if len(B) == 1 {
		return e.panelSolve(ctx, ep, X[0], B[0], 1, reverse)
	}
	if kw := panelWidth(len(B), width); kw == len(B) {
		return e.coopPanel(ctx, ep, X, B, kw, reverse)
	}
	kind := sweepForward
	if reverse {
		kind = sweepBackward
	}
	jobs := 0
	for rem := len(B); rem > 0; jobs++ {
		rem -= panelWidth(rem, width)
	}
	run := e.runPool.Get()
	run.err = nil
	run.remaining.Store(int32(jobs))
	issued := 0
	var first error
	d0 := trace.Now()
	for i := 0; i < len(B); {
		if err := ctx.Err(); err != nil {
			first = err
			break
		}
		kw := panelWidth(len(B)-i, width)
		j := e.jobPool.Get()
		if kw == 1 {
			j.kind, j.ep, j.x, j.b, j.run, j.errc = kind, ep, X[i], B[i], run, nil
		} else {
			j.kind, j.ep, j.kw, j.xs, j.bs, j.run, j.errc = kind, ep, kw, X[i:i+kw], B[i:i+kw], run, nil
		}
		if err := e.submitCtx(ctx, job{whole: j}); err != nil {
			j.reset()
			e.jobPool.Put(j)
			first = err
			break
		}
		issued++
		i += kw
	}
	s0 := trace.Now()
	tr.Observe(trace.StageDispatch, d0, s0)
	err := e.finishRun(run, jobs, issued, first)
	tr.Observe(trace.StageSweep, s0, trace.Now())
	return err
}

// coopPanel runs one panel cooperatively: pack the columns into the
// pooled row-major scratch, sweep it in place under the engine's schedule
// (in-place is safe — a row's B entries are read before its X entries are
// written, and every other access is to already-solved rows), scatter the
// solutions back out.
//
//stsk:noalloc
func (e *Engine) coopPanel(ctx context.Context, ep *epoch, X, B [][]float64, kw int, reverse bool) error {
	n := e.n
	bufp := e.panelPool.Get()
	buf := (*bufp)[:n*kw]
	sparse.PackPanel(buf, B[:kw])
	err := e.panelSolve(ctx, ep, buf, buf, kw, reverse)
	if err == nil {
		sparse.UnpackPanel(X[:kw], buf)
	}
	e.panelPool.Put(bufp)
	return err
}

// sweepPanel is the worker side of a pipelined whole-panel job: pack,
// one sequential blocked sweep over all rows, scatter. Row order is
// Sequential's, so every column stays bitwise identical.
//
//stsk:noalloc
func (e *Engine) sweepPanel(w *wholeJob) {
	n := e.n
	kw := w.kw
	bufp := e.panelPool.Get()
	buf := (*bufp)[:n*kw]
	sparse.PackPanel(buf, w.bs)
	if w.kind == sweepBackward {
		w.ep.backwardRowsBlock(buf, buf, kw, 0, n)
	} else {
		w.ep.forwardRowsBlock(buf, buf, kw, 0, n)
	}
	sparse.UnpackPanel(w.xs, buf)
	e.panelPool.Put(bufp)
}

// normalizeBlockWidth resolves a requested panel width: non-positive
// means the engine default, and any width is rounded down to the widths
// the kernels unroll.
func normalizeBlockWidth(w, fallback int) int {
	if w <= 0 {
		w = fallback
	}
	switch {
	case w >= 8:
		return 8
	case w >= 4:
		return 4
	case w >= 2:
		return 2
	}
	return 1
}

// panelWidth picks the widest kernel width ≤ width that the remaining
// column count fills; the last columns of a batch fall through to 1 (the
// scalar kernel).
func panelWidth(rem, width int) int {
	for w := width; w > 1; w >>= 1 {
		if rem >= w {
			return w
		}
	}
	return 1
}
