package solve

// Engine-level context-cancellation and sentinel-error tests. The facade
// tests in the stsk package cover the same semantics one layer up; these
// pin the engine contract directly.

import (
	"context"
	"errors"
	"testing"
	"time"

	"stsk/internal/gen"
	"stsk/internal/order"
)

func TestEngineBatchCtxPreCancelled(t *testing.T) {
	p := planFor(t, gen.Grid2D(20, 20), order.STS3)
	e := NewEngine(p.S, Options{Workers: 2})
	defer e.Close()
	B, want := randomRHS(p, 4, 5)
	X := make([][]float64, len(B))
	for i := range X {
		X[i] = make([]float64, p.S.L.N)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := e.SolveBatchIntoCtx(ctx, X, B); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// No job was dispatched, so no solution vector may have been touched.
	for i := range X {
		for j := range X[i] {
			if X[i][j] != 0 {
				t.Fatalf("rhs %d written despite pre-cancelled context", i)
			}
		}
	}
	// The engine stays fully usable.
	if err := e.SolveBatchInto(X, B); err != nil {
		t.Fatal(err)
	}
	for i := range X {
		assertBitwise(t, "post-cancel batch", X[i], want[i])
	}
}

func TestEngineCoopCtxDeadline(t *testing.T) {
	p := planFor(t, gen.Grid2D(20, 20), order.STS3)
	e := NewEngine(p.S, Options{Workers: 2})
	defer e.Close()
	b := make([]float64, p.S.L.N)
	x := make([]float64, p.S.L.N)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if err := e.SolveIntoCtx(ctx, x, b); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("forward: err = %v, want DeadlineExceeded", err)
	}
	if err := e.SolveUpperIntoCtx(ctx, x, b); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("backward: err = %v, want DeadlineExceeded", err)
	}
	if err := e.SolveInto(x, b); err != nil {
		t.Fatalf("engine unusable after expired-deadline solves: %v", err)
	}
}

func TestEngineSolveManyCtxMidStreamCancel(t *testing.T) {
	p := planFor(t, gen.Grid3D(6, 6, 6), order.STS3)
	e := NewEngine(p.S, Options{Workers: 2})
	defer e.Close()
	B, want := randomRHS(p, 3, 23)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	bs := make(chan []float64)
	go func() {
		// Feed forever; only cancellation ends this stream.
		for i := 0; ; i++ {
			select {
			case bs <- B[i%len(B)]:
			case <-ctx.Done():
				return
			}
		}
	}()

	out := e.SolveManyCtx(ctx, bs)
	first, ok := <-out
	if !ok || first.Err != nil {
		t.Fatalf("first result: %+v ok=%v", first, ok)
	}
	assertBitwise(t, "first streamed", first.X, want[0])
	cancel()

	// The in-flight tail drains, then a final result carries ctx.Err()
	// and the channel closes — even though bs never closes.
	var last Result
	n := 0
	for r := range out {
		last = r
		n++
		if n > 4*e.Workers()+4 {
			t.Fatal("stream did not terminate after cancellation")
		}
	}
	if !errors.Is(last.Err, context.Canceled) {
		t.Fatalf("last result err = %v, want context.Canceled", last.Err)
	}

	// The pool is unaffected: a fresh solve still works.
	x := make([]float64, p.S.L.N)
	if err := e.SolveInto(x, B[1]); err != nil {
		t.Fatal(err)
	}
	assertBitwise(t, "post-cancel solve", x, want[1])
}

func TestEngineDimensionSentinel(t *testing.T) {
	p := planFor(t, gen.Grid2D(12, 12), order.STS3)
	e := NewEngine(p.S, Options{Workers: 2})
	defer e.Close()
	n := p.S.L.N
	short := make([]float64, n-1)
	full := make([]float64, n)
	if err := e.SolveInto(full, short); !errors.Is(err, ErrDimension) {
		t.Fatalf("coop short rhs: %v", err)
	}
	if err := e.SolveBatchInto([][]float64{full}, [][]float64{short}); !errors.Is(err, ErrDimension) {
		t.Fatalf("batch short rhs: %v", err)
	}
	if err := e.SolveBatchInto([][]float64{full}, [][]float64{full, full}); !errors.Is(err, ErrDimension) {
		t.Fatalf("batch length mismatch: %v", err)
	}
	if _, err := Sequential(p.S, short); !errors.Is(err, ErrDimension) {
		t.Fatalf("sequential short rhs: %v", err)
	}
}

func TestEngineClosedSentinel(t *testing.T) {
	p := planFor(t, gen.Grid2D(12, 12), order.STS3)
	e := NewEngine(p.S, Options{Workers: 2})
	e.Close()
	b := make([]float64, p.S.L.N)
	x := make([]float64, p.S.L.N)
	if err := e.SolveInto(x, b); !errors.Is(err, ErrClosed) {
		t.Fatalf("coop after close: %v", err)
	}
	if err := e.SolveBatchInto([][]float64{x}, [][]float64{b}); !errors.Is(err, ErrClosed) {
		t.Fatalf("batch after close: %v", err)
	}
}
