package solve

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"stsk/internal/gen"
	"stsk/internal/order"
	"stsk/internal/sparse"
	"stsk/internal/testmat"
)

// randomRHS manufactures nrhs right-hand sides with known solutions.
func randomRHS(p *order.Plan, nrhs int, seed int64) (B [][]float64, want [][]float64) {
	rng := rand.New(rand.NewSource(seed))
	n := p.S.L.N
	for r := 0; r < nrhs; r++ {
		xTrue := make([]float64, n)
		for i := range xTrue {
			xTrue[i] = rng.NormFloat64()
		}
		B = append(B, sparse.RHSForSolution(p.S.L, xTrue))
	}
	for _, b := range B {
		x, err := Sequential(p.S, b)
		if err != nil {
			panic(err)
		}
		want = append(want, x)
	}
	return B, want
}

// assertBitwise fails unless got equals want entry for entry — the engine
// performs each row's dot product in Sequential's order, so results must
// be bitwise identical, not merely close.
func assertBitwise(t *testing.T, label string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: x[%d] = %v, want bitwise %v", label, i, got[i], want[i])
		}
	}
}

func TestEngineSolveMatchesSequentialBitwise(t *testing.T) {
	for _, ent := range append(testmat.Corpus(), testmat.Entry{Name: "roadnet", A: gen.RoadNet(6, 6, 3, 5, 1)}) {
		name, a := ent.Name, ent.A
		for _, m := range order.Methods() {
			p := planFor(t, a, m)
			B, want := randomRHS(p, 3, 11)
			for _, workers := range []int{1, 3, 8} {
				e := NewEngine(p.S, Options{Workers: workers})
				for r := range B {
					x, err := e.Solve(B[r])
					if err != nil {
						t.Fatal(err)
					}
					assertBitwise(t, name+"/"+m.String(), x, want[r])
				}
				e.Close()
			}
		}
	}
}

func TestEngineSolveBatchBitwise(t *testing.T) {
	for _, m := range order.Methods() {
		a := gen.Grid3D(7, 7, 7)
		p := planFor(t, a, m)
		B, want := randomRHS(p, 16, 23)
		e := NewEngine(p.S, Options{Workers: 4})
		defer e.Close()
		X, err := e.SolveBatch(B)
		if err != nil {
			t.Fatal(err)
		}
		for r := range X {
			assertBitwise(t, m.String(), X[r], want[r])
		}
		// In-place: X[i] aliasing B[i] must still be exact.
		aliased := make([][]float64, len(B))
		for r := range B {
			aliased[r] = append([]float64(nil), B[r]...)
		}
		if err := e.SolveBatchInto(aliased, aliased); err != nil {
			t.Fatal(err)
		}
		for r := range aliased {
			assertBitwise(t, m.String()+"/in-place", aliased[r], want[r])
		}
	}
}

func TestEngineSolveManyOrderedBitwise(t *testing.T) {
	a := gen.TriMesh(16, 16, 3)
	p := planFor(t, a, order.STS3)
	B, want := randomRHS(p, 40, 31)
	e := NewEngine(p.S, Options{Workers: 4})
	defer e.Close()
	bs := make(chan []float64)
	go func() {
		for _, b := range B {
			bs <- b
		}
		close(bs)
	}()
	r := 0
	for res := range e.SolveMany(bs) {
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		assertBitwise(t, "stream", res.X, want[r])
		r++
	}
	if r != len(B) {
		t.Fatalf("streamed %d results, want %d", r, len(B))
	}
}

func TestEngineUpperMatchesUpperSolver(t *testing.T) {
	a := gen.Grid2D(12, 12)
	for _, m := range order.Methods() {
		p := planFor(t, a, m)
		us, err := NewUpperSolver(p.S)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(7))
		b := make([]float64, a.N)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		want, err := us.Solve(b, Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		e := us.NewEngine(Options{Workers: 4})
		x, err := e.SolveUpper(b)
		if err != nil {
			t.Fatal(err)
		}
		assertBitwise(t, m.String()+"/coop", x, want)
		X := [][]float64{make([]float64, a.N), make([]float64, a.N)}
		if err := e.SolveUpperBatchInto(X, [][]float64{b, b}); err != nil {
			t.Fatal(err)
		}
		assertBitwise(t, m.String()+"/batch", X[0], want)
		assertBitwise(t, m.String()+"/batch", X[1], want)
		e.Close()
	}
}

func TestEngineApplySGSBatchMatchesLoop(t *testing.T) {
	a := gen.Grid3D(6, 6, 6)
	p := planFor(t, a, order.STS3)
	us, err := NewUpperSolver(p.S)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	const nrhs = 8
	R := make([][]float64, nrhs)
	want := make([][]float64, nrhs)
	d := make([]float64, a.N)
	l := p.S.L
	for i := 0; i < l.N; i++ {
		d[i] = l.Val[l.RowPtr[i+1]-1]
	}
	for r := range R {
		R[r] = make([]float64, a.N)
		for i := range R[r] {
			R[r][i] = rng.NormFloat64()
		}
		y, err := Sequential(p.S, R[r])
		if err != nil {
			t.Fatal(err)
		}
		for i := range y {
			y[i] *= d[i]
		}
		if want[r], err = us.Solve(y, Options{Workers: 1}); err != nil {
			t.Fatal(err)
		}
	}
	e := NewEngine(p.S, Options{Workers: 3})
	defer e.Close()
	Z := make([][]float64, nrhs)
	for r := range Z {
		Z[r] = make([]float64, a.N)
	}
	if err := e.ApplySGSBatch(Z, R); err != nil {
		t.Fatal(err)
	}
	for r := range Z {
		assertBitwise(t, "sgs", Z[r], want[r])
	}
}

// TestEngineConcurrentSolves hammers one engine from many goroutines with
// a mix of cooperative, upper, and batch solves — the race-detector test
// for the shared pool.
func TestEngineConcurrentSolves(t *testing.T) {
	a := gen.TriMesh(12, 12, 3)
	p := planFor(t, a, order.STS3)
	B, want := randomRHS(p, 6, 43)
	e := NewEngine(p.S, Options{Workers: 4})
	defer e.Close()
	if err := e.ensureUpper(e.vals.Current()); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < 5; it++ {
				switch g % 3 {
				case 0:
					x, err := e.Solve(B[it%len(B)])
					if err != nil {
						errs <- err
						return
					}
					for i := range x {
						if x[i] != want[it%len(B)][i] {
							t.Errorf("coop mismatch at %d", i)
							return
						}
					}
				case 1:
					if _, err := e.SolveUpper(B[it%len(B)]); err != nil {
						errs <- err
						return
					}
				default:
					X, err := e.SolveBatch(B)
					if err != nil {
						errs <- err
						return
					}
					for r := range X {
						for i := range X[r] {
							if X[r][i] != want[r][i] {
								t.Errorf("batch mismatch rhs %d at %d", r, i)
								return
							}
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestEngineCloseRacingSolves closes engines while solves are in flight:
// every solve must either complete or return ErrClosed — never deadlock
// (run under -race and without).
func TestEngineCloseRacingSolves(t *testing.T) {
	a := gen.Grid2D(10, 10)
	p := planFor(t, a, order.STS3)
	B, _ := randomRHS(p, 2, 3)
	for trial := 0; trial < 20; trial++ {
		e := NewEngine(p.S, Options{Workers: 4})
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < 10; i++ {
					var err error
					if g%2 == 0 {
						_, err = e.Solve(B[i%2])
					} else {
						_, err = e.SolveBatch(B)
					}
					if err != nil {
						if !errors.Is(err, ErrClosed) {
							t.Error(err)
						}
						return
					}
				}
			}(g)
		}
		e.Close()
		wg.Wait()
	}
}

func TestEngineClosed(t *testing.T) {
	a := gen.Grid2D(8, 8)
	p := planFor(t, a, order.STS3)
	e := NewEngine(p.S, Options{Workers: 2})
	b := make([]float64, a.N)
	if _, err := e.Solve(b); err != nil {
		t.Fatal(err)
	}
	e.Close()
	e.Close() // idempotent
	if _, err := e.Solve(b); !errors.Is(err, ErrClosed) {
		t.Fatalf("solve after close: %v, want ErrClosed", err)
	}
	if _, err := e.SolveBatch([][]float64{b}); !errors.Is(err, ErrClosed) {
		t.Fatalf("batch after close: %v, want ErrClosed", err)
	}
	bs := make(chan []float64, 1)
	bs <- b
	close(bs)
	res := <-e.SolveMany(bs)
	if !errors.Is(res.Err, ErrClosed) {
		t.Fatalf("stream after close: %v, want ErrClosed", res.Err)
	}
}

func TestEngineBadLengths(t *testing.T) {
	a := gen.Grid2D(8, 8)
	p := planFor(t, a, order.STS3)
	e := NewEngine(p.S, Options{Workers: 2})
	defer e.Close()
	if _, err := e.Solve(make([]float64, 3)); err == nil {
		t.Fatal("short rhs accepted")
	}
	if err := e.SolveBatchInto([][]float64{make([]float64, a.N)}, nil); err == nil {
		t.Fatal("mismatched batch lengths accepted")
	}
	if _, err := e.SolveBatch([][]float64{make([]float64, 2)}); err == nil {
		t.Fatal("short batch rhs accepted")
	}
}
