package solve

import (
	"context"
	"errors"
	"testing"

	"stsk/internal/order"
	"stsk/internal/testmat"
)

// blockEngines returns one engine per schedule the panel path must thread
// through: the paper's barrier pairing and the dependency-driven graph
// schedule (a fine-grained DAG so small corpus matrices still exercise
// real task graphs).
func blockEngines(p *order.Plan, workers int) []struct {
	name string
	e    *Engine
} {
	return []struct {
		name string
		e    *Engine
	}{
		{"barrier", NewEngine(p.S, Options{Workers: workers, Schedule: Guided})},
		{"graph", graphEngine(p, workers)},
	}
}

// TestEngineSolveBlockBitwise is the engine-level panel acceptance gate:
// for every corpus matrix, method, schedule and batch size 1..9, each
// column of SolveBlockInto must equal Sequential bit for bit.
func TestEngineSolveBlockBitwise(t *testing.T) {
	for _, ent := range testmat.Corpus() {
		for _, m := range order.Methods() {
			p := planFor(t, ent.A, m)
			B, want := randomRHS(p, 9, 77)
			for _, sched := range blockEngines(p, 4) {
				for k := 1; k <= len(B); k++ {
					X := make([][]float64, k)
					for i := range X {
						X[i] = make([]float64, ent.A.N)
					}
					if err := sched.e.SolveBlockInto(X, B[:k], 0); err != nil {
						t.Fatalf("%s/%v/%s/k=%d: %v", ent.Name, m, sched.name, k, err)
					}
					for r := 0; r < k; r++ {
						assertBitwise(t, ent.Name+"/"+m.String()+"/"+sched.name, X[r], want[r])
					}
				}
				sched.e.Close()
			}
		}
	}
}

// TestEngineSolveBlockWidths drives the same panel through every
// configured width, including widths that round down and width 1 (panel
// disabled): results must stay bitwise identical regardless of how the
// batch is carved into panels.
func TestEngineSolveBlockWidths(t *testing.T) {
	a := testmat.TriMesh(12)
	p := planFor(t, a, order.STS3)
	B, want := randomRHS(p, 9, 5)
	e := NewEngine(p.S, Options{Workers: 3})
	defer e.Close()
	X := make([][]float64, len(B))
	for i := range X {
		X[i] = make([]float64, a.N)
	}
	for _, width := range []int{0, 1, 2, 3, 4, 5, 7, 8, 64} {
		for i := range X {
			for j := range X[i] {
				X[i][j] = 0
			}
		}
		if err := e.SolveBlockInto(X, B, width); err != nil {
			t.Fatalf("width %d: %v", width, err)
		}
		for r := range X {
			assertBitwise(t, "width", X[r], want[r])
		}
	}
}

// TestEngineSolveUpperBlockBitwise checks the blocked backward sweep
// against the scalar one-worker backward solve, both schedules.
func TestEngineSolveUpperBlockBitwise(t *testing.T) {
	for _, ent := range testmat.Corpus() {
		p := planFor(t, ent.A, order.STS3)
		us, err := NewUpperSolver(p.S)
		if err != nil {
			t.Fatal(err)
		}
		B, _ := randomRHS(p, 5, 19)
		want := make([][]float64, len(B))
		for r := range B {
			if want[r], err = us.Solve(B[r], Options{Workers: 1}); err != nil {
				t.Fatal(err)
			}
		}
		for _, sched := range blockEngines(p, 4) {
			X := make([][]float64, len(B))
			for i := range X {
				X[i] = make([]float64, ent.A.N)
			}
			if err := sched.e.SolveUpperBlockInto(X, B, 0); err != nil {
				t.Fatalf("%s/%s: %v", ent.Name, sched.name, err)
			}
			for r := range X {
				assertBitwise(t, ent.Name+"/upper/"+sched.name, X[r], want[r])
			}
			sched.e.Close()
		}
	}
}

// TestEngineSolveBlockInPlace solves with X[i] aliasing B[i]: packing
// copies the panel out before the sweep, so aliasing must be exact.
func TestEngineSolveBlockInPlace(t *testing.T) {
	a := testmat.Grid3D(5)
	p := planFor(t, a, order.STS3)
	B, want := randomRHS(p, 8, 3)
	e := NewEngine(p.S, Options{Workers: 3})
	defer e.Close()
	aliased := make([][]float64, len(B))
	for r := range B {
		aliased[r] = append([]float64(nil), B[r]...)
	}
	if err := e.SolveBlockInto(aliased, aliased, 0); err != nil {
		t.Fatal(err)
	}
	for r := range aliased {
		assertBitwise(t, "in-place", aliased[r], want[r])
	}
}

// TestEngineBlockValidation is the engine-layer half of the validation
// satellite: ragged and wrong-length batches must fail with ErrDimension
// (matched through errors.Is) before any work is dispatched, and a closed
// engine must fail with ErrClosed.
func TestEngineBlockValidation(t *testing.T) {
	a := testmat.Grid3D(4)
	p := planFor(t, a, order.STS3)
	e := NewEngine(p.S, Options{Workers: 2})
	n := a.N
	good := func() [][]float64 {
		v := make([][]float64, 3)
		for i := range v {
			v[i] = make([]float64, n)
		}
		return v
	}
	for _, tc := range []struct {
		name string
		X, B [][]float64
	}{
		{"mismatched batch lengths", good(), good()[:2]},
		{"short rhs", good(), func() [][]float64 { v := good(); v[1] = v[1][:n-1]; return v }()},
		{"long rhs", good(), func() [][]float64 { v := good(); v[2] = make([]float64, n+1); return v }()},
		{"nil rhs", good(), func() [][]float64 { v := good(); v[0] = nil; return v }()},
		{"short solution", func() [][]float64 { v := good(); v[0] = v[0][:1]; return v }(), good()},
	} {
		for _, path := range []struct {
			name string
			call func(X, B [][]float64) error
		}{
			{"block", func(X, B [][]float64) error { return e.SolveBlockInto(X, B, 0) }},
			{"upper-block", func(X, B [][]float64) error { return e.SolveUpperBlockInto(X, B, 0) }},
			{"batch", e.SolveBatchInto},
			{"upper-batch", e.SolveUpperBatchInto},
		} {
			err := path.call(tc.X, tc.B)
			if !errors.Is(err, ErrDimension) {
				t.Errorf("%s/%s: err = %v, want ErrDimension", path.name, tc.name, err)
			}
		}
	}
	e.Close()
	if err := e.SolveBlockInto(good(), good(), 0); !errors.Is(err, ErrClosed) {
		t.Errorf("block after close: %v, want ErrClosed", err)
	}
	if err := e.SolveBlockIntoCtx(context.Background(), good(), good(), 0); !errors.Is(err, ErrClosed) {
		t.Errorf("block ctx after close: %v, want ErrClosed", err)
	}
}

// TestEngineBlockCtxCancelled: a dead context fails the call before any
// panel is dispatched, and the engine stays usable.
func TestEngineBlockCtxCancelled(t *testing.T) {
	a := testmat.Grid3D(4)
	p := planFor(t, a, order.STS3)
	e := NewEngine(p.S, Options{Workers: 2})
	defer e.Close()
	B, want := randomRHS(p, 3, 9)
	X := make([][]float64, len(B))
	for i := range X {
		X[i] = make([]float64, a.N)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := e.SolveBlockIntoCtx(ctx, X, B, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled block: %v, want context.Canceled", err)
	}
	if err := e.SolveBlockIntoCtx(context.Background(), X, B, 0); err != nil {
		t.Fatal(err)
	}
	for r := range X {
		assertBitwise(t, "after-cancel", X[r], want[r])
	}
}

// TestEngineBlockSteadyStateAllocs asserts the panel fast path allocates
// nothing once the pooled scratch is warm.
func TestEngineBlockSteadyStateAllocs(t *testing.T) {
	testmat.SkipIfRace(t)
	a := testmat.Grid3D(6)
	p := planFor(t, a, order.STS3)
	B, _ := randomRHS(p, 8, 13)
	X := make([][]float64, len(B))
	for i := range X {
		X[i] = make([]float64, a.N)
	}
	for _, sched := range blockEngines(p, 3) {
		for i := 0; i < 3; i++ { // warm panel scratch and the pool
			if err := sched.e.SolveBlockInto(X, B, 0); err != nil {
				t.Fatal(err)
			}
		}
		if n := testing.AllocsPerRun(50, func() {
			if err := sched.e.SolveBlockInto(X, B, 0); err != nil {
				t.Fatal(err)
			}
		}); n != 0 {
			t.Errorf("%s: SolveBlockInto allocates %.1f/op, want 0", sched.name, n)
		}
		sched.e.Close()
	}
}

// TestPanelWidthSplit pins the panel carving: greedy widest-first with
// remainder columns falling to the scalar kernel.
func TestPanelWidthSplit(t *testing.T) {
	for _, tc := range []struct {
		rem, width, want int
	}{
		{9, 8, 8}, {8, 8, 8}, {7, 8, 4}, {3, 8, 2}, {2, 8, 2}, {1, 8, 1},
		{7, 4, 4}, {3, 4, 2}, {5, 2, 2}, {1, 2, 1}, {4, 1, 1},
	} {
		if got := panelWidth(tc.rem, tc.width); got != tc.want {
			t.Errorf("panelWidth(%d, %d) = %d, want %d", tc.rem, tc.width, got, tc.want)
		}
	}
	for _, tc := range []struct {
		w, fallback, want int
	}{
		{0, 8, 8}, {0, 4, 4}, {1, 8, 1}, {2, 8, 2}, {3, 8, 2}, {5, 8, 4}, {9, 8, 8}, {64, 8, 8},
	} {
		if got := normalizeBlockWidth(tc.w, tc.fallback); got != tc.want {
			t.Errorf("normalizeBlockWidth(%d, %d) = %d, want %d", tc.w, tc.fallback, got, tc.want)
		}
	}
}
