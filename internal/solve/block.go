package solve

import "stsk/internal/sparse"

// Blocked multi-vector (panel) kernels: forward/backward substitution over
// a row-major n×k panel X, sweeping the matrix once for all k right-hand
// sides. The scalar kernels walk the full index structure once per vector,
// so solving a batch of width k costs k passes over RowPtr/Col/Val; the
// panel kernels load each (col, val) pair once and apply it across the k
// columns with a fixed-width inner loop, cutting the index and value
// traffic — exactly what bounds a cache-resident triangular solve — by the
// panel width. Widths 2, 4 and 8 get dedicated unrolled bodies; other
// widths take the generic body (the panel splitter only ever produces
// {8,4,2}, with remainder columns falling back to the scalar kernel).
//
// Layout: X and B hold row i's k entries at X[i*k : i*k+k]; X may alias B
// for an in-place solve (row i's B entries are read before its X entries
// are written, and every other access is to already-solved rows).
//
// Bitwise contract: column j of the panel accumulates val[k]·X[col·kw+j]
// in the same entry order as the scalar kernels and finishes with the same
// (b − s) / diag, so every panel column is bitwise identical to a scalar
// solve of that column — the equality harnesses of the scalar paths extend
// to panels unchanged.

// solvePackedRowsBlock performs forward substitution for rows [lo, hi) of
// a packed lower factor across a row-major panel of width kw.
//
//stsk:noalloc
func solvePackedRowsBlock(p *sparse.Packed, X, B []float64, kw, lo, hi int) {
	rp, col, val, diag := p.RowPtr, p.Col, p.Val, p.Diag
	switch kw {
	case 8:
		for i := lo; i < hi; i++ {
			var s0, s1, s2, s3, s4, s5, s6, s7 float64
			for k := rp[i]; k < rp[i+1]; k++ {
				v := val[k]
				c := int(col[k]) * 8
				s0 += v * X[c]
				s1 += v * X[c+1]
				s2 += v * X[c+2]
				s3 += v * X[c+3]
				s4 += v * X[c+4]
				s5 += v * X[c+5]
				s6 += v * X[c+6]
				s7 += v * X[c+7]
			}
			d := diag[i]
			o := i * 8
			X[o] = (B[o] - s0) / d
			X[o+1] = (B[o+1] - s1) / d
			X[o+2] = (B[o+2] - s2) / d
			X[o+3] = (B[o+3] - s3) / d
			X[o+4] = (B[o+4] - s4) / d
			X[o+5] = (B[o+5] - s5) / d
			X[o+6] = (B[o+6] - s6) / d
			X[o+7] = (B[o+7] - s7) / d
		}
	case 4:
		for i := lo; i < hi; i++ {
			var s0, s1, s2, s3 float64
			for k := rp[i]; k < rp[i+1]; k++ {
				v := val[k]
				c := int(col[k]) * 4
				s0 += v * X[c]
				s1 += v * X[c+1]
				s2 += v * X[c+2]
				s3 += v * X[c+3]
			}
			d := diag[i]
			o := i * 4
			X[o] = (B[o] - s0) / d
			X[o+1] = (B[o+1] - s1) / d
			X[o+2] = (B[o+2] - s2) / d
			X[o+3] = (B[o+3] - s3) / d
		}
	case 2:
		for i := lo; i < hi; i++ {
			var s0, s1 float64
			for k := rp[i]; k < rp[i+1]; k++ {
				v := val[k]
				c := int(col[k]) * 2
				s0 += v * X[c]
				s1 += v * X[c+1]
			}
			d := diag[i]
			o := i * 2
			X[o] = (B[o] - s0) / d
			X[o+1] = (B[o+1] - s1) / d
		}
	default:
		var s [maxBlockWidth]float64
		for i := lo; i < hi; i++ {
			for j := 0; j < kw; j++ {
				s[j] = 0
			}
			for k := rp[i]; k < rp[i+1]; k++ {
				v := val[k]
				c := int(col[k]) * kw
				for j := 0; j < kw; j++ {
					s[j] += v * X[c+j]
				}
			}
			d := diag[i]
			o := i * kw
			for j := 0; j < kw; j++ {
				X[o+j] = (B[o+j] - s[j]) / d
			}
		}
	}
}

// solvePackedUpperRowsBlock performs backward substitution for rows
// [lo, hi) of a packed upper factor across a row-major panel, highest row
// first.
//
//stsk:noalloc
func solvePackedUpperRowsBlock(p *sparse.Packed, X, B []float64, kw, lo, hi int) {
	rp, col, val, diag := p.RowPtr, p.Col, p.Val, p.Diag
	switch kw {
	case 8:
		for i := hi - 1; i >= lo; i-- {
			var s0, s1, s2, s3, s4, s5, s6, s7 float64
			for k := rp[i]; k < rp[i+1]; k++ {
				v := val[k]
				c := int(col[k]) * 8
				s0 += v * X[c]
				s1 += v * X[c+1]
				s2 += v * X[c+2]
				s3 += v * X[c+3]
				s4 += v * X[c+4]
				s5 += v * X[c+5]
				s6 += v * X[c+6]
				s7 += v * X[c+7]
			}
			d := diag[i]
			o := i * 8
			X[o] = (B[o] - s0) / d
			X[o+1] = (B[o+1] - s1) / d
			X[o+2] = (B[o+2] - s2) / d
			X[o+3] = (B[o+3] - s3) / d
			X[o+4] = (B[o+4] - s4) / d
			X[o+5] = (B[o+5] - s5) / d
			X[o+6] = (B[o+6] - s6) / d
			X[o+7] = (B[o+7] - s7) / d
		}
	case 4:
		for i := hi - 1; i >= lo; i-- {
			var s0, s1, s2, s3 float64
			for k := rp[i]; k < rp[i+1]; k++ {
				v := val[k]
				c := int(col[k]) * 4
				s0 += v * X[c]
				s1 += v * X[c+1]
				s2 += v * X[c+2]
				s3 += v * X[c+3]
			}
			d := diag[i]
			o := i * 4
			X[o] = (B[o] - s0) / d
			X[o+1] = (B[o+1] - s1) / d
			X[o+2] = (B[o+2] - s2) / d
			X[o+3] = (B[o+3] - s3) / d
		}
	case 2:
		for i := hi - 1; i >= lo; i-- {
			var s0, s1 float64
			for k := rp[i]; k < rp[i+1]; k++ {
				v := val[k]
				c := int(col[k]) * 2
				s0 += v * X[c]
				s1 += v * X[c+1]
			}
			d := diag[i]
			o := i * 2
			X[o] = (B[o] - s0) / d
			X[o+1] = (B[o+1] - s1) / d
		}
	default:
		var s [maxBlockWidth]float64
		for i := hi - 1; i >= lo; i-- {
			for j := 0; j < kw; j++ {
				s[j] = 0
			}
			for k := rp[i]; k < rp[i+1]; k++ {
				v := val[k]
				c := int(col[k]) * kw
				for j := 0; j < kw; j++ {
					s[j] += v * X[c+j]
				}
			}
			d := diag[i]
			o := i * kw
			for j := 0; j < kw; j++ {
				X[o+j] = (B[o+j] - s[j]) / d
			}
		}
	}
}

// solveRowsBlock is the CSR fallback of solvePackedRowsBlock, for factors
// whose indices overflow the packed 32-bit layout. The diagonal entry is
// last in each row (the csrk invariant).
//
//stsk:noalloc
func solveRowsBlock(rowPtr, col []int, val, X, B []float64, kw, lo, hi int) {
	var s [maxBlockWidth]float64
	for i := lo; i < hi; i++ {
		for j := 0; j < kw; j++ {
			s[j] = 0
		}
		end := rowPtr[i+1] - 1
		for k := rowPtr[i]; k < end; k++ {
			v := val[k]
			c := col[k] * kw
			for j := 0; j < kw; j++ {
				s[j] += v * X[c+j]
			}
		}
		d := val[end]
		o := i * kw
		for j := 0; j < kw; j++ {
			X[o+j] = (B[o+j] - s[j]) / d
		}
	}
}

// solveUpperRowsBlock is the CSR fallback of solvePackedUpperRowsBlock.
// The diagonal entry leads each row of the transposed factor.
//
//stsk:noalloc
func solveUpperRowsBlock(rowPtr, col []int, val, X, B []float64, kw, lo, hi int) {
	var s [maxBlockWidth]float64
	for i := hi - 1; i >= lo; i-- {
		for j := 0; j < kw; j++ {
			s[j] = 0
		}
		first := rowPtr[i]
		for k := first + 1; k < rowPtr[i+1]; k++ {
			v := val[k]
			c := col[k] * kw
			for j := 0; j < kw; j++ {
				s[j] += v * X[c+j]
			}
		}
		d := val[first]
		o := i * kw
		for j := 0; j < kw; j++ {
			X[o+j] = (B[o+j] - s[j]) / d
		}
	}
}
