package solve

import "sync"

// Typed sync.Pool wrappers. sync.Pool traffics in `any`, so bare
// Get/Put calls put an interface conversion on the dispatch path — the
// noalloc analyzer cannot prove a conversion free (and for non-pointer
// values it is not), so the hot paths stay monomorphic by routing every
// pool access through these wrappers. The conversions live here, outside
// the //stsk:noalloc boundary, and each Get falls back to constructing a
// fresh value when the pool is empty (or when the race detector has
// dropped the puts), so no New closure is needed.

// wholeJobPool recycles whole-RHS/panel job descriptors.
type wholeJobPool struct{ p sync.Pool }

func (pl *wholeJobPool) Get() *wholeJob {
	if j, ok := pl.p.Get().(*wholeJob); ok {
		return j
	}
	return new(wholeJob)
}

func (pl *wholeJobPool) Put(j *wholeJob) { pl.p.Put(j) }

// batchRunPool recycles batch completion trackers.
type batchRunPool struct{ p sync.Pool }

func (pl *batchRunPool) Get() *batchRun {
	if r, ok := pl.p.Get().(*batchRun); ok {
		return r
	}
	return &batchRun{done: make(chan struct{}, 1)}
}

func (pl *batchRunPool) Put(r *batchRun) { pl.p.Put(r) }

// errcPool recycles capacity-1 stream completion channels.
type errcPool struct{ p sync.Pool }

func (pl *errcPool) Get() chan error {
	if c, ok := pl.p.Get().(chan error); ok {
		return c
	}
	return make(chan error, 1)
}

func (pl *errcPool) Put(c chan error) { pl.p.Put(c) }

// panelPool recycles row-major n×maxBlockWidth panel scratch. size is the
// element count of a full panel, fixed at engine construction.
type panelPool struct {
	p    sync.Pool
	size int
}

func (pl *panelPool) Get() *[]float64 {
	if b, ok := pl.p.Get().(*[]float64); ok {
		return b
	}
	buf := make([]float64, pl.size)
	return &buf
}

func (pl *panelPool) Put(b *[]float64) { pl.p.Put(b) }
