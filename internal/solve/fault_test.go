package solve

import (
	"context"
	"errors"
	"testing"

	"stsk/internal/faultinject"
	"stsk/internal/gen"
	"stsk/internal/order"
	"stsk/internal/panicsafe"
)

// These tests drive the engine through internal/faultinject and assert
// the containment contract: a kernel panic (or injected job fault) turns
// into an error wrapping panicsafe.ErrInternal (or the injected error),
// every completion counter and done channel still fires (no deadlock),
// and the engine stays fully usable afterwards.

func withFaults(t *testing.T, spec string, seed uint64) {
	t.Helper()
	if err := faultinject.Enable(spec, seed); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(faultinject.Disable)
}

// afterFaults verifies the engine recovers completely once injection is
// disabled: a clean solve must match Sequential bitwise.
func afterFaults(t *testing.T, e *Engine, p *order.Plan) {
	t.Helper()
	faultinject.Disable()
	B, want := randomRHS(p, 1, 99)
	x, err := e.Solve(B[0])
	if err != nil {
		t.Fatalf("engine unusable after contained fault: %v", err)
	}
	assertBitwise(t, "post-fault", x, want[0])
}

func TestCoopSolveContainsPanic(t *testing.T) {
	a := gen.Grid2D(12, 12)
	p := planFor(t, a, order.STS3)
	e := NewEngine(p.S, Options{Workers: 4})
	defer e.Close()
	B, _ := randomRHS(p, 1, 5)

	withFaults(t, "engine.job:panic", 1)
	x := make([]float64, a.N)
	err := e.SolveInto(x, B[0])
	if !errors.Is(err, panicsafe.ErrInternal) {
		t.Fatalf("want ErrInternal from panicking coop solve, got %v", err)
	}
	afterFaults(t, e, p)
}

func TestCoopSolveReportsInjectedError(t *testing.T) {
	a := gen.Grid2D(12, 12)
	p := planFor(t, a, order.STS3)
	e := NewEngine(p.S, Options{Workers: 3})
	defer e.Close()
	B, _ := randomRHS(p, 1, 5)

	withFaults(t, "engine.job:error", 1)
	err := e.SolveInto(make([]float64, a.N), B[0])
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("want injected error, got %v", err)
	}
	afterFaults(t, e, p)
}

func TestGraphSolveContainsPanic(t *testing.T) {
	a := gen.Grid2D(12, 12)
	p := planFor(t, a, order.STS3)
	e := graphEngine(p, 4)
	defer e.Close()
	B, _ := randomRHS(p, 1, 7)

	withFaults(t, "engine.job:panic", 1)
	err := e.SolveInto(make([]float64, a.N), B[0])
	if !errors.Is(err, panicsafe.ErrInternal) {
		t.Fatalf("want ErrInternal from panicking graph solve, got %v", err)
	}
	afterFaults(t, e, p)
}

func TestBatchSolveContainsPanicPerMember(t *testing.T) {
	a := gen.Grid2D(12, 12)
	p := planFor(t, a, order.STS3)
	e := NewEngine(p.S, Options{Workers: 4})
	defer e.Close()
	B, _ := randomRHS(p, 8, 11)
	X := make([][]float64, len(B))
	for i := range X {
		X[i] = make([]float64, a.N)
	}

	// Panic on every job: the batch must complete (counters fire) and
	// report ErrInternal instead of deadlocking on a dead member.
	withFaults(t, "engine.job:panic", 1)
	err := e.SolveBatchInto(X, B)
	if !errors.Is(err, panicsafe.ErrInternal) {
		t.Fatalf("want ErrInternal from panicking batch, got %v", err)
	}
	afterFaults(t, e, p)
}

func TestBatchSolvePartialPanicSparesMates(t *testing.T) {
	a := gen.Grid2D(12, 12)
	p := planFor(t, a, order.STS3)
	e := NewEngine(p.S, Options{Workers: 4})
	defer e.Close()
	B, _ := randomRHS(p, 16, 13)
	X := make([][]float64, len(B))
	for i := range X {
		X[i] = make([]float64, a.N)
	}

	// Exactly one member panics; the batch reports the failure but every
	// other member's completion still fires.
	withFaults(t, "engine.job:panic:after=3,count=1", 1)
	err := e.SolveBatchInto(X, B)
	if !errors.Is(err, panicsafe.ErrInternal) {
		t.Fatalf("want ErrInternal from partially panicking batch, got %v", err)
	}
	afterFaults(t, e, p)
}

func TestSolveManyContainsPanic(t *testing.T) {
	a := gen.Grid2D(10, 10)
	p := planFor(t, a, order.STS3)
	e := NewEngine(p.S, Options{Workers: 2})
	defer e.Close()
	B, _ := randomRHS(p, 6, 17)

	withFaults(t, "engine.job:panic:every=2", 1)
	in := make(chan []float64, len(B))
	for _, b := range B {
		in <- b
	}
	close(in)
	nerr, nok := 0, 0
	for r := range e.SolveManyCtx(context.Background(), in) {
		if r.Err != nil {
			if !errors.Is(r.Err, panicsafe.ErrInternal) {
				t.Fatalf("stream error is not ErrInternal: %v", r.Err)
			}
			nerr++
		} else {
			nok++
		}
	}
	if nerr == 0 || nok == 0 {
		t.Fatalf("every=2 stream: %d errors, %d ok — want a mix", nerr, nok)
	}
	afterFaults(t, e, p)
}

func TestSwapInjectedFaultLeavesOldEpoch(t *testing.T) {
	a := gen.Grid2D(10, 10)
	p := planFor(t, a, order.STS3)
	v := NewValues(p.S)
	e := NewEngineVals(v, Options{Workers: 2})
	defer e.Close()
	seqBefore := v.Version()

	withFaults(t, "epoch.swap:error", 1)
	val := make([]float64, len(p.S.L.Val))
	copy(val, p.S.L.Val)
	if err := v.Swap(val); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("want injected swap error, got %v", err)
	}
	if v.Version() != seqBefore {
		t.Fatal("failed swap must not publish a new epoch")
	}
	faultinject.Disable()
	if err := v.Swap(val); err != nil {
		t.Fatalf("swap after fault cleared: %v", err)
	}
	if v.Version() != seqBefore+1 {
		t.Fatal("clean swap must publish")
	}
}

func TestDegenerateSolveContainsPanic(t *testing.T) {
	a := gen.Grid2D(10, 10)
	p := planFor(t, a, order.STS3)
	e := NewEngine(p.S, Options{Workers: 1}) // degenerate localSweep path
	defer e.Close()
	B, _ := randomRHS(p, 1, 23)

	withFaults(t, "engine.job:panic", 1)
	err := e.SolveInto(make([]float64, a.N), B[0])
	if !errors.Is(err, panicsafe.ErrInternal) {
		t.Fatalf("want ErrInternal from degenerate path, got %v", err)
	}
	afterFaults(t, e, p)
}
