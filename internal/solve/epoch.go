package solve

import (
	"fmt"
	"sync"
	"sync/atomic"

	"stsk/internal/csrk"
	"stsk/internal/faultinject"
	"stsk/internal/sparse"
)

// Values owns the numeric side of one plan's factor as a sequence of
// immutable copy-on-write epochs. The symbolic side — pack partition,
// super-row boundaries, the RowPtr/Col index arrays, the task DAG — is
// built once and shared by every epoch; a numeric refactorization
// (Values.Swap) publishes a new epoch carrying only fresh value arrays.
//
// The hot path takes no locks: every solve dispatch loads the current
// epoch pointer exactly once and threads it through the sweep, so a solve
// already in flight finishes on the snapshot it started with while later
// dispatches see the new values. One Values is shared by all engines of a
// plan, so per-epoch derived state (the packed SoA layout, the validated
// transpose, the diagonal) is built at most once per epoch no matter how
// many engines solve it.
type Values struct {
	cur atomic.Pointer[epoch]

	// packWanted records that at least one persistent engine solves these
	// values, so new epochs eagerly rebuild the packed layout at Swap time
	// instead of leaving the first post-swap solves on the CSR fallback.
	packWanted atomic.Bool
}

// NewValues wraps a structure as epoch 0 of a value sequence.
func NewValues(s *csrk.Structure) *Values {
	return NewValuesVersion(s, 0)
}

// NewValuesVersion wraps a structure as epoch seq of a value sequence —
// the snapshot-reload path, where a deserialized plan must resume the
// epoch numbering the serialized plan had reached so version reporting
// stays monotone across a warm restart.
func NewValuesVersion(s *csrk.Structure, seq uint64) *Values {
	v := &Values{}
	v.cur.Store(newEpoch(seq, s))
	return v
}

// Current returns the live epoch. Solve dispatchers call this exactly
// once per dispatch and thread the snapshot through the whole sweep.
func (v *Values) Current() *epoch { return v.cur.Load() }

// Structure returns the current epoch's structure: the shared symbolic
// arrays plus the live value array.
func (v *Values) Structure() *csrk.Structure { return v.Current().s }

// Version returns the sequence number of the live epoch, starting at 0
// and incremented by every successful Swap.
func (v *Values) Version() uint64 { return v.Current().seq }

// Snapshot returns the live epoch's structure and sequence number from a
// single epoch load, so a serializer observes one consistent (values,
// version) pair even while concurrent Swap calls land.
func (v *Values) Snapshot() (*csrk.Structure, uint64) {
	ep := v.Current()
	return ep.s, ep.seq
}

// Swap validates val as a complete value array for the factor's fixed
// sparsity and publishes it as a new epoch. The check is all-or-nothing:
// on a length mismatch (wrapped ErrDimension) or a zero diagonal nothing
// is published and in-flight and future solves keep the old values.
//
// Swap takes ownership of val; the caller must not modify it afterwards.
// Concurrent Swap calls must be serialised by the caller (the stsk facade
// holds a per-plan mutex); solves need no coordination at all.
func (v *Values) Swap(val []float64) error {
	if err := faultinject.Fire(faultinject.EpochSwap); err != nil {
		// An injected epoch.swap fault models a refactorization dying
		// before publication: all-or-nothing, the old epoch stays live.
		return err
	}
	old := v.cur.Load()
	l := old.s.L
	if len(val) != len(l.Val) {
		return fmt.Errorf("%w: %d values for a factor with %d stored entries", ErrDimension, len(val), len(l.Val))
	}
	for i := 0; i < l.N; i++ {
		if val[l.RowPtr[i+1]-1] == 0 {
			return fmt.Errorf("solve: zero diagonal at row %d", i)
		}
	}
	l2 := &sparse.CSR{N: l.N, RowPtr: l.RowPtr, Col: l.Col, Val: val}
	s2 := &csrk.Structure{L: l2, SuperPtr: old.s.SuperPtr, PackPtr: old.s.PackPtr}
	ep := newEpoch(old.seq+1, s2)
	if v.packWanted.Load() {
		ep.ensurePacked()
	}
	v.cur.Store(ep)
	return nil
}

// epoch is one immutable numeric snapshot of the factor: the structure
// (shared symbolic arrays + this epoch's values) and derived state built
// lazily at most once. The pk/u/upk pointers are atomic because kernels
// read them on worker goroutines without passing through the sync.Once
// that built them; a kernel observing nil simply takes the bitwise-
// identical CSR fallback.
type epoch struct {
	seq uint64
	s   *csrk.Structure

	packOnce sync.Once
	pk       atomic.Pointer[sparse.Packed] // compact SoA layout of s.L (nil on int32 overflow)

	diagOnce sync.Once
	diag     []float64 // diagonal of L′

	upperOnce sync.Once
	u         atomic.Pointer[sparse.CSR]    // L′ᵀ, diagonal first in each row
	upk       atomic.Pointer[sparse.Packed] // compact layout of u (nil on overflow)
	upperErr  error
}

func newEpoch(seq uint64, s *csrk.Structure) *epoch {
	return &epoch{seq: seq, s: s}
}

// ensurePacked builds the epoch's packed SoA layout once. The O(nnz)
// conversion amortises over the epoch's lifetime on persistent engines;
// one-shot wrappers never ask for it.
func (ep *epoch) ensurePacked() {
	ep.packOnce.Do(func() {
		if pk, ok := sparse.PackLower(ep.s.L); ok {
			ep.pk.Store(pk)
		}
	})
}

// diagonal returns (building once) the diagonal of L′.
func (ep *epoch) diagonal() []float64 {
	ep.diagOnce.Do(func() {
		if pk := ep.pk.Load(); pk != nil {
			ep.diag = pk.Diag
			return
		}
		l := ep.s.L
		d := make([]float64, l.N)
		for i := 0; i < l.N; i++ {
			d[i] = l.Val[l.RowPtr[i+1]-1]
		}
		ep.diag = d
	})
	return ep.diag
}

// ensureUpper builds and validates the epoch's transpose L′ᵀ for backward
// sweeps on first use, packing it too when pack is set.
func (ep *epoch) ensureUpper(pack bool) error {
	ep.upperOnce.Do(func() {
		u := ep.s.L.Transpose()
		for i := 0; i < u.N; i++ {
			lo, hi := u.RowPtr[i], u.RowPtr[i+1]
			if lo == hi || u.Col[lo] != i {
				ep.upperErr = fmt.Errorf("solve: transposed row %d lacks a leading diagonal", i)
				return
			}
			if u.Val[lo] == 0 {
				ep.upperErr = fmt.Errorf("solve: zero diagonal at transposed row %d", i)
				return
			}
		}
		if pack {
			if upk, ok := sparse.PackUpper(u); ok {
				ep.upk.Store(upk)
			}
		}
		ep.u.Store(u)
	})
	return ep.upperErr
}

// adoptUpper installs a pre-built validated transpose (the UpperSolver
// path), so the epoch never re-transposes.
func (ep *epoch) adoptUpper(u *sparse.CSR, pack bool) {
	ep.upperOnce.Do(func() {
		if pack {
			if upk, ok := sparse.PackUpper(u); ok {
				ep.upk.Store(upk)
			}
		}
		ep.u.Store(u)
	})
}

// forwardRows sweeps rows [lo, hi) of this epoch's L′, preferring the
// packed layout.
//
//stsk:noalloc
func (ep *epoch) forwardRows(x, b []float64, lo, hi int) {
	if pk := ep.pk.Load(); pk != nil {
		solvePackedRows(pk, x, b, lo, hi)
		return
	}
	l := ep.s.L
	solveRows(l.RowPtr, l.Col, l.Val, x, b, lo, hi)
}

// backwardRows sweeps rows [lo, hi) of this epoch's L′ᵀ in reverse,
// preferring the packed layout. ensureUpper must have succeeded.
//
//stsk:noalloc
func (ep *epoch) backwardRows(x, b []float64, lo, hi int) {
	if upk := ep.upk.Load(); upk != nil {
		solvePackedUpperRows(upk, x, b, lo, hi)
		return
	}
	u := ep.u.Load()
	solveUpperRows(u.RowPtr, u.Col, u.Val, x, b, lo, hi)
}

// forwardRowsBlock sweeps rows [lo, hi) of L′ across a width-kw panel,
// preferring the packed layout.
//
//stsk:noalloc
func (ep *epoch) forwardRowsBlock(X, B []float64, kw, lo, hi int) {
	if pk := ep.pk.Load(); pk != nil {
		solvePackedRowsBlock(pk, X, B, kw, lo, hi)
		return
	}
	l := ep.s.L
	solveRowsBlock(l.RowPtr, l.Col, l.Val, X, B, kw, lo, hi)
}

// backwardRowsBlock sweeps rows [lo, hi) of L′ᵀ in reverse across a
// width-kw panel, preferring the packed layout. ensureUpper must have
// succeeded.
//
//stsk:noalloc
func (ep *epoch) backwardRowsBlock(X, B []float64, kw, lo, hi int) {
	if upk := ep.upk.Load(); upk != nil {
		solvePackedUpperRowsBlock(upk, X, B, kw, lo, hi)
		return
	}
	u := ep.u.Load()
	solveUpperRowsBlock(u.RowPtr, u.Col, u.Val, X, B, kw, lo, hi)
}
